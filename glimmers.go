// Package glimmers is a reproduction of "Glimmers: Resolving the
// Privacy/Trust Quagmire" (Lie & Maniatis, HotOS 2017): a client-side
// trusted third party — the Glimmer — that validates privacy-sensitive user
// contributions on behalf of a service, blinds them for secure aggregation,
// and signs them, so services get trustworthy inputs without users
// surrendering private data.
//
// This root package is the public facade: it re-exports the main types from
// the internal packages and provides a Testbed that assembles a complete
// deployment (attestation service, platform, cloud service, Glimmer
// devices) in a few calls. See the examples/ directory for runnable
// walkthroughs and README.md for the system inventory and the experiment
// index.
//
// The paper's SGX substrate is simulated in software (package tee): the
// simulation enforces the same contracts — isolation, measurement,
// attestation, sealing — that the design relies on. See README.md for the
// substitution rationale.
package glimmers

import (
	"fmt"

	"glimmers/internal/attest"
	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

// Re-exported core types. The aliases make the internal implementations
// part of the public API without duplicating them.
type (
	// AttestationService certifies platforms; verifiers trust its root.
	AttestationService = tee.AttestationService
	// Platform is one simulated SGX-capable machine.
	Platform = tee.Platform
	// Measurement identifies enclave code (MRENCLAVE analogue).
	Measurement = tee.Measurement
	// QuoteVerifier checks enclave quotes against a measurement allowlist.
	QuoteVerifier = tee.QuoteVerifier

	// Config fixes a Glimmer's identity: service, dimension, blinding
	// mode, predicate policy.
	Config = glimmer.Config
	// Device is the host-side handle to a single-enclave Glimmer.
	Device = glimmer.Device
	// DecomposedDevice drives the three-enclave Glimmer of §3.
	DecomposedDevice = glimmer.DecomposedDevice
	// SignedContribution is the Glimmer's endorsed, blinded output.
	SignedContribution = glimmer.SignedContribution
	// Verdict is the one-bit §4.1 bot-detection output.
	Verdict = glimmer.Verdict
	// Mode selects the blinding construction.
	Mode = glimmer.Mode
	// Policy constrains installable predicates.
	Policy = glimmer.Policy

	// Service is the cloud side: provisioning, vetting, aggregation.
	Service = service.Service
	// Pipeline is the concurrent, sharded ingest path for one round, with
	// an explicit open → sealed → closed lifecycle. Workers: 1, Shards: 1
	// configures the strictly serial baseline the old Aggregator facade
	// provided.
	Pipeline = service.Pipeline
	// PipelineConfig sizes a Pipeline (verifier workers, shards).
	PipelineConfig = service.PipelineConfig
	// RoundManager owns pipelines for concurrent aggregation rounds.
	RoundManager = service.RoundManager
	// Registry hosts many tenants — each with its own predicate, keys, and
	// rounds — under one shared budget, routing contributions by the
	// service name they carry.
	Registry = service.Registry
	// TenantConfig describes one of a Registry's hosted services.
	TenantConfig = service.TenantConfig
	// BotGate consumes §4.1 verdicts.
	BotGate = service.BotGate

	// Program is a validation predicate.
	Program = predicate.Program
	// Analysis is the static verifier's certificate for a Program.
	Analysis = predicate.Analysis

	// Vector is a fixed-point contribution vector.
	Vector = fixed.Vector
	// Ring is one fixed-point ring element.
	Ring = fixed.Ring

	// Session is an attested secure channel.
	Session = attest.Session
)

// Blinding modes.
const (
	ModeNone     = glimmer.ModeNone
	ModeDealer   = glimmer.ModeDealer
	ModePairwise = glimmer.ModePairwise
)

// DefaultPolicy is the canonical predicate-installation policy: one
// declassification site, bounded cost.
var DefaultPolicy = glimmer.DefaultPolicy

// Frequently used constructors, re-exported.
var (
	// NewAttestationService creates the root of platform trust.
	NewAttestationService = tee.NewAttestationService
	// NewPlatform manufactures a simulated SGX platform.
	NewPlatform = tee.NewPlatform
	// NewDevice loads a single-enclave Glimmer.
	NewDevice = glimmer.NewDevice
	// NewService creates a cloud service trusting an attestation root.
	NewService = service.New
	// NewPipeline starts a concurrent sharded ingest pipeline for a round.
	NewPipeline = service.NewPipeline
	// NewRoundManager starts a manager for concurrent rounds.
	NewRoundManager = service.NewRoundManager
	// NewRegistry starts a multi-tenant registry with a shared round budget.
	NewRegistry = service.NewRegistry
	// UnitRangeCheck builds the paper's canonical [0,1] validator.
	UnitRangeCheck = predicate.UnitRangeCheck
	// FromFloats encodes a real vector into the fixed-point ring.
	FromFloats = fixed.FromFloats
	// ZeroSumMasks draws dealer blinding masks that cancel in aggregate.
	ZeroSumMasks = blind.ZeroSumMasks
	// VectorToBits converts a vector for provisioning payloads.
	VectorToBits = glimmer.VectorToBits
	// EncodeSignedContribution serializes a contribution for transport.
	EncodeSignedContribution = glimmer.EncodeSignedContribution
)

// Testbed is a complete in-process deployment: attestation service,
// platform, and cloud service sharing one trust root. It exists so
// examples and downstream users can get to a working Glimmer in a few
// lines.
type Testbed struct {
	AS       *AttestationService
	Platform *Platform
	Service  *Service
}

// NewTestbed assembles a deployment for the named service with the given
// validation predicate.
func NewTestbed(serviceName string, pred *Program) (*Testbed, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, fmt.Errorf("glimmers: %w", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, fmt.Errorf("glimmers: %w", err)
	}
	svc, err := service.New(serviceName, as.Root())
	if err != nil {
		return nil, fmt.Errorf("glimmers: %w", err)
	}
	if err := svc.SetPredicate(pred); err != nil {
		return nil, err
	}
	return &Testbed{AS: as, Platform: platform, Service: svc}, nil
}

// NewProvisionedDevice loads a Glimmer for the testbed's service, vets its
// measurement, and provisions it — ready to contribute. Masks, if non-nil,
// supply dealer blinding material by round.
func (tb *Testbed) NewProvisionedDevice(dim int, mode Mode, masks map[uint64][]uint64) (*Device, error) {
	cfg, err := tb.Service.GlimmerConfig(dim, mode, DefaultPolicy)
	if err != nil {
		return nil, err
	}
	dev, err := glimmer.NewDevice(tb.Platform, cfg)
	if err != nil {
		return nil, err
	}
	tb.Service.Vet(dev.Measurement())
	payload, err := tb.Service.BasePayload()
	if err != nil {
		return nil, err
	}
	payload.Masks = masks
	if err := tb.Service.Provision(dev, payload); err != nil {
		return nil, err
	}
	return dev, nil
}
