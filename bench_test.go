package glimmers

// The benchmark harness: one benchmark per experiment in README.md's index
// (the paper's figures and claims), plus micro-benchmarks for the
// mechanisms underneath them. Run with:
//
//	go test -bench=. -benchmem
//
// Key reported metrics (b.ReportMetric) mirror the experiment tables so
// the shape of the paper's argument is visible straight from the bench
// output.

import (
	"runtime"
	"testing"
	"time"

	"glimmers/internal/attest"
	"glimmers/internal/blind"
	"glimmers/internal/experiments"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

func benchFigure1() experiments.Figure1Config {
	cfg := experiments.DefaultFigure1()
	cfg.Users = 8
	cfg.WordsPerUser = 200
	cfg.HeldoutWords = 400
	return cfg
}

// BenchmarkE1RawSharing regenerates Figure 1a's utility/privacy points.
func BenchmarkE1RawSharing(b *testing.B) {
	cfg := benchFigure1()
	var last *experiments.E1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[1].Accuracy, "raw-accuracy")
	b.ReportMetric(last.Rows[0].Accuracy, "local-accuracy")
}

// BenchmarkE2Federated regenerates Figure 1b: utility plus inversion.
func BenchmarkE2Federated(b *testing.B) {
	cfg := benchFigure1()
	var last *experiments.E2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.FederatedAccuracy, "fed-accuracy")
	b.ReportMetric(last.MeanInversionRecall, "inversion-recall")
}

// BenchmarkE3SecureAgg regenerates Figure 1c: exact blinded aggregation.
func BenchmarkE3SecureAgg(b *testing.B) {
	cfg := benchFigure1()
	var last *experiments.E3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	exact := 0.0
	if last.Rows[0].AggregateExact && last.Rows[1].AggregateExact {
		exact = 1.0
	}
	b.ReportMetric(exact, "aggregate-exact")
	b.ReportMetric(last.Rows[0].BlindedInversionRecall, "blinded-inversion")
}

// BenchmarkE4Poisoning regenerates Figure 1d: the invisible 538.
func BenchmarkE4Poisoning(b *testing.B) {
	cfg := benchFigure1()
	var last *experiments.E4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	flipped := 0.0
	if last.Flipped {
		flipped = 1.0
	}
	b.ReportMetric(flipped, "suggestion-flipped")
	b.ReportMetric(last.PoisonedAggregateWeight, "poisoned-weight")
}

// BenchmarkE5Glimmer regenerates the Figure 2/3 defense.
func BenchmarkE5Glimmer(b *testing.B) {
	cfg := benchFigure1()
	var last *experiments.E5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	blocked := 0.0
	if last.AttackBlockedAtClient && last.SuggestionIntact {
		blocked = 1.0
	}
	b.ReportMetric(blocked, "attack-blocked")
	b.ReportMetric(float64(last.MeanContributeLatency.Microseconds()), "contribute-us")
}

// BenchmarkE6Decomposed regenerates the §3 decomposition ablation.
func BenchmarkE6Decomposed(b *testing.B) {
	cfg := experiments.DefaultE6()
	cfg.Contributions = 16
	cfg.Dim = 32
	cfg.TransitionCost = 20 * time.Microsecond
	var last *experiments.E6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].ECallsPerContribution, "single-ecalls")
	b.ReportMetric(last.Rows[1].ECallsPerContribution, "decomposed-ecalls")
}

// BenchmarkE7Corroboration regenerates the §3 validation ladder.
func BenchmarkE7Corroboration(b *testing.B) {
	cfg := experiments.DefaultE7()
	cfg.Users = 4
	cfg.WordsPerUser = 200
	var last *experiments.E7Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[1].ForgedAccepted, "range-forged-accepted")
	b.ReportMetric(last.Rows[2].ForgedAccepted, "corroborated-forged-accepted")
}

// BenchmarkE8BotDetect regenerates the §4.1 sweep.
func BenchmarkE8BotDetect(b *testing.B) {
	cfg := experiments.DefaultE8()
	cfg.Samples = 10
	cfg.Sophistications = []float64{0, 1}
	var last *experiments.E8Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].TPR, "tpr-naive")
	b.ReportMetric(last.Rows[0].FPR, "fpr-naive")
	b.ReportMetric(float64(last.BitsPerVerdict), "bits-per-verdict")
}

// BenchmarkE9GaaS regenerates the §4.2 local-vs-remote comparison.
func BenchmarkE9GaaS(b *testing.B) {
	cfg := experiments.DefaultE9()
	cfg.Contributions = 8
	var last *experiments.E9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Rows[0].MeanLatency.Microseconds()), "local-us")
	b.ReportMetric(float64(last.Rows[1].MeanLatency.Microseconds()), "remote-us")
}

// BenchmarkE10Consortium regenerates the §2 consortium comparison.
func BenchmarkE10Consortium(b *testing.B) {
	cfg := experiments.DefaultE10()
	cfg.Contributions = 4
	cfg.Sizes = []int{3, 5}
	var last *experiments.E10Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Rows[0].Disclosures), "consortium3-disclosures")
	b.ReportMetric(float64(last.Rows[len(last.Rows)-1].Disclosures), "glimmer-disclosures")
}

// BenchmarkE11Maps regenerates the photos-for-maps validation rates.
func BenchmarkE11Maps(b *testing.B) {
	cfg := experiments.DefaultE11()
	cfg.Samples = 8
	var last *experiments.E11Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].AcceptRate, "genuine-accept")
	b.ReportMetric(last.Rows[1].AcceptRate, "forged-accept")
}

// BenchmarkE12Verifier regenerates the §3 verification certificates.
func BenchmarkE12Verifier(b *testing.B) {
	var last *experiments.E12Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE12()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.LeakyRejected)/float64(last.LeakyTotal), "leaky-rejected-rate")
}

// --- Micro-benchmarks for the mechanisms under the experiments. ---

func benchDevice(b *testing.B, dim int, mode Mode) (*Testbed, *Device) {
	b.Helper()
	tb, err := NewTestbed("bench.example", UnitRangeCheck("range", dim))
	if err != nil {
		b.Fatal(err)
	}
	dev, err := tb.NewProvisionedDevice(dim, mode, nil)
	if err != nil {
		b.Fatal(err)
	}
	return tb, dev
}

// BenchmarkContribute measures one validate+blind+sign pipeline pass
// through a single enclave (ModeNone, dim 64).
func BenchmarkContribute(b *testing.B) {
	_, dev := benchDevice(b, 64, ModeNone)
	contribution := make(Vector, 64)
	for i := range contribution {
		contribution[i] = fixed.FromFloat(0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Contribute(uint64(i), contribution, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContributeRejected measures the refusal path (the 538 case).
func BenchmarkContributeRejected(b *testing.B) {
	_, dev := benchDevice(b, 64, ModeNone)
	contribution := make(Vector, 64)
	contribution[7] = fixed.FromFloat(538)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Contribute(uint64(i), contribution, nil); err == nil {
			b.Fatal("538 accepted")
		}
	}
}

// BenchmarkProvision measures the full attested provisioning protocol.
func BenchmarkProvision(b *testing.B) {
	tb, err := NewTestbed("bench.example", UnitRangeCheck("range", 16))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.NewProvisionedDevice(16, ModeNone, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredicateRangeCheck measures the predicate VM on the canonical
// validator at dim 1024 (the keyboard model size).
func BenchmarkPredicateRangeCheck(b *testing.B) {
	prog := predicate.UnitRangeCheck("range", 1024)
	analysis, err := predicate.Verify(prog)
	if err != nil {
		b.Fatal(err)
	}
	contribution := make([]int64, 1024)
	opts := &predicate.Options{MaxSteps: analysis.CostBound}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predicate.Run(prog, contribution, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredicateVerify measures static verification of the same
// program.
func BenchmarkPredicateVerify(b *testing.B) {
	prog := predicate.UnitRangeCheck("range", 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predicate.Verify(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDealerMasks measures dealer mask generation for a 16-client
// cohort at dim 1024.
func BenchmarkDealerMasks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := blind.ZeroSumMasks([]byte{byte(i)}, 16, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairwiseMask measures one party's pairwise mask at dim 1024 in
// a 16-party group.
func BenchmarkPairwiseMask(b *testing.B) {
	keys := make([]*xcrypto.DHKey, 16)
	roster := make([][]byte, 16)
	for i := range keys {
		k, err := xcrypto.NewDHKey()
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k
		roster[i] = k.PublicBytes()
	}
	party, err := blind.NewParty(0, keys[0], roster)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := party.Mask(1024, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttestedHandshake measures the quote-bound DH handshake.
func BenchmarkAttestedHandshake(b *testing.B) {
	as, err := tee.NewAttestationService()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		b.Fatal(err)
	}
	var env *tee.Env
	bin := tee.NewBinary("bench-hs", "1", []byte("bench")).
		Define("grab", func(e *tee.Env, _ []byte) ([]byte, error) {
			env = e
			return nil, nil
		})
	enclave, err := platform.Load(bin)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enclave.Call("grab", nil); err != nil {
		b.Fatal(err)
	}
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	identity, err := xcrypto.NewSigningKey()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, hello, err := attest.NewEnclaveHello(env, "bench")
		if err != nil {
			b.Fatal(err)
		}
		_, resp, err := attest.Respond(hello, verifier, identity, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := key.Complete(resp, identity.Public()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionRoundTrip measures encrypt+decrypt of a 1 KiB record on
// an established session.
func BenchmarkSessionRoundTrip(b *testing.B) {
	shared := make([]byte, 32)
	var transcript [32]byte
	alice := attest.NewSessionFromSecret(shared, transcript, true)
	bob := attest.NewSessionFromSecret(shared, transcript, false)
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := alice.Send(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bob.Recv(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregatorAdd measures server-side verification and
// accumulation of one signed contribution at dim 1024.
func BenchmarkAggregatorAdd(b *testing.B) {
	tb, dev := benchDevice(b, 1024, ModeNone)
	contribution := make(Vector, 1024)
	sc, err := dev.Contribute(1, contribution, nil)
	if err != nil {
		b.Fatal(err)
	}
	raw := EncodeSignedContribution(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewPipeline(PipelineConfig{
			ServiceName: tb.Service.Name(),
			Verify:      tb.Service.ContributionVerifyKey(),
			Dim:         1024,
			Round:       1,
			Workers:     1,
			Shards:      1,
		})
		if err := agg.Add(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregatorIngest measures the server-side ingest pipeline —
// decode, ed25519 verify, dedup, accumulate — over a cohort of signed
// contributions at keyboard-model scale, comparing the serial baseline
// (one worker, one shard) against the concurrent sharded pipeline. The
// contributions are fabricated and signed directly so the benchmark
// isolates the service layer from Glimmer execution.
func BenchmarkAggregatorIngest(b *testing.B) {
	const (
		dim     = 256
		clients = 512
		round   = uint64(7)
	)
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		b.Fatal(err)
	}
	raws := make([][]byte, clients)
	for i := range raws {
		sc := glimmer.SignedContribution{
			ServiceName: "bench.example",
			Round:       round,
			Measurement: tee.Measurement{1},
			Blinded:     make(Vector, dim),
			Confidence:  1,
		}
		for j := range sc.Blinded {
			// Distinct vectors per client so no two encodings collide in
			// the dedup set.
			sc.Blinded[j] = Ring(uint64(i)*1000003 + uint64(j))
		}
		sig, err := key.Sign(sc.SignedBytes())
		if err != nil {
			b.Fatal(err)
		}
		sc.Signature = sig
		raws[i] = glimmer.EncodeSignedContribution(sc)
	}
	run := func(b *testing.B, workers, shards int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			p := service.NewPipeline(service.PipelineConfig{
				ServiceName: "bench.example",
				Verify:      key.Public(),
				Dim:         dim,
				Round:       round,
				Workers:     workers,
				Shards:      shards,
			})
			for _, err := range p.AddBatch(raws) {
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Seal(); err != nil {
				b.Fatal(err)
			}
			if p.Count() != clients {
				b.Fatalf("count = %d, want %d", p.Count(), clients)
			}
			p.Close()
		}
		b.ReportMetric(float64(clients*b.N)/b.Elapsed().Seconds(), "contrib/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, runtime.GOMAXPROCS(0), 0) })
}

// BenchmarkSeal measures enclave sealing of a 256-byte secret.
func BenchmarkSeal(b *testing.B) {
	as, err := tee.NewAttestationService()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		b.Fatal(err)
	}
	bin := tee.NewBinary("bench-seal", "1", []byte("bench")).
		Define("seal", func(env *tee.Env, input []byte) ([]byte, error) {
			return env.Seal(input, nil, tee.SealToMeasurement)
		})
	enclave, err := platform.Load(bin)
	if err != nil {
		b.Fatal(err)
	}
	secret := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enclave.Call("seal", secret); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuoteVerify measures the verifier's full chain check.
func BenchmarkQuoteVerify(b *testing.B) {
	as, err := tee.NewAttestationService()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		b.Fatal(err)
	}
	var quote tee.Quote
	bin := tee.NewBinary("bench-q", "1", []byte("bench")).
		Define("quote", func(env *tee.Env, input []byte) ([]byte, error) {
			var err error
			quote, err = env.NewQuote(input)
			return nil, err
		})
	enclave, err := platform.Load(bin)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enclave.Call("quote", []byte("bind")); err != nil {
		b.Fatal(err)
	}
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	verifier.Allow(enclave.Measurement())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := verifier.Verify(quote); err != nil {
			b.Fatal(err)
		}
	}
}
