// Command experiments regenerates every experiment in README.md's index
// (E1–E13) and prints their tables.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run e4    # run one experiment
//	experiments -run e1,e5 # run a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"glimmers/internal/experiments"
)

type runner struct {
	id   string
	desc string
	run  func() (interface{ Table() string }, error)
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment ids (e1..e13); empty runs all")
	flag.Parse()

	fig1 := experiments.DefaultFigure1()
	all := []runner{
		{"e1", "Fig 1a: raw sharing", func() (interface{ Table() string }, error) { return experiments.RunE1(fig1) }},
		{"e2", "Fig 1b: federated learning", func() (interface{ Table() string }, error) { return experiments.RunE2(fig1) }},
		{"e3", "Fig 1c: secure aggregation", func() (interface{ Table() string }, error) { return experiments.RunE3(fig1) }},
		{"e4", "Fig 1d: poisoning attack", func() (interface{ Table() string }, error) { return experiments.RunE4(fig1) }},
		{"e5", "Fig 2/3: glimmer defense", func() (interface{ Table() string }, error) { return experiments.RunE5(fig1) }},
		{"e6", "§3: decomposition ablation", func() (interface{ Table() string }, error) { return experiments.RunE6(experiments.DefaultE6()) }},
		{"e7", "§3: validation ladder", func() (interface{ Table() string }, error) { return experiments.RunE7(experiments.DefaultE7()) }},
		{"e8", "§4.1: bot detection", func() (interface{ Table() string }, error) { return experiments.RunE8(experiments.DefaultE8()) }},
		{"e9", "§4.2: glimmer-as-a-service", func() (interface{ Table() string }, error) { return experiments.RunE9(experiments.DefaultE9()) }},
		{"e10", "§2: consortium comparison", func() (interface{ Table() string }, error) { return experiments.RunE10(experiments.DefaultE10()) }},
		{"e11", "§1/§3: photos for maps", func() (interface{ Table() string }, error) { return experiments.RunE11(experiments.DefaultE11()) }},
		{"e12", "§3: predicate verification", func() (interface{ Table() string }, error) { return experiments.RunE12() }},
		{"e13", "fleet simulator: fault sweep", func() (interface{ Table() string }, error) { return experiments.RunE13(experiments.DefaultE13()) }},
	}

	want := map[string]bool{}
	if *runFlag != "" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	ran := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s): %v\n", r.id, r.desc, err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q (valid: e1..e13)\n", *runFlag)
		os.Exit(2)
	}
}
