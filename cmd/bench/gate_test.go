package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, rep report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateRefusesParallelOnCoreMismatch: a "parallel" entry recorded on a
// 1-core machine measured no real contention, so a wider machine must not
// gate against it — even when the figure would otherwise regress — while
// serial entries keep their contract.
func TestGateRefusesParallelOnCoreMismatch(t *testing.T) {
	base := report{
		Schema: schema,
		NumCPU: 1,
		Results: []result{
			{Name: "ingest_parallel_w1", AllocsPerOp: 4, AllocGated: true},
			{Name: "ingest_serial", AllocsPerOp: 4, AllocGated: true},
		},
	}
	path := writeBaseline(t, base)

	// The parallel entry regressed 10x, but the 8-core run must skip it.
	cur := report{
		Schema: schema,
		NumCPU: 8,
		Results: []result{
			{Name: "ingest_parallel_w1", AllocsPerOp: 40, AllocGated: true},
			{Name: "ingest_serial", AllocsPerOp: 4, AllocGated: true},
		},
	}
	if err := gate(cur, path, false); err != nil {
		t.Errorf("gate failed on a core-mismatched parallel entry: %v", err)
	}

	// A serial regression on the same mismatched machines still fails.
	cur.Results[1].AllocsPerOp = 40
	err := gate(cur, path, false)
	if err == nil {
		t.Fatal("gate passed a regressed serial entry")
	}
	if !strings.Contains(err.Error(), "ingest_serial") {
		t.Errorf("failure does not name the serial entry: %v", err)
	}
	if strings.Contains(err.Error(), "ingest_parallel_w1") {
		t.Errorf("failure names the refused parallel entry: %v", err)
	}
}

// TestGateMatchedCoresStillGatesParallel: with equal core counts the
// parallel contract stays enforced.
func TestGateMatchedCoresStillGatesParallel(t *testing.T) {
	base := report{
		Schema: schema,
		NumCPU: 8,
		Results: []result{
			{Name: "ingest_parallel_w1", AllocsPerOp: 4, AllocGated: true},
		},
	}
	path := writeBaseline(t, base)
	cur := report{
		Schema: schema,
		NumCPU: 8,
		Results: []result{
			{Name: "ingest_parallel_w1", AllocsPerOp: 40, AllocGated: true},
		},
	}
	if err := gate(cur, path, false); err == nil {
		t.Fatal("gate passed a regressed parallel entry on matched cores")
	}
	// A baseline recorded on MORE cores than the current run is fine to
	// gate against (the contract only weakens in the other direction).
	cur.NumCPU = 4
	cur.Results[0].AllocsPerOp = 4
	if err := gate(cur, path, false); err != nil {
		t.Errorf("gate failed on a narrower current machine: %v", err)
	}
}
