// Command bench runs the repo's canonical performance suite and emits a
// machine-readable BENCH_<label>.json — the benchmark trajectory artifact
// this repository tracks across PRs and gates in CI.
//
// Usage:
//
//	go run ./cmd/bench -label baseline              # writes BENCH_baseline.json
//	go run ./cmd/bench -benchtime short             # CI-sized workloads
//	go run ./cmd/bench -run 'ingest' -out /dev/null # subset, no artifact
//	go run ./cmd/bench -check BENCH_baseline.json   # regression gate
//
// The JSON schema ("glimmers/bench/v1") is one object:
//
//	{
//	  "schema":  "glimmers/bench/v1",
//	  "label":   "baseline",
//	  "go":      "go1.24.0", "goos": "linux", "goarch": "amd64",
//	  "num_cpu": 8, "gomaxprocs": 8, "benchtime": "full",
//	  "results": [{
//	    "name": "ingest_serial", "iterations": 25,
//	    "ns_per_op": 4.1e7, "bytes_per_op": 123, "allocs_per_op": 4,
//	    "alloc_gated": false,
//	    "metrics": {"contrib_per_sec": 12345.6}
//	  }, ...]
//	}
//
// Results with "alloc_gated": true form the zero/low-allocation contract
// on the ingest decode path; -check compares the current run against a
// committed baseline and fails (exit 1) when any gated allocs/op figure
// regresses by more than 25%. Timing figures are never gated — they vary
// with the machine — but they are recorded so the trajectory across PRs
// stays visible.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"glimmers/internal/durable"
	"glimmers/internal/fixed"
	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/sim"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

const schema = "glimmers/bench/v1"

type result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	AllocGated  bool               `json:"alloc_gated,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Schema string `json:"schema"`
	Label  string `json:"label"`
	// Note carries provenance caveats a reader of the artifact needs —
	// e.g. that a "multicore" run was in fact recorded on one core.
	Note       string   `json:"note,omitempty"`
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	BenchTime  string   `json:"benchtime"`
	Results    []result `json:"results"`
}

// sizes parameterize the workloads; "short" keeps the CI smoke run under a
// minute on one core.
type sizes struct {
	dim         int // contribution dimension for codec + ingest benches
	cohort      int // contributions per ingest cohort
	batchRounds int // pre-generated rounds for the submit-batch benches
	batchItems  int // items per submit-batch frame
	dedupPool   int // distinct contributions for the decode+dedup bench
	simRounds   int
	simDevices  int
	edgeConns   int // concurrent TLS connections for the edge ingest bench
	edgeBatches int // batches each edge connection submits
	edgeItems   int // items per edge batch
}

func sizesFor(mode string) sizes {
	if mode == "short" {
		return sizes{dim: 64, cohort: 64, batchRounds: 8, batchItems: 32, dedupPool: 2048, simRounds: 2, simDevices: 6,
			edgeConns: 128, edgeBatches: 2, edgeItems: 16}
	}
	return sizes{dim: 256, cohort: 512, batchRounds: 16, batchItems: 128, dedupPool: 8192, simRounds: 8, simDevices: 8,
		edgeConns: 1024, edgeBatches: 4, edgeItems: 16}
}

func main() {
	label := flag.String("label", "local", "label recorded in the artifact (and its default filename)")
	out := flag.String("out", "", "output path (default BENCH_<label>.json; empty string after default suppresses nothing, use /dev/null)")
	benchtime := flag.String("benchtime", "full", "workload scale: full or short")
	runPat := flag.String("run", "", "regexp selecting which benchmarks run")
	check := flag.String("check", "", "baseline BENCH_*.json to gate allocs/op regressions against (>25% fails)")
	sweep := flag.String("workers-sweep", "", "comma-separated worker counts: run the scaling sweep (ingest_parallel_wN, ingest_ticketed_parallel_wN) instead of the canonical suite")
	flag.Parse()
	if *benchtime != "full" && *benchtime != "short" {
		fmt.Fprintf(os.Stderr, "bench: -benchtime must be full or short, got %q\n", *benchtime)
		os.Exit(2)
	}
	if *out == "" {
		*out = "BENCH_" + *label + ".json"
	}
	var filter *regexp.Regexp
	if *runPat != "" {
		var err error
		if filter, err = regexp.Compile(*runPat); err != nil {
			fmt.Fprintf(os.Stderr, "bench: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
	}

	rep := report{
		Schema:     schema,
		Label:      *label,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
	}
	sz := sizesFor(*benchtime)
	entries := suite(sz)
	if *sweep != "" {
		var err error
		if entries, err = sweepSuite(sz, *sweep); err != nil {
			fmt.Fprintf(os.Stderr, "bench: -workers-sweep: %v\n", err)
			os.Exit(2)
		}
	}
	for _, entry := range entries {
		if filter != nil && !filter.MatchString(entry.name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-22s ", entry.name)
		res := entry.run()
		res.Name = entry.name
		res.AllocGated = entry.allocGated
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %8d B/op %6d allocs/op%s\n",
			res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, metricsSummary(res.Metrics))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: encode report: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d results)\n", *out, len(rep.Results))

	if *check != "" {
		if err := gate(rep, *check, filter != nil); err != nil {
			fmt.Fprintf(os.Stderr, "bench: REGRESSION: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "alloc gate: OK (within 25% of baseline)")
	}
}

func metricsSummary(m map[string]float64) string {
	s := ""
	for k, v := range m {
		s += fmt.Sprintf("  %s=%.1f", k, v)
	}
	return s
}

// gate fails when any alloc-gated result regressed >25% over the baseline.
// Only allocs/op is gated: allocation counts are deterministic per
// toolchain, while timings vary with the machine running the suite.
// Unless the run was filtered (-run), a gated baseline entry with no
// matching current result also fails: renaming or dropping a gated
// benchmark must not silently disable its contract.
func gate(cur report, baselinePath string, filtered bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	if base.Schema != schema {
		return fmt.Errorf("baseline schema %q, want %q", base.Schema, schema)
	}
	baseByName := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	curByName := make(map[string]result, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	// Parallel entries measure contention, and a baseline recorded on
	// fewer cores than this run never experienced it (a 1-core "parallel"
	// run is serial in all but name). Gating against such a baseline
	// would compare incomparable workloads, so those entries are refused
	// — loudly — instead of gated.
	coreMismatch := base.NumCPU > 0 && base.NumCPU < cur.NumCPU
	var failures []string
	if !filtered {
		for _, b := range base.Results {
			if b.AllocGated {
				if _, ok := curByName[b.Name]; !ok {
					failures = append(failures,
						fmt.Sprintf("%s: gated in baseline but missing from this run", b.Name))
				}
			}
		}
	}
	for _, r := range cur.Results {
		if !r.AllocGated {
			continue
		}
		if coreMismatch && strings.Contains(r.Name, "parallel") {
			fmt.Fprintf(os.Stderr, "bench: not gating %s: baseline recorded on %d core(s), this run has %d\n",
				r.Name, base.NumCPU, cur.NumCPU)
			continue
		}
		b, ok := baseByName[r.Name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		// ceil(base*1.25) keeps small-integer baselines meaningful: a
		// baseline of 0 allows only 0, a baseline of 4 allows 5.
		limit := b.AllocsPerOp + (b.AllocsPerOp+3)/4
		if r.AllocsPerOp > limit {
			failures = append(failures,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (limit %d)", r.Name, r.AllocsPerOp, b.AllocsPerOp, limit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

type benchEntry struct {
	name       string
	allocGated bool
	run        func() result
}

// fromBench converts a testing.BenchmarkResult.
func fromBench(br testing.BenchmarkResult) result {
	res := result{
		Iterations:  br.N,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
	if len(br.Extra) > 0 {
		res.Metrics = make(map[string]float64, len(br.Extra))
		for k, v := range br.Extra {
			res.Metrics[k] = v
		}
	}
	return res
}

// makeRaws fabricates n encoded contributions for round with distinct
// vectors (distinct dedup digests); key == nil leaves them unsigned for
// the pre-authenticated benches.
func makeRaws(n, dim int, round uint64, serviceName string, key *xcrypto.SigningKey) [][]byte {
	raws := make([][]byte, n)
	for i := range raws {
		sc := glimmer.SignedContribution{
			ServiceName: serviceName,
			Round:       round,
			Measurement: tee.Measurement{1},
			Blinded:     make(fixed.Vector, dim),
			Confidence:  1,
		}
		for j := range sc.Blinded {
			sc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + round*31 + uint64(j))
		}
		if key != nil {
			sig, err := key.Sign(sc.SignedBytes())
			if err != nil {
				fatal(err)
			}
			sc.Signature = sig
		}
		raws[i] = glimmer.EncodeSignedContribution(sc)
	}
	return raws
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(1)
}

func suite(sz sizes) []benchEntry {
	const serviceName = "bench.example"
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		fatal(err)
	}

	return []benchEntry{
		// Gated since the pooled-writer encoder landed: one exact-size
		// allocation per message (down from 11 growth appends).
		{name: "codec_encode_signed", allocGated: true, run: func() result {
			sc, err := glimmer.DecodeSignedContribution(makeRaws(1, sz.dim, 1, serviceName, key)[0])
			if err != nil {
				fatal(err)
			}
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if len(glimmer.EncodeSignedContribution(sc)) == 0 {
						fatal(fmt.Errorf("empty encoding"))
					}
				}
			}))
		}},

		{name: "mac_verify", allocGated: true, run: func() result {
			// The amortized fast path's per-contribution authenticity check
			// in isolation: one HMAC-SHA256 over a ticketed preimage of the
			// suite's dimensionality, on warm pooled state. This is what
			// replaces the ~100 µs ECDSA verify; it is pinned at 0 allocs/op.
			var key xcrypto.SessionKey
			key[0] = 1
			tc := glimmer.TicketedContribution{
				ServiceName: serviceName,
				Round:       1,
				TicketID:    7,
				Blinded:     make(fixed.Vector, sz.dim),
				Confidence:  1,
			}
			raw := glimmer.SealTicketedContribution(tc, &key)
			var s glimmer.TicketScratch
			preimage, err := s.Decode(raw)
			if err != nil {
				fatal(err)
			}
			mac := s.TC.MAC
			var m xcrypto.MACState
			if !m.Verify(&key, preimage, mac) {
				fatal(fmt.Errorf("seeded MAC does not verify"))
			}
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !m.Verify(&key, preimage, mac) {
						fatal(fmt.Errorf("MAC verify failed"))
					}
				}
			}))
		}},

		{name: "mac_verify_batch", allocGated: true, run: func() result {
			// One op is a frame's worth of MAC checks under a single session
			// key: MACState.VerifyBatch computes the keyed pad states once
			// (SetKey) and each message then costs a state restore plus its
			// own hashing. Divide ns_per_op by the batch size — or read
			// mac_per_sec — to compare against mac_verify's per-message
			// figure; the delta is the amortized key schedule.
			var skey xcrypto.SessionKey
			skey[0] = 1
			n := sz.batchItems
			msgs := make([][]byte, n)
			macs := make([][]byte, n)
			ok := make([]bool, n)
			var s glimmer.TicketScratch
			for i := 0; i < n; i++ {
				tc := glimmer.TicketedContribution{
					ServiceName: serviceName,
					Round:       1,
					TicketID:    7,
					Blinded:     make(fixed.Vector, sz.dim),
					Confidence:  1,
				}
				for j := range tc.Blinded {
					tc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + uint64(j))
				}
				preimage, err := s.Decode(glimmer.SealTicketedContribution(tc, &skey))
				if err != nil {
					fatal(err)
				}
				msgs[i] = append([]byte(nil), preimage...)
				macs[i] = append([]byte(nil), s.TC.MAC...)
			}
			var m xcrypto.MACState
			if m.VerifyBatch(&skey, msgs, macs, ok) != n {
				fatal(fmt.Errorf("seeded MAC batch does not verify"))
			}
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if m.VerifyBatch(&skey, msgs, macs, ok) != n {
						fatal(fmt.Errorf("MAC batch verify failed"))
					}
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "mac_per_sec")
			}))
		}},

		{name: "vector_accumulate", allocGated: true, run: func() result {
			// The shard phase's inner loop in isolation: one op accumulates a
			// frame's worth of wire-encoded vectors into one accumulator via
			// fixed.AccumulateWireInto — big-endian lane bytes straight into
			// the ring sum, no intermediate decode buffer.
			n := sz.batchItems
			lanes := make([][]byte, n)
			for i := range lanes {
				v := make(fixed.Vector, sz.dim)
				for j := range v {
					v[j] = fixed.Ring(uint64(i)*1000003 + uint64(j) + 1)
				}
				lanes[i] = v.AppendWire(nil)
			}
			dst := fixed.NewVector(sz.dim)
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, be := range lanes {
						fixed.AccumulateWireInto(dst, be)
					}
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "contrib_per_sec")
				b.ReportMetric(float64(n*b.N*sz.dim*8)/1e6/b.Elapsed().Seconds(), "mb_per_sec")
			}))
		}},

		// Gated since the decode scratch moved to a pool: the remaining
		// allocations are the three copies the value-semantics API promises
		// (vector, signature, signed-bytes) — machine-independent.
		{name: "codec_decode_signed", allocGated: true, run: func() result {
			raw := makeRaws(1, sz.dim, 1, serviceName, key)[0]
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := glimmer.DecodeSignedContributionBytes(raw); err != nil {
						fatal(err)
					}
				}
			}))
		}},

		{name: "decode_signed_scratch", allocGated: true, run: func() result {
			raws := makeRaws(64, sz.dim, 1, serviceName, key)
			var s glimmer.ContributionScratch
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Decode(raws[i%len(raws)]); err != nil {
						fatal(err)
					}
				}
			}))
		}},

		{name: "peek_round", allocGated: true, run: func() result {
			raw := makeRaws(1, sz.dim, 9, serviceName, key)[0]
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					round, err := glimmer.PeekContributionRound(raw)
					if err != nil || round != 9 {
						fatal(fmt.Errorf("round=%d err=%v", round, err))
					}
				}
			}))
		}},

		{name: "ingest_decode_dedup", allocGated: true, run: func() result {
			// The steady-state decode→dedup→accumulate path in isolation:
			// signature verification disabled (nil Verify), dedup maps
			// pre-sized. This is the path the tentpole drives to zero
			// allocations.
			raws := makeRaws(sz.dedupPool, 64, 3, serviceName, nil)
			newPipe := func() *service.Pipeline {
				return service.NewPipeline(service.PipelineConfig{
					ServiceName:    serviceName,
					Dim:            64,
					Round:          3,
					Workers:        1,
					Shards:         1,
					ExpectedCohort: sz.dedupPool,
				})
			}
			return fromBench(testing.Benchmark(func(b *testing.B) {
				p := newPipe()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%len(raws) == 0 && i > 0 {
						b.StopTimer()
						p.Close()
						p = newPipe()
						b.StartTimer()
					}
					if err := p.Add(raws[i%len(raws)]); err != nil {
						fatal(err)
					}
				}
				b.StopTimer()
				p.Close()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "contrib_per_sec")
			}))
		}},

		{name: "route_peek", allocGated: true, run: func() result {
			// The tenant router's header peek: the PR-3 zero-allocation
			// ingest path must survive frame-level routing, so the peek is
			// pinned at 0 allocs/op.
			raws := makeRaws(64, sz.dim, 1, serviceName, key)
			return fromBench(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					name, err := glimmer.PeekContributionService(raws[i%len(raws)])
					if err != nil || len(name) == 0 {
						fatal(fmt.Errorf("peek: name=%q err=%v", name, err))
					}
				}
			}))
		}},

		{name: "multitenant_ingest", allocGated: true, run: func() result {
			// Frame-level routing under a heterogeneous workload: one
			// registry, three tenants (two range tenants and a botdetect
			// tenant's one-bit verdicts), every batch interleaving all
			// three. Signature verification is off and dedup shards are
			// pre-sized, isolating the routing + decode + dedup overhead —
			// directly comparable to ingest_decode_dedup's single-tenant
			// figure. One op is one routed batch.
			type tenantShape struct {
				name string
				dim  int
			}
			shapes := []tenantShape{
				{"maps.bench.example", 64},
				{"keyboard.bench.example", 64},
				{"botdetect.bench.example", 1},
			}
			perTenant := sz.batchItems
			newReg := func() *service.Registry {
				reg := service.NewRegistry(0)
				for _, shape := range shapes {
					if _, err := reg.AddTenant(service.TenantConfig{
						Name:           shape.name,
						Dim:            shape.dim,
						ExpectedCohort: perTenant * sz.batchRounds,
					}); err != nil {
						fatal(err)
					}
				}
				return reg
			}
			// batchRounds distinct interleaved batches, reused round-robin,
			// with vectors unique per (batch, item) so dedup never fires.
			batches := make([][][]byte, sz.batchRounds)
			for r := range batches {
				batch := make([][]byte, 0, perTenant*len(shapes))
				for i := 0; i < perTenant; i++ {
					for s, shape := range shapes {
						sc := glimmer.SignedContribution{
							ServiceName: shape.name,
							Round:       1,
							Measurement: tee.Measurement{1},
							Blinded:     make(fixed.Vector, shape.dim),
							Confidence:  1,
						}
						for d := range sc.Blinded {
							sc.Blinded[d] = fixed.Ring(uint64(r)*1000003 +
								uint64(i)*1009 + uint64(s)*31 + uint64(d) + 1)
						}
						batch = append(batch, glimmer.EncodeSignedContribution(sc))
					}
				}
				batches[r] = batch
			}
			return fromBench(testing.Benchmark(func(b *testing.B) {
				reg := newReg()
				b.ReportAllocs()
				b.ResetTimer()
				items := 0
				for i := 0; i < b.N; i++ {
					if i%len(batches) == 0 && i > 0 {
						b.StopTimer()
						reg = newReg()
						b.StartTimer()
					}
					batch := batches[i%len(batches)]
					accepted, _ := reg.IngestBatch(batch)
					if accepted != len(batch) {
						fatal(fmt.Errorf("routed batch accepted %d of %d", accepted, len(batch)))
					}
					items += len(batch)
				}
				b.StopTimer()
				b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "contrib_per_sec")
			}))
		}},

		{name: "ingest_serial", run: func() result {
			return fromBench(benchIngest(sz, serviceName, key, 1, 1))
		}},

		{name: "ingest_parallel", run: func() result {
			return fromBench(benchIngest(sz, serviceName, key, runtime.GOMAXPROCS(0), 0))
		}},

		// Gated: the serial fast path's per-cohort allocation count is a
		// machine-independent constant (pipeline construction aside, the
		// per-contribution path is zero-alloc), so a regression here means
		// the MAC path started allocating.
		{name: "ingest_ticketed_serial", allocGated: true, run: func() result {
			// The same cohort-through-a-fresh-pipeline shape as
			// ingest_serial, with every contribution MAC'd under a session
			// ticket instead of ECDSA-signed, fed one Add at a time: this is
			// the per-item reference the batch plan's entries divide against.
			return fromBench(benchTicketedIngest(sz, serviceName, 1, 1))
		}},

		// Not gated, like ingest_parallel: goroutine fan-out costs scale
		// with the runner's core count.
		{name: "ingest_ticketed_parallel", run: func() result {
			return fromBench(benchTicketedIngest(sz, serviceName, runtime.GOMAXPROCS(0), 0))
		}},

		// Gated at zero: one op is one AddBatchErrs frame through the batch
		// plan — per-batch arena, batch-amortized MACs, bulk shard
		// accumulation — into a warm pipeline with a caller-owned error
		// slice, so the steady state allocates nothing at all. Pipeline
		// turnover happens off the clock (StopTimer), which also pauses the
		// allocation accounting.
		{name: "ingest_ticketed_batch", allocGated: true, run: func() result {
			return fromBench(benchTicketedBatchIngest(sz, serviceName, 1, 1))
		}},

		// Not gated: with Workers > 1 each frame is chunked across the
		// pipeline's worker pool, whose handoff allocations scale with the
		// runner's core count. On a multi-core runner this entry carries the
		// batch plan's headline multiple over ingest_ticketed_serial; on one
		// core it degenerates to the serial figure by construction.
		{name: "ingest_ticketed_batch_parallel", run: func() result {
			return fromBench(benchTicketedBatchIngest(sz, serviceName, runtime.GOMAXPROCS(0), 0))
		}},

		// Gated: ingest_ticketed_batch with a live WAL journal attached —
		// the group-commit acceptance figure. The hot path pays one pooled
		// record encode plus a staging append per frame; the disk writes
		// happen on the background flusher's clock. Compare ns_per_op
		// against ingest_ticketed_batch: the gap is the full durability tax
		// on the ingest path, and the design target is single-digit
		// percent. The per-op allocations (the journaled digest list and
		// delta vector) are deterministic, so the entry is gated.
		{name: "ingest_durable_batch", allocGated: true, run: func() result {
			return fromBench(benchDurableBatchIngest(sz, serviceName, 1, 1))
		}},

		// Gated: the journal append path in isolation — one op stages one
		// BatchAccepted record (pooled encoder, CRC frame, staging append)
		// with no pipeline in front. records_per_write is the group-commit
		// coalescing ratio the run achieved; the write path's contract is
		// that it stays well above 10.
		{name: "wal_append", allocGated: true, run: func() result {
			return fromBench(benchWALAppend(sz, serviceName))
		}},

		{name: "submit_batch_inproc", run: func() result {
			batches := batchesByRound(sz, serviceName, key)
			newMgr := func() *service.RoundManager {
				return service.NewRoundManager(service.PipelineConfig{
					ServiceName:    serviceName,
					Verify:         key.Public(),
					Dim:            sz.dim,
					ExpectedCohort: sz.batchItems,
				})
			}
			return fromBench(testing.Benchmark(func(b *testing.B) {
				mgr := newMgr()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%len(batches) == 0 {
						b.StopTimer()
						for r := range batches {
							mgr.Forget(uint64(r) + 1)
						}
						b.StartTimer()
					}
					accepted, _ := mgr.IngestBatch(batches[i%len(batches)])
					if accepted != sz.batchItems {
						fatal(fmt.Errorf("accepted %d of %d", accepted, sz.batchItems))
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N*sz.batchItems)/b.Elapsed().Seconds(), "contrib_per_sec")
			}))
		}},

		{name: "submit_batch_pipe", run: func() result {
			return fromBench(benchSubmitTransport(sz, serviceName, key, false))
		}},

		{name: "submit_batch_tcp", run: func() result {
			return fromBench(benchSubmitTransport(sz, serviceName, key, true))
		}},

		// Not gated: TLS record-layer allocations vary with GC and buffer
		// reuse timing, so only the sustained throughput figure is tracked.
		// One "iteration" is one connection's worth of batches; the headline
		// is contrib_per_sec over edgeConns concurrent TLS connections
		// (1024 in full mode — raise edgeConns for a 10k+ run on a real
		// runner with the fd budget to match).
		{name: "edge_tls_ingest", run: func() result {
			return benchEdgeTLSIngest(sz, serviceName)
		}},

		// Fleet: one op is one round-merge at the coordinator — verify and
		// fold three signed partial seals (each carrying a third of the
		// cohort's dedup digests) into completion. This is the cross-node
		// cost sharding adds per round; merge_per_sec is its headline.
		{name: "fleet_merge", run: func() result {
			return fromBench(benchFleetMerge(sz, serviceName, key))
		}},

		// Fleet: one op is one full round across three in-process nodes —
		// each node ingests its third of the cohort through the ticketed
		// batch plan on its own goroutine, seals a signed partial, and a
		// coordinator merges the three. contrib_per_sec aggregates across
		// the nodes; divide against ingest_ticketed_batch for the scale-out
		// multiple (on a 1-core runner it is ≤ 1× by construction — the
		// nodes time-slice one CPU and the merge is pure overhead).
		{name: "fleet_ingest_3node", run: func() result {
			return fromBench(benchFleetIngest3Node(sz, serviceName))
		}},

		{name: "sim_round", run: func() result {
			rep, err := sim.Scenario{
				Name: "bench",
				Config: sim.Config{
					Seed:      99,
					Devices:   sz.simDevices,
					Rounds:    sz.simRounds,
					Overlap:   2,
					Dim:       8,
					Transport: sim.TransportDirect,
				},
			}.Run()
			if err != nil {
				fatal(err)
			}
			if !rep.Ok() {
				fatal(fmt.Errorf("sim violations: %v", rep.Violations))
			}
			perRound := rep.Elapsed / time.Duration(sz.simRounds)
			return result{
				Iterations: sz.simRounds,
				NsPerOp:    float64(perRound.Nanoseconds()),
				Metrics: map[string]float64{
					"rounds_per_sec":  rep.RoundsPerSec(),
					"contrib_per_sec": rep.RoundsPerSec() * float64(sz.simDevices),
				},
			}
		}},
	}
}

// makeTicketedRaws fabricates n MAC'd contributions for round, sealed
// under a ticket installed into tbl — the steady-state traffic of a
// session that already ran its grant exchange.
func makeTicketedRaws(n, dim int, round uint64, serviceName string, tbl *service.TicketTable) [][]byte {
	var skey xcrypto.SessionKey
	skey[0] = 0xA7
	const ticketID = 7
	tbl.Install(ticketID, skey, 1, 1<<32, 1<<62)
	raws := make([][]byte, n)
	for i := range raws {
		tc := glimmer.TicketedContribution{
			ServiceName: serviceName,
			Round:       round,
			TicketID:    ticketID,
			Blinded:     make(fixed.Vector, dim),
			Confidence:  1,
		}
		for j := range tc.Blinded {
			tc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + round*31 + uint64(j))
		}
		raws[i] = glimmer.SealTicketedContribution(tc, &skey)
	}
	return raws
}

// benchTicketedIngest is benchIngest's fast-path twin: one op is one full
// MAC'd cohort through a fresh pipeline sharing the tenant's ticket table,
// so its contrib_per_sec divides directly against the ECDSA-bound
// ingest_serial/parallel figures. Contributions are fed one Add at a time —
// the per-item hot path, deliberately not the batch plan — so the ticketed
// serial/parallel entries stay the reference the batch entries are measured
// against. With workers > 1 the cohort is striped across that many caller
// goroutines (the many-callers ingest shape).
func benchTicketedIngest(sz sizes, serviceName string, workers, shards int) testing.BenchmarkResult {
	tbl := service.NewTicketTable(service.TicketConfig{})
	raws := makeTicketedRaws(sz.cohort, sz.dim, 7, serviceName, tbl)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := service.NewPipeline(service.PipelineConfig{
				ServiceName:    serviceName,
				Dim:            sz.dim,
				Round:          7,
				Tickets:        tbl,
				Workers:        workers,
				Shards:         shards,
				ExpectedCohort: sz.cohort,
			})
			if workers == 1 {
				for _, raw := range raws {
					if err := p.Add(raw); err != nil {
						fatal(err)
					}
				}
			} else {
				var wg sync.WaitGroup
				stripe := (len(raws) + workers - 1) / workers
				for lo := 0; lo < len(raws); lo += stripe {
					hi := min(lo+stripe, len(raws))
					wg.Add(1)
					go func(part [][]byte) {
						defer wg.Done()
						for _, raw := range part {
							if err := p.Add(raw); err != nil {
								fatal(err)
							}
						}
					}(raws[lo:hi])
				}
				wg.Wait()
			}
			if err := p.Seal(); err != nil {
				fatal(err)
			}
			if p.Count() != sz.cohort {
				fatal(fmt.Errorf("count = %d, want %d", p.Count(), sz.cohort))
			}
			p.Close()
		}
		b.ReportMetric(float64(sz.cohort*b.N)/b.Elapsed().Seconds(), "contrib_per_sec")
	})
}

// benchTicketedBatchIngest measures the batch plan itself: one op is one
// AddBatchErrs frame of sz.batchItems MAC'd contributions into a warm
// pipeline, with a reused caller-owned error slice. The raw pool holds a
// full cohort of distinct contributions so dedup never fires; when the pool
// wraps, the pipeline is torn down and rebuilt off the clock, which keeps
// the timed (and alloc-counted) region exactly the steady-state submission.
func benchTicketedBatchIngest(sz sizes, serviceName string, workers, shards int) testing.BenchmarkResult {
	tbl := service.NewTicketTable(service.TicketConfig{})
	raws := makeTicketedRaws(sz.cohort, sz.dim, 7, serviceName, tbl)
	var batches [][][]byte
	for lo := 0; lo+sz.batchItems <= len(raws); lo += sz.batchItems {
		batches = append(batches, raws[lo:lo+sz.batchItems])
	}
	newPipe := func() *service.Pipeline {
		return service.NewPipeline(service.PipelineConfig{
			ServiceName:    serviceName,
			Dim:            sz.dim,
			Round:          7,
			Tickets:        tbl,
			Workers:        workers,
			Shards:         shards,
			ExpectedCohort: sz.cohort,
		})
	}
	errs := make([]error, sz.batchItems)
	return testing.Benchmark(func(b *testing.B) {
		p := newPipe()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%len(batches) == 0 && i > 0 {
				b.StopTimer()
				p.Close()
				p = newPipe()
				b.StartTimer()
			}
			p.AddBatchErrs(batches[i%len(batches)], errs)
			for _, err := range errs {
				if err != nil {
					fatal(err)
				}
			}
		}
		b.StopTimer()
		p.Close()
		b.ReportMetric(float64(b.N*sz.batchItems)/b.Elapsed().Seconds(), "contrib_per_sec")
	})
}

// benchStore opens a WAL store on a throwaway dir, recovered against a
// minimal one-tenant registry (the store requires a recovered registry
// before it journals). The caller owns Close; the dir cleanup fn is
// returned alongside.
func benchStore(sz sizes, serviceName string) (*durable.Store, func()) {
	dir, err := os.MkdirTemp("", "glimmers-bench-wal-")
	if err != nil {
		fatal(err)
	}
	reg := service.NewRegistry(8)
	if _, err := reg.AddTenant(service.TenantConfig{Name: serviceName, Dim: sz.dim, Workers: 1}); err != nil {
		fatal(err)
	}
	store, err := durable.Open(dir)
	if err != nil {
		fatal(err)
	}
	if _, err := store.Recover(reg); err != nil {
		fatal(err)
	}
	return store, func() { os.RemoveAll(dir) }
}

// benchWALAppend measures the journal hot path alone: one op is one
// BatchAccepted record of batchItems digests staged into the
// group-commit buffer. The background flusher (default tuning) drains on
// its own clock; records_per_write is the coalescing ratio the run
// achieved end to end.
func benchWALAppend(sz sizes, serviceName string) testing.BenchmarkResult {
	digests := make([][32]byte, sz.batchItems)
	for i := range digests {
		digests[i][0], digests[i][1], digests[i][2] = byte(i), byte(i>>8), byte(i>>16)
	}
	delta := make(fixed.Vector, sz.dim)
	for j := range delta {
		delta[j] = fixed.Ring(uint64(j) * 7)
	}
	return testing.Benchmark(func(b *testing.B) {
		store, cleanup := benchStore(sz, serviceName)
		defer cleanup()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.BatchAccepted(serviceName, 1, digests, delta)
		}
		b.StopTimer()
		if err := store.Flush(); err != nil {
			fatal(err)
		}
		st := store.Stats()
		if err := store.Close(); err != nil {
			fatal(err)
		}
		if st.Writes > 0 {
			b.ReportMetric(float64(st.Records)/float64(st.Writes), "records_per_write")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records_per_sec")
	})
}

// benchDurableBatchIngest is benchTicketedBatchIngest with a live WAL
// journal attached via PipelineConfig.Journal: the same warm-pipeline
// AddBatchErrs steady state, now journaling one BatchAccepted record per
// frame through the group-commit path. Divide against
// ingest_ticketed_batch for the durability tax.
func benchDurableBatchIngest(sz sizes, serviceName string, workers, shards int) testing.BenchmarkResult {
	tbl := service.NewTicketTable(service.TicketConfig{})
	raws := makeTicketedRaws(sz.cohort, sz.dim, 7, serviceName, tbl)
	var batches [][][]byte
	for lo := 0; lo+sz.batchItems <= len(raws); lo += sz.batchItems {
		batches = append(batches, raws[lo:lo+sz.batchItems])
	}
	errs := make([]error, sz.batchItems)
	return testing.Benchmark(func(b *testing.B) {
		store, cleanup := benchStore(sz, serviceName)
		defer cleanup()
		newPipe := func() *service.Pipeline {
			return service.NewPipeline(service.PipelineConfig{
				ServiceName:    serviceName,
				Dim:            sz.dim,
				Round:          7,
				Tickets:        tbl,
				Workers:        workers,
				Shards:         shards,
				ExpectedCohort: sz.cohort,
				Journal:        store,
			})
		}
		p := newPipe()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%len(batches) == 0 && i > 0 {
				b.StopTimer()
				p.Close()
				p = newPipe()
				b.StartTimer()
			}
			p.AddBatchErrs(batches[i%len(batches)], errs)
			for _, err := range errs {
				if err != nil {
					fatal(err)
				}
			}
		}
		b.StopTimer()
		p.Close()
		if err := store.Close(); err != nil {
			fatal(err)
		}
		b.ReportMetric(float64(b.N*sz.batchItems)/b.Elapsed().Seconds(), "contrib_per_sec")
	})
}

// makeFleetSeals splits one round's cohort across n node pipelines and
// exports each node's signed partial seal — the coordinator-side inputs
// for the fleet merge benches.
func makeFleetSeals(sz sizes, serviceName string, key *xcrypto.SigningKey, round uint64, n int) [][]byte {
	raws := makeRaws(sz.cohort, sz.dim, round, serviceName, key)
	per := len(raws) / n
	seals := make([][]byte, 0, n)
	for node := 0; node < n; node++ {
		p := service.NewPipeline(service.PipelineConfig{
			ServiceName:    serviceName,
			Verify:         key.Public(),
			Dim:            sz.dim,
			Round:          round,
			ExpectedCohort: per + 1,
		})
		for _, raw := range raws[node*per : (node+1)*per] {
			if err := p.Add(raw); err != nil {
				fatal(err)
			}
		}
		nodeKey, err := xcrypto.NewSigningKey()
		if err != nil {
			fatal(err)
		}
		seal, err := p.PartialSeal(service.NodeSeal{
			NodeID:      uint32(node + 1),
			ShardCount:  uint32(n),
			Measurement: tee.Measurement{0xFE, byte(node + 1)},
			Key:         nodeKey,
		})
		if err != nil {
			fatal(err)
		}
		p.Close()
		seals = append(seals, seal)
	}
	return seals
}

// benchFleetMerge measures the coordinator's per-round cost: each op
// starts a fresh merge and absorbs three pre-exported partial seals —
// three ECDSA verifies, the full disjointness sweep over the cohort's
// digests, and the wide-lane partial-sum folds.
func benchFleetMerge(sz sizes, serviceName string, key *xcrypto.SigningKey) testing.BenchmarkResult {
	const round, nodes = 7, 3
	seals := makeFleetSeals(sz, serviceName, key, round, nodes)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := service.NewMerge(service.MergeConfig{
				ServiceName: serviceName,
				Round:       round,
				AllowTOFU:   true,
			})
			for _, seal := range seals {
				if err := m.Absorb(seal); err != nil {
					fatal(err)
				}
			}
			if !m.Complete() {
				fatal(fmt.Errorf("fleet merge incomplete after %d partials", len(seals)))
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "merge_per_sec")
	})
}

// benchFleetIngest3Node runs one sharded round per op: three node
// pipelines on their own goroutines, each ingesting its third of the
// MAC'd cohort through the batch plan and exporting a signed partial
// seal, then a coordinator merge folding the three. The tallied
// contrib_per_sec is the aggregate across all nodes.
func benchFleetIngest3Node(sz sizes, serviceName string) testing.BenchmarkResult {
	const round, nodes = 7, 3
	tbl := service.NewTicketTable(service.TicketConfig{})
	raws := makeTicketedRaws(sz.cohort, sz.dim, round, serviceName, tbl)
	per := len(raws) / nodes
	nodeBatches := make([][][][]byte, nodes)
	nodeKeys := make([]*xcrypto.SigningKey, nodes)
	for n := 0; n < nodes; n++ {
		third := raws[n*per : (n+1)*per]
		for lo := 0; lo < len(third); lo += sz.batchItems {
			hi := min(lo+sz.batchItems, len(third))
			nodeBatches[n] = append(nodeBatches[n], third[lo:hi])
		}
		key, err := xcrypto.NewSigningKey()
		if err != nil {
			fatal(err)
		}
		nodeKeys[n] = key
	}
	errSlices := make([][]error, nodes)
	for n := range errSlices {
		errSlices[n] = make([]error, sz.batchItems)
	}
	seals := make([][]byte, nodes)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for n := 0; n < nodes; n++ {
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					p := service.NewPipeline(service.PipelineConfig{
						ServiceName:    serviceName,
						Dim:            sz.dim,
						Round:          round,
						Tickets:        tbl,
						ExpectedCohort: per + 1,
					})
					for _, batch := range nodeBatches[n] {
						errs := errSlices[n][:len(batch)]
						p.AddBatchErrs(batch, errs)
						for _, err := range errs {
							if err != nil {
								fatal(err)
							}
						}
					}
					seal, err := p.PartialSeal(service.NodeSeal{
						NodeID:      uint32(n + 1),
						ShardCount:  nodes,
						Measurement: tee.Measurement{0xFE, byte(n + 1)},
						Key:         nodeKeys[n],
					})
					if err != nil {
						fatal(err)
					}
					p.Close()
					seals[n] = seal
				}(n)
			}
			wg.Wait()
			m := service.NewMerge(service.MergeConfig{
				ServiceName: serviceName,
				Round:       round,
				AllowTOFU:   true,
			})
			for _, seal := range seals {
				if err := m.Absorb(seal); err != nil {
					fatal(err)
				}
			}
			if !m.Complete() {
				fatal(fmt.Errorf("fleet round incomplete"))
			}
		}
		b.ReportMetric(float64(b.N*per*nodes)/b.Elapsed().Seconds(), "contrib_per_sec")
	})
}

// sweepSuite builds the worker-scaling sweep (-workers-sweep "1,2,4"): the
// ECDSA-bound and ticketed ingest paths at each worker count, with
// GOMAXPROCS raised to match, for the multi-core trajectory artifact. On a
// 1-core runner the curve is flat by construction — the artifact records
// the machine (num_cpu) so readers can tell a flat curve from a scaling
// one.
func sweepSuite(sz sizes, spec string) ([]benchEntry, error) {
	const serviceName = "bench.example"
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		return nil, err
	}
	var entries []benchEntry
	for _, field := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("worker count %q", field)
		}
		entries = append(entries,
			benchEntry{name: fmt.Sprintf("ingest_parallel_w%d", n), run: func() result {
				prev := runtime.GOMAXPROCS(max(n, runtime.NumCPU()))
				defer runtime.GOMAXPROCS(prev)
				return fromBench(benchIngest(sz, serviceName, key, n, 0))
			}},
			benchEntry{name: fmt.Sprintf("ingest_ticketed_parallel_w%d", n), run: func() result {
				prev := runtime.GOMAXPROCS(max(n, runtime.NumCPU()))
				defer runtime.GOMAXPROCS(prev)
				return fromBench(benchTicketedIngest(sz, serviceName, n, 0))
			}},
			benchEntry{name: fmt.Sprintf("ingest_ticketed_batch_w%d", n), run: func() result {
				prev := runtime.GOMAXPROCS(max(n, runtime.NumCPU()))
				defer runtime.GOMAXPROCS(prev)
				return fromBench(benchTicketedBatchIngest(sz, serviceName, n, 0))
			}},
		)
	}
	return entries, nil
}

// benchIngest mirrors BenchmarkAggregatorIngest: one op is one full cohort
// through a fresh pipeline (construction included, as since PR 1), so the
// serial and parallel figures in one artifact are directly comparable.
func benchIngest(sz sizes, serviceName string, key *xcrypto.SigningKey, workers, shards int) testing.BenchmarkResult {
	raws := makeRaws(sz.cohort, sz.dim, 7, serviceName, key)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := service.NewPipeline(service.PipelineConfig{
				ServiceName:    serviceName,
				Verify:         key.Public(),
				Dim:            sz.dim,
				Round:          7,
				Workers:        workers,
				Shards:         shards,
				ExpectedCohort: sz.cohort,
			})
			for _, err := range p.AddBatch(raws) {
				if err != nil {
					fatal(err)
				}
			}
			if err := p.Seal(); err != nil {
				fatal(err)
			}
			if p.Count() != sz.cohort {
				fatal(fmt.Errorf("count = %d, want %d", p.Count(), sz.cohort))
			}
			p.Close()
		}
		b.ReportMetric(float64(sz.cohort*b.N)/b.Elapsed().Seconds(), "contrib_per_sec")
	})
}

func batchesByRound(sz sizes, serviceName string, key *xcrypto.SigningKey) [][][]byte {
	batches := make([][][]byte, sz.batchRounds)
	for r := range batches {
		batches[r] = makeRaws(sz.batchItems, sz.dim, uint64(r)+1, serviceName, key)
	}
	return batches
}

// pipeListener adapts net.Pipe to net.Listener so the gaas server can host
// the in-memory transport.
type pipeListener struct {
	conns  chan net.Conn
	closed chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), closed: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		return nil, net.ErrClosed
	}
}

// benchSubmitTransport measures Client.SubmitBatch through the full gaas
// stack — attested handshake once, then batches through the frame protocol
// — over an in-memory pipe or loopback TCP.
func benchSubmitTransport(sz sizes, serviceName string, key *xcrypto.SigningKey, tcp bool) testing.BenchmarkResult {
	tb, err := newBenchWorld(serviceName, sz.dim)
	if err != nil {
		fatal(err)
	}
	mgr := service.NewRoundManager(service.PipelineConfig{
		ServiceName:    serviceName,
		Verify:         key.Public(),
		Dim:            sz.dim,
		ExpectedCohort: sz.batchItems,
	})
	tb.server.SetIngest(mgr)

	verifier := &tee.QuoteVerifier{Root: tb.as.Root()}
	verifier.Allow(tb.server.Measurement())

	var client *gaas.Client
	var cleanup func()
	if tcp {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go func() { _ = tb.server.Serve(ln) }()
		if client, err = gaas.Dial(ln.Addr().String(), verifier, serviceName); err != nil {
			fatal(err)
		}
		cleanup = func() { client.Close(); ln.Close() }
	} else {
		ln := newPipeListener()
		go func() { _ = tb.server.Serve(ln) }()
		conn, err := ln.dial()
		if err != nil {
			fatal(err)
		}
		if client, err = gaas.DialConn(conn, verifier, serviceName); err != nil {
			fatal(err)
		}
		cleanup = func() { client.Close(); ln.Close() }
	}
	defer cleanup()

	batches := batchesByRound(sz, serviceName, key)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%len(batches) == 0 {
				b.StopTimer()
				for r := range batches {
					mgr.Forget(uint64(r) + 1)
				}
				b.StartTimer()
			}
			accepted, rejected, err := client.SubmitBatch(batches[i%len(batches)])
			if err != nil {
				fatal(err)
			}
			if accepted != sz.batchItems || rejected != 0 {
				fatal(fmt.Errorf("submit = (%d, %d), want (%d, 0)", accepted, rejected, sz.batchItems))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*sz.batchItems)/b.Elapsed().Seconds(), "contrib_per_sec")
	})
}

// benchEdgeTLSIngest measures the hardened public edge end to end: a
// governed TLS server (connection caps and deadlines on, exactly the
// glimmerd -tls-self-signed assembly) sustaining batch ingest from
// edgeConns concurrent connections. Every connection dials, completes its
// TLS handshake, and parks before the clock starts; the timed region is
// pure steady-state submission. Signature verification is off (nil
// Verify) so the figure isolates the transport edge, comparable against
// submit_batch_tcp's single-connection plaintext figure.
func benchEdgeTLSIngest(sz sizes, serviceName string) result {
	const dim = 64
	conns, perConn, items := sz.edgeConns, sz.edgeBatches, sz.edgeItems
	total := conns * perConn * items
	raws := makeRaws(total, dim, 1, serviceName, nil)
	mgr := service.NewRoundManager(service.PipelineConfig{
		ServiceName:    serviceName,
		Dim:            dim,
		ExpectedCohort: total,
	})
	tlsConf, err := gaas.SelfSignedServerTLS("127.0.0.1")
	if err != nil {
		fatal(err)
	}
	server := gaas.New(gaas.ServerConfig{
		Ingest:       mgr,
		TLS:          tlsConf,
		ReadTimeout:  time.Minute,
		WriteTimeout: time.Minute,
		IdleTimeout:  2 * time.Minute,
		MaxConns:     conns + 8,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer ln.Close()
	go func() { _ = server.Serve(ln) }()
	defer server.Shutdown()
	addr := ln.Addr().String()

	dialCfg := gaas.DialConfig{
		NoSession:        true,
		TLS:              gaas.InsecureClientTLS(),
		DialTimeout:      time.Minute,
		HandshakeTimeout: time.Minute,
		CallTimeout:      2 * time.Minute,
	}
	clients := make([]*gaas.Client, conns)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	var dialWG sync.WaitGroup
	sem := make(chan struct{}, 64)
	dialErr := make(chan error, conns)
	for i := range clients {
		dialWG.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer dialWG.Done()
			defer func() { <-sem }()
			c, err := gaas.DialContext(context.Background(), addr, dialCfg)
			if err != nil {
				dialErr <- fmt.Errorf("edge conn %d: %w", i, err)
				return
			}
			clients[i] = c
		}(i)
	}
	dialWG.Wait()
	select {
	case err := <-dialErr:
		fatal(err)
	default:
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i, client := range clients {
		wg.Add(1)
		go func(i int, client *gaas.Client) {
			defer wg.Done()
			base := i * perConn * items
			for b := 0; b < perConn; b++ {
				lo := base + b*items
				accepted, rejected, err := client.SubmitBatch(raws[lo : lo+items])
				if err != nil {
					fatal(fmt.Errorf("edge conn %d batch %d: %v", i, b, err))
				}
				if accepted != items || rejected != 0 {
					fatal(fmt.Errorf("edge conn %d batch %d: submit = (%d, %d), want (%d, 0)",
						i, b, accepted, rejected, items))
				}
			}
		}(i, client)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if got := mgr.Round(1).Count(); got != total {
		fatal(fmt.Errorf("edge round count = %d, want %d", got, total))
	}
	batches := conns * perConn
	return result{
		Iterations: conns,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(batches),
		Metrics: map[string]float64{
			"contrib_per_sec": float64(total) / elapsed.Seconds(),
			"tls_conns":       float64(conns),
		},
	}
}

type benchWorld struct {
	as     *tee.AttestationService
	server *gaas.Server
}

// newBenchWorld assembles the attested gaas hosting stack: attestation
// service, platform, cloud service, and a Glimmer host that provisions a
// fresh enclave per connection.
func newBenchWorld(serviceName string, dim int) (*benchWorld, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, err
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(serviceName, as.Root())
	if err != nil {
		return nil, err
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("range", dim)); err != nil {
		return nil, err
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	server := gaas.NewServer(platform, cfg, func(dev *glimmer.Device) error {
		payload, err := svc.BasePayload()
		if err != nil {
			return err
		}
		return svc.Provision(dev, payload)
	})
	svc.Vet(server.Measurement())
	return &benchWorld{as: as, server: server}, nil
}
