// Command glimmerd hosts a multi-tenant Glimmer-as-a-service daemon (§4.2
// of the paper): a TCP server whose tenant registry serves N services at
// once — each with its own validation predicate, contribution key, and
// aggregation rounds — under one shared round budget. Clients name their
// service in the hello and get a fresh enclave loaded from that tenant's
// configuration; submitted contribution batches are routed to their
// tenant's pipeline by the service name each contribution carries.
//
// The daemon assembles a self-contained demo deployment — a simulated
// attestation service, a platform, and the requested tenants — and prints
// the per-tenant measurements clients must pin. In a real deployment the
// services and attestation root would live elsewhere; the wire protocol
// (internal/gaas) is the same.
//
// Tenants: the -service/-dim flags define the primary tenant (a [0,1]
// range check over -dim weights); -tenants adds more, as a comma-separated
// list of name:dim (range-check tenant) or name:bot (the §4.1 bot
// detector: one-bit verdict contributions counting human sessions).
//
// The serving edge is governed for public exposure: TLS transport
// (-tls-self-signed, or -tls-cert/-tls-key for a CA-issued pair),
// connection caps (-max-conns, -max-conns-per-ip), per-connection
// deadlines (-read-timeout, -write-timeout, -idle-timeout), and load
// shedding for the ingest pipelines (-max-inflight-batches). Excess work
// is refused with a typed shed error, never queued into a hang.
// -write-known-hosts exports each tenant's measurement as a gaas
// known-hosts pin so clients can be provisioned without the TOFU leap of
// faith.
//
// Fleet mode shards rounds across several glimmerd processes: -node-id
// names this node on the consistent-hash ring, -peers lists the node set
// (id=addr pairs; batching clients route with the same ring via
// gaas.DialFleet), and -coordinator selects the merge role — "self"
// serves the fleet-merge command from an in-process merge hub (TOFU node
// pinning), while host:port ships this node's signed partial seals to a
// remote coordinator when the daemon drains. The fleet plane
// (fleet-forward for peer batches, fleet-merge for partial seals) mounts
// whenever either flag is set.
//
// On SIGINT/SIGTERM the daemon stops accepting, drains in-flight batches,
// seals every open round, and prints per-tenant sealed sums, rejection
// counters, the edge governance counters, and — in fleet mode — the node
// role and partial-seal merge counters before exiting.
//
// Usage:
//
//	glimmerd -listen 127.0.0.1:7433 -dim 16 -workers 8 -shards 32 \
//	  -tls-self-signed -max-conns 4096 -max-conns-per-ip 64 \
//	  -tenants sensors.example:8,webservice.example:bot
//
//	glimmerd -listen 127.0.0.1:7441 -node-id 1 \
//	  -peers 1=127.0.0.1:7441,2=127.0.0.1:7442,3=127.0.0.1:7443 \
//	  -coordinator 127.0.0.1:7450
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"glimmers/internal/audit"
	"glimmers/internal/botdetect"
	"glimmers/internal/durable"
	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// parsePeers parses "1=host:port,2=host:port" into the fleet node set.
func parsePeers(s string) ([]gaas.FleetNode, error) {
	if s == "" {
		return nil, nil
	}
	var nodes []gaas.FleetNode
	for _, entry := range strings.Split(s, ",") {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || addr == "" {
			return nil, fmt.Errorf("peer %q: want id=host:port", entry)
		}
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("peer %q: node id must be a positive integer", entry)
		}
		nodes = append(nodes, gaas.FleetNode{ID: uint32(id), Addr: addr})
	}
	return nodes, nil
}

// tenantSpec is one parsed -tenants entry.
type tenantSpec struct {
	name string
	dim  int
	bot  bool
}

// parseTenants parses "name:dim,name:bot" into specs.
func parseTenants(s string) ([]tenantSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []tenantSpec
	for _, entry := range strings.Split(s, ",") {
		name, kind, ok := strings.Cut(strings.TrimSpace(entry), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant %q: want name:dim or name:bot", entry)
		}
		if kind == "bot" {
			specs = append(specs, tenantSpec{name: name, dim: botdetect.TenantDim, bot: true})
			continue
		}
		dim, err := strconv.Atoi(kind)
		if err != nil || dim <= 0 {
			return nil, fmt.Errorf("tenant %q: dimension must be a positive integer", entry)
		}
		specs = append(specs, tenantSpec{name: name, dim: dim})
	}
	return specs, nil
}

// addTenant assembles one tenant: its cloud service, predicate, hosting
// enclave config, and registry entry.
func addTenant(registry *service.Registry, as *tee.AttestationService, spec tenantSpec, workers, shards int, ticketTTL int64) (*service.Tenant, error) {
	svc, err := service.New(spec.name, as.Root())
	if err != nil {
		return nil, err
	}
	pred := predicate.UnitRangeCheck("unit-range", spec.dim)
	if spec.bot {
		pred = botdetect.DefaultDetector.TenantPredicate("bot-tenant")
	}
	if err := svc.SetPredicate(pred); err != nil {
		return nil, err
	}
	cfg, err := svc.GlimmerConfig(spec.dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	svc.Vet(glimmer.BuildBinary(cfg).Measurement())
	// Session tickets (the amortized fast path): one ECDSA-verified grant
	// per client session, constant-time MACs per contribution thereafter.
	var ticketPolicy *service.TicketConfig
	if ticketTTL > 0 {
		ticketPolicy = &service.TicketConfig{TTL: ticketTTL}
	}
	tenant, err := registry.AddTenant(service.TenantConfig{
		Name:         spec.name,
		Verify:       svc.ContributionVerifyKey(),
		Dim:          spec.dim,
		TicketPolicy: ticketPolicy,
		Workers:      workers,
		Shards:       shards,
		// Unattended daemon: rounds march forward forever, so evict the
		// least-filled round at the quota instead of wedging ingest, and
		// refuse rounds far from the ones in flight (the round number is
		// client-chosen).
		EvictAtCap:  true,
		RoundWindow: 16,
		Glimmer:     cfg,
		Provision: func(dev *glimmer.Device) error {
			payload, err := svc.BasePayload()
			if err != nil {
				return err
			}
			return svc.Provision(dev, payload)
		},
	})
	if err != nil {
		return nil, err
	}
	tenant.Manager().Vet(glimmer.BuildBinary(cfg).Measurement())
	return tenant, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7433", "address to listen on")
	dim := flag.Int("dim", 16, "primary tenant's contribution dimensionality")
	serviceName := flag.String("service", "demo.glimmers.example", "primary tenant's service name")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "verifier workers per aggregation round")
	shards := flag.Int("shards", 0, "dedup/sum shards per round (0 = 2×workers)")
	tenants := flag.String("tenants", "", "extra tenants: name:dim or name:bot, comma-separated")
	maxRounds := flag.Int("max-total-rounds", service.DefaultMaxTotalRounds,
		"shared budget: live rounds across all tenants")
	ticketTTL := flag.Int64("ticket-ttl", service.DefaultTicketTTL,
		"session-ticket lifetime in seconds (0 disables the MAC fast path)")
	stateDir := flag.String("state-dir", "",
		"durable state directory: recover snapshot+WAL on start, snapshot on shutdown (empty disables)")
	walFlushBytes := flag.Int("wal-flush-bytes", durable.DefaultFlushBytes,
		"WAL group-commit: staged bytes that trigger an early flush (4x this applies ingest backpressure)")
	walFlushInterval := flag.Duration("wal-flush-interval", durable.DefaultFlushInterval,
		"WAL group-commit: max time an async record stays staged — the crash-loss window for unsealed accepts")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute,
		"reap connections idle longer than this (0 disables)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second,
		"reap connections that take longer than this to deliver one started frame (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second,
		"fail reply writes that take longer than this (0 disables)")
	maxConns := flag.Int("max-conns", 4096,
		"concurrently served connections; excess is refused with a shed error (0 = unlimited)")
	maxConnsPerIP := flag.Int("max-conns-per-ip", 64,
		"concurrently served connections per client IP (0 = unlimited)")
	maxInflight := flag.Int("max-inflight-batches", 256,
		"contribution batches concurrently inside the pipelines; excess is shed (0 = unlimited)")
	tlsSelfSigned := flag.Bool("tls-self-signed", false,
		"serve TLS with a fresh self-signed cert (transport privacy; client trust stays with attestation)")
	tlsCert := flag.String("tls-cert", "", "serve TLS with this certificate file (requires -tls-key)")
	tlsKey := flag.String("tls-key", "", "TLS private key file for -tls-cert")
	writeKnownHosts := flag.String("write-known-hosts", "",
		"write each tenant's measurement pin to this gaas known-hosts file and continue serving")
	nodeID := flag.Uint("node-id", 0,
		"fleet: this node's ring identity (0 = standalone; required with -peers)")
	peers := flag.String("peers", "",
		"fleet: the full node set as id=host:port pairs, comma-separated (must include -node-id)")
	coordinator := flag.String("coordinator", "",
		`fleet: "self" serves the fleet-merge command here; host:port ships this node's partial seals there on drain`)
	flag.Parse()

	switch {
	case *dim <= 0:
		log.Fatalf("glimmerd: -dim must be positive, got %d", *dim)
	case *workers <= 0:
		log.Fatalf("glimmerd: -workers must be positive, got %d", *workers)
	case *shards < 0:
		log.Fatalf("glimmerd: -shards must be non-negative, got %d", *shards)
	case *maxRounds <= 0:
		log.Fatalf("glimmerd: -max-total-rounds must be positive, got %d", *maxRounds)
	case *serviceName == "":
		log.Fatal("glimmerd: -service must not be empty")
	case *ticketTTL < 0:
		log.Fatalf("glimmerd: -ticket-ttl must be non-negative, got %d", *ticketTTL)
	case *idleTimeout < 0:
		log.Fatalf("glimmerd: -idle-timeout must be non-negative, got %v", *idleTimeout)
	case *readTimeout < 0 || *writeTimeout < 0:
		log.Fatalf("glimmerd: timeouts must be non-negative")
	case *maxConns < 0 || *maxConnsPerIP < 0 || *maxInflight < 0:
		log.Fatalf("glimmerd: connection and batch caps must be non-negative")
	case *walFlushBytes <= 0 || *walFlushInterval <= 0:
		log.Fatal("glimmerd: -wal-flush-bytes and -wal-flush-interval must be positive")
	case *tlsSelfSigned && (*tlsCert != "" || *tlsKey != ""):
		log.Fatal("glimmerd: -tls-self-signed and -tls-cert/-tls-key are mutually exclusive")
	case (*tlsCert == "") != (*tlsKey == ""):
		log.Fatal("glimmerd: -tls-cert and -tls-key must be set together")
	case *nodeID > uint(^uint32(0)):
		log.Fatalf("glimmerd: -node-id must fit in 32 bits, got %d", *nodeID)
	}
	peerNodes, err := parsePeers(*peers)
	if err != nil {
		log.Fatalf("glimmerd: -peers: %v", err)
	}
	if len(peerNodes) > 0 {
		if *nodeID == 0 {
			log.Fatal("glimmerd: -peers requires -node-id")
		}
		found := false
		for _, n := range peerNodes {
			found = found || n.ID == uint32(*nodeID)
		}
		if !found {
			log.Fatalf("glimmerd: -peers does not include this node's id %d", *nodeID)
		}
	}
	if *coordinator != "" && *coordinator != "self" && *nodeID == 0 {
		log.Fatal("glimmerd: shipping partial seals (-coordinator host:port) requires -node-id")
	}
	specs := []tenantSpec{{name: *serviceName, dim: *dim}}
	extra, err := parseTenants(*tenants)
	if err != nil {
		log.Fatalf("glimmerd: -tenants: %v", err)
	}
	specs = append(specs, extra...)

	as, err := tee.NewAttestationService()
	if err != nil {
		log.Fatalf("attestation service: %v", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		log.Fatalf("platform: %v", err)
	}
	registry := service.NewRegistry(*maxRounds)
	for _, spec := range specs {
		if _, err := addTenant(registry, as, spec, *workers, *shards, *ticketTTL); err != nil {
			log.Fatalf("tenant %q: %v", spec.name, err)
		}
	}

	// Durable state: recover before serving, snapshot after draining.
	// Only aggregates, digests, counters, and ticket keys are persisted —
	// never raw contributions (see README, "Durability"). Recovery and
	// snapshot events go to <state-dir>/audit.log.
	var store *durable.Store
	if *stateDir != "" {
		store, err = durable.OpenConfig(*stateDir, durable.Config{
			FlushBytes:    *walFlushBytes,
			FlushInterval: *walFlushInterval,
		})
		if err != nil {
			log.Fatalf("state dir: %v", err)
		}
		auditFile, err := os.OpenFile(filepath.Join(*stateDir, "audit.log"),
			os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("audit log: %v", err)
		}
		defer auditFile.Close()
		store.SetAudit(audit.NewLog(auditFile, nil))
		stats, err := store.Recover(registry)
		if err != nil {
			log.Fatalf("recover: %v", err)
		}
		fmt.Printf("glimmerd: recovered state dir %s: snapshot=%v generation=%d wal_records=%d truncated=%dB replay_errors=%d\n",
			*stateDir, stats.SnapshotLoaded, stats.Generation, stats.Records, stats.TruncatedBytes, stats.ReplayErrors)
	}

	// The TLS transport denies passive observers the frame plaintext; the
	// trust decision stays with attestation (clients pin measurements, not
	// certificates), so a self-signed cert is a legitimate deployment.
	var tlsConf *tls.Config
	switch {
	case *tlsSelfSigned:
		host := *listen
		if h, _, err := net.SplitHostPort(*listen); err == nil && h != "" {
			host = h
		}
		tlsConf, err = gaas.SelfSignedServerTLS(host)
		if err != nil {
			log.Fatalf("tls: %v", err)
		}
	case *tlsCert != "":
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("tls: %v", err)
		}
		tlsConf = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	}

	server := gaas.New(gaas.ServerConfig{
		Platform:           platform,
		Hosts:              registry,
		Ingest:             registry,
		TLS:                tlsConf,
		ReadTimeout:        *readTimeout,
		WriteTimeout:       *writeTimeout,
		IdleTimeout:        *idleTimeout,
		MaxConns:           *maxConns,
		MaxConnsPerIP:      *maxConnsPerIP,
		MaxInflightBatches: *maxInflight,
	})

	// Fleet plane: peer batch forwarding always mounts in fleet mode; the
	// merge hub mounts only on the coordinator. The node signing key is
	// per-process — coordinators pin it on first use, so a later key swap
	// under the same node id is refused.
	fleetMode := *nodeID != 0 || *coordinator != ""
	var hub *service.MergeHub
	if *coordinator == "self" {
		hub = &service.MergeHub{AllowTOFU: true}
	}
	var nodeKey *xcrypto.SigningKey
	if fleetMode {
		if nodeKey, err = xcrypto.NewSigningKey(); err != nil {
			log.Fatalf("fleet node key: %v", err)
		}
		var forward gaas.Ingestor
		if *nodeID != 0 {
			forward = registry
		}
		server.Mux().HandleFleet(forward, hub)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	transport := "tcp"
	if tlsConf != nil {
		transport = "tcp+tls"
	}
	fmt.Printf("glimmerd: serving %d tenant(s) on %s over %s (budget %d rounds, %d verifier workers/round)\n",
		len(specs), ln.Addr(), transport, *maxRounds, *workers)
	fmt.Printf("glimmerd: edge limits: max-conns=%d per-ip=%d inflight-batches=%d read=%v write=%v idle=%v\n",
		*maxConns, *maxConnsPerIP, *maxInflight, *readTimeout, *writeTimeout, *idleTimeout)
	if fleetMode {
		fmt.Printf("glimmerd: fleet: role=%s peers=%d coordinator=%q\n",
			fleetRole(uint32(*nodeID), hub != nil), len(peerNodes), *coordinator)
	}
	for _, t := range registry.Tenants() {
		meas, err := server.MeasurementFor(t.Name())
		if err != nil {
			log.Fatalf("tenant %q: %v", t.Name(), err)
		}
		fmt.Printf("glimmerd: tenant %-28s dim=%-4d measurement %s (clients must pin this)\n",
			t.Name(), t.Config().Dim, meas)
	}
	if *writeKnownHosts != "" {
		// Export the pins in the client's known-hosts format: devices
		// provisioned from this file skip the TOFU leap of faith entirely.
		known, err := gaas.LoadKnownHosts(*writeKnownHosts)
		if err != nil {
			log.Fatalf("known hosts: %v", err)
		}
		for _, t := range registry.Tenants() {
			if err := known.Pin(t.Name(), t.Measurement()); err != nil {
				log.Fatalf("known hosts: %v", err)
			}
		}
		fmt.Printf("glimmerd: wrote %d measurement pin(s) to %s\n", known.Len(), *writeKnownHosts)
	}

	// Graceful shutdown: stop accepting, drain in-flight batches, then
	// report per-tenant sealed sums and rejection counters.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("glimmerd: %v: stopping accept loop, draining in-flight batches\n", sig)
		_ = ln.Close()
	}()

	if err := server.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	server.Shutdown() // waits for every connection handler to settle
	stats := server.Stats()
	fmt.Printf("glimmerd: edge counters: refused-max-conns=%d refused-per-ip=%d shed-batches=%d\n",
		stats.RefusedMaxConns, stats.RefusedPerIP, stats.ShedBatches)
	reportTenants(registry)
	if fleetMode {
		// Ship this node's partial seals before snapshotting: the rounds
		// are sealed (reportTenants fixed every cohort), so each export is
		// the round's final partial.
		if *coordinator != "" && *coordinator != "self" {
			shardCount := uint32(len(peerNodes))
			if shardCount == 0 {
				shardCount = 1
			}
			shipPartialSeals(registry, server, *coordinator, service.NodeSeal{
				NodeID:      uint32(*nodeID),
				ShardCount:  shardCount,
				Measurement: server.Measurement(),
				Key:         nodeKey,
			})
		}
		if hub != nil {
			for svc, rounds := range hub.Merges() {
				for _, round := range rounds {
					if m, ok := hub.Lookup(svc, round); ok {
						res := m.Result()
						fmt.Printf("glimmerd: merge %s round %-6d partials=%d/%d cohort=%d rejected=%d refused=%d complete=%v\n",
							svc, round, res.Merged, res.Expect, res.Count, res.Rejected, res.Refused, m.Complete())
					}
				}
			}
		}
		fs := server.FleetStats()
		fmt.Printf("glimmerd: fleet counters: role=%s partials sent=%d received=%d refused=%d forwarded-batches=%d\n",
			fleetRole(uint32(*nodeID), hub != nil), fs.PartialsSent, fs.PartialsReceived, fs.PartialsRefused, fs.ForwardedBatches)
	}
	if store != nil {
		ws := store.Stats()
		coalesce := float64(ws.Records)
		if ws.Writes > 0 {
			coalesce = float64(ws.Records) / float64(ws.Writes)
		}
		fmt.Printf("glimmerd: wal: records=%d writes=%d (%.1f rec/write) bytes=%d syncs=%d barrier_waits=%d staged_peak=%dB\n",
			ws.Records, ws.Writes, coalesce, ws.BytesWritten, ws.Syncs, ws.BarrierWaits, ws.StagedPeak)
		// Ingest is quiesced (listener closed, handlers drained, rounds
		// sealed by the report), so the image is consistent by contract.
		if err := store.Snapshot(registry); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Fatalf("state close: %v", err)
		}
		fmt.Printf("glimmerd: state snapshotted to %s\n", *stateDir)
	}
}

// fleetRole names this process's fleet role for the status lines.
func fleetRole(nodeID uint32, coordinator bool) string {
	switch {
	case nodeID != 0 && coordinator:
		return fmt.Sprintf("node-%d+coordinator", nodeID)
	case nodeID != 0:
		return fmt.Sprintf("node-%d", nodeID)
	case coordinator:
		return "coordinator"
	default:
		return "standalone"
	}
}

// shipPartialSeals exports every tenant round's signed partial seal and
// ships it to the remote merge coordinator. Shipping is best-effort at
// drain time: a refused or unreachable coordinator is reported, not
// fatal — the durable snapshot still holds the partials for a retry.
func shipPartialSeals(registry *service.Registry, server *gaas.Server, addr string, node service.NodeSeal) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client, err := gaas.DialContext(ctx, addr, gaas.DialConfig{NoSession: true})
	if err != nil {
		fmt.Printf("glimmerd: coordinator %s unreachable: %v\n", addr, err)
		return
	}
	defer client.Close()
	for _, t := range registry.Tenants() {
		m := t.Manager()
		for _, round := range m.Rounds() {
			seal, err := m.ExportPartialSeal(round, node)
			if err != nil {
				fmt.Printf("glimmerd: partial seal %s round %d: %v\n", t.Name(), round, err)
				continue
			}
			res, err := client.MergePartialSeal(seal)
			if err != nil {
				fmt.Printf("glimmerd: coordinator refused %s round %d: %v\n", t.Name(), round, err)
				continue
			}
			server.NotePartialSent()
			fmt.Printf("glimmerd: shipped partial %s round %-6d merge now %d/%d partials cohort=%d\n",
				t.Name(), round, res.Merged, res.Expect, res.Count)
		}
	}
}

// reportTenants seals every live round and prints each tenant's final
// aggregation state.
func reportTenants(registry *service.Registry) {
	for _, t := range registry.Tenants() {
		m := t.Manager()
		rejected := m.Rejected()
		fmt.Printf("glimmerd: tenant %s\n", t.Name())
		for _, round := range m.Rounds() {
			p, ok := m.Lookup(round)
			if !ok {
				continue
			}
			_ = p.Seal() // fix the cohort; a closed round is already final
			rejected += p.Rejected()
			fmt.Printf("glimmerd:   round %-6d sealed: accepted=%-6d sum=%s\n",
				round, p.Count(), p.Sum().Digest())
		}
		fmt.Printf("glimmerd:   rejected total: %d (manager + pipelines)\n", rejected)
	}
	fmt.Printf("glimmerd: routing rejections (unroutable/unknown tenant): %d\n", registry.Rejected())
}
