// Command glimmerd hosts a Glimmer-as-a-service daemon (§4.2 of the
// paper): a TCP server that loads a fresh Glimmer enclave per connection so
// devices without trusted hardware can use one remotely.
//
// The daemon assembles a self-contained demo deployment — a simulated
// attestation service, a platform, and a service enforcing a [0,1] range
// check over -dim weights — and prints the measurement clients must pin.
// In a real deployment the service and attestation root would live
// elsewhere; the wire protocol (internal/gaas) is the same.
//
// The daemon also ingests: clients batch their signed contributions into
// one submit-batch frame and the daemon routes them through a concurrent,
// sharded aggregation pipeline (service.RoundManager), keeping overlapping
// rounds open at once.
//
// Usage:
//
//	glimmerd -listen 127.0.0.1:7433 -dim 16 -workers 8 -shards 32
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"runtime"

	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7433", "address to listen on")
	dim := flag.Int("dim", 16, "contribution dimensionality")
	serviceName := flag.String("service", "demo.glimmers.example", "service name")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "verifier workers per aggregation round")
	shards := flag.Int("shards", 0, "dedup/sum shards per round (0 = 2×workers)")
	flag.Parse()

	as, err := tee.NewAttestationService()
	if err != nil {
		log.Fatalf("attestation service: %v", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		log.Fatalf("platform: %v", err)
	}
	svc, err := service.New(*serviceName, as.Root())
	if err != nil {
		log.Fatalf("service: %v", err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("unit-range", *dim)); err != nil {
		log.Fatalf("predicate: %v", err)
	}
	cfg, err := svc.GlimmerConfig(*dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		log.Fatalf("config: %v", err)
	}
	server := gaas.NewServer(platform, cfg, func(dev *glimmer.Device) error {
		payload, err := svc.BasePayload()
		if err != nil {
			return err
		}
		return svc.Provision(dev, payload)
	})
	svc.Vet(server.Measurement())

	rounds := service.NewRoundManager(service.PipelineConfig{
		ServiceName: *serviceName,
		Verify:      svc.ContributionVerifyKey(),
		Dim:         *dim,
		Workers:     *workers,
		Shards:      *shards,
	})
	// Unattended daemon: rounds march forward forever, so evict the
	// least-filled round at the cap instead of wedging ingest, and refuse
	// rounds far from the ones in flight (the round number is
	// client-chosen).
	rounds.EvictAtCap = true
	rounds.RoundWindow = 16
	rounds.Vet(server.Measurement())
	server.SetIngest(rounds)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("glimmerd: serving %q glimmers on %s\n", *serviceName, ln.Addr())
	fmt.Printf("glimmerd: vetted measurement %s (clients must pin this)\n", server.Measurement())
	fmt.Printf("glimmerd: ingest pipeline: %d verifier workers per round\n", *workers)
	if err := server.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
