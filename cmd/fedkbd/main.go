// Command fedkbd drives the paper's running example end to end: a
// federated predictive-keyboard round across a simulated user population,
// with a configurable number of poisoning attackers, with and without
// Glimmer protection.
//
// Usage:
//
//	fedkbd -users 24 -words 500 -attackers 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"glimmers/internal/blind"
	"glimmers/internal/fedml"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/keyboard"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

func main() {
	users := flag.Int("users", 24, "population size")
	words := flag.Int("words", 500, "words typed per user")
	attackers := flag.Int("attackers", 1, "poisoning attackers (each submits 538)")
	seed := flag.String("seed", "fedkbd", "simulation seed")
	flag.Parse()
	if *attackers > *users {
		log.Fatalf("attackers (%d) cannot exceed users (%d)", *attackers, *users)
	}

	pop, err := keyboard.TrendingScenario([]byte(*seed), *users, *words)
	if err != nil {
		log.Fatal(err)
	}
	vocab := pop.Corpus.Vocabulary()
	fmt.Printf("population: %d users, %d words each, vocabulary %d (model dims %d)\n",
		*users, *words, vocab.Size(), vocab.Dims())
	fmt.Printf("trending bigrams: %v\n\n", pop.TopBigrams(5))

	models := make([]*fedml.Model, *users)
	for i, u := range pop.Users {
		models[i] = fedml.TrainLocal(u.Activity, vocab)
	}
	for a := 0; a < *attackers; a++ {
		if err := fedml.Poison(models[a], "donald", "dont", 538); err != nil {
			log.Fatal(err)
		}
	}

	// Unprotected round: blinded aggregation hides the poison.
	unprotected, err := fedml.Aggregate(models...)
	if err != nil {
		log.Fatal(err)
	}
	top, w, err := unprotected.Predict("donald")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without glimmers: \"donald\" -> %q (weight %.3f)\n", top, w)

	// Protected round: every contribution passes through a Glimmer.
	as, err := tee.NewAttestationService()
	if err != nil {
		log.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New("nextwordpredictive.com", as.Root())
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("unit-range", vocab.Dims())); err != nil {
		log.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(vocab.Dims(), glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		log.Fatal(err)
	}
	masks, err := blind.ZeroSumMasks([]byte(*seed+"-masks"), *users, vocab.Dims())
	if err != nil {
		log.Fatal(err)
	}
	const round = 1
	agg := service.NewPipeline(service.PipelineConfig{
		ServiceName: svc.Name(),
		Verify:      svc.ContributionVerifyKey(),
		Dim:         vocab.Dims(),
		Round:       round,
		Workers:     1,
		Shards:      1,
	})
	rejected := 0
	unusedMasks := fixed.NewVector(vocab.Dims())
	for i, m := range models {
		dev, err := glimmer.NewDevice(platform, cfg)
		if err != nil {
			log.Fatal(err)
		}
		svc.Vet(dev.Measurement())
		agg.Vet(dev.Measurement())
		payload, err := svc.BasePayload()
		if err != nil {
			log.Fatal(err)
		}
		payload.Masks = map[uint64][]uint64{round: glimmer.VectorToBits(masks[i])}
		if err := svc.Provision(dev, payload); err != nil {
			log.Fatal(err)
		}
		sc, err := dev.Contribute(round, m.Weights, nil)
		if err != nil {
			if errors.Is(err, glimmer.ErrRejected) {
				rejected++
				unusedMasks.AddInPlace(masks[i])
				continue
			}
			log.Fatal(err)
		}
		if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
			log.Fatal(err)
		}
	}
	if err := agg.CorrectDropout(unusedMasks); err != nil {
		log.Fatal(err)
	}
	mean, err := agg.Mean()
	if err != nil {
		log.Fatal(err)
	}
	protected, err := fedml.FromWeights(vocab, mean)
	if err != nil {
		log.Fatal(err)
	}
	topP, wP, err := protected.Predict("donald")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with glimmers:    \"donald\" -> %q (weight %.3f)\n", topP, wP)
	fmt.Printf("glimmers rejected %d/%d contributions at the client\n", rejected, *users)
}
