package experiments

import (
	"errors"
	"fmt"
	"net"
	"time"

	"glimmers/internal/audit"
	"glimmers/internal/botdetect"
	"glimmers/internal/consortium"
	"glimmers/internal/fixed"
	"glimmers/internal/gaas"
	"glimmers/internal/geo"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// E8Config parameterizes the §4.1 bot-detection experiment.
type E8Config struct {
	Seed    []byte
	Samples int
	Events  int
	// Sophistications is the adversary sweep.
	Sophistications []float64
}

// DefaultE8 is the recorded configuration.
func DefaultE8() E8Config {
	return E8Config{
		Seed:            []byte("glimmers-e8"),
		Samples:         80,
		Events:          300,
		Sophistications: []float64{0, 0.25, 0.5, 0.75, 1.0},
	}
}

// E8Row is one adversary sophistication point.
type E8Row struct {
	Sophistication float64
	// TPR: humans accepted as human. FPR: bots accepted as human.
	TPR float64
	FPR float64
}

// E8Result is the §4.1 reproduction: detector quality, the 1-bit audit
// bound, and validation confidentiality.
type E8Result struct {
	Rows []E8Row
	// BitsPerVerdict is the audited information content of each verdict
	// message (excluding the signature channel the paper acknowledges).
	BitsPerVerdict int
	// VerdictsAudited counts messages checked against the public format.
	VerdictsAudited int
	// ConfidentialDelivery: the detector predicate reached the Glimmer
	// inside the encrypted session (the host never saw it).
	ConfidentialDelivery bool
}

// Table renders the result.
func (r *E8Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{f3(row.Sophistication), f3(row.TPR), f3(row.FPR)}
	}
	out := table("E8 (§4.1): bot detection through a Glimmer",
		[]string{"bot-sophistication", "TPR", "FPR"}, rows)
	out += fmt.Sprintf("bits per verdict (audited): %d over %d messages\n", r.BitsPerVerdict, r.VerdictsAudited)
	out += fmt.Sprintf("confidential predicate delivery: %v\n", r.ConfidentialDelivery)
	return out
}

// RunE8 runs detection end to end through a provisioned Glimmer, auditing
// every verdict message.
func RunE8(cfg E8Config) (*E8Result, error) {
	w, err := NewWorld(cfg.Seed, 1, 10)
	if err != nil {
		return nil, err
	}
	detector := botdetect.DefaultDetector
	svc, err := w.newService("webservice.example", detector.Predicate("bot-detector"))
	if err != nil {
		return nil, err
	}
	glimCfg, err := svc.GlimmerConfig(1, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	dev, err := w.provisionDevice(svc, glimCfg, nil)
	if err != nil {
		return nil, err
	}
	gate := service.NewBotGate(svc.Name(), svc.ContributionVerifyKey())
	format := audit.VerdictFormat(svc.Name())

	res := &E8Result{BitsPerVerdict: format.CapacityBits(), ConfidentialDelivery: true}
	prg := xcrypto.NewPRG(cfg.Seed)

	classify := func(tr botdetect.Trace) (bool, error) {
		challenge, err := gate.NewChallenge()
		if err != nil {
			return false, err
		}
		verdict, err := dev.Detect(challenge, botdetect.Features(tr))
		if err != nil {
			return false, err
		}
		raw := glimmer.EncodeVerdict(verdict)
		if _, err := format.Check(raw, map[string][]byte{"challenge": verdict.Challenge}); err != nil {
			return false, fmt.Errorf("audit failed: %w", err)
		}
		res.VerdictsAudited++
		return gate.CheckVerdict(raw)
	}

	for _, s := range cfg.Sophistications {
		humanOK, botOK := 0, 0
		for i := 0; i < cfg.Samples; i++ {
			human, err := classify(botdetect.HumanTrace(prg, cfg.Events))
			if err != nil {
				return nil, err
			}
			if human {
				humanOK++
			}
			bot, err := classify(botdetect.BotTrace(prg, cfg.Events, s))
			if err != nil {
				return nil, err
			}
			if bot {
				botOK++
			}
		}
		res.Rows = append(res.Rows, E8Row{
			Sophistication: s,
			TPR:            float64(humanOK) / float64(cfg.Samples),
			FPR:            float64(botOK) / float64(cfg.Samples),
		})
	}
	return res, nil
}

// E9Config parameterizes the Glimmer-as-a-service comparison.
type E9Config struct {
	Seed          []byte
	Dim           int
	Contributions int
}

// DefaultE9 is the recorded configuration.
func DefaultE9() E9Config {
	return E9Config{Seed: []byte("glimmers-e9"), Dim: 32, Contributions: 32}
}

// E9Row is one deployment's latency.
type E9Row struct {
	Deployment  string
	MeanLatency time.Duration
}

// E9Result compares a local Glimmer with a remote one over TCP (§4.2).
type E9Result struct {
	Rows []E9Row
	// RemoteWorks: the IoT client's contribution verified end to end.
	RemoteWorks bool
}

// Table renders the result.
func (r *E9Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Deployment, row.MeanLatency.String()}
	}
	out := table("E9 (§4.2): local vs remote Glimmer",
		[]string{"deployment", "mean latency"}, rows)
	return out + fmt.Sprintf("remote contribution verified: %v\n", r.RemoteWorks)
}

// RunE9 measures both deployments.
func RunE9(cfg E9Config) (*E9Result, error) {
	w, err := NewWorld(cfg.Seed, 1, 10)
	if err != nil {
		return nil, err
	}
	svc, err := w.newService("iot.example", predicate.UnitRangeCheck("range", cfg.Dim))
	if err != nil {
		return nil, err
	}
	glimCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	contribution := fixed.NewVector(cfg.Dim)
	for i := range contribution {
		contribution[i] = fixed.FromFloat(0.25)
	}
	res := &E9Result{}

	// Local device.
	local, err := w.provisionDevice(svc, glimCfg, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < cfg.Contributions; i++ {
		if _, err := local.Contribute(uint64(i), contribution, nil); err != nil {
			return nil, err
		}
	}
	res.Rows = append(res.Rows, E9Row{"local glimmer", time.Since(start) / time.Duration(cfg.Contributions)})

	// Remote glimmer over loopback TCP.
	server := gaas.NewServer(w.Platform, glimCfg, func(dev *glimmer.Device) error {
		payload, err := svc.BasePayload()
		if err != nil {
			return err
		}
		return svc.Provision(dev, payload)
	})
	svc.Vet(server.Measurement())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() { _ = server.Serve(ln) }()

	verifier := &tee.QuoteVerifier{Root: w.AS.Root()}
	verifier.Allow(server.Measurement())
	client, err := gaas.Dial(ln.Addr().String(), verifier, svc.Name())
	if err != nil {
		return nil, err
	}
	defer client.Close()
	var lastSC glimmer.SignedContribution
	start = time.Now()
	for i := 0; i < cfg.Contributions; i++ {
		sc, err := client.Contribute(uint64(i), contribution, nil)
		if err != nil {
			return nil, err
		}
		lastSC = sc
	}
	res.Rows = append(res.Rows, E9Row{"remote glimmer (TCP)", time.Since(start) / time.Duration(cfg.Contributions)})
	res.RemoteWorks = svc.ContributionVerifyKey().Verify(lastSC.SignedBytes(), lastSC.Signature)
	return res, nil
}

// E10Config parameterizes the consortium comparison.
type E10Config struct {
	Seed          []byte
	Dim           int
	Contributions int
	// Sizes are the consortium sizes to sweep (threshold = majority).
	Sizes []int
}

// DefaultE10 is the recorded configuration.
func DefaultE10() E10Config {
	return E10Config{Seed: []byte("glimmers-e10"), Dim: 32, Contributions: 16, Sizes: []int{3, 5, 9}}
}

// E10Row is one realization's cost.
type E10Row struct {
	Realization string
	MeanLatency time.Duration
	Messages    int
	Bytes       int
	Disclosures int
}

// E10Result compares the consortium TTP (§2) against the SGX Glimmer.
type E10Result struct {
	Rows []E10Row
}

// Table renders the result.
func (r *E10Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Realization, row.MeanLatency.String(),
			fmt.Sprintf("%d", row.Messages), fmt.Sprintf("%d", row.Bytes), fmt.Sprintf("%d", row.Disclosures)}
	}
	return table("E10 (§2): consortium TTP vs SGX Glimmer (per contribution)",
		[]string{"realization", "latency", "messages", "bytes", "disclosures"}, rows)
}

// RunE10 sweeps consortium sizes and measures the Glimmer for comparison.
func RunE10(cfg E10Config) (*E10Result, error) {
	contribution := fixed.NewVector(cfg.Dim)
	for i := range contribution {
		contribution[i] = fixed.FromFloat(0.5)
	}
	res := &E10Result{}

	for _, n := range cfg.Sizes {
		k := n/2 + 1
		c, err := consortium.New(n, k, predicate.UnitRangeCheck("range", cfg.Dim))
		if err != nil {
			return nil, err
		}
		var stats consortium.CostStats
		start := time.Now()
		for i := 0; i < cfg.Contributions; i++ {
			_, s, err := c.Endorse(uint64(i), contribution, nil, nil)
			if err != nil {
				return nil, err
			}
			stats = s
		}
		res.Rows = append(res.Rows, E10Row{
			Realization: fmt.Sprintf("consortium n=%d k=%d", n, k),
			MeanLatency: time.Since(start) / time.Duration(cfg.Contributions),
			Messages:    stats.Messages,
			Bytes:       stats.Bytes,
			Disclosures: stats.Disclosures,
		})
	}

	// SGX Glimmer for comparison: private data stays on the device.
	w, err := NewWorld(cfg.Seed, 1, 10)
	if err != nil {
		return nil, err
	}
	svc, err := w.newService("cmp.example", predicate.UnitRangeCheck("range", cfg.Dim))
	if err != nil {
		return nil, err
	}
	glimCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	dev, err := w.provisionDevice(svc, glimCfg, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var bytesOut int
	for i := 0; i < cfg.Contributions; i++ {
		sc, err := dev.Contribute(uint64(i), contribution, nil)
		if err != nil {
			return nil, err
		}
		bytesOut = len(glimmer.EncodeSignedContribution(sc))
	}
	res.Rows = append(res.Rows, E10Row{
		Realization: "sgx glimmer (local enclave)",
		MeanLatency: time.Since(start) / time.Duration(cfg.Contributions),
		Messages:    1, // the signed contribution to the service
		Bytes:       bytesOut,
		Disclosures: 0, // no third party sees the private data
	})
	return res, nil
}

// E11Config parameterizes the photos-for-maps experiment.
type E11Config struct {
	Seed    []byte
	Samples int
}

// DefaultE11 is the recorded configuration.
func DefaultE11() E11Config {
	return E11Config{Seed: []byte("glimmers-e11"), Samples: 40}
}

// E11Row is one photo-population's acceptance rate through the Glimmer.
type E11Row struct {
	Case       string
	AcceptRate float64
}

// E11Result is the maps scenario: genuine photos endorsed, forgeries
// refused, all without the GPS track leaving the device.
type E11Result struct {
	Rows []E11Row
}

// Table renders the result.
func (r *E11Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Case, f3(row.AcceptRate)}
	}
	return table("E11 (§1/§3): photos-for-maps validation",
		[]string{"photo population", "accept rate"}, rows)
}

// RunE11 pushes photo contributions through a Glimmer running the maps
// validator.
func RunE11(cfg E11Config) (*E11Result, error) {
	w, err := NewWorld(cfg.Seed, 1, 10)
	if err != nil {
		return nil, err
	}
	svc, err := w.newService("maps.example", geo.DefaultPredicate("photo-validator"))
	if err != nil {
		return nil, err
	}
	glimCfg, err := svc.GlimmerConfig(2, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	dev, err := w.provisionDevice(svc, glimCfg, nil)
	if err != nil {
		return nil, err
	}
	prg := xcrypto.NewPRG(cfg.Seed)
	downtown := geo.Point{LatMicro: 43_653_000, LonMicro: -79_383_000}

	submit := func(photo geo.Photo, ctx geo.DeviceContext, round uint64) (bool, error) {
		features := geo.ContextFeatures(photo, ctx)
		contribution := fixed.Vector{fixed.Ring(photo.Claimed.LatMicro), fixed.Ring(photo.Claimed.LonMicro)}
		_, err := dev.Contribute(round, contribution, features)
		if err == nil {
			return true, nil
		}
		if errors.Is(err, glimmer.ErrRejected) {
			return false, nil
		}
		return false, err
	}

	cases := []struct {
		name string
		mk   func(i int) (geo.Photo, geo.DeviceContext)
	}{
		{"genuine (visited, own camera)", func(i int) (geo.Photo, geo.DeviceContext) {
			ctx := geo.DeviceContext{Track: geo.RandomTrack(prg, downtown, 30, 25, 60_000), CamFingerprint: 0xCAFE}
			fix := ctx.Track[15]
			return geo.Photo{TakenMs: fix.TimeMs + 30_000, Claimed: fix.Loc, CamFingerprint: 0xCAFE, Wifi: fix.Wifi}, ctx
		}},
		{"forged location (never visited)", func(i int) (geo.Photo, geo.DeviceContext) {
			ctx := geo.DeviceContext{Track: geo.RandomTrack(prg, downtown, 30, 25, 60_000), CamFingerprint: 0xCAFE}
			far := geo.Point{LatMicro: downtown.LatMicro + 800_000, LonMicro: downtown.LonMicro}
			return geo.Photo{TakenMs: ctx.Track[15].TimeMs, Claimed: far, CamFingerprint: 0xCAFE, Wifi: geo.WifiAt(far)}, ctx
		}},
		{"stolen photo (foreign camera)", func(i int) (geo.Photo, geo.DeviceContext) {
			ctx := geo.DeviceContext{Track: geo.RandomTrack(prg, downtown, 30, 25, 60_000), CamFingerprint: 0xCAFE}
			fix := ctx.Track[15]
			return geo.Photo{TakenMs: fix.TimeMs, Claimed: fix.Loc, CamFingerprint: 0xBEEF, Wifi: fix.Wifi}, ctx
		}},
	}
	res := &E11Result{}
	round := uint64(0)
	for _, c := range cases {
		accepted := 0
		for i := 0; i < cfg.Samples; i++ {
			photo, ctx := c.mk(i)
			ok, err := submit(photo, ctx, round)
			round++
			if err != nil {
				return nil, err
			}
			if ok {
				accepted++
			}
		}
		res.Rows = append(res.Rows, E11Row{Case: c.name, AcceptRate: float64(accepted) / float64(cfg.Samples)})
	}
	return res, nil
}

// E12Row is one predicate's verification certificate versus reality.
type E12Row struct {
	Predicate string
	Verified  bool
	CostBound int64
	// ActualSteps from a representative run (0 if not run).
	ActualSteps int64
	Declass     int
}

// E12Result exercises the §3 verification story: the static verifier's
// certificates hold at runtime, and leaky predicates are rejected.
type E12Result struct {
	Rows []E12Row
	// LeakyRejected counts adversarial predicates refused by the verifier.
	LeakyRejected int
	LeakyTotal    int
}

// Table renders the result.
func (r *E12Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Predicate, fmt.Sprintf("%v", row.Verified),
			fmt.Sprintf("%d", row.CostBound), fmt.Sprintf("%d", row.ActualSteps), fmt.Sprintf("%d", row.Declass)}
	}
	out := table("E12 (§3): predicate verification certificates",
		[]string{"predicate", "verified", "cost-bound", "actual-steps", "declass-sites"}, rows)
	return out + fmt.Sprintf("leaky predicates rejected: %d/%d\n", r.LeakyRejected, r.LeakyTotal)
}

// RunE12 verifies the standard predicates and attacks the verifier with
// leaky ones.
func RunE12() (*E12Result, error) {
	const dim = 16
	res := &E12Result{}
	contribution := make([]int64, dim)
	private := make([]int64, dim)

	library := []struct {
		p       *predicate.Program
		private []int64
	}{
		{predicate.UnitRangeCheck("unit-range", dim), private},
		{predicate.RangeCheck("range[-5,5]", dim, -5, 5), private},
		{predicate.SumBound("sum-bound", dim, 0, 1000), private},
		{predicate.CrossCheck("cross-check", dim, 10), private},
		{predicate.ThresholdScore("threshold", make([]int64, botdetect.NumFeatures), 0), make([]int64, botdetect.NumFeatures)},
		{botdetect.DefaultDetector.Predicate("bot-detector"), make([]int64, botdetect.NumFeatures)},
		{geo.DefaultPredicate("photo-validator"), make([]int64, geo.NumFeatures)},
		{predicate.AlwaysValid("always-valid"), nil},
	}
	for _, entry := range library {
		analysis, err := predicate.Verify(entry.p)
		row := E12Row{Predicate: entry.p.Name, Verified: err == nil}
		if err == nil {
			row.CostBound = analysis.CostBound
			row.Declass = len(analysis.DeclassSites)
			contrib := contribution
			if entry.p.Name == "photo-validator" {
				contrib = contribution[:2]
			}
			if r, err := predicate.Run(entry.p, contrib, entry.private, nil); err == nil {
				row.ActualSteps = r.Steps
				if row.ActualSteps > row.CostBound {
					return nil, fmt.Errorf("cost bound violated by %s", entry.p.Name)
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}

	// Adversarial predicates that must be rejected.
	leaky := []*predicate.Program{
		// Direct leak of a secret as the verdict.
		predicate.NewBuilder("leak-direct", 0).LoadC(0).Verdict().MustBuild(),
		// Leak through a local.
		predicate.NewBuilder("leak-local", 1).LoadP(0).Store(0).Load(0).Verdict().MustBuild(),
		// Implicit flow: branch on a secret.
		func() *predicate.Program {
			b := predicate.NewBuilder("leak-branch", 0)
			l := b.NewLabel()
			b.LoadP(0).Jz(l).Bind(l)
			return b.Push(1).Declass().Verdict().MustBuild()
		}(),
		// Unbounded cost (nested max loops).
		func() *predicate.Program {
			b := predicate.NewBuilder("cost-bomb", 0)
			b.Loop(predicate.MaxLoopCount, func(b *predicate.Builder) {
				b.Loop(predicate.MaxLoopCount, func(b *predicate.Builder) {
					b.Push(0).Pop()
				})
			})
			return b.Push(1).Declass().Verdict().MustBuild()
		}(),
		// No verdict at all.
		predicate.NewBuilder("no-verdict", 0).Push(1).Pop().Halt().MustBuild(),
	}
	res.LeakyTotal = len(leaky)
	for _, p := range leaky {
		if _, err := predicate.Verify(p); err != nil {
			res.LeakyRejected++
		}
	}
	return res, nil
}
