package experiments

import (
	"fmt"

	"glimmers/internal/blind"
	"glimmers/internal/fedml"
	"glimmers/internal/fixed"
	"glimmers/internal/keyboard"
	"glimmers/internal/xcrypto"
)

// Figure1Config parameterizes the E1–E4 scenario progression.
type Figure1Config struct {
	Seed         []byte
	Users        int
	WordsPerUser int
	HeldoutWords int
	// AttackCue/AttackTarget is the suggestion the Figure 1d attacker wants
	// to force; AttackWeight is the illegal value (the paper's 538).
	AttackCue    string
	AttackTarget string
	AttackWeight float64
}

// DefaultFigure1 is the canonical configuration the benchmarks record.
func DefaultFigure1() Figure1Config {
	return Figure1Config{
		Seed:         []byte("glimmers-figure1"),
		Users:        24,
		WordsPerUser: 500,
		HeldoutWords: 3000,
		AttackCue:    "donald",
		AttackTarget: "dont",
		AttackWeight: 538,
	}
}

// E1Result compares raw sharing (Figure 1a) against keeping data local:
// utility versus privacy.
type E1Result struct {
	Rows []E1Row
}

// E1Row is one sharing scheme's utility/privacy point.
type E1Row struct {
	Scheme string
	// Accuracy is next-word prediction accuracy on held-out text.
	Accuracy float64
	// PrivacyLoss is the fraction of a user's distinct typed bigrams the
	// service can read.
	PrivacyLoss float64
}

// Table renders the result.
func (r *E1Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Scheme, f3(row.Accuracy), f3(row.PrivacyLoss)}
	}
	return table("E1 (Fig 1a): raw sharing — utility vs privacy",
		[]string{"scheme", "accuracy", "privacy-loss"}, rows)
}

// RunE1 reproduces Figure 1a's premise: sharing raw keystrokes buys
// accuracy (trends emerge) at total privacy loss; staying local keeps
// privacy and loses the trend signal.
func RunE1(cfg Figure1Config) (*E1Result, error) {
	w, err := NewWorld(cfg.Seed, cfg.Users, cfg.WordsPerUser)
	if err != nil {
		return nil, err
	}
	heldout := w.heldout(cfg.HeldoutWords)

	// Local-only: each user's own model; average accuracy.
	var localAcc float64
	models := w.localModels()
	for _, m := range models {
		localAcc += m.Accuracy(heldout)
	}
	localAcc /= float64(len(models))

	// Raw sharing: the service sees everything and trains on the union.
	combined := make([]int64, w.Vocab.Dims())
	for _, u := range w.Pop.Users {
		for dim, c := range u.Activity.BigramCounts(w.Vocab) {
			combined[dim] += c
		}
	}
	weights := make(fixed.Vector, w.Vocab.Dims())
	for dim, v := range keyboard.WeightsFromCounts(combined, w.Vocab) {
		weights[dim] = fixed.Ring(v)
	}
	rawModel, err := fedml.FromWeights(w.Vocab, weights)
	if err != nil {
		return nil, err
	}

	return &E1Result{Rows: []E1Row{
		{Scheme: "local-only (no sharing)", Accuracy: localAcc, PrivacyLoss: 0},
		{Scheme: "raw sharing (Fig 1a)", Accuracy: rawModel.Accuracy(heldout), PrivacyLoss: 1.0},
	}}, nil
}

// pairwiseParties builds an n-party pairwise-masking group.
func pairwiseParties(n int) ([]*blind.Party, error) {
	keys := make([]*xcrypto.DHKey, n)
	roster := make([][]byte, n)
	for i := range keys {
		k, err := xcrypto.NewDHKey()
		if err != nil {
			return nil, err
		}
		keys[i] = k
		roster[i] = k.PublicBytes()
	}
	parties := make([]*blind.Party, n)
	for i := range parties {
		p, err := blind.NewParty(i, keys[i], roster)
		if err != nil {
			return nil, err
		}
		parties[i] = p
	}
	return parties, nil
}

// E2Result quantifies Figure 1b: federated learning preserves utility but
// local models invert.
type E2Result struct {
	// FederatedAccuracy is the FedAvg global model's accuracy.
	FederatedAccuracy float64
	// RawAccuracy is the raw-sharing ceiling for comparison.
	RawAccuracy float64
	// MeanInversionRecall is the average fraction of a user's typed bigrams
	// recovered from their local model (Fredrikson-style inversion).
	MeanInversionRecall float64
	// TrendLearned reports whether the global model suggests "trump" after
	// "donald" — the paper's headline benefit.
	TrendLearned bool
}

// Table renders the result.
func (r *E2Result) Table() string {
	return table("E2 (Fig 1b): federated learning — utility kept, models invert",
		[]string{"metric", "value"},
		[][]string{
			{"federated accuracy", f3(r.FederatedAccuracy)},
			{"raw-sharing accuracy", f3(r.RawAccuracy)},
			{"mean inversion recall", f3(r.MeanInversionRecall)},
			{"donald->trump learned", fmt.Sprintf("%v", r.TrendLearned)},
		})
}

// RunE2 reproduces Figure 1b.
func RunE2(cfg Figure1Config) (*E2Result, error) {
	w, err := NewWorld(cfg.Seed, cfg.Users, cfg.WordsPerUser)
	if err != nil {
		return nil, err
	}
	heldout := w.heldout(cfg.HeldoutWords)
	models := w.localModels()
	global, err := fedml.Aggregate(models...)
	if err != nil {
		return nil, err
	}
	e1, err := RunE1(cfg)
	if err != nil {
		return nil, err
	}

	var recall float64
	for i, m := range models {
		truth := w.Pop.Users[i].Activity.DistinctBigrams(w.Vocab)
		recovered := fedml.InvertModel(m, w.Vocab.Dims())
		recall += fedml.InversionRecall(recovered, truth)
	}
	recall /= float64(len(models))

	pred, _, err := global.Predict("donald")
	if err != nil {
		return nil, err
	}
	return &E2Result{
		FederatedAccuracy:   global.Accuracy(heldout),
		RawAccuracy:         e1.Rows[1].Accuracy,
		MeanInversionRecall: recall,
		TrendLearned:        pred == "trump",
	}, nil
}

// E3Result verifies Figure 1c: blinded aggregation is exact while blinded
// individuals reveal (almost) nothing.
type E3Result struct {
	Rows []E3Row
	// DropoutRecovered reports whether pairwise aggregation survived a
	// client dropout via seed reveal.
	DropoutRecovered bool
}

// E3Row is one blinding construction's outcome.
type E3Row struct {
	Scheme string
	// AggregateExact: the blinded aggregate equals the clear aggregate
	// bit-for-bit.
	AggregateExact bool
	// BlindedInversionRecall is inversion recall run against a blinded
	// individual contribution (should be near chance).
	BlindedInversionRecall float64
	// ClearInversionRecall is the unblinded baseline (near 1).
	ClearInversionRecall float64
}

// Table renders the result.
func (r *E3Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Scheme, fmt.Sprintf("%v", row.AggregateExact),
			f3(row.BlindedInversionRecall), f3(row.ClearInversionRecall)}
	}
	out := table("E3 (Fig 1c): secure aggregation — exact sums, opaque individuals",
		[]string{"scheme", "aggregate-exact", "inversion(blinded)", "inversion(clear)"}, rows)
	return out + fmt.Sprintf("dropout recovered: %v\n", r.DropoutRecovered)
}

// RunE3 reproduces Figure 1c with both blinding constructions.
func RunE3(cfg Figure1Config) (*E3Result, error) {
	w, err := NewWorld(cfg.Seed, cfg.Users, cfg.WordsPerUser)
	if err != nil {
		return nil, err
	}
	models := w.localModels()
	n, dims := len(models), w.Vocab.Dims()
	clearSum := fixed.NewVector(dims)
	for _, m := range models {
		clearSum.AddInPlace(m.Weights)
	}

	res := &E3Result{}

	evaluate := func(scheme string, blinded []fixed.Vector) error {
		sum := fixed.NewVector(dims)
		for _, b := range blinded {
			sum.AddInPlace(b)
		}
		exact := true
		for d := range sum {
			if sum[d] != clearSum[d] {
				exact = false
				break
			}
		}
		truth := w.Pop.Users[0].Activity.DistinctBigrams(w.Vocab)
		k := len(truth)
		blindModel, err := fedml.FromWeights(w.Vocab, blinded[0])
		if err != nil {
			return err
		}
		clearRecall := fedml.InversionRecall(fedml.InvertModel(models[0], k), truth)
		blindRecall := fedml.InversionRecall(fedml.InvertModel(blindModel, k), truth)
		res.Rows = append(res.Rows, E3Row{
			Scheme:                 scheme,
			AggregateExact:         exact,
			BlindedInversionRecall: blindRecall,
			ClearInversionRecall:   clearRecall,
		})
		return nil
	}

	// Dealer masks.
	masks, err := blind.ZeroSumMasks(append(cfg.Seed, 'd'), n, dims)
	if err != nil {
		return nil, err
	}
	dealerBlinded := make([]fixed.Vector, n)
	for i, m := range models {
		dealerBlinded[i], err = blind.Apply(m.Weights, masks[i])
		if err != nil {
			return nil, err
		}
	}
	if err := evaluate("dealer masks (§3)", dealerBlinded); err != nil {
		return nil, err
	}

	// Pairwise masks.
	parties, err := pairwiseParties(n)
	if err != nil {
		return nil, err
	}
	const round = 1
	pairBlinded := make([]fixed.Vector, n)
	for i, m := range models {
		mask, err := parties[i].Mask(dims, round)
		if err != nil {
			return nil, err
		}
		pairBlinded[i], err = blind.Apply(m.Weights, mask)
		if err != nil {
			return nil, err
		}
	}
	if err := evaluate("pairwise masks (Bonawitz)", pairBlinded); err != nil {
		return nil, err
	}

	// Dropout: client n-1 never submits; survivors reveal seeds.
	partial := fixed.NewVector(dims)
	for i := 0; i < n-1; i++ {
		partial.AddInPlace(pairBlinded[i])
	}
	seeds := make(map[int][]byte)
	for i := 0; i < n-1; i++ {
		s, err := parties[i].SeedWith(n - 1)
		if err != nil {
			return nil, err
		}
		seeds[i] = s
	}
	recovered, err := blind.RecoverMask(n-1, n, dims, round, seeds)
	if err != nil {
		return nil, err
	}
	partial.AddInPlace(recovered)
	wantPartial := fixed.NewVector(dims)
	for i := 0; i < n-1; i++ {
		wantPartial.AddInPlace(models[i].Weights)
	}
	res.DropoutRecovered = true
	for d := range partial {
		if partial[d] != wantPartial[d] {
			res.DropoutRecovered = false
			break
		}
	}
	return res, nil
}

// E4Result demonstrates Figure 1d: the poisoning attack and its
// invisibility under blinding.
type E4Result struct {
	// CleanTop and PoisonedTop are the global model's suggestion for the
	// cue word before and after poisoning.
	CleanTop    string
	PoisonedTop string
	// Flipped reports whether the attacker's target took over.
	Flipped bool
	// PoisonedAggregateWeight is the poisoned bigram's aggregate weight —
	// far outside anything an honest population can produce.
	PoisonedAggregateWeight float64
	// DetectableUnblinded: a service-side range check catches the raw 538.
	DetectableUnblinded bool
	// DetectableBlinded: the same check on blinded contributions cannot
	// separate the attacker from honest users (it flags everyone).
	DetectableBlinded bool
	// BlindedFlaggedHonest / BlindedFlaggedAttacker: fraction of each
	// flagged by the service-side check under blinding.
	BlindedFlaggedHonest   float64
	BlindedFlaggedAttacker float64
}

// Table renders the result.
func (r *E4Result) Table() string {
	return table("E4 (Fig 1d): poisoning under blinding — unstoppable server-side",
		[]string{"metric", "value"},
		[][]string{
			{"clean suggestion", r.CleanTop},
			{"poisoned suggestion", r.PoisonedTop},
			{"suggestion flipped", fmt.Sprintf("%v", r.Flipped)},
			{"poisoned aggregate weight", f3(r.PoisonedAggregateWeight)},
			{"detectable unblinded", fmt.Sprintf("%v", r.DetectableUnblinded)},
			{"detectable blinded", fmt.Sprintf("%v", r.DetectableBlinded)},
			{"blinded flagged (honest)", f3(r.BlindedFlaggedHonest)},
			{"blinded flagged (attacker)", f3(r.BlindedFlaggedAttacker)},
		})
}

// RunE4 reproduces Figure 1d.
func RunE4(cfg Figure1Config) (*E4Result, error) {
	w, err := NewWorld(cfg.Seed, cfg.Users, cfg.WordsPerUser)
	if err != nil {
		return nil, err
	}
	models := w.localModels()
	clean, err := fedml.Aggregate(models...)
	if err != nil {
		return nil, err
	}
	if err := fedml.Poison(models[0], cfg.AttackCue, cfg.AttackTarget, cfg.AttackWeight); err != nil {
		return nil, err
	}
	poisoned, err := fedml.Aggregate(models...)
	if err != nil {
		return nil, err
	}
	skew, err := fedml.MeasureSkew(clean, poisoned, cfg.AttackCue, cfg.AttackTarget)
	if err != nil {
		return nil, err
	}

	// Service-side detection, unblinded: range-check each raw local model.
	inRange := func(v fixed.Vector) bool {
		for _, r := range v {
			if !r.InUnitRange() {
				return false
			}
		}
		return true
	}
	detectableUnblinded := !inRange(models[0].Weights)

	// Service-side detection, blinded: the same check over blinded vectors.
	n, dims := len(models), w.Vocab.Dims()
	masks, err := blind.ZeroSumMasks(append(cfg.Seed, 'p'), n, dims)
	if err != nil {
		return nil, err
	}
	flaggedHonest, flaggedAttacker := 0, 0
	for i, m := range models {
		b, err := blind.Apply(m.Weights, masks[i])
		if err != nil {
			return nil, err
		}
		if !inRange(b) {
			if i == 0 {
				flaggedAttacker++
			} else {
				flaggedHonest++
			}
		}
	}
	honestRate := float64(flaggedHonest) / float64(n-1)
	attackerRate := float64(flaggedAttacker)
	// "Detectable" means the check separates attacker from honest users.
	detectableBlinded := attackerRate > honestRate+0.5

	return &E4Result{
		CleanTop:                skew.CleanTop,
		PoisonedTop:             skew.PoisonedTop,
		Flipped:                 skew.Flipped,
		PoisonedAggregateWeight: skew.PoisonedW,
		DetectableUnblinded:     detectableUnblinded,
		DetectableBlinded:       detectableBlinded,
		BlindedFlaggedHonest:    honestRate,
		BlindedFlaggedAttacker:  attackerRate,
	}, nil
}
