package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallFigure1 keeps the Figure 1 experiments fast in tests.
func smallFigure1() Figure1Config {
	cfg := DefaultFigure1()
	cfg.Users = 10
	cfg.WordsPerUser = 250
	cfg.HeldoutWords = 800
	return cfg
}

func TestE1RawSharingTradeoff(t *testing.T) {
	res, err := RunE1(smallFigure1())
	if err != nil {
		t.Fatal(err)
	}
	local, raw := res.Rows[0], res.Rows[1]
	if raw.Accuracy <= local.Accuracy {
		t.Errorf("raw sharing should beat local-only: %.3f vs %.3f", raw.Accuracy, local.Accuracy)
	}
	if raw.PrivacyLoss != 1.0 || local.PrivacyLoss != 0 {
		t.Errorf("privacy losses: %+v", res.Rows)
	}
	if !strings.Contains(res.Table(), "raw sharing") {
		t.Error("table missing scheme row")
	}
}

func TestE2FederatedKeepsUtilityButInverts(t *testing.T) {
	res, err := RunE2(smallFigure1())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TrendLearned {
		t.Error("federated model failed to learn the trend")
	}
	if res.FederatedAccuracy < res.RawAccuracy-0.1 {
		t.Errorf("federated accuracy %.3f far below raw %.3f", res.FederatedAccuracy, res.RawAccuracy)
	}
	if res.MeanInversionRecall < 0.9 {
		t.Errorf("inversion recall %.3f: strawman models should invert nearly completely", res.MeanInversionRecall)
	}
}

func TestE3SecureAggregationExactAndOpaque(t *testing.T) {
	res, err := RunE3(smallFigure1())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.AggregateExact {
			t.Errorf("%s: aggregate not exact", row.Scheme)
		}
		if row.ClearInversionRecall < 0.9 {
			t.Errorf("%s: clear inversion %.3f should be ~1", row.Scheme, row.ClearInversionRecall)
		}
		if row.BlindedInversionRecall > row.ClearInversionRecall/2 {
			t.Errorf("%s: blinded inversion %.3f not far below clear %.3f",
				row.Scheme, row.BlindedInversionRecall, row.ClearInversionRecall)
		}
	}
	if !res.DropoutRecovered {
		t.Error("dropout recovery failed")
	}
}

func TestE4PoisoningInvisibleUnderBlinding(t *testing.T) {
	res, err := RunE4(smallFigure1())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flipped {
		t.Error("poisoning failed to flip the suggestion")
	}
	if res.PoisonedAggregateWeight < 1 {
		t.Errorf("poisoned weight %.3f should dominate", res.PoisonedAggregateWeight)
	}
	if !res.DetectableUnblinded {
		t.Error("raw 538 should be detectable without blinding")
	}
	if res.DetectableBlinded {
		t.Error("blinded 538 should NOT be detectable — that is the paper's point")
	}
}

func TestE5GlimmerBlocksAttack(t *testing.T) {
	cfg := smallFigure1()
	cfg.Users = 8
	res, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AttackBlockedAtClient {
		t.Error("538 was not blocked at the client")
	}
	if res.Accepted != cfg.Users-1 || res.Rejected != 1 {
		t.Errorf("accepted/rejected = %d/%d", res.Accepted, res.Rejected)
	}
	if !res.SuggestionIntact {
		t.Error("suggestion flipped despite the Glimmer")
	}
	if !res.AggregateExact {
		t.Error("honest aggregate not exact after correcting the refused mask")
	}
}

func TestE6DecompositionCosts(t *testing.T) {
	cfg := DefaultE6()
	cfg.Contributions = 8
	cfg.Dim = 16
	cfg.TransitionCost = 200 * time.Microsecond
	res, err := RunE6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, decomposed := res.Rows[0], res.Rows[1]
	if single.ECallsPerContribution != 1 {
		t.Errorf("single ecalls/op = %v, want 1", single.ECallsPerContribution)
	}
	if decomposed.ECallsPerContribution != 3 {
		t.Errorf("decomposed ecalls/op = %v, want 3", decomposed.ECallsPerContribution)
	}
	if decomposed.MeanLatencyCosted <= single.MeanLatencyCosted {
		t.Errorf("decomposed costed latency %v should exceed single %v",
			decomposed.MeanLatencyCosted, single.MeanLatencyCosted)
	}
}

func TestE7ValidationLadder(t *testing.T) {
	cfg := DefaultE7()
	cfg.Users = 5
	cfg.WordsPerUser = 300
	res, err := RunE7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	none, rng, corr := res.Rows[0], res.Rows[1], res.Rows[2]
	if none.ForgedAccepted != 1 {
		t.Errorf("no validation should accept all forgeries: %.2f", none.ForgedAccepted)
	}
	if rng.ForgedAccepted != 1 {
		t.Errorf("range check alone should accept in-range forgeries: %.2f", rng.ForgedAccepted)
	}
	if rng.MaxSkewWeight > 1.01 {
		t.Errorf("range check should cap skew at 1: %.2f", rng.MaxSkewWeight)
	}
	if corr.ForgedAccepted != 0 {
		t.Errorf("corroboration should refuse forgeries: %.2f", corr.ForgedAccepted)
	}
	if corr.HonestAccepted < 0.99 {
		t.Errorf("corroboration should accept honest users: %.2f", corr.HonestAccepted)
	}
}

func TestE8BotDetectionThroughGlimmer(t *testing.T) {
	cfg := DefaultE8()
	cfg.Samples = 20
	cfg.Sophistications = []float64{0, 1.0}
	res, err := RunE8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsPerVerdict != 1 {
		t.Errorf("bits per verdict = %d, want 1", res.BitsPerVerdict)
	}
	naive := res.Rows[0]
	if naive.TPR < 0.9 || naive.FPR > 0.1 {
		t.Errorf("naive bots: TPR %.2f FPR %.2f", naive.TPR, naive.FPR)
	}
	sophisticated := res.Rows[1]
	if sophisticated.FPR < naive.FPR {
		t.Errorf("sophisticated bots should evade more: %.2f < %.2f", sophisticated.FPR, naive.FPR)
	}
	if res.VerdictsAudited == 0 || !res.ConfidentialDelivery {
		t.Error("audit trail incomplete")
	}
}

func TestE9RemoteGlimmer(t *testing.T) {
	cfg := DefaultE9()
	cfg.Contributions = 4
	res, err := RunE9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RemoteWorks {
		t.Error("remote contribution failed verification")
	}
	local, remote := res.Rows[0], res.Rows[1]
	if remote.MeanLatency <= local.MeanLatency {
		t.Errorf("remote %v should cost more than local %v", remote.MeanLatency, local.MeanLatency)
	}
}

func TestE10ConsortiumComparison(t *testing.T) {
	cfg := DefaultE10()
	cfg.Contributions = 2
	cfg.Sizes = []int{3, 5}
	res, err := RunE10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Disclosures != 3 || res.Rows[1].Disclosures != 5 {
		t.Errorf("consortium disclosures: %+v", res.Rows[:2])
	}
	glimRow := res.Rows[2]
	if glimRow.Disclosures != 0 {
		t.Errorf("glimmer disclosures = %d, want 0", glimRow.Disclosures)
	}
	if res.Rows[1].Messages <= res.Rows[0].Messages {
		t.Error("larger consortium should exchange more messages")
	}
}

func TestE11MapsValidation(t *testing.T) {
	cfg := DefaultE11()
	cfg.Samples = 10
	res, err := RunE11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	genuine, forgedLoc, stolen := res.Rows[0], res.Rows[1], res.Rows[2]
	if genuine.AcceptRate < 0.9 {
		t.Errorf("genuine accept rate %.2f", genuine.AcceptRate)
	}
	if forgedLoc.AcceptRate > 0 {
		t.Errorf("forged location accept rate %.2f", forgedLoc.AcceptRate)
	}
	if stolen.AcceptRate > 0 {
		t.Errorf("stolen photo accept rate %.2f", stolen.AcceptRate)
	}
}

func TestE12VerifierCertificates(t *testing.T) {
	res, err := RunE12()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Verified {
			t.Errorf("stdlib predicate %s failed verification", row.Predicate)
		}
		if row.ActualSteps > row.CostBound {
			t.Errorf("%s: steps %d exceed bound %d", row.Predicate, row.ActualSteps, row.CostBound)
		}
		if row.Declass > 1 {
			t.Errorf("%s: %d declass sites", row.Predicate, row.Declass)
		}
	}
	if res.LeakyRejected != res.LeakyTotal {
		t.Errorf("leaky predicates rejected %d/%d", res.LeakyRejected, res.LeakyTotal)
	}
}

func TestTablesRender(t *testing.T) {
	// Every result renders a non-empty table with its experiment id.
	small := smallFigure1()
	small.Users = 6
	small.WordsPerUser = 150

	if r, err := RunE1(small); err != nil || !strings.Contains(r.Table(), "E1") {
		t.Errorf("E1 table: %v", err)
	}
	if r, err := RunE12(); err != nil || !strings.Contains(r.Table(), "E12") {
		t.Errorf("E12 table: %v", err)
	}
}
