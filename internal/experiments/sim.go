package experiments

import (
	"fmt"

	"glimmers/internal/sim"
)

// E13 is the fault-sweep: the full stack (enclave Glimmers, concurrent
// sharded ingest, seal/close lifecycle, Shamir dropout recovery) driven by
// the fleet simulator at increasing fault rates, measuring how acceptance
// degrades while exactness and the end-of-round invariants must not. This
// is the regime the paper targets — aggregation that stays exact and
// attributable under churn and adversarial traffic — and the baseline
// every later scaling PR benchmarks against.

// E13Config parameterizes the fault sweep.
type E13Config struct {
	Seed    int64
	Devices int
	Rounds  int
	Overlap int
	Dim     int
	// FaultRates is the sweep: each rate drives every fault mechanism's
	// probability (dropout/byzantine/corrupt-signature split the primary
	// rate; duplicate/replay/garbage/out-of-window inject at the full
	// rate).
	FaultRates []float64
	// Stragglers per round race Seal at every sweep point.
	Stragglers int
}

// DefaultE13 is the recorded configuration.
func DefaultE13() E13Config {
	return E13Config{
		Seed:       13,
		Devices:    12,
		Rounds:     4,
		Overlap:    2,
		Dim:        8,
		FaultRates: []float64{0, 0.1, 0.25, 0.4},
		Stragglers: 1,
	}
}

// planAt spreads one sweep rate across the fault mechanisms.
func planAt(rate float64, stragglers int) sim.FaultPlan {
	return sim.FaultPlan{
		DropoutRate:     rate * 0.4,
		ByzantineRate:   rate * 0.3,
		CorruptSigRate:  rate * 0.3,
		DuplicateRate:   rate,
		ReplayRate:      rate,
		GarbageRate:     rate,
		OutOfWindowRate: rate,
		Stragglers:      stragglers,
	}
}

// E13Row is one sweep point.
type E13Row struct {
	FaultRate float64
	// Accepted counts contributions in sealed aggregates (including
	// stragglers that won their race with Seal).
	Accepted int
	// ClientRejected were refused inside the Glimmer (byzantine values).
	ClientRejected int
	// ServiceRejected were refused by the service (bad signatures,
	// duplicates, replays, garbage, out-of-window, losing stragglers).
	ServiceRejected int
	// DropoutsRecovered counts masks reconstructed from Shamir shares and
	// removed via CorrectDropout.
	DropoutsRecovered int
	// Exact: every sealed round's aggregate equalled the exact sum of its
	// accepted honest contributions.
	Exact bool
	// InvariantsOK: every end-of-round invariant held.
	InvariantsOK bool
	RoundsPerSec float64
}

// E13Result is the sweep outcome.
type E13Result struct {
	Cfg  E13Config
	Rows []E13Row
	// Violations aggregates any invariant breaches across the sweep (must
	// be empty).
	Violations []string
}

// Table renders the result.
func (r *E13Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			f3(row.FaultRate),
			fmt.Sprintf("%d", row.Accepted),
			fmt.Sprintf("%d", row.ClientRejected),
			fmt.Sprintf("%d", row.ServiceRejected),
			fmt.Sprintf("%d", row.DropoutsRecovered),
			fmt.Sprintf("%v", row.Exact),
			fmt.Sprintf("%v", row.InvariantsOK),
			fmt.Sprintf("%.1f", row.RoundsPerSec),
		}
	}
	out := table(
		fmt.Sprintf("E13: fault sweep — %d devices × %d rounds (overlap %d), invariants enforced",
			r.Cfg.Devices, r.Cfg.Rounds, r.Cfg.Overlap),
		[]string{"fault-rate", "accepted", "client-rej", "service-rej", "shamir-recovered", "exact", "invariants", "rounds/s"},
		rows)
	if len(r.Violations) > 0 {
		out += fmt.Sprintf("INVARIANT VIOLATIONS: %v\n", r.Violations)
	}
	return out
}

// RunE13 sweeps the fault rate through the fleet simulator.
func RunE13(cfg E13Config) (*E13Result, error) {
	res := &E13Result{Cfg: cfg}
	for _, rate := range cfg.FaultRates {
		rep, err := sim.Scenario{
			Name: fmt.Sprintf("e13-rate-%g", rate),
			Config: sim.Config{
				Seed:    cfg.Seed,
				Devices: cfg.Devices,
				Rounds:  cfg.Rounds,
				Overlap: cfg.Overlap,
				Dim:     cfg.Dim,
				Faults:  planAt(rate, cfg.Stragglers),
			},
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("e13 rate %g: %w", rate, err)
		}
		exact := true
		dropouts := 0
		for _, rr := range rep.Rounds {
			exact = exact && rr.Exact
			dropouts += rr.DropoutsRecovered
		}
		res.Rows = append(res.Rows, E13Row{
			FaultRate:         rate,
			Accepted:          rep.Totals[sim.CatAccepted] + rep.Totals[sim.CatStragglerAccepted],
			ClientRejected:    rep.Totals[sim.CatClientRejected],
			ServiceRejected:   rep.Totals.ServiceRejections(),
			DropoutsRecovered: dropouts,
			Exact:             exact,
			InvariantsOK:      rep.Ok(),
			RoundsPerSec:      rep.RoundsPerSec(),
		})
		res.Violations = append(res.Violations, rep.Violations...)
	}
	return res, nil
}
