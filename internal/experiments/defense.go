package experiments

import (
	"errors"
	"fmt"
	"time"

	"glimmers/internal/blind"
	"glimmers/internal/fedml"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/keyboard"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// E5Result shows the Glimmer blocking Figure 1d's attack end to end
// (Figures 2 and 3 operating together).
type E5Result struct {
	// Accepted and Rejected count contributions at the aggregator.
	Accepted int
	Rejected int
	// AttackBlockedAtClient: the 538 never left the attacker's device.
	AttackBlockedAtClient bool
	// SuggestionIntact: the global model still suggests the honest trend.
	SuggestionIntact bool
	// AggregateExact: masks cancelled; aggregate equals honest-only sum.
	AggregateExact bool
	// MeanContributeLatency is wall-clock per contribution through the
	// Glimmer (validate+blind+sign, one enclave round trip).
	MeanContributeLatency time.Duration
}

// Table renders the result.
func (r *E5Result) Table() string {
	return table("E5 (Fig 2/3): Glimmer defense — attack dies at the client",
		[]string{"metric", "value"},
		[][]string{
			{"contributions accepted", fmt.Sprintf("%d", r.Accepted)},
			{"contributions rejected", fmt.Sprintf("%d", r.Rejected)},
			{"538 blocked at client", fmt.Sprintf("%v", r.AttackBlockedAtClient)},
			{"suggestion intact (donald->trump)", fmt.Sprintf("%v", r.SuggestionIntact)},
			{"aggregate exact", fmt.Sprintf("%v", r.AggregateExact)},
			{"mean contribute latency", r.MeanContributeLatency.String()},
		})
}

// RunE5 reproduces the Glimmer defense over the Figure 1 cohort.
func RunE5(cfg Figure1Config) (*E5Result, error) {
	w, err := NewWorld(cfg.Seed, cfg.Users, cfg.WordsPerUser)
	if err != nil {
		return nil, err
	}
	dims := w.Vocab.Dims()
	svc, err := w.newService("nextwordpredictive.com", predicate.UnitRangeCheck("unit-range", dims))
	if err != nil {
		return nil, err
	}
	// Dealer masks for one round across the cohort.
	const round = uint64(1)
	n := len(w.Pop.Users)
	masks, err := blind.ZeroSumMasks(append(cfg.Seed, 'e', '5'), n, dims)
	if err != nil {
		return nil, err
	}
	glimCfg, err := svc.GlimmerConfig(dims, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}

	models := w.localModels()
	honestSum := fixed.NewVector(dims)
	for i, m := range models {
		if i == 0 {
			continue // attacker's poisoned model is excluded from truth
		}
		honestSum.AddInPlace(m.Weights)
	}
	if err := fedml.Poison(models[0], cfg.AttackCue, cfg.AttackTarget, cfg.AttackWeight); err != nil {
		return nil, err
	}

	agg := service.NewPipeline(service.PipelineConfig{
		ServiceName: svc.Name(),
		Verify:      svc.ContributionVerifyKey(),
		Dim:         dims,
		Round:       round,
		Workers:     1,
		Shards:      1,
	})
	res := &E5Result{}
	var totalLatency time.Duration
	attackerMaskUnused := fixed.NewVector(dims)
	for i, m := range models {
		dev, err := w.provisionDevice(svc, glimCfg, map[uint64][]uint64{round: glimmer.VectorToBits(masks[i])})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sc, err := dev.Contribute(round, m.Weights, nil)
		totalLatency += time.Since(start)
		if err != nil {
			if i == 0 && errors.Is(err, glimmer.ErrRejected) {
				res.AttackBlockedAtClient = true
				res.Rejected++
				// The attacker's mask never enters the aggregate; account
				// for it so the honest masks still cancel.
				attackerMaskUnused.AddInPlace(masks[i])
				continue
			}
			return nil, fmt.Errorf("user %d: %w", i, err)
		}
		agg.Vet(dev.Measurement())
		if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
			return nil, err
		}
	}
	res.Accepted = agg.Count()
	res.MeanContributeLatency = totalLatency / time.Duration(n)

	// The surviving masks sum to -mask[attacker]; correct like a dropout.
	if err := agg.CorrectDropout(attackerMaskUnused); err != nil {
		return nil, err
	}
	got := agg.Sum()
	res.AggregateExact = true
	for d := range honestSum {
		if got[d] != honestSum[d] {
			res.AggregateExact = false
			break
		}
	}
	mean := got.Clone()
	for i := range mean {
		mean[i] = fixed.Ring(int64(mean[i]) / int64(agg.Count()))
	}
	global, err := fedml.FromWeights(w.Vocab, mean)
	if err != nil {
		return nil, err
	}
	top, _, err := global.Predict(cfg.AttackCue)
	if err != nil {
		return nil, err
	}
	res.SuggestionIntact = top != cfg.AttackTarget
	return res, nil
}

// E6Config parameterizes the decomposition ablation.
type E6Config struct {
	Seed []byte
	Dim  int
	// Contributions per configuration.
	Contributions int
	// TransitionCost is the synthetic enclave world-switch latency; the
	// ablation is run at zero and at this cost.
	TransitionCost time.Duration
}

// DefaultE6 is the recorded configuration.
func DefaultE6() E6Config {
	return E6Config{
		Seed:           []byte("glimmers-e6"),
		Dim:            64,
		Contributions:  64,
		TransitionCost: 20 * time.Microsecond,
	}
}

// E6Row is one deployment's cost.
type E6Row struct {
	Config string
	// ECallsPerContribution is the enclave transition count per operation.
	ECallsPerContribution float64
	// MeanLatency without synthetic transition cost.
	MeanLatency time.Duration
	// MeanLatencyCosted with the synthetic transition cost applied.
	MeanLatencyCosted time.Duration
}

// E6Result is the single-vs-decomposed ablation (§3's last paragraph).
type E6Result struct {
	Rows []E6Row
}

// Table renders the result.
func (r *E6Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Config, fmt.Sprintf("%.1f", row.ECallsPerContribution),
			row.MeanLatency.String(), row.MeanLatencyCosted.String()}
	}
	return table("E6 (§3): single vs decomposed enclaves",
		[]string{"config", "ecalls/contribution", "latency", "latency(+transition cost)"}, rows)
}

// RunE6 measures the price of decomposition.
func RunE6(cfg E6Config) (*E6Result, error) {
	w, err := NewWorld(cfg.Seed, 1, 10)
	if err != nil {
		return nil, err
	}
	svc, err := w.newService("ablation.example", predicate.UnitRangeCheck("unit-range", cfg.Dim))
	if err != nil {
		return nil, err
	}
	glimCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	contribution := fixed.NewVector(cfg.Dim)
	for i := range contribution {
		contribution[i] = fixed.FromFloat(0.5)
	}

	res := &E6Result{}
	type devLike interface {
		Contribute(uint64, fixed.Vector, []int64) (glimmer.SignedContribution, error)
	}
	measure := func(name string, mk func(costed bool) (devLike, func() uint64, error)) error {
		// Uncosted pass.
		dev, ecalls, err := mk(false)
		if err != nil {
			return err
		}
		before := ecalls()
		start := time.Now()
		for i := 0; i < cfg.Contributions; i++ {
			if _, err := dev.Contribute(uint64(i), contribution, nil); err != nil {
				return err
			}
		}
		lat := time.Since(start) / time.Duration(cfg.Contributions)
		perOp := float64(ecalls()-before) / float64(cfg.Contributions)

		// Costed pass.
		devC, _, err := mk(true)
		if err != nil {
			return err
		}
		start = time.Now()
		for i := 0; i < cfg.Contributions; i++ {
			if _, err := devC.Contribute(uint64(i), contribution, nil); err != nil {
				return err
			}
		}
		latCosted := time.Since(start) / time.Duration(cfg.Contributions)
		res.Rows = append(res.Rows, E6Row{
			Config:                name,
			ECallsPerContribution: perOp,
			MeanLatency:           lat,
			MeanLatencyCosted:     latCosted,
		})
		return nil
	}

	mkSingle := func(costed bool) (devLike, func() uint64, error) {
		var opts []tee.LoadOption
		if costed {
			opts = append(opts, tee.WithTransitionCost(cfg.TransitionCost))
		}
		dev, err := glimmer.NewDevice(w.Platform, glimCfg, opts...)
		if err != nil {
			return nil, nil, err
		}
		svc.Vet(dev.Measurement())
		payload, err := svc.BasePayload()
		if err != nil {
			return nil, nil, err
		}
		if err := svc.Provision(dev, payload); err != nil {
			return nil, nil, err
		}
		return dev, func() uint64 { return dev.Stats().ECalls }, nil
	}
	if err := measure("single enclave", mkSingle); err != nil {
		return nil, err
	}

	vendor, err := xcrypto.NewSigningKey()
	if err != nil {
		return nil, err
	}
	mkDecomposed := func(costed bool) (devLike, func() uint64, error) {
		var opts []tee.LoadOption
		if costed {
			opts = append(opts, tee.WithTransitionCost(cfg.TransitionCost))
		}
		dev, err := glimmer.NewDecomposedDevice(w.Platform, glimCfg, vendor.Public(), opts...)
		if err != nil {
			return nil, nil, err
		}
		payload, err := svc.BasePayload()
		if err != nil {
			return nil, nil, err
		}
		for _, c := range []*glimmer.Component{dev.Validator(), dev.Blinder(), dev.Signer()} {
			svc.Vet(c.Measurement())
			if err := svc.Provision(c, payload); err != nil {
				return nil, nil, err
			}
		}
		return dev, func() uint64 { return dev.Stats().ECalls }, nil
	}
	if err := measure("decomposed (3 enclaves)", mkDecomposed); err != nil {
		return nil, err
	}
	return res, nil
}

// E7Config parameterizes the corroboration-strength experiment.
type E7Config struct {
	Seed         []byte
	Users        int
	WordsPerUser int
	// Tolerance for the cross-check corroborator, in fixed-point units.
	Tolerance int64
}

// DefaultE7 is the recorded configuration.
func DefaultE7() E7Config {
	return E7Config{Seed: []byte("glimmers-e7"), Users: 8, WordsPerUser: 400, Tolerance: fixed.Scale / 100}
}

// E7Row is one validation level's outcome against honest and forging users.
type E7Row struct {
	Validation string
	// HonestAccepted / ForgedAccepted are acceptance rates.
	HonestAccepted float64
	ForgedAccepted float64
	// MaxSkewWeight is the largest per-dimension weight an accepted forgery
	// can claim — the attacker's remaining power at this level.
	MaxSkewWeight float64
}

// E7Result is the validation-strength ladder of §3: range checks stop
// out-of-range lies; activity corroboration (a la NAB) stops in-range lies
// that do not match real behaviour.
type E7Result struct {
	Rows []E7Row
}

// Table renders the result.
func (r *E7Result) Table() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Validation, f3(row.HonestAccepted), f3(row.ForgedAccepted), f3(row.MaxSkewWeight)}
	}
	return table("E7 (§3): validation strength vs adversary power",
		[]string{"validation", "honest-accepted", "forged-accepted", "max-skew-weight"}, rows)
}

// RunE7 sweeps the validation ladder.
func RunE7(cfg E7Config) (*E7Result, error) {
	w, err := NewWorld(cfg.Seed, cfg.Users, cfg.WordsPerUser)
	if err != nil {
		return nil, err
	}
	dims := w.Vocab.Dims()
	models := w.localModels()

	// The forgery: an in-range model claiming maximal weight for the
	// attacker's pet bigram, unrelated to what the attacker actually typed.
	forge := func(i int) fixed.Vector {
		v := fixed.NewVector(dims)
		dim, _ := w.Vocab.BigramIndex("donald", "dont")
		v[dim] = fixed.FromFloat(1.0)
		return v
	}

	levels := []struct {
		name string
		pred *predicate.Program
	}{
		{"none (blind trust)", predicate.AlwaysValid("always")},
		{"range check [0,1]", predicate.UnitRangeCheck("range", dims)},
		{"activity corroboration (NAB)", predicate.CrossCheck("corroborate", dims, cfg.Tolerance)},
	}

	res := &E7Result{}
	for _, level := range levels {
		analysis, err := predicate.Verify(level.pred)
		if err != nil {
			return nil, err
		}
		honestOK, forgedOK := 0, 0
		maxSkew := 0.0
		for i, m := range models {
			private := keyboard.CorroborationWeights(w.Pop.Users[i].Activity, w.Vocab)
			runPred := func(v fixed.Vector) bool {
				contribution := make([]int64, len(v))
				for d, r := range v {
					contribution[d] = int64(r)
				}
				r, err := predicate.Run(level.pred, contribution, private, &predicate.Options{MaxSteps: analysis.CostBound})
				return err == nil && r.Verdict != 0
			}
			if runPred(m.Weights) {
				honestOK++
			}
			forged := forge(i)
			if runPred(forged) {
				forgedOK++
				for _, r := range forged {
					if f := r.Float(); f > maxSkew {
						maxSkew = f
					}
				}
			}
		}
		// At the "none" level even 538 passes.
		if level.name == "none (blind trust)" {
			maxSkew = 538
		}
		res.Rows = append(res.Rows, E7Row{
			Validation:     level.name,
			HonestAccepted: float64(honestOK) / float64(len(models)),
			ForgedAccepted: float64(forgedOK) / float64(len(models)),
			MaxSkewWeight:  maxSkew,
		})
	}
	return res, nil
}
