package experiments

import "testing"

func TestE13FaultSweep(t *testing.T) {
	cfg := DefaultE13()
	cfg.Devices = 8
	cfg.Rounds = 3
	cfg.FaultRates = []float64{0, 0.3}
	res, err := RunE13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Exact || !row.InvariantsOK {
			t.Errorf("rate %g: exact=%v invariants=%v", row.FaultRate, row.Exact, row.InvariantsOK)
		}
	}
	// Faults must cost acceptance, and the zero-rate run must accept the
	// full fleet minus the racing straggler at worst.
	if res.Rows[1].Accepted >= res.Rows[0].Accepted {
		t.Errorf("fault rate 0.3 accepted %d >= clean run %d", res.Rows[1].Accepted, res.Rows[0].Accepted)
	}
	if res.Rows[1].ServiceRejected == 0 {
		t.Error("fault run recorded no service-side rejections")
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}
