// Package experiments implements the reproduction harness: one runnable
// experiment per figure or claim of the paper, as indexed in README.md.
// Each experiment returns a typed result whose Table method prints its
// rows; cmd/experiments regenerates them all and the root bench_test.go
// wraps them as benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"glimmers/internal/fedml"
	"glimmers/internal/glimmer"
	"glimmers/internal/keyboard"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

// table renders rows with aligned columns.
func table(title string, header []string, rows [][]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	return sb.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// World is the shared experiment fixture: an attestation root, a platform,
// and the paper's trending-keyboard population.
type World struct {
	AS       *tee.AttestationService
	Platform *tee.Platform
	Pop      *keyboard.Population
	Vocab    *keyboard.Vocabulary
}

// NewWorld builds the fixture deterministically from a seed.
func NewWorld(seed []byte, users, wordsPerUser int) (*World, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, err
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, err
	}
	pop, err := keyboard.TrendingScenario(seed, users, wordsPerUser)
	if err != nil {
		return nil, err
	}
	return &World{AS: as, Platform: platform, Pop: pop, Vocab: pop.Corpus.Vocabulary()}, nil
}

// localModels trains each user's partial model.
func (w *World) localModels() []*fedml.Model {
	models := make([]*fedml.Model, len(w.Pop.Users))
	for i, u := range w.Pop.Users {
		models[i] = fedml.TrainLocal(u.Activity, w.Vocab)
	}
	return models
}

// heldout generates evaluation activity from the same corpus.
func (w *World) heldout(n int) keyboard.Activity {
	return w.Pop.Corpus.GenerateActivity([]byte("heldout"), n)
}

// newService creates a vetted service over the world's trust root.
func (w *World) newService(name string, pred *predicate.Program) (*service.Service, error) {
	svc, err := service.New(name, w.AS.Root())
	if err != nil {
		return nil, err
	}
	if err := svc.SetPredicate(pred); err != nil {
		return nil, err
	}
	return svc, nil
}

// provisionDevice loads, vets, and provisions one Glimmer device.
func (w *World) provisionDevice(svc *service.Service, cfg glimmer.Config, masks map[uint64][]uint64) (*glimmer.Device, error) {
	dev, err := glimmer.NewDevice(w.Platform, cfg)
	if err != nil {
		return nil, err
	}
	svc.Vet(dev.Measurement())
	payload, err := svc.BasePayload()
	if err != nil {
		return nil, err
	}
	payload.Masks = masks
	if err := svc.Provision(dev, payload); err != nil {
		return nil, err
	}
	return dev, nil
}
