// Package keyboard simulates the user population behind the paper's running
// example: a predictive-keyboard service learning next-word suggestions
// from what users type (Figure 1).
//
// Real keystroke data is deeply private and unavailable; what the
// experiments need from it is distributional structure — a shared
// vocabulary, per-user habits, population-wide trends ("Donald" → "Trump"
// rising as many users type it in a short time span), and timestamped
// activity that a validator can use to corroborate claimed model updates
// (the NAB-style validation of §3). This package synthesizes exactly that.
package keyboard

import (
	"fmt"
	"sort"

	"glimmers/internal/fixed"
	"glimmers/internal/xcrypto"
)

// Vocabulary is the closed word set of the simulation. Bigram (prev, next)
// pairs index model dimensions as prev*Size()+next.
type Vocabulary struct {
	words []string
	index map[string]int
}

// NewVocabulary builds a vocabulary from distinct words.
func NewVocabulary(words []string) (*Vocabulary, error) {
	v := &Vocabulary{words: append([]string(nil), words...), index: make(map[string]int, len(words))}
	for i, w := range words {
		if _, dup := v.index[w]; dup {
			return nil, fmt.Errorf("keyboard: duplicate word %q", w)
		}
		v.index[w] = i
	}
	if len(v.words) == 0 {
		return nil, fmt.Errorf("keyboard: empty vocabulary")
	}
	return v, nil
}

// Size returns the number of words.
func (v *Vocabulary) Size() int { return len(v.words) }

// Dims returns the bigram-model dimension, Size squared.
func (v *Vocabulary) Dims() int { return len(v.words) * len(v.words) }

// Word returns the word at index i.
func (v *Vocabulary) Word(i int) string { return v.words[i] }

// Index returns a word's position.
func (v *Vocabulary) Index(w string) (int, bool) {
	i, ok := v.index[w]
	return i, ok
}

// BigramIndex returns the model dimension for the ordered pair.
func (v *Vocabulary) BigramIndex(prev, next string) (int, error) {
	p, ok := v.index[prev]
	if !ok {
		return 0, fmt.Errorf("keyboard: unknown word %q", prev)
	}
	n, ok := v.index[next]
	if !ok {
		return 0, fmt.Errorf("keyboard: unknown word %q", next)
	}
	return p*len(v.words) + n, nil
}

// Bigram decodes a model dimension back to its word pair.
func (v *Vocabulary) Bigram(dim int) (prev, next string) {
	return v.words[dim/len(v.words)], v.words[dim%len(v.words)]
}

// Event is one committed word with its timestamp.
type Event struct {
	TimeMs int64
	Word   string
}

// Activity is a user's private typing log: the raw data that must never
// reach the service.
type Activity []Event

// Words extracts the word sequence.
func (a Activity) Words() []string {
	out := make([]string, len(a))
	for i, e := range a {
		out[i] = e.Word
	}
	return out
}

// BigramCounts tallies ordered word pairs in the activity over the
// vocabulary; the result is the sufficient statistic local training uses.
func (a Activity) BigramCounts(v *Vocabulary) []int64 {
	counts := make([]int64, v.Dims())
	for i := 1; i < len(a); i++ {
		dim, err := v.BigramIndex(a[i-1].Word, a[i].Word)
		if err != nil {
			continue // words outside the vocabulary carry no signal
		}
		counts[dim]++
	}
	return counts
}

// DistinctBigrams returns the set of bigram dimensions the user actually
// typed — the ground truth a model-inversion attacker tries to recover.
func (a Activity) DistinctBigrams(v *Vocabulary) map[int]bool {
	out := make(map[int]bool)
	for i := 1; i < len(a); i++ {
		if dim, err := v.BigramIndex(a[i-1].Word, a[i].Word); err == nil {
			out[dim] = true
		}
	}
	return out
}

// Corpus is the population-level language model activity is sampled from: a
// row-stochastic transition matrix over the vocabulary, optionally boosted
// by trends.
type Corpus struct {
	vocab *Vocabulary
	// trans[p][n] is the probability of word n following word p.
	trans [][]float64
}

// NewCorpus builds a corpus with a Zipf-flavoured random transition
// structure: a few continuations dominate each word, like natural text.
func NewCorpus(vocab *Vocabulary, seed []byte) *Corpus {
	prg := xcrypto.NewPRG(append([]byte("glimmers/keyboard/corpus/v1\x00"), seed...))
	n := vocab.Size()
	c := &Corpus{vocab: vocab, trans: make([][]float64, n)}
	for p := 0; p < n; p++ {
		row := make([]float64, n)
		// Zipf over a random preference order of continuations.
		perm := prg.Perm(n)
		var sum float64
		for rank, next := range perm {
			w := 1.0 / float64(rank+1)
			row[next] = w
			sum += w
		}
		for i := range row {
			row[i] /= sum
		}
		c.trans[p] = row
	}
	return c
}

// Vocabulary returns the corpus vocabulary.
func (c *Corpus) Vocabulary() *Vocabulary { return c.vocab }

// Boost multiplies the probability of the (from, to) transition by factor
// and renormalizes the row: how a trending phrase ("Donald" → "Trump")
// enters the population's typing.
func (c *Corpus) Boost(from, to string, factor float64) error {
	p, ok := c.vocab.Index(from)
	if !ok {
		return fmt.Errorf("keyboard: unknown word %q", from)
	}
	n, ok := c.vocab.Index(to)
	if !ok {
		return fmt.Errorf("keyboard: unknown word %q", to)
	}
	row := c.trans[p]
	row[n] *= factor
	var sum float64
	for _, w := range row {
		sum += w
	}
	for i := range row {
		row[i] /= sum
	}
	return nil
}

// TransitionProb returns the corpus probability of next following prev.
func (c *Corpus) TransitionProb(prev, next string) (float64, error) {
	p, ok := c.vocab.Index(prev)
	if !ok {
		return 0, fmt.Errorf("keyboard: unknown word %q", prev)
	}
	n, ok := c.vocab.Index(next)
	if !ok {
		return 0, fmt.Errorf("keyboard: unknown word %q", next)
	}
	return c.trans[p][n], nil
}

// GenerateActivity samples a user session of nWords from the corpus chain,
// with human-ish inter-word timing (lognormal-ish around ~350ms).
func (c *Corpus) GenerateActivity(userSeed []byte, nWords int) Activity {
	prg := xcrypto.NewPRG(append([]byte("glimmers/keyboard/user/v1\x00"), userSeed...))
	activity := make(Activity, 0, nWords)
	cur := prg.Intn(c.vocab.Size())
	timeMs := int64(0)
	for i := 0; i < nWords; i++ {
		// Advance the chain.
		r := prg.Float64()
		row := c.trans[cur]
		next := len(row) - 1
		acc := 0.0
		for j, w := range row {
			acc += w
			if r < acc {
				next = j
				break
			}
		}
		gap := 250 + int64(prg.Intn(200)) + int64(60*prg.NormFloat64())
		if gap < 80 {
			gap = 80
		}
		timeMs += gap
		activity = append(activity, Event{TimeMs: timeMs, Word: c.vocab.Word(next)})
		cur = next
	}
	return activity
}

// CorroborationWeights converts raw activity into the same fixed-point
// weight vector local training would produce — the private bank a
// CrossCheck predicate compares a claimed contribution against (the
// NAB-style validation of §3).
func CorroborationWeights(a Activity, v *Vocabulary) []int64 {
	return WeightsFromCounts(a.BigramCounts(v), v)
}

// WeightsFromCounts row-normalizes bigram counts into fixed-point
// conditional probabilities P(next | prev).
func WeightsFromCounts(counts []int64, v *Vocabulary) []int64 {
	n := v.Size()
	weights := make([]int64, v.Dims())
	for p := 0; p < n; p++ {
		var rowSum int64
		for next := 0; next < n; next++ {
			rowSum += counts[p*n+next]
		}
		if rowSum == 0 {
			continue
		}
		for next := 0; next < n; next++ {
			w := float64(counts[p*n+next]) / float64(rowSum)
			weights[p*n+next] = int64(fixed.FromFloat(w))
		}
	}
	return weights
}

// DefaultWords is the scenario vocabulary: the paper's example phrases plus
// filler words so trends have background to emerge from.
var DefaultWords = []string{
	"donald", "trump", "voting", "for", "dont", "like", "i", "am", "the",
	"world", "series", "game", "tonight", "watch", "news", "weather",
	"is", "nice", "today", "meeting", "at", "noon", "lunch", "plans",
	"see", "you", "soon", "thanks", "ok", "yes", "no", "maybe",
}

// Population is a set of simulated users sharing a corpus.
type Population struct {
	Corpus *Corpus
	Users  []User
}

// User is one simulated device owner.
type User struct {
	Name     string
	Activity Activity
}

// TrendingScenario builds the paper's Figure 1 world: nUsers users typing
// wordsPerUser words from a shared corpus in which "donald"→"trump" and
// "world"→"series" are trending.
func TrendingScenario(seed []byte, nUsers, wordsPerUser int) (*Population, error) {
	vocab, err := NewVocabulary(DefaultWords)
	if err != nil {
		return nil, err
	}
	corpus := NewCorpus(vocab, seed)
	if err := corpus.Boost("donald", "trump", 40); err != nil {
		return nil, err
	}
	if err := corpus.Boost("world", "series", 40); err != nil {
		return nil, err
	}
	if err := corpus.Boost("voting", "for", 25); err != nil {
		return nil, err
	}
	pop := &Population{Corpus: corpus}
	for i := 0; i < nUsers; i++ {
		name := fmt.Sprintf("user-%03d", i)
		userSeed := append(append([]byte(nil), seed...), byte(i), byte(i>>8))
		pop.Users = append(pop.Users, User{
			Name:     name,
			Activity: corpus.GenerateActivity(userSeed, wordsPerUser),
		})
	}
	return pop, nil
}

// TopBigrams returns the k most frequent bigrams across the population,
// a ground-truth view of what "trending" means in the experiment.
func (p *Population) TopBigrams(k int) []string {
	v := p.Corpus.Vocabulary()
	total := make([]int64, v.Dims())
	for _, u := range p.Users {
		for dim, c := range u.Activity.BigramCounts(v) {
			total[dim] += c
		}
	}
	type dimCount struct {
		dim   int
		count int64
	}
	all := make([]dimCount, 0, len(total))
	for dim, c := range total {
		if c > 0 {
			all = append(all, dimCount{dim, c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].dim < all[j].dim
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		prev, next := v.Bigram(all[i].dim)
		out[i] = prev + " " + next
	}
	return out
}
