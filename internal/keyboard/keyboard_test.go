package keyboard

import (
	"testing"
	"testing/quick"

	"glimmers/internal/fixed"
)

func testVocab(t *testing.T) *Vocabulary {
	t.Helper()
	v, err := NewVocabulary([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVocabularyBasics(t *testing.T) {
	v := testVocab(t)
	if v.Size() != 4 || v.Dims() != 16 {
		t.Fatalf("Size/Dims = %d/%d", v.Size(), v.Dims())
	}
	i, ok := v.Index("c")
	if !ok || i != 2 {
		t.Fatalf("Index(c) = %d, %v", i, ok)
	}
	if _, ok := v.Index("zebra"); ok {
		t.Fatal("unknown word found")
	}
	if v.Word(1) != "b" {
		t.Fatalf("Word(1) = %q", v.Word(1))
	}
}

func TestVocabularyRejectsDuplicates(t *testing.T) {
	if _, err := NewVocabulary([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewVocabulary(nil); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
}

func TestBigramIndexRoundTrip(t *testing.T) {
	v := testVocab(t)
	for _, prev := range []string{"a", "b", "c", "d"} {
		for _, next := range []string{"a", "b", "c", "d"} {
			dim, err := v.BigramIndex(prev, next)
			if err != nil {
				t.Fatal(err)
			}
			gotPrev, gotNext := v.Bigram(dim)
			if gotPrev != prev || gotNext != next {
				t.Fatalf("round trip (%s,%s) -> dim %d -> (%s,%s)", prev, next, dim, gotPrev, gotNext)
			}
		}
	}
	if _, err := v.BigramIndex("zebra", "a"); err == nil {
		t.Fatal("unknown prev accepted")
	}
	if _, err := v.BigramIndex("a", "zebra"); err == nil {
		t.Fatal("unknown next accepted")
	}
}

func TestBigramCounts(t *testing.T) {
	v := testVocab(t)
	a := Activity{{0, "a"}, {300, "b"}, {600, "a"}, {900, "b"}, {1200, "c"}}
	counts := a.BigramCounts(v)
	ab, _ := v.BigramIndex("a", "b")
	ba, _ := v.BigramIndex("b", "a")
	bc, _ := v.BigramIndex("b", "c")
	if counts[ab] != 2 || counts[ba] != 1 || counts[bc] != 1 {
		t.Fatalf("counts: ab=%d ba=%d bc=%d", counts[ab], counts[ba], counts[bc])
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("total transitions %d, want 4", total)
	}
}

func TestDistinctBigrams(t *testing.T) {
	v := testVocab(t)
	a := Activity{{0, "a"}, {1, "b"}, {2, "a"}, {3, "b"}}
	distinct := a.DistinctBigrams(v)
	if len(distinct) != 2 {
		t.Fatalf("distinct = %d, want 2 (ab, ba)", len(distinct))
	}
}

func TestWeightsFromCountsRowNormalized(t *testing.T) {
	v := testVocab(t)
	counts := make([]int64, v.Dims())
	ab, _ := v.BigramIndex("a", "b")
	ac, _ := v.BigramIndex("a", "c")
	counts[ab] = 3
	counts[ac] = 1
	w := WeightsFromCounts(counts, v)
	if got := fixed.Ring(w[ab]).Float(); got < 0.74 || got > 0.76 {
		t.Fatalf("w[ab] = %v, want 0.75", got)
	}
	if got := fixed.Ring(w[ac]).Float(); got < 0.24 || got > 0.26 {
		t.Fatalf("w[ac] = %v, want 0.25", got)
	}
	// Row "b" has no observations: all zero, not NaN garbage.
	ba, _ := v.BigramIndex("b", "a")
	if w[ba] != 0 {
		t.Fatalf("unobserved row nonzero: %d", w[ba])
	}
}

func TestCorpusRowsAreStochastic(t *testing.T) {
	v := testVocab(t)
	c := NewCorpus(v, []byte("s"))
	for p := 0; p < v.Size(); p++ {
		var sum float64
		for n := 0; n < v.Size(); n++ {
			pr, err := c.TransitionProb(v.Word(p), v.Word(n))
			if err != nil {
				t.Fatal(err)
			}
			if pr < 0 {
				t.Fatalf("negative probability at (%d,%d)", p, n)
			}
			sum += pr
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v", p, sum)
		}
	}
}

func TestBoostRaisesProbability(t *testing.T) {
	v := testVocab(t)
	c := NewCorpus(v, []byte("s"))
	before, _ := c.TransitionProb("a", "b")
	if err := c.Boost("a", "b", 20); err != nil {
		t.Fatal(err)
	}
	after, _ := c.TransitionProb("a", "b")
	if after <= before {
		t.Fatalf("boost did not raise probability: %v -> %v", before, after)
	}
	// Row still stochastic.
	var sum float64
	for n := 0; n < v.Size(); n++ {
		pr, _ := c.TransitionProb("a", v.Word(n))
		sum += pr
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("boosted row sums to %v", sum)
	}
	if err := c.Boost("zebra", "b", 2); err == nil {
		t.Fatal("unknown word accepted")
	}
}

func TestGenerateActivityShape(t *testing.T) {
	v := testVocab(t)
	c := NewCorpus(v, []byte("s"))
	a := c.GenerateActivity([]byte("u1"), 100)
	if len(a) != 100 {
		t.Fatalf("activity length %d", len(a))
	}
	last := int64(-1)
	for _, e := range a {
		if e.TimeMs <= last {
			t.Fatal("timestamps not strictly increasing")
		}
		last = e.TimeMs
		if _, ok := v.Index(e.Word); !ok {
			t.Fatalf("unknown word %q generated", e.Word)
		}
	}
	// Deterministic per seed.
	b := c.GenerateActivity([]byte("u1"), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different activity")
		}
	}
	other := c.GenerateActivity([]byte("u2"), 100)
	same := 0
	for i := range a {
		if a[i].Word == other[i].Word {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical activity")
	}
}

func TestTrendingScenario(t *testing.T) {
	pop, err := TrendingScenario([]byte("exp"), 24, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Users) != 24 {
		t.Fatalf("users = %d", len(pop.Users))
	}
	top := pop.TopBigrams(12)
	found := false
	for _, bg := range top {
		if bg == "donald trump" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trending bigram not in top-12: %v", top)
	}
}

func TestCorroborationWeightsMatchTraining(t *testing.T) {
	pop, err := TrendingScenario([]byte("c"), 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	v := pop.Corpus.Vocabulary()
	a := pop.Users[0].Activity
	w1 := CorroborationWeights(a, v)
	w2 := WeightsFromCounts(a.BigramCounts(v), v)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("corroboration weights diverge from training weights")
		}
	}
}

// Property: generated activity never leaves the vocabulary and bigram
// counts total exactly len(activity)-1.
func TestQuickActivityWellFormed(t *testing.T) {
	v := testVocab(t)
	c := NewCorpus(v, []byte("q"))
	f := func(seed []byte, nRaw uint8) bool {
		n := int(nRaw%64) + 2
		a := c.GenerateActivity(seed, n)
		if len(a) != n {
			return false
		}
		var total int64
		for _, cnt := range a.BigramCounts(v) {
			total += cnt
		}
		return total == int64(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: weights from counts always lie in [0, 1] fixed-point.
func TestQuickWeightsInUnitRange(t *testing.T) {
	v := testVocab(t)
	f := func(raw [16]uint8) bool {
		counts := make([]int64, 16)
		for i, r := range raw {
			counts[i] = int64(r)
		}
		for _, w := range WeightsFromCounts(counts, v) {
			if !fixed.Ring(w).InUnitRange() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
