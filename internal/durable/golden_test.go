package durable

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/service"
	"glimmers/internal/wire"
)

// Golden vectors: the snapshot and WAL encodings are what lets a newer
// glimmerd recover state a crashed older one left behind. The fixtures in
// testdata/ are the frozen bytes; a codec change that alters them breaks
// cross-version recovery and must bump the magic, not silently reshape
// the encoding. Regenerate deliberately with
// GLIMMERS_UPDATE_GOLDEN=1 go test ./internal/durable.

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	data, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return data
}

func maybeUpdateGolden(t *testing.T, name string, data []byte) bool {
	t.Helper()
	if os.Getenv("GLIMMERS_UPDATE_GOLDEN") == "" {
		return false
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", name), []byte(hex.EncodeToString(data)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return true
}

// goldenWAL builds the frozen record sequence (driveStore's mutations) as
// a complete WAL image.
func goldenWAL() []byte {
	img := append([]byte(nil), walMagic...)
	c := &recordCollector{}
	driveStore(c)
	for _, p := range c.payloads {
		img = appendFrame(img, p)
	}
	return img
}

func TestGoldenSnapshot(t *testing.T) {
	got := EncodeSnapshot(testState(t), 7)
	if maybeUpdateGolden(t, "snapshot.hex", got) {
		t.Skip("updated testdata/snapshot.hex")
	}
	want := readGolden(t, "snapshot.hex")
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot encoding changed:\n got: %x\nwant: %x", got, want)
	}
	st, gen, err := DecodeSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 || len(st.Tenants) != 1 || st.Tenants[0].Name != testTenant {
		t.Fatalf("decoded gen=%d tenants=%+v", gen, st.Tenants)
	}
	if len(st.Tenants[0].Rounds) != 2 || len(st.Tenants[0].Tickets) != 2 {
		t.Fatalf("decoded rounds/tickets = %d/%d", len(st.Tenants[0].Rounds), len(st.Tenants[0].Tickets))
	}
}

func TestGoldenWAL(t *testing.T) {
	got := goldenWAL()
	if maybeUpdateGolden(t, "wal.hex", got) {
		t.Skip("updated testdata/wal.hex")
	}
	want := readGolden(t, "wal.hex")
	if !bytes.Equal(got, want) {
		t.Fatalf("WAL encoding changed:\n got: %x\nwant: %x", got, want)
	}
	// The frozen image replays into exactly the state driveStore
	// describes.
	reg := newTestRegistry(t)
	rj := reg.ReplayJournal(func(err error) { t.Errorf("replay error: %v", err) })
	records := 0
	good, torn := walkFrames(want, func(p []byte) error {
		if err := applyRecord(p, rj); err != nil {
			return err
		}
		records++
		return nil
	})
	if torn || good != int64(len(want)) || records != 12 {
		t.Fatalf("walk: good=%d torn=%v records=%d", good, torn, records)
	}
	checkReplayedState(t, reg)
}

// TestUpdateFuzzSeeds regenerates the checked-in seed corpora alongside
// the golden fixtures (GLIMMERS_UPDATE_GOLDEN=1): the 10-second CI fuzz
// smokes start from known-interesting shapes — a valid snapshot, a valid
// WAL, truncations and tears — instead of from scratch.
func TestUpdateFuzzSeeds(t *testing.T) {
	if os.Getenv("GLIMMERS_UPDATE_GOLDEN") == "" {
		t.Skip("set GLIMMERS_UPDATE_GOLDEN=1 to regenerate seed corpora")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snap := EncodeSnapshot(testState(t), 7)
	write("FuzzDecodeSnapshot", "seed_valid", snap)
	write("FuzzDecodeSnapshot", "seed_truncated", snap[:len(snap)/2])
	write("FuzzDecodeSnapshot", "seed_magic_only", []byte("\x00\x00\x00\x14"+snapshotMagic))
	wal := goldenWAL()
	write("FuzzWALReplay", "seed_valid", wal)
	write("FuzzWALReplay", "seed_torn", append(append([]byte(nil), wal...), 0x00, 0x00, 0x00, 0x40, 0xDE))
	write("FuzzWALReplay", "seed_magic_only", walMagic)
}

// recordCollector implements service.Journal with the same encoders
// Store.append uses, collecting raw payloads instead of writing frames
// to disk — the golden WAL and the live store stay in lockstep by
// construction.
type recordCollector struct{ payloads [][]byte }

func (c *recordCollector) add(build func(w *wire.Writer)) {
	w := wire.NewWriter()
	build(w)
	c.payloads = append(c.payloads, append([]byte(nil), w.Finish()...))
}

func (c *recordCollector) RoundCreated(tenant string, round uint64) {
	c.add(func(w *wire.Writer) { encodeRound(w, recRoundCreated, tenant, round) })
}

func (c *recordCollector) RoundSealed(tenant string, round uint64) {
	c.add(func(w *wire.Writer) { encodeRound(w, recRoundSealed, tenant, round) })
}

func (c *recordCollector) RoundClosed(tenant string, round uint64) {
	c.add(func(w *wire.Writer) { encodeRound(w, recRoundClosed, tenant, round) })
}

func (c *recordCollector) RoundForgotten(tenant string, round uint64) {
	c.add(func(w *wire.Writer) { encodeRound(w, recRoundForgotten, tenant, round) })
}

func (c *recordCollector) Accepted(tenant string, round uint64, d [32]byte, blinded fixed.Vector) {
	c.add(func(w *wire.Writer) { encodeAcceptedOne(w, tenant, round, d, blinded) })
}

func (c *recordCollector) BatchAccepted(tenant string, round uint64, ds [][32]byte, delta fixed.Vector) {
	c.add(func(w *wire.Writer) { encodeAccepted(w, tenant, round, ds, delta) })
}

func (c *recordCollector) DropoutCorrected(tenant string, round uint64, mask fixed.Vector) {
	c.add(func(w *wire.Writer) { encodeDropout(w, tenant, round, mask) })
}

func (c *recordCollector) Rejected(tenant string, round uint64, level service.RejectLevel, n int) {
	c.add(func(w *wire.Writer) { encodeRejected(w, tenant, round, level, n) })
}

func (c *recordCollector) TicketGranted(tenant string, tk service.TicketState) {
	c.add(func(w *wire.Writer) { encodeTicketGranted(w, tenant, tk) })
}

func (c *recordCollector) TicketEvicted(tenant string, id uint64) {
	c.add(func(w *wire.Writer) { encodeTicketEvicted(w, tenant, id) })
}
