package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"glimmers/internal/audit"
	"glimmers/internal/fixed"
)

// manualConfig disables every automatic flush trigger: records reach the
// disk only through barriers, explicit Flush, or Close — the
// deterministic mode the tests (and the crash simulator) rely on.
var manualConfig = Config{FlushBytes: 1 << 30, FlushInterval: time.Hour}

func openManual(t *testing.T, dir string) *Store {
	t.Helper()
	reg := newTestRegistry(t)
	s, err := OpenConfig(dir, manualConfig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(reg); err != nil {
		t.Fatal(err)
	}
	return s
}

// countFrames walks the on-disk WAL of the given generation and returns
// how many intact frames it holds right now — what a crash at this
// instant would leave recoverable.
func countFrames(t *testing.T, dir string, gen string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "wal."+gen))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	_, torn := walkFrames(data, func([]byte) error { n++; return nil })
	if torn {
		t.Fatalf("WAL has a torn tail after %d frames", n)
	}
	return n
}

// TestGroupCommitCoalesces pins the whole point of the rewrite: many
// async records become one write(2). With automatic flushing disabled,
// 200 staged accepts plus one Flush must produce exactly one write and
// one fsync.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	s := openManual(t, dir)
	defer s.Close()

	const n = 200
	for i := 0; i < n; i++ {
		s.Accepted(testTenant, 1, digest(byte(i)), fixed.Vector{1, 2, 3, 4})
	}
	if st := s.Stats(); st.Writes != 0 {
		t.Fatalf("async records hit the disk before any flush: %+v", st)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != n || st.Writes != 1 || st.Syncs != 1 {
		t.Errorf("stats = %+v, want %d records in exactly 1 write and 1 sync", st, n)
	}
	if st.StagedPeak == 0 || st.BytesWritten == 0 {
		t.Errorf("stats not tracking staging: %+v", st)
	}
	if got := countFrames(t, dir, "1"); got != n {
		t.Errorf("WAL holds %d frames, want %d", got, n)
	}
}

// TestBarrierMakesPrefixDurable: when a barrier record (here RoundSealed)
// returns, it and every record staged before it are on disk — no Flush,
// no Close, no background interval.
func TestBarrierMakesPrefixDurable(t *testing.T) {
	dir := t.TempDir()
	s := openManual(t, dir)
	defer s.Close()

	s.RoundCreated(testTenant, 1)
	for i := 0; i < 5; i++ {
		s.Accepted(testTenant, 1, digest(byte(i)), fixed.Vector{1, 2, 3, 4})
	}
	s.RoundSealed(testTenant, 1)

	if got := countFrames(t, dir, "1"); got != 7 {
		t.Errorf("WAL holds %d frames after the seal barrier, want all 7", got)
	}
	st := s.Stats()
	if st.BarrierWaits != 1 || st.Syncs == 0 {
		t.Errorf("stats = %+v, want 1 barrier wait backed by an fsync", st)
	}
}

// TestGiantRecordReleasesCapacity is the unbounded-growth regression
// test: one giant BatchAccepted (bigger than the staging retention cap)
// must neither corrupt the WAL nor pin its high-water allocation in the
// recycled buffers.
func TestGiantRecordReleasesCapacity(t *testing.T) {
	dir := t.TempDir()
	s := openManual(t, dir)

	// ~6.4 MB of digests: over maxRetainedRecord for the encoder pool and
	// over the 4 MiB staging-retention floor.
	giant := make([][32]byte, 200_000)
	for i := range giant {
		var d [32]byte
		d[0], d[1], d[2] = byte(i), byte(i>>8), byte(i>>16)
		giant[i] = d
	}
	s.RoundCreated(testTenant, 1)
	s.BatchAccepted(testTenant, 1, giant, fixed.Vector{1, 2, 3, 4})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	spareCap, stagedCap, retained := cap(s.spare), cap(s.staged), s.maxRetained
	s.mu.Unlock()
	if spareCap > retained || stagedCap > retained {
		t.Errorf("giant record pinned its capacity: spare=%d staged=%d, cap %d", spareCap, stagedCap, retained)
	}

	// The record itself is intact: a fresh recovery replays every digest.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	regB, sB, stats := recoverInto(t, dir)
	defer sB.Close()
	if stats.Records != 2 || stats.ReplayErrors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	tn, _ := regB.Tenant(testTenant)
	p, ok := tn.Manager().Lookup(1)
	if !ok || p.Count() != len(giant) {
		t.Fatalf("giant batch replayed %d digests, want %d", p.Count(), len(giant))
	}
}

// TestWALErrorAuditedImmediately (and barrier liveness on a dead WAL):
// the first write-path failure must surface in the audit log right away
// — not at shutdown — and a barrier issued afterwards must return, not
// hang on an fsync that will never come.
func TestWALErrorAuditedImmediately(t *testing.T) {
	dir := t.TempDir()
	aud := audit.NewLog(nil, testClock)
	reg := newTestRegistry(t)
	s, err := OpenConfig(dir, manualConfig)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAudit(aud)
	if _, err := s.Recover(reg); err != nil {
		t.Fatal(err)
	}

	// Kill the WAL out from under the store: every later write fails the
	// way a yanked disk or a full filesystem would.
	s.mu.Lock()
	s.f.Close()
	s.mu.Unlock()

	s.Accepted(testTenant, 1, digest(1), fixed.Vector{1, 2, 3, 4})
	done := make(chan struct{})
	go func() {
		s.RoundSealed(testTenant, 1) // barrier: must return despite the dead file
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("barrier hung on a dead WAL")
	}

	if err := s.Err(); err == nil {
		t.Fatal("write failure not sticky")
	}
	found := false
	for _, line := range aud.Tail() {
		if strings.Contains(line, "wal-error") {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit log missing wal-error event: %v", aud.Tail())
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close cleared the sticky error")
	}
}

// TestInlineBackpressureFlush: with the background flusher stopped (the
// starved-flusher worst case), staging past 4x FlushBytes makes the
// journal caller flush inline instead of growing without bound.
func TestInlineBackpressureFlush(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t)
	s, err := OpenConfig(dir, Config{FlushBytes: 256, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(reg); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.stopFlusher()

	for i := 0; i < 64; i++ {
		s.Accepted(testTenant, 1, digest(byte(i)), fixed.Vector{1, 2, 3, 4})
	}
	st := s.Stats()
	if st.Writes == 0 {
		t.Fatalf("no inline flush despite a stopped flusher: %+v", st)
	}
	s.mu.Lock()
	staged := len(s.staged)
	s.mu.Unlock()
	if staged >= 4*256+128 {
		t.Errorf("staging grew past the backpressure bound: %d bytes", staged)
	}
}

// TestBackgroundFlusherInterval: async records reach the disk within the
// flush interval with no barrier, Flush, or Close involved — the
// documented loss-window bound.
func TestBackgroundFlusherInterval(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t)
	s, err := OpenConfig(dir, Config{FlushBytes: 1 << 30, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(reg); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Accepted(testTenant, 1, digest(1), fixed.Vector{1, 2, 3, 4})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Writes > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("record never flushed in the background: %+v", s.Stats())
}
