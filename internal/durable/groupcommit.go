package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"glimmers/internal/wire"
)

// Group commit: the journal hot path stages framed records in memory and
// a background flusher coalesces them into large writes, so turning on
// -state-dir does not re-serialize the concurrent ingest pipeline behind
// one write(2) per record.
//
// The write path has three stages:
//
//  1. Encode outside every lock. Each journal call takes a pooled
//     recordEncoder, renders the record payload and its CRC frame
//     header, and only then touches the store.
//  2. Stage under a short critical section. The framed bytes are
//     appended to the active staging segment and the record is assigned
//     the next sequence number. Nothing is written to disk here.
//  3. Flush in the background. The flusher swaps the staging segment for
//     its spare (double buffering: callers keep staging into the spare
//     while the swapped-out segment is on its way to disk), issues one
//     write(2) for the whole segment, and fsyncs only when a barrier is
//     waiting.
//
// Barrier records (RoundSealed, RoundClosed, TicketGranted — and the
// Snapshot/Close lifecycle) block their caller until the record is
// written AND fsynced: a seal must be durable before the sealed sum is
// observable anywhere else. Everything else (Accepted, BatchAccepted,
// Rejected, DropoutCorrected, RoundCreated, RoundForgotten,
// TicketEvicted) is fire-and-forget: a crash can lose the staged tail,
// bounded by FlushBytes/FlushInterval, and recovery then restores the
// exact flushed prefix — the same torn-tail contract the WAL always had,
// just with a slightly wider (and now tunable) window.

// Config tunes the group-commit write path. The zero value means
// defaults.
type Config struct {
	// FlushBytes is the staged-byte threshold that wakes the background
	// flusher early (the flusher also runs every FlushInterval). Staging
	// more than 4x this applies backpressure: the staging caller runs the
	// flush inline, bounding memory under a starved flusher.
	FlushBytes int
	// FlushInterval bounds how long an async record can sit staged
	// before it reaches the disk — the crash-loss window for
	// fire-and-forget records.
	FlushInterval time.Duration
}

// Defaults for Config's zero values: a quarter-MiB coalescing target and
// a single-digit-millisecond loss window.
const (
	DefaultFlushBytes    = 256 << 10
	DefaultFlushInterval = 2 * time.Millisecond
)

// maxRetainedStagingFloor is the minimum capacity cap for recycled
// staging segments; see Store.maxRetained.
const maxRetainedStagingFloor = 4 << 20

// maxRetainedRecord caps the capacity a pooled record encoder may keep:
// one giant BatchAccepted (a wide digest set) must not pin megabytes in
// the pool for the life of the process.
const maxRetainedRecord = 64 << 10

func (c Config) withDefaults() Config {
	if c.FlushBytes <= 0 {
		c.FlushBytes = DefaultFlushBytes
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	return c
}

// Stats are the group-commit counters, exposed for drain reports and
// benchmarks. The coalescing ratio is Records/Writes; StagedPeak is the
// largest byte count that was ever exposed to a crash.
type Stats struct {
	Records      uint64 // journal records staged
	BytesWritten uint64 // framed bytes that reached write(2)
	Writes       uint64 // write(2) calls issued (flushes + close drain)
	Syncs        uint64 // fsyncs (barriers, Flush, Snapshot, Close)
	BarrierWaits uint64 // records that blocked for durability
	StagedPeak   int    // high-water mark of staged-but-unwritten bytes
}

// Stats returns a snapshot of the write-path counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// recordEncoder is the per-call scratch a journal append needs: the wire
// writer the payload renders into. Pooled so steady-state appends
// allocate nothing.
type recordEncoder struct {
	w *wire.Writer
}

var encoderPool = sync.Pool{New: func() any { return &recordEncoder{w: wire.NewWriter()} }}

func getEncoder() *recordEncoder {
	e := encoderPool.Get().(*recordEncoder)
	e.w.Reset()
	return e
}

func putEncoder(e *recordEncoder, payloadCap int) {
	if payloadCap > maxRetainedRecord {
		return // drop: a giant record must not pin its capacity
	}
	encoderPool.Put(e)
}

// stage publishes one encoded record into the staging segment and, for a
// barrier, waits until it is written and fsynced. It consumes e.
func (s *Store) stage(barrier bool, e *recordEncoder) {
	payload := e.w.Finish()
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))

	s.mu.Lock()
	if s.f == nil || s.err != nil {
		s.mu.Unlock()
		putEncoder(e, cap(payload))
		return
	}
	s.staged = append(s.staged, hdr[:]...)
	s.staged = append(s.staged, payload...)
	s.seq++
	seq := s.seq
	s.stats.Records++
	if n := len(s.staged); n > s.stats.StagedPeak {
		s.stats.StagedPeak = n
	}
	if barrier {
		s.stats.BarrierWaits++
		if seq > s.wantSync {
			s.wantSync = seq
		}
	}
	kick := barrier || len(s.staged) >= s.cfg.FlushBytes
	inline := len(s.staged) >= 4*s.cfg.FlushBytes
	s.mu.Unlock()
	putEncoder(e, cap(payload))

	if inline {
		// Backpressure: the flusher is behind, so this caller pays for
		// the flush instead of staging without bound.
		s.flush(false)
	} else if kick {
		s.kickFlusher()
	}
	if barrier {
		s.mu.Lock()
		for s.syncedSeq < seq && s.err == nil && s.f != nil {
			s.synced.Wait()
		}
		s.mu.Unlock()
	}
}

func (s *Store) kickFlusher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// flush drains the staging segment with one write(2) and fsyncs if a
// barrier (or forceSync) demands it. ioMu serializes flushes against
// each other and against the snapshot rotation; s.mu is held only for
// the buffer swap and the bookkeeping, never across disk I/O.
func (s *Store) flush(forceSync bool) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()

	s.mu.Lock()
	f := s.f
	if f == nil || s.err != nil {
		s.mu.Unlock()
		return
	}
	needSync := forceSync || s.wantSync > s.syncedSeq
	if len(s.staged) == 0 && !needSync {
		s.mu.Unlock()
		return
	}
	buf := s.staged
	hi := s.seq
	s.staged = s.spare[:0:cap(s.spare)]
	s.spare = nil
	s.mu.Unlock()

	var err error
	if len(buf) > 0 {
		_, err = f.Write(buf)
	}
	synced := false
	if err == nil && needSync {
		if err = f.Sync(); err == nil {
			synced = true
		}
	}

	s.mu.Lock()
	if err == nil && len(buf) > 0 {
		s.stats.Writes++
		s.stats.BytesWritten += uint64(len(buf))
	}
	if synced {
		s.stats.Syncs++
	}
	if cap(buf) > s.maxRetained {
		buf = nil // a giant segment must not pin its capacity
	}
	s.spare = buf[:0:cap(buf)]
	if err != nil {
		s.failLocked(fmt.Errorf("durable: WAL flush: %w", err))
	} else {
		if hi > s.flushedSeq {
			s.flushedSeq = hi
		}
		if synced && hi > s.syncedSeq {
			s.syncedSeq = hi
			s.synced.Broadcast()
		}
	}
	s.mu.Unlock()
}

// Flush forces every record staged so far onto disk (written and
// fsynced) and reports the store's sticky error state. Serving code
// never needs it — barriers and the background flusher cover the
// contract — but deterministic tests and the crash simulator use it to
// pin down the exact flushed prefix.
func (s *Store) Flush() error {
	s.mu.Lock()
	if s.f == nil || s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.seq > s.wantSync {
		s.wantSync = s.seq
	}
	s.mu.Unlock()
	s.flush(true)
	return s.Err()
}

// failLocked records the first write-path failure (s.mu held). The error
// is sticky and surfaced on Snapshot/Close/Err — the serving path must
// not start refusing clients because the disk filled — but it is audited
// immediately: an operator watching the audit log sees the disk problem
// while the daemon is still serving, not at shutdown.
func (s *Store) failLocked(err error) {
	if s.err != nil {
		return
	}
	s.err = err
	s.synced.Broadcast() // barrier waiters must not hang on a dead WAL
	s.audit("wal-error", "generation=%d sticky=%v", s.gen, err)
}

// startFlusher launches the background flusher if the store has a live
// WAL file and no flusher yet. Idempotent.
func (s *Store) startFlusher() {
	s.mu.Lock()
	if s.flusherOn || s.f == nil {
		s.mu.Unlock()
		return
	}
	s.flusherOn = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done, interval := s.stop, s.done, s.cfg.FlushInterval
	s.mu.Unlock()
	go s.runFlusher(interval, stop, done)
}

func (s *Store) runFlusher(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-s.kick:
		case <-ticker.C:
		}
		s.flush(false)
	}
}

// stopFlusher stops the background flusher and waits for it to exit.
// Staged records stay staged; Close drains them.
func (s *Store) stopFlusher() {
	s.mu.Lock()
	if !s.flusherOn {
		s.mu.Unlock()
		return
	}
	s.flusherOn = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}
