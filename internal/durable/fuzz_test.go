package durable

import (
	"reflect"
	"testing"

	"glimmers/internal/service"
)

// fuzzRegistry builds the canonical test tenant without *testing.T (the
// fuzz body gets *testing.T but the seed setup does not need it).
func fuzzRegistry() *service.Registry {
	reg := service.NewRegistry(64)
	_, err := reg.AddTenant(service.TenantConfig{
		Name:         testTenant,
		Dim:          4,
		Workers:      1,
		TicketPolicy: &service.TicketConfig{MaxTickets: 8, TTL: 3600, Now: testClock},
	})
	if err != nil {
		panic(err)
	}
	return reg
}

// FuzzDecodeSnapshot: arbitrary bytes must never panic the decoder, and
// any state that decodes must survive a re-encode/re-decode round trip.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		st, gen, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re := EncodeSnapshot(st, gen)
		st2, gen2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if gen2 != gen || !reflect.DeepEqual(st, st2) {
			t.Fatalf("snapshot round trip diverged:\n st: %+v\nst2: %+v", st, st2)
		}
	})
}

// FuzzWALReplay: an arbitrary WAL image replayed into a live registry —
// exactly the walk Recover performs — must never panic, whatever rounds,
// tickets, or counters the records claim.
func FuzzWALReplay(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		reg := fuzzRegistry()
		rj := reg.ReplayJournal(nil)
		good, _ := walkFrames(data, func(payload []byte) error {
			return applyRecord(payload, rj)
		})
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of range", good)
		}
		// The replayed registry must still export and encode cleanly.
		if _, _, err := DecodeSnapshot(EncodeSnapshot(reg.ExportState(), 1)); err != nil {
			t.Fatalf("replayed registry exports an undecodable snapshot: %v", err)
		}
	})
}
