package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"glimmers/internal/audit"
	"glimmers/internal/fixed"
	"glimmers/internal/service"
	"glimmers/internal/xcrypto"
)

const testTenant = "durable.example"

func testClock() int64 { return 1_700_000_000 }

// newTestRegistry builds a registry shaped like the canonical test
// tenant: dim 4, tickets on, injected clock. Verify is nil (the
// pre-authenticated mode) — durable state does not depend on keys.
func newTestRegistry(t *testing.T) *service.Registry {
	t.Helper()
	reg := service.NewRegistry(64)
	_, err := reg.AddTenant(service.TenantConfig{
		Name:         testTenant,
		Dim:          4,
		Workers:      1,
		TicketPolicy: &service.TicketConfig{MaxTickets: 8, TTL: 3600, Now: testClock},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func sessionKey(b byte) xcrypto.SessionKey {
	var k xcrypto.SessionKey
	for i := range k {
		k[i] = b
	}
	return k
}

func digest(b byte) [32]byte {
	var d [32]byte
	for i := range d {
		d[i] = b
	}
	return d
}

// testState builds a populated, deterministically ordered state for the
// canonical test tenant.
func testState(t *testing.T) service.RegistryState {
	t.Helper()
	reg := newTestRegistry(t)
	tn, _ := reg.Tenant(testTenant)
	return service.RegistryState{
		Rejected: 3,
		Tenants: []service.TenantState{{
			Name:         testTenant,
			ConfigDigest: tn.ConfigDigest(),
			Rejected:     2,
			Rounds: []service.RoundState{
				{
					Round: 1, Phase: service.RoundPhaseSealed, Count: 2, Rejected: 1,
					Sum:     fixed.Vector{10, 20, 30, 40},
					Digests: [][32]byte{digest(0x11), digest(0x22)},
				},
				{
					Round: 2, Phase: service.RoundPhaseOpen, Count: 1, Rejected: 0,
					Sum:     fixed.Vector{5, 6, 7, 8},
					Digests: [][32]byte{digest(0x33)},
				},
			},
			Tickets: []service.TicketState{
				{ID: 7, Key: sessionKey(0xA1), RoundFirst: 1, RoundLast: 4, ExpiresUnix: testClock() + 3600},
				{ID: 9, Key: sessionKey(0xB2), RoundFirst: 2, RoundLast: 2, ExpiresUnix: testClock() + 60},
			},
		}},
	}
}

// The acceptance criterion: export → encode → restore → export → encode
// must round-trip byte-identically.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	st := testState(t)
	enc1 := EncodeSnapshot(st, 7)

	dec, gen, err := DecodeSnapshot(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 {
		t.Fatalf("generation = %d, want 7", gen)
	}
	reg := newTestRegistry(t)
	if err := reg.RestoreState(dec); err != nil {
		t.Fatal(err)
	}
	enc2 := EncodeSnapshot(reg.ExportState(), 7)
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("snapshot not byte-identical after restore:\n enc1: %x\n enc2: %x", enc1, enc2)
	}
}

func TestRestoreRefusesConfigMismatch(t *testing.T) {
	st := testState(t)
	st.Tenants[0].ConfigDigest[0] ^= 0xFF
	reg := newTestRegistry(t)
	if err := reg.RestoreState(st); err == nil {
		t.Fatal("restore accepted a state with a mismatched config digest")
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte{0xFF}, 64)} {
		if _, _, err := DecodeSnapshot(data); err == nil {
			t.Fatalf("decoded garbage %x", data)
		}
	}
	// Truncations of a valid snapshot must all fail, never panic.
	full := EncodeSnapshot(testState(t), 1)
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeSnapshot(full[:n]); err == nil {
			t.Fatalf("decoded truncation at %d/%d", n, len(full))
		}
	}
}

// driveStore journals a deterministic mutation sequence through a
// journal (the store under test, or the golden-fixture collector),
// mirroring what live ingest would report.
func driveStore(s service.Journal) {
	s.RoundCreated(testTenant, 1)
	s.BatchAccepted(testTenant, 1, [][32]byte{digest(0x11), digest(0x22)}, fixed.Vector{10, 20, 30, 40})
	s.Rejected(testTenant, 1, service.LevelRound, 1)
	s.RoundSealed(testTenant, 1)
	s.RoundCreated(testTenant, 2)
	s.Accepted(testTenant, 2, digest(0x33), fixed.Vector{5, 6, 7, 8})
	s.DropoutCorrected(testTenant, 2, fixed.Vector{1, 1, 1, 1})
	s.Rejected(testTenant, 0, service.LevelManager, 2)
	s.Rejected("", 0, service.LevelRegistry, 3)
	s.TicketGranted(testTenant, service.TicketState{ID: 7, Key: sessionKey(0xA1), RoundFirst: 1, RoundLast: 4, ExpiresUnix: testClock() + 3600})
	s.TicketGranted(testTenant, service.TicketState{ID: 9, Key: sessionKey(0xB2), RoundFirst: 2, RoundLast: 2, ExpiresUnix: testClock() + 60})
	s.TicketEvicted(testTenant, 9)
}

func recoverInto(t *testing.T, dir string) (*service.Registry, *Store, RecoverStats) {
	t.Helper()
	reg := newTestRegistry(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Recover(reg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, s, stats
}

func checkReplayedState(t *testing.T, reg *service.Registry) {
	t.Helper()
	tn, _ := reg.Tenant(testTenant)
	m := tn.Manager()
	p1, ok := m.Lookup(1)
	if !ok {
		t.Fatal("round 1 not recovered")
	}
	if got := p1.Sum(); !reflect.DeepEqual(got, fixed.Vector{10, 20, 30, 40}) {
		t.Errorf("round 1 sum = %v", got)
	}
	if p1.Count() != 2 || p1.Rejected() != 1 {
		t.Errorf("round 1 count=%d rejected=%d", p1.Count(), p1.Rejected())
	}
	p2, ok := m.Lookup(2)
	if !ok {
		t.Fatal("round 2 not recovered")
	}
	if got := p2.Sum(); !reflect.DeepEqual(got, fixed.Vector{6, 7, 8, 9}) {
		t.Errorf("round 2 sum = %v (accepted + dropout correction)", got)
	}
	if m.Rejected() != 2 || reg.Rejected() != 3 {
		t.Errorf("manager rejected=%d registry rejected=%d", m.Rejected(), reg.Rejected())
	}
}

func TestStoreRecoverReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	_, sA, _ := recoverInto(t, dir)
	driveStore(sA)
	if err := sA.Close(); err != nil {
		t.Fatal(err)
	}

	regB, sB, stats := recoverInto(t, dir)
	defer sB.Close()
	if stats.Records != 12 {
		t.Fatalf("replayed %d records, want 12", stats.Records)
	}
	if stats.TruncatedBytes != 0 || stats.ReplayErrors != 0 {
		t.Fatalf("unexpected stats %+v", stats)
	}
	checkReplayedState(t, regB)
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	_, sA, _ := recoverInto(t, dir)
	driveStore(sA)
	if err := sA.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a frame header plus garbage.
	walPath := filepath.Join(dir, "wal.1")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x40, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	aud := audit.NewLog(nil, testClock)
	regB := newTestRegistry(t)
	sB, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sB.SetAudit(aud)
	stats, err := sB.Recover(regB)
	if err != nil {
		t.Fatal(err)
	}
	defer sB.Close()
	if stats.Records != 12 || stats.TruncatedBytes != 6 {
		t.Fatalf("stats = %+v, want 12 records and 6 truncated bytes", stats)
	}
	checkReplayedState(t, regB)

	truncated := false
	for _, line := range aud.Tail() {
		if strings.Contains(line, "wal-truncated") {
			truncated = true
		}
	}
	if !truncated {
		t.Fatalf("audit log missing wal-truncated event: %v", aud.Tail())
	}

	// The tear is gone from disk: a third recovery sees a clean file.
	regC, sC, stats := recoverInto(t, dir)
	defer sC.Close()
	if stats.TruncatedBytes != 0 || stats.Records != 12 {
		t.Fatalf("post-truncation stats = %+v", stats)
	}
	checkReplayedState(t, regC)
}

func TestWALCorruptMidFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	_, sA, _ := recoverInto(t, dir)
	driveStore(sA)
	if err := sA.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the last frame's payload: its CRC fails, replay
	// keeps everything before it.
	walPath := filepath.Join(dir, "wal.1")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	regB, sB, stats := recoverInto(t, dir)
	defer sB.Close()
	if stats.Records != 11 || stats.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want 11 records and a truncated tail", stats)
	}
	// The lost record was the eviction of ticket 9; everything else held.
	tn, _ := regB.Tenant(testTenant)
	if got := tn.Manager().Rejected(); got != 2 {
		t.Errorf("manager rejected = %d", got)
	}
}

func TestSnapshotRotatesWAL(t *testing.T) {
	dir := t.TempDir()
	regA, sA, _ := recoverInto(t, dir)
	// Mutate through the service API so the registry state and the
	// journal stay coupled, as they are in production.
	if err := regA.Ingest([]byte("garbage")); err == nil {
		t.Fatal("garbage ingested")
	}
	tnA, _ := regA.Tenant(testTenant)
	m := tnA.Manager()
	if err := m.Round(1).CorrectDropout(fixed.Vector{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Seal(1); err != nil {
		t.Fatal(err)
	}

	if err := sA.Snapshot(regA); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.1")); !os.IsNotExist(err) {
		t.Fatal("wal.1 survived the snapshot rotation")
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.2")); err != nil {
		t.Fatal("wal.2 missing after rotation")
	}
	// Post-snapshot mutations land in the new generation.
	m.Round(3)
	if err := sA.Close(); err != nil {
		t.Fatal(err)
	}

	regB, sB, stats := recoverInto(t, dir)
	defer sB.Close()
	if !stats.SnapshotLoaded || stats.Generation != 2 || stats.Records != 1 {
		t.Fatalf("stats = %+v, want snapshot at generation 2 plus 1 record", stats)
	}
	tnB, _ := regB.Tenant(testTenant)
	p1, ok := tnB.Manager().Lookup(1)
	if !ok {
		t.Fatal("round 1 not in snapshot")
	}
	if got := p1.Sum(); !reflect.DeepEqual(got, fixed.Vector{1, 2, 3, 4}) {
		t.Errorf("round 1 sum = %v", got)
	}
	if _, ok := tnB.Manager().Lookup(3); !ok {
		t.Fatal("post-snapshot round 3 not replayed")
	}
	if regB.Rejected() != 1 {
		t.Errorf("registry rejected = %d", regB.Rejected())
	}

	// And the recovered registry exports the same image the writer
	// would: byte-identical continuation.
	if !bytes.Equal(EncodeSnapshot(regA.ExportState(), 9), EncodeSnapshot(regB.ExportState(), 9)) {
		t.Fatal("recovered registry diverges from the one that wrote the snapshot")
	}
}

func TestTicketsSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	_, sA, _ := recoverInto(t, dir)
	driveStore(sA)
	sA.Close()

	regB, sB, _ := recoverInto(t, dir)
	defer sB.Close()
	st := regB.ExportState()
	if len(st.Tenants) != 1 || len(st.Tenants[0].Tickets) != 1 {
		t.Fatalf("tickets after replay = %+v, want exactly ticket 7 (9 was evicted)", st.Tenants[0].Tickets)
	}
	tk := st.Tenants[0].Tickets[0]
	if tk.ID != 7 || tk.Key != sessionKey(0xA1) {
		t.Fatalf("ticket 7 state = %+v", tk)
	}
}
