package durable

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL file layout: a 16-byte magic header, then CRC-framed records —
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// A crash can tear the last frame (partial header, partial payload, or a
// payload that fails its CRC); replay detects the tear, reports the byte
// offset of the last intact frame, and the store truncates there before
// appending again. Anything after a tear is unrecoverable by
// construction — a torn record never reached the application state it
// describes, because records are appended before their effect is
// acknowledged to no one (journaling is synchronous with the mutation).
var walMagic = []byte("glimmers/wal/v1\x00")

const (
	frameHeaderLen = 8
	// maxFramePayload bounds one record; larger lengths are treated as
	// corruption, not allocation requests.
	maxFramePayload = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame frames one record payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// walkFrames iterates the intact frames of a WAL image (magic header
// included), calling fn for each payload. It returns the byte offset
// just past the last intact frame and whether the file ended cleanly;
// torn == true means bytes at [good:] are a partial or corrupt tail.
// fn returning an error stops the walk with the same semantics as a
// tear: the offending frame is not counted as good.
func walkFrames(data []byte, fn func(payload []byte) error) (good int64, torn bool) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		return 0, len(data) > 0
	}
	off := len(walMagic)
	for {
		if off == len(data) {
			return int64(off), false
		}
		if len(data)-off < frameHeaderLen {
			return int64(off), true
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxFramePayload || len(data)-off-frameHeaderLen < n {
			return int64(off), true
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return int64(off), true
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return int64(off), true
			}
		}
		off += frameHeaderLen + n
	}
}
