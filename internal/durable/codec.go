// Package durable persists service.Registry state: a versioned snapshot
// plus a write-ahead log of the mutations since, so a restarted glimmerd
// recovers its open rounds, dedup sets, sealed sums, rejection counters,
// and ticket tables — and pre-crash sessions keep contributing without
// re-running the asymmetric grant exchange.
//
// Privacy boundary (the PrivTru caution): everything here is state the
// operator already observes in process memory — aggregate sums, dedup
// digests, counters, and the symmetric ticket session keys the server
// necessarily holds. Raw contributions, blinding masks, and device-side
// secrets are never serialized.
package durable

import (
	"errors"
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/service"
	"glimmers/internal/wire"
)

// snapshotMagic versions the snapshot encoding; a format change bumps it.
const snapshotMagic = "glimmers/snapshot/v1"

// ErrBadSnapshot reports an undecodable snapshot. Unlike a torn WAL tail
// this is never expected — snapshots are written to a temp file and
// renamed into place — so recovery fails loudly instead of truncating.
var ErrBadSnapshot = errors.New("durable: malformed snapshot")

const (
	digestLen  = 32
	keyLen     = 32
	maxLanes   = 1 << 20 // dimension sanity bound for decoders
	maxEntries = 1 << 22 // per-collection sanity bound for decoders
)

// EncodeSnapshot serializes a registry state and the WAL generation that
// starts after it. The encoding is deterministic for a deterministically
// exported state (service.Registry.ExportState sorts everything), which
// is what makes snapshot round-trips byte-identical.
func EncodeSnapshot(st service.RegistryState, generation uint64) []byte {
	w := wire.NewWriter()
	w.String(snapshotMagic)
	w.Uint64(generation)
	w.Uint64(st.Rejected)
	w.Uint32(uint32(len(st.Tenants)))
	for _, ts := range st.Tenants {
		w.String(ts.Name)
		w.Bytes(ts.ConfigDigest[:])
		w.Uint64(ts.Rejected)
		w.Uint32(uint32(len(ts.Rounds)))
		for _, rs := range ts.Rounds {
			w.Uint64(rs.Round)
			w.Byte(rs.Phase)
			w.Uint64(rs.Count)
			w.Uint64(rs.Rejected)
			w.Bytes(rs.Sum.AppendWire(nil))
			w.Bytes(appendDigests(nil, rs.Digests))
		}
		w.Uint32(uint32(len(ts.Tickets)))
		for _, tk := range ts.Tickets {
			appendTicket(w, tk)
		}
	}
	return w.Finish()
}

// DecodeSnapshot parses a snapshot, returning the state and the WAL
// generation to replay after it.
func DecodeSnapshot(data []byte) (service.RegistryState, uint64, error) {
	var st service.RegistryState
	r := wire.NewReader(data)
	if r.String() != snapshotMagic {
		return st, 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	generation := r.Uint64()
	st.Rejected = r.Uint64()
	nTenants := r.Uint32()
	if nTenants > maxEntries {
		return st, 0, fmt.Errorf("%w: tenant count %d", ErrBadSnapshot, nTenants)
	}
	for i := uint32(0); i < nTenants && r.Err() == nil; i++ {
		var ts service.TenantState
		ts.Name = r.String()
		if d := r.Bytes(); len(d) == digestLen {
			copy(ts.ConfigDigest[:], d)
		} else {
			return st, 0, fmt.Errorf("%w: config digest length %d", ErrBadSnapshot, len(d))
		}
		ts.Rejected = r.Uint64()
		nRounds := r.Uint32()
		if nRounds > maxEntries {
			return st, 0, fmt.Errorf("%w: round count %d", ErrBadSnapshot, nRounds)
		}
		for j := uint32(0); j < nRounds && r.Err() == nil; j++ {
			var rs service.RoundState
			rs.Round = r.Uint64()
			rs.Phase = r.Byte()
			if rs.Phase > service.RoundPhaseClosed {
				return st, 0, fmt.Errorf("%w: round phase %d", ErrBadSnapshot, rs.Phase)
			}
			rs.Count = r.Uint64()
			rs.Rejected = r.Uint64()
			var err error
			if rs.Sum, err = decodeVector(r.Bytes()); err != nil {
				return st, 0, err
			}
			if rs.Digests, err = decodeDigests(r.Bytes()); err != nil {
				return st, 0, err
			}
			ts.Rounds = append(ts.Rounds, rs)
		}
		nTickets := r.Uint32()
		if nTickets > maxEntries {
			return st, 0, fmt.Errorf("%w: ticket count %d", ErrBadSnapshot, nTickets)
		}
		for j := uint32(0); j < nTickets && r.Err() == nil; j++ {
			tk, err := readTicket(r)
			if err != nil {
				return st, 0, err
			}
			ts.Tickets = append(ts.Tickets, tk)
		}
		st.Tenants = append(st.Tenants, ts)
	}
	if err := r.Done(); err != nil {
		return service.RegistryState{}, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return st, generation, nil
}

func appendDigests(dst []byte, ds [][32]byte) []byte {
	for i := range ds {
		dst = append(dst, ds[i][:]...)
	}
	return dst
}

func decodeDigests(b []byte) ([][32]byte, error) {
	if len(b)%digestLen != 0 {
		return nil, fmt.Errorf("%w: digest block length %d", ErrBadSnapshot, len(b))
	}
	n := len(b) / digestLen
	if n > maxEntries {
		return nil, fmt.Errorf("%w: digest count %d", ErrBadSnapshot, n)
	}
	out := make([][32]byte, n)
	for i := range out {
		copy(out[i][:], b[i*digestLen:])
	}
	return out, nil
}

func decodeVector(b []byte) (fixed.Vector, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: lane block length %d", ErrBadSnapshot, len(b))
	}
	n := len(b) / 8
	if n > maxLanes {
		return nil, fmt.Errorf("%w: lane count %d", ErrBadSnapshot, n)
	}
	v := fixed.NewVector(n)
	fixed.AccumulateWireInto(v, b)
	return v, nil
}

func appendTicket(w *wire.Writer, tk service.TicketState) {
	w.Uint64(tk.ID)
	w.Bytes(tk.Key[:])
	w.Uint64(tk.RoundFirst)
	w.Uint64(tk.RoundLast)
	w.Uint64(uint64(tk.ExpiresUnix))
}

func readTicket(r *wire.Reader) (service.TicketState, error) {
	var tk service.TicketState
	tk.ID = r.Uint64()
	if k := r.Bytes(); len(k) == keyLen {
		copy(tk.Key[:], k)
	} else {
		return tk, fmt.Errorf("%w: ticket key length %d", ErrBadSnapshot, len(k))
	}
	tk.RoundFirst = r.Uint64()
	tk.RoundLast = r.Uint64()
	tk.ExpiresUnix = int64(r.Uint64())
	return tk, nil
}

// WAL record kinds. The payload of every record starts with the kind
// byte and the tenant name; the rest is kind-specific.
const (
	recRoundCreated byte = iota + 1
	recRoundSealed
	recRoundClosed
	recRoundForgotten
	recAccepted
	recDropoutCorrected
	recRejected
	recTicketGranted
	recTicketEvicted
)

// errBadRecord reports an undecodable (but CRC-valid) WAL record —
// version skew, not a torn write. Replay stops at it.
var errBadRecord = errors.New("durable: malformed WAL record")

func encodeRound(w *wire.Writer, kind byte, tenant string, round uint64) {
	w.Byte(kind)
	w.String(tenant)
	w.Uint64(round)
}

// The accepted/dropout encoders stream their nested digest/lane fields
// straight into the writer (BytesPrefix + Raw — both field lengths are
// known up front), so the hot journal path renders records in one pass
// with no staging copy and no allocation. The bytes produced are
// identical to framing a pre-staged block with Bytes.

// lanesField appends a vector as one framed field of raw big-endian
// lanes — byte-identical to w.Bytes(v.AppendWire(nil)).
func lanesField(w *wire.Writer, v fixed.Vector) {
	w.BytesPrefix(len(v) * 8)
	for _, r := range v {
		w.Uint64(uint64(r))
	}
}

func encodeAccepted(w *wire.Writer, tenant string, round uint64, digests [][32]byte, delta fixed.Vector) {
	w.Byte(recAccepted)
	w.String(tenant)
	w.Uint64(round)
	w.BytesPrefix(len(digests) * digestLen)
	for i := range digests {
		w.Raw(digests[i][:])
	}
	lanesField(w, delta)
}

// encodeAcceptedOne is encodeAccepted for the single-contribution hook:
// same record kind and bytes, without materializing a one-element digest
// slice.
func encodeAcceptedOne(w *wire.Writer, tenant string, round uint64, digest [32]byte, blinded fixed.Vector) {
	w.Byte(recAccepted)
	w.String(tenant)
	w.Uint64(round)
	w.Bytes(digest[:])
	lanesField(w, blinded)
}

func encodeDropout(w *wire.Writer, tenant string, round uint64, mask fixed.Vector) {
	w.Byte(recDropoutCorrected)
	w.String(tenant)
	w.Uint64(round)
	lanesField(w, mask)
}

func encodeRejected(w *wire.Writer, tenant string, round uint64, level service.RejectLevel, n int) {
	w.Byte(recRejected)
	w.String(tenant)
	w.Uint64(round)
	w.Byte(byte(level))
	w.Uint64(uint64(n))
}

func encodeTicketGranted(w *wire.Writer, tenant string, tk service.TicketState) {
	w.Byte(recTicketGranted)
	w.String(tenant)
	appendTicket(w, tk)
}

func encodeTicketEvicted(w *wire.Writer, tenant string, id uint64) {
	w.Byte(recTicketEvicted)
	w.String(tenant)
	w.Uint64(id)
}

// applyRecord decodes one WAL record payload and applies it through the
// replay journal.
func applyRecord(payload []byte, j service.Journal) error {
	r := wire.NewReader(payload)
	kind := r.Byte()
	tenant := r.String()
	switch kind {
	case recRoundCreated, recRoundSealed, recRoundClosed, recRoundForgotten:
		round := r.Uint64()
		if err := r.Done(); err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		switch kind {
		case recRoundCreated:
			j.RoundCreated(tenant, round)
		case recRoundSealed:
			j.RoundSealed(tenant, round)
		case recRoundClosed:
			j.RoundClosed(tenant, round)
		case recRoundForgotten:
			j.RoundForgotten(tenant, round)
		}
	case recAccepted:
		round := r.Uint64()
		digests, err := decodeDigests(r.Bytes())
		if err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		delta, err := decodeVector(r.Bytes())
		if err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		if err := r.Done(); err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		j.BatchAccepted(tenant, round, digests, delta)
	case recDropoutCorrected:
		round := r.Uint64()
		mask, err := decodeVector(r.Bytes())
		if err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		if err := r.Done(); err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		j.DropoutCorrected(tenant, round, mask)
	case recRejected:
		round := r.Uint64()
		level := service.RejectLevel(r.Byte())
		n := r.Uint64()
		if err := r.Done(); err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		if level > service.LevelRound || n > maxEntries {
			return fmt.Errorf("%w: reject level %d count %d", errBadRecord, level, n)
		}
		j.Rejected(tenant, round, level, int(n))
	case recTicketGranted:
		tk, err := readTicket(r)
		if err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		if err := r.Done(); err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		j.TicketGranted(tenant, tk)
	case recTicketEvicted:
		id := r.Uint64()
		if err := r.Done(); err != nil {
			return fmt.Errorf("%w: %v", errBadRecord, err)
		}
		j.TicketEvicted(tenant, id)
	default:
		return fmt.Errorf("%w: unknown kind %d", errBadRecord, kind)
	}
	return nil
}
