package durable

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/service"
	"glimmers/internal/xcrypto"
)

// orderRecorder implements service.Journal to capture the replayed
// record sequence: which record kinds landed in the WAL, for which
// round, in what order.
type orderRecorder struct {
	kinds  []string
	rounds []uint64
	counts []int // accepted digests per record (0 for non-accept records)
}

func (o *orderRecorder) rec(kind string, round uint64, n int) {
	o.kinds = append(o.kinds, kind)
	o.rounds = append(o.rounds, round)
	o.counts = append(o.counts, n)
}

func (o *orderRecorder) RoundCreated(_ string, r uint64)   { o.rec("created", r, 0) }
func (o *orderRecorder) RoundSealed(_ string, r uint64)    { o.rec("sealed", r, 0) }
func (o *orderRecorder) RoundClosed(_ string, r uint64)    { o.rec("closed", r, 0) }
func (o *orderRecorder) RoundForgotten(_ string, r uint64) { o.rec("forgotten", r, 0) }
func (o *orderRecorder) Accepted(_ string, r uint64, _ [32]byte, _ fixed.Vector) {
	o.rec("accepted", r, 1)
}
func (o *orderRecorder) BatchAccepted(_ string, r uint64, ds [][32]byte, _ fixed.Vector) {
	o.rec("accepted", r, len(ds))
}
func (o *orderRecorder) DropoutCorrected(_ string, r uint64, _ fixed.Vector) {
	o.rec("dropout", r, 0)
}
func (o *orderRecorder) Rejected(_ string, r uint64, _ service.RejectLevel, _ int) {
	o.rec("rejected", r, 0)
}
func (o *orderRecorder) TicketGranted(_ string, _ service.TicketState) { o.rec("ticket", 0, 0) }
func (o *orderRecorder) TicketEvicted(_ string, _ uint64)              { o.rec("evicted", 0, 0) }

// orderRaws fabricates n distinct MAC'd contributions for one round,
// sealed under a ticket already installed in tbl.
func orderRaws(n, dim int, round uint64, key *xcrypto.SessionKey) [][]byte {
	raws := make([][]byte, n)
	for i := range raws {
		tc := glimmer.TicketedContribution{
			ServiceName: testTenant,
			Round:       round,
			TicketID:    7,
			Blinded:     make(fixed.Vector, dim),
			Confidence:  1,
		}
		for j := range tc.Blinded {
			tc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + round*31 + uint64(j))
		}
		raws[i] = glimmer.SealTicketedContribution(tc, key)
	}
	return raws
}

// TestJournalOrderUnderConcurrentIngest is the ordering property of the
// group-commit path: however many goroutines feed AddBatchErrs across
// however many shards, every accept record a round journals lands in the
// WAL before that round's seal record (staging assigns sequence numbers
// under one lock, and Seal drains in-flight work before journaling), so
// a replayed WAL rebuilds exactly the sealed aggregate. And a raced
// accept landing after its round's RoundForgotten — the one interleaving
// the manager lock cannot rule out — must drop harmlessly on replay,
// never resurrecting the forgotten round.
func TestJournalOrderUnderConcurrentIngest(t *testing.T) {
	const dim, perRound, batches = 4, 64, 8
	dir := t.TempDir()
	regSeed := newTestRegistry(t)
	s, err := OpenConfig(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(regSeed); err != nil {
		t.Fatal(err)
	}

	// A bare round manager journaling through PipelineConfig.Journal — no
	// Registry in the loop, the embedded/benchmark shape.
	var skey xcrypto.SessionKey
	skey[0] = 0xA7
	tbl := service.NewTicketTable(service.TicketConfig{})
	tbl.Install(7, skey, 1, 1<<32, 1<<62)
	m := service.NewRoundManager(service.PipelineConfig{
		ServiceName:    testTenant,
		Dim:            dim,
		Tickets:        tbl,
		Workers:        2,
		Shards:         4,
		ExpectedCohort: perRound,
		Journal:        s,
	})

	// Rounds 1 and 2 ingest concurrently, interleaved batch by batch,
	// while a forget storm churns rounds 10+ through create → ingest →
	// forget — the eviction path racing the accept path.
	var wg sync.WaitGroup
	for _, round := range []uint64{1, 2} {
		raws := orderRaws(perRound, dim, round, &skey)
		per := perRound / batches
		for b := 0; b < batches; b++ {
			wg.Add(1)
			go func(round uint64, part [][]byte) {
				defer wg.Done()
				errs := make([]error, len(part))
				m.Round(round).AddBatchErrs(part, errs)
				for _, err := range errs {
					if err != nil {
						t.Errorf("round %d ingest: %v", round, err)
					}
				}
			}(round, raws[b*per:(b+1)*per])
		}
	}
	for storm := uint64(10); storm < 14; storm++ {
		wg.Add(1)
		go func(round uint64) {
			defer wg.Done()
			raws := orderRaws(4, dim, round, &skey)
			errs := make([]error, len(raws))
			m.Round(round).AddBatchErrs(raws, errs)
			m.Forget(round)
		}(storm)
	}
	wg.Wait()
	if err := m.Seal(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Seal(2); err != nil {
		t.Fatal(err)
	}

	// The raced interleaving Forget's lock cannot rule out: an accept for
	// a round whose RoundForgotten is already in the journal. Synthesized
	// deterministically (the storm above only sometimes produces it).
	m.Forget(2)
	s.Accepted(testTenant, 2, digest(0xEE), fixed.Vector{9, 9, 9, 9})

	p1, ok := m.Lookup(1)
	if !ok {
		t.Fatal("round 1 vanished")
	}
	liveSum := p1.Sum().Digest()
	liveCount := p1.Count()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Walk the WAL: per-round accepts strictly precede the seal.
	data, err := os.ReadFile(filepath.Join(dir, "wal.1"))
	if err != nil {
		t.Fatal(err)
	}
	rec := &orderRecorder{}
	if _, torn := walkFrames(data, func(p []byte) error { return applyRecord(p, rec) }); torn {
		t.Fatal("clean close left a torn WAL")
	}
	sealedAt := map[uint64]int{}
	forgottenAt := map[uint64]int{}
	acceptedBySeal := map[uint64]int{}
	lateAccepts := 0
	for i, kind := range rec.kinds {
		round := rec.rounds[i]
		switch kind {
		case "sealed":
			sealedAt[round] = i
		case "forgotten":
			forgottenAt[round] = i
		case "accepted":
			if at, forgotten := forgottenAt[round]; forgotten && i > at {
				// The raced post-forget record: exempt from the seal
				// ordering (the round is gone); replay must drop it.
				lateAccepts++
				continue
			}
			if at, sealed := sealedAt[round]; sealed && i > at {
				t.Errorf("record %d: accept for round %d after its seal at %d", i, round, at)
			} else if !sealed {
				acceptedBySeal[round] += rec.counts[i]
			}
		case "created":
			if at, sealed := sealedAt[round]; sealed && i > at {
				t.Errorf("record %d: created for round %d after its seal at %d", i, round, at)
			}
		}
	}
	for _, round := range []uint64{1, 2} {
		if _, ok := sealedAt[round]; !ok {
			t.Fatalf("round %d has no seal record", round)
		}
		if acceptedBySeal[round] != perRound {
			t.Errorf("round %d: %d accepts before the seal, want %d", round, acceptedBySeal[round], perRound)
		}
	}
	if lateAccepts == 0 {
		t.Fatal("the synthesized accept-after-forget never landed in the WAL")
	}

	// Replay into a fresh registry: the sealed rounds come back exact and
	// no forgotten round is resurrected by its late accepts.
	regB := newTestRegistry(t)
	replayErrs := 0
	rj := regB.ReplayJournal(func(error) { replayErrs++ })
	if _, torn := walkFrames(data, func(p []byte) error { return applyRecord(p, rj) }); torn {
		t.Fatal("replay walk torn")
	}
	if replayErrs != 0 {
		t.Errorf("replay errors: %d", replayErrs)
	}
	tn, _ := regB.Tenant(testTenant)
	mb := tn.Manager()
	r1, ok := mb.Lookup(1)
	if !ok {
		t.Fatal("replay lost sealed round 1")
	}
	if r1.Count() != liveCount || r1.Sum().Digest() != liveSum {
		t.Errorf("replayed round 1 = (%d, %s), live (%d, %s)", r1.Count(), r1.Sum().Digest(), liveCount, liveSum)
	}
	if _, ok := mb.Lookup(2); ok {
		t.Error("replay resurrected forgotten round 2 from its late accept")
	}
	for storm := uint64(10); storm < 14; storm++ {
		if _, ok := mb.Lookup(storm); ok {
			t.Errorf("replay resurrected forgotten storm round %d", storm)
		}
	}
}
