package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"glimmers/internal/audit"
	"glimmers/internal/fixed"
	"glimmers/internal/service"
	"glimmers/internal/wire"
)

// Store owns one state directory:
//
//	snapshot   — the latest full registry image (written atomically via
//	             rename), embedding the WAL generation that follows it
//	wal.<gen>  — the mutations since that snapshot
//
// Recover loads snapshot + WAL into a registry and attaches the store as
// the registry's journal; Snapshot rotates: new image, new WAL
// generation, old generation deleted. Store implements service.Journal —
// every mutation the service layer reports becomes one appended record.
//
// Concurrency: the journal side is safe for concurrent use (one mutex
// serializes appends). Recover and Snapshot require quiesced ingest —
// a mutation concurrent with the export would land in both the snapshot
// and the next WAL generation and double-apply on the next recovery.
// glimmerd snapshots after draining its listener; the sim between waves.
type Store struct {
	dir string

	mu  sync.Mutex
	f   *os.File
	gen uint64
	enc *wire.Writer
	buf []byte // frame scratch
	err error  // first append failure; surfaced on Snapshot/Close

	auditLog *audit.Log
}

// RecoverStats describes what a recovery found.
type RecoverStats struct {
	SnapshotLoaded bool
	Generation     uint64
	Records        int   // intact WAL records replayed
	TruncatedBytes int64 // torn tail removed, 0 for a clean file
	ReplayErrors   int   // records naming state the registry no longer has
}

// Open creates or opens a state directory. No files are read until
// Recover.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &Store{dir: dir, gen: 1, enc: wire.NewWriter()}, nil
}

// SetAudit routes recovery and snapshot events to an audit log. Set
// before Recover.
func (s *Store) SetAudit(l *audit.Log) { s.auditLog = l }

func (s *Store) audit(event, format string, args ...any) {
	if s.auditLog != nil {
		s.auditLog.Append(event, format, args...)
	}
}

func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot") }
func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, "wal."+strconv.FormatUint(gen, 10))
}

// Recover loads the snapshot (if any) and replays the WAL into reg,
// truncates any torn tail, opens the WAL for appending, and attaches the
// store as reg's journal. The registry must already hold its tenants
// (same configs as when the state was exported) and must not yet be
// serving traffic.
func (s *Store) Recover(reg *service.Registry) (RecoverStats, error) {
	var stats RecoverStats

	if data, err := os.ReadFile(s.snapshotPath()); err == nil {
		st, gen, err := DecodeSnapshot(data)
		if err != nil {
			return stats, err
		}
		if err := reg.RestoreState(st); err != nil {
			return stats, err
		}
		s.gen = gen
		stats.SnapshotLoaded = true
		s.audit("snapshot-loaded", "generation=%d tenants=%d bytes=%d", gen, len(st.Tenants), len(data))
	} else if !os.IsNotExist(err) {
		return stats, fmt.Errorf("durable: %w", err)
	}
	stats.Generation = s.gen

	rj := reg.ReplayJournal(func(error) { stats.ReplayErrors++ })
	f, err := os.OpenFile(s.walPath(s.gen), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return stats, fmt.Errorf("durable: %w", err)
	}
	data, err := os.ReadFile(s.walPath(s.gen))
	if err != nil {
		f.Close()
		return stats, fmt.Errorf("durable: %w", err)
	}
	if len(data) == 0 {
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return stats, fmt.Errorf("durable: %w", err)
		}
	} else {
		good, torn := walkFrames(data, func(payload []byte) error {
			if err := applyRecord(payload, rj); err != nil {
				return err
			}
			stats.Records++
			return nil
		})
		if torn {
			if good < int64(len(walMagic)) {
				// The header itself is damaged; start the file over.
				if err := f.Truncate(0); err != nil {
					f.Close()
					return stats, fmt.Errorf("durable: %w", err)
				}
				if _, err := f.WriteAt(walMagic, 0); err != nil {
					f.Close()
					return stats, fmt.Errorf("durable: %w", err)
				}
				good = int64(len(walMagic))
			} else if err := f.Truncate(good); err != nil {
				f.Close()
				return stats, fmt.Errorf("durable: %w", err)
			}
			stats.TruncatedBytes = int64(len(data)) - good
			s.audit("wal-truncated", "generation=%d offset=%d dropped=%d", s.gen, good, stats.TruncatedBytes)
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return stats, fmt.Errorf("durable: %w", err)
		}
	}
	s.audit("wal-replayed", "generation=%d records=%d replay_errors=%d", s.gen, stats.Records, stats.ReplayErrors)

	s.mu.Lock()
	s.f = f
	s.mu.Unlock()
	s.removeOldGenerations()
	reg.SetJournal(s)
	return stats, nil
}

// Snapshot writes a fresh registry image and rotates the WAL. Requires
// quiesced ingest (see the type comment). Any append error since the
// last snapshot surfaces here.
func (s *Store) Snapshot(reg *service.Registry) error {
	// Export outside s.mu: the export takes service locks, and journal
	// appends (which hold s.mu) happen under some of them.
	st := reg.ExportState()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	next := s.gen + 1
	data := EncodeSnapshot(st, next)

	tmp := s.snapshotPath() + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := tf.Write(data); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}

	nf, err := os.OpenFile(s.walPath(next), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := nf.Write(walMagic); err != nil {
		nf.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if s.f != nil {
		s.f.Close()
	}
	s.f = nf
	prev := s.gen
	s.gen = next
	os.Remove(s.walPath(prev))
	s.audit("snapshot-taken", "generation=%d tenants=%d bytes=%d", next, len(st.Tenants), len(data))
	return nil
}

// removeOldGenerations deletes wal files older than the current
// generation — leftovers from a crash between snapshot rename and
// old-WAL removal.
func (s *Store) removeOldGenerations() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal.") {
			continue
		}
		gen, err := strconv.ParseUint(name[len("wal."):], 10, 64)
		if err == nil && gen < s.gen {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// Err reports the first append failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close syncs and closes the WAL. The store must not be attached as a
// journal of a registry still serving traffic.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.err
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	if s.err == nil && err != nil {
		s.err = fmt.Errorf("durable: %w", err)
	}
	return s.err
}

// append frames and writes one record under s.mu. Failures are sticky
// and surfaced on Snapshot/Close — the serving path must not start
// returning errors to clients because the disk filled.
func (s *Store) append(build func(w *wire.Writer)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil || s.err != nil {
		return
	}
	s.enc.Reset()
	build(s.enc)
	s.buf = appendFrame(s.buf[:0], s.enc.Finish())
	if _, err := s.f.Write(s.buf); err != nil {
		s.err = fmt.Errorf("durable: WAL append: %w", err)
	}
}

// Store implements service.Journal: one appended record per mutation.

func (s *Store) RoundCreated(tenant string, round uint64) {
	s.append(func(w *wire.Writer) { encodeRound(w, recRoundCreated, tenant, round) })
}

func (s *Store) RoundSealed(tenant string, round uint64) {
	s.append(func(w *wire.Writer) { encodeRound(w, recRoundSealed, tenant, round) })
}

func (s *Store) RoundClosed(tenant string, round uint64) {
	s.append(func(w *wire.Writer) { encodeRound(w, recRoundClosed, tenant, round) })
}

func (s *Store) RoundForgotten(tenant string, round uint64) {
	s.append(func(w *wire.Writer) { encodeRound(w, recRoundForgotten, tenant, round) })
}

func (s *Store) Accepted(tenant string, round uint64, digest [32]byte, blinded fixed.Vector) {
	s.append(func(w *wire.Writer) { encodeAccepted(w, tenant, round, [][32]byte{digest}, blinded) })
}

func (s *Store) BatchAccepted(tenant string, round uint64, digests [][32]byte, delta fixed.Vector) {
	s.append(func(w *wire.Writer) { encodeAccepted(w, tenant, round, digests, delta) })
}

func (s *Store) DropoutCorrected(tenant string, round uint64, mask fixed.Vector) {
	s.append(func(w *wire.Writer) { encodeDropout(w, tenant, round, mask) })
}

func (s *Store) Rejected(tenant string, round uint64, level service.RejectLevel, n int) {
	s.append(func(w *wire.Writer) { encodeRejected(w, tenant, round, level, n) })
}

func (s *Store) TicketGranted(tenant string, tk service.TicketState) {
	s.append(func(w *wire.Writer) { encodeTicketGranted(w, tenant, tk) })
}

func (s *Store) TicketEvicted(tenant string, id uint64) {
	s.append(func(w *wire.Writer) { encodeTicketEvicted(w, tenant, id) })
}
