package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"glimmers/internal/audit"
	"glimmers/internal/fixed"
	"glimmers/internal/service"
)

// Store owns one state directory:
//
//	snapshot   — the latest full registry image (written atomically via
//	             rename), embedding the WAL generation that follows it
//	wal.<gen>  — the mutations since that snapshot
//
// Recover loads snapshot + WAL into a registry and attaches the store as
// the registry's journal; Snapshot rotates: new image, new WAL
// generation, old generation deleted. Store implements service.Journal —
// every mutation the service layer reports becomes one appended record,
// staged and group-committed by a background flusher (see
// groupcommit.go).
//
// Durability classes: RoundSealed, RoundClosed, and TicketGranted are
// barriers — the call returns only after the record is written and
// fsynced. Every other journal hook is fire-and-forget: staged in
// memory and flushed within Config.FlushBytes/FlushInterval, so a crash
// can lose that bounded tail (recovery restores the exact flushed
// prefix; see internal/sim.RunCrashRecovery).
//
// Concurrency: the journal side is safe for concurrent use. Recover and
// Snapshot require quiesced ingest — a mutation concurrent with the
// export would land in both the snapshot and the next WAL generation
// and double-apply on the next recovery. glimmerd snapshots after
// draining its listener; the sim between waves.
type Store struct {
	dir string
	cfg Config
	// maxRetained caps the capacity a recycled staging segment may keep
	// (4x the flush threshold, floored): one giant record or a burst
	// must not pin its high-water allocation for the store's lifetime.
	maxRetained int

	mu     sync.Mutex
	synced *sync.Cond // broadcast when syncedSeq advances or the WAL dies
	f      *os.File
	gen    uint64
	err    error // first write-path failure; sticky, audited immediately

	// ioMu serializes disk I/O (flushes, the close drain, the snapshot
	// rotation) so s.mu is never held across a syscall.
	ioMu sync.Mutex

	// Double-buffered staging: journal calls append frames to staged;
	// the flusher swaps staged with spare and writes the whole segment.
	staged []byte
	spare  []byte
	// Record sequence numbers: seq counts staged records, flushedSeq the
	// prefix that reached write(2), syncedSeq the prefix known durable.
	// wantSync is the highest barrier still waiting for an fsync.
	seq        uint64
	flushedSeq uint64
	syncedSeq  uint64
	wantSync   uint64

	// Background flusher lifecycle (see groupcommit.go).
	flusherOn bool
	kick      chan struct{}
	stop      chan struct{}
	done      chan struct{}

	stats    Stats
	auditLog *audit.Log
}

// RecoverStats describes what a recovery found.
type RecoverStats struct {
	SnapshotLoaded bool
	Generation     uint64
	Records        int   // intact WAL records replayed
	TruncatedBytes int64 // torn tail removed, 0 for a clean file
	ReplayErrors   int   // records naming state the registry no longer has
}

// Open creates or opens a state directory with default group-commit
// tuning. No files are read until Recover.
func Open(dir string) (*Store, error) { return OpenConfig(dir, Config{}) }

// OpenConfig is Open with explicit group-commit tuning (glimmerd's
// -wal-flush-bytes / -wal-flush-interval flags).
func OpenConfig(dir string, cfg Config) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	cfg = cfg.withDefaults()
	s := &Store{
		dir:         dir,
		cfg:         cfg,
		maxRetained: max(4*cfg.FlushBytes, maxRetainedStagingFloor),
		gen:         1,
		kick:        make(chan struct{}, 1),
	}
	s.synced = sync.NewCond(&s.mu)
	return s, nil
}

// SetAudit routes recovery, snapshot, and WAL-failure events to an audit
// log. Set before Recover.
func (s *Store) SetAudit(l *audit.Log) { s.auditLog = l }

func (s *Store) audit(event, format string, args ...any) {
	if s.auditLog != nil {
		s.auditLog.Append(event, format, args...)
	}
}

func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot") }
func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, "wal."+strconv.FormatUint(gen, 10))
}

// Recover loads the snapshot (if any) and replays the WAL into reg,
// truncates any torn tail, opens the WAL for appending, starts the
// background flusher, and attaches the store as reg's journal. The
// registry must already hold its tenants (same configs as when the
// state was exported) and must not yet be serving traffic.
func (s *Store) Recover(reg *service.Registry) (RecoverStats, error) {
	var stats RecoverStats

	if data, err := os.ReadFile(s.snapshotPath()); err == nil {
		st, gen, err := DecodeSnapshot(data)
		if err != nil {
			return stats, err
		}
		if err := reg.RestoreState(st); err != nil {
			return stats, err
		}
		s.gen = gen
		stats.SnapshotLoaded = true
		s.audit("snapshot-loaded", "generation=%d tenants=%d bytes=%d", gen, len(st.Tenants), len(data))
	} else if !os.IsNotExist(err) {
		return stats, fmt.Errorf("durable: %w", err)
	}
	stats.Generation = s.gen

	rj := reg.ReplayJournal(func(error) { stats.ReplayErrors++ })
	f, err := os.OpenFile(s.walPath(s.gen), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return stats, fmt.Errorf("durable: %w", err)
	}
	data, err := os.ReadFile(s.walPath(s.gen))
	if err != nil {
		f.Close()
		return stats, fmt.Errorf("durable: %w", err)
	}
	if len(data) == 0 {
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return stats, fmt.Errorf("durable: %w", err)
		}
	} else {
		good, torn := walkFrames(data, func(payload []byte) error {
			if err := applyRecord(payload, rj); err != nil {
				return err
			}
			stats.Records++
			return nil
		})
		if torn {
			if good < int64(len(walMagic)) {
				// The header itself is damaged; start the file over.
				if err := f.Truncate(0); err != nil {
					f.Close()
					return stats, fmt.Errorf("durable: %w", err)
				}
				if _, err := f.WriteAt(walMagic, 0); err != nil {
					f.Close()
					return stats, fmt.Errorf("durable: %w", err)
				}
				good = int64(len(walMagic))
			} else if err := f.Truncate(good); err != nil {
				f.Close()
				return stats, fmt.Errorf("durable: %w", err)
			}
			stats.TruncatedBytes = int64(len(data)) - good
			s.audit("wal-truncated", "generation=%d offset=%d dropped=%d", s.gen, good, stats.TruncatedBytes)
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return stats, fmt.Errorf("durable: %w", err)
		}
	}
	s.audit("wal-replayed", "generation=%d records=%d replay_errors=%d", s.gen, stats.Records, stats.ReplayErrors)

	s.mu.Lock()
	s.f = f
	s.mu.Unlock()
	s.startFlusher()
	s.removeOldGenerations()
	reg.SetJournal(s)
	return stats, nil
}

// Snapshot writes a fresh registry image and rotates the WAL. Requires
// quiesced ingest (see the type comment). Any write-path error since the
// last snapshot surfaces here. Records still staged when the rotation
// happens are simply discarded: the mutations they describe happened
// before the export, so the image already contains them.
func (s *Store) Snapshot(reg *service.Registry) error {
	// Export outside s.mu: the export takes service locks, and journal
	// appends (which hold s.mu) happen under some of them.
	st := reg.ExportState()

	// Runs after the unlocks below: a store that was never Recovered
	// (or whose flusher died with the old file) still ends up with a
	// live flusher for the new generation.
	defer s.startFlusher()

	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	next := s.gen + 1
	data := EncodeSnapshot(st, next)

	tmp := s.snapshotPath() + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := tf.Write(data); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}

	nf, err := os.OpenFile(s.walPath(next), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := nf.Write(walMagic); err != nil {
		nf.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if s.f != nil {
		s.f.Close()
	}
	s.f = nf
	prev := s.gen
	s.gen = next
	// Superseded by the image: drop the staged tail and settle every
	// sequence watermark so no barrier can wait on pre-rotation records.
	s.staged = s.staged[:0]
	if cap(s.staged) > s.maxRetained {
		s.staged = nil
	}
	s.flushedSeq, s.syncedSeq = s.seq, s.seq
	s.synced.Broadcast()
	os.Remove(s.walPath(prev))
	s.audit("snapshot-taken", "generation=%d tenants=%d bytes=%d", next, len(st.Tenants), len(data))
	return nil
}

// removeOldGenerations deletes wal files older than the current
// generation — leftovers from a crash between snapshot rename and
// old-WAL removal.
func (s *Store) removeOldGenerations() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal.") {
			continue
		}
		gen, err := strconv.ParseUint(name[len("wal."):], 10, 64)
		if err == nil && gen < s.gen {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// Err reports the first write-path failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close drains the staged records, syncs, and closes the WAL. The store
// must not be attached as a journal of a registry still serving traffic.
func (s *Store) Close() error {
	s.stopFlusher()
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.err
	}
	var err error
	if s.err == nil && len(s.staged) > 0 {
		if _, werr := s.f.Write(s.staged); werr != nil {
			err = werr
		} else {
			s.stats.Writes++
			s.stats.BytesWritten += uint64(len(s.staged))
		}
		s.staged = s.staged[:0]
	}
	if err == nil {
		if serr := s.f.Sync(); serr != nil {
			err = serr
		} else if s.err == nil {
			s.stats.Syncs++
		}
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	s.flushedSeq, s.syncedSeq = s.seq, s.seq
	s.synced.Broadcast()
	if s.err == nil && err != nil {
		s.err = fmt.Errorf("durable: %w", err)
	}
	return s.err
}

// Store implements service.Journal: one appended record per mutation.
// Barrier records (sealed/closed/ticket-granted) return only once
// durable; the rest are staged fire-and-forget.

func (s *Store) RoundCreated(tenant string, round uint64) {
	// Journaled under the round manager's lock (round admission), so it
	// must stay async — and it can: a lost RoundCreated only loses the
	// (empty) round it created, which recovery treats as never admitted.
	e := getEncoder()
	encodeRound(e.w, recRoundCreated, tenant, round)
	s.stage(false, e)
}

func (s *Store) RoundSealed(tenant string, round uint64) {
	// Barrier: the fleet plane ships partial seals and operators read
	// sealed sums the moment Seal returns, so the seal record — and,
	// because staging preserves order, every accept record before it —
	// must be durable first.
	e := getEncoder()
	encodeRound(e.w, recRoundSealed, tenant, round)
	s.stage(true, e)
}

func (s *Store) RoundClosed(tenant string, round uint64) {
	// Barrier: a closed round's sum has been consumed downstream.
	e := getEncoder()
	encodeRound(e.w, recRoundClosed, tenant, round)
	s.stage(true, e)
}

func (s *Store) RoundForgotten(tenant string, round uint64) {
	// Journaled under the manager's lock on the eviction path: async.
	e := getEncoder()
	encodeRound(e.w, recRoundForgotten, tenant, round)
	s.stage(false, e)
}

func (s *Store) Accepted(tenant string, round uint64, digest [32]byte, blinded fixed.Vector) {
	e := getEncoder()
	encodeAcceptedOne(e.w, tenant, round, digest, blinded)
	s.stage(false, e)
}

func (s *Store) BatchAccepted(tenant string, round uint64, digests [][32]byte, delta fixed.Vector) {
	e := getEncoder()
	encodeAccepted(e.w, tenant, round, digests, delta)
	s.stage(false, e)
}

func (s *Store) DropoutCorrected(tenant string, round uint64, mask fixed.Vector) {
	e := getEncoder()
	encodeDropout(e.w, tenant, round, mask)
	s.stage(false, e)
}

func (s *Store) Rejected(tenant string, round uint64, level service.RejectLevel, n int) {
	e := getEncoder()
	encodeRejected(e.w, tenant, round, level, n)
	s.stage(false, e)
}

func (s *Store) TicketGranted(tenant string, tk service.TicketState) {
	// Barrier: the grant reply hands the device a session key; if the
	// record were lost, every post-restart contribution under that
	// ticket would be refused and the device forced back through the
	// asymmetric exchange — the thundering herd durability exists to
	// prevent.
	e := getEncoder()
	encodeTicketGranted(e.w, tenant, tk)
	s.stage(true, e)
}

func (s *Store) TicketEvicted(tenant string, id uint64) {
	e := getEncoder()
	encodeTicketEvicted(e.w, tenant, id)
	s.stage(false, e)
}
