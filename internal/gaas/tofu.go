package gaas

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"glimmers/internal/tee"
)

// KnownHosts is a trust-on-first-use store pinning service names to
// enclave measurements, in the shape of SSH's known_hosts: the first
// genuinely attested measurement a service presents is pinned (and
// persisted when the store is file-backed); any later handshake whose
// measurement differs fails with ErrMeasurementMismatch.
//
// TOFU narrows the trust decision, it does not remove it: the first
// connection trusts whatever genuine enclave the host runs (see the
// README threat model for what a first-connection adversary buys).
// Rotation — a deliberate measurement change after a vetted re-audit —
// is explicit: Pin the new measurement, or edit the known-hosts file.
//
// The file format is one pin per line, `<service> sha256:<64 hex>`;
// blank lines and #-comments are ignored. Rewrites are atomic
// (temp file + rename), so a crash mid-save never truncates the store.
type KnownHosts struct {
	mu   sync.Mutex
	path string // "" = in-memory only
	pins map[string]tee.Measurement
}

// NewKnownHosts returns an empty in-memory store: pins live for the
// process only. Useful for tests and single-run tools.
func NewKnownHosts() *KnownHosts {
	return &KnownHosts{pins: make(map[string]tee.Measurement)}
}

// LoadKnownHosts opens a file-backed store, loading any pins already
// recorded at path. A missing file is an empty store — it is created on
// the first pin — so first use needs no setup.
func LoadKnownHosts(path string) (*KnownHosts, error) {
	k := &KnownHosts{path: path, pins: make(map[string]tee.Measurement)}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return k, nil
		}
		return nil, fmt.Errorf("gaas: known hosts: %w", err)
	}
	defer f.Close()
	if err := k.parse(f); err != nil {
		return nil, err
	}
	return k, nil
}

func (k *KnownHosts) parse(r io.Reader) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		service, meas, ok := strings.Cut(text, " ")
		digest, found := strings.CutPrefix(strings.TrimSpace(meas), "sha256:")
		if !ok || service == "" || !found {
			return fmt.Errorf("gaas: known hosts line %d: malformed entry", line)
		}
		raw, err := hex.DecodeString(digest)
		if err != nil || len(raw) != len(tee.Measurement{}) {
			return fmt.Errorf("gaas: known hosts line %d: malformed measurement", line)
		}
		var m tee.Measurement
		copy(m[:], raw)
		k.pins[service] = m
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("gaas: known hosts: %w", err)
	}
	return nil
}

// Check enforces the TOFU policy for one handshake: an unknown service
// pins m (persisting when file-backed); a known service must present its
// pinned measurement or the check fails with ErrMeasurementMismatch.
func (k *KnownHosts) Check(service string, m tee.Measurement) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	pinned, ok := k.pins[service]
	if !ok {
		return k.pinLocked(service, m)
	}
	if pinned != m {
		return fmt.Errorf("%w: %q pinned %s, presented %s",
			ErrMeasurementMismatch, service, measurementHex(pinned), measurementHex(m))
	}
	return nil
}

// Pin records (or rotates) the measurement for service unconditionally —
// the explicit operator action after a vetted enclave update.
func (k *KnownHosts) Pin(service string, m tee.Measurement) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.pinLocked(service, m)
}

func (k *KnownHosts) pinLocked(service string, m tee.Measurement) error {
	old, had := k.pins[service]
	k.pins[service] = m
	if err := k.saveLocked(); err != nil {
		// Keep memory and disk agreeing: a pin that failed to persist
		// would silently downgrade to first-use on the next process.
		if had {
			k.pins[service] = old
		} else {
			delete(k.pins, service)
		}
		return err
	}
	return nil
}

// Lookup returns the pinned measurement for service, if any.
func (k *KnownHosts) Lookup(service string) (tee.Measurement, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	m, ok := k.pins[service]
	return m, ok
}

// Len reports how many services are pinned.
func (k *KnownHosts) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.pins)
}

// saveLocked rewrites the backing file atomically; in-memory stores skip
// persistence.
func (k *KnownHosts) saveLocked() error {
	if k.path == "" {
		return nil
	}
	services := make([]string, 0, len(k.pins))
	for s := range k.pins {
		services = append(services, s)
	}
	sort.Strings(services)
	var b strings.Builder
	for _, s := range services {
		fmt.Fprintf(&b, "%s sha256:%s\n", s, measurementHex(k.pins[s]))
	}
	dir := filepath.Dir(k.path)
	tmp, err := os.CreateTemp(dir, ".known_hosts-*")
	if err != nil {
		return fmt.Errorf("gaas: known hosts save: %w", err)
	}
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("gaas: known hosts save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("gaas: known hosts save: %w", err)
	}
	if err := os.Rename(tmp.Name(), k.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("gaas: known hosts save: %w", err)
	}
	return nil
}

func measurementHex(m tee.Measurement) string { return hex.EncodeToString(m[:]) }
