package gaas

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// ticketWorld is a gaas host whose ingest side grants session tickets: the
// cmd/glimmerd topology with the amortized fast path enabled and a test
// clock driving expiry.
type ticketWorld struct {
	*world
	clock  *atomic.Int64
	tktMgr *service.RoundManager
}

func newTicketWorld(t *testing.T) *ticketWorld {
	t.Helper()
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New("iot.example", as.Root())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("range", dim)); err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	svc.Vet(glimmer.BuildBinary(cfg).Measurement())
	server := NewServer(platform, cfg, func(dev *glimmer.Device) error {
		payload, err := svc.BasePayload()
		if err != nil {
			return err
		}
		return svc.Provision(dev, payload)
	})
	clock := new(atomic.Int64)
	clock.Store(1_700_000_000)
	rounds := service.NewRoundManager(service.PipelineConfig{
		ServiceName: svc.Name(),
		Verify:      svc.ContributionVerifyKey(),
		Dim:         dim,
		Tickets: service.NewTicketTable(service.TicketConfig{
			TTL: 60,
			Now: clock.Load,
		}),
		Workers: 2,
		Shards:  2,
	})
	rounds.Vet(server.Measurement())
	server.SetIngest(rounds)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = server.Serve(ln) }()
	return &ticketWorld{
		world: &world{
			as: as, platform: platform, svc: svc, cfg: cfg,
			server: server, addr: ln.Addr().String(), rounds: rounds,
		},
		clock:  clock,
		tktMgr: rounds,
	}
}

// TestTicketGrantOverGaas drives the whole amortized loop through the
// frame protocol: a device enclave's signed request forwarded by the
// client, the grant installed back into the enclave, MAC'd contributions
// submitted in batches, then expiry refusing the session and a renewal
// (the same exchange again) restoring it.
func TestTicketGrantOverGaas(t *testing.T) {
	w := newTicketWorld(t)

	// The contributing enclave runs client-side here (the device owns a
	// TEE); gaas carries its control plane and its batches.
	dev, err := glimmer.NewDevice(w.platform, w.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Destroy()
	payload, err := w.svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.svc.Provision(dev, payload); err != nil {
		t.Fatal(err)
	}
	w.tktMgr.Vet(dev.Measurement())

	client, err := Dial(w.addr, w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	establish := func() {
		t.Helper()
		req, err := dev.TicketRequest(1, 64)
		if err != nil {
			t.Fatal(err)
		}
		grant, err := client.RequestTicket(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.InstallTicket(grant); err != nil {
			t.Fatal(err)
		}
	}
	submitRound := func(round uint64, vals []float64) (accepted, rejected int) {
		t.Helper()
		var raws [][]byte
		for _, v := range vals {
			tc, err := dev.ContributeTicketed(round, fixed.FromFloats([]float64{v, v, v}), nil)
			if err != nil {
				t.Fatal(err)
			}
			raws = append(raws, glimmer.EncodeTicketedContribution(tc))
		}
		accepted, rejected, err := client.SubmitBatch(raws)
		if err != nil {
			t.Fatal(err)
		}
		return accepted, rejected
	}

	establish()
	if a, r := submitRound(1, []float64{0.1, 0.4, 0.7}); a != 3 || r != 0 {
		t.Fatalf("ticketed submit = (%d, %d), want (3, 0)", a, r)
	}
	if got := w.tktMgr.Round(1).Count(); got != 3 {
		t.Fatalf("pipeline count = %d, want 3", got)
	}

	// Expiry: the table's clock passes the TTL, the same session's MACs are
	// refused — renewal (the exchange again) restores service.
	w.clock.Add(61)
	if a, r := submitRound(2, []float64{0.2, 0.5}); a != 0 || r != 2 {
		t.Fatalf("expired submit = (%d, %d), want (0, 2)", a, r)
	}
	establish()
	if a, r := submitRound(2, []float64{0.3, 0.6}); a != 2 || r != 0 {
		t.Fatalf("renewed submit = (%d, %d), want (2, 0)", a, r)
	}
}

// TestTicketGrantWithoutGranter: a server whose ingestor cannot grant (or
// with no ingest at all) refuses the command with a clean remote error.
func TestTicketGrantWithoutGranter(t *testing.T) {
	w := newWorld(t)
	client, err := Dial(w.addr, w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.RequestTicket([]byte("request")); err == nil {
		t.Fatal("ticket granted by a server without a granter")
	}
}

// TestGoldenTicketGrantFrame freezes the ticket-grant command frame — the
// control-plane routing surface of the amortized fast path — in the same
// style as the tenant hello fixture.
func TestGoldenTicketGrantFrame(t *testing.T) {
	want := readGolden(t, "ticket_grant_frame.hex")
	body := readGolden(t, "ticket_request_body.hex")
	got := appendFrame(nil, cmdTicketGrant, body)
	if !bytes.Equal(got, want) {
		t.Fatalf("ticket-grant frame changed:\n got: %x\nwant: %x", got, want)
	}
	// The frozen bytes must decode back through the server's reader to the
	// same command, and the body must still parse as a ticket request.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() { _, _ = c1.Write(want) }()
	tag, frameBody, _, err := readFrameInto(c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(tag) != cmdTicketGrant {
		t.Fatalf("tag = %q, want %q", tag, cmdTicketGrant)
	}
	req, err := wire.DecodeTicketRequest(frameBody)
	if err != nil {
		t.Fatal(err)
	}
	if req.Service != "iot.example" || req.RoundFirst != 3 || req.RoundLast != 66 {
		t.Fatalf("decoded request diverges: %+v", req)
	}
}
