package gaas

import (
	"bytes"
	"encoding/hex"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden vectors: the tenant-bearing user-hello frame is the multi-tenant
// protocol's routing key — clients and hosts on different versions must
// agree on its bytes. The fixture in testdata/ is the frozen encoding; a
// change that alters it is a cross-version compatibility break and must
// bump the protocol, not silently reshape the bytes.

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	data, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return data
}

const goldenHelloService = "iot.example"

// goldenHelloFrame builds the complete frame a client opens a session
// with: the user-hello command carrying the tenant name.
func goldenHelloFrame() []byte {
	return appendFrame(nil, cmdUserHello, EncodeHelloBody(goldenHelloService))
}

func TestGoldenTenantHelloFrame(t *testing.T) {
	want := readGolden(t, "user_hello.hex")
	got := goldenHelloFrame()
	if !bytes.Equal(got, want) {
		t.Fatalf("tenant hello frame changed:\n got: %x\nwant: %x", got, want)
	}
	// The frozen bytes must decode back to the same command and tenant —
	// through the same reader the server uses.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_, _ = c1.Write(want)
	}()
	tag, body, _, err := readFrameInto(c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(tag) != cmdUserHello {
		t.Fatalf("tag = %q, want %q", tag, cmdUserHello)
	}
	service, err := helloService(body)
	if err != nil {
		t.Fatal(err)
	}
	if service != goldenHelloService {
		t.Fatalf("service = %q, want %q", service, goldenHelloService)
	}
}

// TestHelloServiceLegacyAndMalformed pins the legacy empty hello (no
// tenant: single-tenant deployments) and refusal of malformed bodies.
func TestHelloServiceLegacyAndMalformed(t *testing.T) {
	service, err := helloService(nil)
	if err != nil || service != "" {
		t.Fatalf("legacy hello = (%q, %v), want (\"\", nil)", service, err)
	}
	for name, body := range map[string][]byte{
		"truncated": {0x00, 0x00, 0x00, 0x09, 'x'},
		"trailing":  append(EncodeHelloBody("svc"), 0xAA),
	} {
		if _, err := helloService(body); err == nil {
			t.Errorf("%s hello body accepted", name)
		}
	}
}
