package gaas

import (
	"context"
	"encoding/binary"
	"fmt"

	"glimmers/internal/fleet"
	"glimmers/internal/wire"
)

// Fleet plane: the commands two glimmerd processes use to cooperate on
// one round. fleet-forward carries a batch from a peer node to the shard
// owner (same body and reply as submit-batch, separate command so the
// governance counters tell peer traffic from client traffic), and
// fleet-merge carries one node's signed partial seal to the merge
// coordinator, which replies with the round's wire.MergeResult. The
// FleetClient below is the client half: it routes batches across a node
// set by consistent hashing, so contributions land on their shard owner
// in the first place.

const (
	cmdFleetForward = "fleet-forward"
	cmdFleetMerge   = "fleet-merge"
)

// PartialMerger is the coordinator side of the merge plane
// (service.MergeHub implements it). MergePartialSeal must not retain the
// seal bytes after it returns — they are a view into the connection's
// frame buffer.
type PartialMerger interface {
	MergePartialSeal(seal []byte) ([]byte, error)
}

// HandleFleet registers the fleet plane: forward (usually the same
// Ingestor as HandleIngest) serves fleet-forward, merger serves
// fleet-merge. Either may be nil to register only the other role — a
// pure aggregation node has no merger, a dedicated coordinator may have
// no ingest.
func (m *ServeMux) HandleFleet(forward Ingestor, merger PartialMerger) {
	if forward != nil {
		m.fleetIngest = forward
		m.Handle(cmdFleetForward, HandlerFunc((*Session).fleetForward))
	}
	if merger != nil {
		m.merger = merger
		m.Handle(cmdFleetMerge, HandlerFunc((*Session).fleetMerge))
	}
}

// fleetForward ingests a batch forwarded by a peer node. Same shed gate,
// zero-copy decode, and tally reply as submitBatch; only the counter
// differs.
func (s *Session) fleetForward(body []byte) ([]byte, error) {
	srv := s.srv
	if max := srv.maxInflight; max > 0 {
		if srv.inflight.Add(1) > int64(max) {
			srv.inflight.Add(-1)
			srv.shedBatches.Add(1)
			return nil, fmt.Errorf("%w: %d contribution batches in flight", ErrShed, max)
		}
		defer srv.inflight.Add(-1)
	}
	srv.forwardedBatches.Add(1)
	items, err := wire.DecodeBatchInto(body, s.batchScratch)
	if err != nil {
		return nil, err
	}
	accepted, _ := srv.mux.fleetIngest.IngestBatch(items)
	reply := binary.BigEndian.AppendUint32(make([]byte, 0, 8), uint32(accepted))
	reply = binary.BigEndian.AppendUint32(reply, uint32(len(items)-accepted))
	clear(items)
	s.batchScratch = items[:0]
	return reply, nil
}

// fleetMerge hands one partial seal to the coordinator and replies with
// the merge's state. A refused seal is an "error" frame carrying the
// refusal (wire-crossing sentinels survive the trip), and bumps the
// refused counter; the merge itself is untouched by construction.
func (s *Session) fleetMerge(body []byte) ([]byte, error) {
	srv := s.srv
	srv.partialsReceived.Add(1)
	reply, err := srv.mux.merger.MergePartialSeal(body)
	if err != nil {
		srv.partialsRefused.Add(1)
		return nil, err
	}
	return reply, nil
}

// FleetStats is a snapshot of the fleet plane's counters — the merge/
// forward counterpart of EdgeStats.
type FleetStats struct {
	// PartialsSent counts partial seals this process shipped to a
	// coordinator (bumped by the node role via NotePartialSent).
	PartialsSent int64
	// PartialsReceived counts partial seals that arrived on fleet-merge.
	PartialsReceived int64
	// PartialsRefused counts received seals the coordinator turned away.
	PartialsRefused int64
	// ForwardedBatches counts batches that arrived on fleet-forward.
	ForwardedBatches int64
}

// FleetStats snapshots the fleet-plane counters.
func (s *Server) FleetStats() FleetStats {
	return FleetStats{
		PartialsSent:     s.partialsSent.Load(),
		PartialsReceived: s.partialsReceived.Load(),
		PartialsRefused:  s.partialsRefused.Load(),
		ForwardedBatches: s.forwardedBatches.Load(),
	}
}

// NotePartialSent records one partial seal shipped by this process's
// node role, so drain output reads all fleet counters from one place.
func (s *Server) NotePartialSent() { s.partialsSent.Add(1) }

// ForwardBatch ships a batch to a peer node over fleet-forward — the
// node-to-node variant of SubmitBatch with identical size limits and
// tally reply.
func (c *Client) ForwardBatch(raws [][]byte) (accepted, rejected int, err error) {
	return c.submitBatchCmd(cmdFleetForward, raws)
}

// MergePartialSeal ships a signed partial seal to the merge coordinator
// and returns the round's updated merge state.
func (c *Client) MergePartialSeal(seal []byte) (wire.MergeResult, error) {
	reply, err := c.roundTrip(cmdFleetMerge, seal)
	if err != nil {
		return wire.MergeResult{}, err
	}
	return wire.DecodeMergeResult(reply)
}

// FleetNode names one glimmerd node: its ring identity and its address.
type FleetNode struct {
	ID   uint32
	Addr string
}

// FleetConfig shapes a FleetClient: the node set, the ring geometry, and
// the per-connection dial configuration. Forwarding is public-frame
// traffic, so the dial runs sessionless regardless of cfg.Dial.NoSession.
type FleetConfig struct {
	Nodes  []FleetNode
	VNodes int
	Dial   DialConfig
}

// FleetClient routes contribution batches across a glimmerd node set by
// consistent hashing — the client-side half of sharding. Each raw in a
// batch is peeked (service, round) on the zero-alloc path and grouped to
// its owner node; one SubmitBatch round trip goes to each owner that has
// items. Not safe for concurrent use; one FleetClient per goroutine,
// like Client.
type FleetClient struct {
	ring   *fleet.Ring
	conns  map[uint32]*Client
	addrs  map[uint32]string
	dial   DialConfig
	groups map[uint32][][]byte // reused per SubmitBatch call
	sent   int64
}

// DialFleet connects to every node in the set. Connections are
// sessionless (forwarding carries only public frames). A node that
// cannot be reached fails the dial — use Rehome to route around a node
// that dies later.
func DialFleet(ctx context.Context, cfg FleetConfig) (*FleetClient, error) {
	ids := make([]uint32, 0, len(cfg.Nodes))
	addrs := make(map[uint32]string, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		ids = append(ids, n.ID)
		addrs[n.ID] = n.Addr
	}
	ring, err := fleet.NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	dial := cfg.Dial
	dial.NoSession = true
	fc := &FleetClient{
		ring:   ring,
		conns:  make(map[uint32]*Client, len(cfg.Nodes)),
		addrs:  addrs,
		dial:   dial,
		groups: make(map[uint32][][]byte, len(cfg.Nodes)),
	}
	for _, n := range cfg.Nodes {
		c, err := DialContext(ctx, n.Addr, dial)
		if err != nil {
			fc.Close()
			return nil, fmt.Errorf("gaas: fleet dial node %d: %w", n.ID, err)
		}
		fc.conns[n.ID] = c
	}
	return fc, nil
}

// Ring exposes the client's current placement view (it shrinks on
// Rehome).
func (fc *FleetClient) Ring() *fleet.Ring { return fc.ring }

// Sent reports how many batches have been shipped across all nodes.
func (fc *FleetClient) Sent() int64 { return fc.sent }

// SubmitBatch routes each raw to its owner node and submits one batch
// per owner. Raws that cannot be peeked are counted rejected without a
// round trip. The first transport error aborts (partial tallies
// returned); per-item rejections are part of the tallies, as on Client.
func (fc *FleetClient) SubmitBatch(raws [][]byte) (accepted, rejected int, err error) {
	clear(fc.groups)
	for _, raw := range raws {
		owner, perr := fc.ring.OwnerOf(raw)
		if perr != nil {
			rejected++
			continue
		}
		fc.groups[owner] = append(fc.groups[owner], raw)
	}
	// Iterate the ring's stable node order, not the map, so submission
	// order is deterministic (the sim depends on it).
	for _, node := range fc.ring.Nodes() {
		group := fc.groups[node]
		if len(group) == 0 {
			continue
		}
		c := fc.conns[node]
		if c == nil {
			c, err = DialContext(context.Background(), fc.addrs[node], fc.dial)
			if err != nil {
				return accepted, rejected, fmt.Errorf("gaas: fleet node %d: %w", node, err)
			}
			fc.conns[node] = c
		}
		a, r, serr := c.SubmitBatch(group)
		accepted += a
		rejected += r
		if serr != nil {
			return accepted, rejected, fmt.Errorf("gaas: fleet node %d: %w", node, serr)
		}
		fc.sent++
		fc.groups[node] = group[:0]
	}
	return accepted, rejected, nil
}

// Rehome removes a dead node from the ring: its shards move to their
// arcs' successors and its connection is dropped. Contributions already
// acknowledged by the dead node are NOT resubmitted — its partial seal
// (recovered from durable state) still covers them, and a resubmission
// would collide with that partial's digests at merge time.
func (fc *FleetClient) Rehome(node uint32) error {
	ring, err := fc.ring.Without(node)
	if err != nil {
		return err
	}
	fc.ring = ring
	if c := fc.conns[node]; c != nil {
		_ = c.Close()
	}
	delete(fc.conns, node)
	delete(fc.addrs, node)
	delete(fc.groups, node)
	return nil
}

// Close drops every node connection.
func (fc *FleetClient) Close() error {
	var first error
	for _, c := range fc.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	clear(fc.conns)
	return first
}
