// Package gaas implements Glimmer-as-a-service (§4.2 of the paper): IoT
// and other devices without trusted-computing hardware use a Glimmer hosted
// by a neutral third party — another device owned by the same user, a
// university, or an organization like the EFF.
//
// The one requirement the paper states is that "the client device needs to
// establish that it is sending its private data to a genuine Glimmer". The
// client therefore runs the same attestation-bound handshake a service
// would: it verifies the hosted enclave's quote against the published
// measurement, binds a session to it, and only then transmits the
// contribution and private validation data. The hosting party relays opaque
// ciphertext; it sees neither inputs nor verdicts.
package gaas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"glimmers/internal/attest"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// MaxFrame bounds one protocol frame (16 MiB).
const MaxFrame = 16 << 20

// Protocol commands.
const (
	cmdUserHello      = "user-hello"
	cmdUserComplete   = "user-complete"
	cmdUserContribute = "user-contribute"
	cmdSubmitBatch    = "submit-batch"
	cmdTicketGrant    = "ticket-grant"
)

// Frame I/O: u32 big-endian length prefix, then a wire message of
// {command/status, body}.

// frameBufPool recycles frame encode buffers so the per-frame hot path
// (server replies, batch submits) allocates nothing at steady state.
// Oversized buffers are not returned to the pool, so one giant batch frame
// cannot pin megabytes for the lifetime of the process.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// maxPooledFrame caps what goes back into frameBufPool.
const maxPooledFrame = 1 << 20

func putFrameBuf(bufp *[]byte) {
	if cap(*bufp) <= maxPooledFrame {
		frameBufPool.Put(bufp)
	}
}

// appendFrameHeader appends the frame length prefix and the tag field for
// a frame whose body will be bodyLen bytes. The caller appends the body's
// length prefix and content (or uses appendFrame for the common case).
func appendFrameHeader(dst []byte, tag string, bodyLen int) []byte {
	payloadLen := 4 + len(tag) + 4 + bodyLen
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(tag)))
	dst = append(dst, tag...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	return dst
}

// appendFrame appends a complete encoded frame — identical bytes to the
// original two-write encoding, but built in one pass so the transport
// issues a single Write per frame.
func appendFrame(dst []byte, tag string, body []byte) []byte {
	dst = appendFrameHeader(dst, tag, len(body))
	return append(dst, body...)
}

func writeFrame(w io.Writer, tag string, body []byte) error {
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFrame((*bufp)[:0], tag, body)
	_, err := w.Write(buf)
	*bufp = buf[:0]
	putFrameBuf(bufp)
	if err != nil {
		return fmt.Errorf("gaas: write frame: %w", err)
	}
	return nil
}

// readFrameInto reads one frame into buf, growing it only when the frame
// exceeds its capacity, and returns the tag and body as views into it plus
// the (possibly grown) buffer for the next call. The views are valid until
// buf's next reuse — per-connection loops own their buffer, so a frame's
// views live exactly until the next frame is read.
func readFrameInto(r io.Reader, buf []byte) (tag, body, next []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, nil, buf, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, nil, buf, fmt.Errorf("gaas: frame of %d bytes exceeds limit", n)
	}
	// Shrink before growing past need: one giant frame must not pin a
	// MaxFrame-sized buffer for the connection's lifetime once traffic
	// returns to normal (the same discipline maxPooledFrame applies to the
	// encode pool). The previous frame's views are dead by the time the
	// next read starts, so replacing the buffer here is safe.
	if cap(buf) < int(n) || (cap(buf) > maxPooledFrame && int(n) <= maxPooledFrame) {
		// 25% headroom so a stream of slowly growing frames amortizes
		// instead of reallocating on every new size maximum.
		buf = make([]byte, n, int(n)+int(n)/4)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, nil, buf, fmt.Errorf("gaas: read frame: %w", err)
	}
	var wr wire.Reader
	wr.Reset(buf)
	tag = wr.BytesView()
	body = wr.BytesView()
	if err := wr.Done(); err != nil {
		return nil, nil, buf, fmt.Errorf("gaas: frame payload: %w", err)
	}
	return tag, body, buf, nil
}

// readFrame reads one frame into fresh memory; callers that retain the
// body (client handshakes) use this instead of readFrameInto.
func readFrame(r io.Reader) (string, []byte, error) {
	tag, body, _, err := readFrameInto(r, nil)
	if err != nil {
		return "", nil, err
	}
	return string(tag), body, nil
}

// Ingestor accepts batches of encoded signed contributions and reports
// how many were accepted, with one error slot per input.
// service.RoundManager satisfies it for a single tenant; service.Registry
// satisfies it with frame-level routing across tenants.
//
// IngestBatch must not retain any raws slice after it returns: the server
// hands it views into a per-connection frame buffer that is reused for the
// next frame (service.RoundManager copies everything it keeps, so it
// qualifies). On the ticketed fast path those views flow through the
// service layer's batch plan untouched — MAC preimages and vector lanes
// are read in place (see service.Pipeline.AddBatchErrs), so a frame's
// contributions reach the shard accumulators with zero copies.
type Ingestor interface {
	IngestBatch(raws [][]byte) (accepted int, errs []error)
}

// TicketGranter runs the service side of the attested-session-ticket
// exchange: one signed request in, one grant out (see
// service.RoundManager.GrantTicket). service.Registry satisfies it with
// per-tenant routing. A server whose Ingestor also implements TicketGranter
// serves the ticket-grant command; ticket renewal is simply another grant
// (clients re-run the exchange when ingest starts refusing with the
// ticket-expired error), and an expired or unknown ticket never grants
// anything implicitly — the refusal travels back as a normal error frame.
type TicketGranter interface {
	GrantTicket(request []byte) (grant []byte, err error)
}

// HostResolver maps the service name a client's hello carries to the
// enclave that tenant's user sessions run in. service.Registry satisfies
// it; single-tenant servers use a fixed resolver. The empty name is the
// legacy hello: resolvers should map it to their sole tenant when that is
// unambiguous.
type HostResolver interface {
	ResolveHost(service string) (glimmer.Config, func(*glimmer.Device) error, error)
}

// fixedHost is the single-tenant resolver: one config, one provisioner.
// It accepts the empty (legacy) name and its own service's name, and
// refuses others — a client asking a single-tenant host for a different
// service should learn so before shipping private data.
type fixedHost struct {
	cfg       glimmer.Config
	provision func(*glimmer.Device) error
}

func (h fixedHost) ResolveHost(service string) (glimmer.Config, func(*glimmer.Device) error, error) {
	if service != "" && service != h.cfg.ServiceName {
		return glimmer.Config{}, nil, fmt.Errorf("gaas: host does not serve %q", service)
	}
	return h.cfg, h.provision, nil
}

// Server hosts Glimmer enclaves for remote clients: one freshly loaded,
// freshly provisioned enclave per user session, so client sessions cannot
// interfere. A multi-tenant server (NewTenantServer) loads each session's
// enclave from the tenant the client names in its hello.
type Server struct {
	platform *tee.Platform
	resolve  HostResolver
	// ingest, when non-nil, accepts submit-batch frames: signed, blinded
	// contributions forwarded straight to the service's aggregation
	// pipeline so clients need one round trip for a whole cohort. The
	// contributions are public by construction (signed and blinded), so
	// they travel outside the per-user attested session.
	ingest Ingestor

	// idleTimeout bounds how long a connection may sit between frames.
	// Zero means no deadline — tests drive connections lock-step and a
	// wall-clock limit would only make them flaky. glimmerd sets it, so a
	// stalled or vanished client cannot pin a session enclave (and its
	// platform slot) forever.
	idleTimeout time.Duration

	// Connection tracking for graceful shutdown.
	connMu  sync.Mutex
	conns   map[net.Conn]bool
	closing bool
	connWG  sync.WaitGroup
}

// NewServer creates a single-tenant Glimmer host.
func NewServer(platform *tee.Platform, cfg glimmer.Config, provision func(*glimmer.Device) error) *Server {
	return NewTenantServer(platform, fixedHost{cfg: cfg, provision: provision})
}

// NewTenantServer creates a Glimmer host serving every tenant the resolver
// knows: the client names its service in the hello, and the session's
// enclave is loaded from that tenant's configuration.
func NewTenantServer(platform *tee.Platform, resolve HostResolver) *Server {
	return &Server{platform: platform, resolve: resolve, conns: make(map[net.Conn]bool)}
}

// SetIngest enables the submit-batch command, forwarding batches to ing.
// Must be called before Serve.
func (s *Server) SetIngest(ing Ingestor) { s.ingest = ing }

// SetIdleTimeout reaps connections that send no frame for d: the read
// deadline expires, the handler exits, and the session enclave is
// destroyed. Zero (the default) disables the deadline. Must be called
// before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// Measurement returns the measurement clients of a single-tenant host must
// pin (the resolver's default tenant). Multi-tenant deployments publish
// one measurement per tenant via MeasurementFor.
func (s *Server) Measurement() tee.Measurement {
	m, err := s.MeasurementFor("")
	if err != nil {
		return tee.Measurement{}
	}
	return m
}

// MeasurementFor returns the measurement clients of the named tenant must
// pin.
func (s *Server) MeasurementFor(service string) (tee.Measurement, error) {
	cfg, _, err := s.resolve.ResolveHost(service)
	if err != nil {
		return tee.Measurement{}, err
	}
	return glimmer.BuildBinary(cfg).Measurement(), nil
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("gaas: accept: %w", err)
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		go func() {
			defer s.untrack(conn)
			s.handleConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closing {
		return false
	}
	s.conns[conn] = true
	s.connWG.Add(1)
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.connWG.Done()
}

// Shutdown stops the server gracefully: the caller closes the listener
// (ending Serve), Shutdown closes every live connection and waits for the
// handlers to drain. A handler blocked inside IngestBatch finishes that
// batch — the contributions land in their pipelines — before its reply
// write fails and the handler exits, so no in-flight batch is lost.
func (s *Server) Shutdown() {
	s.connMu.Lock()
	s.closing = true
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
}

// helloService decodes the service name a user-hello body carries. An
// empty body is the legacy single-tenant hello (empty name).
func helloService(body []byte) (string, error) {
	if len(body) == 0 {
		return "", nil
	}
	var r wire.Reader
	r.Reset(body)
	name := r.BytesView()
	if err := r.Done(); err != nil {
		return "", fmt.Errorf("gaas: hello body: %w", err)
	}
	return string(name), nil
}

// EncodeHelloBody encodes the tenant-bearing user-hello body: the service
// name the client wants hosted. This is the frame-level routing key of the
// multi-tenant protocol, so its encoding is pinned by golden-vector tests.
func EncodeHelloBody(service string) []byte {
	return wire.NewWriter().String(service).Finish()
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	// The session enclave is loaded lazily, on the first user-hello, from
	// the tenant the hello names; a later hello on the same connection
	// replaces the session (and its enclave) wholesale.
	var dev *glimmer.Device
	defer func() {
		if dev != nil {
			dev.Destroy()
		}
	}()
	// The connection loop owns one frame buffer and one batch-header
	// scratch: frames are read into the buffer in place, command bodies are
	// views into it, and both live exactly until the next frame. Handlers
	// must not retain the body (the enclave boundary copies its inputs;
	// Ingestor documents the same rule).
	var readBuf []byte
	var batchScratch [][]byte
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return
			}
		}
		cmd, body, buf, err := readFrameInto(conn, readBuf)
		readBuf = buf
		if err != nil {
			return // disconnect
		}
		var out []byte
		switch string(cmd) {
		case cmdUserHello:
			dev, out, err = s.openSession(dev, body)
		case cmdUserComplete:
			if dev == nil {
				err = errNoSession
			} else {
				err = dev.UserComplete(body)
			}
		case cmdUserContribute:
			if dev == nil {
				err = errNoSession
			} else {
				out, err = dev.UserContribute(body)
			}
		case cmdSubmitBatch:
			out, batchScratch, err = s.handleSubmitBatch(body, batchScratch)
		case cmdTicketGrant:
			out, err = s.handleTicketGrant(body)
		default:
			err = fmt.Errorf("unknown command %q", cmd)
		}
		if err != nil {
			// Error strings cross the network; they carry no private data
			// by construction (glimmer errors are generic).
			if werr := writeFrame(conn, "error", []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if werr := writeFrame(conn, "ok", out); werr != nil {
			return
		}
	}
}

var errNoSession = errors.New("gaas: no session enclave (send user-hello first)")

// openSession resolves the hello's tenant, loads and provisions a fresh
// enclave for it, and starts the user handshake. Any previous session
// enclave on the connection is destroyed first.
func (s *Server) openSession(prev *glimmer.Device, body []byte) (*glimmer.Device, []byte, error) {
	service, err := helloService(body)
	if err != nil {
		return prev, nil, err
	}
	cfg, provision, err := s.resolve.ResolveHost(service)
	if err != nil {
		return prev, nil, err
	}
	dev, err := glimmer.NewDevice(s.platform, cfg)
	if err != nil {
		return prev, nil, err
	}
	if provision != nil {
		if err := provision(dev); err != nil {
			dev.Destroy()
			return prev, nil, errors.New("provisioning failed")
		}
	}
	out, err := dev.UserHello()
	if err != nil {
		dev.Destroy()
		return prev, nil, err
	}
	if prev != nil {
		prev.Destroy()
	}
	return dev, out, nil
}

// handleSubmitBatch decodes a batch frame without copying (the items are
// views into the connection's frame buffer, valid for exactly as long as
// the blocking IngestBatch call below), hands it to the ingest pipeline,
// and encodes the accepted/rejected tallies. The item-header scratch is
// threaded back to the caller for reuse on the next batch.
func (s *Server) handleSubmitBatch(body []byte, scratch [][]byte) ([]byte, [][]byte, error) {
	if s.ingest == nil {
		return nil, scratch, errors.New("server does not accept contribution batches")
	}
	items, err := wire.DecodeBatchInto(body, scratch)
	if err != nil {
		return nil, scratch, err
	}
	// Per-item errors stay server-side: the reply is tallies only, so the
	// frame stays O(1) regardless of batch size.
	accepted, _ := s.ingest.IngestBatch(items)
	reply := binary.BigEndian.AppendUint32(make([]byte, 0, 8), uint32(accepted))
	reply = binary.BigEndian.AppendUint32(reply, uint32(len(items)-accepted))
	// Drop the item views before recycling the scratch: stale headers
	// would otherwise keep the (possibly replaced) frame buffer alive.
	clear(items)
	return reply, items[:0], nil
}

// handleTicketGrant forwards a signed ticket request to the ingest side's
// granter. The request and grant are both public by construction (the
// session key is derived, never carried), so they travel outside any
// attested session — exactly like the signed contributions they amortize.
func (s *Server) handleTicketGrant(body []byte) ([]byte, error) {
	granter, ok := s.ingest.(TicketGranter)
	if !ok {
		return nil, errors.New("server does not grant session tickets")
	}
	// The body is a view into the connection's frame buffer; the granter
	// decodes (copying) before the next frame can be read, satisfying the
	// same must-not-retain contract as IngestBatch.
	return granter.GrantTicket(body)
}

// Client is an IoT device using a remote Glimmer. It has no TEE of its
// own; its trust comes entirely from quote verification.
type Client struct {
	conn    net.Conn
	session *attest.Session
}

// Client errors.
var (
	ErrRemote   = errors.New("gaas: remote error")
	ErrRejected = errors.New("gaas: contribution rejected by remote glimmer")
)

// Dial connects to a Glimmer host and establishes the attested user
// session. The verifier must allowlist the expected Glimmer measurement —
// pinning published measurements is what lets the client trust a machine it
// does not own.
func Dial(addr string, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gaas: dial: %w", err)
	}
	c, err := DialConn(conn, verifier, serviceName)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// DialConn establishes the attested user session over an existing
// connection — an in-memory pipe, a unix socket, or any other transport
// that reaches a Glimmer host. The caller retains ownership of conn when
// the handshake fails.
func DialConn(conn net.Conn, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	c := &Client{conn: conn}
	if err := c.handshake(verifier, serviceName); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) roundTrip(cmd string, body []byte) ([]byte, error) {
	if err := writeFrame(c.conn, cmd, body); err != nil {
		return nil, err
	}
	return c.readReply()
}

// readReply reads one response frame and maps a non-ok status to
// ErrRemote — the shared reply tail for roundTrip and SubmitBatch (which
// writes its request through the pooled encode-once path instead).
func (c *Client) readReply() ([]byte, error) {
	status, out, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if status != "ok" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, out)
	}
	return out, nil
}

func (c *Client) handshake(verifier *tee.QuoteVerifier, serviceName string) error {
	// The hello names the service: a multi-tenant host loads this session's
	// enclave from that tenant's configuration (frame-level routing).
	helloBytes, err := c.roundTrip(cmdUserHello, EncodeHelloBody(serviceName))
	if err != nil {
		return err
	}
	hello, err := attest.DecodeHello(helloBytes)
	if err != nil {
		return err
	}
	session, resp, err := attest.Respond(hello, verifier, nil, glimmer.UserContext(serviceName))
	if err != nil {
		return fmt.Errorf("gaas: remote glimmer not genuine: %w", err)
	}
	if _, err := c.roundTrip(cmdUserComplete, attest.EncodeResponse(resp)); err != nil {
		return err
	}
	c.session = session
	return nil
}

// Contribute submits a contribution with its private validation data over
// the attested session and returns the signed, blinded result.
func (c *Client) Contribute(round uint64, contribution fixed.Vector, private []int64) (glimmer.SignedContribution, error) {
	req := glimmer.ContributionRequest{
		Round:        round,
		Contribution: glimmer.VectorToBits(contribution),
		Private:      glimmer.Int64sToBits(private),
	}
	record, err := c.session.Send(glimmer.EncodeContribution(req))
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	replyRecord, err := c.roundTrip(cmdUserContribute, record)
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	reply, err := c.session.Recv(replyRecord)
	if err != nil {
		return glimmer.SignedContribution{}, fmt.Errorf("gaas: reply authentication: %w", err)
	}
	switch {
	case string(reply) == "rejected":
		return glimmer.SignedContribution{}, ErrRejected
	case len(reply) > len("accepted:") && string(reply[:len("accepted:")]) == "accepted:":
		return glimmer.DecodeSignedContribution(reply[len("accepted:"):])
	}
	return glimmer.SignedContribution{}, fmt.Errorf("%w: malformed reply", ErrRemote)
}

// RequestTicket forwards an enclave's signed ticket request
// (glimmer.Device.TicketRequest) to the host's service side and returns
// the grant to install (glimmer.Device.InstallTicket) — one round trip,
// one ECDSA verification server-side, and every contribution after it
// rides the MAC fast path. Renewal is the same call again: when SubmitBatch
// tallies start rejecting a session whose ticket has expired, re-run the
// exchange and re-seal.
func (c *Client) RequestTicket(request []byte) ([]byte, error) {
	return c.roundTrip(cmdTicketGrant, request)
}

// ErrBatchTooLarge is returned by SubmitBatch when the encoded batch
// would exceed the protocol's frame limit; split the batch and retry.
var ErrBatchTooLarge = errors.New("gaas: batch exceeds frame limit")

// SubmitBatch forwards signed contributions to the host's aggregation
// pipeline in one round trip and returns the server's accepted/rejected
// tallies. The host must have ingest enabled (gaas servers co-located with
// the service, like cmd/glimmerd).
//
// The batch frame is encoded exactly once, directly into a pooled buffer,
// and written in a single call. Earlier versions encoded the batch body
// and then re-encoded it inside the frame wrapper — twice the bytes, twice
// the copies — and paid that full cost again just to discover the frame
// was oversized before a split-and-retry. The size check is now arithmetic
// (wire.EncodedBatchSize), so the retryable ErrBatchTooLarge path encodes
// nothing at all.
func (c *Client) SubmitBatch(raws [][]byte) (accepted, rejected int, err error) {
	// Check the protocol limits client-side: the server rejects an
	// oversized frame by dropping the connection (losing the session with
	// only an opaque I/O error) and an over-count batch with a generic
	// remote error; both cases should be the distinguishable "split and
	// retry" error.
	if len(raws) > wire.MaxBatchItems {
		return 0, 0, fmt.Errorf("%w: %d items", ErrBatchTooLarge, len(raws))
	}
	batchSize := wire.EncodedBatchSize(raws)
	if batchSize > MaxFrame-64 {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrBatchTooLarge, batchSize)
	}
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFrameHeader((*bufp)[:0], cmdSubmitBatch, batchSize)
	buf = wire.AppendBatch(buf, raws)
	_, err = c.conn.Write(buf)
	*bufp = buf[:0]
	putFrameBuf(bufp)
	if err != nil {
		return 0, 0, fmt.Errorf("gaas: write frame: %w", err)
	}
	reply, err := c.readReply()
	if err != nil {
		return 0, 0, err
	}
	var r wire.Reader
	r.Reset(reply)
	accepted = int(r.Uint32())
	rejected = int(r.Uint32())
	if err := r.Done(); err != nil {
		return 0, 0, fmt.Errorf("gaas: submit reply: %w", err)
	}
	return accepted, rejected, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
