// Package gaas implements Glimmer-as-a-service (§4.2 of the paper): IoT
// and other devices without trusted-computing hardware use a Glimmer hosted
// by a neutral third party — another device owned by the same user, a
// university, or an organization like the EFF.
//
// The one requirement the paper states is that "the client device needs to
// establish that it is sending its private data to a genuine Glimmer". The
// client therefore runs the same attestation-bound handshake a service
// would: it verifies the hosted enclave's quote against the published
// measurement, binds a session to it, and only then transmits the
// contribution and private validation data. The hosting party relays opaque
// ciphertext; it sees neither inputs nor verdicts.
//
// The serving side is shaped like net/http: commands are routes on a
// ServeMux (see Handler), tenants mount like handlers, and a Server built
// from a ServerConfig owns the transport — TLS, per-connection deadlines,
// connection caps, and load shedding. The client side mirrors it with
// DialContext, per-call timeouts, and a TOFU known-hosts store pinning
// service names to enclave measurements.
package gaas

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"glimmers/internal/glimmer"
	"glimmers/internal/wire"
)

// MaxFrame bounds one protocol frame (16 MiB).
const MaxFrame = 16 << 20

// Protocol commands.
const (
	cmdUserHello      = "user-hello"
	cmdUserComplete   = "user-complete"
	cmdUserContribute = "user-contribute"
	cmdSubmitBatch    = "submit-batch"
	cmdTicketGrant    = "ticket-grant"
)

// Frame I/O: u32 big-endian length prefix, then a wire message of
// {command/status, body}.

// frameBufPool recycles frame encode buffers so the per-frame hot path
// (server replies, batch submits) allocates nothing at steady state.
// Oversized buffers are not returned to the pool, so one giant batch frame
// cannot pin megabytes for the lifetime of the process.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// maxPooledFrame caps what goes back into frameBufPool.
const maxPooledFrame = 1 << 20

func putFrameBuf(bufp *[]byte) {
	if cap(*bufp) <= maxPooledFrame {
		frameBufPool.Put(bufp)
	}
}

// appendFrameHeader appends the frame length prefix and the tag field for
// a frame whose body will be bodyLen bytes. The caller appends the body's
// length prefix and content (or uses appendFrame for the common case).
func appendFrameHeader(dst []byte, tag string, bodyLen int) []byte {
	payloadLen := 4 + len(tag) + 4 + bodyLen
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(tag)))
	dst = append(dst, tag...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	return dst
}

// appendFrame appends a complete encoded frame — identical bytes to the
// original two-write encoding, but built in one pass so the transport
// issues a single Write per frame.
func appendFrame(dst []byte, tag string, body []byte) []byte {
	dst = appendFrameHeader(dst, tag, len(body))
	return append(dst, body...)
}

func writeFrame(w io.Writer, tag string, body []byte) error {
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFrame((*bufp)[:0], tag, body)
	_, err := w.Write(buf)
	*bufp = buf[:0]
	putFrameBuf(bufp)
	if err != nil {
		return fmt.Errorf("gaas: write frame: %w", err)
	}
	return nil
}

// readFrameLen reads and validates one frame's length prefix. It is split
// from readFramePayload so the serving loop can apply two different
// deadlines: an idle deadline while waiting for a frame to start, and a
// read deadline once one has — a trickling sender (slowloris) cannot hold
// a connection open by drip-feeding body bytes under the idle limit.
func readFrameLen(r io.Reader) (uint32, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	return n, nil
}

// readFramePayload reads an n-byte frame payload into buf, growing it only
// when the frame exceeds its capacity, and returns the tag and body as
// views into it plus the (possibly grown) buffer for the next call. The
// views are valid until buf's next reuse — per-connection loops own their
// buffer, so a frame's views live exactly until the next frame is read.
func readFramePayload(r io.Reader, n uint32, buf []byte) (tag, body, next []byte, err error) {
	// Shrink before growing past need: one giant frame must not pin a
	// MaxFrame-sized buffer for the connection's lifetime once traffic
	// returns to normal (the same discipline maxPooledFrame applies to the
	// encode pool). The previous frame's views are dead by the time the
	// next read starts, so replacing the buffer here is safe.
	if cap(buf) < int(n) || (cap(buf) > maxPooledFrame && int(n) <= maxPooledFrame) {
		// 25% headroom so a stream of slowly growing frames amortizes
		// instead of reallocating on every new size maximum.
		buf = make([]byte, n, int(n)+int(n)/4)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, nil, buf, fmt.Errorf("gaas: read frame: %w", err)
	}
	var wr wire.Reader
	wr.Reset(buf)
	tag = wr.BytesView()
	body = wr.BytesView()
	if err := wr.Done(); err != nil {
		return nil, nil, buf, fmt.Errorf("gaas: frame payload: %w", err)
	}
	return tag, body, buf, nil
}

// readFrameInto reads one complete frame into buf — the single-deadline
// composition of readFrameLen and readFramePayload, for callers that do
// not distinguish idle from mid-frame time.
func readFrameInto(r io.Reader, buf []byte) (tag, body, next []byte, err error) {
	n, err := readFrameLen(r)
	if err != nil {
		return nil, nil, buf, err
	}
	return readFramePayload(r, n, buf)
}

// readFrame reads one frame into fresh memory; callers that retain the
// body (client handshakes) use this instead of readFrameInto.
func readFrame(r io.Reader) (string, []byte, error) {
	tag, body, _, err := readFrameInto(r, nil)
	if err != nil {
		return "", nil, err
	}
	return string(tag), body, nil
}

// Ingestor accepts batches of encoded signed contributions and reports
// how many were accepted, with one error slot per input.
// service.RoundManager satisfies it for a single tenant; service.Registry
// satisfies it with frame-level routing across tenants.
//
// IngestBatch must not retain any raws slice after it returns: the server
// hands it views into a per-connection frame buffer that is reused for the
// next frame (service.RoundManager copies everything it keeps, so it
// qualifies). On the ticketed fast path those views flow through the
// service layer's batch plan untouched — MAC preimages and vector lanes
// are read in place (see service.Pipeline.AddBatchErrs), so a frame's
// contributions reach the shard accumulators with zero copies.
type Ingestor interface {
	IngestBatch(raws [][]byte) (accepted int, errs []error)
}

// TicketGranter runs the service side of the attested-session-ticket
// exchange: one signed request in, one grant out (see
// service.RoundManager.GrantTicket). service.Registry satisfies it with
// per-tenant routing. A mux whose Ingestor also implements TicketGranter
// serves the ticket-grant command; ticket renewal is simply another grant
// (clients re-run the exchange when ingest starts refusing with the
// ticket-expired error), and an expired or unknown ticket never grants
// anything implicitly — the refusal travels back as a normal error frame.
type TicketGranter interface {
	GrantTicket(request []byte) (grant []byte, err error)
}

// HostResolver maps the service name a client's hello carries to the
// enclave that tenant's user sessions run in. service.Registry satisfies
// it; single-tenant servers use ServeMux.Mount. The empty name is the
// legacy hello: resolvers should map it to their sole tenant when that is
// unambiguous.
type HostResolver interface {
	ResolveHost(service string) (glimmer.Config, func(*glimmer.Device) error, error)
}

// helloService decodes the service name a user-hello body carries. An
// empty body is the legacy single-tenant hello (empty name).
func helloService(body []byte) (string, error) {
	if len(body) == 0 {
		return "", nil
	}
	var r wire.Reader
	r.Reset(body)
	name := r.BytesView()
	if err := r.Done(); err != nil {
		return "", fmt.Errorf("gaas: hello body: %w", err)
	}
	return string(name), nil
}

// EncodeHelloBody encodes the tenant-bearing user-hello body: the service
// name the client wants hosted. This is the frame-level routing key of the
// multi-tenant protocol, so its encoding is pinned by golden-vector tests.
func EncodeHelloBody(service string) []byte {
	return wire.NewWriter().String(service).Finish()
}
