// Package gaas implements Glimmer-as-a-service (§4.2 of the paper): IoT
// and other devices without trusted-computing hardware use a Glimmer hosted
// by a neutral third party — another device owned by the same user, a
// university, or an organization like the EFF.
//
// The one requirement the paper states is that "the client device needs to
// establish that it is sending its private data to a genuine Glimmer". The
// client therefore runs the same attestation-bound handshake a service
// would: it verifies the hosted enclave's quote against the published
// measurement, binds a session to it, and only then transmits the
// contribution and private validation data. The hosting party relays opaque
// ciphertext; it sees neither inputs nor verdicts.
package gaas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"glimmers/internal/attest"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// MaxFrame bounds one protocol frame (16 MiB).
const MaxFrame = 16 << 20

// Protocol commands.
const (
	cmdUserHello      = "user-hello"
	cmdUserComplete   = "user-complete"
	cmdUserContribute = "user-contribute"
	cmdSubmitBatch    = "submit-batch"
)

// Frame I/O: u32 big-endian length prefix, then a wire message of
// {command/status, body}.

// frameBufPool recycles frame encode buffers so the per-frame hot path
// (server replies, batch submits) allocates nothing at steady state.
// Oversized buffers are not returned to the pool, so one giant batch frame
// cannot pin megabytes for the lifetime of the process.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// maxPooledFrame caps what goes back into frameBufPool.
const maxPooledFrame = 1 << 20

func putFrameBuf(bufp *[]byte) {
	if cap(*bufp) <= maxPooledFrame {
		frameBufPool.Put(bufp)
	}
}

// appendFrameHeader appends the frame length prefix and the tag field for
// a frame whose body will be bodyLen bytes. The caller appends the body's
// length prefix and content (or uses appendFrame for the common case).
func appendFrameHeader(dst []byte, tag string, bodyLen int) []byte {
	payloadLen := 4 + len(tag) + 4 + bodyLen
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(tag)))
	dst = append(dst, tag...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	return dst
}

// appendFrame appends a complete encoded frame — identical bytes to the
// original two-write encoding, but built in one pass so the transport
// issues a single Write per frame.
func appendFrame(dst []byte, tag string, body []byte) []byte {
	dst = appendFrameHeader(dst, tag, len(body))
	return append(dst, body...)
}

func writeFrame(w io.Writer, tag string, body []byte) error {
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFrame((*bufp)[:0], tag, body)
	_, err := w.Write(buf)
	*bufp = buf[:0]
	putFrameBuf(bufp)
	if err != nil {
		return fmt.Errorf("gaas: write frame: %w", err)
	}
	return nil
}

// readFrameInto reads one frame into buf, growing it only when the frame
// exceeds its capacity, and returns the tag and body as views into it plus
// the (possibly grown) buffer for the next call. The views are valid until
// buf's next reuse — per-connection loops own their buffer, so a frame's
// views live exactly until the next frame is read.
func readFrameInto(r io.Reader, buf []byte) (tag, body, next []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, nil, buf, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, nil, buf, fmt.Errorf("gaas: frame of %d bytes exceeds limit", n)
	}
	// Shrink before growing past need: one giant frame must not pin a
	// MaxFrame-sized buffer for the connection's lifetime once traffic
	// returns to normal (the same discipline maxPooledFrame applies to the
	// encode pool). The previous frame's views are dead by the time the
	// next read starts, so replacing the buffer here is safe.
	if cap(buf) < int(n) || (cap(buf) > maxPooledFrame && int(n) <= maxPooledFrame) {
		// 25% headroom so a stream of slowly growing frames amortizes
		// instead of reallocating on every new size maximum.
		buf = make([]byte, n, int(n)+int(n)/4)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, nil, buf, fmt.Errorf("gaas: read frame: %w", err)
	}
	var wr wire.Reader
	wr.Reset(buf)
	tag = wr.BytesView()
	body = wr.BytesView()
	if err := wr.Done(); err != nil {
		return nil, nil, buf, fmt.Errorf("gaas: frame payload: %w", err)
	}
	return tag, body, buf, nil
}

// readFrame reads one frame into fresh memory; callers that retain the
// body (client handshakes) use this instead of readFrameInto.
func readFrame(r io.Reader) (string, []byte, error) {
	tag, body, _, err := readFrameInto(r, nil)
	if err != nil {
		return "", nil, err
	}
	return string(tag), body, nil
}

// Ingestor accepts batches of encoded signed contributions and reports
// how many were accepted, with one error slot per input.
// service.RoundManager satisfies it.
//
// IngestBatch must not retain any raws slice after it returns: the server
// hands it views into a per-connection frame buffer that is reused for the
// next frame (service.RoundManager copies everything it keeps, so it
// qualifies).
type Ingestor interface {
	IngestBatch(raws [][]byte) (accepted int, errs []error)
}

// Server hosts Glimmer enclaves for remote clients: one freshly loaded,
// freshly provisioned enclave per connection, so client sessions cannot
// interfere.
type Server struct {
	platform *tee.Platform
	cfg      glimmer.Config
	// provision readies a freshly loaded device (typically by running the
	// service's provisioning protocol against it).
	provision func(*glimmer.Device) error
	// ingest, when non-nil, accepts submit-batch frames: signed, blinded
	// contributions forwarded straight to the service's aggregation
	// pipeline so clients need one round trip for a whole cohort. The
	// contributions are public by construction (signed and blinded), so
	// they travel outside the per-user attested session.
	ingest Ingestor
}

// NewServer creates a Glimmer host.
func NewServer(platform *tee.Platform, cfg glimmer.Config, provision func(*glimmer.Device) error) *Server {
	return &Server{platform: platform, cfg: cfg, provision: provision}
}

// SetIngest enables the submit-batch command, forwarding batches to ing.
// Must be called before Serve.
func (s *Server) SetIngest(ing Ingestor) { s.ingest = ing }

// Measurement returns the measurement clients must pin.
func (s *Server) Measurement() tee.Measurement {
	return glimmer.BuildBinary(s.cfg).Measurement()
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("gaas: accept: %w", err)
		}
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	dev, err := glimmer.NewDevice(s.platform, s.cfg)
	if err != nil {
		_ = writeFrame(conn, "error", []byte(err.Error()))
		return
	}
	defer dev.Destroy()
	if s.provision != nil {
		if err := s.provision(dev); err != nil {
			_ = writeFrame(conn, "error", []byte("provisioning failed"))
			return
		}
	}
	// The connection loop owns one frame buffer and one batch-header
	// scratch: frames are read into the buffer in place, command bodies are
	// views into it, and both live exactly until the next frame. Handlers
	// must not retain the body (the enclave boundary copies its inputs;
	// Ingestor documents the same rule).
	var readBuf []byte
	var batchScratch [][]byte
	for {
		cmd, body, buf, err := readFrameInto(conn, readBuf)
		readBuf = buf
		if err != nil {
			return // disconnect
		}
		var out []byte
		switch string(cmd) {
		case cmdUserHello:
			out, err = dev.UserHello()
		case cmdUserComplete:
			err = dev.UserComplete(body)
		case cmdUserContribute:
			out, err = dev.UserContribute(body)
		case cmdSubmitBatch:
			out, batchScratch, err = s.handleSubmitBatch(body, batchScratch)
		default:
			err = fmt.Errorf("unknown command %q", cmd)
		}
		if err != nil {
			// Error strings cross the network; they carry no private data
			// by construction (glimmer errors are generic).
			if werr := writeFrame(conn, "error", []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if werr := writeFrame(conn, "ok", out); werr != nil {
			return
		}
	}
}

// handleSubmitBatch decodes a batch frame without copying (the items are
// views into the connection's frame buffer, valid for exactly as long as
// the blocking IngestBatch call below), hands it to the ingest pipeline,
// and encodes the accepted/rejected tallies. The item-header scratch is
// threaded back to the caller for reuse on the next batch.
func (s *Server) handleSubmitBatch(body []byte, scratch [][]byte) ([]byte, [][]byte, error) {
	if s.ingest == nil {
		return nil, scratch, errors.New("server does not accept contribution batches")
	}
	items, err := wire.DecodeBatchInto(body, scratch)
	if err != nil {
		return nil, scratch, err
	}
	// Per-item errors stay server-side: the reply is tallies only, so the
	// frame stays O(1) regardless of batch size.
	accepted, _ := s.ingest.IngestBatch(items)
	reply := binary.BigEndian.AppendUint32(make([]byte, 0, 8), uint32(accepted))
	reply = binary.BigEndian.AppendUint32(reply, uint32(len(items)-accepted))
	// Drop the item views before recycling the scratch: stale headers
	// would otherwise keep the (possibly replaced) frame buffer alive.
	clear(items)
	return reply, items[:0], nil
}

// Client is an IoT device using a remote Glimmer. It has no TEE of its
// own; its trust comes entirely from quote verification.
type Client struct {
	conn    net.Conn
	session *attest.Session
}

// Client errors.
var (
	ErrRemote   = errors.New("gaas: remote error")
	ErrRejected = errors.New("gaas: contribution rejected by remote glimmer")
)

// Dial connects to a Glimmer host and establishes the attested user
// session. The verifier must allowlist the expected Glimmer measurement —
// pinning published measurements is what lets the client trust a machine it
// does not own.
func Dial(addr string, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gaas: dial: %w", err)
	}
	c, err := DialConn(conn, verifier, serviceName)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// DialConn establishes the attested user session over an existing
// connection — an in-memory pipe, a unix socket, or any other transport
// that reaches a Glimmer host. The caller retains ownership of conn when
// the handshake fails.
func DialConn(conn net.Conn, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	c := &Client{conn: conn}
	if err := c.handshake(verifier, serviceName); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) roundTrip(cmd string, body []byte) ([]byte, error) {
	if err := writeFrame(c.conn, cmd, body); err != nil {
		return nil, err
	}
	return c.readReply()
}

// readReply reads one response frame and maps a non-ok status to
// ErrRemote — the shared reply tail for roundTrip and SubmitBatch (which
// writes its request through the pooled encode-once path instead).
func (c *Client) readReply() ([]byte, error) {
	status, out, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if status != "ok" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, out)
	}
	return out, nil
}

func (c *Client) handshake(verifier *tee.QuoteVerifier, serviceName string) error {
	helloBytes, err := c.roundTrip(cmdUserHello, nil)
	if err != nil {
		return err
	}
	hello, err := attest.DecodeHello(helloBytes)
	if err != nil {
		return err
	}
	session, resp, err := attest.Respond(hello, verifier, nil, glimmer.UserContext(serviceName))
	if err != nil {
		return fmt.Errorf("gaas: remote glimmer not genuine: %w", err)
	}
	if _, err := c.roundTrip(cmdUserComplete, attest.EncodeResponse(resp)); err != nil {
		return err
	}
	c.session = session
	return nil
}

// Contribute submits a contribution with its private validation data over
// the attested session and returns the signed, blinded result.
func (c *Client) Contribute(round uint64, contribution fixed.Vector, private []int64) (glimmer.SignedContribution, error) {
	req := glimmer.ContributionRequest{
		Round:        round,
		Contribution: glimmer.VectorToBits(contribution),
		Private:      glimmer.Int64sToBits(private),
	}
	record, err := c.session.Send(glimmer.EncodeContribution(req))
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	replyRecord, err := c.roundTrip(cmdUserContribute, record)
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	reply, err := c.session.Recv(replyRecord)
	if err != nil {
		return glimmer.SignedContribution{}, fmt.Errorf("gaas: reply authentication: %w", err)
	}
	switch {
	case string(reply) == "rejected":
		return glimmer.SignedContribution{}, ErrRejected
	case len(reply) > len("accepted:") && string(reply[:len("accepted:")]) == "accepted:":
		return glimmer.DecodeSignedContribution(reply[len("accepted:"):])
	}
	return glimmer.SignedContribution{}, fmt.Errorf("%w: malformed reply", ErrRemote)
}

// ErrBatchTooLarge is returned by SubmitBatch when the encoded batch
// would exceed the protocol's frame limit; split the batch and retry.
var ErrBatchTooLarge = errors.New("gaas: batch exceeds frame limit")

// SubmitBatch forwards signed contributions to the host's aggregation
// pipeline in one round trip and returns the server's accepted/rejected
// tallies. The host must have ingest enabled (gaas servers co-located with
// the service, like cmd/glimmerd).
//
// The batch frame is encoded exactly once, directly into a pooled buffer,
// and written in a single call. Earlier versions encoded the batch body
// and then re-encoded it inside the frame wrapper — twice the bytes, twice
// the copies — and paid that full cost again just to discover the frame
// was oversized before a split-and-retry. The size check is now arithmetic
// (wire.EncodedBatchSize), so the retryable ErrBatchTooLarge path encodes
// nothing at all.
func (c *Client) SubmitBatch(raws [][]byte) (accepted, rejected int, err error) {
	// Check the protocol limits client-side: the server rejects an
	// oversized frame by dropping the connection (losing the session with
	// only an opaque I/O error) and an over-count batch with a generic
	// remote error; both cases should be the distinguishable "split and
	// retry" error.
	if len(raws) > wire.MaxBatchItems {
		return 0, 0, fmt.Errorf("%w: %d items", ErrBatchTooLarge, len(raws))
	}
	batchSize := wire.EncodedBatchSize(raws)
	if batchSize > MaxFrame-64 {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrBatchTooLarge, batchSize)
	}
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFrameHeader((*bufp)[:0], cmdSubmitBatch, batchSize)
	buf = wire.AppendBatch(buf, raws)
	_, err = c.conn.Write(buf)
	*bufp = buf[:0]
	putFrameBuf(bufp)
	if err != nil {
		return 0, 0, fmt.Errorf("gaas: write frame: %w", err)
	}
	reply, err := c.readReply()
	if err != nil {
		return 0, 0, err
	}
	var r wire.Reader
	r.Reset(reply)
	accepted = int(r.Uint32())
	rejected = int(r.Uint32())
	if err := r.Done(); err != nil {
		return 0, 0, fmt.Errorf("gaas: submit reply: %w", err)
	}
	return accepted, rejected, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
