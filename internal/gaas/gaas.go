// Package gaas implements Glimmer-as-a-service (§4.2 of the paper): IoT
// and other devices without trusted-computing hardware use a Glimmer hosted
// by a neutral third party — another device owned by the same user, a
// university, or an organization like the EFF.
//
// The one requirement the paper states is that "the client device needs to
// establish that it is sending its private data to a genuine Glimmer". The
// client therefore runs the same attestation-bound handshake a service
// would: it verifies the hosted enclave's quote against the published
// measurement, binds a session to it, and only then transmits the
// contribution and private validation data. The hosting party relays opaque
// ciphertext; it sees neither inputs nor verdicts.
package gaas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"glimmers/internal/attest"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// MaxFrame bounds one protocol frame (16 MiB).
const MaxFrame = 16 << 20

// Protocol commands.
const (
	cmdUserHello      = "user-hello"
	cmdUserComplete   = "user-complete"
	cmdUserContribute = "user-contribute"
	cmdSubmitBatch    = "submit-batch"
)

// Frame I/O: u32 big-endian length prefix, then a wire message of
// {command/status, body}.

func writeFrame(w io.Writer, tag string, body []byte) error {
	payload := wire.NewWriter().String(tag).Bytes(body).Finish()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("gaas: write frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("gaas: write frame: %w", err)
	}
	return nil
}

func readFrame(r io.Reader) (string, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return "", nil, fmt.Errorf("gaas: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, fmt.Errorf("gaas: read frame: %w", err)
	}
	wr := wire.NewReader(payload)
	tag := wr.String()
	body := wr.Bytes()
	if err := wr.Done(); err != nil {
		return "", nil, fmt.Errorf("gaas: frame payload: %w", err)
	}
	return tag, body, nil
}

// Ingestor accepts batches of encoded signed contributions and reports
// how many were accepted, with one error slot per input.
// service.RoundManager satisfies it.
type Ingestor interface {
	IngestBatch(raws [][]byte) (accepted int, errs []error)
}

// Server hosts Glimmer enclaves for remote clients: one freshly loaded,
// freshly provisioned enclave per connection, so client sessions cannot
// interfere.
type Server struct {
	platform *tee.Platform
	cfg      glimmer.Config
	// provision readies a freshly loaded device (typically by running the
	// service's provisioning protocol against it).
	provision func(*glimmer.Device) error
	// ingest, when non-nil, accepts submit-batch frames: signed, blinded
	// contributions forwarded straight to the service's aggregation
	// pipeline so clients need one round trip for a whole cohort. The
	// contributions are public by construction (signed and blinded), so
	// they travel outside the per-user attested session.
	ingest Ingestor
}

// NewServer creates a Glimmer host.
func NewServer(platform *tee.Platform, cfg glimmer.Config, provision func(*glimmer.Device) error) *Server {
	return &Server{platform: platform, cfg: cfg, provision: provision}
}

// SetIngest enables the submit-batch command, forwarding batches to ing.
// Must be called before Serve.
func (s *Server) SetIngest(ing Ingestor) { s.ingest = ing }

// Measurement returns the measurement clients must pin.
func (s *Server) Measurement() tee.Measurement {
	return glimmer.BuildBinary(s.cfg).Measurement()
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("gaas: accept: %w", err)
		}
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	dev, err := glimmer.NewDevice(s.platform, s.cfg)
	if err != nil {
		_ = writeFrame(conn, "error", []byte(err.Error()))
		return
	}
	defer dev.Destroy()
	if s.provision != nil {
		if err := s.provision(dev); err != nil {
			_ = writeFrame(conn, "error", []byte("provisioning failed"))
			return
		}
	}
	for {
		cmd, body, err := readFrame(conn)
		if err != nil {
			return // disconnect
		}
		var out []byte
		switch cmd {
		case cmdUserHello:
			out, err = dev.UserHello()
		case cmdUserComplete:
			err = dev.UserComplete(body)
		case cmdUserContribute:
			out, err = dev.UserContribute(body)
		case cmdSubmitBatch:
			out, err = s.handleSubmitBatch(body)
		default:
			err = fmt.Errorf("unknown command %q", cmd)
		}
		if err != nil {
			// Error strings cross the network; they carry no private data
			// by construction (glimmer errors are generic).
			if werr := writeFrame(conn, "error", []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if werr := writeFrame(conn, "ok", out); werr != nil {
			return
		}
	}
}

// handleSubmitBatch decodes a batch frame, hands it to the ingest
// pipeline, and encodes the accepted/rejected tallies.
func (s *Server) handleSubmitBatch(body []byte) ([]byte, error) {
	if s.ingest == nil {
		return nil, errors.New("server does not accept contribution batches")
	}
	items, err := wire.DecodeBatch(body)
	if err != nil {
		return nil, err
	}
	// Per-item errors stay server-side: the reply is tallies only, so the
	// frame stays O(1) regardless of batch size.
	accepted, _ := s.ingest.IngestBatch(items)
	return wire.NewWriter().
		Uint32(uint32(accepted)).
		Uint32(uint32(len(items) - accepted)).
		Finish(), nil
}

// Client is an IoT device using a remote Glimmer. It has no TEE of its
// own; its trust comes entirely from quote verification.
type Client struct {
	conn    net.Conn
	session *attest.Session
}

// Client errors.
var (
	ErrRemote   = errors.New("gaas: remote error")
	ErrRejected = errors.New("gaas: contribution rejected by remote glimmer")
)

// Dial connects to a Glimmer host and establishes the attested user
// session. The verifier must allowlist the expected Glimmer measurement —
// pinning published measurements is what lets the client trust a machine it
// does not own.
func Dial(addr string, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gaas: dial: %w", err)
	}
	c, err := DialConn(conn, verifier, serviceName)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// DialConn establishes the attested user session over an existing
// connection — an in-memory pipe, a unix socket, or any other transport
// that reaches a Glimmer host. The caller retains ownership of conn when
// the handshake fails.
func DialConn(conn net.Conn, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	c := &Client{conn: conn}
	if err := c.handshake(verifier, serviceName); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) roundTrip(cmd string, body []byte) ([]byte, error) {
	if err := writeFrame(c.conn, cmd, body); err != nil {
		return nil, err
	}
	status, out, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if status != "ok" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, out)
	}
	return out, nil
}

func (c *Client) handshake(verifier *tee.QuoteVerifier, serviceName string) error {
	helloBytes, err := c.roundTrip(cmdUserHello, nil)
	if err != nil {
		return err
	}
	hello, err := attest.DecodeHello(helloBytes)
	if err != nil {
		return err
	}
	session, resp, err := attest.Respond(hello, verifier, nil, glimmer.UserContext(serviceName))
	if err != nil {
		return fmt.Errorf("gaas: remote glimmer not genuine: %w", err)
	}
	if _, err := c.roundTrip(cmdUserComplete, attest.EncodeResponse(resp)); err != nil {
		return err
	}
	c.session = session
	return nil
}

// Contribute submits a contribution with its private validation data over
// the attested session and returns the signed, blinded result.
func (c *Client) Contribute(round uint64, contribution fixed.Vector, private []int64) (glimmer.SignedContribution, error) {
	req := glimmer.ContributionRequest{
		Round:        round,
		Contribution: glimmer.VectorToBits(contribution),
		Private:      glimmer.Int64sToBits(private),
	}
	record, err := c.session.Send(glimmer.EncodeContribution(req))
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	replyRecord, err := c.roundTrip(cmdUserContribute, record)
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	reply, err := c.session.Recv(replyRecord)
	if err != nil {
		return glimmer.SignedContribution{}, fmt.Errorf("gaas: reply authentication: %w", err)
	}
	switch {
	case string(reply) == "rejected":
		return glimmer.SignedContribution{}, ErrRejected
	case len(reply) > len("accepted:") && string(reply[:len("accepted:")]) == "accepted:":
		return glimmer.DecodeSignedContribution(reply[len("accepted:"):])
	}
	return glimmer.SignedContribution{}, fmt.Errorf("%w: malformed reply", ErrRemote)
}

// ErrBatchTooLarge is returned by SubmitBatch when the encoded batch
// would exceed the protocol's frame limit; split the batch and retry.
var ErrBatchTooLarge = errors.New("gaas: batch exceeds frame limit")

// SubmitBatch forwards signed contributions to the host's aggregation
// pipeline in one round trip and returns the server's accepted/rejected
// tallies. The host must have ingest enabled (gaas servers co-located with
// the service, like cmd/glimmerd).
func (c *Client) SubmitBatch(raws [][]byte) (accepted, rejected int, err error) {
	// Check the protocol limits client-side: the server rejects an
	// oversized frame by dropping the connection (losing the session with
	// only an opaque I/O error) and an over-count batch with a generic
	// remote error; both cases should be the distinguishable "split and
	// retry" error.
	if len(raws) > wire.MaxBatchItems {
		return 0, 0, fmt.Errorf("%w: %d items", ErrBatchTooLarge, len(raws))
	}
	body := wire.EncodeBatch(raws)
	if len(body) > MaxFrame-64 {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrBatchTooLarge, len(body))
	}
	reply, err := c.roundTrip(cmdSubmitBatch, body)
	if err != nil {
		return 0, 0, err
	}
	r := wire.NewReader(reply)
	accepted = int(r.Uint32())
	rejected = int(r.Uint32())
	if err := r.Done(); err != nil {
		return 0, 0, fmt.Errorf("gaas: submit reply: %w", err)
	}
	return accepted, rejected, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
