package gaas

import (
	"fmt"

	"glimmers/internal/glimmer"
)

// A Handler serves one gaas command frame. The body is a view into the
// connection's frame buffer and is valid only until ServeGlimmer returns —
// handlers that keep data must copy it (the enclave boundary and the
// service pipelines already do). The reply travels back in an "ok" frame;
// a returned error travels back in an "error" frame with the connection
// left open, exactly like an http.Handler writing a non-200 status.
type Handler interface {
	ServeGlimmer(s *Session, body []byte) (reply []byte, err error)
}

// HandlerFunc adapts a function to a Handler, like http.HandlerFunc.
type HandlerFunc func(s *Session, body []byte) ([]byte, error)

// ServeGlimmer calls f(s, body).
func (f HandlerFunc) ServeGlimmer(s *Session, body []byte) ([]byte, error) { return f(s, body) }

// ServeMux routes command frames to handlers, in the shape of
// http.ServeMux: commands register like paths, tenants mount like
// sub-handlers. The built-in session commands (user-hello, user-complete,
// user-contribute) register when a host resolver mounts; submit-batch and
// ticket-grant register when an Ingestor does. Registration must finish
// before the mux serves — the route table is read lock-free on the frame
// hot path.
type ServeMux struct {
	handlers    map[string]Handler
	hosts       HostResolver
	ingest      Ingestor
	granter     TicketGranter
	fleetIngest Ingestor
	merger      PartialMerger
}

// NewServeMux returns a mux with no routes.
func NewServeMux() *ServeMux {
	return &ServeMux{handlers: make(map[string]Handler)}
}

// Handle registers h for command cmd, replacing any previous handler.
func (m *ServeMux) Handle(cmd string, h Handler) {
	if cmd == "" {
		panic("gaas: Handle with empty command")
	}
	m.handlers[cmd] = h
}

// HandleFunc registers f for command cmd.
func (m *ServeMux) HandleFunc(cmd string, f func(*Session, []byte) ([]byte, error)) {
	m.Handle(cmd, HandlerFunc(f))
}

// Mount hosts a single tenant: clients whose hello names this config's
// service (or the legacy empty name) get a freshly provisioned enclave
// built from it. Mount is MountResolver over a fixed single-entry
// resolver — the legacy fixedHost path reduced to one registration.
func (m *ServeMux) Mount(cfg glimmer.Config, provision func(*glimmer.Device) error) {
	m.MountResolver(fixedHost{cfg: cfg, provision: provision})
}

// MountResolver hosts every tenant the resolver knows (service.Registry
// in multi-tenant deployments) and registers the attested user-session
// commands that serve them.
func (m *ServeMux) MountResolver(r HostResolver) {
	m.hosts = r
	m.Handle(cmdUserHello, HandlerFunc((*Session).userHello))
	m.Handle(cmdUserComplete, HandlerFunc((*Session).userComplete))
	m.Handle(cmdUserContribute, HandlerFunc((*Session).userContribute))
}

// HandleIngest registers the submit-batch command, forwarding batches to
// ing, and — when ing also grants tickets (service.Registry,
// service.RoundManager) — the ticket-grant command.
func (m *ServeMux) HandleIngest(ing Ingestor) {
	m.ingest = ing
	m.Handle(cmdSubmitBatch, HandlerFunc((*Session).submitBatch))
	if g, ok := ing.(TicketGranter); ok {
		m.granter = g
		m.Handle(cmdTicketGrant, HandlerFunc((*Session).ticketGrant))
	}
}

// handler looks up cmd's route. The []byte key keeps the frame loop
// allocation-free (the string conversion in a map index does not copy).
func (m *ServeMux) handler(cmd []byte) Handler { return m.handlers[string(cmd)] }

// ResolveHost implements HostResolver by delegating to the mounted
// resolver, so a mux slots in anywhere a resolver does (Server
// measurements, nested muxes).
func (m *ServeMux) ResolveHost(service string) (glimmer.Config, func(*glimmer.Device) error, error) {
	if m.hosts == nil {
		return glimmer.Config{}, nil, fmt.Errorf("gaas: no tenants mounted")
	}
	return m.hosts.ResolveHost(service)
}

// fixedHost is the single-tenant resolver behind ServeMux.Mount: one
// config, one provisioner. It accepts the empty (legacy) name and its own
// service's name, and refuses others — a client asking a single-tenant
// host for a different service should learn so before shipping private
// data.
type fixedHost struct {
	cfg       glimmer.Config
	provision func(*glimmer.Device) error
}

func (h fixedHost) ResolveHost(service string) (glimmer.Config, func(*glimmer.Device) error, error) {
	if service != "" && service != h.cfg.ServiceName {
		return glimmer.Config{}, nil, fmt.Errorf("gaas: host does not serve %q", service)
	}
	return h.cfg, h.provision, nil
}
