package gaas

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

const dim = 3

type world struct {
	as       *tee.AttestationService
	platform *tee.Platform
	svc      *service.Service
	cfg      glimmer.Config
	server   *Server
	addr     string
	// rounds is non-nil when the world was built with ingest enabled
	// (wired before Serve, per SetIngest's contract).
	rounds *service.RoundManager
}

func newWorld(t *testing.T) *world { return newWorldIngest(t, false) }

func newWorldIngest(t *testing.T, withIngest bool) *world {
	t.Helper()
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New("iot.example", as.Root())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("range", dim)); err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	svc.Vet(glimmer.BuildBinary(cfg).Measurement())

	server := NewServer(platform, cfg, func(dev *glimmer.Device) error {
		payload, err := svc.BasePayload()
		if err != nil {
			return err
		}
		return svc.Provision(dev, payload)
	})
	var rounds *service.RoundManager
	if withIngest {
		rounds = service.NewRoundManager(service.PipelineConfig{
			ServiceName: svc.Name(),
			Verify:      svc.ContributionVerifyKey(),
			Dim:         dim,
			Workers:     2,
			Shards:      2,
		})
		rounds.Vet(server.Measurement())
		server.SetIngest(rounds)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = server.Serve(ln) }()
	return &world{
		as: as, platform: platform, svc: svc, cfg: cfg,
		server: server, addr: ln.Addr().String(), rounds: rounds,
	}
}

func (w *world) verifier() *tee.QuoteVerifier {
	v := &tee.QuoteVerifier{Root: w.as.Root()}
	v.Allow(w.server.Measurement())
	return v
}

func TestRemoteContribution(t *testing.T) {
	w := newWorld(t)
	client, err := Dial(w.addr, w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	contribution := fixed.FromFloats([]float64{0.1, 0.5, 0.9})
	sc, err := client.Contribute(1, contribution, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !w.svc.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature) {
		t.Fatal("remote contribution signature invalid")
	}
	agg := service.NewPipeline(service.PipelineConfig{
		ServiceName: w.svc.Name(),
		Verify:      w.svc.ContributionVerifyKey(),
		Dim:         dim,
		Round:       1,
		Workers:     1,
		Shards:      1,
	})
	agg.Vet(w.server.Measurement())
	if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteRejection(t *testing.T) {
	w := newWorld(t)
	client, err := Dial(w.addr, w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	malicious := fixed.FromFloats([]float64{538, 0, 0})
	if _, err := client.Contribute(1, malicious, nil); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	// The connection survives a rejection.
	honest := fixed.FromFloats([]float64{0.1, 0.2, 0.3})
	if _, err := client.Contribute(2, honest, nil); err != nil {
		t.Fatalf("contribution after rejection: %v", err)
	}
}

func TestClientRefusesWrongMeasurement(t *testing.T) {
	w := newWorld(t)
	v := &tee.QuoteVerifier{Root: w.as.Root(), Allowed: []tee.Measurement{{0xBB}}}
	if _, err := Dial(w.addr, v, w.svc.Name()); err == nil {
		t.Fatal("client trusted a glimmer with the wrong measurement")
	}
}

func TestClientRefusesWrongService(t *testing.T) {
	w := newWorld(t)
	if _, err := Dial(w.addr, w.verifier(), "other.example"); err == nil {
		t.Fatal("client accepted a glimmer bound to a different service")
	}
}

func TestConcurrentClients(t *testing.T) {
	w := newWorld(t)
	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(round uint64) {
			client, err := Dial(w.addr, w.verifier(), w.svc.Name())
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			_, err = client.Contribute(round, fixed.FromFloats([]float64{0.1, 0.2, 0.3}), nil)
			errs <- err
		}(uint64(i))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubmitBatchIngest drives the full remote ingest loop: obtain signed
// contributions from the hosted Glimmer, then push them back through the
// daemon's sharded aggregation pipeline in one submit-batch frame.
func TestSubmitBatchIngest(t *testing.T) {
	w := newWorldIngest(t, true)
	rounds := w.rounds

	client, err := Dial(w.addr, w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var raws [][]byte
	for _, val := range []float64{0.1, 0.4, 0.7} {
		sc, err := client.Contribute(1, fixed.FromFloats([]float64{val, val, val}), nil)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, glimmer.EncodeSignedContribution(sc))
	}
	// A duplicate and garbage must be rejected server-side, not kill the
	// batch.
	raws = append(raws, raws[0], []byte("garbage"))

	accepted, rejected, err := client.SubmitBatch(raws)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 3 || rejected != 2 {
		t.Fatalf("submit = (%d accepted, %d rejected), want (3, 2)", accepted, rejected)
	}
	if got := rounds.Round(1).Count(); got != 3 {
		t.Fatalf("pipeline count = %d, want 3", got)
	}
}

// multiTenantWorld hosts two tenants behind one server via a registry.
func multiTenantWorld(t *testing.T) (*tee.AttestationService, *service.Registry, *Server, string) {
	t.Helper()
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	registry := service.NewRegistry(0)
	for name, d := range map[string]int{"alpha.example": 3, "beta.example": 2} {
		svc, err := service.New(name, as.Root())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.SetPredicate(predicate.UnitRangeCheck("range", d)); err != nil {
			t.Fatal(err)
		}
		cfg, err := svc.GlimmerConfig(d, glimmer.ModeNone, glimmer.DefaultPolicy)
		if err != nil {
			t.Fatal(err)
		}
		svc.Vet(glimmer.BuildBinary(cfg).Measurement())
		if _, err := registry.AddTenant(service.TenantConfig{
			Name: name, Verify: svc.ContributionVerifyKey(), Dim: d,
			Glimmer: cfg,
			Provision: func(dev *glimmer.Device) error {
				payload, err := svc.BasePayload()
				if err != nil {
					return err
				}
				return svc.Provision(dev, payload)
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	server := NewTenantServer(platform, registry)
	server.SetIngest(registry)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); server.Shutdown() })
	go func() { _ = server.Serve(ln) }()
	return as, registry, server, ln.Addr().String()
}

// TestMultiTenantHosting drives frame-level routing end to end: each
// client's hello names its tenant, gets that tenant's enclave (distinct
// measurements), and submitted batches land in that tenant's pipeline.
func TestMultiTenantHosting(t *testing.T) {
	as, registry, server, addr := multiTenantWorld(t)
	dims := map[string]int{"alpha.example": 3, "beta.example": 2}
	meas := make(map[string]tee.Measurement)
	for name, d := range dims {
		m, err := server.MeasurementFor(name)
		if err != nil {
			t.Fatal(err)
		}
		meas[name] = m
		verifier := &tee.QuoteVerifier{Root: as.Root()}
		verifier.Allow(m)
		client, err := Dial(addr, verifier, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vals := make([]float64, d)
		for i := range vals {
			vals[i] = 0.25
		}
		sc, err := client.Contribute(1, fixed.FromFloats(vals), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.ServiceName != name {
			t.Fatalf("contribution endorsed for %q, want %q", sc.ServiceName, name)
		}
		accepted, rejected, err := client.SubmitBatch([][]byte{glimmer.EncodeSignedContribution(sc)})
		if err != nil || accepted != 1 || rejected != 0 {
			t.Fatalf("%s: submit = (%d, %d, %v)", name, accepted, rejected, err)
		}
		client.Close()
	}
	if meas["alpha.example"] == meas["beta.example"] {
		t.Fatal("tenants share a measurement; configs not distinct")
	}
	for name := range dims {
		tn, ok := registry.Tenant(name)
		if !ok {
			t.Fatal("tenant missing")
		}
		p, ok := tn.Manager().Lookup(1)
		if !ok || p.Count() != 1 {
			t.Fatalf("tenant %s round 1 count wrong", name)
		}
	}
	// An unknown tenant in the hello is refused before any enclave loads;
	// the multi-tenant legacy empty hello is ambiguous and also refused.
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	verifier.Allow(meas["alpha.example"])
	if _, err := Dial(addr, verifier, "ghost.example"); err == nil {
		t.Fatal("unknown tenant hosted")
	}
}

// TestSubmitBatchWithoutIngest confirms a host with no pipeline refuses
// the command instead of dropping the connection.
func TestSubmitBatchWithoutIngest(t *testing.T) {
	w := newWorld(t)
	client, err := Dial(w.addr, w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, _, err := client.SubmitBatch([][]byte{[]byte("x")}); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestFrameCodec(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_ = writeFrame(c1, "hello", []byte("payload"))
	}()
	tag, body, err := readFrame(c2)
	if err != nil {
		t.Fatal(err)
	}
	if tag != "hello" || string(body) != "payload" {
		t.Fatalf("frame = (%q, %q)", tag, body)
	}
}

func TestHostSeesOnlyCiphertext(t *testing.T) {
	// The relay (the conn) carries the contribution only inside session
	// records; this test asserts the plaintext encoding never appears on
	// the wire. We intercept with a proxy.
	w := newWorld(t)
	contribution := fixed.FromFloats([]float64{0.123, 0.456, 0.789})
	plaintext := glimmer.EncodeContribution(glimmer.ContributionRequest{
		Round:        1,
		Contribution: glimmer.VectorToBits(contribution),
	})

	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxyLn.Close()
	var captured [][]byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		in, err := proxyLn.Accept()
		if err != nil {
			return
		}
		defer in.Close()
		out, err := net.Dial("tcp", w.addr)
		if err != nil {
			return
		}
		defer out.Close()
		go func() {
			buf := make([]byte, 4096)
			for {
				n, err := out.Read(buf)
				if n > 0 {
					if _, werr := in.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}()
		buf := make([]byte, 4096)
		for {
			n, err := in.Read(buf)
			if n > 0 {
				captured = append(captured, append([]byte(nil), buf[:n]...))
				if _, werr := out.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()

	client, err := Dial(proxyLn.Addr().String(), w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Contribute(1, contribution, nil); err != nil {
		t.Fatal(err)
	}
	client.Close()
	<-done

	var all []byte
	for _, chunk := range captured {
		all = append(all, chunk...)
	}
	if len(all) == 0 {
		t.Fatal("proxy captured nothing")
	}
	if contains(all, plaintext) {
		t.Fatal("plaintext contribution visible to the relay")
	}
	// Even a single element's raw bits should not appear in order.
	if contains(all, plaintext[12:44]) {
		t.Fatal("contribution fragment visible to the relay")
	}
}

func contains(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// TestIdleClientReaped: a client that handshakes and then goes silent must
// not pin its session enclave forever. With an idle timeout set, the read
// deadline expires, the handler exits, and the enclave is destroyed.
func TestIdleClientReaped(t *testing.T) {
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New("iot.example", as.Root())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("range", dim)); err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	svc.Vet(glimmer.BuildBinary(cfg).Measurement())

	var mu sync.Mutex
	var session *glimmer.Device
	server := NewServer(platform, cfg, func(dev *glimmer.Device) error {
		mu.Lock()
		session = dev
		mu.Unlock()
		payload, err := svc.BasePayload()
		if err != nil {
			return err
		}
		return svc.Provision(dev, payload)
	})
	server.SetIdleTimeout(50 * time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = server.Serve(ln) }()

	v := &tee.QuoteVerifier{Root: as.Root()}
	v.Allow(server.Measurement())
	client, err := Dial(ln.Addr().String(), v, svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	mu.Lock()
	dev := session
	mu.Unlock()
	if dev == nil {
		t.Fatal("handshake did not provision a session enclave")
	}

	// Stall: send nothing. The server must reap the connection and
	// destroy the enclave on its own.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := dev.Hello(); errors.Is(err, tee.ErrDestroyed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session enclave still alive after idle timeout")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stalled connection is gone server-side: the next frame write
	// or read fails rather than hanging.
	if _, err := client.Contribute(1, fixed.FromFloats([]float64{0.1, 0.2, 0.3}), nil); err == nil {
		t.Fatal("contribution on a reaped connection unexpectedly succeeded")
	}
}
