package gaas

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
)

// ServerConfig assembles a Server, in the shape of http.Server: the mux
// (or the pieces to build one), the transport security, and the
// governance knobs for a public-facing edge. The zero value of every knob
// means "off" — tests drive connections lock-step and wall-clock limits
// would only make them flaky — so hardened deployments (cmd/glimmerd) opt
// in explicitly.
type ServerConfig struct {
	// Platform hosts the per-session enclaves. Required when session
	// commands are mounted (Hosts or a mux with tenants).
	Platform *tee.Platform

	// Mux routes command frames. Nil builds a fresh mux from Hosts and
	// Ingest; non-nil is used as-is (Hosts and Ingest still register onto
	// it when set).
	Mux *ServeMux

	// Hosts mounts the attested user-session commands for every tenant
	// the resolver knows (service.Registry, or ServeMux.Mount for one).
	Hosts HostResolver

	// Ingest enables submit-batch (and ticket-grant when the Ingestor
	// also grants tickets).
	Ingest Ingestor

	// TLS, when non-nil, wraps every accepted connection server-side.
	// Endpoint privacy only: the trust story stays with attestation —
	// clients pin enclave measurements, not certificates (see KnownHosts).
	TLS *tls.Config

	// ReadTimeout bounds reading one frame once its length prefix has
	// arrived, so a trickling sender cannot hold a connection mid-frame
	// (slowloris). Zero means no limit.
	ReadTimeout time.Duration

	// WriteTimeout bounds writing one reply frame. Zero means no limit.
	WriteTimeout time.Duration

	// IdleTimeout bounds how long a connection may sit between frames;
	// expiry reaps the connection and destroys its session enclave. Zero
	// means no limit.
	IdleTimeout time.Duration

	// MaxConns caps concurrently served connections; excess connections
	// are refused with an ErrShed error frame, never left hanging in an
	// accept queue. Zero means no cap.
	MaxConns int

	// MaxConnsPerIP caps concurrently served connections per client IP,
	// so one flooding host cannot consume the whole MaxConns budget.
	// Zero means no cap.
	MaxConnsPerIP int

	// MaxInflightBatches caps submit-batch frames concurrently inside the
	// ingest pipelines; excess batches are refused with ErrShed instead
	// of queueing behind a saturated pipeline. Zero means no cap.
	MaxInflightBatches int
}

// Server hosts Glimmer enclaves for remote clients: one freshly loaded,
// freshly provisioned enclave per user session, so client sessions cannot
// interfere. Commands route through its ServeMux; the transport is
// governed by the ServerConfig deadlines and caps.
type Server struct {
	platform *tee.Platform
	mux      *ServeMux
	tlsConf  *tls.Config

	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration

	maxConns    int
	maxPerIP    int
	maxInflight int

	// Connection tracking for graceful shutdown and the per-IP ledger.
	connMu  sync.Mutex
	conns   map[net.Conn]string // conn -> client IP
	perIP   map[string]int
	closing bool
	connWG  sync.WaitGroup

	inflight     atomic.Int64
	refusedConns atomic.Int64
	refusedPerIP atomic.Int64
	shedBatches  atomic.Int64

	// Fleet-plane counters (see FleetStats).
	partialsSent     atomic.Int64
	partialsReceived atomic.Int64
	partialsRefused  atomic.Int64
	forwardedBatches atomic.Int64
}

// New assembles a Server from cfg.
func New(cfg ServerConfig) *Server {
	mux := cfg.Mux
	if mux == nil {
		mux = NewServeMux()
	}
	if cfg.Hosts != nil {
		mux.MountResolver(cfg.Hosts)
	}
	if cfg.Ingest != nil {
		mux.HandleIngest(cfg.Ingest)
	}
	return &Server{
		platform:     cfg.Platform,
		mux:          mux,
		tlsConf:      cfg.TLS,
		readTimeout:  cfg.ReadTimeout,
		writeTimeout: cfg.WriteTimeout,
		idleTimeout:  cfg.IdleTimeout,
		maxConns:     cfg.MaxConns,
		maxPerIP:     cfg.MaxConnsPerIP,
		maxInflight:  cfg.MaxInflightBatches,
		conns:        make(map[net.Conn]string),
		perIP:        make(map[string]int),
	}
}

// NewServer creates a single-tenant Glimmer host.
//
// Deprecated: use New with a ServerConfig whose Mux mounts the tenant
// (ServeMux.Mount). Kept as a thin wrapper so existing callers migrate
// incrementally.
func NewServer(platform *tee.Platform, cfg glimmer.Config, provision func(*glimmer.Device) error) *Server {
	mux := NewServeMux()
	mux.Mount(cfg, provision)
	return New(ServerConfig{Platform: platform, Mux: mux})
}

// NewTenantServer creates a Glimmer host serving every tenant the resolver
// knows: the client names its service in the hello, and the session's
// enclave is loaded from that tenant's configuration.
//
// Deprecated: use New with ServerConfig.Hosts.
func NewTenantServer(platform *tee.Platform, resolve HostResolver) *Server {
	return New(ServerConfig{Platform: platform, Hosts: resolve})
}

// SetIngest enables the submit-batch command, forwarding batches to ing.
// Must be called before Serve.
//
// Deprecated: use ServerConfig.Ingest or ServeMux.HandleIngest.
func (s *Server) SetIngest(ing Ingestor) { s.mux.HandleIngest(ing) }

// SetIdleTimeout reaps connections that send no frame for d. Must be
// called before Serve.
//
// Deprecated: use ServerConfig.IdleTimeout.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// Mux returns the server's command router, for registering additional
// handlers before Serve.
func (s *Server) Mux() *ServeMux { return s.mux }

// Measurement returns the measurement clients of a single-tenant host must
// pin (the resolver's default tenant). Multi-tenant deployments publish
// one measurement per tenant via MeasurementFor.
func (s *Server) Measurement() tee.Measurement {
	m, err := s.MeasurementFor("")
	if err != nil {
		return tee.Measurement{}
	}
	return m
}

// MeasurementFor returns the measurement clients of the named tenant must
// pin.
func (s *Server) MeasurementFor(service string) (tee.Measurement, error) {
	cfg, _, err := s.mux.ResolveHost(service)
	if err != nil {
		return tee.Measurement{}, err
	}
	return glimmer.BuildBinary(cfg).Measurement(), nil
}

// EdgeStats is a snapshot of the serving edge's governance counters.
type EdgeStats struct {
	// ActiveConns is the number of connections currently being served.
	ActiveConns int
	// RefusedMaxConns counts connections refused by the MaxConns cap.
	RefusedMaxConns int64
	// RefusedPerIP counts connections refused by the MaxConnsPerIP cap.
	RefusedPerIP int64
	// ShedBatches counts submit-batch frames refused by the
	// MaxInflightBatches gate.
	ShedBatches int64
}

// Stats snapshots the edge governance counters.
func (s *Server) Stats() EdgeStats {
	s.connMu.Lock()
	active := len(s.conns)
	s.connMu.Unlock()
	return EdgeStats{
		ActiveConns:     active,
		RefusedMaxConns: s.refusedConns.Load(),
		RefusedPerIP:    s.refusedPerIP.Load(),
		ShedBatches:     s.shedBatches.Load(),
	}
}

// Serve accepts connections until the listener closes. When the server
// was configured with TLS, every accepted connection is wrapped
// server-side (the handshake happens lazily on first frame I/O, under the
// same deadlines as the frames themselves).
func (s *Server) Serve(ln net.Listener) error {
	if s.tlsConf != nil {
		ln = tls.NewListener(ln, s.tlsConf)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("gaas: accept: %w", err)
		}
		admitted, reason := s.admit(conn)
		if reason != nil {
			go s.refuseConn(conn, reason)
			continue
		}
		if !admitted {
			conn.Close()
			return nil
		}
		go func() {
			defer s.release(conn)
			s.handleConn(conn)
		}()
	}
}

// connIP extracts the client IP used for the per-IP ledger. Transports
// without host:port addresses (in-memory pipes) fall back to the whole
// address string, which still groups connections from the same fake peer.
func connIP(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// admit applies the connection caps and registers the connection.
// admitted=false with a nil reason means the server is closing.
func (s *Server) admit(conn net.Conn) (admitted bool, reason error) {
	ip := connIP(conn)
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closing {
		return false, nil
	}
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		s.refusedConns.Add(1)
		return false, fmt.Errorf("%w: connection limit reached", ErrShed)
	}
	if s.maxPerIP > 0 && s.perIP[ip] >= s.maxPerIP {
		s.refusedPerIP.Add(1)
		return false, fmt.Errorf("%w: per-address connection limit reached", ErrShed)
	}
	s.conns[conn] = ip
	s.perIP[ip]++
	s.connWG.Add(1)
	return true, nil
}

func (s *Server) release(conn net.Conn) {
	s.connMu.Lock()
	if ip, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		if s.perIP[ip]--; s.perIP[ip] <= 0 {
			delete(s.perIP, ip)
		}
	}
	s.connMu.Unlock()
	s.connWG.Done()
}

// refuseTimeout bounds the courtesy error frame a refused connection
// gets: a refusal must never become a slot the flood can hold open.
const refuseTimeout = 5 * time.Second

// refuseConn answers an over-limit connection with an ErrShed error frame
// and drops it. The refusal goroutine is not tracked by the shutdown
// group — it is deadline-bounded and owns nothing but the doomed conn.
func (s *Server) refuseConn(conn net.Conn, reason error) {
	defer conn.Close()
	d := refuseTimeout
	if s.writeTimeout > 0 && s.writeTimeout < d {
		d = s.writeTimeout
	}
	if err := conn.SetDeadline(time.Now().Add(d)); err != nil {
		return
	}
	_ = writeFrame(conn, "error", []byte(reason.Error()))
}

// Shutdown stops the server gracefully: the caller closes the listener
// (ending Serve), Shutdown closes every live connection and waits for the
// handlers to drain. A handler blocked inside IngestBatch finishes that
// batch — the contributions land in their pipelines — before its reply
// write fails and the handler exits, so no in-flight batch is lost.
func (s *Server) Shutdown() {
	s.connMu.Lock()
	s.closing = true
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
}
