package gaas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"glimmers/internal/glimmer"
	"glimmers/internal/wire"
)

// Session is the per-connection serving context handlers receive: the
// owning server, the transport, and the lazily loaded user-session
// enclave. One goroutine owns a Session for its whole life, so handlers
// may use its scratch state without locking.
type Session struct {
	srv  *Server
	conn net.Conn
	// dev is the session enclave, loaded on the first user-hello from the
	// tenant the hello names; a later hello on the same connection replaces
	// the session (and its enclave) wholesale.
	dev *glimmer.Device
	// batchScratch recycles the item-header slice across submit-batch
	// frames on this connection.
	batchScratch [][]byte
}

// Server returns the server this session is being served by.
func (s *Session) Server() *Server { return s.srv }

// RemoteAddr returns the client's address.
func (s *Session) RemoteAddr() net.Addr { return s.conn.RemoteAddr() }

func (s *Session) close() {
	if s.dev != nil {
		s.dev.Destroy()
		s.dev = nil
	}
}

// handleConn runs one connection's frame loop: read a frame under the
// governance deadlines, route it through the mux, write the reply. The
// loop owns one frame buffer — command bodies are views into it and live
// exactly until the next frame is read (Handler documents the
// must-not-retain contract).
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	sess := &Session{srv: s, conn: conn}
	defer sess.close()
	var readBuf []byte
	for {
		// Idle deadline while waiting for a frame to start: a silent client
		// is reaped and its session enclave destroyed.
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return
			}
		}
		n, err := readFrameLen(conn)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The stream is desynced past an oversized prefix, so the
				// connection cannot survive — but the client deserves the
				// typed refusal before the drop.
				s.armWriteDeadline(conn)
				_ = writeFrame(conn, "error", []byte(err.Error()))
			}
			return // disconnect
		}
		// Read deadline once a frame has started: a trickling sender
		// (slowloris) must deliver the whole frame within ReadTimeout no
		// matter how slowly it drips bytes.
		if s.readTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.readTimeout)); err != nil {
				return
			}
		}
		cmd, body, buf, err := readFramePayload(conn, n, readBuf)
		readBuf = buf
		if err != nil {
			return // disconnect
		}
		var out []byte
		if h := s.mux.handler(cmd); h != nil {
			out, err = h.ServeGlimmer(sess, body)
		} else {
			err = fmt.Errorf("%w %q", ErrUnknownCommand, cmd)
		}
		s.armWriteDeadline(conn)
		if err != nil {
			// Error strings cross the network; they carry no private data
			// by construction (glimmer errors are generic).
			if werr := writeFrame(conn, "error", []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if werr := writeFrame(conn, "ok", out); werr != nil {
			return
		}
	}
}

func (s *Server) armWriteDeadline(conn net.Conn) {
	if s.writeTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	}
}

// userHello resolves the hello's tenant, loads and provisions a fresh
// enclave for it, and starts the user handshake. Any previous session
// enclave on the connection is destroyed first.
func (s *Session) userHello(body []byte) ([]byte, error) {
	service, err := helloService(body)
	if err != nil {
		return nil, err
	}
	cfg, provision, err := s.srv.mux.ResolveHost(service)
	if err != nil {
		return nil, err
	}
	dev, err := glimmer.NewDevice(s.srv.platform, cfg)
	if err != nil {
		return nil, err
	}
	if provision != nil {
		if err := provision(dev); err != nil {
			dev.Destroy()
			return nil, errors.New("provisioning failed")
		}
	}
	out, err := dev.UserHello()
	if err != nil {
		dev.Destroy()
		return nil, err
	}
	if s.dev != nil {
		s.dev.Destroy()
	}
	s.dev = dev
	return out, nil
}

func (s *Session) userComplete(body []byte) ([]byte, error) {
	if s.dev == nil {
		return nil, errNoSession
	}
	return nil, s.dev.UserComplete(body)
}

func (s *Session) userContribute(body []byte) ([]byte, error) {
	if s.dev == nil {
		return nil, errNoSession
	}
	return s.dev.UserContribute(body)
}

// submitBatch decodes a batch frame without copying (the items are views
// into the connection's frame buffer, valid for exactly as long as the
// blocking IngestBatch call below), hands it to the ingest pipeline, and
// encodes the accepted/rejected tallies.
//
// The shed gate runs before any decode work: when MaxInflightBatches
// batches are already inside the pipelines, the frame is refused with
// ErrShed immediately — backpressure as a reply, never as a hang.
func (s *Session) submitBatch(body []byte) ([]byte, error) {
	srv := s.srv
	if max := srv.maxInflight; max > 0 {
		if srv.inflight.Add(1) > int64(max) {
			srv.inflight.Add(-1)
			srv.shedBatches.Add(1)
			return nil, fmt.Errorf("%w: %d contribution batches in flight", ErrShed, max)
		}
		defer srv.inflight.Add(-1)
	}
	items, err := wire.DecodeBatchInto(body, s.batchScratch)
	if err != nil {
		return nil, err
	}
	// Per-item errors stay server-side: the reply is tallies only, so the
	// frame stays O(1) regardless of batch size.
	accepted, _ := srv.mux.ingest.IngestBatch(items)
	reply := binary.BigEndian.AppendUint32(make([]byte, 0, 8), uint32(accepted))
	reply = binary.BigEndian.AppendUint32(reply, uint32(len(items)-accepted))
	// Drop the item views before recycling the scratch: stale headers
	// would otherwise keep the (possibly replaced) frame buffer alive.
	clear(items)
	s.batchScratch = items[:0]
	return reply, nil
}

// ticketGrant forwards a signed ticket request to the ingest side's
// granter. The request and grant are both public by construction (the
// session key is derived, never carried), so they travel outside any
// attested session — exactly like the signed contributions they amortize.
// The body is a view into the connection's frame buffer; the granter
// decodes (copying) before the next frame can be read, satisfying the
// same must-not-retain contract as IngestBatch.
func (s *Session) ticketGrant(body []byte) ([]byte, error) {
	return s.srv.mux.granter.GrantTicket(body)
}
