package gaas

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glimmers/internal/tee"
)

func meas(b byte) tee.Measurement {
	var m tee.Measurement
	m[0] = b
	m[31] = ^b
	return m
}

func TestKnownHostsFirstUsePins(t *testing.T) {
	k := NewKnownHosts()
	if err := k.Check("alpha.example", meas(1)); err != nil {
		t.Fatalf("first use: %v", err)
	}
	if got, ok := k.Lookup("alpha.example"); !ok || got != meas(1) {
		t.Fatal("first use did not pin")
	}
	// The same measurement keeps passing.
	if err := k.Check("alpha.example", meas(1)); err != nil {
		t.Fatalf("repeat use: %v", err)
	}
	// A different service pins independently.
	if err := k.Check("beta.example", meas(2)); err != nil {
		t.Fatalf("second service: %v", err)
	}
	if k.Len() != 2 {
		t.Fatalf("Len = %d, want 2", k.Len())
	}
}

func TestKnownHostsMismatchRefused(t *testing.T) {
	k := NewKnownHosts()
	if err := k.Check("alpha.example", meas(1)); err != nil {
		t.Fatal(err)
	}
	err := k.Check("alpha.example", meas(2))
	if !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("err = %v, want ErrMeasurementMismatch", err)
	}
	// The refusal names both measurements so the operator can diagnose
	// a rotation vs an attack.
	if msg := err.Error(); !strings.Contains(msg, "alpha.example") {
		t.Fatalf("refusal %q does not name the service", msg)
	}
	// The pin is untouched by the failed check.
	if got, _ := k.Lookup("alpha.example"); got != meas(1) {
		t.Fatal("mismatch disturbed the pin")
	}
}

func TestKnownHostsFilePersistsAndRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "known_hosts")
	k, err := LoadKnownHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Check("alpha.example", meas(1)); err != nil {
		t.Fatal(err)
	}
	if err := k.Check("beta.example", meas(2)); err != nil {
		t.Fatal(err)
	}

	// A fresh process sees the pins.
	k2, err := LoadKnownHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Len() != 2 {
		t.Fatalf("reloaded Len = %d, want 2", k2.Len())
	}
	if err := k2.Check("alpha.example", meas(9)); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("reloaded pin not enforced: %v", err)
	}

	// Rotation: the explicit Pin overwrites, persists, and re-admits.
	if err := k2.Pin("alpha.example", meas(9)); err != nil {
		t.Fatal(err)
	}
	k3, err := LoadKnownHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := k3.Check("alpha.example", meas(9)); err != nil {
		t.Fatalf("rotated pin refused: %v", err)
	}
	if err := k3.Check("alpha.example", meas(1)); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatal("rotation left the old measurement admissible")
	}
	// The other tenant's pin survived the rotation rewrite.
	if err := k3.Check("beta.example", meas(2)); err != nil {
		t.Fatalf("unrelated pin lost in rotation: %v", err)
	}
}

func TestKnownHostsRotatedFileOnDisk(t *testing.T) {
	// The operator rotation path: hand-editing the known-hosts file (the
	// documented alternative to Pin) takes effect on the next load.
	path := filepath.Join(t.TempDir(), "known_hosts")
	k, err := LoadKnownHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Check("alpha.example", meas(1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotated := strings.ReplaceAll(string(data), measurementHex(meas(1)), measurementHex(meas(7)))
	// Comments and blank lines are operator territory and must survive
	// parsing.
	rotated = "# rotated after the 2026-08 re-audit\n\n" + rotated
	if err := os.WriteFile(path, []byte(rotated), 0o644); err != nil {
		t.Fatal(err)
	}
	k2, err := LoadKnownHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Check("alpha.example", meas(7)); err != nil {
		t.Fatalf("hand-rotated pin refused: %v", err)
	}
	if err := k2.Check("alpha.example", meas(1)); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatal("pre-rotation measurement still admissible")
	}
}

func TestKnownHostsMalformedFileRefused(t *testing.T) {
	dir := t.TempDir()
	for name, contents := range map[string]string{
		"no-digest":  "alpha.example\n",
		"bad-scheme": "alpha.example md5:abcd\n",
		"short-hex":  "alpha.example sha256:abcd\n",
		"not-hex":    "alpha.example sha256:" + strings.Repeat("zz", 32) + "\n",
		"no-service": " sha256:" + strings.Repeat("ab", 32) + "\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadKnownHosts(path); err == nil {
			t.Errorf("%s: malformed known-hosts file loaded without error", name)
		}
	}
}

func TestKnownHostsMissingFileIsEmpty(t *testing.T) {
	k, err := LoadKnownHosts(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != 0 {
		t.Fatal("missing file loaded pins")
	}
}
