package gaas

import (
	"context"
	"math/rand"
	"net"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// fleetTenant is the shared tenant identity a fleet serves: one
// contribution-signing key, one vetted measurement, N independent node
// managers.
type fleetTenant struct {
	key  *xcrypto.SigningKey
	meas tee.Measurement
}

func newFleetTenant(t *testing.T) *fleetTenant {
	t.Helper()
	key, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	return &fleetTenant{key: key, meas: tee.Measurement{1, 2, 3}}
}

func (ft *fleetTenant) manager(dim int) *service.RoundManager {
	m := service.NewRoundManager(service.PipelineConfig{
		ServiceName: "iot.example", Verify: ft.key.Public(), Dim: dim,
		Workers: 1, Shards: 2,
	})
	m.Vet(ft.meas)
	return m
}

func (ft *fleetTenant) contribution(t *testing.T, round uint64, dim int, rng *rand.Rand) []byte {
	t.Helper()
	v := fixed.NewVector(dim)
	for i := range v {
		v[i] = fixed.Ring(rng.Uint64())
	}
	sc := glimmer.SignedContribution{
		ServiceName: "iot.example", Round: round, Measurement: ft.meas, Blinded: v,
	}
	sig, err := ft.key.Sign(sc.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	sc.Signature = sig
	return glimmer.EncodeSignedContribution(sc)
}

// fleetServer spins one node: a server whose mux registers both client
// ingest and the fleet plane.
func fleetServer(t *testing.T, ing Ingestor, merger PartialMerger) (*Server, string) {
	t.Helper()
	mux := NewServeMux()
	if ing != nil {
		mux.HandleIngest(ing)
	}
	mux.HandleFleet(ing, merger)
	srv := New(ServerConfig{Mux: mux})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); srv.Shutdown() })
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String()
}

// TestFleetForwardAndMerge exercises the two fleet commands end to end:
// a peer forwards a batch over fleet-forward, the node exports its
// partial seal, the coordinator merges it over fleet-merge, and a
// replayed seal is refused across the wire without disturbing the merge.
func TestFleetForwardAndMerge(t *testing.T) {
	const dim, round = 3, uint64(7)
	ft := newFleetTenant(t)
	rounds := ft.manager(dim)
	nodeSrv, nodeAddr := fleetServer(t, rounds, nil)

	hub := &service.MergeHub{AllowTOFU: true}
	coordSrv, coordAddr := fleetServer(t, nil, hub)

	rng := rand.New(rand.NewSource(3))
	raws := make([][]byte, 6)
	for i := range raws {
		raws[i] = ft.contribution(t, round, dim, rng)
	}
	peer, err := DialContext(context.Background(), nodeAddr, DialConfig{NoSession: true})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	accepted, rejected, err := peer.ForwardBatch(append(append([][]byte(nil), raws...), raws[0]))
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 6 || rejected != 1 {
		t.Fatalf("forward tallies accepted=%d rejected=%d", accepted, rejected)
	}
	if fs := nodeSrv.FleetStats(); fs.ForwardedBatches != 1 {
		t.Fatalf("node fleet stats = %+v", fs)
	}

	nodeKey, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	seal, err := rounds.ExportPartialSeal(round, service.NodeSeal{
		NodeID: 1, ShardCount: 1, Measurement: tee.Measurement{0x51}, Key: nodeKey,
	})
	if err != nil {
		t.Fatal(err)
	}

	coord, err := DialContext(context.Background(), coordAddr, DialConfig{NoSession: true})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.MergePartialSeal(seal)
	if err != nil {
		t.Fatal(err)
	}
	nodeSrv.NotePartialSent()
	if res.Merged != 1 || res.Expect != 1 || res.Count != 6 || res.Rejected != 1 {
		t.Fatalf("merge result = %+v", res)
	}
	m, ok := hub.Lookup("iot.example", round)
	if !ok || !m.Complete() {
		t.Fatal("coordinator merge not complete")
	}
	sum := m.Sum()
	want := rounds.Round(round).Sum()
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("merged sum lane %d = %d, node sum %d", i, sum[i], want[i])
		}
	}

	// Replay across the wire: refused as an error frame, connection and
	// merge both undisturbed.
	if _, err := coord.MergePartialSeal(seal); err == nil {
		t.Fatal("replayed seal accepted over the wire")
	}
	if res := m.Result(); res.Merged != 1 || res.Refused != 1 {
		t.Fatalf("after replay: %+v", res)
	}
	if fs := coordSrv.FleetStats(); fs.PartialsReceived != 2 || fs.PartialsRefused != 1 {
		t.Fatalf("coordinator fleet stats = %+v", fs)
	}
	if fs := nodeSrv.FleetStats(); fs.PartialsSent != 1 {
		t.Fatalf("node fleet stats = %+v", fs)
	}
	// The refused replay must not have poisoned the connection.
	if _, err := coord.MergePartialSeal(seal); err == nil {
		t.Fatal("second replay accepted")
	}
}

// TestFleetClientRouting drives the ring-routing client against three
// live nodes: every contribution lands on its ring owner, tallies add
// up, and a re-home moves orphaned shards without touching survivors.
func TestFleetClientRouting(t *testing.T) {
	const dim = 3
	ft := newFleetTenant(t)
	managers := map[uint32]*service.RoundManager{}
	nodes := make([]FleetNode, 0, 3)
	for id := uint32(1); id <= 3; id++ {
		m := ft.manager(dim)
		managers[id] = m
		_, addr := fleetServer(t, m, nil)
		nodes = append(nodes, FleetNode{ID: id, Addr: addr})
	}
	fc, err := DialFleet(context.Background(), FleetConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	rng := rand.New(rand.NewSource(17))
	var raws [][]byte
	perRound := map[uint64]int{}
	for round := uint64(1); round <= 12; round++ {
		for i := 0; i < 4; i++ {
			raws = append(raws, ft.contribution(t, round, dim, rng))
			perRound[round]++
		}
	}
	accepted, rejected, err := fc.SubmitBatch(raws)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != len(raws) || rejected != 0 {
		t.Fatalf("fleet tallies accepted=%d rejected=%d of %d", accepted, rejected, len(raws))
	}
	// Every round must live wholly on its ring owner.
	for round, want := range perRound {
		owner := fc.Ring().Owner([]byte("iot.example"), round)
		for id, m := range managers {
			p, ok := m.Lookup(round)
			got := 0
			if ok {
				got = p.Count()
			}
			switch {
			case id == owner && got != want:
				t.Fatalf("round %d: owner %d holds %d/%d", round, id, got, want)
			case id != owner && got != 0:
				t.Fatalf("round %d: non-owner %d holds %d contributions", round, id, got)
			}
		}
	}
	if fc.Sent() == 0 {
		t.Fatal("no batches sent")
	}

	// Unroutable frames count rejected without a round trip.
	if _, rej, err := fc.SubmitBatch([][]byte{{0x00}}); err != nil || rej != 1 {
		t.Fatalf("unroutable frame: rej=%d err=%v", rej, err)
	}

	// Re-home node 2: its rounds move, survivors keep theirs.
	before := map[uint64]uint32{}
	for round := range perRound {
		before[round] = fc.Ring().Owner([]byte("iot.example"), round)
	}
	if err := fc.Rehome(2); err != nil {
		t.Fatal(err)
	}
	for round, owner := range before {
		now := fc.Ring().Owner([]byte("iot.example"), round)
		if owner != 2 && now != owner {
			t.Fatalf("round %d moved %d -> %d though its owner survived", round, owner, now)
		}
		if owner == 2 && now == 2 {
			t.Fatalf("round %d still owned by removed node", round)
		}
	}
	more := [][]byte{ft.contribution(t, 99, dim, rng)}
	if acc, _, err := fc.SubmitBatch(more); err != nil || acc != 1 {
		t.Fatalf("post-rehome submit acc=%d err=%v", acc, err)
	}
	if p, ok := managers[2].Lookup(99); ok && p.Count() > 0 {
		t.Fatal("removed node received post-rehome traffic")
	}
}
