package gaas

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// SelfSignedServerTLS builds a server TLS config around a fresh
// self-signed ECDSA P-256 certificate for the given hosts (DNS names or
// IP addresses; none defaults to localhost). gaas does not hang trust on
// the certificate — the client trusts the enclave measurement it attests
// and pins, and TLS only denies passive observers the frame plaintext —
// so a self-signed transport cert is the honest default for a deployment
// without a CA.
func SelfSignedServerTLS(hosts ...string) (*tls.Config, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gaas: tls key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("gaas: tls serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: "gaas self-signed"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	if len(hosts) == 0 {
		hosts = []string{"localhost", "127.0.0.1", "::1"}
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("gaas: tls cert: %w", err)
	}
	return &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key}},
		MinVersion:   tls.VersionTLS13,
	}, nil
}

// InsecureClientTLS is the client config matching a self-signed server:
// certificate verification is skipped because the endpoint trust decision
// is made by quote verification and the TOFU measurement pin, not by the
// certificate chain. TLS here buys transport privacy against passive
// observers; it was never the authentication layer.
func InsecureClientTLS() *tls.Config {
	return &tls.Config{
		InsecureSkipVerify: true, // endpoint trust comes from attestation + TOFU
		MinVersion:         tls.VersionTLS13,
	}
}
