package gaas

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// blockingIngestor parks every IngestBatch call until released, so tests
// can hold batches in flight deterministically.
type blockingIngestor struct {
	entered chan struct{}
	release chan struct{}
	mu      sync.Mutex
	total   int
}

func newBlockingIngestor() *blockingIngestor {
	return &blockingIngestor{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (b *blockingIngestor) IngestBatch(raws [][]byte) (int, []error) {
	b.entered <- struct{}{}
	<-b.release
	b.mu.Lock()
	b.total += len(raws)
	b.mu.Unlock()
	return len(raws), make([]error, len(raws))
}

// edgeServer starts an ingest-only server over real TCP under cfg and
// returns its address. The listener closes and the server shuts down with
// the test.
func edgeServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); srv.Shutdown() })
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String()
}

// submitOnlyClient dials addr as a batch courier: no attested session, so
// no enclave platform is needed server-side.
func submitOnlyClient(t *testing.T, addr string, cfg DialConfig) *Client {
	t.Helper()
	cfg.NoSession = true
	c, err := DialContext(context.Background(), addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func smallBatch(n int) [][]byte {
	raws := make([][]byte, n)
	for i := range raws {
		raws[i] = []byte{byte(i), 1, 2, 3}
	}
	return raws
}

// TestShutdownUnderLoad: a batch blocked inside the ingest pipeline when
// Shutdown fires must still land — Shutdown waits for the handler, and
// the handler finishes IngestBatch before its reply write fails.
func TestShutdownUnderLoad(t *testing.T) {
	ing := newBlockingIngestor()
	srv := New(ServerConfig{Ingest: ing})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	client := submitOnlyClient(t, ln.Addr().String(), DialConfig{})

	submitDone := make(chan error, 1)
	go func() {
		_, _, err := client.SubmitBatch(smallBatch(5))
		submitDone <- err
	}()
	<-ing.entered // the batch is inside the pipeline

	shutdownDone := make(chan struct{})
	go func() {
		ln.Close()
		srv.Shutdown()
		close(shutdownDone)
	}()
	// Shutdown must wait for the in-flight batch, not abandon it.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a batch was still inside IngestBatch")
	case <-time.After(50 * time.Millisecond):
	}
	close(ing.release)
	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not complete after the batch drained")
	}
	<-submitDone // either tallies or a closed-conn error; the batch landed either way
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.total != 5 {
		t.Fatalf("in-flight batch lost: ingested %d items, want 5", ing.total)
	}
}

// TestIdleReapSparesLiveTraffic: the idle deadline re-arms per frame, so
// a connection with live traffic at intervals below the timeout survives
// arbitrarily many idle periods — and is reaped once it truly stalls.
func TestIdleReapSparesLiveTraffic(t *testing.T) {
	ing := &tallyIngestor{}
	_, addr := edgeServer(t, ServerConfig{Ingest: ing, IdleTimeout: 200 * time.Millisecond})
	client := submitOnlyClient(t, addr, DialConfig{})

	// Live writes racing the reap clock: total wall time spans many idle
	// windows, each individual gap stays under one.
	for i := 0; i < 8; i++ {
		if _, _, err := client.SubmitBatch(smallBatch(2)); err != nil {
			t.Fatalf("live connection reaped at iteration %d: %v", i, err)
		}
		time.Sleep(70 * time.Millisecond)
	}
	// Now stall past the deadline: the server must reap the connection.
	time.Sleep(500 * time.Millisecond)
	if _, _, err := client.SubmitBatch(smallBatch(2)); err == nil {
		t.Fatal("submit on a reaped connection unexpectedly succeeded")
	}
}

// TestSlowlorisReaped: once a frame's length prefix arrives, the body
// must complete within ReadTimeout — a sender drip-feeding bytes cannot
// hold the connection open even while staying inside the idle window.
func TestSlowlorisReaped(t *testing.T) {
	ing := &tallyIngestor{}
	_, addr := edgeServer(t, ServerConfig{
		Ingest:      ing,
		IdleTimeout: 5 * time.Second,
		ReadTimeout: 150 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Announce a 1 KiB frame, then trickle one byte per idle-safe interval.
	if _, err := conn.Write([]byte{0, 0, 4, 0}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	reaped := make(chan struct{})
	go func() {
		// The server closing the connection surfaces as EOF/reset here.
		_, _ = io.ReadAll(conn)
		close(reaped)
	}()
	go func() {
		for i := 0; ; i++ {
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	select {
	case <-reaped:
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("slowloris connection survived %v; ReadTimeout is 150ms", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slowloris connection never reaped")
	}
}

// TestMaxConnsRefusalAccounting: connections over MaxConns are refused
// with a typed ErrShed reply (not a hang, not a silent drop), counted,
// and a freed slot re-admits.
func TestMaxConnsRefusalAccounting(t *testing.T) {
	ing := &tallyIngestor{}
	srv, addr := edgeServer(t, ServerConfig{Ingest: ing, MaxConns: 2})

	c1 := submitOnlyClient(t, addr, DialConfig{})
	c2 := submitOnlyClient(t, addr, DialConfig{})
	// Prove both slots are live.
	for _, c := range []*Client{c1, c2} {
		if _, _, err := c.SubmitBatch(smallBatch(1)); err != nil {
			t.Fatal(err)
		}
	}

	over := submitOnlyClient(t, addr, DialConfig{CallTimeout: 5 * time.Second})
	_, _, err := over.SubmitBatch(smallBatch(1))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("over-limit connection got %v, want ErrShed", err)
	}
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("shed error %v should also match ErrRemote", err)
	}
	stats := srv.Stats()
	if stats.RefusedMaxConns != 1 || stats.ActiveConns != 2 {
		t.Fatalf("stats = %+v, want RefusedMaxConns=1 ActiveConns=2", stats)
	}

	// Freeing a slot re-admits new connections.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveConns >= 2 {
		if time.Now().After(deadline) {
			t.Fatal("closed connection never released its slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c3 := submitOnlyClient(t, addr, DialConfig{})
	if _, _, err := c3.SubmitBatch(smallBatch(1)); err != nil {
		t.Fatalf("connection after slot freed: %v", err)
	}
}

// TestPerIPRefusalAccounting: one address cannot consume the whole
// connection budget — the per-IP cap refuses its excess with ErrShed
// while the global cap still has room.
func TestPerIPRefusalAccounting(t *testing.T) {
	ing := &tallyIngestor{}
	srv, addr := edgeServer(t, ServerConfig{Ingest: ing, MaxConns: 16, MaxConnsPerIP: 1})

	c1 := submitOnlyClient(t, addr, DialConfig{})
	if _, _, err := c1.SubmitBatch(smallBatch(1)); err != nil {
		t.Fatal(err)
	}
	over := submitOnlyClient(t, addr, DialConfig{CallTimeout: 5 * time.Second})
	if _, _, err := over.SubmitBatch(smallBatch(1)); !errors.Is(err, ErrShed) {
		t.Fatalf("per-IP excess got %v, want ErrShed", err)
	}
	stats := srv.Stats()
	if stats.RefusedPerIP != 1 || stats.RefusedMaxConns != 0 {
		t.Fatalf("stats = %+v, want RefusedPerIP=1 RefusedMaxConns=0", stats)
	}
}

// TestLoadShedBatches: with MaxInflightBatches saturated, the next batch
// is refused immediately with ErrShed — backpressure as a reply, not a
// hang — and the in-flight batch still completes.
func TestLoadShedBatches(t *testing.T) {
	ing := newBlockingIngestor()
	srv, addr := edgeServer(t, ServerConfig{Ingest: ing, MaxInflightBatches: 1})

	holder := submitOnlyClient(t, addr, DialConfig{})
	holderDone := make(chan error, 1)
	go func() {
		_, _, err := holder.SubmitBatch(smallBatch(3))
		holderDone <- err
	}()
	<-ing.entered // pipeline saturated

	shedStart := time.Now()
	shed := submitOnlyClient(t, addr, DialConfig{})
	_, _, err := shed.SubmitBatch(smallBatch(3))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("saturated pipeline got %v, want ErrShed", err)
	}
	if elapsed := time.Since(shedStart); elapsed > 2*time.Second {
		t.Fatalf("shed reply took %v; sheds must not queue behind the pipeline", elapsed)
	}
	if got := srv.Stats().ShedBatches; got != 1 {
		t.Fatalf("ShedBatches = %d, want 1", got)
	}
	close(ing.release)
	if err := <-holderDone; err != nil {
		t.Fatalf("in-flight batch failed: %v", err)
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.total != 3 {
		t.Fatalf("ingested %d items, want 3 (shed batch must not land)", ing.total)
	}
}

// TestCallTimeout pins the satellite fix: a stalled server fails the
// round trip within CallTimeout instead of hanging the caller forever.
func TestCallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = io.Copy(io.Discard, conn) // read everything, reply with nothing
	}()
	client := submitOnlyClient(t, ln.Addr().String(), DialConfig{CallTimeout: 100 * time.Millisecond})
	start := time.Now()
	_, _, err = client.SubmitBatch(smallBatch(1))
	if err == nil {
		t.Fatal("submit against a silent server unexpectedly succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout fired after %v; CallTimeout is 100ms", elapsed)
	}
}

// TestFrameTooLargeTyped: an oversized length prefix gets the typed
// refusal back before the (unrecoverable) connection drops, and the
// client maps it onto ErrFrameTooLarge.
func TestFrameTooLargeTyped(t *testing.T) {
	ing := &tallyIngestor{}
	_, addr := edgeServer(t, ServerConfig{Ingest: ing})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	status, body, err := readFrame(conn)
	if err != nil {
		t.Fatalf("no refusal frame before drop: %v", err)
	}
	if status != "error" {
		t.Fatalf("status = %q, want error", status)
	}
	if rerr := remoteError(body); !errors.Is(rerr, ErrFrameTooLarge) {
		t.Fatalf("refusal %q does not map to ErrFrameTooLarge", body)
	}
	// The stream is desynced; the server must drop the connection.
	if _, _, _, err := readFrameInto(conn, nil); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
}

// TestUnknownCommandTyped: a command with no route comes back as
// ErrUnknownCommand through the client's error mapping, and the
// connection survives to serve the next frame.
func TestUnknownCommandTyped(t *testing.T) {
	ing := &tallyIngestor{}
	_, addr := edgeServer(t, ServerConfig{Ingest: ing})
	client := submitOnlyClient(t, addr, DialConfig{})
	if _, err := client.roundTrip("no-such-command", nil); !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("err = %v, want ErrUnknownCommand", err)
	}
	if _, _, err := client.SubmitBatch(smallBatch(1)); err != nil {
		t.Fatalf("connection did not survive an unknown command: %v", err)
	}
}

// TestMuxCustomHandler: the net/http-shaped surface — a custom command
// registers like a route and serves alongside the built-ins.
func TestMuxCustomHandler(t *testing.T) {
	mux := NewServeMux()
	mux.HandleFunc("ping", func(s *Session, body []byte) ([]byte, error) {
		return append([]byte("pong:"), body...), nil
	})
	ing := &tallyIngestor{}
	_, addr := edgeServer(t, ServerConfig{Mux: mux, Ingest: ing})
	client := submitOnlyClient(t, addr, DialConfig{})
	out, err := client.roundTrip("ping", []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "pong:abc" {
		t.Fatalf("reply = %q", out)
	}
	if _, _, err := client.SubmitBatch(smallBatch(2)); err != nil {
		t.Fatal(err)
	}
}

// twoEnclaveWorld builds two servers for the SAME service name whose
// enclaves have different (both genuine, both attestable) measurements —
// the swapped-enclave scenario TOFU exists to catch.
func twoEnclaveWorld(t *testing.T) (root *xcrypto.VerifyKey, addrA, addrB string, measA, measB tee.Measurement) {
	t.Helper()
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	build := func(d int) (string, tee.Measurement) {
		svc, err := service.New("iot.example", as.Root())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.SetPredicate(predicate.UnitRangeCheck("range", d)); err != nil {
			t.Fatal(err)
		}
		cfg, err := svc.GlimmerConfig(d, glimmer.ModeNone, glimmer.DefaultPolicy)
		if err != nil {
			t.Fatal(err)
		}
		svc.Vet(glimmer.BuildBinary(cfg).Measurement())
		mux := NewServeMux()
		mux.Mount(cfg, func(dev *glimmer.Device) error {
			payload, err := svc.BasePayload()
			if err != nil {
				return err
			}
			return svc.Provision(dev, payload)
		})
		tlsConf, err := SelfSignedServerTLS("127.0.0.1")
		if err != nil {
			t.Fatal(err)
		}
		srv := New(ServerConfig{Platform: platform, Mux: mux, TLS: tlsConf})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close(); srv.Shutdown() })
		go func() { _ = srv.Serve(ln) }()
		return ln.Addr().String(), srv.Measurement()
	}
	addrA, measA = build(3)
	addrB, measB = build(4)
	if measA == measB {
		t.Fatal("test enclaves share a measurement")
	}
	return as.Root(), addrA, addrB, measA, measB
}

// TestTOFUSwappedMeasurementOverTLS is the acceptance scenario end to
// end over real TCP+TLS: first use pins the enclave measurement; the
// same service presenting a different — genuinely attested — enclave is
// refused with ErrMeasurementMismatch before any private data moves.
func TestTOFUSwappedMeasurementOverTLS(t *testing.T) {
	root, addrA, addrB, measA, _ := twoEnclaveWorld(t)
	// The verifier's empty allowlist admits any genuine enclave: the
	// pinning decision belongs entirely to the TOFU store.
	dialCfg := DialConfig{
		Service:          "iot.example",
		Verifier:         &tee.QuoteVerifier{Root: root},
		KnownHosts:       NewKnownHosts(),
		TLS:              InsecureClientTLS(),
		DialTimeout:      5 * time.Second,
		HandshakeTimeout: 5 * time.Second,
		CallTimeout:      10 * time.Second,
	}
	client, err := DialContext(context.Background(), addrA, dialCfg)
	if err != nil {
		t.Fatalf("first use: %v", err)
	}
	defer client.Close()
	if client.Measurement() != measA {
		t.Fatalf("client attested %s, want %s", client.Measurement(), measA)
	}
	if pinned, ok := dialCfg.KnownHosts.Lookup("iot.example"); !ok || pinned != measA {
		t.Fatal("first use did not pin the measurement")
	}
	// The swap: same service name, different enclave. Refused.
	if _, err := DialContext(context.Background(), addrB, dialCfg); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("swapped enclave: err = %v, want ErrMeasurementMismatch", err)
	}
	// The pin survives the refused handshake.
	if pinned, _ := dialCfg.KnownHosts.Lookup("iot.example"); pinned != measA {
		t.Fatal("refused handshake disturbed the pin")
	}
	// Explicit rotation (the vetted-update path) re-admits the new enclave.
	if err := dialCfg.KnownHosts.Pin("iot.example", mustMeasurement(t, root, addrB, dialCfg)); err != nil {
		t.Fatal(err)
	}
	rotated, err := DialContext(context.Background(), addrB, dialCfg)
	if err != nil {
		t.Fatalf("after rotation: %v", err)
	}
	rotated.Close()
}

// mustMeasurement fetches the measurement addrB's enclave attests, via a
// pin-free probe dial.
func mustMeasurement(t *testing.T, root *xcrypto.VerifyKey, addr string, cfg DialConfig) tee.Measurement {
	t.Helper()
	probe := cfg
	probe.KnownHosts = nil
	c, err := DialContext(context.Background(), addr, probe)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return c.Measurement()
}
