package gaas

import (
	"errors"
	"strings"
)

// Typed protocol errors. Server handlers wrap these (the sentinel text
// leads the message), the error frame carries the message across the
// wire, and the client maps the text back onto the sentinel — so callers
// errors.Is-match a remote refusal exactly as they would a local one.
var (
	// ErrFrameTooLarge refuses a frame whose length prefix exceeds
	// MaxFrame. After an oversized prefix the stream is unreadable, so the
	// peer reports the error and drops the connection.
	ErrFrameTooLarge = errors.New("gaas: frame exceeds limit")

	// ErrUnknownCommand refuses a command no handler is registered for.
	ErrUnknownCommand = errors.New("gaas: unknown command")

	// ErrShed is the serving edge refusing work it cannot absorb: a
	// connection over MaxConns or the per-IP limit, or a contribution
	// batch arriving while MaxInflightBatches are already inside the
	// pipelines. A shed reply is immediate — the edge never parks a
	// client on a saturated pipeline — and retryable after backoff.
	ErrShed = errors.New("gaas: overloaded, retry later")

	// ErrMeasurementMismatch is the TOFU store refusing a swapped
	// enclave: the service presented a genuinely attested measurement
	// that differs from the one pinned in the known-hosts store.
	ErrMeasurementMismatch = errors.New("gaas: enclave measurement does not match known-hosts pin")
)

// Client errors.
var (
	ErrRemote   = errors.New("gaas: remote error")
	ErrRejected = errors.New("gaas: contribution rejected by remote glimmer")
)

// ErrBatchTooLarge is returned by SubmitBatch when the encoded batch
// would exceed the protocol's frame limit; split the batch and retry.
var ErrBatchTooLarge = errors.New("gaas: batch exceeds frame limit")

// wireSentinels are the typed errors recoverable from an error frame's
// text. Order matters only for prefix ambiguity; these are disjoint.
var wireSentinels = []error{ErrShed, ErrUnknownCommand, ErrFrameTooLarge, errNoSession}

var errNoSession = errors.New("gaas: no session enclave (send user-hello first)")

// remoteErr is a refusal that traveled back in an error frame. It
// unwraps to ErrRemote and, when the frame text identifies one, to the
// matching wire sentinel — errors.Is(err, ErrShed) works on both sides
// of the connection.
type remoteErr struct {
	msg      string
	sentinel error
}

func (e *remoteErr) Error() string { return ErrRemote.Error() + ": " + e.msg }

func (e *remoteErr) Unwrap() []error {
	if e.sentinel != nil {
		return []error{ErrRemote, e.sentinel}
	}
	return []error{ErrRemote}
}

// remoteError maps an error frame's body back onto the typed sentinels.
func remoteError(body []byte) error {
	msg := string(body)
	for _, s := range wireSentinels {
		if strings.HasPrefix(msg, s.Error()) {
			return &remoteErr{msg: msg, sentinel: s}
		}
	}
	return &remoteErr{msg: msg}
}
