package gaas

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"time"

	"glimmers/internal/attest"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// DialConfig shapes a client connection to a Glimmer host: who to trust
// (quote verifier plus optional TOFU known-hosts pinning), how to reach
// them (TLS, dial/handshake timeouts), and how patient calls are.
type DialConfig struct {
	// Service names the tenant whose Glimmer the client wants hosted; it
	// is the frame-level routing key of the multi-tenant protocol and the
	// known-hosts pinning key.
	Service string

	// Verifier checks the hosted enclave's quote. An empty allowlist
	// admits any genuinely attested measurement — pair it with KnownHosts
	// so the first genuine measurement is pinned and later swaps refuse.
	Verifier *tee.QuoteVerifier

	// KnownHosts, when non-nil, pins Service to the enclave measurement
	// seen on first use and fails later handshakes whose genuinely
	// attested measurement differs (ErrMeasurementMismatch). This is the
	// client's defense against a host quietly swapping the enclave for a
	// different — still genuine, still vetted-by-someone — binary.
	KnownHosts *KnownHosts

	// TLS, when non-nil, wraps the connection before any frame is sent.
	// Endpoint privacy and integrity for the transport; the trust
	// decision stays with attestation (see the README threat model), so
	// InsecureClientTLS is an acceptable client config here.
	TLS *tls.Config

	// DialTimeout bounds establishing the TCP connection. Zero means no
	// limit beyond the context's.
	DialTimeout time.Duration

	// HandshakeTimeout bounds the TLS handshake and the attested user
	// handshake together. Zero means no limit.
	HandshakeTimeout time.Duration

	// CallTimeout bounds each round trip (Contribute, SubmitBatch,
	// RequestTicket): a stalled server fails the call instead of hanging
	// the caller forever. Zero means no limit.
	CallTimeout time.Duration

	// NoSession skips the attested user-session handshake. For clients
	// that only forward public frames (submit-batch relays, ticket
	// couriers) and never ship private data; Contribute requires a
	// session and will fail.
	NoSession bool
}

// Client is an IoT device using a remote Glimmer. It has no TEE of its
// own; its trust comes entirely from quote verification (and, when
// configured, the TOFU measurement pin).
type Client struct {
	conn        net.Conn
	session     *attest.Session
	callTimeout time.Duration
	measurement tee.Measurement
}

// Dial connects to a Glimmer host and establishes the attested user
// session. The verifier must allowlist the expected Glimmer measurement —
// pinning published measurements is what lets the client trust a machine it
// does not own. For TLS, timeouts, or TOFU pinning use DialContext.
func Dial(addr string, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	return DialContext(context.Background(), addr, DialConfig{Service: serviceName, Verifier: verifier})
}

// DialConn establishes the attested user session over an existing
// connection — an in-memory pipe, a unix socket, or any other transport
// that reaches a Glimmer host. The caller retains ownership of conn when
// the handshake fails.
func DialConn(conn net.Conn, verifier *tee.QuoteVerifier, serviceName string) (*Client, error) {
	return NewClient(conn, DialConfig{Service: serviceName, Verifier: verifier})
}

// DialContext connects to a Glimmer host under cfg: TCP (bounded by
// DialTimeout and ctx), then TLS when configured (bounded by
// HandshakeTimeout), then the attested user session unless NoSession.
func DialContext(ctx context.Context, addr string, cfg DialConfig) (*Client, error) {
	d := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gaas: dial: %w", err)
	}
	if cfg.TLS != nil {
		tconn := tls.Client(conn, cfg.TLS)
		hctx := ctx
		if cfg.HandshakeTimeout > 0 {
			var cancel context.CancelFunc
			hctx, cancel = context.WithTimeout(ctx, cfg.HandshakeTimeout)
			defer cancel()
		}
		if err := tconn.HandshakeContext(hctx); err != nil {
			conn.Close()
			return nil, fmt.Errorf("gaas: tls handshake: %w", err)
		}
		conn = tconn
	}
	c, err := NewClient(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection under cfg, running the
// attested user handshake unless cfg.NoSession. The caller retains
// ownership of conn when the handshake fails.
func NewClient(conn net.Conn, cfg DialConfig) (*Client, error) {
	c := &Client{conn: conn, callTimeout: cfg.CallTimeout}
	if cfg.NoSession {
		return c, nil
	}
	if cfg.HandshakeTimeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(cfg.HandshakeTimeout)); err != nil {
			return nil, fmt.Errorf("gaas: handshake deadline: %w", err)
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort disarm
	}
	if err := c.handshake(cfg.Verifier, cfg.Service, cfg.KnownHosts); err != nil {
		return nil, err
	}
	return c, nil
}

// Measurement returns the enclave measurement attested during the
// handshake (zero for NoSession clients).
func (c *Client) Measurement() tee.Measurement { return c.measurement }

// armDeadline applies the per-call timeout before a round trip; the
// matching disarmDeadline clears it so an idle client connection is not
// killed by a deadline left over from the last call.
func (c *Client) armDeadline() error {
	if c.callTimeout <= 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.callTimeout))
}

func (c *Client) disarmDeadline() {
	if c.callTimeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
}

func (c *Client) roundTrip(cmd string, body []byte) ([]byte, error) {
	if err := c.armDeadline(); err != nil {
		return nil, fmt.Errorf("gaas: arm deadline: %w", err)
	}
	defer c.disarmDeadline()
	if err := writeFrame(c.conn, cmd, body); err != nil {
		return nil, err
	}
	return c.readReply()
}

// readReply reads one response frame and maps a non-ok status back onto
// the typed protocol errors — the shared reply tail for roundTrip and
// SubmitBatch (which writes its request through the pooled encode-once
// path instead).
func (c *Client) readReply() ([]byte, error) {
	status, out, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if status != "ok" {
		return nil, remoteError(out)
	}
	return out, nil
}

func (c *Client) handshake(verifier *tee.QuoteVerifier, serviceName string, known *KnownHosts) error {
	// The hello names the service: a multi-tenant host loads this session's
	// enclave from that tenant's configuration (frame-level routing).
	helloBytes, err := c.roundTrip(cmdUserHello, EncodeHelloBody(serviceName))
	if err != nil {
		return err
	}
	hello, err := attest.DecodeHello(helloBytes)
	if err != nil {
		return err
	}
	session, resp, err := attest.Respond(hello, verifier, nil, glimmer.UserContext(serviceName))
	if err != nil {
		return fmt.Errorf("gaas: remote glimmer not genuine: %w", err)
	}
	// The measurement is trustworthy here — Respond verified the quote's
	// certificate chain, signature, and session binding — so it is the
	// value the TOFU store pins. The check runs before user-complete:
	// a swapped enclave is refused before the session exists.
	m := hello.Quote.Report.Measurement
	if known != nil {
		if err := known.Check(serviceName, m); err != nil {
			return err
		}
	}
	if _, err := c.roundTrip(cmdUserComplete, attest.EncodeResponse(resp)); err != nil {
		return err
	}
	c.session = session
	c.measurement = m
	return nil
}

// Contribute submits a contribution with its private validation data over
// the attested session and returns the signed, blinded result.
func (c *Client) Contribute(round uint64, contribution fixed.Vector, private []int64) (glimmer.SignedContribution, error) {
	if c.session == nil {
		return glimmer.SignedContribution{}, errNoSession
	}
	req := glimmer.ContributionRequest{
		Round:        round,
		Contribution: glimmer.VectorToBits(contribution),
		Private:      glimmer.Int64sToBits(private),
	}
	record, err := c.session.Send(glimmer.EncodeContribution(req))
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	replyRecord, err := c.roundTrip(cmdUserContribute, record)
	if err != nil {
		return glimmer.SignedContribution{}, err
	}
	reply, err := c.session.Recv(replyRecord)
	if err != nil {
		return glimmer.SignedContribution{}, fmt.Errorf("gaas: reply authentication: %w", err)
	}
	switch {
	case string(reply) == "rejected":
		return glimmer.SignedContribution{}, ErrRejected
	case len(reply) > len("accepted:") && string(reply[:len("accepted:")]) == "accepted:":
		return glimmer.DecodeSignedContribution(reply[len("accepted:"):])
	}
	return glimmer.SignedContribution{}, fmt.Errorf("%w: malformed reply", ErrRemote)
}

// RequestTicket forwards an enclave's signed ticket request
// (glimmer.Device.TicketRequest) to the host's service side and returns
// the grant to install (glimmer.Device.InstallTicket) — one round trip,
// one ECDSA verification server-side, and every contribution after it
// rides the MAC fast path. Renewal is the same call again: when SubmitBatch
// tallies start rejecting a session whose ticket has expired, re-run the
// exchange and re-seal.
func (c *Client) RequestTicket(request []byte) ([]byte, error) {
	return c.roundTrip(cmdTicketGrant, request)
}

// SubmitBatch forwards signed contributions to the host's aggregation
// pipeline in one round trip and returns the server's accepted/rejected
// tallies. The host must have ingest enabled (gaas servers co-located with
// the service, like cmd/glimmerd).
//
// The batch frame is encoded exactly once, directly into a pooled buffer,
// and written in a single call. Earlier versions encoded the batch body
// and then re-encoded it inside the frame wrapper — twice the bytes, twice
// the copies — and paid that full cost again just to discover the frame
// was oversized before a split-and-retry. The size check is now arithmetic
// (wire.EncodedBatchSize), so the retryable ErrBatchTooLarge path encodes
// nothing at all.
func (c *Client) SubmitBatch(raws [][]byte) (accepted, rejected int, err error) {
	return c.submitBatchCmd(cmdSubmitBatch, raws)
}

// submitBatchCmd is the shared encode-once batch round trip behind
// SubmitBatch (submit-batch) and ForwardBatch (fleet-forward).
func (c *Client) submitBatchCmd(cmd string, raws [][]byte) (accepted, rejected int, err error) {
	// Check the protocol limits client-side: the server rejects an
	// oversized frame with ErrFrameTooLarge and then drops the connection
	// (losing the session), and an over-count batch with a generic remote
	// error; both cases should be the distinguishable "split and retry"
	// error before any bytes move.
	if len(raws) > wire.MaxBatchItems {
		return 0, 0, fmt.Errorf("%w: %d items", ErrBatchTooLarge, len(raws))
	}
	batchSize := wire.EncodedBatchSize(raws)
	if batchSize > MaxFrame-64 {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrBatchTooLarge, batchSize)
	}
	if err := c.armDeadline(); err != nil {
		return 0, 0, fmt.Errorf("gaas: arm deadline: %w", err)
	}
	defer c.disarmDeadline()
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFrameHeader((*bufp)[:0], cmd, batchSize)
	buf = wire.AppendBatch(buf, raws)
	_, err = c.conn.Write(buf)
	*bufp = buf[:0]
	putFrameBuf(bufp)
	if err != nil {
		return 0, 0, fmt.Errorf("gaas: write frame: %w", err)
	}
	reply, err := c.readReply()
	if err != nil {
		return 0, 0, err
	}
	var r wire.Reader
	r.Reset(reply)
	accepted = int(r.Uint32())
	rejected = int(r.Uint32())
	if err := r.Done(); err != nil {
		return 0, 0, fmt.Errorf("gaas: submit reply: %w", err)
	}
	return accepted, rejected, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
