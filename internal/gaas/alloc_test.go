package gaas

import (
	"bytes"
	"net"
	"runtime"
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/race"
	"glimmers/internal/wire"
)

// tallyIngestor counts batch items without retaining them, standing in
// for a RoundManager so framing tests skip enclave setup.
type tallyIngestor struct {
	mu    sync.Mutex
	total int
	sum   uint64
}

func (ti *tallyIngestor) IngestBatch(raws [][]byte) (int, []error) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	for _, raw := range raws {
		ti.total++
		for _, b := range raw {
			ti.sum += uint64(b)
		}
	}
	return len(raws), make([]error, len(raws))
}

// frameWorld wires a raw client connection to a server whose only route
// is submit-batch into a tallyIngestor — the framing layer in isolation,
// no enclave setup. It exercises the real handleConn loop, so the pooled
// read/reply hot path under test is exactly the production one.
func frameWorld(t *testing.T) (*Client, *tallyIngestor) {
	t.Helper()
	ing := &tallyIngestor{}
	srv := New(ServerConfig{Ingest: ing})
	cliConn, srvConn := net.Pipe()
	go srv.handleConn(srvConn)
	t.Cleanup(func() { cliConn.Close(); srvConn.Close() })
	return &Client{conn: cliConn}, ing
}

// TestSubmitBatchEncodesOnce pins the satellite fix: submitting a batch
// allocates O(1) memory on the client — the frame is encoded once into a
// pooled buffer, not built and re-wrapped per call — so bytes allocated
// per submit stay far below the frame size.
func TestSubmitBatchEncodesOnce(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	client, ing := frameWorld(t)
	item := bytes.Repeat([]byte{0xAB}, 1024)
	raws := make([][]byte, 128)
	for i := range raws {
		raws[i] = item
	}
	frameSize := wire.EncodedBatchSize(raws) // ~128 KiB
	// Warm the pools.
	for i := 0; i < 3; i++ {
		if _, _, err := client.SubmitBatch(raws); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 32
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		accepted, rejected, err := client.SubmitBatch(raws)
		if err != nil {
			t.Fatal(err)
		}
		if accepted != len(raws) || rejected != 0 {
			t.Fatalf("submit = (%d, %d)", accepted, rejected)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := int(after.TotalAlloc-before.TotalAlloc) / rounds
	// Before the fix each submit allocated ~2× the frame (body + wrapped
	// payload). Pooled encoding leaves only the small reply round trip;
	// even with noise this should sit well under half a frame.
	if perOp > frameSize/2 {
		t.Errorf("SubmitBatch allocates %d B/op for a %d B frame; pooled encode-once expected", perOp, frameSize)
	}
	if ing.total != (rounds+3)*len(raws) {
		t.Fatalf("server saw %d items", ing.total)
	}
}

// TestSubmitBatchTooLargeEncodesNothing confirms the retryable-path half
// of the fix: an oversized batch is refused by arithmetic alone, without
// encoding a frame that would be thrown away.
func TestSubmitBatchTooLargeEncodesNothing(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	client := &Client{} // never touches the conn: refusal is client-side
	huge := make([][]byte, 4)
	for i := range huge {
		huge[i] = make([]byte, (MaxFrame/4)+64)
	}
	if got := testing.AllocsPerRun(20, func() {
		if _, _, err := client.SubmitBatch(huge); err == nil {
			t.Fatal("oversized batch accepted")
		}
	}); got > 4 {
		t.Errorf("oversized refusal allocates %.1f allocs/op; want error-only cost", got)
	}
}

// TestConcurrentSubmitBatchPooledFrames is the -race guard for the frame
// buffer pool: concurrent clients hammer one server with distinct batches
// and every byte must land intact (a recycled frame buffer shared across
// connections would corrupt items and change the tally).
func TestConcurrentSubmitBatchPooledFrames(t *testing.T) {
	const (
		clients   = 4
		perClient = 20
		items     = 32
	)
	ing := &tallyIngestor{}
	srv := New(ServerConfig{Ingest: ing})
	var wg sync.WaitGroup
	wantSum := uint64(0)
	var sumMu sync.Mutex
	for c := 0; c < clients; c++ {
		cliConn, srvConn := net.Pipe()
		go srv.handleConn(srvConn)
		client := &Client{conn: cliConn}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer cliConn.Close()
			local := uint64(0)
			for r := 0; r < perClient; r++ {
				raws := make([][]byte, items)
				for i := range raws {
					raws[i] = bytes.Repeat([]byte{byte(c*31 + r*7 + i)}, 64)
					for _, b := range raws[i] {
						local += uint64(b)
					}
				}
				accepted, rejected, err := client.SubmitBatch(raws)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if accepted != items || rejected != 0 {
					t.Errorf("client %d: (%d, %d)", c, accepted, rejected)
					return
				}
			}
			sumMu.Lock()
			wantSum += local
			sumMu.Unlock()
		}(c)
	}
	wg.Wait()
	if ing.total != clients*perClient*items {
		t.Fatalf("server saw %d items, want %d", ing.total, clients*perClient*items)
	}
	if ing.sum != wantSum {
		t.Fatalf("byte checksum %d != %d: frame buffers aliased across connections", ing.sum, wantSum)
	}
}

// TestZeroCopyBatchMatchesRealStack cross-checks the framing rewrite
// against the full attested stack: a real client contributes through a
// hosted enclave and batch-submits; totals must match the copying-era
// behaviour byte for byte.
func TestZeroCopyBatchMatchesRealStack(t *testing.T) {
	w := newWorldIngest(t, true)
	client, err := Dial(w.addr, w.verifier(), w.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var raws [][]byte
	want := fixed.NewVector(dim)
	for _, val := range []float64{0.2, 0.5, 0.8} {
		sc, err := client.Contribute(4, fixed.FromFloats([]float64{val, val, val}), nil)
		if err != nil {
			t.Fatal(err)
		}
		want.AddInPlace(sc.Blinded)
		raws = append(raws, glimmer.EncodeSignedContribution(sc))
	}
	accepted, rejected, err := client.SubmitBatch(raws)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 3 || rejected != 0 {
		t.Fatalf("submit = (%d, %d), want (3, 0)", accepted, rejected)
	}
	p := w.rounds.Round(4)
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	got := p.Sum()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
