package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	items := [][]byte{[]byte("one"), {}, []byte("three")}
	got, err := DecodeBatch(EncodeBatch(items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("len = %d, want %d", len(got), len(items))
	}
	for i := range items {
		if !bytes.Equal(got[i], items[i]) {
			t.Fatalf("item %d = %q, want %q", i, got[i], items[i])
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	got, err := DecodeBatch(EncodeBatch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestBatchItemsAreCopies(t *testing.T) {
	frame := EncodeBatch([][]byte{[]byte("abcd")})
	items, err := DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xFF
	if !bytes.Equal(items[0], []byte("abcd")) {
		t.Fatal("decoded item aliases the frame buffer")
	}
}

func TestBatchRejectsOversizedCount(t *testing.T) {
	frame := NewWriter().Uint32(MaxBatchItems + 1).Finish()
	if _, err := DecodeBatch(frame); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
}

func TestBatchRejectsTrailingAndTruncated(t *testing.T) {
	frame := EncodeBatch([][]byte{[]byte("x")})
	if _, err := DecodeBatch(append(frame, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeBatch(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated batch accepted")
	}
}
