package wire

import (
	"fmt"

	"glimmers/internal/tee"
)

// Codecs for tee attestation structures, so every protocol ships quotes the
// same way.

// AppendQuote encodes a quote into w.
func AppendQuote(w *Writer, q tee.Quote) {
	w.Bytes(q.Report.Measurement[:])
	w.Bytes(q.Report.Signer[:])
	w.Bytes(q.Report.Platform[:])
	w.Bytes(q.Report.Data[:])
	w.Bytes(q.Report.MAC[:])
	w.Bytes(q.Cert.PlatformID[:])
	w.Bytes(q.Cert.AttestKey)
	w.Bytes(q.Cert.Signature)
	w.Bytes(q.Signature)
}

// ReadQuote decodes a quote from r.
func ReadQuote(r *Reader) (tee.Quote, error) {
	var q tee.Quote
	if err := copyExact(q.Report.Measurement[:], r.Bytes(), "measurement"); err != nil {
		return q, err
	}
	if err := copyExact(q.Report.Signer[:], r.Bytes(), "signer"); err != nil {
		return q, err
	}
	if err := copyExact(q.Report.Platform[:], r.Bytes(), "platform"); err != nil {
		return q, err
	}
	if err := copyExact(q.Report.Data[:], r.Bytes(), "report data"); err != nil {
		return q, err
	}
	if err := copyExact(q.Report.MAC[:], r.Bytes(), "mac"); err != nil {
		return q, err
	}
	if err := copyExact(q.Cert.PlatformID[:], r.Bytes(), "cert platform"); err != nil {
		return q, err
	}
	q.Cert.AttestKey = r.Bytes()
	q.Cert.Signature = r.Bytes()
	q.Signature = r.Bytes()
	return q, r.Err()
}

// EncodeQuote serializes a quote as a standalone message.
func EncodeQuote(q tee.Quote) []byte {
	w := NewWriter()
	AppendQuote(w, q)
	return w.Finish()
}

// DecodeQuote reverses EncodeQuote.
func DecodeQuote(data []byte) (tee.Quote, error) {
	r := NewReader(data)
	q, err := ReadQuote(r)
	if err != nil {
		return q, err
	}
	return q, r.Done()
}

func copyExact(dst, src []byte, what string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("wire: %s field is %d bytes, want %d", what, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}
