package wire

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden vectors: the wire format is the public, auditable contract of
// §4.1 — services, Glimmers, and auditors on different versions must parse
// each other's bytes. The fixtures in testdata/ are the frozen encodings;
// a codec change that alters them is a cross-version compatibility break
// and must bump the protocol, not silently reshape the bytes.

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	data, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return data
}

// goldenKitchenSink builds one message using every writer primitive.
func goldenKitchenSink() []byte {
	return NewWriter().
		String("glimmers/golden/v1").
		Bytes([]byte{0xDE, 0xAD, 0xBE, 0xEF}).
		Uint64(0x0102030405060708).
		Uint32(0x0A0B0C0D).
		Byte(0x7F).
		Bool(true).
		Uint64s([]uint64{1, 2, 0xFFFFFFFFFFFFFFFF}).
		Finish()
}

func TestGoldenKitchenSink(t *testing.T) {
	want := readGolden(t, "kitchen_sink.hex")
	got := goldenKitchenSink()
	if !bytes.Equal(got, want) {
		t.Fatalf("writer output changed:\n got: %x\nwant: %x", got, want)
	}
	// Decode the frozen bytes with every matching reader primitive.
	r := NewReader(want)
	if s := r.String(); s != "glimmers/golden/v1" {
		t.Errorf("string = %q", s)
	}
	if b := r.Bytes(); !bytes.Equal(b, []byte{0xDE, 0xAD, 0xBE, 0xEF}) {
		t.Errorf("bytes = %x", b)
	}
	if v := r.Uint64(); v != 0x0102030405060708 {
		t.Errorf("uint64 = %x", v)
	}
	if v := r.Uint32(); v != 0x0A0B0C0D {
		t.Errorf("uint32 = %x", v)
	}
	if v := r.Byte(); v != 0x7F {
		t.Errorf("byte = %x", v)
	}
	if v := r.Bool(); !v {
		t.Errorf("bool = false")
	}
	vs := r.Uint64s()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("uint64s = %v", vs)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

// goldenBatchItems is the frozen batch fixture's content, including the
// tricky shapes: an empty item and a binary one.
func goldenBatchItems() [][]byte {
	return [][]byte{
		[]byte("alpha"),
		{},
		{0x00, 0x01, 0x02, 0xFF},
	}
}

func TestGoldenBatch(t *testing.T) {
	want := readGolden(t, "batch.hex")
	got := EncodeBatch(goldenBatchItems())
	if !bytes.Equal(got, want) {
		t.Fatalf("batch encoding changed:\n got: %x\nwant: %x", got, want)
	}
	items, err := DecodeBatch(want)
	if err != nil {
		t.Fatal(err)
	}
	wantItems := goldenBatchItems()
	if len(items) != len(wantItems) {
		t.Fatalf("decoded %d items, want %d", len(items), len(wantItems))
	}
	for i := range items {
		if !bytes.Equal(items[i], wantItems[i]) {
			t.Errorf("item %d = %x, want %x", i, items[i], wantItems[i])
		}
	}
}
