package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"glimmers/internal/tee"
)

func TestRoundTripAllFieldTypes(t *testing.T) {
	msg := NewWriter().
		Bytes([]byte{1, 2, 3}).
		String("hello").
		Uint64(1<<63 + 7).
		Uint32(42).
		Byte(9).
		Bool(true).
		Bool(false).
		Uint64s([]uint64{5, 6, 7}).
		Finish()
	r := NewReader(msg)
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Uint64(); got != 1<<63+7 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Uint32(); got != 42 {
		t.Errorf("Uint32 = %d", got)
	}
	if got := r.Byte(); got != 9 {
		t.Errorf("Byte = %d", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool true read as false")
	}
	if got := r.Bool(); got {
		t.Error("Bool false read as true")
	}
	if got := r.Uint64s(); len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Errorf("Uint64s = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done = %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	msg := NewWriter().Bytes([]byte("payload")).Finish()
	for cut := 0; cut < len(msg); cut++ {
		r := NewReader(msg[:cut])
		r.Bytes()
		if err := r.Done(); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	msg := append(NewWriter().Uint64(1).Finish(), 0xff)
	r := NewReader(msg)
	r.Uint64()
	if err := r.Done(); !errors.Is(err, ErrTrailing) {
		t.Errorf("Done = %v, want ErrTrailing", err)
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader([]byte{0, 0})
	_ = r.Uint64() // fails: truncated
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads stay failed and return zero values.
	if got := r.Uint32(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
	if r.Bytes() != nil {
		t.Error("Bytes after error should be nil")
	}
}

func TestNonCanonicalBoolRejected(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool value 2 accepted — covert channel in boolean field")
	}
}

func TestOversizedFieldLengthRejected(t *testing.T) {
	msg := []byte{0xff, 0xff, 0xff, 0xff}
	r := NewReader(msg)
	r.Bytes()
	if r.Err() == nil {
		t.Fatal("absurd length prefix accepted")
	}
}

func TestUint64sLengthBomb(t *testing.T) {
	// A count claiming 2^31 elements with no data must fail fast, not
	// allocate.
	msg := NewWriter().Uint32(1 << 31).Finish()
	r := NewReader(msg)
	if got := r.Uint64s(); got != nil {
		t.Errorf("Uint64s = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("length bomb accepted")
	}
}

func TestBytesReturnsCopy(t *testing.T) {
	msg := NewWriter().Bytes([]byte("abc")).Finish()
	r := NewReader(msg)
	got := r.Bytes()
	msg[5] = 'X' // mutate underlying buffer (offset 4 is length prefix end)
	if got[1] == 'X' {
		t.Fatal("decoded field aliases input buffer")
	}
}

func TestRemaining(t *testing.T) {
	msg := NewWriter().Uint32(1).Uint32(2).Finish()
	r := NewReader(msg)
	if r.Remaining() != 8 {
		t.Errorf("Remaining = %d, want 8", r.Remaining())
	}
	r.Uint32()
	if r.Remaining() != 4 {
		t.Errorf("Remaining = %d, want 4", r.Remaining())
	}
}

func TestQuoteCodecRoundTrip(t *testing.T) {
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	var q tee.Quote
	bin := tee.NewBinary("qc", "1", []byte("qc")).
		Define("quote", func(env *tee.Env, input []byte) ([]byte, error) {
			var err error
			q, err = env.NewQuote(input)
			return nil, err
		})
	e, err := p.Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("quote", []byte("binding")); err != nil {
		t.Fatal(err)
	}
	encoded := EncodeQuote(q)
	decoded, err := DecodeQuote(encoded)
	if err != nil {
		t.Fatal(err)
	}
	v := &tee.QuoteVerifier{Root: as.Root()}
	if err := v.Verify(decoded); err != nil {
		t.Fatalf("decoded quote fails verification: %v", err)
	}
	if decoded.Report.Measurement != q.Report.Measurement {
		t.Fatal("measurement corrupted in codec")
	}
	// Any truncation of the encoding must fail decoding.
	for _, cut := range []int{0, 1, len(encoded) / 2, len(encoded) - 1} {
		if _, err := DecodeQuote(encoded[:cut]); err == nil {
			t.Errorf("truncated quote at %d decoded successfully", cut)
		}
	}
}

func TestQuoteCodecWrongFieldWidth(t *testing.T) {
	// A quote whose measurement field has the wrong width must be rejected.
	w := NewWriter()
	w.Bytes([]byte("short")) // measurement: wrong length
	for i := 0; i < 8; i++ {
		w.Bytes(nil)
	}
	if _, err := DecodeQuote(w.Finish()); err == nil {
		t.Fatal("malformed quote accepted")
	}
}

// Property: a writer sequence of arbitrary byte fields round trips.
func TestQuickBytesFieldsRoundTrip(t *testing.T) {
	f := func(fields [][]byte) bool {
		w := NewWriter()
		for _, fd := range fields {
			w.Bytes(fd)
		}
		r := NewReader(w.Finish())
		for _, fd := range fields {
			got := r.Bytes()
			if !bytes.Equal(got, fd) {
				return false
			}
		}
		return r.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: appending any non-empty suffix breaks Done.
func TestQuickTrailingAlwaysDetected(t *testing.T) {
	f := func(payload, suffix []byte) bool {
		if len(suffix) == 0 {
			suffix = []byte{0}
		}
		msg := NewWriter().Bytes(payload).Finish()
		r := NewReader(append(msg, suffix...))
		r.Bytes()
		return r.Done() != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
