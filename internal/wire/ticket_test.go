package wire

import (
	"bytes"
	"testing"
)

// goldenTicketRequest and goldenTicketGrant are the frozen control-plane
// fixtures: the ticket handshake is cross-version protocol surface, so its
// bytes are pinned the same way the batch and hello encodings are.
func goldenTicketRequest() TicketRequest {
	return TicketRequest{
		Service:     "iot.example",
		DevicePub:   bytes.Repeat([]byte{0x11}, DHPublicLen),
		Measurement: bytes.Repeat([]byte{0x22}, MeasurementLen),
		RoundFirst:  3,
		RoundLast:   66,
		Signature:   []byte{0xAA, 0xBB, 0xCC, 0xDD},
	}
}

func goldenTicketGrant() TicketGrant {
	return TicketGrant{
		Service:     "iot.example",
		ID:          0x0102030405060708,
		ServerPub:   bytes.Repeat([]byte{0x33}, DHPublicLen),
		RoundFirst:  3,
		RoundLast:   35,
		ExpiresUnix: 1700000600,
	}
}

func TestGoldenTicketRequest(t *testing.T) {
	want := readGolden(t, "ticket_request.hex")
	got := EncodeTicketRequest(goldenTicketRequest())
	if !bytes.Equal(got, want) {
		t.Fatalf("ticket request encoding changed:\n got: %x\nwant: %x", got, want)
	}
	dec, err := DecodeTicketRequest(want)
	if err != nil {
		t.Fatal(err)
	}
	if re := EncodeTicketRequest(dec); !bytes.Equal(re, want) {
		t.Fatalf("decode/encode not canonical")
	}
	wantPre := readGolden(t, "ticket_request_preimage.hex")
	if pre := dec.SignedBytes(); !bytes.Equal(pre, wantPre) {
		t.Fatalf("ticket request signing preimage changed:\n got: %x\nwant: %x", pre, wantPre)
	}
}

func TestGoldenTicketGrant(t *testing.T) {
	want := readGolden(t, "ticket_grant.hex")
	got := EncodeTicketGrant(goldenTicketGrant())
	if !bytes.Equal(got, want) {
		t.Fatalf("ticket grant encoding changed:\n got: %x\nwant: %x", got, want)
	}
	dec, err := DecodeTicketGrant(want)
	if err != nil {
		t.Fatal(err)
	}
	if re := EncodeTicketGrant(dec); !bytes.Equal(re, want) {
		t.Fatalf("decode/encode not canonical")
	}
}

// TestTicketDecodeRefusals pins the refusal surface shared with the fuzz
// target: truncation, trailing bytes, and wrong-length fixed fields.
func TestTicketDecodeRefusals(t *testing.T) {
	req := EncodeTicketRequest(goldenTicketRequest())
	grant := EncodeTicketGrant(goldenTicketGrant())
	for name, data := range map[string][]byte{
		"req-truncated":   req[:len(req)-2],
		"req-trailing":    append(append([]byte(nil), req...), 0x00),
		"req-garbage":     {0xFF, 0xFF, 0xFF, 0xFF},
		"grant-truncated": grant[:len(grant)-2],
		"grant-trailing":  append(append([]byte(nil), grant...), 0x00),
	} {
		switch {
		case bytes.HasPrefix([]byte(name), []byte("req")):
			if _, err := DecodeTicketRequest(data); err == nil {
				t.Errorf("%s: accepted", name)
			}
		default:
			if _, err := DecodeTicketGrant(data); err == nil {
				t.Errorf("%s: accepted", name)
			}
		}
	}
	shortPub := goldenTicketRequest()
	shortPub.DevicePub = shortPub.DevicePub[:16]
	if _, err := DecodeTicketRequest(EncodeTicketRequest(shortPub)); err == nil {
		t.Error("accepted request with short device public value")
	}
	shortMeas := goldenTicketRequest()
	shortMeas.Measurement = shortMeas.Measurement[:8]
	if _, err := DecodeTicketRequest(EncodeTicketRequest(shortMeas)); err == nil {
		t.Error("accepted request with short measurement")
	}
	shortServer := goldenTicketGrant()
	shortServer.ServerPub = shortServer.ServerPub[:16]
	if _, err := DecodeTicketGrant(EncodeTicketGrant(shortServer)); err == nil {
		t.Error("accepted grant with short server public value")
	}
}
