package wire

import (
	"bytes"
	"errors"
	"fmt"
)

// Partial-seal codecs: the fleet's cross-node merge plane. When a round's
// cohort is split across glimmerd nodes — consistent-hash sharding, or a
// mid-round re-home after a crash or partition — each node seals only a
// *partial* aggregate. The PartialSeal message carries that partial to the
// merge coordinator: the node's identity (ring ID, enclave measurement,
// verify key), the round it covers, how many partials the round splits
// into, the blinded partial sum, the accept/reject accounting, and every
// dedup digest the partial covers. The digests are what let the
// coordinator demand *disjoint cohort coverage*: two partials claiming the
// same contribution can never both merge, so nothing double-counts no
// matter how a shard was re-homed. MergeResult is the coordinator's
// answer. Both encodings are public and auditable like every other
// message in the system, and frozen by golden fixtures.

// SealDigestLen is the length of one dedup digest as it appears in a
// partial seal (SHA-256 of the raw contribution, or the session MAC on
// the ticketed path — both 32 bytes).
const SealDigestLen = 32

// ErrPartialSeal is the decode-failure sentinel both merge-plane codecs
// wrap.
var ErrPartialSeal = errors.New("wire: malformed partial-seal message")

// PartialSeal is one node's sealed share of a round's aggregate.
type PartialSeal struct {
	// Service names the tenant; the signature covers it, so a seal
	// replayed against another tenant can never verify.
	Service string
	// Round is the aggregation round this partial belongs to.
	Round uint64
	// NodeID is the sealing node's identity on the fleet ring.
	NodeID uint32
	// ShardCount is how many partials the node believes this round splits
	// into; the coordinator refuses a seal whose count disagrees with the
	// merge it is running (a stale pre-re-home seal fails here).
	ShardCount uint32
	// Measurement is the sealing node's enclave measurement; the
	// coordinator applies its allowlist (or TOFU pin) here.
	Measurement []byte
	// NodeKey is the node's ECDSA verify key (PKIX DER). It is covered by
	// the signature, so coordinators that pin keys out of band can demand
	// a match, and TOFU coordinators pin it on first contact.
	NodeKey []byte
	// Count is the number of contributions this partial accepted; it must
	// equal the number of digests carried below.
	Count uint64
	// Rejected is the number of submissions this node refused for the
	// round — the accounting the coordinator reconciles globally.
	Rejected uint64
	// Sum is the blinded partial sum, one ring lane per dimension. It is
	// blinded exactly like the contributions it totals, so the seal leaks
	// nothing the transport didn't already carry.
	Sum []uint64
	// Digests is the partial's dedup coverage: Count digests of
	// SealDigestLen bytes each, concatenated in strictly ascending
	// lexicographic order (the canonical form — sorted, no duplicates).
	Digests []byte
	// Signature is the node's ECDSA signature over SignedBytes.
	Signature []byte
}

// DigestCount returns the number of dedup digests the seal carries.
func (s PartialSeal) DigestCount() int { return len(s.Digests) / SealDigestLen }

// DigestAt returns the i-th digest as an array (copying 32 bytes).
func (s PartialSeal) DigestAt(i int) [SealDigestLen]byte {
	var d [SealDigestLen]byte
	copy(d[:], s.Digests[i*SealDigestLen:])
	return d
}

// SignedBytes returns the byte string the seal signature covers: a
// domain-separated encoding of every field except the signature itself.
func (s PartialSeal) SignedBytes() []byte {
	w := NewWriter()
	w.String("glimmers/partial-seal/v1")
	s.writeFields(w)
	return w.Finish()
}

func (s PartialSeal) writeFields(w *Writer) {
	w.String(s.Service)
	w.Uint64(s.Round)
	w.Uint32(s.NodeID)
	w.Uint32(s.ShardCount)
	w.Bytes(s.Measurement)
	w.Bytes(s.NodeKey)
	w.Uint64(s.Count)
	w.Uint64(s.Rejected)
	w.Uint64s(s.Sum)
	w.Bytes(s.Digests)
}

// EncodePartialSeal serializes the full seal.
func EncodePartialSeal(s PartialSeal) []byte {
	w := NewWriter()
	s.writeFields(w)
	w.Bytes(s.Signature)
	return w.Finish()
}

// DecodePartialSeal reverses EncodePartialSeal, enforcing the structural
// invariants — fixed measurement length, digest-count/Count agreement,
// and canonical (strictly ascending, duplicate-free) digest order — so a
// malformed seal is refused before any crypto runs.
func DecodePartialSeal(data []byte) (PartialSeal, error) {
	r := NewReader(data)
	s := PartialSeal{
		Service:     r.String(),
		Round:       r.Uint64(),
		NodeID:      r.Uint32(),
		ShardCount:  r.Uint32(),
		Measurement: r.Bytes(),
		NodeKey:     r.Bytes(),
		Count:       r.Uint64(),
		Rejected:    r.Uint64(),
		Sum:         r.Uint64s(),
		Digests:     r.Bytes(),
		Signature:   r.Bytes(),
	}
	if err := r.Done(); err != nil {
		return s, fmt.Errorf("%w: seal: %v", ErrPartialSeal, err)
	}
	if len(s.Measurement) != MeasurementLen {
		return s, fmt.Errorf("%w: measurement is %d bytes", ErrPartialSeal, len(s.Measurement))
	}
	if len(s.Digests)%SealDigestLen != 0 {
		return s, fmt.Errorf("%w: digest block is %d bytes", ErrPartialSeal, len(s.Digests))
	}
	if n := len(s.Digests) / SealDigestLen; uint64(n) != s.Count {
		return s, fmt.Errorf("%w: %d digests for count %d", ErrPartialSeal, n, s.Count)
	}
	for i := SealDigestLen; i < len(s.Digests); i += SealDigestLen {
		if bytes.Compare(s.Digests[i-SealDigestLen:i], s.Digests[i:i+SealDigestLen]) >= 0 {
			return s, fmt.Errorf("%w: digests not in strict ascending order", ErrPartialSeal)
		}
	}
	return s, nil
}

// MergeResult is the coordinator's running (and, once Merged == Expect,
// final) answer for one round's merge: how many partials it demands, how
// many it has folded, the global accept/reject accounting, and the merged
// blinded sum. It travels back as the fleet-merge reply so a sealing node
// learns the round's global state from its own ack.
type MergeResult struct {
	// Service and Round identify the merge.
	Service string
	Round   uint64
	// Expect is how many partials complete the merge; Merged is how many
	// have been folded in so far. Merged == Expect means the Sum below is
	// the round's exact (still blinded) total.
	Expect uint32
	Merged uint32
	// Count and Rejected are the global accounting: accepted contributions
	// and refused submissions summed across every merged partial.
	Count    uint64
	Rejected uint64
	// Refused counts partial seals the coordinator turned away (bad
	// signature, replay, overlap, stale shard count) without disturbing
	// the merge.
	Refused uint64
	// Sum is the merged blinded sum so far.
	Sum []uint64
}

// EncodeMergeResult serializes the merge state.
func EncodeMergeResult(m MergeResult) []byte {
	w := NewWriter()
	w.String(m.Service)
	w.Uint64(m.Round)
	w.Uint32(m.Expect)
	w.Uint32(m.Merged)
	w.Uint64(m.Count)
	w.Uint64(m.Rejected)
	w.Uint64(m.Refused)
	w.Uint64s(m.Sum)
	return w.Finish()
}

// DecodeMergeResult reverses EncodeMergeResult.
func DecodeMergeResult(data []byte) (MergeResult, error) {
	r := NewReader(data)
	m := MergeResult{
		Service:  r.String(),
		Round:    r.Uint64(),
		Expect:   r.Uint32(),
		Merged:   r.Uint32(),
		Count:    r.Uint64(),
		Rejected: r.Uint64(),
		Refused:  r.Uint64(),
		Sum:      r.Uint64s(),
	}
	if err := r.Done(); err != nil {
		return m, fmt.Errorf("%w: merge result: %v", ErrPartialSeal, err)
	}
	return m, nil
}
