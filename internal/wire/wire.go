// Package wire provides the deterministic binary message encoding shared by
// every protocol in the system: Glimmer↔service provisioning, attested
// handshakes, Glimmer-as-a-service framing, and the public contribution
// format the runtime auditor checks.
//
// The format is deliberately trivial — length-prefixed fields appended in a
// fixed order — because §4.1 of the paper requires the message format
// between a Glimmer and its service to be public and auditable: an auditor
// must be able to decide, from bytes alone, that a message is well formed
// and carries no more information than the format allows.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Limits guard against malformed length prefixes when decoding untrusted
// bytes.
const (
	// MaxFieldLen caps one field (64 MiB).
	MaxFieldLen = 64 << 20
)

// ErrTruncated is returned when a reader runs past the end of the message.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTrailing is returned by Done when bytes remain after the last field —
// a message smuggling extra content, which the auditor treats as malformed.
var ErrTrailing = errors.New("wire: trailing bytes after message")

// Writer accumulates an encoded message.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Reset empties the writer while keeping its buffer capacity, so one
// writer can encode a stream of messages without re-allocating. Hot paths
// (gaas framing, bulk encoders) pool Writers and Reset between uses.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes appends a length-prefixed byte field.
func (w *Writer) Bytes(b []byte) *Writer {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	w.buf = append(w.buf, lenBuf[:]...)
	w.buf = append(w.buf, b...)
	return w
}

// String appends a length-prefixed string field.
func (w *Writer) String(s string) *Writer { return w.Bytes([]byte(s)) }

// BytesPrefix appends only the 4-byte length header of a byte field whose
// n content bytes the caller then appends piecewise with Raw. The result
// is byte-identical to Bytes on the concatenated content, without the
// caller having to stage that content contiguously first — bulk encoders
// (WAL records full of digests and lanes) skip a copy this way. The
// caller owes exactly n Raw bytes before the next framed field.
func (w *Writer) BytesPrefix(n int) *Writer {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(n))
	w.buf = append(w.buf, lenBuf[:]...)
	return w
}

// Raw appends bytes with no framing: content promised by an earlier
// BytesPrefix.
func (w *Writer) Raw(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// Uint64 appends a fixed-width 64-bit field.
func (w *Writer) Uint64(v uint64) *Writer {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// Uint32 appends a fixed-width 32-bit field.
func (w *Writer) Uint32(v uint32) *Writer {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// Byte appends a single byte.
func (w *Writer) Byte(v byte) *Writer {
	w.buf = append(w.buf, v)
	return w
}

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) *Writer {
	if v {
		return w.Byte(1)
	}
	return w.Byte(0)
}

// Uint64s appends a counted sequence of 64-bit values.
func (w *Writer) Uint64s(vs []uint64) *Writer {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Uint64(v)
	}
	return w
}

// Finish returns the encoded message.
func (w *Writer) Finish() []byte { return w.buf }

// Reader decodes a message written by Writer. Errors are sticky: after the
// first failure all subsequent reads return zero values and Err reports the
// failure. This lets decoding code read a whole struct and check once.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps an encoded message.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Reset re-points the reader at a new message and clears any sticky error.
// Decoders on the ingest hot path keep a Reader value on the stack and
// Reset it per message instead of allocating a fresh one.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.off = 0
	r.err = nil
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail(ErrTruncated)
		return nil
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

// fieldLen reads and validates a field's length prefix.
func (r *Reader) fieldLen() int {
	lenBytes := r.take(4)
	if r.err != nil {
		return 0
	}
	n := binary.BigEndian.Uint32(lenBytes)
	if n > MaxFieldLen {
		r.fail(fmt.Errorf("wire: field length %d exceeds limit", n))
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte field. The returned slice is a copy.
func (r *Reader) Bytes() []byte {
	n := r.fieldLen()
	if r.err != nil {
		return nil
	}
	raw := r.take(n)
	if r.err != nil {
		return nil
	}
	return append([]byte(nil), raw...)
}

// String reads a length-prefixed string field.
func (r *Reader) String() string { return string(r.Bytes()) }

// BytesView reads a length-prefixed byte field without copying: the
// returned slice aliases the reader's input and is valid only while the
// input buffer is. The zero-allocation ingest path decodes with views and
// copies nothing it does not retain.
func (r *Reader) BytesView() []byte {
	n := r.fieldLen()
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// SkipBytes advances past a length-prefixed byte field without copying it,
// for readers that only need a later field.
func (r *Reader) SkipBytes() {
	n := r.fieldLen()
	if r.err != nil {
		return
	}
	r.take(n)
}

// Uint64 reads a fixed-width 64-bit field.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Uint32 reads a fixed-width 32-bit field.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean; any value other than 0 or 1 is an error
// (a covert channel in a boolean field, which the auditor must reject).
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(errors.New("wire: boolean field with non-canonical value"))
		return false
	}
}

// Uint64s reads a counted sequence of 64-bit values.
func (r *Reader) Uint64s() []uint64 {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if uint64(n)*8 > uint64(len(r.data)-r.off) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Uint64sInto reads a counted sequence of 64-bit values into dst's
// backing array, growing it only when the capacity is insufficient. It
// returns the filled slice (len == the decoded count). Steady-state
// decoders pass the previous call's result back in and allocate nothing
// once the scratch has grown to the workload's size.
func (r *Reader) Uint64sInto(dst []uint64) []uint64 {
	n := r.Uint32()
	if r.err != nil {
		return dst[:0]
	}
	if uint64(n)*8 > uint64(len(r.data)-r.off) {
		r.fail(ErrTruncated)
		return dst[:0]
	}
	if cap(dst) < int(n) {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = r.Uint64()
	}
	if r.err != nil {
		return dst[:0]
	}
	return dst
}

// Uint64sView reads a counted sequence of 64-bit values as a view of its
// raw big-endian lane bytes — 8 bytes per value, contiguous, aliasing the
// reader's input — without decoding anything. The batch ingest path
// accumulates straight from these bytes (fixed.AccumulateWireInto), so a
// vector travels from transport frame to shard accumulator with zero
// intermediate copies. The count is len(view)/8.
func (r *Reader) Uint64sView() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if uint64(n)*8 > uint64(len(r.data)-r.off) {
		r.fail(ErrTruncated)
		return nil
	}
	return r.take(int(n) * 8)
}

// Done verifies the message was fully consumed and returns any decode error.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.data)-r.off)
	}
	return nil
}

// Remaining reports how many undecoded bytes are left.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.data) - r.off
}
