package wire

import (
	"errors"
	"fmt"
)

// Ticket codecs: the attested-session-ticket control plane. A device-side
// Glimmer enclave signs one TicketRequest (the single asymmetric operation
// of a session); the service answers with a TicketGrant carrying no secret
// at all — both sides derive the HMAC session key from the X25519 exchange
// the request/grant pair completes. The encodings are public and auditable
// like every other message in the system, and frozen by golden fixtures.

// DHPublicLen is the length of an X25519 public value.
const DHPublicLen = 32

// MeasurementLen is the length of an enclave measurement as it appears in
// wire messages.
const MeasurementLen = 32

// ErrTicket is the decode-failure sentinel both ticket codecs wrap.
var ErrTicket = errors.New("wire: malformed ticket message")

// TicketRequest asks a service for a contribution session ticket. The
// enclave signs it with the provisioned contribution-signing key, so one
// ECDSA verification vouches for everything the session later MACs.
type TicketRequest struct {
	// Service names the tenant the ticket is for; the signature covers it,
	// so a request replayed to another tenant can never verify.
	Service string
	// DevicePub is the enclave's fresh X25519 public value. The session key
	// derives from the DH exchange, so a captured request (or grant) is
	// useless without the enclave-held private value.
	DevicePub []byte
	// Measurement is the requesting enclave's measurement; the service
	// applies its allowlist here, once per session, instead of per message.
	Measurement []byte
	// RoundFirst and RoundLast bound the aggregation rounds the session
	// wants to contribute to. The service may clamp the span.
	RoundFirst uint64
	RoundLast  uint64
	// Signature is the enclave's ECDSA signature over SignedBytes.
	Signature []byte
}

// SignedBytes returns the byte string the request signature covers.
func (t TicketRequest) SignedBytes() []byte {
	w := NewWriter()
	w.String("glimmers/ticket-request/v1")
	w.String(t.Service)
	w.Bytes(t.DevicePub)
	w.Bytes(t.Measurement)
	w.Uint64(t.RoundFirst)
	w.Uint64(t.RoundLast)
	return w.Finish()
}

// EncodeTicketRequest serializes the full request.
func EncodeTicketRequest(t TicketRequest) []byte {
	w := NewWriter()
	w.String(t.Service)
	w.Bytes(t.DevicePub)
	w.Bytes(t.Measurement)
	w.Uint64(t.RoundFirst)
	w.Uint64(t.RoundLast)
	w.Bytes(t.Signature)
	return w.Finish()
}

// DecodeTicketRequest reverses EncodeTicketRequest, enforcing the fixed
// field lengths so a malformed request is refused before any crypto runs.
func DecodeTicketRequest(data []byte) (TicketRequest, error) {
	r := NewReader(data)
	t := TicketRequest{
		Service:     r.String(),
		DevicePub:   r.Bytes(),
		Measurement: r.Bytes(),
		RoundFirst:  r.Uint64(),
		RoundLast:   r.Uint64(),
		Signature:   r.Bytes(),
	}
	if err := r.Done(); err != nil {
		return t, fmt.Errorf("%w: request: %v", ErrTicket, err)
	}
	if len(t.DevicePub) != DHPublicLen {
		return t, fmt.Errorf("%w: device public value is %d bytes", ErrTicket, len(t.DevicePub))
	}
	if len(t.Measurement) != MeasurementLen {
		return t, fmt.Errorf("%w: measurement is %d bytes", ErrTicket, len(t.Measurement))
	}
	return t, nil
}

// TicketGrant is the service's answer: the ticket identity, the service's
// ephemeral X25519 value, and the granted bounds. It carries no secret, so
// it may travel in the clear; tampering with it can only produce a session
// whose MACs never verify.
type TicketGrant struct {
	// Service echoes the tenant the ticket is valid for.
	Service string
	// ID is the ticket identity every MAC'd contribution names.
	ID uint64
	// ServerPub is the service's ephemeral X25519 public value.
	ServerPub []byte
	// RoundFirst and RoundLast are the granted round window, possibly
	// clamped from the request.
	RoundFirst uint64
	RoundLast  uint64
	// ExpiresUnix is the absolute expiry (Unix seconds); the service
	// refuses the ticket's MACs after it.
	ExpiresUnix uint64
}

// EncodeTicketGrant serializes the grant.
func EncodeTicketGrant(t TicketGrant) []byte {
	w := NewWriter()
	w.String(t.Service)
	w.Uint64(t.ID)
	w.Bytes(t.ServerPub)
	w.Uint64(t.RoundFirst)
	w.Uint64(t.RoundLast)
	w.Uint64(t.ExpiresUnix)
	return w.Finish()
}

// DecodeTicketGrant reverses EncodeTicketGrant.
func DecodeTicketGrant(data []byte) (TicketGrant, error) {
	r := NewReader(data)
	t := TicketGrant{
		Service:     r.String(),
		ID:          r.Uint64(),
		ServerPub:   r.Bytes(),
		RoundFirst:  r.Uint64(),
		RoundLast:   r.Uint64(),
		ExpiresUnix: r.Uint64(),
	}
	if err := r.Done(); err != nil {
		return t, fmt.Errorf("%w: grant: %v", ErrTicket, err)
	}
	if len(t.ServerPub) != DHPublicLen {
		return t, fmt.Errorf("%w: server public value is %d bytes", ErrTicket, len(t.ServerPub))
	}
	return t, nil
}
