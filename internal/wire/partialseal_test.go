package wire

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// The merge plane is cross-process protocol surface: a coordinator on one
// version must parse seals from nodes on another. Fixtures are frozen the
// same way durable's are — regenerate deliberately with
// GLIMMERS_UPDATE_GOLDEN=1 go test ./internal/wire.

func maybeUpdateGolden(t *testing.T, name string, data []byte) bool {
	t.Helper()
	if os.Getenv("GLIMMERS_UPDATE_GOLDEN") == "" {
		return false
	}
	if err := os.WriteFile(filepath.Join("testdata", name), []byte(hex.EncodeToString(data)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return true
}

// goldenPartialSeal covers every field shape: a multi-lane sum, two
// digests in canonical order, and a non-empty rejection count.
func goldenPartialSeal() PartialSeal {
	return PartialSeal{
		Service:     "iot.example",
		Round:       9,
		NodeID:      2,
		ShardCount:  3,
		Measurement: bytes.Repeat([]byte{0x22}, MeasurementLen),
		NodeKey:     []byte{0x30, 0x59, 0x01, 0x02, 0x03},
		Count:       2,
		Rejected:    1,
		Sum:         []uint64{5, 0xFFFFFFFFFFFFFFFF, 7},
		Digests: append(
			bytes.Repeat([]byte{0x0A}, SealDigestLen),
			bytes.Repeat([]byte{0x0B}, SealDigestLen)...),
		Signature: []byte{0xAA, 0xBB, 0xCC, 0xDD},
	}
}

func goldenMergeResult() MergeResult {
	return MergeResult{
		Service:  "iot.example",
		Round:    9,
		Expect:   3,
		Merged:   2,
		Count:    41,
		Rejected: 5,
		Refused:  1,
		Sum:      []uint64{5, 0xFFFFFFFFFFFFFFFF, 7},
	}
}

func TestGoldenPartialSeal(t *testing.T) {
	got := EncodePartialSeal(goldenPartialSeal())
	if maybeUpdateGolden(t, "partial_seal.hex", got) {
		t.Skip("updated golden fixture")
	}
	want := readGolden(t, "partial_seal.hex")
	if !bytes.Equal(got, want) {
		t.Fatalf("partial seal encoding changed:\n got: %x\nwant: %x", got, want)
	}
	dec, err := DecodePartialSeal(want)
	if err != nil {
		t.Fatal(err)
	}
	if re := EncodePartialSeal(dec); !bytes.Equal(re, want) {
		t.Fatalf("decode/encode not canonical")
	}
	if dec.DigestCount() != 2 {
		t.Fatalf("digest count = %d", dec.DigestCount())
	}
	if d := dec.DigestAt(1); d != [SealDigestLen]byte(bytes.Repeat([]byte{0x0B}, SealDigestLen)) {
		t.Fatalf("digest 1 = %x", d)
	}
}

func TestGoldenPartialSealPreimage(t *testing.T) {
	pre := goldenPartialSeal().SignedBytes()
	if maybeUpdateGolden(t, "partial_seal_preimage.hex", pre) {
		t.Skip("updated golden fixture")
	}
	want := readGolden(t, "partial_seal_preimage.hex")
	if !bytes.Equal(pre, want) {
		t.Fatalf("partial seal signing preimage changed:\n got: %x\nwant: %x", pre, want)
	}
	// The preimage must differ from the transport encoding (domain tag in
	// front, signature absent) so a seal can never be replayed as its own
	// signing input.
	if bytes.Equal(pre, EncodePartialSeal(goldenPartialSeal())) {
		t.Fatal("signing preimage equals transport encoding")
	}
}

func TestGoldenMergeResult(t *testing.T) {
	got := EncodeMergeResult(goldenMergeResult())
	if maybeUpdateGolden(t, "merge_result.hex", got) {
		t.Skip("updated golden fixture")
	}
	want := readGolden(t, "merge_result.hex")
	if !bytes.Equal(got, want) {
		t.Fatalf("merge result encoding changed:\n got: %x\nwant: %x", got, want)
	}
	dec, err := DecodeMergeResult(want)
	if err != nil {
		t.Fatal(err)
	}
	if re := EncodeMergeResult(dec); !bytes.Equal(re, want) {
		t.Fatalf("decode/encode not canonical")
	}
}

// TestPartialSealDecodeRefusals pins the structural refusal surface the
// fuzz target also walks: truncation, trailing bytes, wrong-length fixed
// fields, digest/count disagreement, and non-canonical digest order.
func TestPartialSealDecodeRefusals(t *testing.T) {
	seal := EncodePartialSeal(goldenPartialSeal())
	for name, data := range map[string][]byte{
		"truncated": seal[:len(seal)-2],
		"trailing":  append(append([]byte(nil), seal...), 0x00),
		"garbage":   {0xFF, 0xFF, 0xFF, 0xFF},
		"empty":     {},
	} {
		if _, err := DecodePartialSeal(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	shortMeas := goldenPartialSeal()
	shortMeas.Measurement = shortMeas.Measurement[:8]
	if _, err := DecodePartialSeal(EncodePartialSeal(shortMeas)); err == nil {
		t.Error("accepted seal with short measurement")
	}

	raggedDigests := goldenPartialSeal()
	raggedDigests.Digests = raggedDigests.Digests[:SealDigestLen+7]
	if _, err := DecodePartialSeal(EncodePartialSeal(raggedDigests)); err == nil {
		t.Error("accepted seal with ragged digest block")
	}

	countMismatch := goldenPartialSeal()
	countMismatch.Count = 5
	if _, err := DecodePartialSeal(EncodePartialSeal(countMismatch)); err == nil {
		t.Error("accepted seal whose count disagrees with its digests")
	}

	// Descending order: swap the two canonical digests.
	descending := goldenPartialSeal()
	descending.Digests = append(
		bytes.Repeat([]byte{0x0B}, SealDigestLen),
		bytes.Repeat([]byte{0x0A}, SealDigestLen)...)
	if _, err := DecodePartialSeal(EncodePartialSeal(descending)); err == nil {
		t.Error("accepted seal with descending digests")
	}

	// Duplicate digest: strictness, not mere sortedness.
	duplicated := goldenPartialSeal()
	duplicated.Digests = append(
		bytes.Repeat([]byte{0x0A}, SealDigestLen),
		bytes.Repeat([]byte{0x0A}, SealDigestLen)...)
	if _, err := DecodePartialSeal(EncodePartialSeal(duplicated)); err == nil {
		t.Error("accepted seal with duplicate digests")
	}

	if _, err := DecodeMergeResult([]byte{0xFF, 0xFF}); err == nil {
		t.Error("accepted garbage merge result")
	}
	mr := EncodeMergeResult(goldenMergeResult())
	if _, err := DecodeMergeResult(mr[:len(mr)-1]); err == nil {
		t.Error("accepted truncated merge result")
	}
}

// An empty partial (node owned the shard but nothing arrived) is legal:
// zero count, zero digests, zero sum lanes still present.
func TestPartialSealEmpty(t *testing.T) {
	empty := PartialSeal{
		Service:     "iot.example",
		Round:       1,
		ShardCount:  2,
		Measurement: make([]byte, MeasurementLen),
		Sum:         make([]uint64, 4),
	}
	dec, err := DecodePartialSeal(EncodePartialSeal(empty))
	if err != nil {
		t.Fatal(err)
	}
	if dec.DigestCount() != 0 || dec.Count != 0 {
		t.Fatalf("empty seal decoded as count=%d digests=%d", dec.Count, dec.DigestCount())
	}
}
