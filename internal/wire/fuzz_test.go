package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeBatch feeds attacker-controlled bytes to the batch decoder.
// DecodeBatch runs on raw network input (the gaas submit-batch body), so
// it must never panic and never allocate beyond what the input length
// justifies — every length prefix is bounds-checked before allocation
// (MaxFieldLen per field, MaxBatchItems per frame, remaining-bytes checks
// in the reader). On success the encoding must be canonical: re-encoding
// the decoded items reproduces the input byte for byte.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch([][]byte{{}}))
	f.Add(EncodeBatch([][]byte{{1, 2, 3}, {}, {0xff, 0x00}}))
	f.Add(EncodeBatch([][]byte{bytes.Repeat([]byte{0xAB}, 300)}))
	// Hostile shapes: oversized item count, a 4-byte frame claiming 65535
	// items (allocation amplification), truncated field, trailing junk.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x00, 0x00, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Add(append(EncodeBatch([][]byte{{1}}), 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if len(items) > MaxBatchItems {
			t.Fatalf("decoded %d items past MaxBatchItems", len(items))
		}
		if re := EncodeBatch(items); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzDecodeTicket feeds attacker-controlled bytes to both ticket codecs —
// the control-plane parsers a service runs on unauthenticated input before
// any signature or MAC has been checked. Neither may panic or allocate
// beyond what the input justifies, and on success each encoding must be
// canonical (re-encode reproduces the input byte for byte). The seeds cover
// the interesting refusal shapes: a truncated ticket, a grant naming the
// wrong tenant, an already-expired grant, and a bit-flipped request whose
// decode still succeeds (the flip lands in the signature, which only the
// verifier refuses).
func FuzzDecodeTicket(f *testing.F) {
	req := goldenTicketRequest()
	grant := goldenTicketGrant()
	f.Add(EncodeTicketRequest(req))
	f.Add(EncodeTicketGrant(grant))
	// Truncated ticket.
	f.Add(EncodeTicketGrant(grant)[:10])
	// Wrong tenant: structurally valid, refused only by the name check.
	wrong := grant
	wrong.Service = "ghost.invalid"
	f.Add(EncodeTicketGrant(wrong))
	// Expired: structurally valid, refused only by the expiry check.
	expired := grant
	expired.ExpiresUnix = 1
	f.Add(EncodeTicketGrant(expired))
	// Bit-flipped MAC/signature byte on the request.
	flipped := EncodeTicketRequest(req)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeTicketRequest(data); err == nil {
			if re := EncodeTicketRequest(r); !bytes.Equal(re, data) {
				t.Fatalf("request decode/encode not canonical:\n in: %x\nout: %x", data, re)
			}
			if len(r.SignedBytes()) == 0 {
				t.Fatal("empty signing preimage for a decodable request")
			}
		}
		if g, err := DecodeTicketGrant(data); err == nil {
			if re := EncodeTicketGrant(g); !bytes.Equal(re, data) {
				t.Fatalf("grant decode/encode not canonical:\n in: %x\nout: %x", data, re)
			}
		}
	})
}

// FuzzReader drives the raw field readers over arbitrary bytes in a fixed
// sequence, checking the sticky-error contract: no panics, and after any
// failure every subsequent read yields a zero value.
func FuzzReader(f *testing.F) {
	f.Add(NewWriter().String("s").Bytes([]byte{1}).Uint64(2).Uint32(3).Byte(4).Bool(true).Uint64s([]uint64{5, 6}).Finish())
	f.Add([]byte{0, 0, 0, 9, 'x'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.String()
		r.SkipBytes()
		r.Uint64()
		r.Uint64s()
		r.Uint32()
		r.Byte()
		r.Bool()
		b := r.Bytes()
		if r.Err() != nil && b != nil {
			t.Fatalf("read after sticky error returned %x", b)
		}
		_ = r.Done()
		if r.Remaining() < 0 {
			t.Fatalf("negative remaining")
		}
	})
}

// FuzzDecodePartialSeal feeds attacker-controlled bytes to the merge-plane
// decoders. A coordinator parses partial seals from the network before any
// signature check, so the decoder must never panic, must bound every
// allocation by the input length, and must enforce the canonical digest
// form (count agreement, strict ascending order) structurally. On success
// the encoding must be canonical: re-encoding reproduces the input byte
// for byte. The merge-result decoder rides along — nodes parse it out of
// the coordinator's reply frame.
func FuzzDecodePartialSeal(f *testing.F) {
	seal := goldenPartialSeal()
	f.Add(EncodePartialSeal(seal))
	// Empty partial: legal shape with zero digests.
	f.Add(EncodePartialSeal(PartialSeal{
		Service:     "iot.example",
		ShardCount:  2,
		Measurement: make([]byte, MeasurementLen),
		Sum:         make([]uint64, 4),
	}))
	// Hostile shapes: truncated seal, trailing junk, count/digest
	// disagreement, descending digests, short measurement, huge length
	// prefix (allocation amplification), and a bit-flipped signature byte
	// whose decode still succeeds (only the verifier refuses it).
	f.Add(EncodePartialSeal(seal)[:20])
	f.Add(append(EncodePartialSeal(seal), 0x00))
	lying := seal
	lying.Count = 99
	f.Add(EncodePartialSeal(lying))
	descending := seal
	descending.Digests = append(
		bytes.Repeat([]byte{0x0B}, SealDigestLen),
		bytes.Repeat([]byte{0x0A}, SealDigestLen)...)
	f.Add(EncodePartialSeal(descending))
	shortMeas := seal
	shortMeas.Measurement = shortMeas.Measurement[:4]
	f.Add(EncodePartialSeal(shortMeas))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	flipped := EncodePartialSeal(seal)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)
	f.Add(EncodeMergeResult(goldenMergeResult()))
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodePartialSeal(data); err == nil {
			if re := EncodePartialSeal(s); !bytes.Equal(re, data) {
				t.Fatalf("seal decode/encode not canonical:\n in: %x\nout: %x", data, re)
			}
			if uint64(s.DigestCount()) != s.Count {
				t.Fatalf("decoder passed count %d with %d digests", s.Count, s.DigestCount())
			}
			for i := 1; i < s.DigestCount(); i++ {
				prev, cur := s.DigestAt(i-1), s.DigestAt(i)
				if bytes.Compare(prev[:], cur[:]) >= 0 {
					t.Fatalf("decoder passed non-canonical digest order at %d", i)
				}
			}
			if len(s.SignedBytes()) == 0 {
				t.Fatal("empty signing preimage for a decodable seal")
			}
		}
		if m, err := DecodeMergeResult(data); err == nil {
			if re := EncodeMergeResult(m); !bytes.Equal(re, data) {
				t.Fatalf("merge result decode/encode not canonical:\n in: %x\nout: %x", data, re)
			}
		}
	})
}
