package wire

import (
	"bytes"
	"testing"

	"glimmers/internal/race"
)

// The ingest hot path decodes every contribution with a stack Reader and
// caller-provided scratch; these guards pin the zero-allocation contract
// so a regression fails the build, not a profile three PRs later.

func allocGuard(t *testing.T, name string, want float64, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	if got := testing.AllocsPerRun(200, fn); got > want {
		t.Errorf("%s: %.1f allocs/op, want <= %.0f", name, got, want)
	}
}

func TestReaderScalarReadsAllocFree(t *testing.T) {
	msg := NewWriter().Uint64(7).Uint32(9).Byte(1).Bool(true).Finish()
	var r Reader
	allocGuard(t, "scalar reads", 0, func() {
		r.Reset(msg)
		if r.Uint64() != 7 || r.Uint32() != 9 || r.Byte() != 1 || !r.Bool() {
			t.Fatal("wrong values")
		}
		if err := r.Done(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReaderViewReadsAllocFree(t *testing.T) {
	msg := NewWriter().Bytes([]byte("view me")).Bytes([]byte("skip me")).Finish()
	var r Reader
	allocGuard(t, "BytesView+SkipBytes", 0, func() {
		r.Reset(msg)
		if v := r.BytesView(); !bytes.Equal(v, []byte("view me")) {
			t.Fatalf("view = %q", v)
		}
		r.SkipBytes()
		if err := r.Done(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReaderUint64sIntoAllocFree(t *testing.T) {
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(i) * 3
	}
	msg := NewWriter().Uint64s(vals).Finish()
	var r Reader
	scratch := make([]uint64, 0, len(vals))
	allocGuard(t, "Uint64sInto", 0, func() {
		r.Reset(msg)
		scratch = r.Uint64sInto(scratch)
		if len(scratch) != len(vals) || scratch[63] != 63*3 {
			t.Fatal("wrong decode")
		}
		if err := r.Done(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestUint64sIntoGrowsAndRecovers(t *testing.T) {
	msg := NewWriter().Uint64s([]uint64{1, 2, 3, 4}).Finish()
	var r Reader
	r.Reset(msg)
	got := r.Uint64sInto(nil)
	if len(got) != 4 || got[3] != 4 {
		t.Fatalf("got %v", got)
	}
	// Truncated input must not return stale scratch contents.
	r.Reset(NewWriter().Uint32(99).Finish())
	if got = r.Uint64sInto(got); len(got) != 0 {
		t.Fatalf("truncated decode returned %v", got)
	}
	if r.Err() == nil {
		t.Fatal("truncated decode reported no error")
	}
}

func TestWriterResetReusesBuffer(t *testing.T) {
	w := NewWriter()
	w.Bytes(make([]byte, 512))
	first := w.Finish()
	w.Reset()
	allocGuard(t, "Writer.Reset encode", 0, func() {
		w.Reset()
		w.Uint64(1)
		w.Bytes(first[:100])
		if len(w.Finish()) != 8+4+100 {
			t.Fatal("wrong length")
		}
	})
}

func TestDecodeBatchIntoViewsAndScratchReuse(t *testing.T) {
	items := [][]byte{[]byte("alpha"), {}, []byte("gamma")}
	frame := EncodeBatch(items)
	scratch := make([][]byte, 0, 8)
	var got [][]byte
	var err error
	allocGuard(t, "DecodeBatchInto", 0, func() {
		got, err = DecodeBatchInto(frame, scratch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(got) != 3 || !bytes.Equal(got[0], items[0]) || !bytes.Equal(got[2], items[2]) {
		t.Fatalf("got %q", got)
	}
	// Views alias the frame: mutating the frame must show through, which
	// is exactly why callers keep the frame alive until processing ends.
	frame[len(frame)-1] ^= 0xFF
	if bytes.Equal(got[2], items[2]) {
		t.Fatal("DecodeBatchInto copied; expected views")
	}
}

func TestEncodedBatchSize(t *testing.T) {
	for _, items := range [][][]byte{nil, {{}}, {[]byte("ab"), []byte("cdef"), {}}} {
		if got, want := EncodedBatchSize(items), len(EncodeBatch(items)); got != want {
			t.Errorf("EncodedBatchSize = %d, want %d", got, want)
		}
	}
}

func TestAppendBatchMatchesEncodeBatch(t *testing.T) {
	for _, items := range [][][]byte{nil, {{}}, {[]byte("ab"), []byte("cdef"), {}}} {
		prefix := []byte("prefix")
		got := AppendBatch(append([]byte(nil), prefix...), items)
		want := append(append([]byte(nil), prefix...), EncodeBatch(items)...)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendBatch = %x, want %x", got, want)
		}
	}
}

// TestDecodeBatchIntoClearsScratchOnError pins the retention contract: a
// failed decode must not leave views into the frame buffer behind in the
// reusable scratch array.
func TestDecodeBatchIntoClearsScratchOnError(t *testing.T) {
	frame := append(EncodeBatch([][]byte{[]byte("keepalive"), []byte("x")}), 0xEE) // trailing byte
	scratch := make([][]byte, 0, 8)
	if _, err := DecodeBatchInto(frame, scratch); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	for i, v := range scratch[:cap(scratch)] {
		if v != nil {
			t.Fatalf("scratch[%d] still holds a view after failed decode", i)
		}
	}
}
