package wire

import (
	"errors"
	"fmt"
)

// Batch framing: transports that carry many contributions per call (the
// gaas submit path, bulk ingest clients) wrap them in one length-prefixed
// frame — a u32 item count followed by that many byte fields — so a single
// network round trip can feed a whole verifier pool.

// MaxBatchItems caps one batch frame. A frame is decoded into memory
// before processing, so the cap bounds a hostile frame's allocation the
// same way MaxFieldLen bounds one field.
const MaxBatchItems = 1 << 16

// ErrBatchTooLarge is returned when a batch frame declares more items than
// MaxBatchItems.
var ErrBatchTooLarge = errors.New("wire: batch exceeds item limit")

// EncodeBatch frames items into one batch message.
func EncodeBatch(items [][]byte) []byte {
	w := NewWriter()
	w.Uint32(uint32(len(items)))
	for _, item := range items {
		w.Bytes(item)
	}
	return w.Finish()
}

// DecodeBatch reverses EncodeBatch. Every item is an independent copy, so
// decoded batches can be fanned out to concurrent workers that outlive the
// frame buffer.
func DecodeBatch(data []byte) ([][]byte, error) {
	r := NewReader(data)
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > MaxBatchItems {
		return nil, fmt.Errorf("%w: %d items", ErrBatchTooLarge, n)
	}
	// Each item costs at least a 4-byte length prefix, so a frame too
	// short to hold n items is refused before the count can amplify into
	// slice-header allocations (a 4-byte hostile frame must not buy a
	// MaxBatchItems-capacity slice).
	if int(n) > r.Remaining()/4 {
		return nil, fmt.Errorf("wire: batch: %w", ErrTruncated)
	}
	items := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		items = append(items, r.Bytes())
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("wire: batch: %w", err)
	}
	return items, nil
}
