package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Batch framing: transports that carry many contributions per call (the
// gaas submit path, bulk ingest clients) wrap them in one length-prefixed
// frame — a u32 item count followed by that many byte fields — so a single
// network round trip can feed a whole verifier pool.

// MaxBatchItems caps one batch frame. A frame is decoded into memory
// before processing, so the cap bounds a hostile frame's allocation the
// same way MaxFieldLen bounds one field.
const MaxBatchItems = 1 << 16

// ErrBatchTooLarge is returned when a batch frame declares more items than
// MaxBatchItems.
var ErrBatchTooLarge = errors.New("wire: batch exceeds item limit")

// EncodeBatch frames items into one batch message.
func EncodeBatch(items [][]byte) []byte {
	return AppendBatch(make([]byte, 0, EncodedBatchSize(items)), items)
}

// AppendBatch appends the batch framing of items to dst and returns the
// extended slice — the single definition of the batch byte format, shared
// by EncodeBatch and by transports that encode straight into a pooled
// frame buffer (gaas.Client.SubmitBatch). Size dst with EncodedBatchSize
// to avoid growth.
func AppendBatch(dst []byte, items [][]byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(items)))
	for _, item := range items {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(item)))
		dst = append(dst, item...)
	}
	return dst
}

// EncodedBatchSize returns len(EncodeBatch(items)) without encoding:
// encoders that frame a batch into a preallocated buffer size it with
// this.
func EncodedBatchSize(items [][]byte) int {
	n := 4
	for _, item := range items {
		n += 4 + len(item)
	}
	return n
}

// DecodeBatch reverses EncodeBatch. Every item is an independent copy, so
// decoded batches can be fanned out to concurrent workers that outlive the
// frame buffer.
func DecodeBatch(data []byte) ([][]byte, error) {
	items, err := decodeBatch(data, nil, false)
	if err != nil {
		return nil, err
	}
	return items, nil
}

// DecodeBatchInto decodes a batch frame without copying: every returned
// item is a view into data, and the item headers are appended into
// scratch[:0] so a pooled slice can be reused across frames. The views are
// valid only while data is — callers that fan items out to workers must
// keep the frame buffer alive (and unrecycled) until processing settles.
func DecodeBatchInto(data []byte, scratch [][]byte) ([][]byte, error) {
	return decodeBatch(data, scratch, true)
}

func decodeBatch(data []byte, scratch [][]byte, view bool) ([][]byte, error) {
	var r Reader
	r.Reset(data)
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > MaxBatchItems {
		return nil, fmt.Errorf("%w: %d items", ErrBatchTooLarge, n)
	}
	// Each item costs at least a 4-byte length prefix, so a frame too
	// short to hold n items is refused before the count can amplify into
	// slice-header allocations (a 4-byte hostile frame must not buy a
	// MaxBatchItems-capacity slice).
	if int(n) > r.Remaining()/4 {
		return nil, fmt.Errorf("wire: batch: %w", ErrTruncated)
	}
	items := scratch[:0]
	if cap(items) < int(n) {
		items = make([][]byte, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		if view {
			items = append(items, r.BytesView())
		} else {
			items = append(items, r.Bytes())
		}
	}
	if err := r.Done(); err != nil {
		// Drop any views already appended into the caller's scratch: a
		// failed decode must not leave stale references to the frame
		// buffer behind (the scratch array is retained and reused).
		clear(items)
		return nil, fmt.Errorf("wire: batch: %w", err)
	}
	return items, nil
}
