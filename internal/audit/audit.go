// Package audit implements the §4.1 runtime auditor: the component that
// convinces a *user* that a Glimmer running confidential (encrypted,
// unauditable) validation logic still cannot exfiltrate their private data.
//
// The mechanism is the one the paper proposes: the message format between
// Glimmer and service is public; the auditor checks every outbound message
// is well formed against that format and counts the attacker-controllable
// information in it. For the bot-detection verdict that capacity is exactly
// one bit ("a single bit plus a well-defined signature and challenge
// response"). The paper is explicit that this does not preclude covert
// channels inside unavoidable variable fields like signatures — it puts a
// hard upper bound on everything else, and the auditor reports the two
// numbers separately.
package audit

import (
	"bytes"
	"errors"
	"fmt"

	"glimmers/internal/wire"
)

// FieldKind classifies one field of a public message format.
type FieldKind int

const (
	// KindConst is a fixed byte string (headers, service names). Carries
	// zero information.
	KindConst FieldKind = iota
	// KindExpected is a variable field whose value the auditor knows in
	// advance for each message (a challenge echo). Carries zero
	// information when it matches.
	KindExpected
	// KindBool is a canonical one-byte boolean. Carries exactly one bit.
	KindBool
	// KindSignature is a bounded variable field that cannot be predicted
	// (signatures are randomized). It is the residual covert channel the
	// paper acknowledges; the auditor bounds its length and reports it.
	KindSignature
)

// Field describes one field of a format.
type Field struct {
	Name string
	Kind FieldKind
	// Const is the required value for KindConst fields.
	Const []byte
	// MaxLen bounds KindSignature fields.
	MaxLen int
}

// Format is a public message format: an ordered field list over the wire
// encoding.
type Format struct {
	Name   string
	Fields []Field
}

// Report is the auditor's verdict on one message.
type Report struct {
	// InfoBits is the information carried by the message outside the
	// signature channel — the "hard upper bound" of §4.1.
	InfoBits int
	// SignatureBytes is the size of the residual signature channel.
	SignatureBytes int
}

// Audit errors.
var (
	ErrMalformed    = errors.New("audit: message violates public format")
	ErrOversized    = errors.New("audit: variable field exceeds bound")
	ErrConstMangled = errors.New("audit: constant field altered")
	ErrEchoMangled  = errors.New("audit: expected field does not match")
	ErrMissingecho  = errors.New("audit: no expected value supplied")
)

// CapacityBits returns the format's worst-case information content outside
// signature fields: the bound the auditor enforces per message.
func (f *Format) CapacityBits() int {
	bits := 0
	for _, fd := range f.Fields {
		if fd.Kind == KindBool {
			bits++
		}
	}
	return bits
}

// Check validates one message against the format. expected supplies the
// required values for KindExpected fields by name. On success the report
// states exactly how much information left the Glimmer.
func (f *Format) Check(msg []byte, expected map[string][]byte) (Report, error) {
	r := wire.NewReader(msg)
	var rep Report
	for _, fd := range f.Fields {
		switch fd.Kind {
		case KindConst:
			got := r.Bytes()
			if r.Err() != nil {
				return rep, fmt.Errorf("%w: field %s: %v", ErrMalformed, fd.Name, r.Err())
			}
			if !bytes.Equal(got, fd.Const) {
				return rep, fmt.Errorf("%w: field %s", ErrConstMangled, fd.Name)
			}
		case KindExpected:
			got := r.Bytes()
			if r.Err() != nil {
				return rep, fmt.Errorf("%w: field %s: %v", ErrMalformed, fd.Name, r.Err())
			}
			want, ok := expected[fd.Name]
			if !ok {
				return rep, fmt.Errorf("%w: field %s", ErrMissingecho, fd.Name)
			}
			if !bytes.Equal(got, want) {
				return rep, fmt.Errorf("%w: field %s", ErrEchoMangled, fd.Name)
			}
		case KindBool:
			r.Bool()
			if r.Err() != nil {
				return rep, fmt.Errorf("%w: field %s: %v", ErrMalformed, fd.Name, r.Err())
			}
			rep.InfoBits++
		case KindSignature:
			got := r.Bytes()
			if r.Err() != nil {
				return rep, fmt.Errorf("%w: field %s: %v", ErrMalformed, fd.Name, r.Err())
			}
			if fd.MaxLen > 0 && len(got) > fd.MaxLen {
				return rep, fmt.Errorf("%w: field %s is %d bytes (max %d)", ErrOversized, fd.Name, len(got), fd.MaxLen)
			}
			rep.SignatureBytes += len(got)
		default:
			return rep, fmt.Errorf("audit: unknown field kind %d in format %s", fd.Kind, f.Name)
		}
	}
	if err := r.Done(); err != nil {
		return rep, fmt.Errorf("%w: trailing content: %v", ErrMalformed, err)
	}
	return rep, nil
}

// maxECDSASigLen bounds a DER-encoded P-256 ECDSA signature.
const maxECDSASigLen = 72

// VerdictFormat is the public format of the §4.1 bot-detection verdict
// message produced by glimmer.EncodeVerdict: header, service name,
// challenge echo, one bit, signature. CapacityBits() == 1.
func VerdictFormat(serviceName string) *Format {
	return &Format{
		Name: "glimmers/verdict/v1",
		Fields: []Field{
			{Name: "header", Kind: KindConst, Const: []byte("glimmers/verdict/v1")},
			{Name: "service", Kind: KindConst, Const: []byte(serviceName)},
			{Name: "challenge", Kind: KindExpected},
			{Name: "verdict", Kind: KindBool},
			{Name: "signature", Kind: KindSignature, MaxLen: maxECDSASigLen},
		},
	}
}
