package audit

import (
	"errors"
	"testing"
	"testing/quick"

	"glimmers/internal/wire"
)

func verdictMsg(header, svc string, challenge []byte, bit byte, sig []byte) []byte {
	return wire.NewWriter().
		String(header).
		String(svc).
		Bytes(challenge).
		Byte(bit).
		Bytes(sig).
		Finish()
}

func TestVerdictFormatAcceptsCanonicalMessage(t *testing.T) {
	f := VerdictFormat("svc.example")
	msg := verdictMsg("glimmers/verdict/v1", "svc.example", []byte("nonce"), 1, make([]byte, 70))
	rep, err := f.Check(msg, map[string][]byte{"challenge": []byte("nonce")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InfoBits != 1 {
		t.Fatalf("InfoBits = %d, want 1", rep.InfoBits)
	}
	if rep.SignatureBytes != 70 {
		t.Fatalf("SignatureBytes = %d, want 70", rep.SignatureBytes)
	}
	if f.CapacityBits() != 1 {
		t.Fatalf("CapacityBits = %d, want 1", f.CapacityBits())
	}
}

func TestVerdictFormatRejectsCovertChannels(t *testing.T) {
	f := VerdictFormat("svc")
	challenge := []byte("nonce")
	expected := map[string][]byte{"challenge": challenge}
	cases := []struct {
		name string
		msg  []byte
		want error
	}{
		{
			// Information smuggled into the header.
			"altered header",
			verdictMsg("glimmers/verdict/v2", "svc", challenge, 1, nil),
			ErrConstMangled,
		},
		{
			// Information smuggled into the service name.
			"altered service",
			verdictMsg("glimmers/verdict/v1", "svc2", challenge, 1, nil),
			ErrConstMangled,
		},
		{
			// Information smuggled into the challenge echo.
			"altered challenge",
			verdictMsg("glimmers/verdict/v1", "svc", []byte("other"), 1, nil),
			ErrEchoMangled,
		},
		{
			// A boolean carrying more than one bit.
			"non-canonical bool",
			verdictMsg("glimmers/verdict/v1", "svc", challenge, 7, nil),
			ErrMalformed,
		},
		{
			// An oversized signature field.
			"oversized signature",
			verdictMsg("glimmers/verdict/v1", "svc", challenge, 1, make([]byte, 100)),
			ErrOversized,
		},
		{
			// Bytes appended after the last field.
			"trailing bytes",
			append(verdictMsg("glimmers/verdict/v1", "svc", challenge, 1, nil), 0xFF),
			ErrMalformed,
		},
		{
			"truncated",
			verdictMsg("glimmers/verdict/v1", "svc", challenge, 1, nil)[:10],
			ErrMalformed,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := f.Check(c.msg, expected); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestCheckRequiresExpectedValues(t *testing.T) {
	f := VerdictFormat("svc")
	msg := verdictMsg("glimmers/verdict/v1", "svc", []byte("nonce"), 0, nil)
	if _, err := f.Check(msg, nil); !errors.Is(err, ErrMissingecho) {
		t.Fatalf("err = %v, want ErrMissingecho", err)
	}
}

func TestCapacityCountsBools(t *testing.T) {
	f := &Format{Name: "multi", Fields: []Field{
		{Name: "a", Kind: KindBool},
		{Name: "b", Kind: KindBool},
		{Name: "hdr", Kind: KindConst, Const: []byte("x")},
	}}
	if f.CapacityBits() != 2 {
		t.Fatalf("CapacityBits = %d, want 2", f.CapacityBits())
	}
	msg := wire.NewWriter().Bool(true).Bool(false).String("x").Finish()
	rep, err := f.Check(msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InfoBits != 2 {
		t.Fatalf("InfoBits = %d, want 2", rep.InfoBits)
	}
}

// Property: for any bit value and any signature up to the bound, the
// canonical message passes and reports exactly one bit; any trailing byte
// fails.
func TestQuickVerdictFormatBound(t *testing.T) {
	f := VerdictFormat("svc")
	check := func(bit bool, sigLen uint8, challenge []byte) bool {
		b := byte(0)
		if bit {
			b = 1
		}
		sig := make([]byte, int(sigLen)%(maxECDSASigLen+1))
		msg := verdictMsg("glimmers/verdict/v1", "svc", challenge, b, sig)
		rep, err := f.Check(msg, map[string][]byte{"challenge": challenge})
		if err != nil || rep.InfoBits != 1 {
			return false
		}
		_, err = f.Check(append(msg, 0), map[string][]byte{"challenge": challenge})
		return err != nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
