package audit

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Log is an append-only operational audit trail: where the format auditor
// (audit.go) bounds what a Glimmer can say, the log records what the
// *operator's* infrastructure did — recovery events today (snapshot
// taken, WAL replayed, torn tail truncated; see internal/durable), with
// provisioning and grant events as ROADMAP follow-ons. Lines are plain
// text, one event each, so the trail survives in any log pipeline:
//
//	<unix-seconds> <event> <detail>
//
// Writes go to the sink verbatim and a bounded tail is retained in memory
// for tests and operator introspection. All methods are safe for
// concurrent use.
type Log struct {
	mu    sync.Mutex
	w     io.Writer
	now   func() int64
	tail  []string
	total uint64
}

// tailCap bounds the in-memory tail; the sink keeps the full trail.
const tailCap = 256

// NewLog creates a log writing to w (nil keeps events in memory only).
// now supplies the clock in Unix seconds; nil means time.Now — the
// deterministic simulator injects its own.
func NewLog(w io.Writer, now func() int64) *Log {
	if now == nil {
		now = func() int64 { return time.Now().Unix() }
	}
	return &Log{w: w, now: now}
}

// Append records one event. Sink write errors are deliberately swallowed:
// an audit trail must never take down the serving path it describes, and
// the in-memory tail still has the event.
func (l *Log) Append(event, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	line := fmt.Sprintf("%d %s %s", l.now(), event, detail)
	if l.w != nil {
		fmt.Fprintln(l.w, line)
	}
	if len(l.tail) >= tailCap {
		copy(l.tail, l.tail[1:])
		l.tail = l.tail[:tailCap-1]
	}
	l.tail = append(l.tail, line)
	l.total++
}

// Tail returns a copy of the retained recent lines, oldest first.
func (l *Log) Tail() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.tail))
	copy(out, l.tail)
	return out
}

// Total reports how many events have ever been appended (the tail may
// retain fewer).
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
