package attest

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// handshakeEnv spins up a platform and an enclave whose single ECALL hands
// the test a live Env (simulation-only trick: the closure keeps the Env
// usable during the test body).
func handshakeEnv(t *testing.T, name string) (*tee.AttestationService, *tee.Enclave, tee.Measurement, func(fn func(env *tee.Env) error) error) {
	t.Helper()
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	var pending func(env *tee.Env) error
	bin := tee.NewBinary(name, "1", []byte(name+"-code")).
		Define("run", func(env *tee.Env, input []byte) ([]byte, error) {
			return nil, pending(env)
		})
	e, err := p.Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	run := func(fn func(env *tee.Env) error) error {
		pending = fn
		_, err := e.Call("run", nil)
		return err
	}
	return as, e, bin.Measurement(), run
}

const testContext = "glimmers/test/provisioning"

func TestHandshakeEstablishesMatchingSessions(t *testing.T) {
	as, _, m, run := handshakeEnv(t, "glimmer")
	serviceID, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	verifier.Allow(m)

	var enclaveSession *Session
	var peerSession *Session
	err = run(func(env *tee.Env) error {
		key, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		// Round trip through the wire format, as a real deployment would.
		decoded, err := DecodeHello(EncodeHello(hello))
		if err != nil {
			return err
		}
		ps, resp, err := Respond(decoded, verifier, serviceID, testContext)
		if err != nil {
			return err
		}
		peerSession = ps
		decodedResp, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			return err
		}
		enclaveSession, err = key.Complete(decodedResp, serviceID.Public())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Enclave -> peer.
	record, err := enclaveSession.Send([]byte("validated contribution"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := peerSession.Recv(record)
	if err != nil || string(pt) != "validated contribution" {
		t.Fatalf("peer.Recv = (%q, %v)", pt, err)
	}
	// Peer -> enclave.
	record, err = peerSession.Send([]byte("sealed signing key"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err = enclaveSession.Recv(record)
	if err != nil || string(pt) != "sealed signing key" {
		t.Fatalf("enclave.Recv = (%q, %v)", pt, err)
	}
}

func TestRespondRejectsWrongMeasurement(t *testing.T) {
	as, _, _, run := handshakeEnv(t, "imposter")
	verifier := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{{0xAA}}}
	err := run(func(env *tee.Env) error {
		_, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		_, _, err = Respond(hello, verifier, nil, testContext)
		return err
	})
	if !errors.Is(err, tee.ErrQuoteMeasurement) {
		t.Fatalf("err = %v, want ErrQuoteMeasurement", err)
	}
}

func TestRespondRejectsContextMismatch(t *testing.T) {
	as, _, _, run := handshakeEnv(t, "glimmer")
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	err := run(func(env *tee.Env) error {
		_, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		_, _, err = Respond(hello, verifier, nil, "glimmers/other/context")
		return err
	})
	if !errors.Is(err, ErrContextMismatch) {
		t.Fatalf("err = %v, want ErrContextMismatch", err)
	}
}

func TestRespondRejectsSubstitutedDHValue(t *testing.T) {
	// A man in the middle replaces the enclave's DH value; the quote binding
	// must catch it.
	as, _, _, run := handshakeEnv(t, "glimmer")
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	mitm, err := xcrypto.NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	err = run(func(env *tee.Env) error {
		_, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		hello.DHPub = mitm.PublicBytes()
		_, _, err = Respond(hello, verifier, nil, testContext)
		return err
	})
	if !errors.Is(err, ErrBinding) {
		t.Fatalf("err = %v, want ErrBinding", err)
	}
}

func TestCompleteRejectsForgedServiceSignature(t *testing.T) {
	as, _, _, run := handshakeEnv(t, "glimmer")
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	realService, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	imposter, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	err = run(func(env *tee.Env) error {
		key, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		// The imposter responds, signing with its own key.
		_, resp, err := Respond(hello, verifier, imposter, testContext)
		if err != nil {
			return err
		}
		// The enclave expects the real service's key.
		_, err = key.Complete(resp, realService.Public())
		return err
	})
	if !errors.Is(err, ErrPeerSignature) {
		t.Fatalf("err = %v, want ErrPeerSignature", err)
	}
}

func TestCompleteAcceptsAnonymousPeerWhenUnpinned(t *testing.T) {
	as, _, _, run := handshakeEnv(t, "glimmer")
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	err := run(func(env *tee.Env) error {
		key, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		_, resp, err := Respond(hello, verifier, nil, testContext)
		if err != nil {
			return err
		}
		_, err = key.Complete(resp, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func establishedPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	as, _, _, run := handshakeEnv(t, "glimmer")
	verifier := &tee.QuoteVerifier{Root: as.Root()}
	var a, b *Session
	err := run(func(env *tee.Env) error {
		key, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		b2, resp, err := Respond(hello, verifier, nil, testContext)
		if err != nil {
			return err
		}
		b = b2
		a, err = key.Complete(resp, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSessionRejectsReplay(t *testing.T) {
	a, b := establishedPair(t)
	r1, err := a.Send([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(r1); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
}

func TestSessionRejectsReordering(t *testing.T) {
	a, b := establishedPair(t)
	r1, err := a.Send([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Send([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(r2); !errors.Is(err, ErrReplay) {
		t.Fatalf("out-of-order err = %v, want ErrReplay", err)
	}
	// The in-order record still works after the failed attempt.
	if _, err := b.Recv(r1); err != nil {
		t.Fatalf("in-order record after failure: %v", err)
	}
	if _, err := b.Recv(r2); err != nil {
		t.Fatalf("next record: %v", err)
	}
}

func TestSessionRejectsTampering(t *testing.T) {
	a, b := establishedPair(t)
	r, err := a.Send([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	r[len(r)-1] ^= 1
	if _, err := b.Recv(r); !errors.Is(err, ErrReplay) {
		t.Fatalf("tampered err = %v, want ErrReplay", err)
	}
}

func TestSessionDirectionsAreIndependent(t *testing.T) {
	a, b := establishedPair(t)
	// A record sent by a must not be accepted by a itself (reflection).
	r, err := a.Send([]byte("reflect"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(r); !errors.Is(err, ErrReplay) {
		t.Fatalf("reflection err = %v, want ErrReplay", err)
	}
	// b can still receive it.
	if _, err := b.Recv(r); err != nil {
		t.Fatal(err)
	}
}

func TestTwoHandshakesDeriveDistinctKeys(t *testing.T) {
	a1, _ := establishedPair(t)
	_, b2 := establishedPair(t)
	r, err := a1.Send([]byte("cross-session"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Recv(r); err == nil {
		t.Fatal("record from one session accepted by another")
	}
}

func TestHelloCodecRejectsCorruption(t *testing.T) {
	as, _, _, run := handshakeEnv(t, "glimmer")
	_ = as
	var encoded []byte
	err := run(func(env *tee.Env) error {
		_, hello, err := NewEnclaveHello(env, testContext)
		if err != nil {
			return err
		}
		encoded = EncodeHello(hello)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(encoded) / 3, len(encoded) - 1} {
		if _, err := DecodeHello(encoded[:cut]); err == nil {
			t.Errorf("truncated hello at %d accepted", cut)
		}
	}
	if _, err := DecodeHello(append(encoded, 0)); err == nil {
		t.Error("hello with trailing byte accepted")
	}
}

// Property: the session transports arbitrary payloads faithfully, in order.
func TestQuickSessionTransport(t *testing.T) {
	a, b := establishedPair(t)
	f := func(payloads [][]byte) bool {
		for _, p := range payloads {
			r, err := a.Send(p)
			if err != nil {
				return false
			}
			got, err := b.Recv(r)
			if err != nil || !bytes.Equal(got, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
