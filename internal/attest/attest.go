// Package attest implements attested secure channels: Diffie-Hellman
// handshakes whose enclave endpoint proves, via a TEE quote, that a specific
// measured binary holds the channel key.
//
// This is the mechanism §4.1 of the paper describes for provisioning secret
// validation code, and §4.2 reuses for Glimmer-as-a-service:
//
//   - The enclave binds its ephemeral DH public value into a quote's report
//     data, asserting "this DH endpoint terminates inside this measured
//     enclave".
//   - The peer (a service or an ordinary client) verifies the quote chain
//     and the binding before deriving session keys.
//   - Optionally the peer signs the handshake transcript with a long-term
//     identity key whose verification half is embedded in the Glimmer code,
//     so the enclave in turn knows it is talking to the legitimate service.
//
// The resulting Session provides authenticated encryption with strict
// sequence numbers: replayed, reordered, or dropped messages are detected.
package attest

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Handshake errors.
var (
	ErrContextMismatch = errors.New("attest: handshake context mismatch")
	ErrBinding         = errors.New("attest: quote does not bind the DH value")
	ErrPeerSignature   = errors.New("attest: peer transcript signature invalid")
)

// Hello is the enclave's opening handshake message.
type Hello struct {
	Context string
	DHPub   []byte
	Quote   tee.Quote
}

// Response is the peer's reply: its DH value and, if it has a long-term
// identity, a signature over the transcript.
type Response struct {
	DHPub     []byte
	Signature []byte
}

// EnclaveKey is the enclave-side handshake state between Hello and Complete.
// It never leaves the enclave.
type EnclaveKey struct {
	context string
	dh      *xcrypto.DHKey
	dhPub   []byte
}

// bindingHash ties a DH public value to a context inside a quote's report
// data.
func bindingHash(context string, dhPub []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("glimmers/attest/binding/v1\x00"))
	h.Write([]byte(context))
	h.Write(dhPub)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// transcriptHash commits both DH values and the context; signatures and key
// derivation bind to it.
func transcriptHash(context string, enclaveDH, peerDH []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("glimmers/attest/transcript/v1\x00"))
	h.Write([]byte(context))
	h.Write(enclaveDH)
	h.Write(peerDH)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// NewEnclaveHello runs inside an enclave: it generates an ephemeral DH key,
// quotes the binding, and returns the Hello to send plus the private state
// needed to complete the handshake.
func NewEnclaveHello(env *tee.Env, context string) (*EnclaveKey, Hello, error) {
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, Hello{}, fmt.Errorf("attest: hello: %w", err)
	}
	pub := dh.PublicBytes()
	binding := bindingHash(context, pub)
	quote, err := env.NewQuote(binding[:])
	if err != nil {
		return nil, Hello{}, fmt.Errorf("attest: hello quote: %w", err)
	}
	key := &EnclaveKey{context: context, dh: dh, dhPub: pub}
	return key, Hello{Context: context, DHPub: pub, Quote: quote}, nil
}

// Respond runs on the peer (service or client): it verifies the enclave's
// quote and binding, contributes its own DH value, and derives the session.
// If identity is non-nil the response carries a transcript signature so the
// enclave can authenticate the peer (the paper's service-side DH signing).
func Respond(hello Hello, verifier *tee.QuoteVerifier, identity *xcrypto.SigningKey, context string) (*Session, Response, error) {
	if hello.Context != context {
		return nil, Response{}, ErrContextMismatch
	}
	if err := verifier.Verify(hello.Quote); err != nil {
		return nil, Response{}, fmt.Errorf("attest: respond: %w", err)
	}
	wantBinding := bindingHash(context, hello.DHPub)
	var quoted [32]byte
	copy(quoted[:], hello.Quote.Report.Data[:32])
	if quoted != wantBinding {
		return nil, Response{}, ErrBinding
	}
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, Response{}, fmt.Errorf("attest: respond: %w", err)
	}
	shared, err := dh.Shared(hello.DHPub)
	if err != nil {
		return nil, Response{}, fmt.Errorf("attest: respond: %w", err)
	}
	transcript := transcriptHash(context, hello.DHPub, dh.PublicBytes())
	resp := Response{DHPub: dh.PublicBytes()}
	if identity != nil {
		sig, err := identity.Sign(transcript[:])
		if err != nil {
			return nil, Response{}, fmt.Errorf("attest: respond: %w", err)
		}
		resp.Signature = sig
	}
	session := deriveSession(shared, transcript, false)
	return session, resp, nil
}

// Complete runs inside the enclave after receiving the Response. If
// peerIdentity is non-nil the transcript signature must verify under it —
// the enclave authenticating the service with its embedded key. Passing nil
// accepts an anonymous peer (an ordinary user device, which the Glimmer has
// no need to authenticate).
func (k *EnclaveKey) Complete(resp Response, peerIdentity *xcrypto.VerifyKey) (*Session, error) {
	shared, err := k.dh.Shared(resp.DHPub)
	if err != nil {
		return nil, fmt.Errorf("attest: complete: %w", err)
	}
	transcript := transcriptHash(k.context, k.dhPub, resp.DHPub)
	if peerIdentity != nil {
		if !peerIdentity.Verify(transcript[:], resp.Signature) {
			return nil, ErrPeerSignature
		}
	}
	return deriveSession(shared, transcript, true), nil
}

// RespondFromEnclave is Respond for the case where the responder is itself
// an enclave (e.g. the §3 blinding-dealer enclave answering a client
// Glimmer): instead of signing the transcript with a long-term identity, it
// quotes a binding of its DH value, so both ends of the channel are
// attested.
func RespondFromEnclave(env *tee.Env, hello Hello, verifier *tee.QuoteVerifier, context string) (*Session, Hello, error) {
	if hello.Context != context {
		return nil, Hello{}, ErrContextMismatch
	}
	if err := verifier.Verify(hello.Quote); err != nil {
		return nil, Hello{}, fmt.Errorf("attest: respond: %w", err)
	}
	wantBinding := bindingHash(context, hello.DHPub)
	var quoted [32]byte
	copy(quoted[:], hello.Quote.Report.Data[:32])
	if quoted != wantBinding {
		return nil, Hello{}, ErrBinding
	}
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, Hello{}, fmt.Errorf("attest: respond: %w", err)
	}
	shared, err := dh.Shared(hello.DHPub)
	if err != nil {
		return nil, Hello{}, fmt.Errorf("attest: respond: %w", err)
	}
	respBinding := bindingHash(context+"/responder", dh.PublicBytes())
	quote, err := env.NewQuote(respBinding[:])
	if err != nil {
		return nil, Hello{}, fmt.Errorf("attest: responder quote: %w", err)
	}
	transcript := transcriptHash(context, hello.DHPub, dh.PublicBytes())
	session := deriveSession(shared, transcript, false)
	return session, Hello{Context: context, DHPub: dh.PublicBytes(), Quote: quote}, nil
}

// CompleteAttested finishes the handshake against an attested (rather than
// signing) responder: the responder's quote must verify and bind its DH
// value.
func (k *EnclaveKey) CompleteAttested(resp Hello, verifier *tee.QuoteVerifier) (*Session, error) {
	if resp.Context != k.context {
		return nil, ErrContextMismatch
	}
	if err := verifier.Verify(resp.Quote); err != nil {
		return nil, fmt.Errorf("attest: complete: %w", err)
	}
	wantBinding := bindingHash(k.context+"/responder", resp.DHPub)
	var quoted [32]byte
	copy(quoted[:], resp.Quote.Report.Data[:32])
	if quoted != wantBinding {
		return nil, ErrBinding
	}
	shared, err := k.dh.Shared(resp.DHPub)
	if err != nil {
		return nil, fmt.Errorf("attest: complete: %w", err)
	}
	transcript := transcriptHash(k.context, k.dhPub, resp.DHPub)
	return deriveSession(shared, transcript, true), nil
}

// EncodeHello serializes a Hello for transport.
func EncodeHello(h Hello) []byte {
	w := wire.NewWriter()
	w.String(h.Context)
	w.Bytes(h.DHPub)
	wire.AppendQuote(w, h.Quote)
	return w.Finish()
}

// DecodeHello reverses EncodeHello.
func DecodeHello(data []byte) (Hello, error) {
	r := wire.NewReader(data)
	var h Hello
	h.Context = r.String()
	h.DHPub = r.Bytes()
	q, err := wire.ReadQuote(r)
	if err != nil {
		return Hello{}, fmt.Errorf("attest: decode hello: %w", err)
	}
	h.Quote = q
	if err := r.Done(); err != nil {
		return Hello{}, fmt.Errorf("attest: decode hello: %w", err)
	}
	return h, nil
}

// EncodeResponse serializes a Response for transport.
func EncodeResponse(resp Response) []byte {
	return wire.NewWriter().Bytes(resp.DHPub).Bytes(resp.Signature).Finish()
}

// DecodeResponse reverses EncodeResponse.
func DecodeResponse(data []byte) (Response, error) {
	r := wire.NewReader(data)
	resp := Response{DHPub: r.Bytes(), Signature: r.Bytes()}
	if err := r.Done(); err != nil {
		return Response{}, fmt.Errorf("attest: decode response: %w", err)
	}
	return resp, nil
}
