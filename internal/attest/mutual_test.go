package attest

import (
	"errors"
	"testing"

	"glimmers/internal/tee"
)

// twoEnclaves builds initiator and responder enclaves on (optionally)
// distinct platforms and returns env-runners for each.
func twoEnclaves(t *testing.T) (*tee.AttestationService, tee.Measurement, tee.Measurement, func(func(*tee.Env) error) error, func(func(*tee.Env) error) error) {
	t.Helper()
	as, err := tee.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) (tee.Measurement, func(func(*tee.Env) error) error) {
		p, err := tee.NewPlatform(as)
		if err != nil {
			t.Fatal(err)
		}
		var pending func(*tee.Env) error
		bin := tee.NewBinary(name, "1", []byte(name)).
			Define("run", func(env *tee.Env, _ []byte) ([]byte, error) {
				return nil, pending(env)
			})
		e, err := p.Load(bin)
		if err != nil {
			t.Fatal(err)
		}
		return bin.Measurement(), func(fn func(*tee.Env) error) error {
			pending = fn
			_, err := e.Call("run", nil)
			return err
		}
	}
	mi, runI := mk("initiator")
	mr, runR := mk("responder")
	return as, mi, mr, runI, runR
}

const mutualContext = "glimmers/test/mutual"

func TestMutualEnclaveHandshake(t *testing.T) {
	as, mi, mr, runI, runR := twoEnclaves(t)
	var (
		key      *EnclaveKey
		hello    Hello
		resp     Hello
		respSess *Session
		initSess *Session
	)
	if err := runI(func(env *tee.Env) error {
		var err error
		key, hello, err = NewEnclaveHello(env, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := runR(func(env *tee.Env) error {
		v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{mi}}
		var err error
		respSess, resp, err = RespondFromEnclave(env, hello, v, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{mr}}
	var err error
	initSess, err = key.CompleteAttested(resp, v)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := initSess.Send([]byte("mask material"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := respSess.Recv(rec)
	if err != nil || string(pt) != "mask material" {
		t.Fatalf("Recv = (%q, %v)", pt, err)
	}
	back, err := respSess.Send([]byte("ack"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := initSess.Recv(back); err != nil || string(pt) != "ack" {
		t.Fatalf("Recv = (%q, %v)", pt, err)
	}
}

func TestRespondFromEnclaveRejectsWrongInitiator(t *testing.T) {
	as, _, _, runI, runR := twoEnclaves(t)
	var hello Hello
	if err := runI(func(env *tee.Env) error {
		var err error
		_, hello, err = NewEnclaveHello(env, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := runR(func(env *tee.Env) error {
		v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{{0xEE}}}
		_, _, err := RespondFromEnclave(env, hello, v, mutualContext)
		return err
	})
	if !errors.Is(err, tee.ErrQuoteMeasurement) {
		t.Fatalf("err = %v, want ErrQuoteMeasurement", err)
	}
}

func TestCompleteAttestedRejectsWrongResponder(t *testing.T) {
	as, mi, _, runI, runR := twoEnclaves(t)
	var (
		key   *EnclaveKey
		hello Hello
		resp  Hello
	)
	if err := runI(func(env *tee.Env) error {
		var err error
		key, hello, err = NewEnclaveHello(env, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := runR(func(env *tee.Env) error {
		v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{mi}}
		var err error
		_, resp, err = RespondFromEnclave(env, hello, v, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// The initiator expects a different responder measurement.
	v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{{0xDD}}}
	if _, err := key.CompleteAttested(resp, v); !errors.Is(err, tee.ErrQuoteMeasurement) {
		t.Fatalf("err = %v, want ErrQuoteMeasurement", err)
	}
}

func TestCompleteAttestedRejectsSubstitutedDH(t *testing.T) {
	as, mi, mr, runI, runR := twoEnclaves(t)
	var (
		key   *EnclaveKey
		hello Hello
		resp  Hello
	)
	if err := runI(func(env *tee.Env) error {
		var err error
		key, hello, err = NewEnclaveHello(env, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := runR(func(env *tee.Env) error {
		v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{mi}}
		var err error
		_, resp, err = RespondFromEnclave(env, hello, v, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// MITM swaps the responder's DH value; the quote binding catches it.
	resp.DHPub = append([]byte(nil), resp.DHPub...)
	resp.DHPub[0] ^= 1
	v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{mr}}
	if _, err := key.CompleteAttested(resp, v); !errors.Is(err, ErrBinding) {
		t.Fatalf("err = %v, want ErrBinding", err)
	}
}

func TestMutualHandshakeContextMismatch(t *testing.T) {
	as, mi, _, runI, runR := twoEnclaves(t)
	var hello Hello
	if err := runI(func(env *tee.Env) error {
		var err error
		_, hello, err = NewEnclaveHello(env, mutualContext)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := runR(func(env *tee.Env) error {
		v := &tee.QuoteVerifier{Root: as.Root(), Allowed: []tee.Measurement{mi}}
		_, _, err := RespondFromEnclave(env, hello, v, "other/context")
		return err
	})
	if !errors.Is(err, ErrContextMismatch) {
		t.Fatalf("err = %v, want ErrContextMismatch", err)
	}
}
