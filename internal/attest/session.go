package attest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"glimmers/internal/xcrypto"
)

// ErrReplay is returned when an incoming message fails sequence-bound
// authentication: a replayed, reordered, dropped, or forged record.
var ErrReplay = errors.New("attest: message failed sequence authentication")

// Session is an established attested channel. Each direction has its own
// key, and every record is bound to a strictly increasing sequence number,
// so the channel detects replay and reordering.
type Session struct {
	sendKey [32]byte
	recvKey [32]byte
	sendSeq uint64
	recvSeq uint64
}

// deriveSession turns the DH shared secret and transcript into directional
// keys. The enclave initiated the handshake, so its send direction is "i2r".
func deriveSession(shared []byte, transcript [32]byte, isEnclave bool) *Session {
	master := xcrypto.HKDF(shared, transcript[:], []byte("glimmers/attest/session/v1"), 32)
	i2r := xcrypto.DeriveKey32(master, "glimmers/attest/i2r")
	r2i := xcrypto.DeriveKey32(master, "glimmers/attest/r2i")
	s := &Session{}
	if isEnclave {
		s.sendKey, s.recvKey = i2r, r2i
	} else {
		s.sendKey, s.recvKey = r2i, i2r
	}
	return s
}

// NewSessionFromSecret derives a Session directly from an out-of-band
// shared secret — used for local-attestation links between the components
// of a decomposed Glimmer, where both endpoints are enclaves on the same
// platform and the remote-quote handshake would be overkill.
func NewSessionFromSecret(shared []byte, transcript [32]byte, initiator bool) *Session {
	return deriveSession(shared, transcript, initiator)
}

func seqAAD(seq uint64) []byte {
	var aad [16]byte
	copy(aad[:8], "glimrec\x00")
	binary.BigEndian.PutUint64(aad[8:], seq)
	return aad[:]
}

// Send encrypts the next outgoing record.
func (s *Session) Send(plaintext []byte) ([]byte, error) {
	record, err := xcrypto.Seal(s.sendKey, plaintext, seqAAD(s.sendSeq))
	if err != nil {
		return nil, fmt.Errorf("attest: send: %w", err)
	}
	s.sendSeq++
	return record, nil
}

// Recv authenticates and decrypts the next incoming record. Any record that
// is not the exact next message in sequence fails with ErrReplay.
func (s *Session) Recv(record []byte) ([]byte, error) {
	plaintext, err := xcrypto.Open(s.recvKey, record, seqAAD(s.recvSeq))
	if err != nil {
		return nil, ErrReplay
	}
	s.recvSeq++
	return plaintext, nil
}

// SendSeq reports how many records have been sent.
func (s *Session) SendSeq() uint64 { return s.sendSeq }

// RecvSeq reports how many records have been received.
func (s *Session) RecvSeq() uint64 { return s.recvSeq }
