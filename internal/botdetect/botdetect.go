// Package botdetect implements the §4.1 scenario: distinguishing humans
// from bots using behavioural signals collected on the client — signals too
// privacy-sensitive to ship to the service (they embed typing cadence,
// mouse paths, focus habits). A Glimmer runs the detector locally over the
// private signals and releases exactly one bit.
//
// The package provides synthetic trace generators for humans and bots of
// varying sophistication, the feature extraction a JavaScript collector
// would perform, and the detector compiled to a validation predicate.
package botdetect

import (
	"math"
	"sort"

	"glimmers/internal/predicate"
	"glimmers/internal/xcrypto"
)

// EventKind classifies one UI event.
type EventKind byte

// UI event kinds a collector observes.
const (
	KindKey EventKind = iota
	KindMouse
	KindFocus
	KindScroll
)

// Event is one observed UI interaction.
type Event struct {
	TimeMs int64
	Kind   EventKind
	// X, Y locate mouse events.
	X, Y int64
}

// Trace is a session of UI events — private data that never leaves the
// client.
type Trace []Event

// HumanTrace synthesizes a human session: irregular inter-event gaps with
// bursts and pauses, curved mouse paths, occasional focus changes.
func HumanTrace(prg *xcrypto.PRG, n int) Trace {
	tr := make(Trace, 0, n)
	timeMs := int64(0)
	x, y := int64(500), int64(400)
	heading := prg.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		// Humans: noisy gaps, long-tail pauses.
		gap := int64(120 + 160*prg.Float64() + 90*math.Abs(prg.NormFloat64()))
		if prg.Float64() < 0.06 {
			gap += int64(800 + prg.Intn(2200)) // reading pause
		}
		timeMs += gap
		switch r := prg.Float64(); {
		case r < 0.45:
			tr = append(tr, Event{TimeMs: timeMs, Kind: KindKey})
		case r < 0.85:
			// Curved mouse movement: heading drifts each step.
			heading += (prg.Float64() - 0.5) * 1.2
			x += int64(18 * math.Cos(heading))
			y += int64(18 * math.Sin(heading))
			tr = append(tr, Event{TimeMs: timeMs, Kind: KindMouse, X: x, Y: y})
		case r < 0.93:
			tr = append(tr, Event{TimeMs: timeMs, Kind: KindScroll})
		default:
			tr = append(tr, Event{TimeMs: timeMs, Kind: KindFocus})
		}
	}
	return tr
}

// BotTrace synthesizes a bot session. Sophistication in [0,1] interpolates
// from a naive metronomic script (0) toward human-mimicking jitter (1);
// the detector's job gets harder as it rises — the adversary-cost axis of
// experiment E8.
func BotTrace(prg *xcrypto.PRG, n int, sophistication float64) Trace {
	if sophistication < 0 {
		sophistication = 0
	}
	if sophistication > 1 {
		sophistication = 1
	}
	tr := make(Trace, 0, n)
	timeMs := int64(0)
	x, y := int64(100), int64(100)
	heading := 0.45 // straight-line sweep
	for i := 0; i < n; i++ {
		// Bots: near-constant gaps, plus sophistication-scaled jitter.
		gap := int64(100 + 4*prg.Float64() + sophistication*(150*prg.Float64()+80*math.Abs(prg.NormFloat64())))
		if sophistication > 0 && prg.Float64() < 0.05*sophistication {
			gap += int64(1000 * prg.Float64())
		}
		timeMs += gap
		switch r := prg.Float64(); {
		case r < 0.5:
			tr = append(tr, Event{TimeMs: timeMs, Kind: KindKey})
		default:
			heading += (prg.Float64() - 0.5) * 1.2 * sophistication
			x += int64(18 * math.Cos(heading))
			y += int64(18 * math.Sin(heading))
			tr = append(tr, Event{TimeMs: timeMs, Kind: KindMouse, X: x, Y: y})
		}
	}
	return tr
}

// Feature indices in the extracted signal vector.
const (
	FeatGapStd     = iota // standard deviation of inter-event gaps (ms)
	FeatGapEntropy        // entropy of the gap histogram (millibits)
	FeatCurvature         // mean absolute mouse heading change (milliradians)
	FeatFocus             // focus-change count
	FeatBurstiness        // p90/p50 gap ratio (percent)
	NumFeatures
)

// Features extracts the private signal vector a collector computes from a
// trace. All features are integers so they feed the predicate VM directly.
func Features(tr Trace) []int64 {
	out := make([]int64, NumFeatures)
	if len(tr) < 3 {
		return out
	}
	gaps := make([]float64, 0, len(tr)-1)
	for i := 1; i < len(tr); i++ {
		gaps = append(gaps, float64(tr[i].TimeMs-tr[i-1].TimeMs))
	}
	// Gap standard deviation.
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var variance float64
	for _, g := range gaps {
		variance += (g - mean) * (g - mean)
	}
	variance /= float64(len(gaps))
	out[FeatGapStd] = int64(math.Sqrt(variance))

	// Gap entropy over logarithmic buckets.
	buckets := make(map[int]int)
	for _, g := range gaps {
		b := int(math.Log2(g + 1))
		buckets[b]++
	}
	var entropy float64
	for _, c := range buckets {
		p := float64(c) / float64(len(gaps))
		entropy -= p * math.Log2(p)
	}
	out[FeatGapEntropy] = int64(entropy * 1000)

	// Mouse path curvature.
	var prevHeading float64
	var haveHeading bool
	var curveSum float64
	var curveN int
	var lastX, lastY int64
	var haveLast bool
	for _, e := range tr {
		if e.Kind != KindMouse {
			continue
		}
		if haveLast {
			h := math.Atan2(float64(e.Y-lastY), float64(e.X-lastX))
			if haveHeading {
				d := math.Abs(h - prevHeading)
				if d > math.Pi {
					d = 2*math.Pi - d
				}
				curveSum += d
				curveN++
			}
			prevHeading, haveHeading = h, true
		}
		lastX, lastY, haveLast = e.X, e.Y, true
	}
	if curveN > 0 {
		out[FeatCurvature] = int64(curveSum / float64(curveN) * 1000)
	}

	// Focus changes.
	for _, e := range tr {
		if e.Kind == KindFocus {
			out[FeatFocus]++
		}
	}

	// Burstiness: p90/p50 gap ratio.
	sorted := append([]float64(nil), gaps...)
	sort.Float64s(sorted)
	p50 := sorted[len(sorted)/2]
	p90 := sorted[len(sorted)*9/10]
	if p50 > 0 {
		out[FeatBurstiness] = int64(p90 / p50 * 100)
	}
	return out
}

// Detector thresholds: a trace is human when a majority of indicators fire.
// These are the service's (possibly confidential, §4.1) detector
// parameters.
type Detector struct {
	MinGapStd     int64
	MinGapEntropy int64
	MinCurvature  int64
	MinFocus      int64
	MinBurstiness int64
	MinIndicators int64
}

// DefaultDetector is tuned against the synthetic generators: it separates
// naive bots from humans with high margin and degrades gracefully as bot
// sophistication rises.
var DefaultDetector = Detector{
	MinGapStd:     120,
	MinGapEntropy: 1500,
	MinCurvature:  150,
	MinFocus:      1,
	MinBurstiness: 160,
	MinIndicators: 3,
}

// Predicate compiles the detector into a validation predicate over the
// private signal bank: indicator votes are summed branch-free and the
// verdict is 1 (human) when at least MinIndicators fire. The compiled
// program passes the static verifier with a single declassification site,
// so a Glimmer will install it — even delivered confidentially.
func (d Detector) Predicate(name string) *predicate.Program {
	b := predicate.NewBuilder(name, 1)
	b.Push(0).Store(0)
	indicator := func(feature int, min int64) {
		b.LoadP(feature).Push(min).Ge().Load(0).Add().Store(0)
	}
	indicator(FeatGapStd, d.MinGapStd)
	indicator(FeatGapEntropy, d.MinGapEntropy)
	indicator(FeatCurvature, d.MinCurvature)
	indicator(FeatFocus, d.MinFocus)
	indicator(FeatBurstiness, d.MinBurstiness)
	b.Load(0).Push(d.MinIndicators).Ge()
	b.LenP().Push(int64(NumFeatures)).Eq().And()
	b.Declass().Verdict()
	return b.MustBuild()
}

// Classify runs the detector natively (reference implementation used to
// validate the predicate compilation and in accuracy sweeps).
func (d Detector) Classify(features []int64) bool {
	if len(features) != NumFeatures {
		return false
	}
	votes := int64(0)
	if features[FeatGapStd] >= d.MinGapStd {
		votes++
	}
	if features[FeatGapEntropy] >= d.MinGapEntropy {
		votes++
	}
	if features[FeatCurvature] >= d.MinCurvature {
		votes++
	}
	if features[FeatFocus] >= d.MinFocus {
		votes++
	}
	if features[FeatBurstiness] >= d.MinBurstiness {
		votes++
	}
	return votes >= d.MinIndicators
}

// Accuracy evaluates the detector over sample populations, returning the
// true-positive rate (humans classified human) and false-positive rate
// (bots classified human).
func (d Detector) Accuracy(humans, bots []Trace) (tpr, fpr float64) {
	humanHits := 0
	for _, tr := range humans {
		if d.Classify(Features(tr)) {
			humanHits++
		}
	}
	botHits := 0
	for _, tr := range bots {
		if d.Classify(Features(tr)) {
			botHits++
		}
	}
	if len(humans) > 0 {
		tpr = float64(humanHits) / float64(len(humans))
	}
	if len(bots) > 0 {
		fpr = float64(botHits) / float64(len(bots))
	}
	return tpr, fpr
}
