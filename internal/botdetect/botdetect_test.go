package botdetect

import (
	"fmt"
	"testing"

	"glimmers/internal/predicate"
	"glimmers/internal/xcrypto"
)

func traces(seed string, n, events int, human bool, sophistication float64) []Trace {
	prg := xcrypto.NewPRG([]byte(seed))
	out := make([]Trace, n)
	for i := range out {
		if human {
			out[i] = HumanTrace(prg, events)
		} else {
			out[i] = BotTrace(prg, events, sophistication)
		}
	}
	return out
}

func TestTraceShapes(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("shape"))
	h := HumanTrace(prg, 200)
	if len(h) != 200 {
		t.Fatalf("human trace length %d", len(h))
	}
	last := int64(-1)
	for _, e := range h {
		if e.TimeMs <= last {
			t.Fatal("human timestamps not strictly increasing")
		}
		last = e.TimeMs
	}
	b := BotTrace(prg, 200, 0)
	if len(b) != 200 {
		t.Fatalf("bot trace length %d", len(b))
	}
}

func TestFeaturesSeparateNaiveBots(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("sep"))
	hf := Features(HumanTrace(prg, 300))
	bf := Features(BotTrace(prg, 300, 0))
	if hf[FeatGapStd] <= bf[FeatGapStd] {
		t.Errorf("human gap std %d should exceed bot %d", hf[FeatGapStd], bf[FeatGapStd])
	}
	if hf[FeatGapEntropy] <= bf[FeatGapEntropy] {
		t.Errorf("human entropy %d should exceed bot %d", hf[FeatGapEntropy], bf[FeatGapEntropy])
	}
	if hf[FeatFocus] == 0 {
		t.Error("human trace has no focus changes")
	}
}

func TestFeaturesShortTrace(t *testing.T) {
	f := Features(Trace{{TimeMs: 1, Kind: KindKey}})
	for i, v := range f {
		if v != 0 {
			t.Fatalf("short trace feature %d = %d, want 0", i, v)
		}
	}
	if len(f) != NumFeatures {
		t.Fatalf("feature count %d", len(f))
	}
}

func TestDetectorAccuracyOnNaiveBots(t *testing.T) {
	humans := traces("h", 100, 300, true, 0)
	bots := traces("b", 100, 300, false, 0)
	tpr, fpr := DefaultDetector.Accuracy(humans, bots)
	if tpr < 0.95 {
		t.Errorf("TPR = %.2f, want >= 0.95", tpr)
	}
	if fpr > 0.05 {
		t.Errorf("FPR = %.2f, want <= 0.05", fpr)
	}
}

func TestDetectorDegradesGracefully(t *testing.T) {
	// As sophistication rises, the adversary's evasion rate should rise —
	// the paper's point that more invasive validation raises adversary
	// cost, not that it is impossible to fool.
	humans := traces("h2", 60, 300, true, 0)
	var prevEvasion float64 = -1
	for _, s := range []float64{0, 0.5, 1.0} {
		bots := traces(fmt.Sprintf("b-%v", s), 60, 300, false, s)
		_, fpr := DefaultDetector.Accuracy(humans, bots)
		if fpr < prevEvasion-0.15 {
			t.Errorf("evasion rate dropped sharply at sophistication %v: %.2f -> %.2f", s, prevEvasion, fpr)
		}
		prevEvasion = fpr
	}
}

func TestPredicateMatchesNativeClassifier(t *testing.T) {
	prog := DefaultDetector.Predicate("bot-detector")
	if _, err := predicate.Verify(prog); err != nil {
		t.Fatalf("detector predicate fails verification: %v", err)
	}
	prg := xcrypto.NewPRG([]byte("cmp"))
	for i := 0; i < 50; i++ {
		var tr Trace
		if i%2 == 0 {
			tr = HumanTrace(prg, 250)
		} else {
			tr = BotTrace(prg, 250, float64(i%5)/5)
		}
		features := Features(tr)
		want := DefaultDetector.Classify(features)
		res, err := predicate.Run(prog, nil, features, nil)
		if err != nil {
			t.Fatal(err)
		}
		if (res.Verdict != 0) != want {
			t.Fatalf("sample %d: predicate %d, native %v (features %v)", i, res.Verdict, want, features)
		}
	}
}

func TestPredicateHasSingleDeclassSite(t *testing.T) {
	prog := DefaultDetector.Predicate("d")
	analysis, err := predicate.Verify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(analysis.DeclassSites) != 1 {
		t.Fatalf("declass sites = %d, want 1 (the single verdict bit)", len(analysis.DeclassSites))
	}
	if !analysis.ReadsPrivate || analysis.ReadsContribution {
		t.Fatal("detector should read only the private bank")
	}
}

func TestClassifyRejectsPaddedFeatureVector(t *testing.T) {
	padded := make([]int64, NumFeatures+1)
	if DefaultDetector.Classify(padded) {
		t.Fatal("padded feature vector accepted")
	}
	// The predicate enforces the same length check.
	res, err := predicate.Run(DefaultDetector.Predicate("d"), nil, padded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != 0 {
		t.Fatal("predicate accepted padded feature vector")
	}
}

func TestBotSophisticationClamped(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("clamp"))
	// Out-of-range sophistication must not panic.
	if tr := BotTrace(prg, 50, -3); len(tr) != 50 {
		t.Fatal("negative sophistication broke generation")
	}
	if tr := BotTrace(prg, 50, 9); len(tr) != 50 {
		t.Fatal("huge sophistication broke generation")
	}
}
