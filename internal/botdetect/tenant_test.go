package botdetect

import (
	"testing"

	"glimmers/internal/predicate"
	"glimmers/internal/xcrypto"
)

// TestTenantPredicateVerifies pins the installability contract: the tenant
// predicate must pass the static verifier with a single declassification
// site, or no Glimmer will install it.
func TestTenantPredicateVerifies(t *testing.T) {
	prog := DefaultDetector.TenantPredicate("bot-tenant")
	analysis, err := predicate.Verify(prog)
	if err != nil {
		t.Fatalf("tenant predicate failed verification: %v", err)
	}
	if len(analysis.DeclassSites) != 1 {
		t.Fatalf("declass sites = %d, want 1", len(analysis.DeclassSites))
	}
}

// runTenant executes the tenant predicate over a contribution and signal
// bank, returning the verdict (faults count as refusals, as in the
// enclave).
func runTenant(t *testing.T, contribution, signals []int64) int64 {
	t.Helper()
	prog := DefaultDetector.TenantPredicate("bot-tenant")
	analysis, err := predicate.Verify(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := predicate.Run(prog, contribution, signals, &predicate.Options{MaxSteps: analysis.CostBound})
	if err != nil {
		return 0
	}
	return res.Verdict
}

func TestTenantPredicateVerdicts(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("tenant-verdicts"))
	human := Features(HumanTrace(prg, 300))
	bot := Features(BotTrace(prg, 300, 0))
	one := []int64{1}

	if got := runTenant(t, one, human); got != 1 {
		t.Errorf("human session with verdict contribution: verdict = %d, want 1", got)
	}
	if got := runTenant(t, one, bot); got != 0 {
		t.Errorf("bot session endorsed: verdict = %d, want 0", got)
	}
	// The contribution must be exactly [1]: anything else could smuggle
	// bits or skew the human count.
	for name, contribution := range map[string][]int64{
		"value 2":      {2},
		"value 0":      {0},
		"two elements": {1, 1},
		"empty":        {},
	} {
		if got := runTenant(t, contribution, human); got != 0 {
			t.Errorf("%s endorsed: verdict = %d, want 0", name, got)
		}
	}
}

// TestTenantPredicateAgreesWithDetector locks the compiled tenant
// predicate to the native classifier across synthetic populations.
func TestTenantPredicateAgreesWithDetector(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("tenant-agreement"))
	for i := 0; i < 40; i++ {
		var features []int64
		if i%2 == 0 {
			features = Features(HumanTrace(prg, 200))
		} else {
			features = Features(BotTrace(prg, 200, float64(i)/40))
		}
		want := int64(0)
		if DefaultDetector.Classify(features) {
			want = 1
		}
		if got := runTenant(t, []int64{1}, features); got != want {
			t.Fatalf("sample %d: tenant verdict %d, native classifier %d", i, got, want)
		}
	}
}
