package botdetect

import (
	"glimmers/internal/fixed"
	"glimmers/internal/predicate"
)

// Bot detection as a first-class aggregation tenant: instead of the
// challenge/verdict flow (BotGate), a device contributes the one-bit
// verdict itself — a 1-dimensional vector holding exactly 1 — and the
// Glimmer endorses it only when the detector classifies the private
// behavioural signals as human. A round's aggregate sum is then the
// human-session count, flowing through the same blinded-aggregation
// pipeline as every other tenant's contributions. This is the paper's
// point made concrete: §4.1 bot detection and §4.2 hosted aggregation are
// two tenants of one trust mechanism.

// TenantDim is the dimensionality of verdict contributions: the one bit
// §4.1 allows.
const TenantDim = 1

// VerdictContribution returns the contribution an endorsed human session
// submits: a single raw ring 1, so the cohort's exact sum counts human
// sessions directly (masks cancel as usual).
func VerdictContribution() fixed.Vector {
	return fixed.Vector{1}
}

// TenantPredicate compiles the detector into a tenant validation
// predicate: valid iff the contribution is exactly VerdictContribution
// (one element, equal to 1 — any other value could smuggle extra bits or
// skew the count) AND the detector's indicator majority classifies the
// private signal bank as human. Like Predicate, the program is branch-free
// over secrets with a single declassification site, so it passes the
// static verifier and installs under the default policy — even delivered
// confidentially.
func (d Detector) TenantPredicate(name string) *predicate.Program {
	b := predicate.NewBuilder(name, 1)
	b.Push(0).Store(0)
	indicator := func(feature int, min int64) {
		b.LoadP(feature).Push(min).Ge().Load(0).Add().Store(0)
	}
	indicator(FeatGapStd, d.MinGapStd)
	indicator(FeatGapEntropy, d.MinGapEntropy)
	indicator(FeatCurvature, d.MinCurvature)
	indicator(FeatFocus, d.MinFocus)
	indicator(FeatBurstiness, d.MinBurstiness)
	b.Load(0).Push(d.MinIndicators).Ge()
	b.LenP().Push(int64(NumFeatures)).Eq().And()
	// The verdict contribution itself: exactly one element, exactly 1.
	b.LenC().Push(int64(TenantDim)).Eq().And()
	b.LoadC(0).Push(1).Eq().And()
	b.Declass().Verdict()
	return b.MustBuild()
}
