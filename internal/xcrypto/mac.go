package xcrypto

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
)

// Session MACs: the amortized-authentication primitive behind attested
// session tickets. One public-key operation (an ECDSA-verified ticket
// request, or an attested handshake) establishes a short-lived 32-byte
// session key; every message that follows carries an HMAC-SHA256 tag
// instead of an asymmetric signature, turning the ~100 µs per-message
// verify into a ~1 µs constant-time check on the ingest hot path.

// MACSize is the byte length of a session MAC (HMAC-SHA256).
const MACSize = sha256.Size

// SessionKey is a 32-byte HMAC-SHA256 session key. It is a value type so
// hot paths can copy it out of shared tables without allocating.
type SessionKey [32]byte

// NewSessionKey draws a fresh random session key.
func NewSessionKey() (SessionKey, error) {
	var k SessionKey
	if _, err := rand.Read(k[:]); err != nil {
		return SessionKey{}, fmt.Errorf("xcrypto: session key generation: %w", err)
	}
	return k, nil
}

// DeriveTicketKey derives the session key both ends of a ticket grant
// compute from the X25519 shared secret: the granting service on one side,
// the enclave that supplied the device public value on the other. The key
// is bound to the service name and the granted ticket ID, so a grant
// replayed across services or tickets derives a useless key.
func DeriveTicketKey(shared []byte, service string, ticketID uint64) SessionKey {
	info := make([]byte, 0, len("glimmers/ticket/v1/")+len(service)+9)
	info = append(info, "glimmers/ticket/v1/"...)
	info = append(info, service...)
	info = append(info, 0)
	info = binary.BigEndian.AppendUint64(info, ticketID)
	var key SessionKey
	copy(key[:], HKDF(shared, nil, info, 32))
	return key
}

// MACState is reusable HMAC-SHA256 state for the per-message hot path: one
// state computes and verifies a stream of MACs under changing keys with
// zero heap allocations at steady state (the hasher is created once, the
// pads and digest buffers live on the struct). A MACState must not be used
// from two goroutines concurrently; pipelines pool them alongside their
// decode scratch.
type MACState struct {
	h   hash.Hash
	pad [sha256.BlockSize]byte
	sum [MACSize]byte
	out [MACSize]byte

	// Batch amortization (see macbatch.go): the keyed pad states for `key`,
	// snapshotted once per SetKey and restored per message. The snapshots
	// are immune to Sum/Verify calls in between — those rebuild their own
	// pads — so a state can interleave scalar and keyed use freely.
	key       SessionKey
	keyed     bool
	snap      bool
	states    keyedStates
	unmarshal encoding.BinaryUnmarshaler
	joined    []byte
}

// Sum computes HMAC-SHA256(key, msg) into out.
func (m *MACState) Sum(key *SessionKey, msg []byte, out *[MACSize]byte) {
	if m.h == nil {
		m.h = sha256.New()
	}
	// K0 = key || zeros to the block size; inner pad = K0 ^ 0x36.
	for i := range m.pad {
		m.pad[i] = 0x36
	}
	for i, b := range key {
		m.pad[i] ^= b
	}
	m.h.Reset()
	m.h.Write(m.pad[:])
	m.h.Write(msg)
	inner := m.h.Sum(m.sum[:0])
	// Outer pad = K0 ^ 0x5c.
	for i := range m.pad {
		m.pad[i] ^= 0x36 ^ 0x5c
	}
	m.h.Reset()
	m.h.Write(m.pad[:])
	m.h.Write(inner)
	m.h.Sum(out[:0])
}

// Verify reports whether mac is the session MAC of msg under key, in
// constant time with respect to the MAC bytes.
func (m *MACState) Verify(key *SessionKey, msg, mac []byte) bool {
	if len(mac) != MACSize {
		return false
	}
	// The comparison buffer lives on the state: a stack array passed into
	// the hasher's interface methods would escape and cost one allocation
	// per verification.
	m.Sum(key, msg, &m.out)
	return hmac.Equal(m.out[:], mac)
}

// SessionMAC is the one-shot convenience for cold paths (ticket issuance,
// the enclave's per-contribution seal, tests).
func SessionMAC(key *SessionKey, msg []byte) [MACSize]byte {
	var m MACState
	var out [MACSize]byte
	m.Sum(key, msg, &out)
	return out
}

// VerifySessionMAC is the one-shot verification counterpart.
func VerifySessionMAC(key *SessionKey, msg, mac []byte) bool {
	var m MACState
	return m.Verify(key, msg, mac)
}
