package xcrypto

import (
	"math/rand"
	"sync"
	"testing"

	"glimmers/internal/race"
)

// randKey derives a deterministic test key from a seeded source.
func randKey(rng *rand.Rand) SessionKey {
	var k SessionKey
	rng.Read(k[:])
	return k
}

// TestSumKeyedMatchesSessionMAC locks the keyed (snapshot-restoring) path to
// the one-shot HMAC for arbitrary preimage splits: amortization must never
// change a single MAC bit.
func TestSumKeyedMatchesSessionMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m MACState
	for trial := 0; trial < 200; trial++ {
		key := randKey(rng)
		msg := make([]byte, rng.Intn(4096))
		rng.Read(msg)
		cut := 0
		if len(msg) > 0 {
			cut = rng.Intn(len(msg) + 1)
		}
		want := SessionMAC(&key, msg)
		m.SetKey(&key)
		var got [MACSize]byte
		m.SumKeyed(msg[:cut], msg[cut:], &got)
		if got != want {
			t.Fatalf("trial %d (len %d, cut %d): keyed sum diverges from SessionMAC", trial, len(msg), cut)
		}
		if !m.VerifyKeyed(msg[:cut], msg[cut:], want[:]) {
			t.Fatalf("trial %d: VerifyKeyed rejects the true MAC", trial)
		}
	}
}

// TestSetKeySwitchesKeys guards the cache-invalidation edge: after SetKey
// with a second key, MACs under the first key must no longer verify.
func TestSetKeySwitchesKeys(t *testing.T) {
	var k1, k2 SessionKey
	k1[0], k2[0] = 1, 2
	msg := []byte("the same message")
	mac1 := SessionMAC(&k1, msg)
	mac2 := SessionMAC(&k2, msg)
	var m MACState
	m.SetKey(&k1)
	if !m.VerifyKeyed(nil, msg, mac1[:]) {
		t.Fatal("k1 MAC rejected under k1")
	}
	m.SetKey(&k2)
	if m.VerifyKeyed(nil, msg, mac1[:]) {
		t.Fatal("k1 MAC accepted after switching to k2")
	}
	if !m.VerifyKeyed(nil, msg, mac2[:]) {
		t.Fatal("k2 MAC rejected under k2")
	}
	// Re-setting the same key is the hot no-op path.
	m.SetKey(&k2)
	if !m.VerifyKeyed(nil, msg, mac2[:]) {
		t.Fatal("k2 MAC rejected after idempotent SetKey")
	}
}

// TestScalarAndKeyedInterleave guards the state-sharing rule: scalar
// Sum/Verify calls between keyed ones must not corrupt the snapshot cache.
func TestScalarAndKeyedInterleave(t *testing.T) {
	var keyed, scalar SessionKey
	keyed[0], scalar[0] = 7, 9
	msg := []byte("interleaved traffic")
	keyedMAC := SessionMAC(&keyed, msg)
	scalarMAC := SessionMAC(&scalar, msg)
	var m MACState
	m.SetKey(&keyed)
	for i := 0; i < 4; i++ {
		if !m.VerifyKeyed(nil, msg, keyedMAC[:]) {
			t.Fatalf("round %d: keyed verify failed", i)
		}
		if !m.Verify(&scalar, msg, scalarMAC[:]) {
			t.Fatalf("round %d: scalar verify failed", i)
		}
	}
}

// TestVerifyBatch exercises the batch entry point: verdicts must agree with
// scalar Verify item by item, including corrupted MACs and wrong-length tags.
func TestVerifyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	key := randKey(rng)
	const n = 64
	msgs := make([][]byte, n)
	macs := make([][]byte, n)
	want := make([]bool, n)
	wantN := 0
	for i := range msgs {
		msgs[i] = make([]byte, 16+rng.Intn(512))
		rng.Read(msgs[i])
		mac := SessionMAC(&key, msgs[i])
		macs[i] = append([]byte(nil), mac[:]...)
		want[i] = true
		switch i % 5 {
		case 1: // flipped MAC bit
			macs[i][rng.Intn(MACSize)] ^= 0x40
			want[i] = false
		case 2: // truncated tag
			macs[i] = macs[i][:MACSize-1]
			want[i] = false
		case 3: // flipped message bit
			msgs[i][rng.Intn(len(msgs[i]))] ^= 0x01
			want[i] = false
		}
		if want[i] {
			wantN++
		}
	}
	var m MACState
	ok := make([]bool, n)
	if got := m.VerifyBatch(&key, msgs, macs, ok); got != wantN {
		t.Fatalf("VerifyBatch = %d verified, want %d", got, wantN)
	}
	var scalar MACState
	for i := range msgs {
		if ok[i] != want[i] {
			t.Errorf("item %d: batch verdict %v, want %v", i, ok[i], want[i])
		}
		if s := scalar.Verify(&key, msgs[i], macs[i]); s != ok[i] {
			t.Errorf("item %d: batch verdict %v disagrees with scalar %v", i, ok[i], s)
		}
	}
}

// TestVerifyBatchAllocFree pins the batch verifier's zero-allocation
// contract: on warm state, verifying a batch allocates nothing.
func TestVerifyBatchAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	var key SessionKey
	key[0] = 3
	const n = 16
	msgs := make([][]byte, n)
	macs := make([][]byte, n)
	ok := make([]bool, n)
	for i := range msgs {
		msgs[i] = make([]byte, 512)
		msgs[i][0] = byte(i)
		mac := SessionMAC(&key, msgs[i])
		macs[i] = append([]byte(nil), mac[:]...)
	}
	var m MACState
	m.VerifyBatch(&key, msgs, macs, ok) // warm the snapshots and hasher
	if got := testing.AllocsPerRun(100, func() {
		if m.VerifyBatch(&key, msgs, macs, ok) != n {
			t.Fatal("batch failed to verify")
		}
	}); got > 0 {
		t.Errorf("VerifyBatch: %.1f allocs/op, want 0", got)
	}
}

// TestBatchVerifierConcurrent drives one BatchVerifier from many goroutines
// under distinct keys — the per-shard usage pattern — and demands every
// verdict be exact. Run under -race this doubles as the aliasing guard for
// the pooled states.
func TestBatchVerifierConcurrent(t *testing.T) {
	v := NewBatchVerifier()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			key := randKey(rng)
			const n = 32
			msgs := make([][]byte, n)
			macs := make([][]byte, n)
			ok := make([]bool, n)
			for i := range msgs {
				msgs[i] = make([]byte, 64+rng.Intn(256))
				rng.Read(msgs[i])
				mac := SessionMAC(&key, msgs[i])
				macs[i] = append([]byte(nil), mac[:]...)
			}
			macs[7][0] ^= 0xFF
			for round := 0; round < 50; round++ {
				if got := v.VerifyBatch(&key, msgs, macs, ok); got != n-1 {
					t.Errorf("worker %d round %d: %d verified, want %d", w, round, got, n-1)
					return
				}
				if ok[7] {
					t.Errorf("worker %d: corrupted MAC verified", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
