package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"math"
)

// PRG is a deterministic pseudo-random generator: AES-128-CTR keyed by a
// seed. Two parties that share a seed derive identical byte streams, which
// is exactly what pairwise blinding masks require (each pair of clients
// expands a shared ECDH secret into a mask vector). The stream is also used
// to drive reproducible experiment randomness.
type PRG struct {
	stream cipher.Stream
	// buf is a scratch block reused across calls to avoid per-call allocs.
	buf [8]byte
}

// NewPRG returns a PRG seeded by seed. The seed is stretched with HKDF so
// seeds of any length are acceptable; identical seeds yield identical
// streams.
func NewPRG(seed []byte) *PRG {
	material := HKDF(seed, nil, []byte("glimmers/prg/v1"), 32)
	block, err := aes.NewCipher(material[:16])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes; 16 is always valid.
		panic("xcrypto: impossible AES key failure: " + err.Error())
	}
	return &PRG{stream: cipher.NewCTR(block, material[16:32])}
}

// Read fills p with pseudo-random bytes. It never fails.
func (g *PRG) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	g.stream.XORKeyStream(p, p)
	return len(p), nil
}

// Uint64 returns the next 64-bit value from the stream.
func (g *PRG) Uint64() uint64 {
	for i := range g.buf {
		g.buf[i] = 0
	}
	g.stream.XORKeyStream(g.buf[:], g.buf[:])
	return binary.LittleEndian.Uint64(g.buf[:])
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (g *PRG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xcrypto: Uint64n with n == 0")
	}
	// Rejection sampling to avoid modulo bias.
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := g.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *PRG) Intn(n int) int {
	if n <= 0 {
		panic("xcrypto: Intn with n <= 0")
	}
	return int(g.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (g *PRG) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller transform.
func (g *PRG) NormFloat64() float64 {
	for {
		u := 2*g.Float64() - 1
		v := 2*g.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *PRG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := g.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
