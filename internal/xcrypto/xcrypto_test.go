package xcrypto

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"
	"testing/quick"
)

// TestHKDFRFC5869Case1 checks the first test vector from RFC 5869 Appendix A.
func TestHKDFRFC5869Case1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	wantPRK, _ := hex.DecodeString("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := HKDFExtract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Errorf("PRK = %x, want %x", prk, wantPRK)
	}
	okm := HKDFExpand(prk, info, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("OKM = %x, want %x", okm, wantOKM)
	}
}

// TestHKDFRFC5869Case3 checks the zero-salt vector from RFC 5869 Appendix A.
func TestHKDFRFC5869Case3(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM, _ := hex.DecodeString("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	okm := HKDF(ikm, nil, nil, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestHKDFExpandLengthLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized expand")
		}
	}()
	HKDFExpand(make([]byte, 32), nil, 255*32+1)
}

func TestDeriveKey32ContextSeparation(t *testing.T) {
	secret := []byte("platform secret")
	a := DeriveKey32(secret, "context-a")
	b := DeriveKey32(secret, "context-b")
	if a == b {
		t.Fatal("different contexts produced identical keys")
	}
	a2 := DeriveKey32(secret, "context-a")
	if a != a2 {
		t.Fatal("derivation is not deterministic")
	}
}

func TestPRGDeterminism(t *testing.T) {
	a, b := NewPRG([]byte("seed")), NewPRG([]byte("seed"))
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("stream diverged at %d: %d != %d", i, av, bv)
		}
	}
	c := NewPRG([]byte("other seed"))
	same := 0
	a = NewPRG([]byte("seed"))
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d/100 identical outputs", same)
	}
}

func TestPRGReadFillsBuffer(t *testing.T) {
	g := NewPRG([]byte("read"))
	buf := make([]byte, 257)
	n, err := g.Read(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("Read = (%d, %v), want (%d, nil)", n, err, len(buf))
	}
	zero := 0
	for _, b := range buf {
		if b == 0 {
			zero++
		}
	}
	if zero > 16 {
		t.Fatalf("suspiciously many zero bytes: %d/257", zero)
	}
}

func TestPRGUint64nBounds(t *testing.T) {
	g := NewPRG([]byte("bounds"))
	for i := 0; i < 10000; i++ {
		if v := g.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
}

func TestPRGUint64nUniform(t *testing.T) {
	g := NewPRG([]byte("uniform"))
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestPRGFloat64Range(t *testing.T) {
	g := NewPRG([]byte("floats"))
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestPRGNormFloat64Moments(t *testing.T) {
	g := NewPRG([]byte("normal"))
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPRGPerm(t *testing.T) {
	g := NewPRG([]byte("perm"))
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPRGPanicsOnZeroN(t *testing.T) {
	g := NewPRG([]byte("panic"))
	for _, fn := range []func(){
		func() { g.Uint64n(0) },
		func() { g.Intn(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := DeriveKey32([]byte("k"), "test")
	ct, err := Seal(key, []byte("hello glimmer"), []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Open(key, ct, []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hello glimmer" {
		t.Fatalf("plaintext = %q", pt)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	key := DeriveKey32([]byte("k"), "test")
	ct, err := Seal(key, []byte("payload"), []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() ([]byte, []byte){
		"flipped ciphertext bit": func() ([]byte, []byte) {
			bad := append([]byte(nil), ct...)
			bad[len(bad)-1] ^= 1
			return bad, []byte("ad")
		},
		"wrong associated data": func() ([]byte, []byte) { return ct, []byte("other") },
		"truncated":             func() ([]byte, []byte) { return ct[:4], []byte("ad") },
		"empty":                 func() ([]byte, []byte) { return nil, []byte("ad") },
	}
	for name, mk := range cases {
		c, ad := mk()
		if _, err := Open(key, c, ad); err != ErrDecrypt {
			t.Errorf("%s: err = %v, want ErrDecrypt", name, err)
		}
	}
	wrongKey := DeriveKey32([]byte("k2"), "test")
	if _, err := Open(wrongKey, ct, []byte("ad")); err != ErrDecrypt {
		t.Errorf("wrong key: err = %v, want ErrDecrypt", err)
	}
}

func TestSealProducesFreshNonces(t *testing.T) {
	key := DeriveKey32([]byte("k"), "test")
	a, err := Seal(key, []byte("msg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Seal(key, []byte("msg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same message are identical (nonce reuse)")
	}
}

func TestSigningRoundTrip(t *testing.T) {
	key, err := NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := key.Sign([]byte("contribution"))
	if err != nil {
		t.Fatal(err)
	}
	if !key.Public().Verify([]byte("contribution"), sig) {
		t.Fatal("valid signature rejected")
	}
	if key.Public().Verify([]byte("contribution!"), sig) {
		t.Fatal("signature verified for altered message")
	}
	other, err := NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	if other.Public().Verify([]byte("contribution"), sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestSigningKeyMarshalRoundTrip(t *testing.T) {
	key, err := NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	der, err := key.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ParseSigningKey(der)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := restored.Sign([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if !key.Public().Verify([]byte("m"), sig) {
		t.Fatal("restored key signature rejected by original public key")
	}
}

func TestVerifyKeyMarshalRoundTrip(t *testing.T) {
	key, err := NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	der, err := key.Public().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ParseVerifyKey(der)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := key.Sign([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Verify([]byte("m"), sig) {
		t.Fatal("parsed public key rejected valid signature")
	}
	if pub.Fingerprint() != key.Public().Fingerprint() {
		t.Fatal("fingerprint changed across marshal round trip")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseSigningKey([]byte("not DER")); err == nil {
		t.Error("ParseSigningKey accepted garbage")
	}
	if _, err := ParseVerifyKey([]byte("not DER")); err == nil {
		t.Error("ParseVerifyKey accepted garbage")
	}
}

func TestDHAgreement(t *testing.T) {
	alice, err := NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	ab, err := alice.Shared(bob.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	ba, err := bob.Shared(alice.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, ba) {
		t.Fatal("DH shared secrets disagree")
	}
	eve, err := NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	ae, err := alice.Shared(eve.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab, ae) {
		t.Fatal("different peers produced identical secrets")
	}
}

func TestDHRejectsBadPeerValue(t *testing.T) {
	alice, err := NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Shared([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted malformed peer public value")
	}
}

// Property: Seal followed by Open is the identity for arbitrary payloads and
// associated data.
func TestQuickSealOpenIdentity(t *testing.T) {
	key := DeriveKey32([]byte("quick"), "test")
	f := func(payload, ad []byte) bool {
		ct, err := Seal(key, payload, ad)
		if err != nil {
			return false
		}
		pt, err := Open(key, ct, ad)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HKDF output depends on every one of secret, salt, and info.
func TestQuickHKDFSensitivity(t *testing.T) {
	f := func(secret, salt, info []byte, flip uint8) bool {
		base := HKDF(secret, salt, info, 32)
		mutate := func(b []byte) []byte {
			m := append([]byte(nil), b...)
			m = append(m, flip|1)
			return m
		}
		if bytes.Equal(base, HKDF(mutate(secret), salt, info, 32)) {
			return false
		}
		if bytes.Equal(base, HKDF(secret, mutate(salt), info, 32)) {
			return false
		}
		return !bytes.Equal(base, HKDF(secret, salt, mutate(info), 32))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
