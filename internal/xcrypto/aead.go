package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// ErrDecrypt is returned when an AEAD open fails: wrong key, tampered
// ciphertext, or mismatched associated data. Callers must treat all three
// identically (the distinction is deliberately not observable).
var ErrDecrypt = errors.New("xcrypto: authenticated decryption failed")

// Seal encrypts plaintext under a 32-byte key with AES-256-GCM, binding the
// associated data. A fresh random nonce is generated and prepended to the
// returned ciphertext.
func Seal(key [32]byte, plaintext, associated []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize(), aead.NonceSize()+len(plaintext)+aead.Overhead())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("xcrypto: nonce generation: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, associated), nil
}

// Open decrypts a ciphertext produced by Seal under the same key and
// associated data.
func Open(key [32]byte, ciphertext, associated []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, sealed := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	plaintext, err := aead.Open(nil, nonce, sealed, associated)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plaintext, nil
}

func newGCM(key [32]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: cipher init: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: GCM init: %w", err)
	}
	return aead, nil
}
