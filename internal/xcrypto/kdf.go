// Package xcrypto provides the small set of cryptographic building blocks
// the Glimmer stack needs: HKDF key derivation, a deterministic pseudo-random
// generator for blinding masks, AEAD encryption helpers, and thin wrappers
// around ECDSA signing and X25519 key agreement.
//
// Everything here is built on the Go standard library. The package exists so
// that higher layers (sealing, attestation, blinding) share one audited set
// of primitives instead of each reimplementing key derivation.
package xcrypto

import (
	"crypto/hmac"
	"crypto/sha256"
)

// HKDFExtract implements the extract step of RFC 5869 HKDF with SHA-256.
// If salt is nil, a string of HashLen zeros is used, per the RFC.
func HKDFExtract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// HKDFExpand implements the expand step of RFC 5869 HKDF with SHA-256,
// producing length bytes of output keyed by prk and bound to info.
// It panics if length exceeds 255*32 bytes, per the RFC limit.
func HKDFExpand(prk, info []byte, length int) []byte {
	const hashLen = sha256.Size
	if length > 255*hashLen {
		panic("xcrypto: HKDF expand length exceeds RFC 5869 limit")
	}
	var (
		out  = make([]byte, 0, length)
		prev []byte
	)
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// HKDF runs extract-then-expand in one call.
func HKDF(secret, salt, info []byte, length int) []byte {
	return HKDFExpand(HKDFExtract(salt, secret), info, length)
}

// DeriveKey32 derives a 32-byte key from secret bound to the given context
// label. It is the conventional entry point for sealing and session keys.
func DeriveKey32(secret []byte, context string) [32]byte {
	var key [32]byte
	copy(key[:], HKDF(secret, nil, []byte(context), 32))
	return key
}
