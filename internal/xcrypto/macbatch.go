package xcrypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"sync"
)

// Batch-amortized session-MAC verification: the ingest hot path receives
// contributions in frames, and every contribution in a frame that shares a
// ticket shares its session key. HMAC-SHA256's per-message setup — XORing
// the key into two pads and compressing one block for each — is identical
// for every message under one key, so a batch verifier computes the two
// keyed pad states once and snapshots them; each message then costs only a
// state restore (a ~100-byte copy) plus the hashing of its own bytes. The
// snapshot uses the hash state's own binary marshaling, so no SHA-256
// internals are duplicated here.

// keyedStates holds the snapshotted inner/outer pad states for one key.
// hash.Hash implementations in the standard library satisfy both interfaces;
// the assertions live here so MACState can fall back to the unamortized path
// on a hypothetical hash that does not.
type keyedStates struct {
	inner, outer []byte
}

// SetKey prepares m to verify a run of MACs under key, caching the keyed
// pad states so each subsequent SumKeyed/VerifyKeyed skips the per-message
// key schedule. Setting the key m already holds is a cheap no-op, so batch
// loops call SetKey unconditionally per group. The cache never holds the
// key itself beyond the comparison copy; like the pads in Sum, it is
// overwritten by the next SetKey.
func (m *MACState) SetKey(key *SessionKey) {
	if m.keyed && m.key == *key {
		return
	}
	if m.h == nil {
		m.h = sha256.New()
	}
	app, okA := m.h.(encoding.BinaryAppender)
	unm, okU := m.h.(encoding.BinaryUnmarshaler)
	if !okA || !okU {
		// No snapshot support: remember the key so SumKeyed can fall back
		// to the one-shot path.
		m.key = *key
		m.keyed = true
		m.snap = false
		return
	}
	// Inner pad state: K0 ^ 0x36, one compressed block.
	for i := range m.pad {
		m.pad[i] = 0x36
	}
	for i, b := range key {
		m.pad[i] ^= b
	}
	m.h.Reset()
	m.h.Write(m.pad[:])
	var err error
	if m.states.inner, err = app.AppendBinary(m.states.inner[:0]); err != nil {
		m.key, m.keyed, m.snap = *key, true, false
		return
	}
	// Outer pad state: K0 ^ 0x5c, one compressed block.
	for i := range m.pad {
		m.pad[i] ^= 0x36 ^ 0x5c
	}
	m.h.Reset()
	m.h.Write(m.pad[:])
	if m.states.outer, err = app.AppendBinary(m.states.outer[:0]); err != nil {
		m.key, m.keyed, m.snap = *key, true, false
		return
	}
	m.unmarshal = unm
	m.key = *key
	m.keyed = true
	m.snap = true
}

// SumKeyed computes HMAC-SHA256 under the key set by SetKey, over a
// preimage supplied in two segments (head || tail) — the shape the ingest
// path produces, where the preimage is a constant domain header followed by
// a view into the transport frame, and gluing them would cost a copy per
// message. SumKeyed panics if SetKey has not been called.
func (m *MACState) SumKeyed(head, tail []byte, out *[MACSize]byte) {
	if !m.keyed {
		panic("xcrypto: SumKeyed before SetKey")
	}
	if !m.snap {
		// Snapshot-less fallback: one-shot Sum over a joined preimage.
		m.joined = append(m.joined[:0], head...)
		m.joined = append(m.joined, tail...)
		key := m.key // Sum clobbers m.pad, not m.key
		m.Sum(&key, m.joined, out)
		return
	}
	_ = m.unmarshal.UnmarshalBinary(m.states.inner)
	m.h.Write(head)
	m.h.Write(tail)
	inner := m.h.Sum(m.sum[:0])
	_ = m.unmarshal.UnmarshalBinary(m.states.outer)
	m.h.Write(inner)
	m.h.Sum(out[:0])
}

// VerifyKeyed reports whether mac is the session MAC of head || tail under
// the key set by SetKey, in constant time with respect to the MAC bytes.
func (m *MACState) VerifyKeyed(head, tail, mac []byte) bool {
	if len(mac) != MACSize {
		return false
	}
	m.SumKeyed(head, tail, &m.out)
	return hmac.Equal(m.out[:], mac)
}

// VerifyBatch verifies msgs[i] against macs[i] under one session key,
// amortizing the key schedule across the whole batch, and writes each
// verdict into ok[i]. It returns the number that verified. The slices must
// be the same length; like Verify, a MAC of the wrong size fails rather
// than erroring. Zero heap allocations at steady state.
func (m *MACState) VerifyBatch(key *SessionKey, msgs, macs [][]byte, ok []bool) int {
	if len(msgs) != len(macs) || len(msgs) != len(ok) {
		panic("xcrypto: VerifyBatch slice lengths differ")
	}
	m.SetKey(key)
	n := 0
	for i, msg := range msgs {
		ok[i] = m.VerifyKeyed(nil, msg, macs[i])
		if ok[i] {
			n++
		}
	}
	return n
}

// BatchVerifier is a concurrency-safe pool of MACStates for batch
// verification: pipelines hold one per process (or per tenant) and each
// worker or shard borrows a state for the duration of a batch, so keyed pad
// caches stay warm across frames that keep naming the same tickets.
type BatchVerifier struct {
	pool sync.Pool
}

// NewBatchVerifier returns an empty verifier; states are created on demand.
func NewBatchVerifier() *BatchVerifier {
	return &BatchVerifier{pool: sync.Pool{New: func() any { return new(MACState) }}}
}

// Get borrows a MACState. The caller must Put it back when the batch is
// done and must not share it between goroutines in the meantime.
func (v *BatchVerifier) Get() *MACState { return v.pool.Get().(*MACState) }

// Put returns a borrowed state to the pool. The state retains its keyed pad
// cache — that is the point: the next batch naming the same ticket skips
// the key schedule entirely.
func (v *BatchVerifier) Put(m *MACState) { v.pool.Put(m) }

// VerifyBatch borrows a state, verifies the batch under one key, and
// returns the state — the one-call convenience for callers without their
// own state management.
func (v *BatchVerifier) VerifyBatch(key *SessionKey, msgs, macs [][]byte, ok []bool) int {
	m := v.Get()
	defer v.Put(m)
	return m.VerifyBatch(key, msgs, macs, ok)
}
