package xcrypto

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"testing"

	"glimmers/internal/race"
)

// TestMACStateMatchesStdlibHMAC locks the hand-rolled reusable state to the
// standard library's HMAC-SHA256 across sizes and rekeying.
func TestMACStateMatchesStdlibHMAC(t *testing.T) {
	var m MACState
	for i, msgLen := range []int{0, 1, 31, 32, 63, 64, 65, 1000, 4096} {
		var key SessionKey
		for j := range key {
			key[j] = byte(i*31 + j)
		}
		msg := bytes.Repeat([]byte{byte(i + 1)}, msgLen)
		ref := hmac.New(sha256.New, key[:])
		ref.Write(msg)
		want := ref.Sum(nil)

		var got [MACSize]byte
		m.Sum(&key, msg, &got)
		if !bytes.Equal(got[:], want) {
			t.Fatalf("msgLen %d: MACState.Sum diverges from crypto/hmac", msgLen)
		}
		if !m.Verify(&key, msg, want) {
			t.Fatalf("msgLen %d: Verify refused the reference MAC", msgLen)
		}
		if one := SessionMAC(&key, msg); !bytes.Equal(one[:], want) {
			t.Fatalf("msgLen %d: SessionMAC diverges", msgLen)
		}
	}
}

// TestMACVerifyRefusals pins the refusal surface: flipped bit anywhere in
// the tag, wrong key, wrong message, wrong length.
func TestMACVerifyRefusals(t *testing.T) {
	key, err := NewSessionKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("glimmers: per-session amortized authentication")
	mac := SessionMAC(&key, msg)
	var m MACState
	for i := 0; i < MACSize; i++ {
		bad := mac
		bad[i] ^= 0x01
		if m.Verify(&key, msg, bad[:]) {
			t.Fatalf("accepted MAC with bit flipped in byte %d", i)
		}
	}
	otherKey, err := NewSessionKey()
	if err != nil {
		t.Fatal(err)
	}
	if m.Verify(&otherKey, msg, mac[:]) {
		t.Fatal("accepted MAC under the wrong key")
	}
	if m.Verify(&key, append([]byte(nil), msg[:len(msg)-1]...), mac[:]) {
		t.Fatal("accepted MAC over a different message")
	}
	if m.Verify(&key, msg, mac[:MACSize-1]) {
		t.Fatal("accepted truncated MAC")
	}
	if !m.Verify(&key, msg, mac[:]) {
		t.Fatal("state poisoned: the genuine MAC no longer verifies")
	}
}

// TestMACStateAllocFree pins the hot-path contract: steady-state Sum and
// Verify on a warmed state perform zero heap allocations.
func TestMACStateAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	var m MACState
	key, err := NewSessionKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0xAB}, 2048)
	mac := SessionMAC(&key, msg)
	var out [MACSize]byte
	m.Sum(&key, msg, &out) // warm: create the hasher
	if got := testing.AllocsPerRun(500, func() {
		m.Sum(&key, msg, &out)
		if !m.Verify(&key, msg, mac[:]) {
			t.Fatal("verify failed")
		}
	}); got > 0 {
		t.Errorf("MACState Sum+Verify: %.1f allocs/op, want 0", got)
	}
}

// TestDeriveTicketKeyDomainSeparation: the key is bound to service and
// ticket identity, and both DH directions derive the same key.
func TestDeriveTicketKeyDomainSeparation(t *testing.T) {
	device, err := NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewDHKey()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := device.Shared(server.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := server.Shared(device.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	a := DeriveTicketKey(s1, "svc.example", 7)
	b := DeriveTicketKey(s2, "svc.example", 7)
	if a != b {
		t.Fatal("the two DH directions derive different ticket keys")
	}
	if a == DeriveTicketKey(s1, "other.example", 7) {
		t.Fatal("ticket key not bound to the service name")
	}
	if a == DeriveTicketKey(s1, "svc.example", 8) {
		t.Fatal("ticket key not bound to the ticket ID")
	}
}
