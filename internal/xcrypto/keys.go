package xcrypto

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
)

// SigningKey is an ECDSA P-256 private key used for all signatures in the
// system: enclave quotes, service identities, and Glimmer contribution
// endorsements.
type SigningKey struct {
	priv *ecdsa.PrivateKey
}

// VerifyKey is the public half of a SigningKey.
type VerifyKey struct {
	pub *ecdsa.PublicKey
}

// NewSigningKey generates a fresh P-256 signing key.
func NewSigningKey() (*SigningKey, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: key generation: %w", err)
	}
	return &SigningKey{priv: priv}, nil
}

// Sign signs the SHA-256 digest of msg and returns an ASN.1 signature.
func (k *SigningKey) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: sign: %w", err)
	}
	return sig, nil
}

// Public returns the verification half of the key.
func (k *SigningKey) Public() *VerifyKey {
	return &VerifyKey{pub: &k.priv.PublicKey}
}

// Marshal serializes the private key (PKCS#8). Used to seal service signing
// keys to Glimmer enclaves.
func (k *SigningKey) Marshal() ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(k.priv)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: marshal signing key: %w", err)
	}
	return der, nil
}

// ParseSigningKey reverses SigningKey.Marshal.
func ParseSigningKey(der []byte) (*SigningKey, error) {
	key, err := x509.ParsePKCS8PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: parse signing key: %w", err)
	}
	priv, ok := key.(*ecdsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("xcrypto: parse signing key: not an ECDSA key")
	}
	return &SigningKey{priv: priv}, nil
}

// Verify reports whether sig is a valid signature over msg.
func (k *VerifyKey) Verify(msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(k.pub, digest[:], sig)
}

// Marshal serializes the public key (PKIX DER). The encoding doubles as the
// key's canonical identity in wire messages and allowlists.
func (k *VerifyKey) Marshal() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(k.pub)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: marshal verify key: %w", err)
	}
	return der, nil
}

// Fingerprint returns the SHA-256 of the marshaled public key.
func (k *VerifyKey) Fingerprint() [32]byte {
	der, err := k.Marshal()
	if err != nil {
		// P-256 public keys always marshal; a failure means memory
		// corruption, not a recoverable condition.
		panic("xcrypto: impossible marshal failure: " + err.Error())
	}
	return sha256.Sum256(der)
}

// ParseVerifyKey reverses VerifyKey.Marshal.
func ParseVerifyKey(der []byte) (*VerifyKey, error) {
	key, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: parse verify key: %w", err)
	}
	pub, ok := key.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("xcrypto: parse verify key: not an ECDSA key")
	}
	return &VerifyKey{pub: pub}, nil
}

// DHKey is an X25519 private key used for attested Diffie-Hellman
// handshakes between Glimmers, services, and clients.
type DHKey struct {
	priv *ecdh.PrivateKey
}

// NewDHKey generates a fresh X25519 key pair.
func NewDHKey() (*DHKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: DH key generation: %w", err)
	}
	return &DHKey{priv: priv}, nil
}

// PublicBytes returns the 32-byte public value to send to the peer.
func (k *DHKey) PublicBytes() []byte {
	return k.priv.PublicKey().Bytes()
}

// Bytes returns the private key material, for Shamir-style backup schemes.
func (k *DHKey) Bytes() []byte { return k.priv.Bytes() }

// ParseDHKey reconstructs a DHKey from Bytes output.
func ParseDHKey(b []byte) (*DHKey, error) {
	priv, err := ecdh.X25519().NewPrivateKey(b)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: parse DH key: %w", err)
	}
	return &DHKey{priv: priv}, nil
}

// Shared computes the raw shared secret with the peer's public value.
func (k *DHKey) Shared(peerPublic []byte) ([]byte, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: bad peer DH value: %w", err)
	}
	secret, err := k.priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: ECDH: %w", err)
	}
	return secret, nil
}
