// Package tee simulates the trusted-execution-environment contracts the
// Glimmer design needs from Intel SGX: isolated enclaves with code
// measurement, ECALL/OCALL transitions, sealed storage, local reports, and
// remotely verifiable quotes certified by an attestation service.
//
// The paper (Lie & Maniatis, HotOS 2017) realizes Glimmers on SGX client
// hardware. That hardware is unavailable here, so this package enforces the
// same contracts in software:
//
//   - Isolation: enclave state lives behind unexported fields and is only
//     reachable through registered ECALL handlers. Host code holds an
//     *Enclave but cannot touch its memory.
//   - Measurement: every enclave binary hashes to a Measurement covering its
//     name, version, code identity, and ECALL table. Change any of these and
//     the measurement — and hence sealing keys and attestation — changes.
//   - Sealing: data sealed by an enclave can only be unsealed by an enclave
//     with the same measurement (or same signer, under the signer policy) on
//     the same platform.
//   - Attestation: a platform attestation key, certified by a simulated
//     attestation service, signs quotes binding report data to an enclave
//     measurement. Verifiers trust only the attestation service root.
//   - Resource limits: enclaves have an EPC-style private memory budget, and
//     every ECALL/OCALL transition is counted (optionally charged a
//     synthetic latency) so experiments can measure the cost of enclave
//     decomposition, as §3 of the paper discusses.
package tee

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"glimmers/internal/xcrypto"
)

// Measurement identifies enclave code, the analogue of SGX's MRENCLAVE.
type Measurement [32]byte

// String renders the measurement as abbreviated hex, as a vetting registry
// would publish it.
func (m Measurement) String() string { return hex.EncodeToString(m[:8]) }

// SignerID identifies the key that signed an enclave binary, the analogue
// of SGX's MRSIGNER. The zero SignerID means "unsigned".
type SignerID [32]byte

// Handler is the body of one ECALL: it runs inside the enclave with access
// to the private environment.
type Handler func(env *Env, input []byte) ([]byte, error)

// Binary is enclave code before it is loaded: a manifest plus the ECALL
// table. The measurement covers all of it, so a Binary whose code identity
// or entry points differ measures differently.
type Binary struct {
	name    string
	version string
	code    []byte
	signer  *xcrypto.VerifyKey
	ecalls  map[string]Handler
	// init, if set, runs inside the enclave once at load time.
	init Handler
}

// NewBinary starts a Binary. code is the canonical identity of the enclave's
// logic (for a real enclave, the text segment; here, a stable digest chosen
// by the author — tamper with it and the measurement changes).
func NewBinary(name, version string, code []byte) *Binary {
	return &Binary{
		name:    name,
		version: version,
		code:    append([]byte(nil), code...),
		ecalls:  make(map[string]Handler),
	}
}

// SetSigner attaches the signing identity (MRSIGNER analogue) to the binary.
func (b *Binary) SetSigner(signer *xcrypto.VerifyKey) *Binary {
	b.signer = signer
	return b
}

// OnInit registers a handler that runs inside the enclave when it is loaded,
// before any ECALL is accepted. Its input is the load-time configuration.
func (b *Binary) OnInit(h Handler) *Binary {
	b.init = h
	return b
}

// Define registers an ECALL entry point. Defining the same name twice
// panics: a binary with an ambiguous ECALL table is a build error.
func (b *Binary) Define(name string, h Handler) *Binary {
	if _, dup := b.ecalls[name]; dup {
		panic(fmt.Sprintf("tee: duplicate ECALL %q in binary %q", name, b.name))
	}
	b.ecalls[name] = h
	return b
}

// Measurement computes the binary's measurement. It is stable across loads
// and sensitive to name, version, code identity, and the ECALL table.
func (b *Binary) Measurement() Measurement {
	h := sha256.New()
	h.Write([]byte("glimmers/tee/measurement/v1\x00"))
	writeLenPrefixed(h, []byte(b.name))
	writeLenPrefixed(h, []byte(b.version))
	writeLenPrefixed(h, b.code)
	names := make([]string, 0, len(b.ecalls))
	for name := range b.ecalls {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeLenPrefixed(h, []byte(name))
	}
	var m Measurement
	h.Sum(m[:0])
	return m
}

// SignerID returns the binary's signer identity, or the zero id if unsigned.
func (b *Binary) SignerID() SignerID {
	if b.signer == nil {
		return SignerID{}
	}
	return SignerID(b.signer.Fingerprint())
}

func writeLenPrefixed(h interface{ Write([]byte) (int, error) }, data []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	h.Write(lenBuf[:])
	h.Write(data)
}
