package tee

import (
	"errors"
	"fmt"

	"glimmers/internal/xcrypto"
)

// SealPolicy selects which enclave identity a sealed blob is bound to.
type SealPolicy byte

const (
	// SealToMeasurement binds sealed data to the exact enclave code
	// (MRENCLAVE policy): only an enclave with the same measurement on the
	// same platform can unseal. This is what Glimmers use for service
	// signing keys, so a modified Glimmer cannot recover them.
	SealToMeasurement SealPolicy = iota + 1
	// SealToSigner binds sealed data to the binary's signing authority
	// (MRSIGNER policy): any enclave from the same signer on the same
	// platform can unseal, enabling upgrades across versions.
	SealToSigner
)

// ErrSealPolicy reports an unusable policy, e.g. signer sealing from an
// unsigned binary.
var ErrSealPolicy = errors.New("tee: unusable seal policy")

func (env *Env) sealBinding(policy SealPolicy) ([]byte, error) {
	switch policy {
	case SealToMeasurement:
		m := env.enclave.measurement
		return append([]byte{byte(policy)}, m[:]...), nil
	case SealToSigner:
		s := env.enclave.signerID
		if s == (SignerID{}) {
			return nil, fmt.Errorf("%w: binary is unsigned", ErrSealPolicy)
		}
		return append([]byte{byte(policy)}, s[:]...), nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %d", ErrSealPolicy, policy)
	}
}

// Seal encrypts plaintext so only enclaves matching the policy on this
// platform can recover it. The associated data is authenticated but not
// encrypted.
func (env *Env) Seal(plaintext, associated []byte, policy SealPolicy) ([]byte, error) {
	binding, err := env.sealBinding(policy)
	if err != nil {
		return nil, err
	}
	key := env.enclave.platform.sealKey(binding)
	return xcrypto.Seal(key, plaintext, associated)
}

// Unseal reverses Seal for an enclave matching the original policy binding.
func (env *Env) Unseal(ciphertext, associated []byte, policy SealPolicy) ([]byte, error) {
	binding, err := env.sealBinding(policy)
	if err != nil {
		return nil, err
	}
	key := env.enclave.platform.sealKey(binding)
	return xcrypto.Open(key, ciphertext, associated)
}
