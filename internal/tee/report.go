package tee

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"

	"glimmers/internal/xcrypto"
)

// ReportDataSize is the number of user-controlled bytes a report carries,
// matching SGX's 64-byte REPORTDATA field. Protocols put a hash of whatever
// they want bound to the attestation (e.g. a DH public value) here.
const ReportDataSize = 64

// Report is a local attestation statement: this measurement, from this
// signer, on this platform, vouches for this data. Its MAC is keyed by a
// platform secret, so only enclaves on the same platform can verify it.
type Report struct {
	Measurement Measurement
	Signer      SignerID
	Platform    PlatformID
	Data        [ReportDataSize]byte
	MAC         [32]byte
}

func (r Report) signedBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString("glimmers/tee/report/v1\x00")
	buf.Write(r.Measurement[:])
	buf.Write(r.Signer[:])
	buf.Write(r.Platform[:])
	buf.Write(r.Data[:])
	return buf.Bytes()
}

// NewReport creates a report binding up to ReportDataSize bytes of data to
// the running enclave's identity.
func (env *Env) NewReport(data []byte) (Report, error) {
	if len(data) > ReportDataSize {
		return Report{}, fmt.Errorf("tee: report data %d bytes exceeds %d", len(data), ReportDataSize)
	}
	r := Report{
		Measurement: env.enclave.measurement,
		Signer:      env.enclave.signerID,
		Platform:    env.enclave.platform.id,
	}
	copy(r.Data[:], data)
	r.MAC = env.enclave.platform.reportMAC(r.signedBytes())
	return r, nil
}

// VerifyReport checks a report produced on the same platform (local
// attestation between enclaves, used by decomposed Glimmers to trust each
// other's components).
func (env *Env) VerifyReport(r Report) bool {
	if r.Platform != env.enclave.platform.id {
		return false
	}
	want := env.enclave.platform.reportMAC(r.signedBytes())
	return subtle.ConstantTimeCompare(want[:], r.MAC[:]) == 1
}

// Quote is a remotely verifiable attestation: a report signed by the
// platform's certified attestation key. Anyone holding the attestation
// service root can verify it.
type Quote struct {
	Report    Report
	Cert      PlatformCert
	Signature []byte
}

// NewQuote produces a quote over up to ReportDataSize bytes of data. This is
// the message a Glimmer presents to prove "I am the vetted Glimmer code".
func (env *Env) NewQuote(data []byte) (Quote, error) {
	r, err := env.NewReport(data)
	if err != nil {
		return Quote{}, err
	}
	p := env.enclave.platform
	sig, err := p.attestKey.Sign(r.signedBytes())
	if err != nil {
		return Quote{}, fmt.Errorf("tee: quote signing: %w", err)
	}
	return Quote{Report: r, Cert: p.cert, Signature: sig}, nil
}

// Quote verification errors.
var (
	ErrQuoteCert        = errors.New("tee: quote platform certificate invalid")
	ErrQuoteSignature   = errors.New("tee: quote signature invalid")
	ErrQuoteMeasurement = errors.New("tee: quote measurement not in allowlist")
	ErrQuoteRevoked     = errors.New("tee: quote platform revoked")
	ErrQuotePlatform    = errors.New("tee: quote certificate does not match report platform")
)

// QuoteVerifier checks quotes against the attestation service root and an
// optional measurement allowlist — the paper's "published hash of the
// vetted Glimmer".
//
// Allow and Verify are safe for concurrent use: services vet new Glimmer
// builds while live ingest pipelines verify quotes against the same
// allowlist. The exported fields are fixed at construction; runtime
// allowlist growth must go through Allow.
type QuoteVerifier struct {
	// Root is the attestation service's verification key. Required.
	Root *xcrypto.VerifyKey
	// Allowed, when non-empty, is the set of acceptable measurements.
	Allowed []Measurement
	// Revoked, when non-nil, consults a revocation oracle for the platform.
	Revoked func(PlatformID) bool

	mu sync.RWMutex // guards Allowed against concurrent Allow/Verify

	// keyMu/keys cache parsed attestation keys by the digest of their DER
	// encoding: a fleet has few platforms but millions of handshakes, and
	// re-parsing the same certified key on every quote was the hottest
	// allocation in the handshake profile. Caching is sound because the
	// key is only trusted after its certificate verifies under Root, which
	// still happens on every call. Bounded to keep a hostile stream of
	// fresh certificates from growing the map without limit.
	keyMu sync.RWMutex
	keys  map[[32]byte]*xcrypto.VerifyKey
}

// maxCachedAttestKeys bounds the parsed-key cache; at the bound the cache
// is dropped wholesale (a fleet rotates keys slowly, so eviction finesse
// buys nothing).
const maxCachedAttestKeys = 1024

// attestKey returns the parsed attestation key for der, from cache when
// possible.
func (v *QuoteVerifier) attestKey(der []byte) (*xcrypto.VerifyKey, error) {
	digest := sha256.Sum256(der)
	v.keyMu.RLock()
	key := v.keys[digest]
	v.keyMu.RUnlock()
	if key != nil {
		return key, nil
	}
	key, err := xcrypto.ParseVerifyKey(der)
	if err != nil {
		return nil, err
	}
	v.keyMu.Lock()
	if v.keys == nil || len(v.keys) >= maxCachedAttestKeys {
		v.keys = make(map[[32]byte]*xcrypto.VerifyKey, 8)
	}
	v.keys[digest] = key
	v.keyMu.Unlock()
	return key, nil
}

// Allow appends a measurement to the allowlist.
func (v *QuoteVerifier) Allow(m Measurement) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.Allowed = append(v.Allowed, m)
}

// allowed reports whether the measurement passes the allowlist (an empty
// allowlist admits everything).
func (v *QuoteVerifier) allowed(m Measurement) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if len(v.Allowed) == 0 {
		return true
	}
	for _, a := range v.Allowed {
		if a == m {
			return true
		}
	}
	return false
}

// Verify checks the full chain: certificate under the root, report
// signature under the certified key, platform consistency, revocation, and
// measurement allowlisting. On success the quote's report contents can be
// trusted.
func (v *QuoteVerifier) Verify(q Quote) error {
	if v.Root == nil {
		return errors.New("tee: QuoteVerifier has no root key")
	}
	if !v.Root.Verify(q.Cert.signedBytes(), q.Cert.Signature) {
		return ErrQuoteCert
	}
	if q.Cert.PlatformID != q.Report.Platform {
		return ErrQuotePlatform
	}
	if v.Revoked != nil && v.Revoked(q.Cert.PlatformID) {
		return ErrQuoteRevoked
	}
	attestKey, err := v.attestKey(q.Cert.AttestKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrQuoteCert, err)
	}
	if !attestKey.Verify(q.Report.signedBytes(), q.Signature) {
		return ErrQuoteSignature
	}
	if !v.allowed(q.Report.Measurement) {
		return fmt.Errorf("%w: %v", ErrQuoteMeasurement, q.Report.Measurement)
	}
	return nil
}
