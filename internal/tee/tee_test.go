package tee

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"glimmers/internal/xcrypto"
)

func testPlatform(t *testing.T) (*AttestationService, *Platform) {
	t.Helper()
	as, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	return as, p
}

func echoBinary() *Binary {
	return NewBinary("echo", "1.0", []byte("echo-code-v1")).
		Define("echo", func(env *Env, input []byte) ([]byte, error) {
			return input, nil
		})
}

func TestMeasurementStableAndSensitive(t *testing.T) {
	base := func() *Binary { return NewBinary("g", "1", []byte("code")).Define("run", nil) }
	m := base().Measurement()
	if m != base().Measurement() {
		t.Fatal("measurement not stable across identical binaries")
	}
	variants := map[string]*Binary{
		"name":    NewBinary("g2", "1", []byte("code")).Define("run", nil),
		"version": NewBinary("g", "2", []byte("code")).Define("run", nil),
		"code":    NewBinary("g", "1", []byte("code2")).Define("run", nil),
		"ecalls":  NewBinary("g", "1", []byte("code")).Define("run", nil).Define("extra", nil),
	}
	for what, b := range variants {
		if b.Measurement() == m {
			t.Errorf("changing %s did not change measurement", what)
		}
	}
}

func TestMeasurementIndependentOfDefinitionOrder(t *testing.T) {
	a := NewBinary("g", "1", []byte("c")).Define("x", nil).Define("y", nil)
	b := NewBinary("g", "1", []byte("c")).Define("y", nil).Define("x", nil)
	if a.Measurement() != b.Measurement() {
		t.Fatal("ECALL definition order changed measurement")
	}
}

func TestDuplicateECallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBinary("g", "1", nil).Define("run", nil).Define("run", nil)
}

func TestLoadRequiresECalls(t *testing.T) {
	_, p := testPlatform(t)
	if _, err := p.Load(NewBinary("empty", "1", nil)); err == nil {
		t.Fatal("loaded a binary with no ECALLs")
	}
}

func TestECallDispatch(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(echoBinary())
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Call("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello" {
		t.Fatalf("echo = %q", out)
	}
	if _, err := e.Call("missing", nil); !errors.Is(err, ErrNoSuchECall) {
		t.Fatalf("missing ECALL: err = %v", err)
	}
}

func TestDestroyedEnclaveRejectsCalls(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(echoBinary())
	if err != nil {
		t.Fatal(err)
	}
	e.Destroy()
	if _, err := e.Call("echo", nil); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("err = %v, want ErrDestroyed", err)
	}
}

func TestBufferIsolationAcrossBoundary(t *testing.T) {
	var insideSaw []byte
	b := NewBinary("iso", "1", []byte("c")).
		Define("keep", func(env *Env, input []byte) ([]byte, error) {
			insideSaw = input
			return input, nil
		})
	_, p := testPlatform(t)
	e, err := p.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	hostBuf := []byte("original")
	out, err := e.Call("keep", hostBuf)
	if err != nil {
		t.Fatal(err)
	}
	hostBuf[0] = 'X' // host mutates its buffer after the call
	if insideSaw[0] == 'X' {
		t.Fatal("enclave input aliases host memory (TOCTOU)")
	}
	out[0] = 'Y' // host mutates the output
	if insideSaw[0] == 'Y' {
		t.Fatal("enclave-held buffer aliases returned output")
	}
}

func TestReentrantECallRejected(t *testing.T) {
	_, p := testPlatform(t)
	var e *Enclave
	b := NewBinary("re", "1", []byte("c")).
		Define("outer", func(env *Env, input []byte) ([]byte, error) {
			_, err := e.Call("outer", nil)
			if !errors.Is(err, ErrReentrant) {
				t.Errorf("nested call err = %v, want ErrReentrant", err)
			}
			return nil, nil
		})
	var err error
	e, err = p.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("outer", nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrivateStoreAndEPCBudget(t *testing.T) {
	b := NewBinary("mem", "1", []byte("c")).
		Define("put", func(env *Env, input []byte) ([]byte, error) {
			return nil, env.Put("k", input)
		}).
		Define("get", func(env *Env, input []byte) ([]byte, error) {
			v, ok := env.Get("k")
			if !ok {
				return nil, errors.New("missing")
			}
			return v, nil
		}).
		Define("del", func(env *Env, input []byte) ([]byte, error) {
			env.Delete("k")
			return nil, nil
		})
	_, p := testPlatform(t)
	e, err := p.Load(b, WithEPCBudget(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("put", bytes.Repeat([]byte("a"), 32)); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	got, err := e.Call("get", nil)
	if err != nil || len(got) != 32 {
		t.Fatalf("get = (%d bytes, %v)", len(got), err)
	}
	if _, err := e.Call("put", bytes.Repeat([]byte("a"), 128)); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("over budget: err = %v, want ErrEPCExhausted", err)
	}
	// Replacing the existing value within budget must still work.
	if _, err := e.Call("put", bytes.Repeat([]byte("b"), 40)); err != nil {
		t.Fatalf("replace within budget: %v", err)
	}
	if _, err := e.Call("del", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("get", nil); err == nil {
		t.Fatal("value survived delete")
	}
}

func TestOCallMediation(t *testing.T) {
	b := NewBinary("oc", "1", []byte("c")).
		Define("fetch", func(env *Env, input []byte) ([]byte, error) {
			return env.OCall("host.read", input)
		}).
		Define("fetchMissing", func(env *Env, input []byte) ([]byte, error) {
			return env.OCall("host.nope", input)
		})
	_, p := testPlatform(t)
	e, err := p.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	e.ProvideOCall("host.read", func(input []byte) ([]byte, error) {
		return append([]byte("host:"), input...), nil
	})
	out, err := e.Call("fetch", []byte("x"))
	if err != nil || string(out) != "host:x" {
		t.Fatalf("fetch = (%q, %v)", out, err)
	}
	if _, err := e.Call("fetchMissing", nil); err == nil {
		t.Fatal("missing OCALL should fail")
	}
	stats := e.Stats()
	if stats.OCalls != 1 {
		t.Fatalf("OCalls = %d, want 1", stats.OCalls)
	}
}

func TestTransitionStats(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(echoBinary())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Call("echo", []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.ECalls != 5 {
		t.Errorf("ECalls = %d, want 5", s.ECalls)
	}
	if s.BytesIn != 20 || s.BytesOut != 20 {
		t.Errorf("BytesIn/Out = %d/%d, want 20/20", s.BytesIn, s.BytesOut)
	}
}

func TestTransitionCostAccumulates(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(echoBinary(), WithTransitionCost(time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("echo", nil); err != nil {
		t.Fatal(err)
	}
	if e.Stats().SimulatedOverhead < 2*time.Microsecond {
		t.Errorf("SimulatedOverhead = %v, want >= 2µs", e.Stats().SimulatedOverhead)
	}
}

func TestOnInitRunsOnceBeforeECalls(t *testing.T) {
	b := NewBinary("init", "1", []byte("c")).
		OnInit(func(env *Env, input []byte) ([]byte, error) {
			return nil, env.Put("cfg", input)
		}).
		Define("cfg", func(env *Env, input []byte) ([]byte, error) {
			v, _ := env.Get("cfg")
			return v, nil
		})
	_, p := testPlatform(t)
	e, err := p.Load(b, WithInitInput([]byte("configured")))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Call("cfg", nil)
	if err != nil || string(out) != "configured" {
		t.Fatalf("cfg = (%q, %v)", out, err)
	}
	if e.Stats().ECalls != 1 {
		t.Errorf("init was charged as an ECALL")
	}
}

func TestInitFailureAbortsLoad(t *testing.T) {
	b := NewBinary("badinit", "1", []byte("c")).
		OnInit(func(env *Env, input []byte) ([]byte, error) {
			return nil, errors.New("refuse")
		}).
		Define("x", nil)
	_, p := testPlatform(t)
	if _, err := p.Load(b); err == nil {
		t.Fatal("load succeeded despite failing init")
	}
}

func sealBinary(name string) *Binary {
	return NewBinary(name, "1", []byte(name+"-code")).
		Define("seal", func(env *Env, input []byte) ([]byte, error) {
			return env.Seal(input, []byte("ad"), SealToMeasurement)
		}).
		Define("unseal", func(env *Env, input []byte) ([]byte, error) {
			return env.Unseal(input, []byte("ad"), SealToMeasurement)
		}).
		Define("sealSigner", func(env *Env, input []byte) ([]byte, error) {
			return env.Seal(input, []byte("ad"), SealToSigner)
		}).
		Define("unsealSigner", func(env *Env, input []byte) ([]byte, error) {
			return env.Unseal(input, []byte("ad"), SealToSigner)
		})
}

func TestSealUnsealSameMeasurement(t *testing.T) {
	_, p := testPlatform(t)
	e1, err := p.Load(sealBinary("s"))
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := e1.Call("seal", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// A second instance of the same binary on the same platform can unseal.
	e2, err := p.Load(sealBinary("s"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := e2.Call("unseal", sealed)
	if err != nil || string(pt) != "secret" {
		t.Fatalf("unseal = (%q, %v)", pt, err)
	}
}

func TestSealRejectsOtherMeasurement(t *testing.T) {
	_, p := testPlatform(t)
	e1, err := p.Load(sealBinary("s"))
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := e1.Call("seal", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	other, err := p.Load(sealBinary("different"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Call("unseal", sealed); err == nil {
		t.Fatal("different measurement unsealed the blob")
	}
}

func TestSealRejectsOtherPlatform(t *testing.T) {
	as, p1 := testPlatform(t)
	p2, err := NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := p1.Load(sealBinary("s"))
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := e1.Call("seal", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p2.Load(sealBinary("s"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Call("unseal", sealed); err == nil {
		t.Fatal("same code on another platform unsealed the blob")
	}
}

func TestSealToSigner(t *testing.T) {
	signer, err := xcrypto.NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	_, p := testPlatform(t)
	v1 := sealBinary("app-v1")
	v1.SetSigner(signer.Public())
	v2 := sealBinary("app-v2")
	v2.SetSigner(signer.Public())
	e1, err := p.Load(v1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p.Load(v2)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := e1.Call("sealSigner", []byte("migrate me"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := e2.Call("unsealSigner", sealed)
	if err != nil || string(pt) != "migrate me" {
		t.Fatalf("cross-version unseal = (%q, %v)", pt, err)
	}
	// But measurement-policy data must not migrate.
	sealedM, err := e1.Call("seal", []byte("pinned"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Call("unseal", sealedM); err == nil {
		t.Fatal("measurement-sealed blob unsealed by different version")
	}
}

func TestSealToSignerRequiresSigner(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(sealBinary("unsigned"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("sealSigner", []byte("x")); err == nil {
		t.Fatal("unsigned binary sealed under signer policy")
	}
}

func reportBinary() *Binary {
	return NewBinary("rep", "1", []byte("rep-code")).
		Define("report", func(env *Env, input []byte) ([]byte, error) {
			r, err := env.NewReport(input)
			if err != nil {
				return nil, err
			}
			return encodeReportForTest(r), nil
		}).
		Define("verify", func(env *Env, input []byte) ([]byte, error) {
			r := decodeReportForTest(input)
			if env.VerifyReport(r) {
				return []byte{1}, nil
			}
			return []byte{0}, nil
		})
}

// Crude fixed-width codec for shuttling reports through []byte ECALLs in
// tests; production code uses the wire package.
func encodeReportForTest(r Report) []byte {
	out := make([]byte, 0, 32+32+16+64+32)
	out = append(out, r.Measurement[:]...)
	out = append(out, r.Signer[:]...)
	out = append(out, r.Platform[:]...)
	out = append(out, r.Data[:]...)
	out = append(out, r.MAC[:]...)
	return out
}

func decodeReportForTest(b []byte) Report {
	var r Report
	copy(r.Measurement[:], b[0:32])
	copy(r.Signer[:], b[32:64])
	copy(r.Platform[:], b[64:80])
	copy(r.Data[:], b[80:144])
	copy(r.MAC[:], b[144:176])
	return r
}

func TestLocalAttestationAcrossEnclaves(t *testing.T) {
	_, p := testPlatform(t)
	a, err := p.Load(reportBinary())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Load(reportBinary())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := a.Call("report", []byte("channel binding"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := b.Call("verify", rb)
	if err != nil || ok[0] != 1 {
		t.Fatalf("same-platform verify = (%v, %v), want true", ok, err)
	}
	// Tampered data must fail.
	rb[81] ^= 1
	ok, err = b.Call("verify", rb)
	if err != nil || ok[0] != 0 {
		t.Fatalf("tampered verify = (%v, %v), want false", ok, err)
	}
}

func TestLocalAttestationRejectsOtherPlatform(t *testing.T) {
	as, p1 := testPlatform(t)
	p2, err := NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p1.Load(reportBinary())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.Load(reportBinary())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := a.Call("report", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := b.Call("verify", rb)
	if err != nil || ok[0] != 0 {
		t.Fatalf("cross-platform verify = (%v, %v), want false", ok, err)
	}
}

func TestReportDataSizeLimit(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(reportBinary())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("report", bytes.Repeat([]byte("a"), ReportDataSize+1)); err == nil {
		t.Fatal("oversized report data accepted")
	}
}

// quoteFromEnclave loads a binary with an ECALL that produces a quote and
// returns it directly (tests only: the closure smuggles the quote out).
func quoteFromEnclave(t *testing.T, p *Platform, name string, data []byte) (Quote, Measurement) {
	t.Helper()
	var q Quote
	b := NewBinary(name, "1", []byte(name+"-code")).
		Define("quote", func(env *Env, input []byte) ([]byte, error) {
			var err error
			q, err = env.NewQuote(input)
			return nil, err
		})
	e, err := p.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("quote", data); err != nil {
		t.Fatal(err)
	}
	return q, e.Measurement()
}

func TestQuoteVerifyChain(t *testing.T) {
	as, p := testPlatform(t)
	q, m := quoteFromEnclave(t, p, "gl", []byte("dh-binding"))
	v := &QuoteVerifier{Root: as.Root()}
	if err := v.Verify(q); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	var want [ReportDataSize]byte
	copy(want[:], "dh-binding")
	if q.Report.Data != want {
		t.Fatal("report data does not round trip")
	}
	if q.Report.Measurement != m {
		t.Fatal("quote measurement mismatch")
	}
}

func TestQuoteAllowlist(t *testing.T) {
	as, p := testPlatform(t)
	q, m := quoteFromEnclave(t, p, "vetted", nil)
	v := &QuoteVerifier{Root: as.Root()}
	v.Allow(m)
	if err := v.Verify(q); err != nil {
		t.Fatalf("allowlisted quote rejected: %v", err)
	}
	other := &QuoteVerifier{Root: as.Root(), Allowed: []Measurement{{1, 2, 3}}}
	if err := other.Verify(q); !errors.Is(err, ErrQuoteMeasurement) {
		t.Fatalf("err = %v, want ErrQuoteMeasurement", err)
	}
}

func TestQuoteTamperDetection(t *testing.T) {
	as, p := testPlatform(t)
	q, _ := quoteFromEnclave(t, p, "gl", []byte("bind"))
	v := &QuoteVerifier{Root: as.Root()}

	tampered := q
	tampered.Report.Data[0] ^= 1
	if err := v.Verify(tampered); !errors.Is(err, ErrQuoteSignature) {
		t.Errorf("tampered data: err = %v, want ErrQuoteSignature", err)
	}

	tampered = q
	tampered.Report.Measurement[0] ^= 1
	if err := v.Verify(tampered); !errors.Is(err, ErrQuoteSignature) {
		t.Errorf("tampered measurement: err = %v, want ErrQuoteSignature", err)
	}

	tampered = q
	tampered.Cert.PlatformID[0] ^= 1
	if err := v.Verify(tampered); err == nil {
		t.Error("tampered cert accepted")
	}
}

func TestQuoteRejectsForeignRoot(t *testing.T) {
	_, p := testPlatform(t)
	q, _ := quoteFromEnclave(t, p, "gl", nil)
	otherAS, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	v := &QuoteVerifier{Root: otherAS.Root()}
	if err := v.Verify(q); !errors.Is(err, ErrQuoteCert) {
		t.Fatalf("err = %v, want ErrQuoteCert", err)
	}
}

func TestQuoteRevocation(t *testing.T) {
	as, p := testPlatform(t)
	q, _ := quoteFromEnclave(t, p, "gl", nil)
	v := &QuoteVerifier{Root: as.Root(), Revoked: as.IsRevoked}
	if err := v.Verify(q); err != nil {
		t.Fatalf("pre-revocation: %v", err)
	}
	as.Revoke(p.ID())
	if err := v.Verify(q); !errors.Is(err, ErrQuoteRevoked) {
		t.Fatalf("post-revocation err = %v, want ErrQuoteRevoked", err)
	}
}

func TestMonotonicCountersSurviveEnclave(t *testing.T) {
	_, p := testPlatform(t)
	counterBin := func() *Binary {
		return NewBinary("ctr", "1", []byte("ctr-code")).
			Define("inc", func(env *Env, input []byte) ([]byte, error) {
				return []byte{byte(env.CounterIncrement("epoch"))}, nil
			}).
			Define("read", func(env *Env, input []byte) ([]byte, error) {
				return []byte{byte(env.CounterRead("epoch"))}, nil
			})
	}
	e1, err := p.Load(counterBin())
	if err != nil {
		t.Fatal(err)
	}
	for want := byte(1); want <= 3; want++ {
		got, err := e1.Call("inc", nil)
		if err != nil || got[0] != want {
			t.Fatalf("inc = (%v, %v), want %d", got, err, want)
		}
	}
	e1.Destroy()
	e2, err := p.Load(counterBin())
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Call("read", nil)
	if err != nil || got[0] != 3 {
		t.Fatalf("counter after reload = (%v, %v), want 3", got, err)
	}
	// A different measurement sees its own counter space.
	otherBin := NewBinary("ctr2", "1", []byte("other")).
		Define("read", func(env *Env, input []byte) ([]byte, error) {
			return []byte{byte(env.CounterRead("epoch"))}, nil
		})
	other, err := p.Load(otherBin)
	if err != nil {
		t.Fatal(err)
	}
	got, err = other.Call("read", nil)
	if err != nil || got[0] != 0 {
		t.Fatalf("foreign counter = (%v, %v), want 0", got, err)
	}
}

// Property: any single-byte change to a binary's code identity changes its
// measurement.
func TestQuickMeasurementSensitivity(t *testing.T) {
	f := func(code []byte, flipAt uint8) bool {
		if len(code) == 0 {
			code = []byte{0}
		}
		a := NewBinary("g", "1", code).Define("run", nil).Measurement()
		mutated := append([]byte(nil), code...)
		mutated[int(flipAt)%len(mutated)] ^= 0xff
		b := NewBinary("g", "1", mutated).Define("run", nil).Measurement()
		return a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sealed blobs round trip for arbitrary payloads.
func TestQuickSealRoundTrip(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(sealBinary("q"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte) bool {
		sealed, err := e.Call("seal", payload)
		if err != nil {
			return false
		}
		pt, err := e.Call("unseal", sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuoteVerifyKeyCache exercises the parsed attest-key cache: repeated
// verification of quotes from the same platform parses the certified key
// once, a corrupted cached entry cannot bypass the signature check, and a
// tampered DER still fails cleanly.
func TestQuoteVerifyKeyCache(t *testing.T) {
	as, p := testPlatform(t)
	q, _ := quoteFromEnclave(t, p, "cache", []byte("bind"))
	v := &QuoteVerifier{Root: as.Root()}
	for i := 0; i < 3; i++ {
		if err := v.Verify(q); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	v.keyMu.RLock()
	cached := len(v.keys)
	v.keyMu.RUnlock()
	if cached != 1 {
		t.Fatalf("cached keys = %d, want 1 (same platform, one attest key)", cached)
	}
	// A quote whose signature does not verify under the (cached) key is
	// still refused.
	bad := q
	bad.Signature = append([]byte(nil), q.Signature...)
	bad.Signature[4] ^= 0xFF
	if err := v.Verify(bad); !errors.Is(err, ErrQuoteSignature) {
		t.Fatalf("err = %v, want ErrQuoteSignature", err)
	}
	// Concurrent verification shares the cache safely (exercised under
	// -race in CI).
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if err := v.Verify(q); err != nil {
					t.Errorf("concurrent verify: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}
