package tee

import (
	"errors"
	"testing"
)

// objectBinary exposes the object store through ECALLs for testing.
func objectBinary() *Binary {
	return NewBinary("obj", "1", []byte("obj-code")).
		Define("put", func(env *Env, input []byte) ([]byte, error) {
			return nil, env.PutObject(string(input), len(input))
		}).
		Define("get", func(env *Env, input []byte) ([]byte, error) {
			v, ok := env.GetObject(string(input))
			if !ok {
				return nil, errors.New("missing")
			}
			return []byte{byte(v.(int))}, nil
		}).
		Define("del", func(env *Env, input []byte) ([]byte, error) {
			env.DeleteObject(string(input))
			return nil, nil
		}).
		Define("mem", func(env *Env, input []byte) ([]byte, error) {
			return []byte{byte(env.MemoryUsed() / objectNominalSize)}, nil
		})
}

func TestObjectStoreRoundTrip(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(objectBinary())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("put", []byte("key")); err != nil {
		t.Fatal(err)
	}
	got, err := e.Call("get", []byte("key"))
	if err != nil || got[0] != 3 {
		t.Fatalf("get = (%v, %v)", got, err)
	}
	if _, err := e.Call("get", []byte("other")); err == nil {
		t.Fatal("missing object found")
	}
	if _, err := e.Call("del", []byte("key")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("get", []byte("key")); err == nil {
		t.Fatal("object survived delete")
	}
}

func TestObjectStoreEPCAccounting(t *testing.T) {
	_, p := testPlatform(t)
	e, err := p.Load(objectBinary(), WithEPCBudget(2*objectNominalSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("put", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("put", []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Third object exceeds the budget.
	if _, err := e.Call("put", []byte("c")); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", err)
	}
	// Replacing an existing object is free.
	if _, err := e.Call("put", []byte("a")); err != nil {
		t.Fatalf("replace charged twice: %v", err)
	}
	// Deleting releases budget.
	if _, err := e.Call("del", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("put", []byte("c")); err != nil {
		t.Fatalf("budget not released by delete: %v", err)
	}
	mem, err := e.Call("mem", nil)
	if err != nil || mem[0] != 2 {
		t.Fatalf("mem = (%v, %v), want 2 objects", mem, err)
	}
}

func TestObjectStoreIsolatedBetweenEnclaves(t *testing.T) {
	_, p := testPlatform(t)
	a, err := p.Load(objectBinary())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Load(objectBinary())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("put", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// The sibling enclave (same binary!) must not see it: object state is
	// per-enclave, not per-binary.
	if _, err := b.Call("get", []byte("secret")); err == nil {
		t.Fatal("object visible across enclave instances")
	}
}
