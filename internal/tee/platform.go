package tee

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"glimmers/internal/xcrypto"
)

// PlatformID identifies one simulated CPU package.
type PlatformID [16]byte

// AttestationService plays the role Intel's attestation service plays for
// EPID/DCAP: it certifies platform attestation keys, and verifiers trust its
// root. In the paper's deployment story this is the component that lets a
// service (or the EFF, for users) check that a quote came from genuine
// hardware.
type AttestationService struct {
	root *xcrypto.SigningKey

	mu      sync.Mutex
	revoked map[PlatformID]bool
}

// NewAttestationService creates a service with a fresh root key.
func NewAttestationService() (*AttestationService, error) {
	root, err := xcrypto.NewSigningKey()
	if err != nil {
		return nil, fmt.Errorf("tee: attestation service: %w", err)
	}
	return &AttestationService{root: root, revoked: make(map[PlatformID]bool)}, nil
}

// Root returns the verification key that relying parties embed.
func (as *AttestationService) Root() *xcrypto.VerifyKey { return as.root.Public() }

// Revoke marks a platform as compromised; its certificates stop verifying
// through IsRevoked checks done by QuoteVerifier.
func (as *AttestationService) Revoke(id PlatformID) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.revoked[id] = true
}

// IsRevoked reports whether the platform has been revoked.
func (as *AttestationService) IsRevoked(id PlatformID) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.revoked[id]
}

func (as *AttestationService) certify(id PlatformID, attestPub *xcrypto.VerifyKey) (PlatformCert, error) {
	der, err := attestPub.Marshal()
	if err != nil {
		return PlatformCert{}, fmt.Errorf("tee: certify platform: %w", err)
	}
	cert := PlatformCert{PlatformID: id, AttestKey: der}
	sig, err := as.root.Sign(cert.signedBytes())
	if err != nil {
		return PlatformCert{}, fmt.Errorf("tee: certify platform: %w", err)
	}
	cert.Signature = sig
	return cert, nil
}

// PlatformCert binds a platform's attestation key to its identity under the
// attestation service root.
type PlatformCert struct {
	PlatformID PlatformID
	AttestKey  []byte // PKIX DER of the platform attestation key
	Signature  []byte // attestation service root signature
}

func (c PlatformCert) signedBytes() []byte {
	buf := make([]byte, 0, 16+len(c.AttestKey)+32)
	buf = append(buf, []byte("glimmers/tee/platform-cert/v1\x00")...)
	buf = append(buf, c.PlatformID[:]...)
	buf = append(buf, c.AttestKey...)
	return buf
}

// Platform is one simulated SGX-capable machine: it owns the sealing root
// secret, the certified attestation key, monotonic counters, and the
// enclaves loaded on it.
type Platform struct {
	id        PlatformID
	sealRoot  [32]byte // fuse-derived sealing secret, never leaves the platform
	reportKey [32]byte // symmetric key for local attestation reports
	attestKey *xcrypto.SigningKey
	cert      PlatformCert
	as        *AttestationService

	mu       sync.Mutex
	counters map[string]uint64
}

// NewPlatform manufactures a platform and registers it with the attestation
// service.
func NewPlatform(as *AttestationService) (*Platform, error) {
	if as == nil {
		return nil, errors.New("tee: platform requires an attestation service")
	}
	p := &Platform{as: as, counters: make(map[string]uint64)}
	if _, err := rand.Read(p.id[:]); err != nil {
		return nil, fmt.Errorf("tee: platform id: %w", err)
	}
	var fuse [32]byte
	if _, err := rand.Read(fuse[:]); err != nil {
		return nil, fmt.Errorf("tee: platform fuses: %w", err)
	}
	p.sealRoot = xcrypto.DeriveKey32(fuse[:], "glimmers/tee/seal-root/v1")
	p.reportKey = xcrypto.DeriveKey32(fuse[:], "glimmers/tee/report-key/v1")
	attestKey, err := xcrypto.NewSigningKey()
	if err != nil {
		return nil, fmt.Errorf("tee: platform attestation key: %w", err)
	}
	p.attestKey = attestKey
	cert, err := as.certify(p.id, attestKey.Public())
	if err != nil {
		return nil, err
	}
	p.cert = cert
	return p, nil
}

// ID returns the platform identity.
func (p *Platform) ID() PlatformID { return p.id }

// Cert returns the platform's attestation certificate.
func (p *Platform) Cert() PlatformCert { return p.cert }

// LoadOption configures enclave creation.
type LoadOption func(*loadConfig)

type loadConfig struct {
	epcBudget      int
	transitionCost time.Duration
	initInput      []byte
}

// WithEPCBudget caps the enclave's private memory at budget bytes, modelling
// the limited enclave page cache. Zero (the default) means unlimited.
func WithEPCBudget(budget int) LoadOption {
	return func(c *loadConfig) { c.epcBudget = budget }
}

// WithTransitionCost charges a synthetic latency for every ECALL and OCALL
// transition, modelling the hardware world-switch cost. The cost is actually
// slept so benchmark shapes reflect it; it is also accumulated in the stats.
func WithTransitionCost(cost time.Duration) LoadOption {
	return func(c *loadConfig) { c.transitionCost = cost }
}

// WithInitInput passes configuration to the binary's OnInit handler.
func WithInitInput(input []byte) LoadOption {
	return func(c *loadConfig) { c.initInput = append([]byte(nil), input...) }
}

// Load instantiates the binary as an enclave on this platform.
func (p *Platform) Load(b *Binary, opts ...LoadOption) (*Enclave, error) {
	if len(b.ecalls) == 0 {
		return nil, fmt.Errorf("tee: binary %q has no ECALLs", b.name)
	}
	var cfg loadConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	e := &Enclave{
		platform:       p,
		binary:         b,
		measurement:    b.Measurement(),
		signerID:       b.SignerID(),
		store:          make(map[string][]byte),
		epcBudget:      cfg.epcBudget,
		transitionCost: cfg.transitionCost,
	}
	if b.init != nil {
		if _, err := e.runInside(b.init, cfg.initInput); err != nil {
			return nil, fmt.Errorf("tee: enclave %q init: %w", b.name, err)
		}
	}
	return e, nil
}

// counterIncrement bumps a per-(measurement, name) monotonic counter and
// returns the new value. Counters survive enclave destruction, as SGX
// counters survive enclave teardown.
func (p *Platform) counterIncrement(m Measurement, name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := m.String() + "/" + name
	p.counters[key]++
	return p.counters[key]
}

func (p *Platform) counterRead(m Measurement, name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters[m.String()+"/"+name]
}

// sealKey derives the sealing key for a policy binding. Only the platform
// can compute it, and it differs per measurement (or signer).
func (p *Platform) sealKey(binding []byte) [32]byte {
	material := make([]byte, 0, len(p.sealRoot)+len(binding))
	material = append(material, p.sealRoot[:]...)
	material = append(material, binding...)
	return xcrypto.DeriveKey32(material, "glimmers/tee/seal-key/v1")
}

// reportMAC computes the local-attestation MAC over report bytes.
func (p *Platform) reportMAC(reportBytes []byte) [32]byte {
	material := make([]byte, 0, 32+len(reportBytes))
	material = append(material, p.reportKey[:]...)
	material = append(material, reportBytes...)
	return sha256.Sum256(material)
}
