package tee

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Enclave errors surfaced to host code.
var (
	ErrDestroyed    = errors.New("tee: enclave destroyed")
	ErrNoSuchECall  = errors.New("tee: no such ECALL")
	ErrNoSuchOCall  = errors.New("tee: no such OCALL")
	ErrEPCExhausted = errors.New("tee: enclave memory budget exhausted")
	ErrReentrant    = errors.New("tee: re-entrant ECALL")
)

// TransitionStats counts the enclave boundary crossings an execution paid
// for. The paper (§3) notes that a single-enclave Glimmer needs one
// transition in and out while a decomposed one needs more; these counters
// are what experiment E6 measures.
type TransitionStats struct {
	ECalls            uint64
	OCalls            uint64
	SimulatedOverhead time.Duration
	// BytesIn and BytesOut measure data copied across the boundary.
	BytesIn  uint64
	BytesOut uint64
}

// Enclave is a loaded instance of a Binary on a Platform. Host code can
// invoke its ECALLs, read its public identity, and destroy it — nothing
// else. All private state is reachable only from Handlers via Env.
type Enclave struct {
	platform       *Platform
	binary         *Binary
	measurement    Measurement
	signerID       SignerID
	epcBudget      int
	transitionCost time.Duration

	mu        sync.Mutex
	inECall   bool
	destroyed bool
	store     map[string][]byte
	objects   map[string]any
	storeUsed int
	stats     TransitionStats
	ocalls    map[string]Handler2Host
}

// objectNominalSize is the EPC charge for one entry in the object store.
// Live Go objects (sessions, parsed models) cannot be byte-measured, so each
// is charged a flat nominal footprint.
const objectNominalSize = 256

// Handler2Host is a host-side function an enclave may invoke via OCALL: the
// untrusted system services (file access, network, sensor reads) the paper
// notes enclaves must mediate through the host OS.
type Handler2Host func(input []byte) ([]byte, error)

// Measurement returns the enclave's code measurement (MRENCLAVE analogue).
func (e *Enclave) Measurement() Measurement { return e.measurement }

// SignerID returns the enclave's signer identity (MRSIGNER analogue).
func (e *Enclave) SignerID() SignerID { return e.signerID }

// Platform returns the identity of the platform hosting this enclave.
func (e *Enclave) Platform() PlatformID { return e.platform.id }

// ProvideOCall registers a host service the enclave may call. Host code
// decides what to expose; the enclave decides what to trust (typically
// nothing — OCALL results are untrusted input).
func (e *Enclave) ProvideOCall(name string, h Handler2Host) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ocalls == nil {
		e.ocalls = make(map[string]Handler2Host)
	}
	e.ocalls[name] = h
}

// Call invokes an ECALL by name. It is the only way host code can reach
// enclave state. Calls are serialized (the simulated enclave is
// single-threaded, like a one-TCS SGX enclave) and each call is charged a
// boundary transition.
func (e *Enclave) Call(name string, input []byte) ([]byte, error) {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return nil, ErrDestroyed
	}
	if e.inECall {
		e.mu.Unlock()
		return nil, ErrReentrant
	}
	handler, ok := e.binary.ecalls[name]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoSuchECall, name)
	}
	e.inECall = true
	e.stats.ECalls++
	e.stats.BytesIn += uint64(len(input))
	cost := e.transitionCost
	e.mu.Unlock()

	chargeTransition(cost)

	// Copy the input across the boundary: the host must not be able to
	// mutate the buffer while the enclave works on it (a classic TOCTOU on
	// real SGX untrusted memory).
	inside := append([]byte(nil), input...)
	out, err := handler(&Env{enclave: e}, inside)

	chargeTransition(cost)

	e.mu.Lock()
	e.inECall = false
	e.stats.SimulatedOverhead += 2 * cost
	e.stats.BytesOut += uint64(len(out))
	e.mu.Unlock()

	// Copy the output back out so enclave-held buffers never alias host
	// memory.
	return append([]byte(nil), out...), err
}

// Stats returns a snapshot of the transition counters.
func (e *Enclave) Stats() TransitionStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Destroy tears the enclave down. Its private memory is discarded; sealed
// data and monotonic counters survive on the platform.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.destroyed = true
	e.store = nil
	e.objects = nil
	e.storeUsed = 0
}

// runInside executes a handler inside the enclave without charging a
// transition; used for load-time init.
func (e *Enclave) runInside(h Handler, input []byte) ([]byte, error) {
	return h(&Env{enclave: e}, append([]byte(nil), input...))
}

func chargeTransition(cost time.Duration) {
	if cost > 0 {
		time.Sleep(cost)
	}
}

// Env is the view of the platform an ECALL handler sees: private memory,
// sealing, attestation, counters, and mediated host services. An Env is
// only valid for the duration of the handler invocation that received it.
type Env struct {
	enclave *Enclave
}

// Measurement returns the measurement of the running enclave.
func (env *Env) Measurement() Measurement { return env.enclave.measurement }

// SignerID returns the signer of the running enclave.
func (env *Env) SignerID() SignerID { return env.enclave.signerID }

// PlatformID returns the hosting platform's identity.
func (env *Env) PlatformID() PlatformID { return env.enclave.platform.id }

// Put stores a value in enclave-private memory, charged against the EPC
// budget.
func (env *Env) Put(key string, value []byte) error {
	e := env.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	delta := len(value) + len(key)
	if old, ok := e.store[key]; ok {
		delta -= len(old) + len(key)
	}
	if e.epcBudget > 0 && e.storeUsed+delta > e.epcBudget {
		return fmt.Errorf("%w: need %d bytes over budget %d", ErrEPCExhausted, e.storeUsed+delta, e.epcBudget)
	}
	e.store[key] = append([]byte(nil), value...)
	e.storeUsed += delta
	return nil
}

// Get reads a value from enclave-private memory.
func (env *Env) Get(key string) ([]byte, bool) {
	e := env.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.store[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete removes a value from enclave-private memory, releasing its budget.
func (env *Env) Delete(key string) {
	e := env.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.store[key]; ok {
		e.storeUsed -= len(old) + len(key)
		delete(e.store, key)
	}
}

// PutObject stores a live Go value in enclave-private memory, charged a
// flat nominal EPC footprint. Objects stay inside the enclave: they are
// only reachable from handlers via GetObject, never across the boundary.
func (env *Env) PutObject(key string, value any) error {
	e := env.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.objects == nil {
		e.objects = make(map[string]any)
	}
	if _, exists := e.objects[key]; !exists {
		if e.epcBudget > 0 && e.storeUsed+objectNominalSize > e.epcBudget {
			return fmt.Errorf("%w: object store", ErrEPCExhausted)
		}
		e.storeUsed += objectNominalSize
	}
	e.objects[key] = value
	return nil
}

// GetObject retrieves a value stored with PutObject.
func (env *Env) GetObject(key string) (any, bool) {
	e := env.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.objects[key]
	return v, ok
}

// DeleteObject removes an object, releasing its nominal footprint.
func (env *Env) DeleteObject(key string) {
	e := env.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.objects[key]; ok {
		delete(e.objects, key)
		e.storeUsed -= objectNominalSize
	}
}

// MemoryUsed reports current private memory consumption in bytes.
func (env *Env) MemoryUsed() int {
	e := env.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.storeUsed
}

// OCall invokes a host-provided service. The result is untrusted: handlers
// must validate everything that comes back.
func (env *Env) OCall(name string, input []byte) ([]byte, error) {
	e := env.enclave
	e.mu.Lock()
	h, ok := e.ocalls[name]
	if ok {
		e.stats.OCalls++
	}
	cost := e.transitionCost
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchOCall, name)
	}
	chargeTransition(cost)
	out, err := h(append([]byte(nil), input...))
	chargeTransition(cost)
	e.mu.Lock()
	e.stats.SimulatedOverhead += 2 * cost
	e.mu.Unlock()
	return out, err
}

// CounterIncrement bumps the named monotonic counter for this enclave's
// measurement and returns the new value. Counters are rollback-protected
// state: they survive enclave destruction and never decrease.
func (env *Env) CounterIncrement(name string) uint64 {
	return env.enclave.platform.counterIncrement(env.enclave.measurement, name)
}

// CounterRead returns the named monotonic counter's current value.
func (env *Env) CounterRead(name string) uint64 {
	return env.enclave.platform.counterRead(env.enclave.measurement, name)
}

// Rand fills p with cryptographically secure random bytes (RDRAND
// analogue — the one hardware service enclaves may use directly).
func (env *Env) Rand(p []byte) error {
	if _, err := rand.Read(p); err != nil {
		return fmt.Errorf("tee: enclave randomness: %w", err)
	}
	return nil
}
