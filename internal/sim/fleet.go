package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"

	"glimmers/internal/blind"
	"glimmers/internal/durable"
	"glimmers/internal/fixed"
	"glimmers/internal/fleet"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Fleet scenario: one tenant's rounds sharded across N glimmerd nodes by
// consistent hashing, each node sealing a signed partial aggregate, a
// coordinator merging the partials — driven through a node crash, a
// network partition, and a battery of forged-seal probes.
//
// The scenario demands the fleet's three correctness claims:
//
//   - exact sums survive sharding: the merged sum of every round — clean,
//     crashed, or partitioned — is byte-identical to the single-node exact
//     sum of its full cohort (the zero-sum dealer masks cancel only once
//     the merged partials cover the whole cohort, so any lost or doubled
//     contribution poisons the sum loudly);
//   - accounting reconciles globally: every refusal a node booked travels
//     in its seal, and the coordinator's totals equal exactly the probes
//     the scenario injected — across nodes, crashes, and re-homes;
//   - forged, replayed, stale, and overlapping partial seals are refused
//     without disturbing their merge, including the cross-node
//     double-submit a client retry after a lost ack would cause.
type FleetConfig struct {
	Seed        int64
	Nodes       int // glimmerd node count; rounds shard across them
	Devices     int // full cohort per round
	Dim         int
	CleanRounds int // fault-free rounds before the crash and partition
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Devices <= 0 {
		c.Devices = 9
	}
	if c.Dim <= 0 {
		c.Dim = 4
	}
	if c.CleanRounds <= 0 {
		c.CleanRounds = 3
	}
	return c
}

// rounds returns the total round count: the clean rounds plus the crash
// round, the partition round, and the double-submit probe round.
func (c FleetConfig) rounds() uint64 { return uint64(c.CleanRounds) + 3 }

// FleetReport is the observable outcome of one fleet run.
type FleetReport struct {
	Nodes int
	// Owner maps each round to the node the ring placed it on.
	Owner map[uint64]uint32

	// RecoverCrash is the crashed owner's restart: snapshot + WAL replay +
	// torn-tail truncation, exactly as in the single-node crash scenario.
	RecoverCrash durable.RecoverStats

	MergedRounds   int    // merges driven to completion
	MergedContribs uint64 // total cohort across completed merges
	RejectedTotal  uint64 // node-booked refusals carried in merged seals
	RefusedSeals   uint64 // partial seals the coordinator turned away

	// DoubleSubmitCaught reports that the cross-node double submission was
	// refused as an overlap instead of double-counting the contribution.
	DoubleSubmitCaught bool

	// SumDigests holds each merged round's sum digest — two runs with the
	// same seed must produce identical maps.
	SumDigests map[uint64]string

	// Violations lists every invariant break; empty means the scenario
	// held end to end.
	Violations []string
}

func (r *FleetReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

const fleetSimService = "fleet.example"

// fleetWorld is the state outside any single node: the hardware and
// attestation substrate, the tenant's service, the device fleet, and the
// per-node signing identities (modeling sealed key storage, which a node
// crash does not erase — a restarted node re-signs with the same key its
// TOFU pin expects).
type fleetWorld struct {
	cfg      FleetConfig
	as       *tee.AttestationService
	platform *tee.Platform
	svc      *service.Service
	hostCfg  glimmer.Config
	devices  []*glimmer.Device

	nodeKeys map[uint32]*xcrypto.SigningKey

	// values[r][i] is device i's honest contribution to round r.
	values map[uint64][]fixed.Vector
}

func newFleetWorld(cfg FleetConfig) (*fleetWorld, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, fmt.Errorf("sim: attestation service: %w", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, fmt.Errorf("sim: platform: %w", err)
	}
	svc, err := service.New(fleetSimService, as.Root())
	if err != nil {
		return nil, fmt.Errorf("sim: service: %w", err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("unit-range", cfg.Dim)); err != nil {
		return nil, fmt.Errorf("sim: predicate: %w", err)
	}
	hostCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	w := &fleetWorld{
		cfg:      cfg,
		as:       as,
		platform: platform,
		svc:      svc,
		hostCfg:  hostCfg,
		nodeKeys: make(map[uint32]*xcrypto.SigningKey, cfg.Nodes),
		values:   make(map[uint64][]fixed.Vector, cfg.rounds()),
	}
	for id := uint32(1); id <= uint32(cfg.Nodes); id++ {
		key, err := xcrypto.NewSigningKey()
		if err != nil {
			return nil, fmt.Errorf("sim: node %d key: %w", id, err)
		}
		w.nodeKeys[id] = key
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	masks := make(map[uint64][]fixed.Vector, cfg.rounds())
	for round := uint64(1); round <= cfg.rounds(); round++ {
		seed := fmt.Appendf(nil, "sim/%s/%d/masks/%d", fleetSimService, cfg.Seed, round)
		ms, err := blind.ZeroSumMasks(seed, cfg.Devices, cfg.Dim)
		if err != nil {
			return nil, fmt.Errorf("sim: dealer masks for round %d: %w", round, err)
		}
		masks[round] = ms
		vals := make([]fixed.Vector, cfg.Devices)
		for i := range vals {
			vals[i] = fixed.NewVector(cfg.Dim)
			for j := range vals[i] {
				vals[i][j] = fixed.FromFloat(rng.Float64())
			}
		}
		w.values[round] = vals
	}

	glimCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		return nil, fmt.Errorf("sim: glimmer config: %w", err)
	}
	w.devices = make([]*glimmer.Device, cfg.Devices)
	for i := range w.devices {
		dev, err := glimmer.NewDevice(platform, glimCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: device %d: %w", i, err)
		}
		svc.Vet(dev.Measurement())
		payload, err := svc.BasePayload()
		if err != nil {
			return nil, err
		}
		payload.Masks = make(map[uint64][]uint64, len(masks))
		for round, ms := range masks {
			payload.Masks[round] = glimmer.VectorToBits(ms[i])
		}
		if err := svc.Provision(dev, payload); err != nil {
			return nil, fmt.Errorf("sim: provisioning device %d: %w", i, err)
		}
		w.devices[i] = dev
	}
	return w, nil
}

func (w *fleetWorld) shutdown() {
	for _, dev := range w.devices {
		if dev != nil {
			dev.Destroy()
		}
	}
}

func (w *fleetWorld) contribute(dev *glimmer.Device, round uint64, value fixed.Vector) ([]byte, error) {
	sc, err := dev.Contribute(round, value, nil)
	if err != nil {
		return nil, err
	}
	return glimmer.EncodeSignedContribution(sc), nil
}

func (w *fleetWorld) expectedSum(round uint64) fixed.Vector {
	sum := fixed.NewVector(w.cfg.Dim)
	for _, v := range w.values[round] {
		sum.AddInPlace(v)
	}
	return sum
}

// fleetNode is one glimmerd process: its registry, its durable store, and
// its sealing identity.
type fleetNode struct {
	id      uint32
	meas    tee.Measurement
	key     *xcrypto.SigningKey
	reg     *service.Registry
	manager *service.RoundManager
	store   *durable.Store
}

// buildFleetNode assembles one node life — config-file reconstruction
// followed by durable recovery, the same start sequence the single-node
// crash scenario exercises.
func (w *fleetWorld) buildFleetNode(id uint32, dir string) (*fleetNode, durable.RecoverStats, error) {
	var stats durable.RecoverStats
	reg := service.NewRegistry(16)
	tenant, err := reg.AddTenant(service.TenantConfig{
		Name:           fleetSimService,
		Verify:         w.svc.ContributionVerifyKey(),
		Dim:            w.cfg.Dim,
		Workers:        2,
		Shards:         2,
		ExpectedCohort: w.cfg.Devices + 2,
		MaxRounds:      16,
		Glimmer:        w.hostCfg,
	})
	if err != nil {
		return nil, stats, fmt.Errorf("sim: node %d tenant: %w", id, err)
	}
	manager := tenant.Manager()
	for _, dev := range w.devices {
		manager.Vet(dev.Measurement())
	}
	store, err := durable.Open(dir)
	if err != nil {
		return nil, stats, fmt.Errorf("sim: node %d store: %w", id, err)
	}
	stats, err = store.Recover(reg)
	if err != nil {
		return nil, stats, fmt.Errorf("sim: node %d recovery: %w", id, err)
	}
	return &fleetNode{
		id:      id,
		meas:    tee.Measurement{0xFE, byte(id)},
		key:     w.nodeKeys[id],
		reg:     reg,
		manager: manager,
		store:   store,
	}, stats, nil
}

// seal exports the node's signed partial for round, declaring the given
// shard count.
func (n *fleetNode) seal(round uint64, shards uint32) ([]byte, error) {
	return n.manager.ExportPartialSeal(round, service.NodeSeal{
		NodeID:      n.id,
		ShardCount:  shards,
		Measurement: n.meas,
		Key:         n.key,
	})
}

// resignSeal decodes a seal, re-attributes it to another node identity,
// and re-signs it — the adversary who controls a valid key but claims
// coverage (or a slot) that is not theirs.
func resignSeal(raw []byte, nodeID uint32, key *xcrypto.SigningKey, meas tee.Measurement) ([]byte, error) {
	seal, err := wire.DecodePartialSeal(raw)
	if err != nil {
		return nil, err
	}
	der, err := key.Public().Marshal()
	if err != nil {
		return nil, err
	}
	seal.NodeID = nodeID
	seal.Measurement = meas[:]
	seal.NodeKey = der
	seal.Signature, err = key.Sign(seal.SignedBytes())
	if err != nil {
		return nil, err
	}
	return wire.EncodePartialSeal(seal), nil
}

func flipLastByte(raw []byte) []byte {
	out := append([]byte(nil), raw...)
	out[len(out)-1] ^= 0x01
	return out
}

// RunFleet drives the fleet scenario against stateDir (which must be
// empty — use a fresh temp dir; each node gets a subdirectory). Setup
// failures return an error; invariant breaks are booked in the report's
// Violations.
func RunFleet(stateDir string, cfg FleetConfig) (*FleetReport, error) {
	cfg = cfg.withDefaults()
	rep := &FleetReport{
		Nodes:      cfg.Nodes,
		Owner:      make(map[uint64]uint32),
		SumDigests: make(map[uint64]string),
	}
	w, err := newFleetWorld(cfg)
	if err != nil {
		return nil, err
	}
	defer w.shutdown()

	ids := make([]uint32, 0, cfg.Nodes)
	for id := uint32(1); id <= uint32(cfg.Nodes); id++ {
		ids = append(ids, id)
	}
	ring, err := fleet.NewRing(ids, 0)
	if err != nil {
		return nil, err
	}
	svcKey := []byte(fleetSimService)

	nodeDir := func(id uint32) string { return filepath.Join(stateDir, fmt.Sprintf("node-%d", id)) }
	nodes := make(map[uint32]*fleetNode, cfg.Nodes)
	for _, id := range ids {
		n, stats, err := w.buildFleetNode(id, nodeDir(id))
		if err != nil {
			return nil, err
		}
		if stats.SnapshotLoaded || stats.Records != 0 {
			rep.violate("node %d cold start found state in a fresh dir: %+v", id, stats)
		}
		nodes[id] = n
	}
	defer func() {
		for _, n := range nodes {
			n.store.Close()
		}
	}()

	// The coordinator never sees an unblinded value and holds no node
	// registry: identities pin on first use and the pins span rounds, so
	// a key swap in any later round is caught.
	hub := &service.MergeHub{AllowTOFU: true}

	var injectedRejects uint64 // node-level refusals the probes caused
	var expectRefused uint64   // coordinator-level refusals the probes caused
	refuse := func(seal []byte, want error, label string) {
		if _, err := hub.MergePartialSeal(seal); !errors.Is(err, want) {
			rep.violate("%s: got %v, want %v", label, err, want)
		}
		expectRefused++
	}
	// bookMerge checks a completed merge against the round's exact sum
	// and records it.
	bookMerge := func(round uint64, wantRejected uint64) {
		m, ok := hub.Lookup(fleetSimService, round)
		if !ok {
			rep.violate("round %d: no merge materialized", round)
			return
		}
		if !m.Complete() {
			rep.violate("round %d: merge incomplete", round)
			return
		}
		if !vectorsEqual(m.Sum(), w.expectedSum(round)) {
			rep.violate("round %d: merged sum differs from the exact single-node sum", round)
		}
		res := m.Result()
		if res.Count != uint64(cfg.Devices) {
			rep.violate("round %d: merged cohort = %d, want %d", round, res.Count, cfg.Devices)
		}
		if res.Rejected != wantRejected {
			rep.violate("round %d: merged rejected = %d, want %d", round, res.Rejected, wantRejected)
		}
		rep.MergedRounds++
		rep.MergedContribs += res.Count
		rep.SumDigests[round] = m.Sum().Digest()
	}

	// ingestRound ships the cohort's raws to node n with the standard
	// probe pair: a forged signature (submitted before its genuine copy,
	// so dedup cannot mask a signature bypass) and a duplicate.
	ingestRound := func(n *fleetNode, round uint64, raws [][]byte) {
		if err := n.reg.Ingest(raws[0]); err != nil {
			rep.violate("round %d device 0 refused at node %d: %v", round, n.id, err)
		}
		if err := n.reg.Ingest(flipLastByte(raws[len(raws)-1])); err == nil {
			rep.violate("round %d: node %d accepted a forged contribution", round, n.id)
		}
		injectedRejects++
		for i := 1; i < len(raws); i++ {
			if err := n.reg.Ingest(raws[i]); err != nil {
				rep.violate("round %d device %d refused at node %d: %v", round, i, n.id, err)
			}
		}
		if err := n.reg.Ingest(raws[0]); !errors.Is(err, service.ErrDuplicate) {
			rep.violate("round %d duplicate at node %d returned %v, want ErrDuplicate", round, n.id, err)
		}
		injectedRejects++
	}

	cohortRaws := func(round uint64) ([][]byte, error) {
		raws := make([][]byte, cfg.Devices)
		for i, dev := range w.devices {
			raw, err := w.contribute(dev, round, w.values[round][i])
			if err != nil {
				return nil, fmt.Errorf("sim: round %d device %d: %w", round, i, err)
			}
			raws[i] = raw
		}
		return raws, nil
	}

	// ----- Clean rounds: the ring places each round on one owner, the
	// owner seals a ShardCount=1 partial, the coordinator merges it.
	for round := uint64(1); round <= uint64(cfg.CleanRounds); round++ {
		owner := ring.Owner(svcKey, round)
		rep.Owner[round] = owner
		raws, err := cohortRaws(round)
		if err != nil {
			return nil, err
		}
		ingestRound(nodes[owner], round, raws)
		seal, err := nodes[owner].seal(round, 1)
		if err != nil {
			return nil, fmt.Errorf("sim: round %d seal: %w", round, err)
		}
		if _, err := hub.MergePartialSeal(seal); err != nil {
			rep.violate("round %d: coordinator refused the owner's seal: %v", round, err)
		}
		bookMerge(round, 2)
	}

	// ----- Crash round: the owner dies after accepting half the cohort;
	// the remainder re-homes to the ring successor; the restarted owner
	// recovers its partial from snapshot + WAL and both nodes seal
	// ShardCount=2 partials.
	crashRound := uint64(cfg.CleanRounds) + 1
	owner := ring.Owner(svcKey, crashRound)
	rep.Owner[crashRound] = owner
	shrunk, err := ring.Without(owner)
	if err != nil {
		return nil, err
	}
	fallback := nodes[shrunk.Owner(svcKey, crashRound)]
	own := nodes[owner]

	// The periodic snapshot every deployment takes; the crash lands
	// between it and the seal.
	if err := own.store.Snapshot(own.reg); err != nil {
		return nil, fmt.Errorf("sim: pre-crash snapshot: %w", err)
	}
	raws, err := cohortRaws(crashRound)
	if err != nil {
		return nil, err
	}
	half := cfg.Devices / 2
	for i := 0; i < half; i++ {
		if err := own.reg.Ingest(raws[i]); err != nil {
			rep.violate("crash round device %d refused pre-crash: %v", i, err)
		}
	}
	// Pin the pre-crash accepts to disk: this scenario exercises crashed-
	// owner re-homing with records that had reached the WAL, so the
	// group-commit staging buffer is flushed before the kill. (The
	// staged-and-lost window is the crash-recovery scenario's job; see
	// RunCrashRecovery.)
	if err := own.store.Flush(); err != nil {
		return nil, fmt.Errorf("sim: WAL flush: %w", err)
	}
	// Kill: the registry and store are abandoned mid-write.
	if err := tearWALTail(nodeDir(owner)); err != nil {
		return nil, err
	}
	own, rep.RecoverCrash, err = w.buildFleetNode(owner, nodeDir(owner))
	if err != nil {
		return nil, err
	}
	nodes[owner] = own
	if !rep.RecoverCrash.SnapshotLoaded {
		rep.violate("restarted owner did not load the snapshot")
	}
	if rep.RecoverCrash.TruncatedBytes == 0 {
		rep.violate("restarted owner did not truncate the torn WAL tail")
	}
	if rep.RecoverCrash.ReplayErrors != 0 {
		rep.violate("owner replay reported %d errors", rep.RecoverCrash.ReplayErrors)
	}
	if p, ok := own.manager.Lookup(crashRound); !ok {
		rep.violate("restarted owner lost the in-flight crash round")
	} else if got := p.Count(); got != half {
		rep.violate("restarted owner holds %d/%d pre-crash contributions", got, half)
	}
	// Dedup survived the crash: a duplicate of a pre-crash contribution
	// is still a duplicate on the restarted owner.
	if err := own.reg.Ingest(raws[0]); !errors.Is(err, service.ErrDuplicate) {
		rep.violate("pre-crash duplicate returned %v, want ErrDuplicate", err)
	}
	injectedRejects++

	// Re-home: the unacked remainder goes to the ring successor. The
	// acked half is NOT re-sent — the owner's recovered partial covers
	// it, and a re-send would surface as an overlap at merge time.
	if err := fallback.reg.Ingest(raws[half]); err != nil {
		rep.violate("crash round device %d refused at fallback: %v", half, err)
	}
	if err := fallback.reg.Ingest(flipLastByte(raws[cfg.Devices-1])); err == nil {
		rep.violate("fallback accepted a forged contribution")
	}
	injectedRejects++
	for i := half + 1; i < cfg.Devices; i++ {
		if err := fallback.reg.Ingest(raws[i]); err != nil {
			rep.violate("crash round device %d refused at fallback: %v", i, err)
		}
	}

	// Merge under attack: the fallback's seal lands first and fixes the
	// split at two, then every forged variant is refused without
	// disturbing the merge, then the recovered owner completes it.
	fbSeal, err := fallback.seal(crashRound, 2)
	if err != nil {
		return nil, fmt.Errorf("sim: fallback seal: %w", err)
	}
	if _, err := hub.MergePartialSeal(fbSeal); err != nil {
		rep.violate("coordinator refused the fallback's seal: %v", err)
	}
	staleSeal, err := own.seal(crashRound, 1)
	if err != nil {
		return nil, fmt.Errorf("sim: stale seal: %w", err)
	}
	refuse(staleSeal, service.ErrSealMismatch, "stale pre-re-home seal")
	ownSeal, err := own.seal(crashRound, 2)
	if err != nil {
		return nil, fmt.Errorf("sim: owner seal: %w", err)
	}
	refuse(flipLastByte(ownSeal), service.ErrSealSignature, "flipped-signature seal")
	advKey, err := xcrypto.NewSigningKey()
	if err != nil {
		return nil, err
	}
	overlap, err := resignSeal(fbSeal, 99, advKey, tee.Measurement{0x99})
	if err != nil {
		return nil, err
	}
	refuse(overlap, service.ErrSealOverlap, "adversarial seal claiming absorbed coverage")
	refuse(fbSeal, service.ErrSealReplay, "replayed partial seal")
	if _, err := hub.MergePartialSeal(ownSeal); err != nil {
		rep.violate("coordinator refused the recovered owner's seal: %v", err)
	}
	late, err := resignSeal(ownSeal, 77, advKey, tee.Measurement{0x77})
	if err != nil {
		return nil, err
	}
	refuse(late, service.ErrMergeComplete, "late seal after completion")
	bookMerge(crashRound, 2)

	// ----- Partition round: the owner is cut off from its clients after
	// accepting a third of the cohort; the rest fail over to the ring
	// successor. The partition heals and both sides seal — nothing was
	// lost, nothing doubled.
	partRound := crashRound + 1
	owner = ring.Owner(svcKey, partRound)
	rep.Owner[partRound] = owner
	shrunk, err = ring.Without(owner)
	if err != nil {
		return nil, err
	}
	own, fallback = nodes[owner], nodes[shrunk.Owner(svcKey, partRound)]
	raws, err = cohortRaws(partRound)
	if err != nil {
		return nil, err
	}
	third := cfg.Devices / 3
	for i := 0; i < third; i++ {
		if err := own.reg.Ingest(raws[i]); err != nil {
			rep.violate("partition round device %d refused at owner: %v", i, err)
		}
	}
	for i := third; i < cfg.Devices; i++ {
		if err := fallback.reg.Ingest(raws[i]); err != nil {
			rep.violate("partition round device %d refused at fallback: %v", i, err)
		}
	}
	for _, n := range []*fleetNode{own, fallback} {
		seal, err := n.seal(partRound, 2)
		if err != nil {
			return nil, fmt.Errorf("sim: partition seal node %d: %w", n.id, err)
		}
		if _, err := hub.MergePartialSeal(seal); err != nil {
			rep.violate("partition round: coordinator refused node %d: %v", n.id, err)
		}
	}
	bookMerge(partRound, 0)

	// ----- Double-submit round: a client's ack is lost and it retries
	// the same contribution against a different node. Both nodes accept
	// (dedup state is per-node), but the second partial re-claims a
	// digest the first already covers — the coordinator refuses it
	// wholesale, so the contribution can never be double-counted.
	dupRound := partRound + 1
	owner = ring.Owner(svcKey, dupRound)
	rep.Owner[dupRound] = owner
	shrunk, err = ring.Without(owner)
	if err != nil {
		return nil, err
	}
	own, fallback = nodes[owner], nodes[shrunk.Owner(svcKey, dupRound)]
	raws, err = cohortRaws(dupRound)
	if err != nil {
		return nil, err
	}
	for i, raw := range raws {
		if err := own.reg.Ingest(raw); err != nil {
			rep.violate("double-submit round device %d refused: %v", i, err)
		}
	}
	if err := fallback.reg.Ingest(raws[0]); err != nil {
		rep.violate("retry at fallback refused: %v (per-node dedup should accept it)", err)
	}
	ownSeal, err = own.seal(dupRound, 2)
	if err != nil {
		return nil, fmt.Errorf("sim: double-submit owner seal: %w", err)
	}
	if _, err := hub.MergePartialSeal(ownSeal); err != nil {
		rep.violate("double-submit round: coordinator refused the owner: %v", err)
	}
	fbSeal, err = fallback.seal(dupRound, 2)
	if err != nil {
		return nil, fmt.Errorf("sim: double-submit fallback seal: %w", err)
	}
	if _, merr := hub.MergePartialSeal(fbSeal); errors.Is(merr, service.ErrSealOverlap) {
		rep.DoubleSubmitCaught = true
	} else {
		rep.violate("cross-node double submit returned %v, want ErrSealOverlap", merr)
	}
	expectRefused++
	if m, ok := hub.Lookup(fleetSimService, dupRound); !ok {
		rep.violate("double-submit round: no merge materialized")
	} else {
		if m.Complete() {
			rep.violate("double-submit round completed despite the overlap")
		}
		if res := m.Result(); res.Merged != 1 || res.Count != uint64(cfg.Devices) {
			rep.violate("double-submit round disturbed by the refusal: %+v", res)
		}
		// The incomplete merge still holds the owner's exact partial.
		rep.SumDigests[dupRound] = m.Sum().Digest()
	}

	// ----- Global reconciliation: every refusal anywhere in the fleet is
	// accounted for exactly once, and nothing else was refused.
	var mergedRejected, refusedTotal uint64
	for round := uint64(1); round <= cfg.rounds(); round++ {
		m, ok := hub.Lookup(fleetSimService, round)
		if !ok {
			continue
		}
		res := m.Result()
		mergedRejected += res.Rejected
		refusedTotal += res.Refused
	}
	rep.RejectedTotal = mergedRejected
	rep.RefusedSeals = refusedTotal
	if mergedRejected != injectedRejects {
		rep.violate("merged rejection accounting = %d, injected probes = %d", mergedRejected, injectedRejects)
	}
	if refusedTotal != expectRefused {
		rep.violate("coordinator refused %d seals, probes sent %d", refusedTotal, expectRefused)
	}
	for id, n := range nodes {
		if got := n.manager.Rejected(); got != 0 {
			rep.violate("node %d manager rejected = %d, want 0", id, got)
		}
		if got := n.reg.Rejected(); got != 0 {
			rep.violate("node %d registry rejected = %d, want 0", id, got)
		}
	}
	if want := uint64(cfg.Devices) * uint64(cfg.CleanRounds+2); rep.MergedContribs != want {
		rep.violate("merged contributions = %d, want %d", rep.MergedContribs, want)
	}
	return rep, nil
}
