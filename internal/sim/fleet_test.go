package sim

import "testing"

// TestSimFleet shards a tenant's rounds across a three-node fleet and
// drives it through a node crash (with durable recovery and shard
// re-homing), a network partition, and a battery of forged/replayed/
// overlapping partial-seal probes. Merged sums must equal the exact
// single-node sums, and every refusal anywhere in the fleet must
// reconcile globally. Run under -race in CI.
func TestSimFleet(t *testing.T) {
	rep, err := RunFleet(t.TempDir(), FleetConfig{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if rep.MergedRounds != 5 {
		t.Errorf("merged rounds = %d, want 5", rep.MergedRounds)
	}
	if !rep.DoubleSubmitCaught {
		t.Error("cross-node double submit was not caught as an overlap")
	}
	if rep.RecoverCrash.TruncatedBytes != 7 {
		t.Errorf("truncated %d bytes, want the 7-byte torn tail", rep.RecoverCrash.TruncatedBytes)
	}
	t.Logf("owners: %v", rep.Owner)
	t.Logf("recovery: %+v", rep.RecoverCrash)
	t.Logf("merged=%d contribs=%d rejected=%d refused=%d",
		rep.MergedRounds, rep.MergedContribs, rep.RejectedTotal, rep.RefusedSeals)
}

// TestSimFleetDeterministic: two runs with the same seed must merge
// byte-identical sums for every round — the scenario is a reproducible
// fault plan, not a flake generator.
func TestSimFleetDeterministic(t *testing.T) {
	a, err := RunFleet(t.TempDir(), FleetConfig{Seed: 7, Devices: 7, Dim: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(t.TempDir(), FleetConfig{Seed: 7, Devices: 7, Dim: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*FleetReport{a, b} {
		for _, v := range rep.Violations {
			t.Errorf("invariant violation: %s", v)
		}
	}
	if len(a.SumDigests) == 0 || len(a.SumDigests) != len(b.SumDigests) {
		t.Fatalf("digest maps differ in size: %d vs %d", len(a.SumDigests), len(b.SumDigests))
	}
	for round, da := range a.SumDigests {
		if db := b.SumDigests[round]; da != db {
			t.Errorf("round %d: sums diverge across identical seeds (%s vs %s)", round, da, db)
		}
	}
	for round, oa := range a.Owner {
		if ob := b.Owner[round]; oa != ob {
			t.Errorf("round %d: placement diverges across identical seeds (%d vs %d)", round, oa, ob)
		}
	}
}
