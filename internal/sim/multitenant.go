package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"glimmers/internal/glimmer"
	"glimmers/internal/service"
)

// MultiScenario drives several tenants — typically a mix of range
// aggregation and the botdetect workload — through one shared hosting
// stack concurrently: one registry, one shared round budget, one gaas
// front end (for the pipe/TCP transports), with every tenant's traffic
// interleaving through the same frame-level routing the production daemon
// uses. Each tenant runs its own seeded fault plan; on top of the
// per-tenant invariants (exact sums, exact rejection accounting) the multi
// run enforces the cross-tenant isolation invariants:
//
//   - no contribution is ever counted in another tenant's sums: every
//     tenant's sealed aggregates remain exact despite the other tenants'
//     concurrent traffic and faults;
//   - routing-level refusals (unroutable garbage, unknown tenants) are
//     accounted exactly by the shared registry counter;
//   - deliberate cross-tenant probes after the runs — a replay of one
//     tenant's accepted contribution, the same contribution re-encoded
//     under another tenant's name, and a contribution naming a tenant
//     that does not exist — are all refused, land in exactly the expected
//     counter, and move no tenant's sums or counts.
//
// Determinism: each tenant's trace is a pure function of its own seed
// (stragglers aside), because isolation holds — that per-tenant traces
// survive concurrent co-tenants unchanged is itself part of what the
// scenario verifies.
type MultiScenario struct {
	Name string
	// Tenants are the per-tenant workloads. Empty ServiceNames are
	// assigned tenant<i>.glimmers.example; names must be distinct. A zero
	// Seed gets a distinct per-tenant default.
	Tenants []Config
	// Transport applies to every tenant (per-tenant Transport fields are
	// overridden): all lanes share one stack.
	Transport TransportKind
	// TotalRoundBudget sizes the registry's shared budget (0 = generous:
	// the sum of every tenant's quota).
	TotalRoundBudget int
}

// MultiReport is the outcome of one multi-tenant run.
type MultiReport struct {
	Scenario string
	// Reports holds each tenant's report, in Tenants order.
	Reports []*Report
	// RegistryRejected is the shared registry's routing-refusal count at
	// the end of the run (including the cross-tenant probes).
	RegistryRejected int
	Elapsed          time.Duration
	// Violations lists cross-tenant invariant breaches; per-tenant
	// breaches live in the tenant reports.
	Violations []string
}

// Ok reports whether every invariant — per-tenant and cross-tenant — held.
func (r *MultiReport) Ok() bool {
	if len(r.Violations) > 0 {
		return false
	}
	for _, rep := range r.Reports {
		if !rep.Ok() {
			return false
		}
	}
	return true
}

// Summary is a one-line human summary.
func (r *MultiReport) Summary() string {
	parts := make([]string, len(r.Reports))
	for i, rep := range r.Reports {
		parts[i] = rep.Summary()
	}
	status := "OK"
	if !r.Ok() {
		status = "VIOLATIONS"
	}
	return fmt.Sprintf("%s: %d tenants %s\n  %s", r.Scenario, len(r.Reports), status, strings.Join(parts, "\n  "))
}

// Run executes the multi-tenant scenario.
func (s MultiScenario) Run() (*MultiReport, error) {
	if len(s.Tenants) == 0 {
		return nil, errors.New("sim: multi-tenant scenario without tenants")
	}
	cfgs := make([]Config, len(s.Tenants))
	budget := s.TotalRoundBudget
	names := make(map[string]bool, len(s.Tenants))
	for i, tcfg := range s.Tenants {
		tcfg.Transport = s.Transport
		if tcfg.ServiceName == "" {
			tcfg.ServiceName = fmt.Sprintf("tenant%d.glimmers.example", i)
		}
		if tcfg.Seed == 0 {
			tcfg.Seed = int64(1009 + 7919*i)
		}
		cfg, err := tcfg.withDefaults()
		if err != nil {
			return nil, err
		}
		if names[cfg.ServiceName] {
			return nil, fmt.Errorf("sim: duplicate tenant name %q", cfg.ServiceName)
		}
		names[cfg.ServiceName] = true
		cfgs[i] = cfg
		if s.TotalRoundBudget == 0 {
			budget += cfg.Rounds + 16
		}
	}

	start := time.Now()
	st, err := newStack(s.Transport, budget)
	if err != nil {
		return nil, err
	}
	defer st.shutdown()

	sims := make([]*simulation, len(cfgs))
	for i, cfg := range cfgs {
		sim, err := newSimulation(cfg.ServiceName, cfg, st)
		if err != nil {
			return nil, err
		}
		defer sim.shutdown()
		sims[i] = sim
	}

	// All tenants run concurrently: their batches interleave through the
	// shared registry (and, over pipe/TCP, the shared front end).
	rep := &MultiReport{Scenario: s.Name, Reports: make([]*Report, len(sims))}
	var wg sync.WaitGroup
	errs := make([]error, len(sims))
	for i, sim := range sims {
		wg.Add(1)
		go func(i int, sim *simulation) {
			defer wg.Done()
			rep.Reports[i], errs[i] = sim.run()
		}(i, sim)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// Routing accounting: the shared registry counter must equal exactly
	// the unroutable traffic every tenant injected.
	wantRouting := 0
	for _, sim := range sims {
		wantRouting += sim.observedRoutingRejects
	}
	if got := st.registry.Rejected(); got != wantRouting {
		violate("routing accounting: registry counted %d, tenants injected %d", got, wantRouting)
	}

	s.probeIsolation(st, sims, violate)

	rep.RegistryRejected = st.registry.Rejected()
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// tenantSnapshot is one tenant's externally observable aggregation state.
type tenantSnapshot struct {
	counts    map[uint64]int
	digests   map[uint64]string
	rejected  int
	managerRj int
}

func snapshotTenant(s *simulation) tenantSnapshot {
	snap := tenantSnapshot{
		counts:    make(map[uint64]int),
		digests:   make(map[uint64]string),
		managerRj: s.w.manager.Rejected(),
	}
	for _, r := range s.w.manager.Rounds() {
		if p, ok := s.w.manager.Lookup(r); ok {
			snap.counts[r] = p.Count()
			snap.digests[r] = sumDigest(p.Sum())
			snap.rejected += p.Rejected()
		}
	}
	return snap
}

// probeIsolation fires deliberate cross-tenant attacks after the runs and
// verifies each is refused, is booked in exactly the expected counter, and
// moves nothing else.
func (s MultiScenario) probeIsolation(st *stack, sims []*simulation, violate func(string, ...any)) {
	before := make([]tenantSnapshot, len(sims))
	for i, sim := range sims {
		before[i] = snapshotTenant(sim)
	}
	registryBefore := st.registry.Rejected()
	// Expected per-tenant rejection deltas from the probes: a refusal on a
	// round the victim has registered lands in that round's pipeline
	// counter; a refusal for a round the victim never ran (tenants may run
	// different round counts) lands in its manager counter.
	wantPipeDelta := make([]int, len(sims))
	wantMgrDelta := make([]int, len(sims))
	wantRegistry := 0

	for i, sim := range sims {
		round, raw := sim.acceptedSample()
		if raw == nil {
			violate("tenant %s: no accepted contribution to probe with", sim.cfg.ServiceName)
			continue
		}
		// Probe 1: replay the tenant's own accepted contribution. It routes
		// home and the (closed) round must refuse it.
		if err := st.registry.Ingest(raw); !errors.Is(err, service.ErrRoundClosed) {
			violate("tenant %s: post-run replay returned %v, want ErrRoundClosed", sim.cfg.ServiceName, err)
		}
		wantPipeDelta[i]++

		// Probe 2: the same contribution re-encoded under the next tenant's
		// name — frame-level routing must deliver it there and that tenant
		// must refuse it (the signature covers the name, so the splice can
		// never verify).
		if len(sims) > 1 {
			j := (i + 1) % len(sims)
			spliced, err := renameContribution(raw, sims[j].cfg.ServiceName)
			if err != nil {
				violate("tenant %s: splicing probe: %v", sim.cfg.ServiceName, err)
			} else {
				_, roundKnown := sims[j].w.manager.Lookup(round)
				if err := st.registry.Ingest(spliced); err == nil {
					violate("tenant %s: contribution spliced onto %s was accepted",
						sim.cfg.ServiceName, sims[j].cfg.ServiceName)
				} else if roundKnown {
					wantPipeDelta[j]++
				} else {
					wantMgrDelta[j]++
				}
			}
		}

		// Probe 3: a contribution naming a tenant that does not exist must
		// be refused at the registry, touching no tenant.
		ghost, err := renameContribution(raw, "ghost.invalid")
		if err != nil {
			violate("tenant %s: ghost probe: %v", sim.cfg.ServiceName, err)
			continue
		}
		if err := st.registry.Ingest(ghost); !errors.Is(err, service.ErrUnknownTenant) {
			violate("tenant %s: unknown-tenant probe returned %v, want ErrUnknownTenant", sim.cfg.ServiceName, err)
		}
		wantRegistry++
	}

	if got := st.registry.Rejected(); got != registryBefore+wantRegistry {
		violate("registry rejected %d after probes, want %d", got, registryBefore+wantRegistry)
	}
	for i, sim := range sims {
		after := snapshotTenant(sim)
		name := sim.cfg.ServiceName
		if after.managerRj != before[i].managerRj+wantMgrDelta[i] {
			violate("tenant %s: manager rejections %d after probes, want %d",
				name, after.managerRj, before[i].managerRj+wantMgrDelta[i])
		}
		if after.rejected != before[i].rejected+wantPipeDelta[i] {
			violate("tenant %s: pipeline rejections %d after probes, want %d",
				name, after.rejected, before[i].rejected+wantPipeDelta[i])
		}
		for r, c := range before[i].counts {
			if after.counts[r] != c {
				violate("tenant %s round %d: count moved (%d -> %d) under probes", name, r, c, after.counts[r])
			}
			if after.digests[r] != before[i].digests[r] {
				violate("tenant %s round %d: aggregate moved under probes", name, r)
			}
		}
	}
}

// renameContribution re-encodes an accepted contribution under a different
// service name without re-signing (or re-MACing) — the cross-tenant
// forgery the authenticator's domain separation must make useless, on
// either wire variant.
func renameContribution(raw []byte, name string) ([]byte, error) {
	if glimmer.PeekContributionTicketed(raw) {
		tc, err := glimmer.DecodeTicketedContribution(raw)
		if err != nil {
			return nil, err
		}
		tc.ServiceName = name
		return glimmer.EncodeTicketedContribution(tc), nil
	}
	sc, err := glimmer.DecodeSignedContribution(raw)
	if err != nil {
		return nil, err
	}
	sc.ServiceName = name
	return glimmer.EncodeSignedContribution(sc), nil
}

// acceptedSample returns a deterministic accepted contribution (lowest
// round, then lowest device) retained from the run, for isolation probes.
func (s *simulation) acceptedSample() (uint64, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bestRound, bestDevice := uint64(0), 0
	var best []byte
	for r, byDev := range s.acceptedRaw {
		for d, raw := range byDev {
			if best == nil || r < bestRound || (r == bestRound && d < bestDevice) {
				bestRound, bestDevice, best = r, d, raw
			}
		}
	}
	return bestRound, best
}
