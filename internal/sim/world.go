package sim

import (
	"crypto/tls"
	"fmt"
	"net"
	"sync/atomic"

	"glimmers/internal/blind"
	"glimmers/internal/botdetect"
	"glimmers/internal/fixed"
	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

// Ticketed-mode constants: a deterministic epoch for the injected ticket
// clock and the grant TTL the expiry probe advances past. Wall time never
// enters a simulation.
const (
	simTicketEpoch = int64(1_700_000_000)
	simTicketTTL   = int64(3600)
)

// dropKey identifies one planned dropout.
type dropKey struct {
	round  uint64
	device int
}

// stack is the shared hosting substrate every tenant of a simulation runs
// on: one attestation root, one platform, one multi-tenant registry, and —
// for the gaas transports — one front-end server routing both user
// sessions (by the tenant named in the hello) and contribution batches (by
// the service name each contribution carries). This is the cmd/glimmerd
// topology, assembled from the same pieces.
type stack struct {
	as       *tee.AttestationService
	platform *tee.Platform
	registry *service.Registry

	server   *gaas.Server
	listener net.Listener
	dial     func() (net.Conn, error)
}

// newStack assembles the substrate. roundBudget sizes the registry's
// shared live-round budget.
func newStack(transport TransportKind, roundBudget int) (*stack, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, fmt.Errorf("sim: attestation service: %w", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, fmt.Errorf("sim: platform: %w", err)
	}
	st := &stack{
		as:       as,
		platform: platform,
		registry: service.NewRegistry(roundBudget),
	}
	switch transport {
	case TransportDirect:
		// In-process ingest; no front end.
	case TransportPipe, TransportTCP, TransportTLS:
		var tlsConf *tls.Config
		if transport == TransportTLS {
			tc, err := gaas.SelfSignedServerTLS("127.0.0.1")
			if err != nil {
				return nil, fmt.Errorf("sim: edge TLS: %w", err)
			}
			tlsConf = tc
		}
		st.server = gaas.New(gaas.ServerConfig{
			Platform: platform,
			Hosts:    st.registry,
			Ingest:   st.registry,
			TLS:      tlsConf,
		})
		switch transport {
		case TransportPipe:
			ln := newMemListener()
			st.listener = ln
			st.dial = ln.dial
		default: // TCP and TLS share the loopback socket
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("sim: listen: %w", err)
			}
			st.listener = ln
			addr := ln.Addr().String()
			if transport == TransportTLS {
				// Transport privacy only; endpoint trust stays with the
				// attested handshake the pool runs over each connection.
				clientTLS := gaas.InsecureClientTLS()
				st.dial = func() (net.Conn, error) {
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						return nil, err
					}
					tc := tls.Client(conn, clientTLS)
					if err := tc.Handshake(); err != nil {
						conn.Close()
						return nil, err
					}
					return tc, nil
				}
			} else {
				st.dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
			}
		}
		go func() { _ = st.server.Serve(st.listener) }()
	default:
		return nil, fmt.Errorf("sim: unknown transport %v", transport)
	}
	return st, nil
}

func (st *stack) shutdown() {
	if st.listener != nil {
		_ = st.listener.Close()
	}
	if st.server != nil {
		st.server.Shutdown()
	}
}

// world is one tenant's side of the deployment: its cloud service, its
// registered tenant (predicate, contribution key, round manager), its
// provisioned Glimmer fleet, and its submission lanes into the shared
// stack.
type world struct {
	cfg     Config
	stack   *stack
	svc     *service.Service
	tenant  *service.Tenant
	manager *service.RoundManager
	devices []*glimmer.Device

	// masks[r][i] is device i's dealer mask for round r (real and bogus
	// rounds alike). The simulator plays the §3 trusted dealer, so it
	// legitimately knows every mask.
	masks map[uint64][]fixed.Vector
	// dropShares holds the Shamir shares of each planned dropout's mask,
	// distributed at provisioning time as blind.BackupShares would be.
	dropShares map[dropKey][]blind.Share

	// clock drives ticket expiry in ticketed runs (nil otherwise): a
	// deterministic fake the expiry probe advances, so the trace stays a
	// pure function of the configuration.
	clock *atomic.Int64

	pool *transportPool
}

// admissionWindow is the RoundWindow the simulated service configures:
// generous enough for the configured overlap, tight enough that the
// plan's bogus rounds are always refused.
func admissionWindow(cfg Config) uint64 {
	return uint64(cfg.Overlap + 2)
}

// tenantPredicate builds the workload's validation predicate.
func tenantPredicate(cfg Config) *predicate.Program {
	if cfg.Workload == WorkloadBotdetect {
		return botdetect.DefaultDetector.TenantPredicate("bot-tenant")
	}
	return predicate.UnitRangeCheck("unit-range", cfg.Dim)
}

func newWorld(cfg Config, p *plan, st *stack) (*world, error) {
	svc, err := service.New(cfg.ServiceName, st.as.Root())
	if err != nil {
		return nil, fmt.Errorf("sim: service: %w", err)
	}
	if err := svc.SetPredicate(tenantPredicate(cfg)); err != nil {
		return nil, fmt.Errorf("sim: predicate: %w", err)
	}
	w := &world{
		cfg:        cfg,
		stack:      st,
		svc:        svc,
		masks:      make(map[uint64][]fixed.Vector),
		dropShares: make(map[dropKey][]blind.Share),
	}
	if err := w.dealMasks(p); err != nil {
		return nil, err
	}
	if err := w.provisionFleet(); err != nil {
		return nil, err
	}
	// The tenant's hosting enclave (user sessions over gaas); the sim's
	// devices are local, so it is never provisioned, but its measurement
	// is what the tenant's clients pin.
	hostCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	// Ticketed runs: a per-tenant ticket table under an injected clock. The
	// window cap is generous enough to cover the plan's bogus rounds, so
	// the out-of-window fault keeps its round-admission semantics (the
	// manager's window refuses it, not the ticket's); the ticket window
	// itself is probed separately with a deliberately tight grant.
	var ticketPolicy *service.TicketConfig
	if cfg.Ticketed {
		w.clock = new(atomic.Int64)
		w.clock.Store(simTicketEpoch)
		ticketPolicy = &service.TicketConfig{
			MaxTickets: 2*cfg.Devices + 16,
			TTL:        simTicketTTL,
			MaxWindow:  2*bogusRoundOffset + 64,
			Now:        w.clock.Load,
		}
	}
	w.tenant, err = st.registry.AddTenant(service.TenantConfig{
		Name:         cfg.ServiceName,
		Verify:       svc.ContributionVerifyKey(),
		Dim:          cfg.Dim,
		TicketPolicy: ticketPolicy,
		Workers:      cfg.Workers,
		Shards:       cfg.Shards,
		// Each round's cohort is the fleet (plus injected duplicates and
		// replays); pre-sizing the dedup shards keeps steady-state ingest
		// on the zero-allocation path.
		ExpectedCohort: cfg.Devices + cfg.Devices/2,
		// Rounds are closed but never forgotten (a forgotten round could be
		// re-created by a replayed contribution), so the quota covers them
		// all.
		MaxRounds:   cfg.Rounds + 8,
		RoundWindow: admissionWindow(cfg),
		Glimmer:     hostCfg,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: tenant: %w", err)
	}
	w.manager = w.tenant.Manager()
	for _, dev := range w.devices {
		w.manager.Vet(dev.Measurement())
	}
	if err := w.openTransports(); err != nil {
		w.shutdown()
		return nil, err
	}
	if err := w.issueTickets(); err != nil {
		w.shutdown()
		return nil, err
	}
	return w, nil
}

// issueTickets runs each device's grant exchange through the transport
// (the gaas ticket-grant command on the pipe/TCP transports, the registry
// directly on the in-process one): the session's single asymmetric
// operation, after which every contribution rides the MAC fast path. The
// window covers the plan's bogus rounds deliberately — see the ticket
// policy above.
func (w *world) issueTickets() error {
	if !w.cfg.Ticketed {
		return nil
	}
	last := uint64(1) + 2*bogusRoundOffset
	for i, dev := range w.devices {
		req, err := dev.TicketRequest(1, last)
		if err != nil {
			return fmt.Errorf("sim: device %d ticket request: %w", i, err)
		}
		grant, err := w.pool.grant(req)
		if err != nil {
			return fmt.Errorf("sim: device %d ticket grant: %w", i, err)
		}
		if err := dev.InstallTicket(grant); err != nil {
			return fmt.Errorf("sim: device %d ticket install: %w", i, err)
		}
	}
	return nil
}

// dealMasks draws each round's zero-sum dealer masks (including the bogus
// rounds out-of-window injections will name) and Shamir-shares the masks
// of planned dropouts among the other devices.
func (w *world) dealMasks(p *plan) error {
	rounds := make([]uint64, 0, 2*len(p.rounds)+1)
	for _, rp := range p.rounds {
		rounds = append(rounds, rp.round)
		for _, dp := range rp.devices {
			if dp.outOfWindow {
				rounds = append(rounds, rp.bogusRound)
				break
			}
		}
	}
	if w.cfg.Ticketed {
		// The ticket probes contribute (and are refused) against one round
		// past the plan; the enclaves still need its dealer masks to blind.
		rounds = append(rounds, uint64(w.cfg.Rounds+1))
	}
	for _, round := range rounds {
		seed := fmt.Appendf(nil, "sim/%s/%d/masks/%d", w.cfg.ServiceName, w.cfg.Seed, round)
		masks, err := blind.ZeroSumMasks(seed, w.cfg.Devices, w.cfg.Dim)
		if err != nil {
			return fmt.Errorf("sim: dealer masks for round %d: %w", round, err)
		}
		w.masks[round] = masks
	}
	for _, rp := range p.rounds {
		for d, dp := range rp.devices {
			if dp.role != roleDropout {
				continue
			}
			shares, err := blind.ShareMask(w.masks[rp.round][d], w.cfg.Devices-1, w.cfg.ShamirThreshold)
			if err != nil {
				return fmt.Errorf("sim: sharing dropout mask (round %d, device %d): %w", rp.round, d, err)
			}
			w.dropShares[dropKey{rp.round, d}] = shares
		}
	}
	return nil
}

// provisionFleet loads and provisions one Glimmer device per simulated
// client, delivering each device's masks for every round it may name.
func (w *world) provisionFleet() error {
	glimCfg, err := w.svc.GlimmerConfig(w.cfg.Dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		return fmt.Errorf("sim: glimmer config: %w", err)
	}
	w.devices = make([]*glimmer.Device, w.cfg.Devices)
	for i := range w.devices {
		dev, err := glimmer.NewDevice(w.stack.platform, glimCfg)
		if err != nil {
			return fmt.Errorf("sim: device %d: %w", i, err)
		}
		w.svc.Vet(dev.Measurement())
		payload, err := w.svc.BasePayload()
		if err != nil {
			return err
		}
		payload.Masks = make(map[uint64][]uint64, len(w.masks))
		for round, masks := range w.masks {
			payload.Masks[round] = glimmer.VectorToBits(masks[i])
		}
		if err := w.svc.Provision(dev, payload); err != nil {
			return fmt.Errorf("sim: provisioning device %d: %w", i, err)
		}
		w.devices[i] = dev
	}
	return nil
}

// openTransports builds the tenant's submission lanes into the shared
// stack: in-process registry calls, or gaas clients (each dialing the
// shared front end and naming this tenant in its hello) over net.Pipe,
// loopback TCP, or TLS-wrapped loopback TCP — the cmd/glimmerd topology.
func (w *world) openTransports() error {
	switch w.cfg.Transport {
	case TransportDirect:
		w.pool = newDirectPool(w.stack.registry, w.cfg.Submitters)
		return nil
	case TransportPipe, TransportTCP, TransportTLS:
		meas, err := w.stack.server.MeasurementFor(w.cfg.ServiceName)
		if err != nil {
			return fmt.Errorf("sim: tenant measurement: %w", err)
		}
		verifier := &tee.QuoteVerifier{Root: w.stack.as.Root()}
		verifier.Allow(meas)
		pool, err := newGaasPool(w.stack.dial, verifier, w.cfg.ServiceName, w.cfg.Submitters)
		if err != nil {
			return err
		}
		w.pool = pool
		return nil
	}
	return fmt.Errorf("sim: unknown transport %v", w.cfg.Transport)
}

func (w *world) shutdown() {
	if w.pool != nil {
		w.pool.close()
	}
	for _, dev := range w.devices {
		if dev != nil {
			dev.Destroy()
		}
	}
}
