package sim

import (
	"fmt"
	"net"

	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

// dropKey identifies one planned dropout.
type dropKey struct {
	round  uint64
	device int
}

// world is the assembled deployment: the real attestation root, platform,
// service, provisioned Glimmer devices, and the round manager — exactly
// the pieces a production deployment wires together, none of them mocked.
type world struct {
	cfg      Config
	as       *tee.AttestationService
	platform *tee.Platform
	svc      *service.Service
	manager  *service.RoundManager
	devices  []*glimmer.Device

	// masks[r][i] is device i's dealer mask for round r (real and bogus
	// rounds alike). The simulator plays the §3 trusted dealer, so it
	// legitimately knows every mask.
	masks map[uint64][]fixed.Vector
	// dropShares holds the Shamir shares of each planned dropout's mask,
	// distributed at provisioning time as blind.BackupShares would be.
	dropShares map[dropKey][]blind.Share

	pool     *transportPool
	server   *gaas.Server
	listener net.Listener
}

// admissionWindow is the RoundWindow the simulated service configures:
// generous enough for the configured overlap, tight enough that the
// plan's bogus rounds are always refused.
func admissionWindow(cfg Config) uint64 {
	return uint64(cfg.Overlap + 2)
}

func newWorld(cfg Config, p *plan) (*world, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, fmt.Errorf("sim: attestation service: %w", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, fmt.Errorf("sim: platform: %w", err)
	}
	svc, err := service.New(cfg.ServiceName, as.Root())
	if err != nil {
		return nil, fmt.Errorf("sim: service: %w", err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("unit-range", cfg.Dim)); err != nil {
		return nil, fmt.Errorf("sim: predicate: %w", err)
	}
	w := &world{
		cfg:        cfg,
		as:         as,
		platform:   platform,
		svc:        svc,
		masks:      make(map[uint64][]fixed.Vector),
		dropShares: make(map[dropKey][]blind.Share),
	}
	if err := w.dealMasks(p); err != nil {
		return nil, err
	}
	if err := w.provisionFleet(); err != nil {
		return nil, err
	}
	w.manager = service.NewRoundManager(service.PipelineConfig{
		ServiceName: cfg.ServiceName,
		Verify:      svc.ContributionVerifyKey(),
		Dim:         cfg.Dim,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
		// Each round's cohort is the fleet (plus injected duplicates and
		// replays); pre-sizing the dedup shards keeps steady-state ingest
		// on the zero-allocation path.
		ExpectedCohort: cfg.Devices + cfg.Devices/2,
	})
	// Rounds are closed but never forgotten (a forgotten round could be
	// re-created by a replayed contribution), so the cap covers them all.
	w.manager.MaxRounds = cfg.Rounds + 8
	w.manager.RoundWindow = admissionWindow(cfg)
	for _, dev := range w.devices {
		w.manager.Vet(dev.Measurement())
	}
	if err := w.openTransports(); err != nil {
		w.shutdown()
		return nil, err
	}
	return w, nil
}

// dealMasks draws each round's zero-sum dealer masks (including the bogus
// rounds out-of-window injections will name) and Shamir-shares the masks
// of planned dropouts among the other devices.
func (w *world) dealMasks(p *plan) error {
	rounds := make([]uint64, 0, 2*len(p.rounds))
	for _, rp := range p.rounds {
		rounds = append(rounds, rp.round)
		for _, dp := range rp.devices {
			if dp.outOfWindow {
				rounds = append(rounds, rp.bogusRound)
				break
			}
		}
	}
	for _, round := range rounds {
		seed := fmt.Appendf(nil, "sim/%d/masks/%d", w.cfg.Seed, round)
		masks, err := blind.ZeroSumMasks(seed, w.cfg.Devices, w.cfg.Dim)
		if err != nil {
			return fmt.Errorf("sim: dealer masks for round %d: %w", round, err)
		}
		w.masks[round] = masks
	}
	for _, rp := range p.rounds {
		for d, dp := range rp.devices {
			if dp.role != roleDropout {
				continue
			}
			shares, err := blind.ShareMask(w.masks[rp.round][d], w.cfg.Devices-1, w.cfg.ShamirThreshold)
			if err != nil {
				return fmt.Errorf("sim: sharing dropout mask (round %d, device %d): %w", rp.round, d, err)
			}
			w.dropShares[dropKey{rp.round, d}] = shares
		}
	}
	return nil
}

// provisionFleet loads and provisions one Glimmer device per simulated
// client, delivering each device's masks for every round it may name.
func (w *world) provisionFleet() error {
	glimCfg, err := w.svc.GlimmerConfig(w.cfg.Dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		return fmt.Errorf("sim: glimmer config: %w", err)
	}
	w.devices = make([]*glimmer.Device, w.cfg.Devices)
	for i := range w.devices {
		dev, err := glimmer.NewDevice(w.platform, glimCfg)
		if err != nil {
			return fmt.Errorf("sim: device %d: %w", i, err)
		}
		w.svc.Vet(dev.Measurement())
		payload, err := w.svc.BasePayload()
		if err != nil {
			return err
		}
		payload.Masks = make(map[uint64][]uint64, len(w.masks))
		for round, masks := range w.masks {
			payload.Masks[round] = glimmer.VectorToBits(masks[i])
		}
		if err := w.svc.Provision(dev, payload); err != nil {
			return fmt.Errorf("sim: provisioning device %d: %w", i, err)
		}
		w.devices[i] = dev
	}
	return nil
}

// openTransports builds the submission lanes for the configured
// transport: in-process manager calls, or gaas clients over net.Pipe or
// loopback TCP against a server that fronts the same manager (the
// cmd/glimmerd topology).
func (w *world) openTransports() error {
	switch w.cfg.Transport {
	case TransportDirect:
		w.pool = newDirectPool(w.manager, w.cfg.Submitters)
		return nil
	case TransportPipe, TransportTCP:
		hostCfg, err := w.svc.GlimmerConfig(w.cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
		if err != nil {
			return err
		}
		w.server = gaas.NewServer(w.platform, hostCfg, nil)
		w.server.SetIngest(w.manager)
		verifier := &tee.QuoteVerifier{Root: w.as.Root()}
		verifier.Allow(w.server.Measurement())

		var dial func() (net.Conn, error)
		if w.cfg.Transport == TransportTCP {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("sim: listen: %w", err)
			}
			w.listener = ln
			addr := ln.Addr().String()
			dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		} else {
			ln := newMemListener()
			w.listener = ln
			dial = ln.dial
		}
		go func() { _ = w.server.Serve(w.listener) }()

		pool, err := newGaasPool(dial, verifier, w.cfg.ServiceName, w.cfg.Submitters)
		if err != nil {
			return err
		}
		w.pool = pool
		return nil
	}
	return fmt.Errorf("sim: unknown transport %v", w.cfg.Transport)
}

func (w *world) shutdown() {
	if w.pool != nil {
		w.pool.close()
	}
	if w.listener != nil {
		_ = w.listener.Close()
	}
	for _, dev := range w.devices {
		if dev != nil {
			dev.Destroy()
		}
	}
}
