package sim

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"glimmers/internal/blind"
	"glimmers/internal/durable"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

// Crash-recovery scenario: a ticketed deployment is killed mid-round and
// restarted from its state directory. The fleet, the tenant's keys, and
// the injected clock live outside the crashed process (they model the
// remote clients and the operator's config, which a server crash does not
// erase); everything the registry held — the sealed round, the half-built
// round, the dedup digests, the session-ticket table — must come back
// from snapshot + WAL.
//
// The scenario demands the durability guarantees the store advertises:
//
//   - exact sums: the restarted round seals to the exact sum of every
//     honest contribution, pre- and post-crash (the full cohort's dealer
//     masks cancel only if no accepted contribution was lost or doubled);
//   - exact accounting: duplicates of pre-crash contributions are still
//     refused (the dedup digests survived) and every refusal lands in the
//     same counters a crash-free run would show;
//   - no thundering herd: pre-crash session tickets still verify, so the
//     fleet finishes the round on its MAC fast path without a single
//     re-run of the grant exchange;
//   - flushed-prefix recovery: with the group-commit WAL, accept records
//     still staged in memory when the process dies are lost — recovery
//     restores exactly the flushed prefix, never a torn mix, and the
//     affected devices simply re-send (their contributions were never
//     acknowledged as durable);
//   - seal-point barrier: the instant Seal returns, the seal record and
//     every accept record before it are on disk — an observer recovering
//     a byte-for-byte copy of the state directory taken right after the
//     seal sees the full sealed round, never a partial seal.
type CrashConfig struct {
	Seed    int64
	Devices int // full cohort; half contribute (flushed) before the crash
	Dim     int
}

func (c CrashConfig) withDefaults() CrashConfig {
	if c.Devices <= 0 {
		c.Devices = 6
	}
	if c.Dim <= 0 {
		c.Dim = 4
	}
	return c
}

// CrashReport is the observable outcome of one kill-and-restart run.
type CrashReport struct {
	// RecoverCold is the first life's recovery (an empty state dir).
	RecoverCold durable.RecoverStats
	// RecoverCrash is the restart's recovery: snapshot + WAL replay +
	// torn-tail truncation.
	RecoverCrash durable.RecoverStats

	Round1Exact bool // sealed before the crash, restored from the snapshot
	Round2Exact bool // split across the crash, sealed after recovery

	// SealObserved reports that a byte-for-byte copy of the state dir,
	// taken the instant Seal(1) returned (no flush, no snapshot, no clean
	// close), recovered to the fully sealed round — the seal-point
	// barrier held.
	SealObserved bool

	PreCrashAccepted int // round-2 contributions the first life accepted
	// StagedLost counts round-2 contributions that were accepted but
	// still staged in the group-commit buffer (never flushed) at the
	// kill — the documented loss window. Their devices, which never saw
	// a durable acknowledgment, re-send after recovery.
	StagedLost      int
	FinalCount      int // round-2 cohort after the second life seals
	TicketsRestored int // live tickets in the restarted table

	// Violations lists every invariant break; empty means the scenario
	// held end to end.
	Violations []string
}

func (r *CrashReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

const crashServiceName = "crash.example"

// crashWorld is the state that survives the kill: the hardware and
// attestation substrate, the tenant's service (its keys and predicate —
// the operator's config), the provisioned fleet, and the injected clock.
type crashWorld struct {
	cfg      CrashConfig
	as       *tee.AttestationService
	platform *tee.Platform
	svc      *service.Service
	hostCfg  glimmer.Config
	devices  []*glimmer.Device
	clock    *atomic.Int64

	// values[r][i] is device i's honest contribution to round r; the
	// exact expected sum is their per-round total (masks cancel over the
	// full cohort).
	values map[uint64][]fixed.Vector
}

func newCrashWorld(cfg CrashConfig) (*crashWorld, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, fmt.Errorf("sim: attestation service: %w", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, fmt.Errorf("sim: platform: %w", err)
	}
	svc, err := service.New(crashServiceName, as.Root())
	if err != nil {
		return nil, fmt.Errorf("sim: service: %w", err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("unit-range", cfg.Dim)); err != nil {
		return nil, fmt.Errorf("sim: predicate: %w", err)
	}
	hostCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	w := &crashWorld{
		cfg:      cfg,
		as:       as,
		platform: platform,
		svc:      svc,
		hostCfg:  hostCfg,
		clock:    new(atomic.Int64),
		values:   make(map[uint64][]fixed.Vector),
	}
	w.clock.Store(simTicketEpoch)

	rng := rand.New(rand.NewSource(cfg.Seed))
	masks := make(map[uint64][]fixed.Vector, 2)
	for _, round := range []uint64{1, 2} {
		seed := fmt.Appendf(nil, "sim/%s/%d/masks/%d", crashServiceName, cfg.Seed, round)
		ms, err := blind.ZeroSumMasks(seed, cfg.Devices, cfg.Dim)
		if err != nil {
			return nil, fmt.Errorf("sim: dealer masks for round %d: %w", round, err)
		}
		masks[round] = ms
		vals := make([]fixed.Vector, cfg.Devices)
		for i := range vals {
			vals[i] = fixed.NewVector(cfg.Dim)
			for j := range vals[i] {
				vals[i][j] = fixed.FromFloat(rng.Float64())
			}
		}
		w.values[round] = vals
	}

	glimCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		return nil, fmt.Errorf("sim: glimmer config: %w", err)
	}
	w.devices = make([]*glimmer.Device, cfg.Devices)
	for i := range w.devices {
		dev, err := glimmer.NewDevice(platform, glimCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: device %d: %w", i, err)
		}
		svc.Vet(dev.Measurement())
		payload, err := svc.BasePayload()
		if err != nil {
			return nil, err
		}
		payload.Masks = make(map[uint64][]uint64, len(masks))
		for round, ms := range masks {
			payload.Masks[round] = glimmer.VectorToBits(ms[i])
		}
		if err := svc.Provision(dev, payload); err != nil {
			return nil, fmt.Errorf("sim: provisioning device %d: %w", i, err)
		}
		w.devices[i] = dev
	}
	return w, nil
}

func (w *crashWorld) shutdown() {
	for _, dev := range w.devices {
		if dev != nil {
			dev.Destroy()
		}
	}
}

// buildRegistry assembles one server life: what glimmerd reconstructs
// from its config file on every start, before recovering durable state.
func (w *crashWorld) buildRegistry() (*service.Registry, *service.RoundManager, error) {
	reg := service.NewRegistry(8)
	tenant, err := reg.AddTenant(service.TenantConfig{
		Name:   crashServiceName,
		Verify: w.svc.ContributionVerifyKey(),
		Dim:    w.cfg.Dim,
		TicketPolicy: &service.TicketConfig{
			MaxTickets: 2*w.cfg.Devices + 16,
			TTL:        simTicketTTL,
			MaxWindow:  64,
			Now:        w.clock.Load,
		},
		Workers:        2,
		Shards:         2,
		ExpectedCohort: w.cfg.Devices + 2,
		MaxRounds:      8,
		RoundWindow:    4,
		Glimmer:        w.hostCfg,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("sim: tenant: %w", err)
	}
	manager := tenant.Manager()
	for _, dev := range w.devices {
		manager.Vet(dev.Measurement())
	}
	return reg, manager, nil
}

func (w *crashWorld) contribute(dev *glimmer.Device, round uint64, value fixed.Vector) ([]byte, error) {
	tc, err := dev.ContributeTicketed(round, value, nil)
	if err != nil {
		return nil, err
	}
	return glimmer.EncodeTicketedContribution(tc), nil
}

func (w *crashWorld) expectedSum(round uint64) fixed.Vector {
	sum := fixed.NewVector(w.cfg.Dim)
	for _, v := range w.values[round] {
		sum.AddInPlace(v)
	}
	return sum
}

// RunCrashRecovery drives the scenario against stateDir (which must be
// empty — use a fresh temp dir). Setup failures return an error;
// invariant breaks are booked in the report's Violations.
func RunCrashRecovery(stateDir string, cfg CrashConfig) (*CrashReport, error) {
	cfg = cfg.withDefaults()
	rep := &CrashReport{}
	w, err := newCrashWorld(cfg)
	if err != nil {
		return nil, err
	}
	defer w.shutdown()
	half := cfg.Devices / 2

	// ----- First life: grant tickets, seal round 1, snapshot, start
	// round 2, die mid-round.
	regA, managerA, err := w.buildRegistry()
	if err != nil {
		return nil, err
	}
	// Huge thresholds: the background flusher never fires on its own, so
	// the only disk writes come from barriers and explicit Flush calls —
	// the scenario controls exactly which records are durable at the kill.
	walCfg := durable.Config{FlushBytes: 1 << 30, FlushInterval: time.Hour}
	storeA, err := durable.OpenConfig(stateDir, walCfg)
	if err != nil {
		return nil, err
	}
	rep.RecoverCold, err = storeA.Recover(regA)
	if err != nil {
		return nil, fmt.Errorf("sim: cold recovery: %w", err)
	}
	if rep.RecoverCold.SnapshotLoaded || rep.RecoverCold.Records != 0 {
		rep.violate("cold start found state in a fresh dir: %+v", rep.RecoverCold)
	}

	// The grant exchange — the session's one asymmetric operation —
	// happens exactly once, here. The restarted life must never see it
	// again.
	for i, dev := range w.devices {
		req, err := dev.TicketRequest(1, 4)
		if err != nil {
			return nil, fmt.Errorf("sim: device %d ticket request: %w", i, err)
		}
		grant, err := regA.GrantTicket(req)
		if err != nil {
			return nil, fmt.Errorf("sim: device %d ticket grant: %w", i, err)
		}
		if err := dev.InstallTicket(grant); err != nil {
			return nil, fmt.Errorf("sim: device %d ticket install: %w", i, err)
		}
	}

	// Round 1: full cohort, sealed before the crash.
	for i, dev := range w.devices {
		raw, err := w.contribute(dev, 1, w.values[1][i])
		if err != nil {
			return nil, fmt.Errorf("sim: round 1 device %d: %w", i, err)
		}
		if err := regA.Ingest(raw); err != nil {
			rep.violate("round 1 device %d refused: %v", i, err)
		}
	}
	if err := managerA.Seal(1); err != nil {
		return nil, fmt.Errorf("sim: seal round 1: %w", err)
	}
	if p, ok := managerA.Lookup(1); ok {
		rep.Round1Exact = vectorsEqual(p.Sum(), w.expectedSum(1))
	} else {
		rep.violate("round 1 vanished before the crash")
	}

	// Seal-point barrier: Seal(1) has returned, so the seal record — and,
	// because staging preserves order, every accept record before it —
	// must already be on disk, with no flush, snapshot, or clean close
	// having helped. An observer recovering a byte-for-byte copy of the
	// state directory taken at this instant (exactly what a crash right
	// now would leave) must see the fully sealed round, never a partial
	// seal.
	obsDir := stateDir + ".seal-observer"
	if err := copyDir(stateDir, obsDir); err != nil {
		return nil, fmt.Errorf("sim: observer copy: %w", err)
	}
	defer os.RemoveAll(obsDir)
	regObs, managerObs, err := w.buildRegistry()
	if err != nil {
		return nil, err
	}
	storeObs, err := durable.OpenConfig(obsDir, walCfg)
	if err != nil {
		return nil, err
	}
	if _, err := storeObs.Recover(regObs); err != nil {
		return nil, fmt.Errorf("sim: observer recovery: %w", err)
	}
	rep.SealObserved = true
	if p, ok := managerObs.Lookup(1); !ok {
		rep.SealObserved = false
		rep.violate("observer copy lost round 1 after Seal returned")
	} else if p.Count() != cfg.Devices || !vectorsEqual(p.Sum(), w.expectedSum(1)) {
		rep.SealObserved = false
		rep.violate("observer sees a partial round 1: count=%d, want %d with the exact sum", p.Count(), cfg.Devices)
	}
	sealedSeen := false
	for _, tn := range regObs.ExportState().Tenants {
		if tn.Name != crashServiceName {
			continue
		}
		for _, rs := range tn.Rounds {
			if rs.Round == 1 && rs.Phase == service.RoundPhaseSealed {
				sealedSeen = true
			}
		}
	}
	if !sealedSeen {
		rep.SealObserved = false
		rep.violate("observer sees round 1 unsealed: the seal record was not durable when Seal returned")
	}
	if err := storeObs.Close(); err != nil {
		return nil, fmt.Errorf("sim: observer close: %w", err)
	}

	if err := storeA.Snapshot(regA); err != nil {
		return nil, fmt.Errorf("sim: snapshot: %w", err)
	}

	// Round 2, flushed prefix: the first half of the cohort contributes
	// and the prefix is pinned to disk — these are the records recovery
	// must restore.
	preCrashRaws := make([][]byte, 0, half)
	for i := 0; i < half; i++ {
		raw, err := w.contribute(w.devices[i], 2, w.values[2][i])
		if err != nil {
			return nil, fmt.Errorf("sim: round 2 device %d: %w", i, err)
		}
		if err := regA.Ingest(raw); err != nil {
			rep.violate("round 2 device %d refused pre-crash: %v", i, err)
		}
		preCrashRaws = append(preCrashRaws, raw)
	}
	if err := storeA.Flush(); err != nil {
		return nil, fmt.Errorf("sim: WAL flush: %w", err)
	}

	// Staged and lost: the next contributions are accepted by the serving
	// path but their records are still sitting in the group-commit
	// staging buffer when the process dies — the documented
	// fire-and-forget loss window. The process dies before any flush, so
	// recovery must restore exactly the flushed prefix, and these devices
	// (which never saw a durable acknowledgment) simply re-send.
	stagedLost := min(2, cfg.Devices-half-1)
	rep.StagedLost = stagedLost
	stagedRaws := make([][]byte, 0, stagedLost)
	for i := half; i < half+stagedLost; i++ {
		raw, err := w.contribute(w.devices[i], 2, w.values[2][i])
		if err != nil {
			return nil, fmt.Errorf("sim: round 2 device %d: %w", i, err)
		}
		if err := regA.Ingest(raw); err != nil {
			rep.violate("round 2 device %d refused pre-crash: %v", i, err)
		}
		stagedRaws = append(stagedRaws, raw)
	}
	rep.PreCrashAccepted = half + stagedLost
	if err := storeA.Err(); err != nil {
		return nil, fmt.Errorf("sim: WAL append: %w", err)
	}
	// Kill: regA and storeA are simply abandoned (the OS would reclaim
	// the fd, taking the staged records with it). The dying process's
	// last write is torn mid-frame.
	if err := tearWALTail(stateDir); err != nil {
		return nil, err
	}

	// ----- Second life: rebuild from config, recover from disk.
	regB, managerB, err := w.buildRegistry()
	if err != nil {
		return nil, err
	}
	storeB, err := durable.OpenConfig(stateDir, walCfg)
	if err != nil {
		return nil, err
	}
	defer storeB.Close()
	rep.RecoverCrash, err = storeB.Recover(regB)
	if err != nil {
		return nil, fmt.Errorf("sim: crash recovery: %w", err)
	}
	if !rep.RecoverCrash.SnapshotLoaded {
		rep.violate("restart did not load the snapshot")
	}
	if rep.RecoverCrash.TruncatedBytes == 0 {
		rep.violate("restart did not truncate the torn WAL tail")
	}
	if rep.RecoverCrash.ReplayErrors != 0 {
		rep.violate("replay reported %d errors", rep.RecoverCrash.ReplayErrors)
	}

	// Round 1 came back sealed with its exact sum.
	if p, ok := managerB.Lookup(1); !ok {
		rep.violate("restored registry lost sealed round 1")
	} else if !vectorsEqual(p.Sum(), w.expectedSum(1)) {
		rep.Round1Exact = false
		rep.violate("restored round 1 sum differs from the pre-crash seal")
	}

	// Round 2 came back mid-flight with exactly the flushed prefix: the
	// staged-and-lost tail is gone whole, never a torn mix.
	p2, ok := managerB.Lookup(2)
	if !ok {
		rep.violate("restored registry lost in-flight round 2")
		return rep, nil
	}
	if got := p2.Count(); got != half {
		rep.violate("restored round 2 count = %d, want exactly the flushed prefix %d", got, half)
	}

	// Exact accounting: a duplicate of a flushed pre-crash contribution
	// is still a duplicate — the dedup digests survived the crash.
	if err := regB.Ingest(preCrashRaws[0]); err != service.ErrDuplicate {
		rep.violate("pre-crash duplicate returned %v, want ErrDuplicate", err)
	}
	// A forged MAC is still refused: the restored ticket keys are the
	// real ones. (Submitted before the genuine copy so the dedup table
	// cannot mask a MAC bypass.)
	fresh := half + stagedLost
	probe, err := w.contribute(w.devices[fresh], 2, w.values[2][fresh])
	if err != nil {
		return nil, fmt.Errorf("sim: round 2 device %d: %w", fresh, err)
	}
	forged := append([]byte(nil), probe...)
	forged[len(forged)-1] ^= 0x01
	if err := regB.Ingest(forged); err != service.ErrBadMAC {
		rep.violate("forged MAC post-restart returned %v, want ErrBadMAC", err)
	}

	// The staged-and-lost contributions were never durably acknowledged,
	// so their devices re-send the identical bytes — and the restored
	// round, which genuinely lost them, accepts the resend instead of
	// refusing it as a duplicate.
	for i, raw := range stagedRaws {
		if err := regB.Ingest(raw); err != nil {
			rep.violate("staged-lost device %d resend refused: %v", half+i, err)
		}
	}

	// No thundering herd: the rest of the fleet finishes round 2 on its
	// pre-crash tickets — pure MAC fast path, zero grant exchanges.
	if err := regB.Ingest(probe); err != nil {
		rep.violate("round 2 device %d refused post-restart: %v", fresh, err)
	}
	for i := fresh + 1; i < cfg.Devices; i++ {
		raw, err := w.contribute(w.devices[i], 2, w.values[2][i])
		if err != nil {
			return nil, fmt.Errorf("sim: round 2 device %d: %w", i, err)
		}
		if err := regB.Ingest(raw); err != nil {
			rep.violate("round 2 device %d refused post-restart: %v", i, err)
		}
	}
	if err := managerB.Seal(2); err != nil {
		return nil, fmt.Errorf("sim: seal round 2: %w", err)
	}
	rep.FinalCount = p2.Count()
	rep.Round2Exact = vectorsEqual(p2.Sum(), w.expectedSum(2))
	if !rep.Round2Exact {
		rep.violate("round 2 aggregate differs from the exact sum of the split cohort")
	}
	if rep.FinalCount != cfg.Devices {
		rep.violate("round 2 cohort = %d, want %d", rep.FinalCount, cfg.Devices)
	}
	// The two refusals above are the only ones either life saw.
	if got := p2.Rejected(); got != 2 {
		rep.violate("round 2 rejected = %d, want 2 (duplicate + forged MAC)", got)
	}
	if got := managerB.Rejected(); got != 0 {
		rep.violate("manager rejected = %d, want 0", got)
	}
	if got := regB.Rejected(); got != 0 {
		rep.violate("registry rejected = %d, want 0", got)
	}

	// The ticket table survived in full.
	st := regB.ExportState()
	for _, tn := range st.Tenants {
		if tn.Name == crashServiceName {
			rep.TicketsRestored = len(tn.Tickets)
		}
	}
	if rep.TicketsRestored != cfg.Devices {
		rep.violate("restored tickets = %d, want %d", rep.TicketsRestored, cfg.Devices)
	}
	return rep, nil
}

// copyDir copies every regular file in src into dst (created fresh) —
// the observer's byte-for-byte view of the state directory, exactly as
// a crash at that instant would leave it.
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// tearWALTail appends a partial frame to the live WAL — the dying
// process's final, unfinished write.
func tearWALTail(stateDir string) error {
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == "wal." {
			f, err := os.OpenFile(filepath.Join(stateDir, e.Name()), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			_, werr := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xDE, 0xAD, 0xBE})
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		}
	}
	return fmt.Errorf("sim: no WAL file in %s", stateDir)
}
