package sim

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"glimmers/internal/gaas"
	"glimmers/internal/tee"
)

// A lane is one submission path to the service. Each lane serializes its
// own submissions — gaas lanes own a connection whose frame protocol is
// strictly request/response, and direct lanes match that shape so the
// Submitters knob bounds concurrent ingest callers identically on every
// transport. Different lanes proceed in parallel.
type lane struct {
	mu sync.Mutex
	// submit returns per-item errors when the transport can observe them
	// (direct), or errs == nil for tally-only transports (gaas, whose
	// submit-batch reply is accepted/rejected counts by design).
	submit func(batch [][]byte) (accepted int, errs []error, err error)
	close  func() error
}

// transportPool fans submissions across lanes round-robin. grantFn is the
// ticket control plane: the registry directly for the in-process
// transport, the gaas ticket-grant command on lane 0 otherwise (nil when
// the ingestor cannot grant).
type transportPool struct {
	lanes   []*lane
	next    atomic.Uint32
	grantFn func(req []byte) ([]byte, error)
}

// grant runs one ticket exchange over the pool's control plane.
func (p *transportPool) grant(req []byte) ([]byte, error) {
	if p.grantFn == nil {
		return nil, errors.New("sim: transport cannot grant tickets")
	}
	return p.grantFn(req)
}

func (p *transportPool) submit(batch [][]byte) (int, []error, error) {
	l := p.lanes[int(p.next.Add(1))%len(p.lanes)]
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.submit(batch)
}

func (p *transportPool) close() {
	for _, l := range p.lanes {
		if l.close != nil {
			_ = l.close()
		}
	}
}

// batchIngestor is the in-process submission surface (service.Registry,
// or a single tenant's RoundManager).
type batchIngestor interface {
	IngestBatch(raws [][]byte) (int, []error)
}

// newDirectPool builds in-process lanes over the ingestor. The ingestor is
// concurrency-safe, but each lane still serializes its own submissions so
// Submitters bounds the concurrent IngestBatch callers exactly as it
// bounds gaas connections — the two transports exercise the same
// concurrency shape.
func newDirectPool(ing batchIngestor, n int) *transportPool {
	p := &transportPool{lanes: make([]*lane, n)}
	for i := range p.lanes {
		p.lanes[i] = &lane{
			submit: func(batch [][]byte) (int, []error, error) {
				accepted, errs := ing.IngestBatch(batch)
				return accepted, errs, nil
			},
		}
	}
	if g, ok := ing.(interface {
		GrantTicket([]byte) ([]byte, error)
	}); ok {
		p.grantFn = g.GrantTicket
	}
	return p
}

// newGaasPool dials n gaas clients (each with its own attested handshake,
// like n independent submitting hosts) and wraps them as tally-only lanes.
func newGaasPool(dial func() (net.Conn, error), verifier *tee.QuoteVerifier, serviceName string, n int) (*transportPool, error) {
	p := &transportPool{lanes: make([]*lane, 0, n)}
	var client0 *gaas.Client
	for i := 0; i < n; i++ {
		conn, err := dial()
		if err != nil {
			p.close()
			return nil, err
		}
		client, err := gaas.DialConn(conn, verifier, serviceName)
		if err != nil {
			conn.Close()
			p.close()
			return nil, err
		}
		if i == 0 {
			client0 = client
		}
		p.lanes = append(p.lanes, &lane{
			submit: func(batch [][]byte) (int, []error, error) {
				accepted, _, err := client.SubmitBatch(batch)
				return accepted, nil, err
			},
			close: client.Close,
		})
	}
	// Ticket grants ride lane 0's connection; the lane lock serializes
	// them with that lane's submissions (the frame protocol is strictly
	// request/response per connection).
	l0 := p.lanes[0]
	p.grantFn = func(req []byte) ([]byte, error) {
		l0.mu.Lock()
		defer l0.mu.Unlock()
		return client0.RequestTicket(req)
	}
	return p, nil
}

// memListener is an in-memory net.Listener over net.Pipe: the gaas frame
// protocol runs unchanged, with synchronous in-process delivery instead
// of a kernel socket.
type memListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

func (l *memListener) Addr() net.Addr { return memAddr{} }

// dial hands one end of a fresh pipe to the acceptor.
func (l *memListener) dial() (net.Conn, error) {
	server, client := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}
