// Package sim is the fleet simulator: a deterministic, seeded harness that
// assembles the real stack — tee enclaves running the Glimmer
// validate→blind→sign pipeline, a service.RoundManager with its concurrent
// sharded ingest pipelines, and the gaas transport either in-process or
// over net.Pipe/TCP — and drives N simulated devices through M overlapping
// aggregation rounds under a pluggable fault plan.
//
// The simulator is the proving ground for the paper's end-to-end loop
// (provision → validate → blind → sign → batch-submit → dedup → seal →
// dropout-correct → exact sum) at fleet scale and under adversarial
// conditions: dropouts recovered via Shamir-shared masks, duplicate and
// replayed submissions, corrupted signatures and frames, out-of-window
// round numbers, byzantine clients pushing out-of-range values, and slow
// stragglers racing Seal. After every round it checks the invariants the
// design promises:
//
//   - the sealed aggregate equals the exact sum of the honest
//     contributions that were accepted, bit for bit, after dropout
//     correction;
//   - the accepted count matches the pipeline's count;
//   - every injected fault is accounted for by a rejection (tallied
//     globally across manager- and pipeline-level counters);
//   - no dropout correction is possible after Close, and the closed
//     aggregate is immutable.
//
// Determinism: all workload decisions (values, fault roles, schedules) are
// drawn from a single seeded generator in a planning pass before any
// concurrency starts, so the same seed yields the same accept/reject/sum
// trace. The one deliberate exception is stragglers, which race Seal by
// design; plans with Stragglers > 0 have a nondeterministic straggler
// outcome (observed and accounted either way), so reproducibility
// comparisons should use plans without them.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"glimmers/internal/botdetect"
)

// TransportKind selects how signed contributions travel from devices to
// the aggregation pipeline.
type TransportKind int

const (
	// TransportDirect hands batches to the RoundManager in-process — the
	// co-located deployment, and the fastest path.
	TransportDirect TransportKind = iota
	// TransportPipe routes batches through the full gaas frame protocol
	// over synchronous in-memory net.Pipe connections.
	TransportPipe
	// TransportTCP routes batches through gaas over loopback TCP — the
	// cmd/glimmerd deployment.
	TransportTCP
	// TransportTLS routes batches through gaas over loopback TCP wrapped
	// in TLS — the hardened public-edge deployment of cmd/glimmerd with
	// -tls-self-signed.
	TransportTLS
)

// String names the transport for reports.
func (t TransportKind) String() string {
	switch t {
	case TransportDirect:
		return "direct"
	case TransportPipe:
		return "pipe"
	case TransportTCP:
		return "tcp"
	case TransportTLS:
		return "tls"
	}
	return fmt.Sprintf("transport(%d)", int(t))
}

// FaultPlan configures the adversarial/faulty workload. Primary rates
// select, per (device, round), what the device does instead of an honest
// submission; they are tried in the order listed and at most one applies.
// Injection rates add extra hostile traffic on top of a device's honest
// submission. All selections are drawn deterministically from the
// simulation seed.
type FaultPlan struct {
	// DropoutRate: the device goes silent for the round. Its dealer mask
	// is Shamir-shared at provisioning time; the simulator reconstructs it
	// from surviving shares and applies CorrectDropout.
	DropoutRate float64
	// ByzantineRate: the device submits an out-of-range contribution. The
	// Glimmer's validation predicate refuses it client-side, so nothing
	// reaches the service; the unused mask is corrected like a dropout.
	ByzantineRate float64
	// CorruptSigRate: the device's signed contribution is flipped in
	// flight (one signature byte), so the service rejects it.
	CorruptSigRate float64

	// DuplicateRate: the device re-submits its already-accepted
	// contribution; the dedup layer must reject the copy.
	DuplicateRate float64
	// ReplayRate: the device replays its accepted contribution from an
	// earlier, already-sealed round; the sealed pipeline must refuse it.
	ReplayRate float64
	// GarbageRate: the device submits undecodable bytes; the manager must
	// refuse them before any round state is touched.
	GarbageRate float64
	// OutOfWindowRate: the device submits a validly signed contribution
	// naming a round far outside the admission window; the manager must
	// refuse to create the round.
	OutOfWindowRate float64

	// Stragglers is the number of honest devices per round whose
	// submission is withheld until it races Seal. Each straggler is
	// submitted individually and its observed outcome (accepted or
	// ErrRoundSealed) feeds the invariant checks either way.
	Stragglers int
}

// Active reports how many distinct fault mechanisms the plan enables.
func (f FaultPlan) Active() int {
	n := 0
	for _, r := range []float64{f.DropoutRate, f.ByzantineRate, f.CorruptSigRate,
		f.DuplicateRate, f.ReplayRate, f.GarbageRate, f.OutOfWindowRate} {
		if r > 0 {
			n++
		}
	}
	if f.Stragglers > 0 {
		n++
	}
	return n
}

// Workload selects what a tenant's devices contribute and which predicate
// their Glimmers enforce.
type Workload int

const (
	// WorkloadRange: unit-range vectors validated by the paper's canonical
	// [0,1] check. Byzantine devices submit an out-of-range value.
	WorkloadRange Workload = iota
	// WorkloadBotdetect: §4.1 bot detection as an aggregation tenant —
	// devices contribute the one-bit verdict vector [1], gated by the
	// behavioural detector over private signals, so a round's exact sum is
	// its human-session count. Byzantine devices are bots: the detector
	// refuses their sessions inside the enclave.
	WorkloadBotdetect
)

// String names the workload for reports.
func (w Workload) String() string {
	switch w {
	case WorkloadRange:
		return "range"
	case WorkloadBotdetect:
		return "botdetect"
	}
	return fmt.Sprintf("workload(%d)", int(w))
}

// Config sizes one simulation.
type Config struct {
	// Seed drives every workload decision. Same seed, same plan.
	Seed int64
	// Devices is the fleet size (≥ 4: the round-admission anchor needs at
	// least two honest accepts per round, and dropout recovery needs
	// share holders).
	Devices int
	// Rounds is how many aggregation rounds the fleet completes.
	Rounds int
	// Overlap is how many rounds are open concurrently (≥ 1): round r is
	// sealed only after the cohort for round r+Overlap-1 has submitted.
	Overlap int
	// Dim is the contribution dimensionality.
	Dim int
	// Workers and Shards size each round's ingest pipeline (see
	// service.PipelineConfig).
	Workers int
	Shards  int
	// Transport selects the submission path.
	Transport TransportKind
	// BatchSize caps contributions per submitted batch (default 16).
	BatchSize int
	// Submitters is the number of concurrent submission lanes — parallel
	// gaas connections or concurrent IngestBatch callers (default 4).
	Submitters int
	// ShamirThreshold is k for dropout mask recovery (default: majority
	// of the other devices).
	ShamirThreshold int
	// Faults is the adversarial workload.
	Faults FaultPlan

	// ServiceName names the simulated service (the tenant's routing key).
	ServiceName string
	// Workload selects the tenant's contribution shape and predicate.
	Workload Workload

	// Ticketed switches the fleet onto the attested-session-ticket fast
	// path: after provisioning, every device runs one grant exchange (one
	// ECDSA verification service-side) and MACs its contributions instead
	// of ECDSA-signing them. All fault semantics carry over — a corrupted
	// submission now means a flipped MAC — and the run additionally probes
	// the ticket-specific attacks (forged MAC on a fresh round, round
	// outside the ticket window, expired ticket, ticket replayed onto a
	// tenant that never granted it) before reconciling the accounting.
	Ticketed bool
}

// withDefaults fills zero values and validates the configuration.
func (c Config) withDefaults() (Config, error) {
	if c.Devices == 0 {
		c.Devices = 8
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Overlap == 0 {
		c.Overlap = 1
	}
	if c.Workload == WorkloadBotdetect {
		// The verdict contribution is one bit by construction.
		if c.Dim == 0 {
			c.Dim = botdetect.TenantDim
		}
		if c.Dim != botdetect.TenantDim {
			return c, fmt.Errorf("sim: botdetect workload is %d-dimensional, got dim %d", botdetect.TenantDim, c.Dim)
		}
	}
	if c.Dim == 0 {
		c.Dim = 8
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Submitters == 0 {
		c.Submitters = 4
	}
	if c.ServiceName == "" {
		c.ServiceName = "sim.glimmers.example"
	}
	if c.ShamirThreshold == 0 {
		c.ShamirThreshold = (c.Devices-1)/2 + 1
	}
	switch {
	case c.Devices < 4:
		return c, fmt.Errorf("sim: need at least 4 devices, got %d", c.Devices)
	case c.Rounds < 1:
		return c, fmt.Errorf("sim: need at least 1 round, got %d", c.Rounds)
	case c.Overlap < 1 || c.Overlap > c.Rounds:
		return c, fmt.Errorf("sim: overlap %d outside [1, %d]", c.Overlap, c.Rounds)
	case c.Dim < 1:
		return c, fmt.Errorf("sim: dimension must be positive, got %d", c.Dim)
	case c.ShamirThreshold < 1 || c.ShamirThreshold > c.Devices-1:
		return c, fmt.Errorf("sim: shamir threshold %d outside [1, %d]", c.ShamirThreshold, c.Devices-1)
	case c.Faults.Stragglers < 0 || c.Faults.Stragglers > c.Devices-2:
		return c, fmt.Errorf("sim: stragglers %d outside [0, %d]", c.Faults.Stragglers, c.Devices-2)
	}
	return c, nil
}

// Scenario is a named workload: the ~20-line spec from which Run assembles
// the whole stack, executes the plan, and verifies the invariants.
type Scenario struct {
	Name   string
	Config Config
}

// Run executes the scenario: a single-tenant deployment of the full
// multi-tenant stack (one Registry, one tenant). Use MultiScenario for
// several tenants sharing the substrate.
func (s Scenario) Run() (*Report, error) {
	cfg, err := s.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	st, err := newStack(cfg.Transport, cfg.Rounds+16)
	if err != nil {
		return nil, err
	}
	defer st.shutdown()
	sim, err := newSimulation(s.Name, cfg, st)
	if err != nil {
		return nil, err
	}
	sim.soleTenant = true
	defer sim.shutdown()
	return sim.run()
}

// Outcome categories tallied by the simulator. Categories starting with
// "rejected/" are service-side refusals; "client-rejected" never reached
// the service.
const (
	CatAccepted          = "accepted"
	CatClientRejected    = "client-rejected"
	CatDropout           = "dropout"
	CatRejectedSig       = "rejected/bad-signature"
	CatRejectedDup       = "rejected/duplicate"
	CatRejectedReplay    = "rejected/replay"
	CatRejectedGarbage   = "rejected/garbage"
	CatRejectedWindow    = "rejected/out-of-window"
	CatStragglerAccepted = "straggler/accepted"
	CatStragglerRejected = "straggler/rejected"

	// Ticket-probe categories (Ticketed runs only).
	CatRejectedForgedMAC     = "rejected/forged-mac"
	CatRejectedTicketWindow  = "rejected/ticket-window"
	CatRejectedExpiredTicket = "rejected/expired-ticket"
	CatRejectedUnknownTenant = "rejected/unknown-tenant"
)

// Tally counts outcomes by category.
type Tally map[string]int

func (t Tally) add(cat string, n int) {
	if n != 0 {
		t[cat] += n
	}
}

// ServiceRejections sums the service-side refusal categories, including
// rejected stragglers.
func (t Tally) ServiceRejections() int {
	n := 0
	for cat, c := range t {
		if strings.HasPrefix(cat, "rejected/") || cat == CatStragglerRejected {
			n += c
		}
	}
	return n
}

func (t Tally) String() string {
	cats := make([]string, 0, len(t))
	for cat := range t {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	parts := make([]string, len(cats))
	for i, cat := range cats {
		parts[i] = fmt.Sprintf("%s=%d", cat, t[cat])
	}
	return strings.Join(parts, " ")
}

// RoundReport is one sealed round's outcome.
type RoundReport struct {
	Round uint64
	// Accepted is the pipeline's accepted count at seal time.
	Accepted int
	// Tally is the per-category outcome count observed for this round.
	Tally Tally
	// SumDigest is a 64-bit digest of the corrected sealed aggregate.
	SumDigest string
	// Exact reports whether the corrected sealed aggregate equals the
	// exact sum of the accepted honest contributions.
	Exact bool
	// DropoutsRecovered counts masks reconstructed from Shamir shares and
	// applied via CorrectDropout.
	DropoutsRecovered int
}

// Report is the outcome of one simulation run.
type Report struct {
	Scenario  string
	Config    Config
	Rounds    []RoundReport
	Totals    Tally
	Elapsed   time.Duration
	Transport TransportKind
	// Violations lists every invariant breach observed; an empty list
	// means the run passed.
	Violations []string
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// RoundsPerSec is the end-to-end round throughput.
func (r *Report) RoundsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Rounds)) / r.Elapsed.Seconds()
}

// Trace renders the deterministic accept/reject/sum trace: one line per
// round plus a totals line. With Stragglers == 0 the trace is a pure
// function of the configuration (same seed → same trace).
func (r *Report) Trace() string {
	var sb strings.Builder
	for _, rr := range r.Rounds {
		fmt.Fprintf(&sb, "round %d: accepted=%d exact=%v dropouts=%d sum=%s [%s]\n",
			rr.Round, rr.Accepted, rr.Exact, rr.DropoutsRecovered, rr.SumDigest, rr.Tally)
	}
	fmt.Fprintf(&sb, "totals: %s\n", r.Totals)
	return sb.String()
}

// Summary is a one-line human summary.
func (r *Report) Summary() string {
	status := "OK"
	if !r.Ok() {
		status = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	return fmt.Sprintf("%s: %d devices × %d rounds over %s, accepted=%d rejected=%d (%0.1f rounds/s) %s",
		r.Scenario, r.Config.Devices, len(r.Rounds), r.Transport,
		r.Totals[CatAccepted]+r.Totals[CatStragglerAccepted],
		r.Totals.ServiceRejections(), r.RoundsPerSec(), status)
}
