package sim

import (
	"fmt"
	"math/rand"

	"glimmers/internal/botdetect"
	"glimmers/internal/fixed"
	"glimmers/internal/xcrypto"
)

// The planning pass draws every workload decision — honest values, fault
// roles, injections — from one seeded generator before any concurrency
// starts. Execution then merely carries the plan out, so the simulated
// workload (and with it the accept/reject/sum trace) is a pure function of
// the configuration.

// role is a device's primary behaviour for one round.
type role int

const (
	roleHonest role = iota
	// roleDropout: silent for the round; mask recovered via Shamir.
	roleDropout
	// roleByzantine: submits an out-of-range value the Glimmer refuses.
	roleByzantine
	// roleCorruptSig: its signed contribution is tampered in flight.
	roleCorruptSig
)

// devicePlan is one device's behaviour for one round.
type devicePlan struct {
	role role
	// straggler: the (honest) submission is withheld to race Seal.
	straggler bool
	// value is the honest contribution (every element in the predicate's
	// accepted range; the fixed verdict vector for botdetect tenants).
	// Range-workload byzantine devices submit a corrupted copy.
	value fixed.Vector
	// private is the private validation bank the predicate inspects:
	// unused for the range workload, behavioural features for botdetect
	// (human features for honest devices, bot features for byzantine ones
	// — the bot session is what the detector refuses).
	private []int64

	// Injections: extra hostile traffic on top of the primary submission.
	// Only honest devices inject (a dropout is silent by definition).
	duplicate   bool
	replay      bool
	garbage     []byte // nil = no garbage injection
	outOfWindow bool
}

// roundPlan is the fleet's behaviour for one round.
type roundPlan struct {
	round uint64
	// bogusRound is the far-out-of-window round used by outOfWindow
	// injections during this round's step.
	bogusRound uint64
	devices    []devicePlan
}

type plan struct {
	rounds []roundPlan
}

// bogusRoundOffset puts out-of-window submissions far beyond any
// admission window a simulation would configure.
const bogusRoundOffset = 1 << 20

func buildPlan(cfg Config) *plan {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &plan{rounds: make([]roundPlan, cfg.Rounds)}
	for r := 0; r < cfg.Rounds; r++ {
		round := uint64(r + 1)
		rp := roundPlan{
			round:      round,
			bogusRound: round + bogusRoundOffset,
			devices:    make([]devicePlan, cfg.Devices),
		}
		for d := 0; d < cfg.Devices; d++ {
			dp := &rp.devices[d]
			// Fixed draw order and count per device keeps the stream
			// aligned no matter which branches are taken.
			primary := rng.Float64()
			injDup, injReplay, injGarbage, injWindow := rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()
			dp.value = fixed.NewVector(cfg.Dim)
			for i := range dp.value {
				dp.value[i] = fixed.FromFloat(rng.Float64())
			}
			garbage := make([]byte, 24)
			for i := range garbage {
				garbage[i] = byte(rng.Intn(256))
			}

			f := cfg.Faults
			switch {
			case primary < f.DropoutRate:
				dp.role = roleDropout
			case primary < f.DropoutRate+f.ByzantineRate:
				dp.role = roleByzantine
			case primary < f.DropoutRate+f.ByzantineRate+f.CorruptSigRate:
				dp.role = roleCorruptSig
			default:
				dp.role = roleHonest
			}
			if dp.role == roleHonest {
				dp.duplicate = injDup < f.DuplicateRate
				// Replay needs an accepted contribution in the round that
				// is sealed during this step; resolved below once all
				// rounds are drawn.
				dp.replay = injReplay < f.ReplayRate
				if injGarbage < f.GarbageRate {
					dp.garbage = garbage
				}
				dp.outOfWindow = injWindow < f.OutOfWindowRate
			}
		}
		// The round-admission window anchors on rounds with at least two
		// accepted contributions, and dropout recovery needs surviving
		// honest devices: guarantee two honest, non-straggler devices by
		// converting excess faults back to honest (deterministically, in
		// device order).
		honest := 0
		for d := range rp.devices {
			if rp.devices[d].role == roleHonest {
				honest++
			}
		}
		for d := 0; d < cfg.Devices && honest < 2; d++ {
			if rp.devices[d].role != roleHonest {
				rp.devices[d] = devicePlan{role: roleHonest, value: rp.devices[d].value}
				honest++
			}
		}
		// Stragglers: the highest-indexed honest devices, always leaving
		// two prompt honest submitters. A straggler races Seal, so it must
		// not also duplicate (the copy's outcome would depend on the race).
		stragglers := cfg.Faults.Stragglers
		for d := cfg.Devices - 1; d >= 0 && stragglers > 0 && honest > 2; d-- {
			dp := &rp.devices[d]
			if dp.role == roleHonest {
				dp.straggler = true
				dp.duplicate = false
				stragglers--
				honest--
			}
		}
		if cfg.Workload == WorkloadBotdetect {
			// Every device contributes the fixed verdict vector; what varies
			// is the private session each brings. Byzantine devices are
			// bots, refused by the detector inside the enclave.
			for d := range rp.devices {
				dp := &rp.devices[d]
				dp.value = botdetect.VerdictContribution()
				dp.private = planFeatures(cfg.Seed, round, d, dp.role == roleByzantine)
			}
		}
		p.rounds[r] = rp
	}
	// Resolve replays: a replay at step r re-submits this device's
	// contribution from round r-Overlap (sealed, not yet closed, during
	// step r). It only exists if the device submitted promptly and
	// honestly in that round.
	for r := range p.rounds {
		targetIdx := r - cfg.Overlap
		for d := range p.rounds[r].devices {
			dp := &p.rounds[r].devices[d]
			if !dp.replay {
				continue
			}
			if targetIdx < 0 {
				dp.replay = false
				continue
			}
			src := p.rounds[targetIdx].devices[d]
			if src.role != roleHonest || src.straggler {
				dp.replay = false
			}
		}
	}
	return p
}

// byzantineValue corrupts an in-range value into one the predicate must
// refuse: the first element lands far above the unit range.
func byzantineValue(v fixed.Vector) fixed.Vector {
	out := v.Clone()
	out[0] = fixed.FromFloat(42.0)
	return out
}

// planFeatures draws one session's behavioural feature bank for the
// botdetect workload, deterministically from the simulation seed. The plan
// expects honest sessions to classify human and byzantine (bot) sessions
// to classify bot, so the draw retries with a fresh deterministic trace in
// the rare case a synthetic session lands on the detector's boundary — the
// expectation is then guaranteed, not merely probable.
func planFeatures(seed int64, round uint64, device int, bot bool) []int64 {
	for attempt := 0; ; attempt++ {
		prg := xcrypto.NewPRG(fmt.Appendf(nil, "sim/%d/trace/%d/%d/%d", seed, round, device, attempt))
		var features []int64
		if bot {
			features = botdetect.Features(botdetect.BotTrace(prg, 160, 0))
		} else {
			features = botdetect.Features(botdetect.HumanTrace(prg, 160))
		}
		if botdetect.DefaultDetector.Classify(features) == !bot {
			return features
		}
	}
}
