package sim

import (
	"strings"
	"testing"
)

// TestSimTicketedSoakAllFaults is the ticketed twin of the all-faults
// soak: the fleet establishes session tickets (one ECDSA verification per
// device) and MACs every contribution, under every fault mechanism at
// once — a corrupted submission is now a flipped MAC — plus the four
// ticket probes (forged MAC, tight window, ghost tenant, expiry) before
// the final accounting reconciliation. Run under -race in CI.
func TestSimTicketedSoakAllFaults(t *testing.T) {
	devices, rounds := soakScale(t)
	rep, err := Scenario{
		Name: "soak-ticketed-all-faults",
		Config: Config{
			Seed:     43,
			Devices:  devices,
			Rounds:   rounds,
			Overlap:  2,
			Dim:      8,
			Ticketed: true,
			Faults:   fullFaultPlan(),
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	t.Log(rep.Trace())
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if len(rep.Rounds) != rounds {
		t.Fatalf("sealed %d rounds, want %d", len(rep.Rounds), rounds)
	}
	for _, rr := range rep.Rounds {
		if !rr.Exact {
			t.Errorf("round %d aggregate not exact", rr.Round)
		}
	}
	// Every ticket probe must have fired and been booked.
	for _, cat := range []string{
		CatRejectedForgedMAC,
		CatRejectedTicketWindow,
		CatRejectedExpiredTicket,
		CatRejectedUnknownTenant,
	} {
		if rep.Totals[cat] != 1 {
			t.Errorf("probe category %s = %d, want 1 (%v)", cat, rep.Totals[cat], rep.Totals)
		}
	}
}

// TestSimTicketedOverGaas drives the ticketed fleet through the full gaas
// frame protocol: grants over the ticket-grant command on a pooled
// connection, MAC'd batches over submit-batch.
func TestSimTicketedOverGaas(t *testing.T) {
	rep, err := Scenario{
		Name: "ticketed-gaas",
		Config: Config{
			Seed:      11,
			Devices:   8,
			Rounds:    3,
			Overlap:   2,
			Dim:       6,
			Transport: TransportPipe,
			Ticketed:  true,
			Faults: FaultPlan{
				DropoutRate:    0.15,
				CorruptSigRate: 0.15,
				DuplicateRate:  0.25,
				ReplayRate:     0.25,
			},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestSimTicketedReproducibleTrace: the ticketed trace (probes included)
// is a pure function of the seed, and the ticketed and ECDSA modes accept
// the same honest workload (same plan, same accepted counts and sums —
// only the authenticator changed).
func TestSimTicketedReproducibleTrace(t *testing.T) {
	cfg := Config{
		Seed:     7,
		Devices:  8,
		Rounds:   3,
		Overlap:  2,
		Dim:      6,
		Ticketed: true,
		Faults: FaultPlan{
			DropoutRate:     0.15,
			ByzantineRate:   0.10,
			CorruptSigRate:  0.10,
			DuplicateRate:   0.30,
			ReplayRate:      0.30,
			GarbageRate:     0.25,
			OutOfWindowRate: 0.25,
		},
	}
	run := func(c Config, name string) string {
		t.Helper()
		rep, err := Scenario{Name: name, Config: c}.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%s invariant violation: %s", name, v)
		}
		return rep.Trace()
	}
	first, second := run(cfg, "repro-ticketed"), run(cfg, "repro-ticketed")
	if first != second {
		t.Fatalf("same seed produced different ticketed traces:\n--- first\n%s--- second\n%s", first, second)
	}
	if !strings.Contains(first, CatRejectedForgedMAC) {
		t.Fatalf("ticketed trace missing probe bookkeeping:\n%s", first)
	}

	// The signed-mode run of the same plan seals identical sums: the fast
	// path changes the authenticator, never the aggregate.
	ecdsa := cfg
	ecdsa.Ticketed = false
	signedTrace := run(ecdsa, "repro-signed")
	stripped := func(trace string) []string {
		var rounds []string
		for _, line := range strings.Split(trace, "\n") {
			if strings.HasPrefix(line, "round ") {
				// Keep the per-round "accepted=… sum=…" facts, which must
				// agree across modes; drop the tallies (the ticketed run
				// books probe categories the signed run has no reason to).
				if cut := strings.Index(line, " ["); cut >= 0 {
					line = line[:cut]
				}
				rounds = append(rounds, line)
			}
		}
		return rounds
	}
	tk, sg := stripped(first), stripped(signedTrace)
	if len(tk) != len(sg) {
		t.Fatalf("round count diverges across modes: %d vs %d", len(tk), len(sg))
	}
	for i := range tk {
		if tk[i] != sg[i] {
			t.Errorf("round outcome diverges across authenticator modes:\nticketed: %s\n  signed: %s", tk[i], sg[i])
		}
	}
}

// TestMultiTenantTicketedMix runs a ticketed tenant, an ECDSA tenant, and
// a ticketed botdetect tenant concurrently on one substrate: per-tenant
// exactness, shared-budget accounting, and the cross-tenant isolation
// probes (which now splice MAC'd contributions across tenants) must all
// hold with the two authentication modes interleaved.
func TestMultiTenantTicketedMix(t *testing.T) {
	rep, err := MultiScenario{
		Name: "ticketed-mix",
		Tenants: []Config{
			{Devices: 8, Rounds: 3, Overlap: 2, Dim: 6, Ticketed: true,
				Faults: FaultPlan{CorruptSigRate: 0.15, DuplicateRate: 0.3, GarbageRate: 0.2}},
			{Devices: 8, Rounds: 3, Overlap: 2, Dim: 4,
				Faults: FaultPlan{DropoutRate: 0.2, ReplayRate: 0.3}},
			{Devices: 8, Rounds: 2, Workload: WorkloadBotdetect, Ticketed: true,
				Faults: FaultPlan{ByzantineRate: 0.25}},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	for _, v := range rep.Violations {
		t.Errorf("cross-tenant violation: %s", v)
	}
	for _, tr := range rep.Reports {
		for _, v := range tr.Violations {
			t.Errorf("tenant %s violation: %s", tr.Scenario, v)
		}
	}
}
