package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"glimmers/internal/blind"
	"glimmers/internal/botdetect"
	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/service"
)

// item is one planned submission with its expected outcome. For
// deterministic faults the expectation is exact; stragglers carry
// catStragglerRace and are resolved by observation.
type item struct {
	raw    []byte
	expect string
	device int
	// value is the honest contribution carried by the raw bytes; it feeds
	// the expected exact sum when the submission is accepted.
	value fixed.Vector
}

// catStragglerRace marks an item whose outcome depends on the race with
// Seal: accepted and ErrRoundSealed are both legal.
const catStragglerRace = "straggler-race"

type simulation struct {
	name string
	cfg  Config
	plan *plan
	w    *world
	// soleTenant marks this simulation as the registry's only tenant, so
	// registry-level rejection accounting can be reconciled here; a
	// MultiScenario reconciles the shared counter across its tenants
	// instead.
	soleTenant bool

	mu sync.Mutex
	// tallies[r] counts outcomes observed during round r's step (its
	// cohort, its injections, and its seal-racing stragglers).
	tallies map[uint64]Tally
	// expectedSums[r] accumulates the honest values of round r's accepted
	// contributions — the exact sum the sealed aggregate must equal.
	expectedSums map[uint64]fixed.Vector
	// acceptedRaw[r][d] is device d's accepted encoded contribution in
	// round r, kept for duplicate and replay injections.
	acceptedRaw map[uint64]map[int][]byte
	// rejectedStragglers[r] marks devices whose straggling submission
	// lost the race; their masks need dropout correction.
	rejectedStragglers map[uint64]map[int]bool
	// observedRejects counts every tenant-level refusal the simulator
	// observed, to reconcile against manager+pipeline counters at the end.
	// observedRoutingRejects counts refusals that never reach a tenant
	// (unroutable garbage), which land in the shared registry counter.
	observedRejects        int
	observedRoutingRejects int
	violations             []string

	// pending stragglers by round, generated at the round's step and
	// released when the round seals.
	stragglers map[uint64][]item

	reports []RoundReport
}

func newSimulation(name string, cfg Config, st *stack) (*simulation, error) {
	if name == "" {
		name = "sim"
	}
	p := buildPlan(cfg)
	w, err := newWorld(cfg, p, st)
	if err != nil {
		return nil, err
	}
	return &simulation{
		name:               name,
		cfg:                cfg,
		plan:               p,
		w:                  w,
		tallies:            make(map[uint64]Tally),
		expectedSums:       make(map[uint64]fixed.Vector),
		acceptedRaw:        make(map[uint64]map[int][]byte),
		rejectedStragglers: make(map[uint64]map[int]bool),
		stragglers:         make(map[uint64][]item),
	}, nil
}

func (s *simulation) shutdown() { s.w.shutdown() }

func (s *simulation) violate(format string, args ...any) {
	s.mu.Lock()
	s.violations = append(s.violations, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

func (s *simulation) tally(round uint64, cat string, n int) {
	s.mu.Lock()
	t, ok := s.tallies[round]
	if !ok {
		t = make(Tally)
		s.tallies[round] = t
	}
	t.add(cat, n)
	s.mu.Unlock()
}

// recordAccept books one accepted contribution: tally, expected sum, and
// the raw bytes later injections may duplicate or replay.
func (s *simulation) recordAccept(round uint64, it item, cat string) {
	s.mu.Lock()
	t, ok := s.tallies[round]
	if !ok {
		t = make(Tally)
		s.tallies[round] = t
	}
	t.add(cat, 1)
	sum, ok := s.expectedSums[round]
	if !ok {
		sum = fixed.NewVector(s.cfg.Dim)
		s.expectedSums[round] = sum
	}
	sum.AddInPlace(it.value)
	raws, ok := s.acceptedRaw[round]
	if !ok {
		raws = make(map[int][]byte)
		s.acceptedRaw[round] = raws
	}
	raws[it.device] = it.raw
	s.mu.Unlock()
}

func (s *simulation) recordReject(round uint64, cat string) {
	s.mu.Lock()
	t, ok := s.tallies[round]
	if !ok {
		t = make(Tally)
		s.tallies[round] = t
	}
	t.add(cat, 1)
	// Garbage never names a tenant (and the unknown-tenant probe names one
	// that does not exist), so those refusals are booked by the shared
	// registry rather than this tenant's manager; every other category is
	// routed into the tenant and refused there.
	if cat == CatRejectedGarbage || cat == CatRejectedUnknownTenant {
		s.observedRoutingRejects++
	} else {
		s.observedRejects++
	}
	s.mu.Unlock()
}

// run drives the plan: for each step r, submit round r's cohort and
// injections, close round r-Overlap (verifying post-close immutability),
// and seal round r-Overlap+1 with its stragglers racing the Seal; then
// drain the remaining open rounds and reconcile the global rejection
// accounting.
func (s *simulation) run() (*Report, error) {
	start := time.Now()
	overlap := s.cfg.Overlap
	for r := 1; r <= s.cfg.Rounds; r++ {
		rp := s.plan.rounds[r-1]
		wave1, wave2, stragglers, err := s.generate(rp)
		if err != nil {
			return nil, err
		}
		s.stragglers[rp.round] = stragglers
		if err := s.submitWave(rp.round, wave1); err != nil {
			return nil, err
		}
		if err := s.submitWave(rp.round, wave2); err != nil {
			return nil, err
		}
		if c := r - overlap; c >= 1 {
			s.closeRound(uint64(c))
		}
		if g := r - overlap + 1; g >= 1 {
			if err := s.sealRound(uint64(g)); err != nil {
				return nil, err
			}
		}
	}
	for g := s.cfg.Rounds - overlap + 2; g <= s.cfg.Rounds; g++ {
		s.closeRound(uint64(g - 1))
		if err := s.sealRound(uint64(g)); err != nil {
			return nil, err
		}
	}
	s.closeRound(uint64(s.cfg.Rounds))
	if s.cfg.Ticketed {
		s.ticketProbes()
	}
	s.reconcileRejections()
	elapsed := time.Since(start)

	totals := make(Tally)
	for _, t := range s.tallies {
		for cat, n := range t {
			totals[cat] += n
		}
	}
	return &Report{
		Scenario:   s.name,
		Config:     s.cfg,
		Rounds:     s.reports,
		Totals:     totals,
		Elapsed:    elapsed,
		Transport:  s.cfg.Transport,
		Violations: s.violations,
	}, nil
}

// generate runs every device's client side for one round: the Glimmer
// validate→blind→sign pipeline for honest, byzantine, and straggling
// devices, plus the planned hostile injections.
func (s *simulation) generate(rp roundPlan) (wave1, wave2, stragglers []item, err error) {
	for d := range rp.devices {
		dp := &rp.devices[d]
		dev := s.w.devices[d]
		switch dp.role {
		case roleDropout:
			s.tally(rp.round, CatDropout, 1)
			continue
		case roleByzantine:
			// The predicate must refuse the byzantine submission inside the
			// enclave — an out-of-range value for the range workload, a bot
			// session's features for botdetect; nothing reaches the service.
			val, priv := dp.value, dp.private
			if s.cfg.Workload == WorkloadRange {
				val = byzantineValue(dp.value)
			}
			if _, cerr := s.contribute(dev, rp.round, val, priv); !errors.Is(cerr, glimmer.ErrRejected) {
				s.violate("round %d device %d: byzantine contribution not refused client-side (err=%v)", rp.round, d, cerr)
				continue
			}
			s.tally(rp.round, CatClientRejected, 1)
			continue
		}
		raw, cerr := s.contribute(dev, rp.round, dp.value, dp.private)
		if cerr != nil {
			return nil, nil, nil, fmt.Errorf("sim: round %d device %d contribute: %w", rp.round, d, cerr)
		}
		switch {
		case dp.role == roleCorruptSig:
			raw[len(raw)-1] ^= 0xFF // flip one signature byte in flight
			wave1 = append(wave1, item{raw: raw, expect: CatRejectedSig, device: d})
		case dp.straggler:
			stragglers = append(stragglers, item{raw: raw, expect: catStragglerRace, device: d, value: dp.value})
		default:
			wave1 = append(wave1, item{raw: raw, expect: CatAccepted, device: d, value: dp.value})
		}
		if dp.duplicate {
			wave2 = append(wave2, item{raw: raw, expect: CatRejectedDup, device: d})
		}
		if dp.garbage != nil {
			wave2 = append(wave2, item{raw: dp.garbage, expect: CatRejectedGarbage, device: d})
		}
		if dp.outOfWindow {
			rawOOW, oerr := s.contribute(dev, rp.bogusRound, dp.value, dp.private)
			if oerr != nil {
				return nil, nil, nil, fmt.Errorf("sim: round %d device %d out-of-window contribute: %w", rp.round, d, oerr)
			}
			wave2 = append(wave2, item{raw: rawOOW, expect: CatRejectedWindow, device: d})
		}
		if dp.replay {
			s.mu.Lock()
			prev := s.acceptedRaw[rp.round-uint64(s.cfg.Overlap)][d]
			s.mu.Unlock()
			if prev == nil {
				s.violate("round %d device %d: planned replay has no accepted source", rp.round, d)
			} else {
				wave2 = append(wave2, item{raw: prev, expect: CatRejectedReplay, device: d})
			}
		}
	}
	return wave1, wave2, stragglers, nil
}

// contribute runs the device's client-side pipeline in the run's
// authentication mode: the Glimmer validates and blinds either way, then
// seals with an ECDSA signature or — on the ticketed fast path — the
// session MAC.
func (s *simulation) contribute(dev *glimmer.Device, round uint64, value fixed.Vector, private []int64) ([]byte, error) {
	if s.cfg.Ticketed {
		tc, err := dev.ContributeTicketed(round, value, private)
		if err != nil {
			return nil, err
		}
		return glimmer.EncodeTicketedContribution(tc), nil
	}
	sc, err := dev.Contribute(round, value, private)
	if err != nil {
		return nil, err
	}
	return glimmer.EncodeSignedContribution(sc), nil
}

// submitWave ships items in batches across the transport pool, then
// reconciles observed outcomes against expectations.
func (s *simulation) submitWave(round uint64, items []item) error {
	if len(items) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	errCh := make(chan error, (len(items)/s.cfg.BatchSize)+1)
	for start := 0; start < len(items); start += s.cfg.BatchSize {
		end := start + s.cfg.BatchSize
		if end > len(items) {
			end = len(items)
		}
		batch := items[start:end]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.submitBatch(round, batch); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

func (s *simulation) submitBatch(round uint64, batch []item) error {
	raws := make([][]byte, len(batch))
	for i, it := range batch {
		raws[i] = it.raw
	}
	accepted, errs, err := s.w.pool.submit(raws)
	if err != nil {
		return fmt.Errorf("sim: transport: %w", err)
	}
	if errs == nil {
		// Tally-only transport (gaas): the batch composition is known, so
		// the accepted count must equal the number of items expected to
		// be accepted; per-item categories are booked from the plan.
		want := 0
		for _, it := range batch {
			if it.expect == CatAccepted {
				want++
			}
		}
		if accepted != want {
			s.violate("round %d: batch tally accepted=%d, plan expects %d", round, accepted, want)
		}
		for _, it := range batch {
			if it.expect == CatAccepted {
				s.recordAccept(round, it, CatAccepted)
			} else {
				s.recordReject(round, it.expect)
			}
		}
		return nil
	}
	for i, it := range batch {
		s.observe(round, it, errs[i])
	}
	return nil
}

// observe books one per-item outcome against its expectation.
func (s *simulation) observe(round uint64, it item, err error) {
	// A corrupted submission is a flipped signature byte on the ECDSA path
	// and a flipped MAC byte on the ticketed one; the service must name the
	// right refusal either way.
	corrupt := service.ErrBadSignature
	if s.cfg.Ticketed {
		corrupt = service.ErrBadMAC
	}
	want := map[string]error{
		CatRejectedSig:    corrupt,
		CatRejectedDup:    service.ErrDuplicate,
		CatRejectedReplay: service.ErrRoundSealed,
		CatRejectedWindow: service.ErrRoundOutOfWindow,
	}
	switch it.expect {
	case CatAccepted:
		if err != nil {
			s.violate("round %d device %d: expected accept, got %v", round, it.device, err)
			return
		}
		s.recordAccept(round, it, CatAccepted)
	case CatRejectedGarbage:
		// Undecodable bytes: any refusal will do, acceptance is the bug.
		if err == nil {
			s.violate("round %d device %d: garbage bytes were accepted", round, it.device)
			return
		}
		s.recordReject(round, CatRejectedGarbage)
	default:
		if wantErr, ok := want[it.expect]; ok {
			if !errors.Is(err, wantErr) {
				s.violate("round %d device %d: expected %s (%v), got %v", round, it.device, it.expect, wantErr, err)
				if err == nil {
					return
				}
			}
			s.recordReject(round, it.expect)
			return
		}
		s.violate("round %d device %d: unknown expectation %q", round, it.device, it.expect)
	}
}

// ticketProbes fires the ticket-specific attacks after the plan has run —
// each against a fresh probe round, so every refusal happens at round
// admission and no probe can create state. In order (the expiry probe
// advances the shared clock, so it must come last):
//
//  1. forged MAC: a genuine ticketed contribution with one tag byte
//     flipped must be refused with ErrBadMAC and must not create its round
//     (ticket issued in round window, MAC broken in flight);
//  2. ticket window: a contribution MAC'd under a deliberately tight
//     ticket ([1,1]) naming a later round must be refused with
//     ErrTicketWindow — the binding that bounds what a stolen session key
//     can pre-sign (a ticket issued for round N cannot endorse round N+k);
//  3. cross-tenant replay: an accepted ticketed contribution respelled for
//     a tenant that does not exist must bounce at the registry without
//     touching this tenant;
//  4. expired ticket: after the clock passes the TTL, the original
//     (wide-window) ticket's MACs are refused with ErrTicketExpired.
//
// Probes submit through the registry directly (like the multi-tenant
// isolation probes) so the exact refusal error is observable on every
// transport; each refusal is booked into the same accounting the final
// reconciliation checks.
func (s *simulation) ticketProbes() {
	probeRound := uint64(s.cfg.Rounds + 1)
	value, private := s.probePayload(probeRound)
	dev := s.w.devices[0]

	// 1. Forged MAC on a fresh round.
	raw, err := s.contribute(dev, probeRound, value, private)
	if err != nil {
		s.violate("ticket probe: contribute: %v", err)
		return
	}
	forged := append([]byte(nil), raw...)
	forged[len(forged)-1] ^= 0x01
	if err := s.w.stack.registry.Ingest(forged); !errors.Is(err, service.ErrBadMAC) {
		s.violate("ticket probe: forged MAC returned %v, want ErrBadMAC", err)
	} else {
		s.recordReject(probeRound, CatRejectedForgedMAC)
	}
	if _, ok := s.w.manager.Lookup(probeRound); ok {
		s.violate("ticket probe: forged MAC created round %d", probeRound)
	}

	// 2. Round outside a tight ticket's window, from its own device (a
	// dealer mask is one-time-use per device and round, so each probe
	// contribution comes from a distinct device). Installing the tight
	// ticket replaces that device's session.
	tightDev := s.w.devices[2]
	req, err := tightDev.TicketRequest(1, 1)
	if err != nil {
		s.violate("ticket probe: tight request: %v", err)
		return
	}
	grant, err := s.w.stack.registry.GrantTicket(req)
	if err != nil {
		s.violate("ticket probe: tight grant: %v", err)
		return
	}
	if err := tightDev.InstallTicket(grant); err != nil {
		s.violate("ticket probe: tight install: %v", err)
		return
	}
	tight, err := s.contribute(tightDev, probeRound, value, private)
	if err != nil {
		s.violate("ticket probe: tight contribute: %v", err)
		return
	}
	if err := s.w.stack.registry.Ingest(tight); !errors.Is(err, service.ErrTicketWindow) {
		s.violate("ticket probe: out-of-window ticket returned %v, want ErrTicketWindow", err)
	} else {
		s.recordReject(probeRound, CatRejectedTicketWindow)
	}

	// 3. Cross-tenant replay: the forged round's genuine bytes respelled
	// for a ghost tenant; the registry must refuse without routing.
	ghost, err := renameContribution(raw, "ghost.invalid")
	if err != nil {
		s.violate("ticket probe: ghost rename: %v", err)
		return
	}
	if err := s.w.stack.registry.Ingest(ghost); !errors.Is(err, service.ErrUnknownTenant) {
		s.violate("ticket probe: ghost tenant returned %v, want ErrUnknownTenant", err)
	} else {
		s.recordReject(probeRound, CatRejectedUnknownTenant)
	}

	// 4. Expired ticket: device 1 still holds the original wide ticket;
	// once the clock passes the TTL its MACs must be refused.
	s.w.clock.Add(simTicketTTL + 1)
	expired, err := s.contribute(s.w.devices[1], probeRound, value, private)
	if err != nil {
		s.violate("ticket probe: expired contribute: %v", err)
		return
	}
	if err := s.w.stack.registry.Ingest(expired); !errors.Is(err, service.ErrTicketExpired) {
		s.violate("ticket probe: expired ticket returned %v, want ErrTicketExpired", err)
	} else {
		s.recordReject(probeRound, CatRejectedExpiredTicket)
	}
	if _, ok := s.w.manager.Lookup(probeRound); ok {
		s.violate("ticket probe: probes created round %d", probeRound)
	}
}

// probePayload builds one honest contribution for the probe round in the
// workload's shape.
func (s *simulation) probePayload(round uint64) (fixed.Vector, []int64) {
	if s.cfg.Workload == WorkloadBotdetect {
		return botdetect.VerdictContribution(), planFeatures(s.cfg.Seed, round, 0, false)
	}
	value := fixed.NewVector(s.cfg.Dim)
	for i := range value {
		value[i] = fixed.FromFloat(0.5)
	}
	return value, nil
}

// sealRound releases the round's stragglers to race Seal, settles the
// cohort, applies dropout corrections (Shamir recovery for dropouts), and
// checks the end-of-round invariants.
func (s *simulation) sealRound(g uint64) error {
	rp := s.plan.rounds[g-1]
	var wg sync.WaitGroup
	for _, it := range s.stragglers[g] {
		wg.Add(1)
		go func(it item) {
			defer wg.Done()
			s.submitStraggler(g, it)
		}(it)
	}
	if err := s.w.manager.Seal(g); err != nil {
		s.violate("round %d: seal failed: %v", g, err)
	}
	wg.Wait()
	delete(s.stragglers, g)

	p, ok := s.w.manager.Lookup(g)
	if !ok {
		s.violate("round %d: no pipeline after seal", g)
		return nil
	}
	dropoutsRecovered := s.correctAbsentees(g, rp, p)
	s.checkInvariants(g, p, dropoutsRecovered)
	return nil
}

// submitStraggler ships one held-back contribution, racing the caller's
// Seal. Either outcome is legal; both feed the invariants.
func (s *simulation) submitStraggler(g uint64, it item) {
	accepted, errs, err := s.w.pool.submit([][]byte{it.raw})
	if err != nil {
		s.violate("round %d straggler %d: transport: %v", g, it.device, err)
		return
	}
	won := false
	switch {
	case errs != nil:
		switch e := errs[0]; {
		case e == nil:
			won = true
		case errors.Is(e, service.ErrRoundSealed):
		default:
			s.violate("round %d straggler %d: unexpected refusal %v", g, it.device, e)
			return
		}
	default:
		won = accepted == 1
	}
	if won {
		s.recordAccept(g, it, CatStragglerAccepted)
		return
	}
	s.recordReject(g, CatStragglerRejected)
	s.mu.Lock()
	if s.rejectedStragglers[g] == nil {
		s.rejectedStragglers[g] = make(map[int]bool)
	}
	s.rejectedStragglers[g][it.device] = true
	s.mu.Unlock()
}

// correctAbsentees removes the uncancelled dealer masks of every device
// whose contribution did not enter the sealed aggregate: dropouts (mask
// reconstructed from Shamir shares, as survivors would), byzantine and
// tampered devices, and stragglers that lost the race.
func (s *simulation) correctAbsentees(g uint64, rp roundPlan, p *service.Pipeline) int {
	s.mu.Lock()
	lost := s.rejectedStragglers[g]
	s.mu.Unlock()
	recovered := 0
	for d := range rp.devices {
		dp := &rp.devices[d]
		var mask fixed.Vector
		switch {
		case dp.role == roleDropout:
			shares := s.w.dropShares[dropKey{g, d}]
			k := s.cfg.ShamirThreshold
			rec, err := blind.RecoverSharedMask(shares[:k], k, s.cfg.Dim)
			if err != nil {
				s.violate("round %d device %d: shamir recovery: %v", g, d, err)
				continue
			}
			if !vectorsEqual(rec, s.w.masks[g][d]) {
				s.violate("round %d device %d: shamir-recovered mask differs from dealt mask", g, d)
			}
			mask = rec
			recovered++
		case dp.role == roleByzantine, dp.role == roleCorruptSig:
			mask = s.w.masks[g][d]
		case dp.straggler && lost[d]:
			mask = s.w.masks[g][d]
		default:
			continue
		}
		if err := p.CorrectDropout(mask); err != nil {
			s.violate("round %d device %d: dropout correction refused: %v", g, d, err)
		}
	}
	return recovered
}

// checkInvariants verifies the sealed round: accepted count matches, and
// the corrected aggregate equals the exact sum of accepted honest values.
func (s *simulation) checkInvariants(g uint64, p *service.Pipeline, dropoutsRecovered int) {
	s.mu.Lock()
	t := s.tallies[g]
	if t == nil {
		t = make(Tally)
		s.tallies[g] = t
	}
	expAccepted := t[CatAccepted] + t[CatStragglerAccepted]
	expSum := s.expectedSums[g]
	s.mu.Unlock()
	if expSum == nil {
		expSum = fixed.NewVector(s.cfg.Dim)
	}

	count := p.Count()
	if count != expAccepted {
		s.violate("round %d: pipeline count %d != observed accepted %d", g, count, expAccepted)
	}
	sum := p.Sum()
	exact := vectorsEqual(sum, expSum)
	if !exact {
		s.violate("round %d: sealed aggregate differs from exact sum of accepted contributions", g)
	}
	s.mu.Lock()
	s.reports = append(s.reports, RoundReport{
		Round:             g,
		Accepted:          count,
		Tally:             t,
		SumDigest:         sumDigest(sum),
		Exact:             exact,
		DropoutsRecovered: dropoutsRecovered,
	})
	s.mu.Unlock()
}

// closeRound closes a sealed round and verifies post-close immutability:
// dropout correction must be refused and the aggregate must not move.
func (s *simulation) closeRound(c uint64) {
	p, ok := s.w.manager.Lookup(c)
	if !ok {
		s.violate("round %d: no pipeline to close", c)
		return
	}
	before := sumDigest(p.Sum())
	s.w.manager.Close(c)
	junk := fixed.NewVector(s.cfg.Dim)
	for i := range junk {
		junk[i] = fixed.FromFloat(1)
	}
	if err := p.CorrectDropout(junk); !errors.Is(err, service.ErrRoundClosed) {
		s.violate("round %d: dropout correction after close returned %v, want ErrRoundClosed", c, err)
	}
	if after := sumDigest(p.Sum()); after != before {
		s.violate("round %d: closed aggregate moved (%s -> %s)", c, before, after)
	}
}

// reconcileRejections checks that every observed refusal is accounted for
// exactly: tenant-level refusals by this tenant's manager- and
// pipeline-level counters, and (when this is the registry's only tenant)
// routing-level refusals by the shared registry counter. Multi-tenant runs
// reconcile the shared counter across tenants in MultiScenario.Run.
func (s *simulation) reconcileRejections() {
	counted := s.tenantRejections()
	s.mu.Lock()
	observed := s.observedRejects
	routing := s.observedRoutingRejects
	s.mu.Unlock()
	if counted != observed {
		s.violate("rejection accounting: manager+pipelines counted %d, simulator observed %d", counted, observed)
	}
	if s.soleTenant {
		if got := s.w.stack.registry.Rejected(); got != routing {
			s.violate("routing accounting: registry counted %d, simulator observed %d", got, routing)
		}
	}
}

// tenantRejections sums this tenant's manager- and pipeline-level refusal
// counters.
func (s *simulation) tenantRejections() int {
	counted := s.w.manager.Rejected()
	for _, r := range s.w.manager.Rounds() {
		if p, ok := s.w.manager.Lookup(r); ok {
			counted += p.Rejected()
		}
	}
	return counted
}

func vectorsEqual(a, b fixed.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sumDigest is a stable 64-bit digest of an aggregate vector for traces.
func sumDigest(v fixed.Vector) string { return v.Digest() }
