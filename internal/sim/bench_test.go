package sim

import "testing"

// BenchmarkSimRound measures end-to-end rounds per second through the real
// stack: enclave validate→blind→sign for every device, concurrent batch
// ingest, seal, and invariant checks. One benchmark iteration is one
// complete aggregation round for the whole fleet.
func BenchmarkSimRound(b *testing.B) {
	overlap := 2
	if b.N < overlap {
		overlap = b.N
	}
	cfg, err := Config{
		Seed:      99,
		Devices:   8,
		Rounds:    b.N,
		Overlap:   overlap,
		Dim:       8,
		Transport: TransportDirect,
	}.withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	st, err := newStack(cfg.Transport, cfg.Rounds+16)
	if err != nil {
		b.Fatal(err)
	}
	defer st.shutdown()
	sim, err := newSimulation("bench", cfg, st)
	if err != nil {
		b.Fatal(err)
	}
	sim.soleTenant = true
	defer sim.shutdown()
	b.ResetTimer()
	rep, err := sim.run()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if !rep.Ok() {
		b.Fatalf("violations: %v", rep.Violations)
	}
	b.ReportMetric(rep.RoundsPerSec(), "rounds/s")
	b.ReportMetric(rep.RoundsPerSec()*float64(cfg.Devices), "contrib/s")
}
