package sim

import (
	"strings"
	"testing"
)

// multiTenantScenario is the canonical heterogeneous workload: two range
// tenants with different fleets and fault mixes plus the botdetect tenant,
// all under fault injection, sharing one stack.
func multiTenantScenario(transport TransportKind) MultiScenario {
	return MultiScenario{
		Name:      "three-tenants",
		Transport: transport,
		Tenants: []Config{
			{
				ServiceName: "maps.glimmers.example",
				Seed:        21, Devices: 8, Rounds: 3, Overlap: 2, Dim: 6,
				Faults: FaultPlan{
					DropoutRate: 0.15, ByzantineRate: 0.10, CorruptSigRate: 0.10,
					DuplicateRate: 0.30, ReplayRate: 0.30, GarbageRate: 0.25, OutOfWindowRate: 0.25,
				},
			},
			{
				ServiceName: "keyboard.glimmers.example",
				Seed:        22, Devices: 6, Rounds: 4, Overlap: 1, Dim: 4,
				Faults: FaultPlan{
					DropoutRate: 0.20, CorruptSigRate: 0.15, DuplicateRate: 0.40, GarbageRate: 0.30,
				},
			},
			{
				ServiceName: "webservice.glimmers.example",
				Workload:    WorkloadBotdetect,
				Seed:        23, Devices: 6, Rounds: 3, Overlap: 1,
				Faults: FaultPlan{
					DropoutRate: 0.15, ByzantineRate: 0.30, // bots
					DuplicateRate: 0.30, GarbageRate: 0.20, OutOfWindowRate: 0.25,
				},
			},
		},
	}
}

// TestMultiTenantIsolation is the acceptance scenario: three tenants
// (including botdetect) under fault injection on one shared stack. Every
// per-tenant invariant must hold despite the interleaved co-tenant traffic
// — no contribution counted in another tenant's sums, per-tenant rejection
// accounting exact — and the cross-tenant probes must all bounce.
func TestMultiTenantIsolation(t *testing.T) {
	rep, err := multiTenantScenario(TransportDirect).Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	for _, v := range rep.Violations {
		t.Errorf("cross-tenant violation: %s", v)
	}
	for _, tr := range rep.Reports {
		for _, v := range tr.Violations {
			t.Errorf("tenant %s violation: %s", tr.Scenario, v)
		}
		for _, rr := range tr.Rounds {
			if !rr.Exact {
				t.Errorf("tenant %s round %d aggregate not exact", tr.Scenario, rr.Round)
			}
		}
	}
	// The botdetect tenant must have exercised its distinguishing fault:
	// bot sessions refused in-enclave.
	bot := rep.Reports[2]
	if bot.Totals[CatClientRejected] == 0 {
		t.Error("botdetect tenant refused no bot sessions; raise ByzantineRate")
	}
	if bot.Totals[CatAccepted] == 0 {
		t.Error("botdetect tenant accepted no human sessions")
	}
}

// TestMultiTenantIsolationOverGaas runs the same scenario through the
// shared gaas front end: per-tenant enclave hosting resolved from the
// tenant-bearing hello, batches routed by the service name they carry.
func TestMultiTenantIsolationOverGaas(t *testing.T) {
	rep, err := multiTenantScenario(TransportPipe).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("cross-tenant violation: %s", v)
		}
		for _, tr := range rep.Reports {
			for _, v := range tr.Violations {
				t.Errorf("tenant %s violation: %s", tr.Scenario, v)
			}
		}
	}
}

// TestMultiTenantDeterministicPerSeed locks the acceptance criterion's
// determinism clause: per-tenant accept/reject/sum traces are a pure
// function of the seeds, concurrent co-tenants notwithstanding.
func TestMultiTenantDeterministicPerSeed(t *testing.T) {
	run := func() []string {
		t.Helper()
		rep, err := multiTenantScenario(TransportDirect).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("violations: %v", rep.Violations)
		}
		traces := make([]string, len(rep.Reports))
		for i, tr := range rep.Reports {
			traces[i] = tr.Trace()
		}
		return traces
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("tenant %d: same seeds produced different traces:\n--- first\n%s--- second\n%s",
				i, first[i], second[i])
		}
		if !strings.Contains(first[i], "rejected/") {
			t.Errorf("tenant %d exercised no service-side rejections:\n%s", i, first[i])
		}
	}
}

// TestBotdetectScenarioSingleTenant pins the botdetect workload in
// isolation: the exact sealed sum of each round is its human-session
// count (the one-bit verdict vector summed over accepted sessions).
func TestBotdetectScenarioSingleTenant(t *testing.T) {
	rep, err := Scenario{
		Name: "botdetect-solo",
		Config: Config{
			ServiceName: "bots.glimmers.example",
			Workload:    WorkloadBotdetect,
			Seed:        31, Devices: 6, Rounds: 3,
			Faults: FaultPlan{ByzantineRate: 0.4},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Totals[CatClientRejected] == 0 {
		t.Error("no bot sessions refused")
	}
	for _, rr := range rep.Rounds {
		if !rr.Exact {
			t.Errorf("round %d human count not exact", rr.Round)
		}
	}
}
