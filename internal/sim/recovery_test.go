package sim

import "testing"

// TestSimCrashRecovery kills a ticketed deployment mid-round and restarts
// it from its state directory: the sealed round and the half-built round
// both come back exact, pre-crash duplicates are still refused, and the
// fleet finishes the round on its pre-crash tickets without re-running a
// single grant exchange. The crash lands with accepted records still
// staged in the group-commit buffer: recovery restores exactly the
// flushed prefix and the staged-lost devices re-send, while an observer
// copy of the state dir taken as Seal returned proves the seal-point
// barrier. Run under -race in CI.
func TestSimCrashRecovery(t *testing.T) {
	rep, err := RunCrashRecovery(t.TempDir(), CrashConfig{Seed: 17, Devices: 6, Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if !rep.Round1Exact || !rep.Round2Exact {
		t.Errorf("exactness: round1=%v round2=%v", rep.Round1Exact, rep.Round2Exact)
	}
	if !rep.SealObserved {
		t.Error("seal-point barrier: observer copy did not see the fully sealed round")
	}
	if rep.StagedLost == 0 {
		t.Error("scenario staged no records across the kill — the loss window went unexercised")
	}
	if rep.RecoverCrash.Records == 0 {
		t.Error("restart replayed no WAL records")
	}
	if rep.RecoverCrash.TruncatedBytes != 7 {
		t.Errorf("truncated %d bytes, want the 7-byte torn tail", rep.RecoverCrash.TruncatedBytes)
	}
	t.Logf("recovery: %+v", rep.RecoverCrash)
	t.Logf("pre-crash=%d staged-lost=%d final=%d tickets=%d",
		rep.PreCrashAccepted, rep.StagedLost, rep.FinalCount, rep.TicketsRestored)
}

// TestSimCrashRecoveryOddCohort: an odd fleet splits unevenly across the
// crash; exactness must not depend on the split.
func TestSimCrashRecoveryOddCohort(t *testing.T) {
	rep, err := RunCrashRecovery(t.TempDir(), CrashConfig{Seed: 23, Devices: 7, Dim: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if !rep.Round1Exact || !rep.Round2Exact {
		t.Errorf("exactness: round1=%v round2=%v", rep.Round1Exact, rep.Round2Exact)
	}
	if !rep.SealObserved {
		t.Error("seal-point barrier: observer copy did not see the fully sealed round")
	}
}
