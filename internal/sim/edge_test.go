package sim

import "testing"

// TestSimEdgeAdversary runs the malicious-edge fault plan: conn-flood,
// slowloris, and a swapped-measurement impostor against one governed TLS
// edge, with an honest fleet sealing an exact round through it all.
func TestSimEdgeAdversary(t *testing.T) {
	rep, err := RunEdgeAdversary(EdgeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if !rep.RoundExact {
		t.Error("round did not seal to the exact sum")
	}
	if rep.FloodRefused == 0 {
		t.Error("conn-flood produced no refusals; edge limits not exercised")
	}
	if !rep.SlowlorisReaped {
		t.Error("slowloris connections were not reaped")
	}
	if !rep.SwappedRefused {
		t.Error("swapped-measurement edge was not refused")
	}
}
