package sim

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/gaas"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
	"glimmers/internal/service"
	"glimmers/internal/tee"
)

// Malicious-edge scenario: a governed TLS front end is attacked at the
// transport layer — the one layer the §4.2 host model says an adversary
// fully controls — while an honest fleet tries to finish a round through
// it. Three attacks run against one server:
//
//   - conn-flood: more connections than MaxConns admits. The surplus must
//     be refused with a shed reply (not a hang), the refusals must land in
//     the edge counters, and the already-admitted honest lanes must keep
//     their slots.
//   - slowloris: connections that start a frame and then trickle, trying
//     to pin enclave slots forever. ReadTimeout must reap them while the
//     idle-but-honest lanes survive.
//   - swapped measurement: a second, genuinely attested edge serving the
//     same service name from a different enclave binary. The fleet's
//     known-hosts pin from first use must refuse it before any private
//     data moves.
//
// The scenario's verdict is the paper's: none of this moves the tenant's
// exact sum. The round seals to precisely the honest fleet's total, with
// every adversarial action accounted for in the right counter.
type EdgeConfig struct {
	Seed    int64
	Devices int
	Dim     int
	// Lanes is the honest fleet's connection count (default 3).
	Lanes int
	// FloodConns is the conn-flood size (default 8). The server's
	// MaxConns is Lanes+SlowlorisConns, so the flood both fills the spare
	// slots and overflows them.
	FloodConns int
	// SlowlorisConns is the number of trickling connections (default 3).
	SlowlorisConns int
}

func (c EdgeConfig) withDefaults() EdgeConfig {
	if c.Devices <= 0 {
		c.Devices = 6
	}
	if c.Dim <= 0 {
		c.Dim = 4
	}
	if c.Lanes <= 0 {
		c.Lanes = 3
	}
	if c.FloodConns <= 0 {
		c.FloodConns = 8
	}
	if c.SlowlorisConns <= 0 {
		c.SlowlorisConns = 3
	}
	return c
}

// EdgeReport is the observable outcome of one malicious-edge run.
type EdgeReport struct {
	// PinnedOnFirstUse records that the fleet's first connection pinned
	// the honest edge's measurement.
	PinnedOnFirstUse bool
	// FloodAdmitted/FloodRefused partition the flood: the spare slots
	// admit, the overflow is refused with ErrShed.
	FloodAdmitted int
	FloodRefused  int
	// SlowlorisReaped records that every trickling connection was
	// reclaimed while the honest lanes stayed connected.
	SlowlorisReaped bool
	// SwappedRefused records that the genuinely attested impostor edge
	// was refused by the known-hosts pin.
	SwappedRefused bool

	RoundExact bool // the round sealed to the honest fleet's exact sum
	FinalCount int

	// Edge is the server's final governance counters.
	Edge gaas.EdgeStats

	// Violations lists every invariant break; empty means the edge held.
	Violations []string
}

func (r *EdgeReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

const edgeServiceName = "edge.example"

// edgeWorld is the honest side: attestation substrate, the tenant's
// service, and a provisioned fleet with round-1 dealer masks.
type edgeWorld struct {
	cfg      EdgeConfig
	as       *tee.AttestationService
	platform *tee.Platform
	svc      *service.Service
	hostCfg  glimmer.Config
	devices  []*glimmer.Device
	values   []fixed.Vector
}

func newEdgeWorld(cfg EdgeConfig) (*edgeWorld, error) {
	as, err := tee.NewAttestationService()
	if err != nil {
		return nil, fmt.Errorf("sim: attestation service: %w", err)
	}
	platform, err := tee.NewPlatform(as)
	if err != nil {
		return nil, fmt.Errorf("sim: platform: %w", err)
	}
	svc, err := service.New(edgeServiceName, as.Root())
	if err != nil {
		return nil, fmt.Errorf("sim: service: %w", err)
	}
	if err := svc.SetPredicate(predicate.UnitRangeCheck("unit-range", cfg.Dim)); err != nil {
		return nil, fmt.Errorf("sim: predicate: %w", err)
	}
	hostCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	w := &edgeWorld{cfg: cfg, as: as, platform: platform, svc: svc, hostCfg: hostCfg}

	seed := fmt.Appendf(nil, "sim/%s/%d/masks/1", edgeServiceName, cfg.Seed)
	masks, err := blind.ZeroSumMasks(seed, cfg.Devices, cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("sim: dealer masks: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w.values = make([]fixed.Vector, cfg.Devices)
	for i := range w.values {
		w.values[i] = fixed.NewVector(cfg.Dim)
		for j := range w.values[i] {
			w.values[i][j] = fixed.FromFloat(rng.Float64())
		}
	}

	glimCfg, err := svc.GlimmerConfig(cfg.Dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		return nil, fmt.Errorf("sim: glimmer config: %w", err)
	}
	w.devices = make([]*glimmer.Device, cfg.Devices)
	for i := range w.devices {
		dev, err := glimmer.NewDevice(platform, glimCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: device %d: %w", i, err)
		}
		svc.Vet(dev.Measurement())
		payload, err := svc.BasePayload()
		if err != nil {
			return nil, err
		}
		payload.Masks = map[uint64][]uint64{1: glimmer.VectorToBits(masks[i])}
		if err := svc.Provision(dev, payload); err != nil {
			return nil, fmt.Errorf("sim: provisioning device %d: %w", i, err)
		}
		w.devices[i] = dev
	}
	return w, nil
}

func (w *edgeWorld) shutdown() {
	for _, dev := range w.devices {
		if dev != nil {
			dev.Destroy()
		}
	}
}

func (w *edgeWorld) expectedSum() fixed.Vector {
	sum := fixed.NewVector(w.cfg.Dim)
	for _, v := range w.values {
		sum.AddInPlace(v)
	}
	return sum
}

// edgeTenant registers the service on a fresh registry (the impostor edge
// reuses this shape with a different enclave config).
func edgeTenant(reg *service.Registry, svc *service.Service, dim int, hostCfg glimmer.Config) (*service.Tenant, error) {
	return reg.AddTenant(service.TenantConfig{
		Name:           edgeServiceName,
		Verify:         svc.ContributionVerifyKey(),
		Dim:            dim,
		Workers:        2,
		Shards:         2,
		ExpectedCohort: 16,
		MaxRounds:      4,
		RoundWindow:    4,
		Glimmer:        hostCfg,
	})
}

// serveEdge builds a governed TLS edge over the registry and starts it on
// a fresh loopback listener.
func serveEdge(platform *tee.Platform, reg *service.Registry, maxConns int, readTimeout time.Duration) (*gaas.Server, net.Listener, error) {
	tlsConf, err := gaas.SelfSignedServerTLS("127.0.0.1")
	if err != nil {
		return nil, nil, fmt.Errorf("sim: edge TLS: %w", err)
	}
	server := gaas.New(gaas.ServerConfig{
		Platform:     platform,
		Hosts:        reg,
		Ingest:       reg,
		TLS:          tlsConf,
		ReadTimeout:  readTimeout,
		WriteTimeout: 2 * time.Second,
		// Generous: the honest lanes idle through the attack phases and
		// must not be reaped. Slowloris is ReadTimeout's job — a started
		// frame, not an idle connection.
		IdleTimeout: 30 * time.Second,
		MaxConns:    maxConns,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("sim: listen: %w", err)
	}
	go func() { _ = server.Serve(ln) }()
	return server, ln, nil
}

// pollActiveConns waits for the server's active-connection count to drop
// to want.
func pollActiveConns(server *gaas.Server, want int, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if server.Stats().ActiveConns == want {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return server.Stats().ActiveConns == want
}

// RunEdgeAdversary drives the malicious-edge scenario. Setup failures
// return an error; invariant breaks are booked in the report's
// Violations.
func RunEdgeAdversary(cfg EdgeConfig) (*EdgeReport, error) {
	cfg = cfg.withDefaults()
	rep := &EdgeReport{}
	w, err := newEdgeWorld(cfg)
	if err != nil {
		return nil, err
	}
	defer w.shutdown()
	ctx := context.Background()

	// The honest edge: capacity for the fleet's lanes plus exactly the
	// slowloris pool, so the flood overflows and the slowloris conns all
	// get slots to trickle in.
	maxConns := cfg.Lanes + cfg.SlowlorisConns
	reg := service.NewRegistry(8)
	tenant, err := edgeTenant(reg, w.svc, cfg.Dim, w.hostCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: tenant: %w", err)
	}
	manager := tenant.Manager()
	for _, dev := range w.devices {
		manager.Vet(dev.Measurement())
	}
	const readTimeout = 250 * time.Millisecond
	server, ln, err := serveEdge(w.platform, reg, maxConns, readTimeout)
	if err != nil {
		return nil, err
	}
	defer server.Shutdown()
	defer ln.Close()
	addr := ln.Addr().String()

	meas, err := server.MeasurementFor(edgeServiceName)
	if err != nil {
		return nil, fmt.Errorf("sim: edge measurement: %w", err)
	}
	// The fleet's verifier checks genuineness only; pinning is the
	// known-hosts store's job, shared across the fleet like a provisioned
	// config.
	verifier := &tee.QuoteVerifier{Root: w.as.Root()}
	verifier.Allow(meas)
	known := gaas.NewKnownHosts()
	dialCfg := gaas.DialConfig{
		Service:          edgeServiceName,
		Verifier:         verifier,
		KnownHosts:       known,
		TLS:              gaas.InsecureClientTLS(),
		DialTimeout:      5 * time.Second,
		HandshakeTimeout: 5 * time.Second,
		CallTimeout:      10 * time.Second,
	}

	// ----- Honest lanes connect first (and TOFU-pin the edge).
	clients := make([]*gaas.Client, cfg.Lanes)
	for i := range clients {
		c, err := gaas.DialContext(ctx, addr, dialCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}
	pinned, ok := known.Lookup(edgeServiceName)
	rep.PinnedOnFirstUse = ok && pinned == meas && known.Len() == 1
	if !rep.PinnedOnFirstUse {
		rep.violate("first use did not pin the edge measurement")
	}

	// ----- Conn-flood: FloodConns sessionless connections, each pushing
	// a garbage batch. The spare slots admit (and the garbage is refused
	// at the registry, not the edge); the overflow is shed with a typed
	// reply.
	floodCfg := gaas.DialConfig{
		NoSession:        true,
		TLS:              gaas.InsecureClientTLS(),
		DialTimeout:      5 * time.Second,
		HandshakeTimeout: 5 * time.Second,
		CallTimeout:      5 * time.Second,
	}
	garbage := [][]byte{[]byte("edge-flood: not a contribution")}
	var floodClients []*gaas.Client
	for i := 0; i < cfg.FloodConns; i++ {
		c, err := gaas.DialContext(ctx, addr, floodCfg)
		if err != nil {
			rep.violate("flood conn %d failed to dial: %v", i, err)
			continue
		}
		accepted, _, err := c.SubmitBatch(garbage)
		switch {
		case errors.Is(err, gaas.ErrShed):
			rep.FloodRefused++
			_ = c.Close()
		case err == nil && accepted == 0:
			rep.FloodAdmitted++
			floodClients = append(floodClients, c)
		default:
			rep.violate("flood conn %d: accepted=%d err=%v", i, accepted, err)
			_ = c.Close()
		}
	}
	if want := maxConns - cfg.Lanes; rep.FloodAdmitted != want {
		rep.violate("flood admitted %d conns, want %d", rep.FloodAdmitted, want)
	}
	if want := cfg.FloodConns - (maxConns - cfg.Lanes); rep.FloodRefused != want {
		rep.violate("flood refused %d conns, want %d", rep.FloodRefused, want)
	}
	if got := server.Stats().RefusedMaxConns; got != int64(rep.FloodRefused) {
		rep.violate("RefusedMaxConns = %d, want %d", got, rep.FloodRefused)
	}
	for _, c := range floodClients {
		_ = c.Close()
	}
	if !pollActiveConns(server, cfg.Lanes, 5*time.Second) {
		rep.violate("flood conns not released: %d active, want %d",
			server.Stats().ActiveConns, cfg.Lanes)
	}

	// ----- Slowloris: start a frame on every spare slot and trickle one
	// byte at a time. The read deadline is armed when the frame starts
	// and is not extended by progress, so the trickle cannot help.
	slowDone := make(chan struct{})
	var slowConns []net.Conn
	for i := 0; i < cfg.SlowlorisConns; i++ {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			rep.violate("slowloris conn %d dial: %v", i, err)
			continue
		}
		tc := tls.Client(raw, gaas.InsecureClientTLS())
		if err := tc.Handshake(); err != nil {
			rep.violate("slowloris conn %d handshake: %v", i, err)
			raw.Close()
			continue
		}
		slowConns = append(slowConns, tc)
		if _, err := tc.Write([]byte{0, 0, 0, 64}); err != nil {
			rep.violate("slowloris conn %d prefix: %v", i, err)
			continue
		}
		go func(c net.Conn) {
			for {
				select {
				case <-slowDone:
					return
				case <-time.After(50 * time.Millisecond):
				}
				if _, err := c.Write([]byte{0xAA}); err != nil {
					return // reaped
				}
			}
		}(tc)
	}
	rep.SlowlorisReaped = pollActiveConns(server, cfg.Lanes, 5*time.Second)
	if !rep.SlowlorisReaped {
		rep.violate("slowloris conns not reaped: %d active, want %d",
			server.Stats().ActiveConns, cfg.Lanes)
	}
	close(slowDone)
	for _, c := range slowConns {
		_ = c.Close()
	}

	// ----- Swapped measurement: a second edge, genuinely attested on the
	// same platform, serving the same service name from a different
	// enclave binary. Its measurement is even on the verifier's allowlist
	// — the host could have talked some authority into vetting it. Only
	// the fleet's first-use pin stands between it and the session.
	evilSvc, err := service.New(edgeServiceName, w.as.Root())
	if err != nil {
		return nil, fmt.Errorf("sim: impostor service: %w", err)
	}
	if err := evilSvc.SetPredicate(predicate.UnitRangeCheck("unit-range", cfg.Dim+1)); err != nil {
		return nil, fmt.Errorf("sim: impostor predicate: %w", err)
	}
	evilHostCfg, err := evilSvc.GlimmerConfig(cfg.Dim+1, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		return nil, err
	}
	evilReg := service.NewRegistry(8)
	if _, err := edgeTenant(evilReg, evilSvc, cfg.Dim+1, evilHostCfg); err != nil {
		return nil, fmt.Errorf("sim: impostor tenant: %w", err)
	}
	evilServer, evilLn, err := serveEdge(w.platform, evilReg, 0, readTimeout)
	if err != nil {
		return nil, err
	}
	defer evilServer.Shutdown()
	defer evilLn.Close()
	evilMeas, err := evilServer.MeasurementFor(edgeServiceName)
	if err != nil {
		return nil, fmt.Errorf("sim: impostor measurement: %w", err)
	}
	if evilMeas == meas {
		rep.violate("impostor enclave measures identically; scenario degenerate")
	}
	verifier.Allow(evilMeas)
	if _, err := gaas.DialContext(ctx, evilLn.Addr().String(), dialCfg); errors.Is(err, gaas.ErrMeasurementMismatch) {
		rep.SwappedRefused = true
	} else {
		rep.violate("impostor edge dial returned %v, want ErrMeasurementMismatch", err)
	}
	if got, _ := known.Lookup(edgeServiceName); got != meas {
		rep.violate("impostor dial disturbed the known-hosts pin")
	}

	// ----- Through all of that, the honest fleet finishes its round on
	// the lanes it has held the whole time.
	for i, dev := range w.devices {
		sc, err := dev.Contribute(1, w.values[i], nil)
		if err != nil {
			return nil, fmt.Errorf("sim: device %d contribute: %w", i, err)
		}
		raw := glimmer.EncodeSignedContribution(sc)
		accepted, _, err := clients[i%cfg.Lanes].SubmitBatch([][]byte{raw})
		if err != nil {
			rep.violate("device %d submit: %v", i, err)
		} else if accepted != 1 {
			rep.violate("device %d submit accepted %d, want 1", i, accepted)
		}
	}
	if err := manager.Seal(1); err != nil {
		return nil, fmt.Errorf("sim: seal: %w", err)
	}
	p, ok := manager.Lookup(1)
	if !ok {
		rep.violate("round 1 vanished")
		return rep, nil
	}
	rep.FinalCount = p.Count()
	rep.RoundExact = vectorsEqual(p.Sum(), w.expectedSum())
	if !rep.RoundExact {
		rep.violate("round 1 aggregate differs from the honest fleet's exact sum")
	}
	if rep.FinalCount != cfg.Devices {
		rep.violate("round 1 cohort = %d, want %d", rep.FinalCount, cfg.Devices)
	}

	// Exact accounting: the round itself saw zero rejections (no
	// adversarial bytes ever parsed as a contribution); the admitted
	// flood's garbage was refused at the registry, one count per frame;
	// the edge counters hold the flood overflow and nothing else.
	if got := p.Rejected(); got != 0 {
		rep.violate("round rejected = %d, want 0", got)
	}
	if got := manager.Rejected(); got != 0 {
		rep.violate("manager rejected = %d, want 0", got)
	}
	if got := reg.Rejected(); got != rep.FloodAdmitted {
		rep.violate("registry rejected = %d, want %d (admitted flood garbage)", got, rep.FloodAdmitted)
	}
	rep.Edge = server.Stats()
	if rep.Edge.RefusedMaxConns != int64(rep.FloodRefused) {
		rep.violate("final RefusedMaxConns = %d, want %d", rep.Edge.RefusedMaxConns, rep.FloodRefused)
	}
	if rep.Edge.RefusedPerIP != 0 || rep.Edge.ShedBatches != 0 {
		rep.violate("unexpected edge refusals: %+v", rep.Edge)
	}
	return rep, nil
}
