package sim

import (
	"flag"
	"strings"
	"testing"
)

// Long-mode knobs: `go test ./internal/sim -sim.devices=64 -sim.rounds=12`
// scales the soak past the defaults; `-short` shrinks it for smoke runs.
var (
	soakDevices = flag.Int("sim.devices", 0, "soak fleet size (0 = suite default)")
	soakRounds  = flag.Int("sim.rounds", 0, "soak round count (0 = suite default)")
)

func soakScale(t *testing.T) (devices, rounds int) {
	devices, rounds = 14, 4
	if testing.Short() {
		devices, rounds = 8, 3
	}
	if *soakDevices > 0 {
		devices = *soakDevices
	}
	if *soakRounds > 0 {
		rounds = *soakRounds
	}
	t.Logf("soak scale: %d devices × %d rounds", devices, rounds)
	return devices, rounds
}

// fullFaultPlan enables every fault mechanism the simulator knows.
func fullFaultPlan() FaultPlan {
	return FaultPlan{
		DropoutRate:     0.10,
		ByzantineRate:   0.08,
		CorruptSigRate:  0.08,
		DuplicateRate:   0.25,
		ReplayRate:      0.25,
		GarbageRate:     0.20,
		OutOfWindowRate: 0.20,
		Stragglers:      1,
	}
}

// TestSimSoakAllFaults is the soak: the full stack under every fault type
// at once, overlapping rounds, with all end-of-round invariants enforced.
// Run under -race in CI.
func TestSimSoakAllFaults(t *testing.T) {
	devices, rounds := soakScale(t)
	rep, err := Scenario{
		Name: "soak-all-faults",
		Config: Config{
			Seed:    42,
			Devices: devices,
			Rounds:  rounds,
			Overlap: 2,
			Dim:     8,
			Faults:  fullFaultPlan(),
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	t.Log(rep.Trace())
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if len(rep.Rounds) != rounds {
		t.Fatalf("sealed %d rounds, want %d", len(rep.Rounds), rounds)
	}
	faultCats := 0
	for cat, n := range rep.Totals {
		if cat != CatAccepted && cat != CatStragglerAccepted && n > 0 {
			faultCats++
		}
	}
	if faultCats < 3 {
		t.Errorf("soak exercised only %d fault categories (%v), want >= 3 — enlarge the fleet or rates", faultCats, rep.Totals)
	}
	for _, rr := range rep.Rounds {
		if !rr.Exact {
			t.Errorf("round %d aggregate not exact", rr.Round)
		}
	}
}

// TestSimReproducibleTrace locks the determinism contract: same seed, same
// accept/reject/sum trace. (Stragglers race Seal by design, so the plan
// here has none.)
func TestSimReproducibleTrace(t *testing.T) {
	cfg := Config{
		Seed:    7,
		Devices: 8,
		Rounds:  3,
		Overlap: 2,
		Dim:     6,
		Faults: FaultPlan{
			DropoutRate:     0.15,
			ByzantineRate:   0.10,
			CorruptSigRate:  0.10,
			DuplicateRate:   0.30,
			ReplayRate:      0.30,
			GarbageRate:     0.25,
			OutOfWindowRate: 0.25,
		},
	}
	run := func() string {
		t.Helper()
		rep, err := Scenario{Name: "repro", Config: cfg}.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("invariant violation: %s", v)
		}
		return rep.Trace()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("same seed produced different traces:\n--- first\n%s--- second\n%s", first, second)
	}
	if !strings.Contains(first, "rejected/") {
		t.Fatalf("reproducibility plan injected no faults:\n%s", first)
	}

	other := cfg
	other.Seed = 8
	rep, err := Scenario{Name: "repro-other-seed", Config: other}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace() == first {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSimTransportsAgree runs the same seeded plan over every transport.
// The transport must not change the outcome: the in-process path, the gaas
// frame protocol over net.Pipe, loopback TCP, and TLS-wrapped loopback TCP
// all yield the same trace.
func TestSimTransportsAgree(t *testing.T) {
	cfg := Config{
		Seed:    11,
		Devices: 6,
		Rounds:  3,
		Overlap: 1,
		Dim:     4,
		Faults: FaultPlan{
			DropoutRate:     0.15,
			CorruptSigRate:  0.15,
			DuplicateRate:   0.30,
			ReplayRate:      0.40,
			GarbageRate:     0.25,
			OutOfWindowRate: 0.40,
		},
	}
	traces := make(map[TransportKind]string)
	for _, tr := range []TransportKind{TransportDirect, TransportPipe, TransportTCP, TransportTLS} {
		c := cfg
		c.Transport = tr
		rep, err := Scenario{Name: "transport-" + tr.String(), Config: c}.Run()
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%v: invariant violation: %s", tr, v)
		}
		traces[tr] = rep.Trace()
	}
	if traces[TransportPipe] != traces[TransportDirect] {
		t.Errorf("pipe trace differs from direct:\n--- direct\n%s--- pipe\n%s", traces[TransportDirect], traces[TransportPipe])
	}
	if traces[TransportTCP] != traces[TransportDirect] {
		t.Errorf("tcp trace differs from direct:\n--- direct\n%s--- tcp\n%s", traces[TransportDirect], traces[TransportTCP])
	}
	if traces[TransportTLS] != traces[TransportDirect] {
		t.Errorf("tls trace differs from direct:\n--- direct\n%s--- tls\n%s", traces[TransportDirect], traces[TransportTLS])
	}
	// The plan must actually exercise the lifecycle rejections whose
	// tally-only booking this test exists to cover.
	for _, cat := range []string{CatRejectedReplay, CatRejectedWindow} {
		if !strings.Contains(traces[TransportDirect], cat) {
			t.Errorf("plan injected no %s faults; transports not meaningfully compared", cat)
		}
	}
}

// TestSimStragglersOverGaas drives the tally-only straggler resolution:
// over the gaas transport the straggler's fate is read from a singleton
// batch's accepted/rejected counts rather than a per-item error, and the
// invariants must hold for either race outcome.
func TestSimStragglersOverGaas(t *testing.T) {
	rep, err := Scenario{
		Name: "stragglers-pipe",
		Config: Config{
			Seed:      5,
			Devices:   6,
			Rounds:    3,
			Overlap:   2,
			Dim:       4,
			Transport: TransportPipe,
			Faults:    FaultPlan{DropoutRate: 0.2, Stragglers: 2},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if got := rep.Totals[CatStragglerAccepted] + rep.Totals[CatStragglerRejected]; got == 0 {
		t.Error("no straggler outcomes observed")
	}
}

// TestSimScenarioSpec is the scenario API in its intended shape: a fresh
// workload is a short literal, and Run does the rest.
func TestSimScenarioSpec(t *testing.T) {
	rep, err := Scenario{
		Name: "churny-evening",
		Config: Config{
			Seed:    2024,
			Devices: 6,
			Rounds:  2,
			Dim:     4,
			Faults:  FaultPlan{DropoutRate: 0.3, Stragglers: 1},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations: %v", rep.Violations)
	}
}
