package blind

import (
	"crypto/rand"
	"errors"
	"fmt"
)

// Shamir secret sharing over GF(256), byte-wise: each byte of the secret is
// shared with an independent random polynomial of degree k-1. Any k shares
// reconstruct the secret; fewer reveal nothing. Used for dropout recovery
// here and by the consortium (threshold trusted-third-party) realization of
// a Glimmer in internal/consortium.

// Share is one participant's fragment of a secret.
type Share struct {
	// X is the participant's evaluation point (1-based; 0 is the secret).
	X byte
	// Data holds one polynomial evaluation per secret byte.
	Data []byte
}

// GF(256) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
// via log/exp tables built at package init.
var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 0x03
		x = gfMulNoTable(x, 3)
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMulNoTable(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("blind: inverse of zero in GF(256)")
	}
	return gfExp[255-int(gfLog[a])]
}

// SplitSecret shares a secret among n participants with threshold k.
func SplitSecret(secret []byte, n, k int) ([]Share, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("blind: invalid threshold %d of %d", k, n)
	}
	if n > 255 {
		return nil, fmt.Errorf("blind: at most 255 shares, got %d", n)
	}
	if len(secret) == 0 {
		return nil, errors.New("blind: empty secret")
	}
	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{X: byte(i + 1), Data: make([]byte, len(secret))}
	}
	coeffs := make([]byte, k-1)
	for byteIdx, s := range secret {
		if _, err := rand.Read(coeffs); err != nil {
			return nil, fmt.Errorf("blind: share randomness: %w", err)
		}
		for i := range shares {
			x := shares[i].X
			// Evaluate s + c1*x + c2*x^2 + ... via Horner from the top.
			y := byte(0)
			for j := len(coeffs) - 1; j >= 0; j-- {
				y = gfMul(y, x) ^ coeffs[j]
			}
			y = gfMul(y, x) ^ s
			shares[i].Data[byteIdx] = y
		}
	}
	return shares, nil
}

// CombineShares reconstructs a secret from at least k distinct shares using
// Lagrange interpolation at x=0.
func CombineShares(shares []Share, k int) ([]byte, error) {
	if len(shares) < k {
		return nil, fmt.Errorf("blind: need %d shares, have %d", k, len(shares))
	}
	use := shares[:k]
	seen := make(map[byte]bool, k)
	length := -1
	for _, s := range use {
		if s.X == 0 {
			return nil, errors.New("blind: share with x=0")
		}
		if seen[s.X] {
			return nil, fmt.Errorf("blind: duplicate share x=%d", s.X)
		}
		seen[s.X] = true
		if length == -1 {
			length = len(s.Data)
		} else if len(s.Data) != length {
			return nil, errors.New("blind: shares have differing lengths")
		}
	}
	secret := make([]byte, length)
	for i := range use {
		// Lagrange basis coefficient at x=0: prod_{j!=i} x_j / (x_j - x_i).
		num, den := byte(1), byte(1)
		for j := range use {
			if i == j {
				continue
			}
			num = gfMul(num, use[j].X)
			den = gfMul(den, use[j].X^use[i].X) // subtraction is XOR
		}
		coeff := gfMul(num, gfInv(den))
		for b := 0; b < length; b++ {
			secret[b] ^= gfMul(coeff, use[i].Data[b])
		}
	}
	return secret, nil
}
