// Package blind implements the blinding substrate for secure aggregation
// (Figure 1c of the paper): clients add secret masks to their fixed-point
// contributions so the service sees only noise per client, yet the masks
// cancel in the aggregate and the service recovers the exact sum.
//
// Two constructions are provided, matching the two the paper invokes:
//
//   - Dealer masks (§3): a trusted blinding service — itself hostable in an
//     enclave — draws N random vectors that sum to zero and distributes one
//     to each client's Glimmer, encrypted to a key provisioned via
//     attestation.
//   - Pairwise masks (Bonawitz et al. [3]): every pair of clients expands a
//     shared DH secret into a mask stream; client i adds the stream for
//     peers above it and subtracts for peers below, so all streams cancel
//     pairwise with no trusted dealer. Dropouts are survivable: a dropped
//     client's masks can be reconstructed from pairwise seeds, or its DH
//     key recovered from Shamir shares held by survivors.
package blind

import (
	"encoding/binary"
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/xcrypto"
)

// ZeroSumMasks draws n mask vectors of the given dimension that sum to zero
// in the fixed-point ring. The seed makes the dealer deterministic for a
// given provisioning round; a dealer enclave feeds it hardware randomness.
func ZeroSumMasks(seed []byte, n, dim int) ([]fixed.Vector, error) {
	if n < 1 {
		return nil, fmt.Errorf("blind: need at least one mask, got %d", n)
	}
	if dim < 1 {
		return nil, fmt.Errorf("blind: dimension must be positive, got %d", dim)
	}
	prg := xcrypto.NewPRG(append([]byte("glimmers/blind/dealer/v1\x00"), seed...))
	masks := make([]fixed.Vector, n)
	for i := range masks {
		masks[i] = fixed.NewVector(dim)
	}
	// Draw the first n-1 masks at random; the last is the negated sum, so
	// the total is identically zero.
	for d := 0; d < dim; d++ {
		var sum fixed.Ring
		for i := 0; i < n-1; i++ {
			m := fixed.Ring(prg.Uint64())
			masks[i][d] = m
			sum += m
		}
		masks[n-1][d] = -sum
	}
	return masks, nil
}

// Apply returns contribution + mask: the blinded vector that is safe to
// reveal, because without the mask it is indistinguishable from random.
func Apply(contribution, mask fixed.Vector) (fixed.Vector, error) {
	if len(contribution) != len(mask) {
		return nil, fmt.Errorf("blind: contribution dim %d != mask dim %d", len(contribution), len(mask))
	}
	out := contribution.Clone()
	out.AddInPlace(mask)
	return out, nil
}

// Remove returns blinded - mask, recovering the original contribution. Used
// in tests and in dropout recovery, where a reconstructed mask is removed
// from the aggregate.
func Remove(blinded, mask fixed.Vector) (fixed.Vector, error) {
	if len(blinded) != len(mask) {
		return nil, fmt.Errorf("blind: blinded dim %d != mask dim %d", len(blinded), len(mask))
	}
	out := blinded.Clone()
	out.SubInPlace(mask)
	return out, nil
}

// maskFromSeed expands a pairwise seed into a mask vector for a round.
func maskFromSeed(seed []byte, round uint64, dim int) fixed.Vector {
	var roundBytes [8]byte
	binary.BigEndian.PutUint64(roundBytes[:], round)
	material := make([]byte, 0, len(seed)+8+32)
	material = append(material, []byte("glimmers/blind/pairwise/v1\x00")...)
	material = append(material, seed...)
	material = append(material, roundBytes[:]...)
	prg := xcrypto.NewPRG(material)
	v := fixed.NewVector(dim)
	for d := range v {
		v[d] = fixed.Ring(prg.Uint64())
	}
	return v
}
