package blind

import (
	"bytes"
	"testing"
	"testing/quick"

	"glimmers/internal/fixed"
	"glimmers/internal/xcrypto"
)

func TestZeroSumMasksCancel(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 101} {
		masks, err := ZeroSumMasks([]byte("round-1"), n, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(masks) != n {
			t.Fatalf("got %d masks, want %d", len(masks), n)
		}
		sum := fixed.NewVector(5)
		for _, m := range masks {
			sum.AddInPlace(m)
		}
		for d, v := range sum {
			if v != 0 {
				t.Fatalf("n=%d: mask sum at dim %d = %d, want 0", n, d, v)
			}
		}
	}
}

func TestZeroSumMasksDeterministicPerSeed(t *testing.T) {
	a, err := ZeroSumMasks([]byte("seed"), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ZeroSumMasks([]byte("seed"), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("same seed produced different masks")
			}
		}
	}
	c, err := ZeroSumMasks([]byte("other"), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a[0][0] == c[0][0] && a[0][1] == c[0][1] && a[0][2] == c[0][2] {
		t.Fatal("different seeds produced identical first mask")
	}
}

func TestZeroSumMasksRejectsBadParams(t *testing.T) {
	if _, err := ZeroSumMasks(nil, 0, 3); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ZeroSumMasks(nil, 3, 0); err == nil {
		t.Error("dim=0 accepted")
	}
}

func TestApplyRemoveRoundTrip(t *testing.T) {
	contribution := fixed.FromFloats([]float64{0.1, 0.9, 0.5})
	masks, err := ZeroSumMasks([]byte("s"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	blinded, err := Apply(contribution, masks[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := Remove(blinded, masks[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range contribution {
		if back[i] != contribution[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if _, err := Apply(contribution, fixed.NewVector(2)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Remove(blinded, fixed.NewVector(2)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestDealerAggregationEndToEnd(t *testing.T) {
	// Figure 1c: N clients blind contributions; the aggregate of blinded
	// values equals the aggregate of true values exactly.
	const n, dim = 8, 4
	masks, err := ZeroSumMasks([]byte("epoch-7"), n, dim)
	if err != nil {
		t.Fatal(err)
	}
	trueSum := fixed.NewVector(dim)
	blindSum := fixed.NewVector(dim)
	prg := xcrypto.NewPRG([]byte("contributions"))
	for i := 0; i < n; i++ {
		contribution := fixed.NewVector(dim)
		for d := range contribution {
			contribution[d] = fixed.FromFloat(prg.Float64())
		}
		trueSum.AddInPlace(contribution)
		blinded, err := Apply(contribution, masks[i])
		if err != nil {
			t.Fatal(err)
		}
		blindSum.AddInPlace(blinded)
	}
	for d := range trueSum {
		if trueSum[d] != blindSum[d] {
			t.Fatalf("aggregate mismatch at dim %d", d)
		}
	}
}

func newRoster(t *testing.T, n int) ([]*xcrypto.DHKey, [][]byte) {
	t.Helper()
	keys := make([]*xcrypto.DHKey, n)
	roster := make([][]byte, n)
	for i := range keys {
		k, err := xcrypto.NewDHKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
		roster[i] = k.PublicBytes()
	}
	return keys, roster
}

func newParties(t *testing.T, n int) []*Party {
	t.Helper()
	keys, roster := newRoster(t, n)
	parties := make([]*Party, n)
	for i := range parties {
		p, err := NewParty(i, keys[i], roster)
		if err != nil {
			t.Fatal(err)
		}
		parties[i] = p
	}
	return parties
}

func TestPairwiseMasksCancel(t *testing.T) {
	const n, dim = 6, 5
	parties := newParties(t, n)
	sum := fixed.NewVector(dim)
	for _, p := range parties {
		mask, err := p.Mask(dim, 42)
		if err != nil {
			t.Fatal(err)
		}
		sum.AddInPlace(mask)
	}
	for d, v := range sum {
		if v != 0 {
			t.Fatalf("pairwise mask sum at dim %d = %d, want 0", d, v)
		}
	}
}

func TestPairwiseMasksDifferPerRound(t *testing.T) {
	parties := newParties(t, 3)
	m1, err := parties[0].Mask(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := parties[0].Mask(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for d := range m1 {
		if m1[d] != m2[d] {
			same = false
		}
	}
	if same {
		t.Fatal("masks identical across rounds — replay across epochs possible")
	}
}

func TestPairwiseSeedSymmetry(t *testing.T) {
	parties := newParties(t, 4)
	s01, err := parties[0].SeedWith(1)
	if err != nil {
		t.Fatal(err)
	}
	s10, err := parties[1].SeedWith(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s01, s10) {
		t.Fatal("pairwise seeds are not symmetric")
	}
	s02, err := parties[0].SeedWith(2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s01, s02) {
		t.Fatal("distinct pairs share a seed")
	}
	if _, err := parties[0].SeedWith(0); err == nil {
		t.Error("self-seed accepted")
	}
	if _, err := parties[0].SeedWith(9); err == nil {
		t.Error("out-of-roster peer accepted")
	}
}

func TestNewPartyValidation(t *testing.T) {
	keys, roster := newRoster(t, 3)
	if _, err := NewParty(5, keys[0], roster); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NewParty(1, keys[0], roster); err == nil {
		t.Error("mismatched roster key accepted")
	}
}

func TestDropoutRecoveryViaRevealedSeeds(t *testing.T) {
	// Party 2 drops after contributing its blinded value never arrives.
	// Survivors reveal their seeds with party 2; the aggregator recomputes
	// party 2's mask and the surviving sum unmasks exactly.
	const n, dim, round = 5, 3, 9
	parties := newParties(t, n)
	const dropped = 2

	prg := xcrypto.NewPRG([]byte("xs"))
	blindSum := fixed.NewVector(dim)
	trueSumSurvivors := fixed.NewVector(dim)
	for i, p := range parties {
		if i == dropped {
			continue
		}
		contribution := fixed.NewVector(dim)
		for d := range contribution {
			contribution[d] = fixed.FromFloat(prg.Float64())
		}
		trueSumSurvivors.AddInPlace(contribution)
		mask, err := p.Mask(dim, round)
		if err != nil {
			t.Fatal(err)
		}
		blinded, err := Apply(contribution, mask)
		if err != nil {
			t.Fatal(err)
		}
		blindSum.AddInPlace(blinded)
	}
	// Sum of survivor masks = -mask(dropped), so blindSum = trueSum -
	// mask(dropped). Reconstruct the dropped mask and add it back.
	seeds := make(map[int][]byte)
	for i, p := range parties {
		if i == dropped {
			continue
		}
		s, err := p.SeedWith(dropped)
		if err != nil {
			t.Fatal(err)
		}
		seeds[i] = s
	}
	recovered, err := RecoverMask(dropped, n, dim, round, seeds)
	if err != nil {
		t.Fatal(err)
	}
	blindSum.AddInPlace(recovered)
	for d := range trueSumSurvivors {
		if blindSum[d] != trueSumSurvivors[d] {
			t.Fatalf("recovered aggregate mismatch at dim %d", d)
		}
	}
}

func TestRecoverMaskRequiresAllSurvivors(t *testing.T) {
	parties := newParties(t, 4)
	seeds := map[int][]byte{}
	s, err := parties[0].SeedWith(2)
	if err != nil {
		t.Fatal(err)
	}
	seeds[0] = s
	if _, err := RecoverMask(2, 4, 3, 1, seeds); err == nil {
		t.Fatal("recovery with missing seeds accepted")
	}
	if _, err := RecoverMask(9, 4, 3, 1, seeds); err == nil {
		t.Fatal("out-of-range dropped index accepted")
	}
}

func TestShamirRoundTrip(t *testing.T) {
	secret := []byte("the dropped client's X25519 key!")
	shares, err := SplitSecret(secret, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 5 {
		t.Fatalf("got %d shares", len(shares))
	}
	// Any 3 shares reconstruct.
	got, err := CombineShares([]Share{shares[4], shares[0], shares[2]}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("reconstructed %q, want %q", got, secret)
	}
}

func TestShamirThreshold(t *testing.T) {
	secret := []byte("secret")
	shares, err := SplitSecret(secret, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineShares(shares[:2], 3); err == nil {
		t.Fatal("combined with fewer than k shares")
	}
	// Two shares give no information: reconstructing with a forged third
	// share must (overwhelmingly) not yield the secret.
	forged := Share{X: shares[2].X, Data: make([]byte, len(shares[2].Data))}
	got, err := CombineShares([]Share{shares[0], shares[1], forged}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, secret) {
		t.Fatal("forged share reconstructed the true secret")
	}
}

func TestShamirValidation(t *testing.T) {
	if _, err := SplitSecret([]byte("s"), 2, 3); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := SplitSecret([]byte("s"), 300, 2); err == nil {
		t.Error("n > 255 accepted")
	}
	if _, err := SplitSecret(nil, 3, 2); err == nil {
		t.Error("empty secret accepted")
	}
	shares, err := SplitSecret([]byte("s"), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dup := []Share{shares[0], shares[0]}
	if _, err := CombineShares(dup, 2); err == nil {
		t.Error("duplicate shares accepted")
	}
	bad := []Share{shares[0], {X: 0, Data: []byte{1}}}
	if _, err := CombineShares(bad, 2); err == nil {
		t.Error("x=0 share accepted")
	}
	mismatched := []Share{shares[0], {X: 9, Data: []byte{1, 2}}}
	if _, err := CombineShares(mismatched, 2); err == nil {
		t.Error("length-mismatched shares accepted")
	}
}

func TestDropoutRecoveryViaShamirBackup(t *testing.T) {
	// Full Bonawitz-style recovery: the dropped party's DH key is rebuilt
	// from backup shares, then its seeds and mask are recomputed.
	const n, dim, round, k = 4, 3, 11, 2
	keys, roster := newRoster(t, n)
	parties := make([]*Party, n)
	for i := range parties {
		p, err := NewParty(i, keys[i], roster)
		if err != nil {
			t.Fatal(err)
		}
		parties[i] = p
	}
	const dropped = 1
	backup, err := parties[dropped].BackupShares(k)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RecoverParty([]Share{backup[3], backup[0]}, k, dropped, roster)
	if err != nil {
		t.Fatal(err)
	}
	wantMask, err := parties[dropped].Mask(dim, round)
	if err != nil {
		t.Fatal(err)
	}
	gotMask, err := restored.Mask(dim, round)
	if err != nil {
		t.Fatal(err)
	}
	for d := range wantMask {
		if wantMask[d] != gotMask[d] {
			t.Fatalf("recovered mask differs at dim %d", d)
		}
	}
}

// Property: GF(256) multiplication agrees with the reference shift-and-add
// implementation.
func TestQuickGFMulAgreesWithReference(t *testing.T) {
	f := func(a, b byte) bool {
		return gfMul(a, b) == gfMulNoTable(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: GF(256) inverses are real inverses.
func TestQuickGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv(%d) wrong", a)
		}
	}
}

// Property: Shamir round trips for arbitrary secrets and thresholds.
func TestQuickShamirRoundTrip(t *testing.T) {
	f := func(secret []byte, nRaw, kRaw uint8) bool {
		if len(secret) == 0 {
			secret = []byte{42}
		}
		n := int(nRaw%10) + 2
		k := int(kRaw)%n + 1
		shares, err := SplitSecret(secret, n, k)
		if err != nil {
			return false
		}
		got, err := CombineShares(shares[:k], k)
		return err == nil && bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: blinding then unblinding any vector is the identity.
func TestQuickBlindUnblindIdentity(t *testing.T) {
	f := func(vals []uint64, maskSeed []byte) bool {
		if len(vals) == 0 {
			vals = []uint64{1}
		}
		contribution := make(fixed.Vector, len(vals))
		for i, v := range vals {
			contribution[i] = fixed.Ring(v)
		}
		masks, err := ZeroSumMasks(maskSeed, 1, len(vals))
		if err != nil {
			return false
		}
		blinded, err := Apply(contribution, masks[0])
		if err != nil {
			return false
		}
		back, err := Remove(blinded, masks[0])
		if err != nil {
			return false
		}
		for i := range contribution {
			if back[i] != contribution[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
