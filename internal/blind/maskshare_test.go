package blind

import (
	"math/rand"
	"testing"

	"glimmers/internal/fixed"
)

func TestShareMaskRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim, n, k = 9, 6, 4
	mask := fixed.NewVector(dim)
	for i := range mask {
		mask[i] = fixed.Ring(rng.Uint64())
	}
	shares, err := ShareMask(mask, n, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != n {
		t.Fatalf("got %d shares, want %d", len(shares), n)
	}
	// Any k shares reconstruct; use a non-prefix subset.
	subset := []Share{shares[5], shares[1], shares[3], shares[2]}
	got, err := RecoverSharedMask(subset, k, dim)
	if err != nil {
		t.Fatal(err)
	}
	for d := range mask {
		if got[d] != mask[d] {
			t.Fatalf("recovered mask differs at %d: %v != %v", d, got[d], mask[d])
		}
	}
	// Fewer than k shares must fail.
	if _, err := RecoverSharedMask(shares[:k-1], k, dim); err == nil {
		t.Fatal("recovery with k-1 shares succeeded")
	}
	// Wrong dimension must fail.
	if _, err := RecoverSharedMask(shares[:k], k, dim+1); err == nil {
		t.Fatal("recovery with wrong dim succeeded")
	}
}

func TestShareMaskRejectsEmpty(t *testing.T) {
	if _, err := ShareMask(nil, 3, 2); err == nil {
		t.Fatal("sharing an empty mask succeeded")
	}
}
