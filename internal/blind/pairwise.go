package blind

import (
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/xcrypto"
)

// Party is one client in the pairwise-masking protocol. Each party holds a
// DH key; the roster of all parties' public keys is public. Inside a
// Glimmer deployment the Party state lives in the enclave, because pairwise
// seeds reveal masks.
type Party struct {
	index  int
	dh     *xcrypto.DHKey
	roster [][]byte
}

// NewParty creates the party at the given roster position. The roster entry
// at index must equal the party's own public key.
func NewParty(index int, dh *xcrypto.DHKey, roster [][]byte) (*Party, error) {
	if index < 0 || index >= len(roster) {
		return nil, fmt.Errorf("blind: index %d outside roster of %d", index, len(roster))
	}
	if string(roster[index]) != string(dh.PublicBytes()) {
		return nil, fmt.Errorf("blind: roster entry %d does not match party key", index)
	}
	return &Party{index: index, dh: dh, roster: roster}, nil
}

// Index returns the party's roster position.
func (p *Party) Index() int { return p.index }

// SeedWith derives the symmetric pairwise seed shared with another party.
// Both parties derive the same seed, ordered by roster position so the
// derivation is symmetric.
func (p *Party) SeedWith(other int) ([]byte, error) {
	if other < 0 || other >= len(p.roster) || other == p.index {
		return nil, fmt.Errorf("blind: invalid peer %d", other)
	}
	shared, err := p.dh.Shared(p.roster[other])
	if err != nil {
		return nil, fmt.Errorf("blind: pairwise agreement with %d: %w", other, err)
	}
	lo, hi := p.index, other
	if lo > hi {
		lo, hi = hi, lo
	}
	info := fmt.Sprintf("glimmers/blind/seed/v1/%d/%d", lo, hi)
	return xcrypto.HKDF(shared, nil, []byte(info), 32), nil
}

// Mask computes the party's net mask for a round: the sum of pairwise
// streams with higher-indexed peers minus those with lower-indexed peers.
// Summed over all parties every stream appears once with each sign, so the
// total is zero.
func (p *Party) Mask(dim int, round uint64) (fixed.Vector, error) {
	if dim < 1 {
		return nil, fmt.Errorf("blind: dimension must be positive, got %d", dim)
	}
	mask := fixed.NewVector(dim)
	for other := range p.roster {
		if other == p.index {
			continue
		}
		seed, err := p.SeedWith(other)
		if err != nil {
			return nil, err
		}
		stream := maskFromSeed(seed, round, dim)
		if other > p.index {
			mask.AddInPlace(stream)
		} else {
			mask.SubInPlace(stream)
		}
	}
	return mask, nil
}

// RecoverMask reconstructs the mask of a dropped party from the pairwise
// seeds that the survivors reveal (seeds[k] is survivor k's seed with the
// dropped party). The aggregator subtracts the result from its running sum
// so the surviving contributions still unmask correctly.
func RecoverMask(dropped, n, dim int, round uint64, seeds map[int][]byte) (fixed.Vector, error) {
	if dropped < 0 || dropped >= n {
		return nil, fmt.Errorf("blind: dropped index %d outside group of %d", dropped, n)
	}
	mask := fixed.NewVector(dim)
	for other := 0; other < n; other++ {
		if other == dropped {
			continue
		}
		seed, ok := seeds[other]
		if !ok {
			return nil, fmt.Errorf("blind: missing revealed seed from survivor %d", other)
		}
		stream := maskFromSeed(seed, round, dim)
		if other > dropped {
			mask.AddInPlace(stream)
		} else {
			mask.SubInPlace(stream)
		}
	}
	return mask, nil
}

// BackupShares splits the party's DH private key into n Shamir shares with
// threshold k, one share per peer. If the party drops out, any k peers can
// reconstruct its key with RecoverParty and derive the seeds needed for
// RecoverMask without every survivor having to be online.
func (p *Party) BackupShares(k int) ([]Share, error) {
	return SplitSecret(p.dh.Bytes(), len(p.roster), k)
}

// RecoverParty reconstructs a dropped party from k of its backup shares.
func RecoverParty(shares []Share, k int, index int, roster [][]byte) (*Party, error) {
	keyBytes, err := CombineShares(shares, k)
	if err != nil {
		return nil, fmt.Errorf("blind: recover party %d: %w", index, err)
	}
	dh, err := xcrypto.ParseDHKey(keyBytes)
	if err != nil {
		return nil, fmt.Errorf("blind: recover party %d: %w", index, err)
	}
	return NewParty(index, dh, roster)
}
