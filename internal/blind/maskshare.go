package blind

import (
	"encoding/binary"
	"fmt"

	"glimmers/internal/fixed"
)

// Mask sharing: a dealer (or a client about to go offline) Shamir-splits a
// blinding mask so that any k of n holders can reconstruct it if the owner
// drops out mid-round. The aggregator then removes the reconstructed mask
// via CorrectDropout, keeping the surviving cohort's aggregate exact. The
// mask is serialized byte-wise (big-endian ring elements) so the GF(256)
// sharing in shamir.go applies unchanged.

// ShareMask splits a mask vector into n Shamir shares with threshold k.
func ShareMask(mask fixed.Vector, n, k int) ([]Share, error) {
	if len(mask) == 0 {
		return nil, fmt.Errorf("blind: cannot share an empty mask")
	}
	buf := make([]byte, 8*len(mask))
	for i, r := range mask {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(r))
	}
	return SplitSecret(buf, n, k)
}

// RecoverSharedMask reconstructs a mask of the given dimension from at
// least k shares produced by ShareMask.
func RecoverSharedMask(shares []Share, k, dim int) (fixed.Vector, error) {
	buf, err := CombineShares(shares, k)
	if err != nil {
		return nil, fmt.Errorf("blind: recover mask: %w", err)
	}
	if len(buf) != 8*dim {
		return nil, fmt.Errorf("blind: recovered %d bytes, want %d for dim %d", len(buf), 8*dim, dim)
	}
	mask := fixed.NewVector(dim)
	for i := range mask {
		mask[i] = fixed.Ring(binary.BigEndian.Uint64(buf[i*8:]))
	}
	return mask, nil
}
