package geo

import (
	"testing"
	"testing/quick"

	"glimmers/internal/predicate"
	"glimmers/internal/xcrypto"
)

// Toronto-ish coordinates in microdegrees.
var downtown = Point{LatMicro: 43_653_000, LonMicro: -79_383_000}

func TestDistanceMeters(t *testing.T) {
	// One microdegree of latitude is ~0.111 m; 9000 microdegrees ~ 1 km.
	north := Point{LatMicro: downtown.LatMicro + 9000, LonMicro: downtown.LonMicro}
	d := DistanceMeters(downtown, north)
	if d < 950 || d > 1050 {
		t.Fatalf("1km north = %d m", d)
	}
	if DistanceMeters(downtown, downtown) != 0 {
		t.Fatal("self distance nonzero")
	}
	// Symmetry.
	if DistanceMeters(downtown, north) != DistanceMeters(north, downtown) {
		t.Fatal("distance asymmetric")
	}
}

func TestWifiAtLocality(t *testing.T) {
	near := Point{LatMicro: downtown.LatMicro + 100, LonMicro: downtown.LonMicro + 100}
	far := Point{LatMicro: downtown.LatMicro + 900_000, LonMicro: downtown.LonMicro}
	shared := func(a, b []uint64) int {
		seen := map[uint64]bool{}
		for _, x := range a {
			seen[x] = true
		}
		n := 0
		for _, x := range b {
			if seen[x] {
				n++
			}
		}
		return n
	}
	if shared(WifiAt(downtown), WifiAt(near)) == 0 {
		t.Fatal("adjacent points share no WiFi")
	}
	if shared(WifiAt(downtown), WifiAt(far)) != 0 {
		t.Fatal("points 100km apart share WiFi")
	}
}

func TestRandomTrackShape(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("track"))
	track := RandomTrack(prg, downtown, 50, 30, 60_000)
	if len(track) != 50 {
		t.Fatalf("track length %d", len(track))
	}
	last := int64(0)
	for i, tp := range track {
		if tp.TimeMs <= last {
			t.Fatal("track timestamps not increasing")
		}
		last = tp.TimeMs
		if len(tp.Wifi) == 0 {
			t.Fatalf("fix %d has no WiFi", i)
		}
	}
	// Steps stay near 30 m.
	for i := 1; i < len(track); i++ {
		d := DistanceMeters(track[i-1].Loc, track[i].Loc)
		if d > 60 {
			t.Fatalf("step %d jumped %d m", i, d)
		}
	}
}

func genuineScenario(prg *xcrypto.PRG) (Photo, DeviceContext) {
	ctx := DeviceContext{
		Track:          RandomTrack(prg, downtown, 40, 25, 60_000),
		CamFingerprint: 0xCAFE,
	}
	// The photo is taken at fix 20, two minutes later.
	fix := ctx.Track[20]
	photo := Photo{
		ContentHash:    0x1234,
		TakenMs:        fix.TimeMs + 120_000,
		Claimed:        fix.Loc,
		CamFingerprint: 0xCAFE,
		Wifi:           fix.Wifi,
	}
	return photo, ctx
}

func TestContextFeaturesGenuinePhoto(t *testing.T) {
	prg := xcrypto.NewPRG([]byte("genuine"))
	photo, ctx := genuineScenario(prg)
	f := ContextFeatures(photo, ctx)
	if f[FeatMinDistM] != 0 {
		t.Errorf("min dist = %d, want 0", f[FeatMinDistM])
	}
	if f[FeatTimeGapS] > 130 {
		t.Errorf("time gap = %d s", f[FeatTimeGapS])
	}
	if f[FeatWifiHits] < 1 {
		t.Errorf("wifi hits = %d", f[FeatWifiHits])
	}
	if f[FeatCamMatch] != 1 {
		t.Error("camera mismatch for genuine photo")
	}
}

func TestContextFeaturesEmptyTrack(t *testing.T) {
	photo := Photo{Claimed: downtown}
	f := ContextFeatures(photo, DeviceContext{})
	if f[FeatMinDistM] < 1<<30 || f[FeatTimeGapS] < 1<<30 {
		t.Fatal("empty track should yield sentinel distances")
	}
}

func TestValidationPredicateAcceptsGenuine(t *testing.T) {
	prog := DefaultPredicate("maps")
	if _, err := predicate.Verify(prog); err != nil {
		t.Fatalf("predicate verification: %v", err)
	}
	prg := xcrypto.NewPRG([]byte("accept"))
	photo, ctx := genuineScenario(prg)
	features := ContextFeatures(photo, ctx)
	contribution := []int64{photo.Claimed.LatMicro, photo.Claimed.LonMicro}
	res, err := predicate.Run(prog, contribution, features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != 1 {
		t.Fatalf("genuine photo rejected (features %v)", features)
	}
}

func TestValidationPredicateRejectsForgeries(t *testing.T) {
	prog := DefaultPredicate("maps")
	prg := xcrypto.NewPRG([]byte("forge"))
	photo, ctx := genuineScenario(prg)

	cases := map[string]func() ([]int64, []int64){
		"claimed location never visited": func() ([]int64, []int64) {
			forged := photo
			forged.Claimed = Point{LatMicro: downtown.LatMicro + 500_000, LonMicro: downtown.LonMicro}
			f := ContextFeatures(forged, ctx)
			return []int64{forged.Claimed.LatMicro, forged.Claimed.LonMicro}, f
		},
		"photo from another camera": func() ([]int64, []int64) {
			forged := photo
			forged.CamFingerprint = 0xBEEF
			f := ContextFeatures(forged, ctx)
			return []int64{forged.Claimed.LatMicro, forged.Claimed.LonMicro}, f
		},
		"host swaps coordinates after validation": func() ([]int64, []int64) {
			f := ContextFeatures(photo, ctx)
			return []int64{photo.Claimed.LatMicro + 1000, photo.Claimed.LonMicro}, f
		},
		"stale photo (taken hours away from track)": func() ([]int64, []int64) {
			forged := photo
			forged.TakenMs += 6 * 3600 * 1000
			f := ContextFeatures(forged, ctx)
			return []int64{forged.Claimed.LatMicro, forged.Claimed.LonMicro}, f
		},
	}
	for name, mk := range cases {
		contribution, features := mk()
		res, err := predicate.Run(prog, contribution, features, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Verdict != 0 {
			t.Errorf("%s: forged photo accepted", name)
		}
	}
}

// Property: distance is non-negative and roughly translation-invariant for
// small offsets.
func TestQuickDistanceProperties(t *testing.T) {
	f := func(dLat, dLon int16) bool {
		a := downtown
		b := Point{LatMicro: a.LatMicro + int64(dLat), LonMicro: a.LonMicro + int64(dLon)}
		d := DistanceMeters(a, b)
		if d < 0 {
			return false
		}
		// Shift both points north; distance stays within a meter.
		a2 := Point{LatMicro: a.LatMicro + 1000, LonMicro: a.LonMicro}
		b2 := Point{LatMicro: b.LatMicro + 1000, LonMicro: b.LonMicro}
		d2 := DistanceMeters(a2, b2)
		diff := d - d2
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
