// Package geo implements the paper's photos-for-maps scenario: a mapping
// service accepts user photos for map locations. The photos themselves are
// meant to be public, but *validating* them — did this user actually visit
// the claimed place, with this camera? — needs deeply private context: GPS
// tracks, ambient WiFi observations, and the device's camera fingerprint
// (§1 and §3). A Glimmer inspects that context locally and endorses only
// corroborated photos, releasing nothing else.
package geo

import (
	"math"

	"glimmers/internal/predicate"
	"glimmers/internal/xcrypto"
)

// Point is a location in microdegrees (1e-6 degree units), integer-exact
// for the predicate VM.
type Point struct {
	LatMicro int64
	LonMicro int64
}

// metersPerMicroDegLat is the (latitude-independent) north-south size of
// one microdegree.
const metersPerMicroDegLat = 0.111320

// DistanceMeters approximates the distance between nearby points with an
// equirectangular projection — well within the accuracy validation needs
// for "was the user within a few hundred meters".
func DistanceMeters(a, b Point) int64 {
	latRad := float64(a.LatMicro) / 1e6 * math.Pi / 180
	dy := float64(a.LatMicro-b.LatMicro) * metersPerMicroDegLat
	dx := float64(a.LonMicro-b.LonMicro) * metersPerMicroDegLat * math.Cos(latRad)
	return int64(math.Sqrt(dx*dx + dy*dy))
}

// TrackPoint is one GPS fix.
type TrackPoint struct {
	TimeMs int64
	Loc    Point
	// Wifi holds hashes of the access points visible at this fix.
	Wifi []uint64
}

// Track is a device's private location history.
type Track []TrackPoint

// Photo is a user contribution: an image (represented by its content hash)
// with claimed capture metadata.
type Photo struct {
	ContentHash    uint64
	TakenMs        int64
	Claimed        Point
	CamFingerprint uint64
	// Wifi holds the access points embedded in the photo's capture record.
	Wifi []uint64
}

// DeviceContext is the private validation data on the device.
type DeviceContext struct {
	Track Track
	// CamFingerprint is the device camera's sensor fingerprint.
	CamFingerprint uint64
}

// Feature indices for the photo-validation predicate's private bank.
const (
	FeatMinDistM   = iota // distance from the claimed point to the nearest track fix (m)
	FeatTimeGapS          // time gap to that fix (seconds)
	FeatWifiHits          // WiFi APs shared between photo and that fix
	FeatCamMatch          // camera fingerprint match (0/1)
	FeatClaimedLat        // claimed latitude, echoed for cross-checking
	FeatClaimedLon        // claimed longitude
	NumFeatures
)

// ContextFeatures computes the private validation bank for a photo against
// the device context. It runs inside the Glimmer (it is part of the
// measured binary in a real deployment); the features never leave.
func ContextFeatures(photo Photo, ctx DeviceContext) []int64 {
	out := make([]int64, NumFeatures)
	out[FeatMinDistM] = math.MaxInt32
	out[FeatTimeGapS] = math.MaxInt32
	out[FeatClaimedLat] = photo.Claimed.LatMicro
	out[FeatClaimedLon] = photo.Claimed.LonMicro
	if photo.CamFingerprint == ctx.CamFingerprint {
		out[FeatCamMatch] = 1
	}
	var nearest *TrackPoint
	for i := range ctx.Track {
		tp := &ctx.Track[i]
		d := DistanceMeters(photo.Claimed, tp.Loc)
		if d < out[FeatMinDistM] {
			out[FeatMinDistM] = d
			nearest = tp
		}
	}
	if nearest == nil {
		return out
	}
	gap := (photo.TakenMs - nearest.TimeMs) / 1000
	if gap < 0 {
		gap = -gap
	}
	out[FeatTimeGapS] = gap
	seen := make(map[uint64]bool, len(nearest.Wifi))
	for _, ap := range nearest.Wifi {
		seen[ap] = true
	}
	for _, ap := range photo.Wifi {
		if seen[ap] {
			out[FeatWifiHits]++
		}
	}
	return out
}

// ValidationPredicate builds the maps-service validator: the contribution
// (claimed lat, lon) must match the photo's capture record, the device must
// have been within maxDistM meters of the spot within maxGapS seconds, see
// at least minWifiHits of the same WiFi networks, and the camera
// fingerprint must match.
func ValidationPredicate(name string, maxDistM, maxGapS, minWifiHits int64) *predicate.Program {
	b := predicate.NewBuilder(name, 1)
	b.Push(1).Store(0)
	check := func(emit func()) {
		emit()
		b.Load(0).And().Store(0)
	}
	check(func() { b.LoadP(FeatMinDistM).Push(maxDistM).Le() })
	check(func() { b.LoadP(FeatTimeGapS).Push(maxGapS).Le() })
	check(func() { b.LoadP(FeatWifiHits).Push(minWifiHits).Ge() })
	check(func() { b.LoadP(FeatCamMatch).Push(1).Eq() })
	// The contribution must claim exactly the location the features were
	// computed for — a host swapping coordinates after validation fails.
	check(func() { b.LoadC(0).LoadP(FeatClaimedLat).Eq() })
	check(func() { b.LoadC(1).LoadP(FeatClaimedLon).Eq() })
	check(func() { b.LenC().Push(2).Eq() })
	check(func() { b.LenP().Push(int64(NumFeatures)).Eq() })
	b.Load(0).Declass().Verdict()
	return b.MustBuild()
}

// DefaultPredicate uses sane defaults: within 250 m, within 15 minutes, one
// shared WiFi network, matching camera.
func DefaultPredicate(name string) *predicate.Program {
	return ValidationPredicate(name, 250, 900, 1)
}

// RandomTrack generates a plausible walk: steps of roughly stepMeters every
// intervalMs, each fix seeing a few location-derived WiFi APs.
func RandomTrack(prg *xcrypto.PRG, start Point, steps int, stepMeters, intervalMs int64) Track {
	track := make(Track, 0, steps)
	cur := start
	timeMs := int64(0)
	for i := 0; i < steps; i++ {
		heading := prg.Float64() * 2 * math.Pi
		dLat := int64(float64(stepMeters) * math.Sin(heading) / metersPerMicroDegLat)
		latRad := float64(cur.LatMicro) / 1e6 * math.Pi / 180
		dLon := int64(float64(stepMeters) * math.Cos(heading) / (metersPerMicroDegLat * math.Cos(latRad)))
		cur = Point{LatMicro: cur.LatMicro + dLat, LonMicro: cur.LonMicro + dLon}
		timeMs += intervalMs + int64(prg.Intn(int(intervalMs/4)+1))
		track = append(track, TrackPoint{TimeMs: timeMs, Loc: cur, Wifi: WifiAt(cur)})
	}
	return track
}

// WifiAt derives the deterministic set of WiFi APs "visible" at a location:
// a grid of synthetic networks, so nearby points share networks and distant
// points do not.
func WifiAt(p Point) []uint64 {
	// ~500 m grid cells in microdegrees.
	const cell = 4500
	latCell := p.LatMicro / cell
	lonCell := p.LonMicro / cell
	out := make([]uint64, 0, 4)
	for _, d := range [][2]int64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		lc, nc := latCell+d[0], lonCell+d[1]
		out = append(out, uint64(lc*2654435761)^uint64(nc*40503)^0x57494649)
	}
	return out
}
