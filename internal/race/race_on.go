//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-guard tests can skip themselves: instrumented builds allocate
// where production builds do not (sync.Pool, for one, intentionally drops
// pooled items under the detector to surface aliasing bugs).
package race

// Enabled is true when the binary is built with -race.
const Enabled = true
