//go:build !race

package race

// Enabled is true when the binary is built with -race.
const Enabled = false
