package fleet

import (
	"fmt"
	"testing"

	"glimmers/internal/wire"
)

func mustRing(t *testing.T, nodes []uint32, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("accepted empty ring")
	}
	if _, err := NewRing([]uint32{1, 2, 1}, 0); err == nil {
		t.Error("accepted duplicate node id")
	}
}

// Placement must be a pure function of membership: every node derives the
// same ring from its peer list regardless of the order peers were named.
func TestRingPermutationIndependent(t *testing.T) {
	a := mustRing(t, []uint32{0, 1, 2, 3}, 0)
	b := mustRing(t, []uint32{3, 1, 0, 2}, 0)
	for round := uint64(0); round < 500; round++ {
		svc := []byte(fmt.Sprintf("tenant-%d", round%7))
		if a.Owner(svc, round) != b.Owner(svc, round) {
			t.Fatalf("round %d: placement depends on membership order", round)
		}
	}
}

// Ownership should spread across nodes: with virtual nodes, no member of
// a 3-node ring should own a wildly disproportionate share.
func TestRingDistribution(t *testing.T) {
	r := mustRing(t, []uint32{10, 20, 30}, 0)
	counts := map[uint32]int{}
	const keys = 3000
	for round := uint64(0); round < keys; round++ {
		counts[r.Owner([]byte("iot.example"), round)]++
	}
	for node, c := range counts {
		if c < keys/6 || c > keys/2+keys/10 {
			t.Errorf("node %d owns %d/%d keys — skew too large", node, c, keys)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes ever own keys", len(counts))
	}
}

// Removing a node must move only the keys it owned; every key owned by a
// survivor keeps its owner. This is the re-home blast-radius guarantee.
func TestRingWithoutMovesOnlyOrphans(t *testing.T) {
	full := mustRing(t, []uint32{1, 2, 3}, 0)
	shrunk, err := full.Without(2)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Size() != 2 {
		t.Fatalf("shrunk ring has %d nodes", shrunk.Size())
	}
	moved, kept := 0, 0
	for round := uint64(0); round < 2000; round++ {
		before := full.Owner([]byte("iot.example"), round)
		after := shrunk.Owner([]byte("iot.example"), round)
		if before == 2 {
			if after == 2 {
				t.Fatalf("round %d still owned by removed node", round)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("round %d moved %d -> %d though node %d survived", round, before, after, before)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split moved=%d kept=%d", moved, kept)
	}

	if _, err := full.Without(99); err == nil {
		t.Error("removed a node that was never a member")
	}
	solo := mustRing(t, []uint32{7}, 0)
	if _, err := solo.Without(7); err == nil {
		t.Error("emptied the ring")
	}
}

// OwnerOf must agree with Owner applied to the peeked fields, and refuse
// frames too short to carry them.
func TestRingOwnerOf(t *testing.T) {
	r := mustRing(t, []uint32{1, 2, 3}, 0)
	for round := uint64(0); round < 64; round++ {
		raw := wire.NewWriter().
			Bytes([]byte("iot.example")).
			Uint64(round).
			Bytes([]byte("rest of the contribution")).
			Finish()
		got, err := r.OwnerOf(raw)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Owner([]byte("iot.example"), round); got != want {
			t.Fatalf("round %d: OwnerOf=%d Owner=%d", round, got, want)
		}
	}
	if _, err := r.OwnerOf([]byte{0x00, 0x00}); err == nil {
		t.Error("routed a truncated frame")
	}
}

// The per-contribution routing path must not allocate: it sits in front
// of the zero-alloc batch ingest and would otherwise dominate it.
func TestRingOwnerOfAllocFree(t *testing.T) {
	r := mustRing(t, []uint32{1, 2, 3, 4, 5}, 0)
	raw := wire.NewWriter().
		Bytes([]byte("iot.example")).
		Uint64(42).
		Bytes([]byte("payload")).
		Finish()
	var sink uint32
	allocs := testing.AllocsPerRun(1000, func() {
		n, err := r.OwnerOf(raw)
		if err != nil {
			t.Fatal(err)
		}
		sink += n
	})
	if allocs != 0 {
		t.Fatalf("OwnerOf allocates %.1f per call", allocs)
	}
	_ = sink
}

func BenchmarkRingOwnerOf(b *testing.B) {
	r, err := NewRing([]uint32{1, 2, 3}, 0)
	if err != nil {
		b.Fatal(err)
	}
	raw := wire.NewWriter().
		Bytes([]byte("iot.example")).
		Uint64(42).
		Bytes([]byte("payload")).
		Finish()
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		n, _ := r.OwnerOf(raw)
		sink += n
	}
	_ = sink
}
