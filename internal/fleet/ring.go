// Package fleet shards (tenant, round) across glimmerd nodes.
//
// Glimmers' aggregation algebra is natively horizontal: partial sums are
// additive in Z_2^64 and dedup is digest-sharded, so a round can be split
// across nodes and merged exactly (internal/service's partial-seal
// merge). What the algebra does not give us is *placement* — which node
// owns which round. This package supplies it: a consistent-hash ring with
// virtual nodes, keyed on (service, round), with an alloc-free owner
// lookup fed by the contribution peeks (glimmer.PeekContributionService /
// PeekContributionRound) so per-contribution routing stays on the
// zero-alloc ingest path.
//
// Consistent hashing keeps the re-home blast radius small: removing a
// node moves only the rounds it owned (to each arc's successor), so a
// crash mid-round turns into exactly one extra partial seal per affected
// round instead of a fleet-wide reshuffle.
package fleet

import (
	"fmt"
	"sort"

	"glimmers/internal/glimmer"
)

// DefaultVirtualNodes is how many ring points each node plants when the
// caller doesn't say. 64 keeps the max/mean ownership skew under ~30% for
// small fleets while the ring stays tiny enough to binary-search hot.
const DefaultVirtualNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node uint32
}

// Ring is an immutable consistent-hash ring. Immutability is the
// concurrency story: lookups are lock-free reads, and membership changes
// (a crash re-home) build a new ring with Without.
type Ring struct {
	points []point
	nodes  []uint32
}

// fnv-1a, inlined so the per-contribution lookup path allocates nothing
// and calls nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (v >> shift & 0xFF)) * fnvPrime
	}
	return h
}

// mix is a 64-bit avalanche finalizer (murmur3's fmix64). FNV-1a alone is
// a poor ring hash: a trailing byte change (the round number, the vnode
// replica) barely moves the high bits, so every vnode of a node lands in
// one tight arc and one node ends up owning the whole keyspace. The
// finalizer spreads every input bit across the word.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring over the given node IDs, planting vnodes virtual
// points per node (DefaultVirtualNodes if vnodes <= 0). Node IDs must be
// distinct; order does not matter — any permutation builds the identical
// ring, so every fleet member derives the same placement from the same
// peer list.
func NewRing(nodes []uint32, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[uint32]bool, len(nodes))
	r := &Ring{
		points: make([]point, 0, len(nodes)*vnodes),
		nodes:  append([]uint32(nil), nodes...),
	}
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i] < r.nodes[j] })
	for _, n := range r.nodes {
		if seen[n] {
			return nil, fmt.Errorf("fleet: duplicate node id %d", n)
		}
		seen[n] = true
		for rep := 0; rep < vnodes; rep++ {
			h := fnvBytes(fnvOffset, []byte("glimmers/fleet/v1"))
			h = fnvUint64(h, uint64(n))
			h = fnvUint64(h, uint64(rep))
			r.points = append(r.points, point{hash: mix(h), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node ID so placement
		// stays permutation-independent.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the ring's membership, ascending. Callers must not
// mutate the returned slice.
func (r *Ring) Nodes() []uint32 { return r.nodes }

// Size returns the number of (real) nodes on the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// Owner returns the node that owns (service, round): the first virtual
// node at or clockwise of the key's hash. It does not allocate — service
// may be a view straight out of a wire frame.
func (r *Ring) Owner(service []byte, round uint64) uint32 {
	h := mix(fnvUint64(fnvBytes(fnvOffset, service), round))
	// Inlined lower-bound search; sort.Search costs a closure allocation
	// in some inlining states and this runs per contribution.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap: the ring is a circle
	}
	return r.points[lo].node
}

// OwnerOf routes a raw encoded SignedContribution (or TicketedContribution
// — both lead with the service name then the round) by peeking its
// service name and round without decoding the rest. The peeks are views;
// the whole lookup is alloc-free.
func (r *Ring) OwnerOf(raw []byte) (uint32, error) {
	service, err := glimmer.PeekContributionService(raw)
	if err != nil {
		return 0, err
	}
	round, err := glimmer.PeekContributionRound(raw)
	if err != nil {
		return 0, err
	}
	return r.Owner(service, round), nil
}

// Without returns a new ring with the given node removed — the re-home
// step after a crash. Keys the dead node owned move to their arcs'
// successors; every other placement is unchanged (that is the point of
// consistent hashing). Returns an error if removing the node would empty
// the ring or the node isn't a member.
func (r *Ring) Without(node uint32) (*Ring, error) {
	rest := make([]uint32, 0, len(r.nodes)-1)
	for _, n := range r.nodes {
		if n != node {
			rest = append(rest, n)
		}
	}
	if len(rest) == len(r.nodes) {
		return nil, fmt.Errorf("fleet: node %d not on the ring", node)
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("fleet: removing node %d empties the ring", node)
	}
	vnodes := len(r.points) / len(r.nodes)
	return NewRing(rest, vnodes)
}
