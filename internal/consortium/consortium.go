// Package consortium implements the paper's alternative Glimmer
// realization (§2): instead of trusted hardware, an ensemble of independent
// third parties — the EFF, privacy advocacy organizations — jointly
// validates and blinds contributions, with k-of-n threshold endorsement so
// no single member is trusted alone.
//
// It exists so experiments can compare the two realizations (E10): the
// consortium needs no special hardware but costs n network round trips,
// n-way data disclosure (each member sees the private data — the trust is
// distributed, not eliminated), and k-of-n signature verification per
// contribution.
package consortium

import (
	"errors"
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/predicate"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Member is one consortium validator: an independent organization with its
// own signing identity running the agreed validation predicate.
type Member struct {
	index int
	key   *xcrypto.SigningKey
	pred  *predicate.Program
	// analysis caps execution.
	analysis *predicate.Analysis
}

// Validate runs the member's predicate and, on success, returns its
// signature share over the endorsement bytes.
func (m *Member) Validate(contribution, private []int64, endorsed []byte) ([]byte, error) {
	res, err := predicate.Run(m.pred, contribution, private, &predicate.Options{MaxSteps: m.analysis.CostBound})
	if err != nil || res.Verdict == 0 {
		return nil, ErrMemberRejected
	}
	return m.key.Sign(endorsed)
}

// Consortium is the client's view of the ensemble.
type Consortium struct {
	members   []*Member
	threshold int
}

// Consortium errors.
var (
	ErrMemberRejected = errors.New("consortium: member rejected contribution")
	ErrThreshold      = errors.New("consortium: insufficient valid endorsements")
)

// New creates a consortium of n members with threshold k, all running the
// same predicate.
func New(n, k int, pred *predicate.Program) (*Consortium, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("consortium: invalid threshold %d of %d", k, n)
	}
	analysis, err := predicate.Verify(pred)
	if err != nil {
		return nil, fmt.Errorf("consortium: predicate: %w", err)
	}
	c := &Consortium{threshold: k}
	for i := 0; i < n; i++ {
		key, err := xcrypto.NewSigningKey()
		if err != nil {
			return nil, fmt.Errorf("consortium: member %d: %w", i, err)
		}
		c.members = append(c.members, &Member{index: i, key: key, pred: pred, analysis: analysis})
	}
	return c, nil
}

// Size returns the number of members.
func (c *Consortium) Size() int { return len(c.members) }

// Threshold returns k.
func (c *Consortium) Threshold() int { return c.threshold }

// PublicKeys returns each member's verification key, indexed by member.
func (c *Consortium) PublicKeys() []*xcrypto.VerifyKey {
	out := make([]*xcrypto.VerifyKey, len(c.members))
	for i, m := range c.members {
		out[i] = m.key.Public()
	}
	return out
}

// Endorsement is a threshold-validated, blinded contribution.
type Endorsement struct {
	Round   uint64
	Blinded fixed.Vector
	// Sigs maps member index to signature share.
	Sigs map[int][]byte
}

// SignedBytes is the byte string every member signs.
func (e Endorsement) SignedBytes() []byte {
	w := wire.NewWriter()
	w.String("glimmers/consortium/v1")
	w.Uint64(e.Round)
	vals := make([]uint64, len(e.Blinded))
	for i, r := range e.Blinded {
		vals[i] = uint64(r)
	}
	w.Uint64s(vals)
	return w.Finish()
}

// CostStats records the communication cost of one endorsement, the numbers
// E10 compares against the SGX Glimmer.
type CostStats struct {
	// Messages is the number of network messages exchanged.
	Messages int
	// Bytes is the total payload volume.
	Bytes int
	// Disclosures counts parties that saw the raw private data.
	Disclosures int
}

// Endorse submits a contribution (with its private validation data!) to
// every member, blinds it with the supplied mask, and collects signature
// shares. It fails unless at least k members endorse.
func (c *Consortium) Endorse(round uint64, contribution fixed.Vector, private []int64, mask fixed.Vector) (Endorsement, CostStats, error) {
	var stats CostStats
	blinded := contribution.Clone()
	if mask != nil {
		if len(mask) != len(contribution) {
			return Endorsement{}, stats, fmt.Errorf("consortium: mask dim %d != %d", len(mask), len(contribution))
		}
		blinded.AddInPlace(mask)
	}
	e := Endorsement{Round: round, Blinded: blinded, Sigs: make(map[int][]byte)}
	endorsed := e.SignedBytes()

	rawContribution := make([]int64, len(contribution))
	for i, r := range contribution {
		rawContribution[i] = int64(r)
	}
	requestSize := 8*len(rawContribution) + 8*len(private) + len(endorsed)
	for _, m := range c.members {
		stats.Messages++ // request
		stats.Bytes += requestSize
		stats.Disclosures++ // this member saw the private data
		sig, err := m.Validate(rawContribution, private, endorsed)
		if err != nil {
			continue // a rejecting or faulty member just yields no share
		}
		stats.Messages++ // response
		stats.Bytes += len(sig)
		e.Sigs[m.index] = sig
	}
	if len(e.Sigs) < c.threshold {
		return Endorsement{}, stats, fmt.Errorf("%w: %d of %d", ErrThreshold, len(e.Sigs), c.threshold)
	}
	return e, stats, nil
}

// VerifyEndorsement checks an endorsement against the member public keys:
// at least k distinct, valid signature shares.
func VerifyEndorsement(e Endorsement, keys []*xcrypto.VerifyKey, k int) error {
	endorsed := e.SignedBytes()
	valid := 0
	for idx, sig := range e.Sigs {
		if idx < 0 || idx >= len(keys) {
			continue
		}
		if keys[idx].Verify(endorsed, sig) {
			valid++
		}
	}
	if valid < k {
		return fmt.Errorf("%w: %d of %d", ErrThreshold, valid, k)
	}
	return nil
}
