package consortium

import (
	"errors"
	"testing"

	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/predicate"
)

const dim = 3

func newConsortium(t *testing.T, n, k int) *Consortium {
	t.Helper()
	c, err := New(n, k, predicate.UnitRangeCheck("range", dim))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEndorseValidContribution(t *testing.T) {
	c := newConsortium(t, 5, 3)
	contribution := fixed.FromFloats([]float64{0.1, 0.5, 0.9})
	e, stats, err := c.Endorse(1, contribution, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sigs) != 5 {
		t.Fatalf("sigs = %d, want 5 (all members endorse)", len(e.Sigs))
	}
	if err := VerifyEndorsement(e, c.PublicKeys(), c.Threshold()); err != nil {
		t.Fatal(err)
	}
	if stats.Disclosures != 5 {
		t.Fatalf("disclosures = %d: the consortium design discloses to every member", stats.Disclosures)
	}
	if stats.Messages < 10 {
		t.Fatalf("messages = %d, want request+response per member", stats.Messages)
	}
}

func TestEndorseRejectsInvalidContribution(t *testing.T) {
	c := newConsortium(t, 5, 3)
	malicious := fixed.FromFloats([]float64{538, 0.5, 0.9})
	_, _, err := c.Endorse(1, malicious, nil, nil)
	if !errors.Is(err, ErrThreshold) {
		t.Fatalf("err = %v, want ErrThreshold", err)
	}
}

func TestEndorseWithBlinding(t *testing.T) {
	c := newConsortium(t, 4, 2)
	masks, err := blind.ZeroSumMasks([]byte("cm"), 2, dim)
	if err != nil {
		t.Fatal(err)
	}
	contribution := fixed.FromFloats([]float64{0.2, 0.4, 0.6})
	e, _, err := c.Endorse(1, contribution, nil, masks[0])
	if err != nil {
		t.Fatal(err)
	}
	// Blinded output differs from the raw contribution.
	same := true
	for i := range contribution {
		if e.Blinded[i] != contribution[i] {
			same = false
		}
	}
	if same {
		t.Fatal("endorsement not blinded")
	}
	// Unmasking recovers it.
	back, err := blind.Remove(e.Blinded, masks[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range contribution {
		if back[i] != contribution[i] {
			t.Fatal("unmasking failed")
		}
	}
	if _, _, err := c.Endorse(1, contribution, nil, fixed.NewVector(dim+1)); err == nil {
		t.Fatal("mismatched mask accepted")
	}
}

func TestVerifyEndorsementThreshold(t *testing.T) {
	c := newConsortium(t, 5, 3)
	contribution := fixed.FromFloats([]float64{0.1, 0.2, 0.3})
	e, _, err := c.Endorse(2, contribution, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := c.PublicKeys()
	// Strip shares below the threshold.
	for idx := range e.Sigs {
		if len(e.Sigs) <= 2 {
			break
		}
		delete(e.Sigs, idx)
	}
	if err := VerifyEndorsement(e, keys, 3); !errors.Is(err, ErrThreshold) {
		t.Fatalf("err = %v, want ErrThreshold", err)
	}
}

func TestVerifyEndorsementRejectsForgedShares(t *testing.T) {
	c := newConsortium(t, 3, 2)
	contribution := fixed.FromFloats([]float64{0.1, 0.2, 0.3})
	e, _, err := c.Endorse(3, contribution, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Forge every share.
	for idx := range e.Sigs {
		e.Sigs[idx] = []byte("forged")
	}
	if err := VerifyEndorsement(e, c.PublicKeys(), 2); !errors.Is(err, ErrThreshold) {
		t.Fatalf("err = %v, want ErrThreshold", err)
	}
	// Out-of-range member indices are ignored, not a panic.
	e.Sigs[99] = []byte("stray")
	if err := VerifyEndorsement(e, c.PublicKeys(), 2); !errors.Is(err, ErrThreshold) {
		t.Fatalf("err = %v, want ErrThreshold", err)
	}
}

func TestEndorsementBoundToValue(t *testing.T) {
	// Signatures must not transfer to a different blinded value or round.
	c := newConsortium(t, 3, 2)
	contribution := fixed.FromFloats([]float64{0.1, 0.2, 0.3})
	e, _, err := c.Endorse(4, contribution, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tampered := e
	tampered.Blinded = e.Blinded.Clone()
	tampered.Blinded[0]++
	if err := VerifyEndorsement(tampered, c.PublicKeys(), 2); err == nil {
		t.Fatal("signatures transferred to altered value")
	}
	tampered = e
	tampered.Round = 5
	if err := VerifyEndorsement(tampered, c.PublicKeys(), 2); err == nil {
		t.Fatal("signatures transferred to altered round")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 4, predicate.UnitRangeCheck("p", dim)); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := New(3, 0, predicate.UnitRangeCheck("p", dim)); err == nil {
		t.Fatal("k = 0 accepted")
	}
	// An unverifiable predicate is refused at consortium setup.
	leak := &predicate.Program{Name: "leak", Code: []predicate.Instr{
		{Op: predicate.OpLoadC, Arg: 0}, {Op: predicate.OpVerdict},
	}}
	if _, err := New(3, 2, leak); err == nil {
		t.Fatal("unverifiable predicate accepted")
	}
}
