package fedml

import (
	"math"
	"testing"
	"testing/quick"

	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/keyboard"
)

func scenario(t *testing.T, users, words int) *keyboard.Population {
	t.Helper()
	pop, err := keyboard.TrendingScenario([]byte("fedml-test"), users, words)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestTrainLocalWeightsAreValidProbabilities(t *testing.T) {
	pop := scenario(t, 2, 300)
	v := pop.Corpus.Vocabulary()
	m := TrainLocal(pop.Users[0].Activity, v)
	if len(m.Weights) != v.Dims() {
		t.Fatalf("dims = %d", len(m.Weights))
	}
	for dim, w := range m.Weights {
		if !w.InUnitRange() {
			t.Fatalf("weight %d out of [0,1]: %v", dim, w)
		}
	}
	// Each observed row sums to ~1.
	n := v.Size()
	for p := 0; p < n; p++ {
		var sum float64
		for next := 0; next < n; next++ {
			sum += m.Weights[p*n+next].Float()
		}
		if sum > 0.01 && (sum < 0.98 || sum > 1.02) {
			t.Fatalf("row %d sums to %v", p, sum)
		}
	}
}

func TestAggregatePicksUpTrend(t *testing.T) {
	pop := scenario(t, 24, 500)
	v := pop.Corpus.Vocabulary()
	models := make([]*Model, len(pop.Users))
	for i, u := range pop.Users {
		models[i] = TrainLocal(u.Activity, v)
	}
	global, err := Aggregate(models...)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline behaviour: the global model suggests "trump"
	// after "donald" even for a user who never typed it.
	pred, w, err := global.Predict("donald")
	if err != nil {
		t.Fatal(err)
	}
	if pred != "trump" {
		t.Fatalf("Predict(donald) = %q (w=%v), want trump", pred, w)
	}
}

func TestAggregateMatchesBlindedAggregation(t *testing.T) {
	// Core Figure 1c equivalence: aggregating blinded vectors then
	// unmasking nothing (masks cancel) equals aggregating in the clear.
	pop := scenario(t, 6, 300)
	v := pop.Corpus.Vocabulary()
	models := make([]*Model, len(pop.Users))
	vecs := make([]fixed.Vector, len(pop.Users))
	for i, u := range pop.Users {
		models[i] = TrainLocal(u.Activity, v)
		vecs[i] = models[i].Weights
	}
	clear, err := Aggregate(models...)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := blind.ZeroSumMasks([]byte("round"), len(vecs), v.Dims())
	if err != nil {
		t.Fatal(err)
	}
	blinded := make([]fixed.Vector, len(vecs))
	for i := range vecs {
		blinded[i], err = blind.Apply(vecs[i], masks[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	viaBlinding, err := AggregateVectors(v, blinded...)
	if err != nil {
		t.Fatal(err)
	}
	for dim := range clear.Weights {
		if clear.Weights[dim] != viaBlinding.Weights[dim] {
			t.Fatalf("blinded aggregation differs at dim %d", dim)
		}
	}
}

func TestPredictAndTopK(t *testing.T) {
	v := keyVocab(t)
	m := NewModel(v)
	set := func(prev, next string, w float64) {
		dim, err := v.BigramIndex(prev, next)
		if err != nil {
			t.Fatal(err)
		}
		m.Weights[dim] = fixed.FromFloat(w)
	}
	set("a", "b", 0.7)
	set("a", "c", 0.3)
	pred, w, err := m.Predict("a")
	if err != nil {
		t.Fatal(err)
	}
	if pred != "b" || math.Abs(w-0.7) > 0.001 {
		t.Fatalf("Predict = %q, %v", pred, w)
	}
	top, err := m.TopK("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != "b" || top[1] != "c" {
		t.Fatalf("TopK = %v", top)
	}
	if _, _, err := m.Predict("zebra"); err == nil {
		t.Fatal("unknown word accepted")
	}
	if _, err := m.TopK("zebra", 1); err == nil {
		t.Fatal("unknown word accepted")
	}
}

func keyVocab(t *testing.T) *keyboard.Vocabulary {
	t.Helper()
	v, err := keyboard.NewVocabulary([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAccuracyImprovesWithData(t *testing.T) {
	pop := scenario(t, 20, 500)
	v := pop.Corpus.Vocabulary()
	heldout := pop.Corpus.GenerateActivity([]byte("heldout"), 2000)

	soloModel := TrainLocal(pop.Users[0].Activity, v)
	soloAcc := soloModel.Accuracy(heldout)

	models := make([]*Model, len(pop.Users))
	for i, u := range pop.Users {
		models[i] = TrainLocal(u.Activity, v)
	}
	global, err := Aggregate(models...)
	if err != nil {
		t.Fatal(err)
	}
	globalAcc := global.Accuracy(heldout)
	if globalAcc <= soloAcc-0.02 {
		t.Fatalf("federation did not help: solo %.3f vs global %.3f", soloAcc, globalAcc)
	}
	if globalAcc <= 0.05 {
		t.Fatalf("global accuracy implausibly low: %.3f", globalAcc)
	}
}

func TestInversionAttackRecoversTypedBigrams(t *testing.T) {
	// Figure 1b's privacy failure: the local model exposes what was typed.
	pop := scenario(t, 1, 400)
	v := pop.Corpus.Vocabulary()
	user := pop.Users[0]
	m := TrainLocal(user.Activity, v)
	truth := user.Activity.DistinctBigrams(v)
	recovered := InvertModel(m, v.Dims())
	recall := InversionRecall(recovered, truth)
	if recall < 0.999 {
		t.Fatalf("inversion recall = %v, want ~1.0 for the strawman model", recall)
	}
	// Restricted to top-k, the attacker still learns the user's most
	// frequent pairs.
	top10 := InvertModel(m, 10)
	if InversionRecall(top10, truth) <= 0 {
		t.Fatal("top-10 inversion recovered nothing")
	}
}

func TestInversionRecallEdgeCases(t *testing.T) {
	if InversionRecall([]int{1, 2}, nil) != 0 {
		t.Fatal("empty truth should score 0")
	}
	if InversionRecall(nil, map[int]bool{1: true}) != 0 {
		t.Fatal("empty recovery should score 0")
	}
}

func TestPoisoningSkewsUnprotectedAggregate(t *testing.T) {
	// Figure 1d end to end: one attacker out of N submits 538.
	pop := scenario(t, 12, 400)
	v := pop.Corpus.Vocabulary()
	models := make([]*Model, len(pop.Users))
	for i, u := range pop.Users {
		models[i] = TrainLocal(u.Activity, v)
	}
	clean, err := Aggregate(models...)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker (user 0) wants "dont" suggested after "donald".
	if err := Poison(models[0], "donald", "dont", 538); err != nil {
		t.Fatal(err)
	}
	poisoned, err := Aggregate(models...)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := MeasureSkew(clean, poisoned, "donald", "dont")
	if err != nil {
		t.Fatal(err)
	}
	if !skew.Flipped {
		t.Fatalf("poisoning did not flip the suggestion: %+v", skew)
	}
	if skew.PoisonedW < 1 {
		t.Fatalf("poisoned aggregate weight %v should exceed any honest weight", skew.PoisonedW)
	}
	if skew.CleanTop != "trump" {
		t.Fatalf("clean model should suggest trump, got %q", skew.CleanTop)
	}
}

func TestPoisonUnknownWords(t *testing.T) {
	pop := scenario(t, 1, 50)
	m := TrainLocal(pop.Users[0].Activity, pop.Corpus.Vocabulary())
	if err := Poison(m, "zebra", "trump", 538); err == nil {
		t.Fatal("unknown cue accepted")
	}
}

func TestFromWeightsValidation(t *testing.T) {
	v := keyVocab(t)
	if _, err := FromWeights(v, fixed.NewVector(5)); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	w := fixed.NewVector(v.Dims())
	m, err := FromWeights(v, w)
	if err != nil {
		t.Fatal(err)
	}
	// FromWeights must copy.
	w[0] = 99
	if m.Weights[0] == 99 {
		t.Fatal("FromWeights aliases caller slice")
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(); err == nil {
		t.Fatal("empty aggregate accepted")
	}
}

// Property: aggregation is permutation-invariant.
func TestQuickAggregateOrderInvariant(t *testing.T) {
	pop := scenario(t, 5, 100)
	v := pop.Corpus.Vocabulary()
	models := make([]*Model, len(pop.Users))
	for i, u := range pop.Users {
		models[i] = TrainLocal(u.Activity, v)
	}
	f := func(p0, p1 uint8) bool {
		order := []int{int(p0) % 5, int(p1) % 5}
		shuffled := append([]*Model(nil), models...)
		shuffled[order[0]], shuffled[order[1]] = shuffled[order[1]], shuffled[order[0]]
		a, err := Aggregate(models...)
		if err != nil {
			return false
		}
		b, err := Aggregate(shuffled...)
		if err != nil {
			return false
		}
		for d := range a.Weights {
			if a.Weights[d] != b.Weights[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: a poisoned weight of magnitude w shifts the aggregate of n
// models by exactly w/n at that dimension (ring arithmetic is exact).
func TestQuickPoisonShiftExact(t *testing.T) {
	v := keyVocab(t)
	f := func(wRaw uint16, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		models := make([]*Model, n)
		for i := range models {
			models[i] = NewModel(v)
		}
		clean, err := Aggregate(models...)
		if err != nil {
			return false
		}
		value := float64(wRaw) / 100.0
		if err := Poison(models[0], "a", "b", value); err != nil {
			return false
		}
		poisoned, err := Aggregate(models...)
		if err != nil {
			return false
		}
		dim, _ := v.BigramIndex("a", "b")
		shift := poisoned.Weights[dim].Float() - clean.Weights[dim].Float()
		want := value / float64(n)
		return math.Abs(shift-want) < float64(n)/fixed.Scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
