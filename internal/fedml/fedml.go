// Package fedml implements the paper's strawman federated-learning system:
// a bigram next-word model whose weights are conditional probabilities in
// [0, 1], trained locally on each user's private typing activity and
// aggregated by the service (Figure 1b).
//
// It also implements both attacks the paper uses to motivate Glimmers:
//
//   - Model inversion (Figure 1b, citing Fredrikson et al. [4]): a local
//     partial model reveals which bigrams its user typed.
//   - Contribution poisoning (Figure 1d): a malicious user submits an
//     out-of-range weight (the famous 538 where [0,1] is legal) and skews
//     the aggregated global model; under blinding the service cannot see,
//     let alone reject, the poisoned value.
package fedml

import (
	"fmt"
	"math"
	"sort"

	"glimmers/internal/fixed"
	"glimmers/internal/keyboard"
)

// Model is a bigram next-word predictor: Weights[prev*V+next] is the
// fixed-point probability of next following prev.
type Model struct {
	vocab   *keyboard.Vocabulary
	Weights fixed.Vector
}

// NewModel returns a zero model over the vocabulary.
func NewModel(v *keyboard.Vocabulary) *Model {
	return &Model{vocab: v, Weights: fixed.NewVector(v.Dims())}
}

// FromWeights wraps an existing weight vector (e.g. an unblinded aggregate)
// as a model.
func FromWeights(v *keyboard.Vocabulary, w fixed.Vector) (*Model, error) {
	if len(w) != v.Dims() {
		return nil, fmt.Errorf("fedml: weight dim %d != vocab dims %d", len(w), v.Dims())
	}
	return &Model{vocab: v, Weights: w.Clone()}, nil
}

// Vocabulary returns the model's vocabulary.
func (m *Model) Vocabulary() *keyboard.Vocabulary { return m.vocab }

// TrainLocal builds a user's local partial model from private activity:
// row-normalized bigram counts, exactly the paper's strawman.
func TrainLocal(a keyboard.Activity, v *keyboard.Vocabulary) *Model {
	m := NewModel(v)
	for dim, w := range keyboard.WeightsFromCounts(a.BigramCounts(v), v) {
		m.Weights[dim] = fixed.Ring(w)
	}
	return m
}

// Aggregate computes the FedAvg global model: the element-wise mean of the
// local models. It is exact in the fixed-point ring, so it produces the
// same result whether the inputs arrive raw or blinded-then-unmasked.
func Aggregate(models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("fedml: aggregate of zero models")
	}
	vecs := make([]fixed.Vector, len(models))
	for i, m := range models {
		vecs[i] = m.Weights
	}
	mean, err := fixed.Mean(vecs...)
	if err != nil {
		return nil, err
	}
	return &Model{vocab: models[0].vocab, Weights: mean}, nil
}

// AggregateVectors is Aggregate over raw weight vectors, the form the
// service actually receives (possibly blinded).
func AggregateVectors(v *keyboard.Vocabulary, vecs ...fixed.Vector) (*Model, error) {
	mean, err := fixed.Mean(vecs...)
	if err != nil {
		return nil, err
	}
	return FromWeights(v, mean)
}

// Predict returns the most probable next word after prev and its weight.
func (m *Model) Predict(prev string) (string, float64, error) {
	p, ok := m.vocab.Index(prev)
	if !ok {
		return "", 0, fmt.Errorf("fedml: unknown word %q", prev)
	}
	n := m.vocab.Size()
	best, bestW := 0, math.Inf(-1)
	for next := 0; next < n; next++ {
		if w := m.Weights[p*n+next].Float(); w > bestW {
			best, bestW = next, w
		}
	}
	return m.vocab.Word(best), bestW, nil
}

// TopK returns the k highest-weight continuations of prev.
func (m *Model) TopK(prev string, k int) ([]string, error) {
	p, ok := m.vocab.Index(prev)
	if !ok {
		return nil, fmt.Errorf("fedml: unknown word %q", prev)
	}
	n := m.vocab.Size()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := m.Weights[p*n+idx[a]], m.Weights[p*n+idx[b]]
		if wa != wb {
			return int64(wa) > int64(wb)
		}
		return idx[a] < idx[b]
	})
	if k > n {
		k = n
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = m.vocab.Word(idx[i])
	}
	return out, nil
}

// Accuracy measures next-word prediction accuracy over held-out activity:
// the fraction of events whose predecessor's top prediction matches.
func (m *Model) Accuracy(heldout keyboard.Activity) float64 {
	if len(heldout) < 2 {
		return 0
	}
	hits, total := 0, 0
	for i := 1; i < len(heldout); i++ {
		pred, _, err := m.Predict(heldout[i-1].Word)
		if err != nil {
			continue
		}
		total++
		if pred == heldout[i].Word {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
