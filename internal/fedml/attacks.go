package fedml

import (
	"fmt"
	"sort"

	"glimmers/internal/fixed"
)

// InvertModel is the Figure 1b privacy attack: given a user's local partial
// model, recover the bigrams the user typed. For the strawman model this is
// direct — any nonzero weight is a typed bigram — which is exactly why the
// paper says partial models "can still reveal information about the raw
// inputs" even though raw keystrokes were never shared.
//
// It returns the model dimensions with the k largest nonzero weights.
func InvertModel(m *Model, k int) []int {
	type wd struct {
		dim int
		w   fixed.Ring
	}
	var nz []wd
	for dim, w := range m.Weights {
		if w != 0 {
			nz = append(nz, wd{dim, w})
		}
	}
	sort.Slice(nz, func(i, j int) bool {
		if nz[i].w != nz[j].w {
			return int64(nz[i].w) > int64(nz[j].w)
		}
		return nz[i].dim < nz[j].dim
	})
	if k > len(nz) {
		k = len(nz)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = nz[i].dim
	}
	return out
}

// InversionRecall scores an inversion attack: the fraction of the user's
// actual distinct bigrams the attacker recovered.
func InversionRecall(recovered []int, truth map[int]bool) float64 {
	if len(truth) == 0 {
		return 0
	}
	hits := 0
	for _, dim := range recovered {
		if truth[dim] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// Poison implements the Figure 1d attack: overwrite one model weight with
// an illegal value (the paper's example sets 538 where [0,1] is valid),
// inflating the target bigram in the aggregate beyond what any honest
// population could produce.
func Poison(m *Model, prev, next string, value float64) error {
	dim, err := m.vocab.BigramIndex(prev, next)
	if err != nil {
		return fmt.Errorf("fedml: poison: %w", err)
	}
	m.Weights[dim] = fixed.FromFloat(value)
	return nil
}

// SuggestionSkew quantifies poisoning damage: for the given cue word, it
// reports the aggregate weight of the attacker's target continuation in the
// clean and poisoned global models. A successful attack drives the poisoned
// weight far above every honest weight, flipping the service's suggestion.
type SuggestionSkew struct {
	Cue         string
	Target      string
	CleanW      float64
	PoisonedW   float64
	CleanTop    string
	PoisonedTop string
	// Flipped reports whether poisoning changed the top suggestion to the
	// attacker's target.
	Flipped bool
}

// MeasureSkew compares clean and poisoned global models for a cue word.
func MeasureSkew(clean, poisoned *Model, cue, target string) (SuggestionSkew, error) {
	dim, err := clean.vocab.BigramIndex(cue, target)
	if err != nil {
		return SuggestionSkew{}, err
	}
	cleanTop, _, err := clean.Predict(cue)
	if err != nil {
		return SuggestionSkew{}, err
	}
	poisonedTop, _, err := poisoned.Predict(cue)
	if err != nil {
		return SuggestionSkew{}, err
	}
	return SuggestionSkew{
		Cue:         cue,
		Target:      target,
		CleanW:      clean.Weights[dim].Float(),
		PoisonedW:   poisoned.Weights[dim].Float(),
		CleanTop:    cleanTop,
		PoisonedTop: poisonedTop,
		Flipped:     poisonedTop == target && cleanTop != target,
	}, nil
}
