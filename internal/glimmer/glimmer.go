// Package glimmer implements the paper's primary contribution: the Glimmer
// of Trust, a minimal client-side trusted third party that validates user
// contributions against service-defined predicates, blinds them for secure
// aggregation, and signs them so the service can tell validated
// contributions from forged ones — all without the user's private data ever
// crossing the trust boundary (Figures 2 and 3).
//
// The Glimmer runs inside a simulated SGX enclave (internal/tee). Its three
// components — Validation, Blinding, Signing — live in a single enclave by
// default (one transition in and out, as §3 recommends), or in three
// separate enclaves connected by local-attestation-secured channels for the
// decomposed configuration §3 sketches for easier verification
// (internal/glimmer/decomposed.go).
//
// Lifecycle:
//
//  1. The service vets the Glimmer binary and publishes its measurement.
//  2. The device loads the enclave and opens an attested channel to the
//     service ("hello"/"complete" ECALLs wrapping internal/attest).
//  3. The service provisions, over that channel: its contribution-signing
//     key, the validation predicate (statically verified on install), and
//     per-round blinding material ("provision" ECALL).
//  4. For each contribution the host passes the proposed contribution plus
//     private validation data into the "contribute" ECALL and gets back a
//     blinded, signed contribution to forward to the service — or a refusal.
package glimmer

import (
	"bytes"
	"errors"
	"fmt"

	"glimmers/internal/attest"
	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/predicate"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Mode selects how contributions are blinded before release.
type Mode byte

const (
	// ModeNone releases validated contributions unblinded — for inherently
	// public contributions like the paper's crowd-sourced map photos.
	ModeNone Mode = iota
	// ModeDealer adds a dealer-provisioned mask (the §3 scheme: masks sum
	// to zero across the cohort).
	ModeDealer
	// ModePairwise adds Bonawitz-style pairwise masks derived inside the
	// enclave from a roster of peer keys.
	ModePairwise
)

// Policy is the Glimmer's predicate-installation policy: the properties a
// service-supplied validator must have been proven to satisfy before the
// Glimmer will run it over private data.
type Policy struct {
	// MaxDeclassSites caps explicit declassification points. The canonical
	// value is 1: the single verdict.
	MaxDeclassSites int
	// MaxCostBound caps the proven worst-case instruction count.
	MaxCostBound int64
}

// DefaultPolicy is the vetted-Glimmer policy: one declassification site,
// a generous but finite cost budget.
var DefaultPolicy = Policy{MaxDeclassSites: 1, MaxCostBound: 1 << 24}

// Config fixes a Glimmer's identity. It is folded into the enclave binary's
// code identity, so the published measurement covers the service key, the
// expected dimensionality, the blinding mode, and the policy — swap any of
// them and attestation fails, exactly as the paper requires for the
// "embedded signature verification key" of §4.1.
type Config struct {
	// ServiceName names the service, separating attestation contexts.
	ServiceName string
	// ServiceKey is the PKIX DER of the service's identity key; the
	// Glimmer only completes handshakes signed by it.
	ServiceKey []byte
	// Dim is the contribution dimensionality the Glimmer accepts.
	Dim int
	// Mode selects the blinding construction.
	Mode Mode
	// Policy constrains installable predicates.
	Policy Policy
	// MinVerdict is the validation threshold: a predicate verdict below it
	// is a refusal. Zero means the default of 1 (any nonzero verdict
	// passes). Services using confidence-valued predicates (§3) set e.g.
	// 60 to demand 60%+ confidence before endorsement.
	MinVerdict int64
}

func (c Config) minVerdict() int64 {
	if c.MinVerdict <= 0 {
		return 1
	}
	return c.MinVerdict
}

func (c Config) encode() []byte {
	return wire.NewWriter().
		String(c.ServiceName).
		Bytes(c.ServiceKey).
		Uint32(uint32(c.Dim)).
		Byte(byte(c.Mode)).
		Uint32(uint32(c.Policy.MaxDeclassSites)).
		Uint64(uint64(c.Policy.MaxCostBound)).
		Uint64(uint64(c.MinVerdict)).
		Finish()
}

func decodeConfig(data []byte) (Config, error) {
	r := wire.NewReader(data)
	c := Config{
		ServiceName: r.String(),
		ServiceKey:  r.Bytes(),
		Dim:         int(r.Uint32()),
		Mode:        Mode(r.Byte()),
	}
	c.Policy.MaxDeclassSites = int(r.Uint32())
	c.Policy.MaxCostBound = int64(r.Uint64())
	c.MinVerdict = int64(r.Uint64())
	if err := r.Done(); err != nil {
		return Config{}, fmt.Errorf("glimmer: config: %w", err)
	}
	return c, nil
}

// ProvisionContext returns the attested-channel context string for a
// service's provisioning handshake.
func ProvisionContext(serviceName string) string {
	return "glimmers/provision/v1/" + serviceName
}

// Version is the Glimmer core's code identity version; bump it and every
// published measurement changes.
const Version = "glimmer-core/2.0"

// Errors surfaced to the host. The host is untrusted, so errors carry no
// private data — in particular a validation refusal does not say which
// element failed.
var (
	ErrNotProvisioned = errors.New("glimmer: not provisioned")
	ErrRejected       = errors.New("glimmer: contribution failed validation")
	ErrPolicy         = errors.New("glimmer: predicate violates installation policy")
	ErrBadRequest     = errors.New("glimmer: malformed request")
	ErrState          = errors.New("glimmer: invalid lifecycle state")
)

// Enclave object-store keys.
const (
	objHandshake = "hs"
	objSession   = "session"
	objSignKey   = "signing-key"
	objPredicate = "predicate"
	objAnalysis  = "predicate-analysis"
	objMasks     = "masks"
	objParty     = "pairwise-party"
	objConfig    = "config"
)

// BuildBinary constructs the single-enclave Glimmer for a configuration.
// The returned binary's measurement is what a vetting authority (the
// paper's EFF example) would review and publish.
func BuildBinary(cfg Config) *tee.Binary {
	code := append([]byte(Version+"\x00"), cfg.encode()...)
	b := tee.NewBinary("glimmer", Version, code)
	b.OnInit(func(env *tee.Env, _ []byte) ([]byte, error) {
		return nil, env.PutObject(objConfig, cfg)
	})
	b.Define("hello", ecallHello)
	b.Define("complete", ecallComplete)
	b.Define("provision", ecallProvision)
	b.Define("contribute", ecallContribute)
	b.Define("detect", ecallDetect)
	b.Define("pairwise-pub", ecallPairwisePub)
	b.Define("user-hello", ecallUserHello)
	b.Define("user-complete", ecallUserComplete)
	b.Define("user-contribute", ecallUserContribute)
	b.Define("export-state", ecallExportState)
	b.Define("restore-state", ecallRestoreState)
	b.Define("dealer-hello", ecallDealerHello)
	b.Define("dealer-complete", ecallDealerComplete)
	b.Define("install-mask", ecallInstallMask)
	b.Define("ticket-request", ecallTicketRequest)
	b.Define("ticket-install", ecallTicketInstall)
	b.Define("contribute-ticketed", ecallContributeTicketed)
	return b
}

// UserContext returns the attested-channel context a user device (which may
// have no TEE of its own, §4.2) uses to verify it is sending private data to
// a genuine Glimmer.
func UserContext(serviceName string) string {
	return "glimmers/user/v1/" + serviceName
}

const objUserSession = "user-session"

// ecallUserHello opens the user-facing attested channel (§4.2): the user
// device will verify the quote; the Glimmer does not need to authenticate
// the user.
func ecallUserHello(env *tee.Env, _ []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	key, hello, err := attest.NewEnclaveHello(env, UserContext(cfg.ServiceName))
	if err != nil {
		return nil, err
	}
	if err := env.PutObject(objUserSession+"/hs", key); err != nil {
		return nil, err
	}
	return attest.EncodeHello(hello), nil
}

// ecallUserComplete finishes the user handshake with an anonymous peer.
func ecallUserComplete(env *tee.Env, input []byte) ([]byte, error) {
	v, ok := env.GetObject(objUserSession + "/hs")
	if !ok {
		return nil, fmt.Errorf("%w: no user handshake in progress", ErrState)
	}
	key := v.(*attest.EnclaveKey)
	resp, err := attest.DecodeResponse(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	session, err := key.Complete(resp, nil)
	if err != nil {
		return nil, err
	}
	env.DeleteObject(objUserSession + "/hs")
	return nil, env.PutObject(objUserSession, session)
}

// ecallUserContribute is the remote-Glimmer contribution path: the request
// arrives session-encrypted from the user device, and the signed result
// returns the same way, so the hosting third party (§4.2's set-top box,
// university, or EFF machine) sees neither the contribution nor the private
// validation data.
func ecallUserContribute(env *tee.Env, input []byte) ([]byte, error) {
	v, ok := env.GetObject(objUserSession)
	if !ok {
		return nil, fmt.Errorf("%w: no user session", ErrState)
	}
	session := v.(*attest.Session)
	plaintext, err := session.Recv(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	out, err := ecallContribute(env, plaintext)
	if err != nil {
		// Even refusals travel encrypted: the host learns nothing about
		// why (or whether) a particular contribution was refused.
		refusal, sendErr := session.Send([]byte("rejected"))
		if sendErr != nil {
			return nil, sendErr
		}
		if errors.Is(err, ErrRejected) {
			return refusal, nil
		}
		return nil, err
	}
	return session.Send(append([]byte("accepted:"), out...))
}

func configOf(env *tee.Env) (Config, error) {
	v, ok := env.GetObject(objConfig)
	if !ok {
		return Config{}, fmt.Errorf("%w: missing config", ErrState)
	}
	cfg, ok := v.(Config)
	if !ok {
		return Config{}, fmt.Errorf("%w: corrupt config", ErrState)
	}
	return cfg, nil
}

// handshakeContext returns the attested-channel context for this enclave:
// the service provisioning context, suffixed with the component role for
// decomposed deployments so the three component handshakes cannot be
// confused for one another.
func handshakeContext(env *tee.Env, cfg Config) string {
	context := ProvisionContext(cfg.ServiceName)
	if v, ok := env.GetObject(objRole); ok {
		context += "#" + v.(Role).String()
	}
	return context
}

// ecallHello starts the attested handshake with the service.
func ecallHello(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	context := handshakeContext(env, cfg)
	key, hello, err := attest.NewEnclaveHello(env, context)
	if err != nil {
		return nil, err
	}
	if err := env.PutObject(objHandshake, key); err != nil {
		return nil, err
	}
	return attest.EncodeHello(hello), nil
}

// ecallComplete finishes the handshake, authenticating the service against
// the key embedded in the Glimmer's measured configuration.
func ecallComplete(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	v, ok := env.GetObject(objHandshake)
	if !ok {
		return nil, fmt.Errorf("%w: no handshake in progress", ErrState)
	}
	key, ok := v.(*attest.EnclaveKey)
	if !ok {
		return nil, fmt.Errorf("%w: corrupt handshake state", ErrState)
	}
	resp, err := attest.DecodeResponse(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	serviceKey, err := xcrypto.ParseVerifyKey(cfg.ServiceKey)
	if err != nil {
		return nil, fmt.Errorf("%w: embedded service key: %v", ErrState, err)
	}
	session, err := key.Complete(resp, serviceKey)
	if err != nil {
		return nil, err
	}
	env.DeleteObject(objHandshake)
	if err := env.PutObject(objSession, session); err != nil {
		return nil, err
	}
	return nil, nil
}

// ecallProvision installs service-supplied material delivered over the
// session: the contribution-signing key, the validation predicate, and
// blinding material. The predicate is statically verified and checked
// against the measured policy before installation — an unverifiable or
// over-privileged predicate is refused no matter what the service says.
func ecallProvision(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	session, payload, err := recvProvision(env, input)
	if err != nil {
		return nil, err
	}
	if err := installSigningKey(env, payload); err != nil {
		return nil, err
	}
	if err := installPredicate(env, cfg, payload); err != nil {
		return nil, err
	}
	if err := installBlinding(env, cfg, payload); err != nil {
		return nil, err
	}
	// Acknowledge over the session so the service knows installation
	// succeeded inside the enclave, not just that the ECALL returned.
	return session.Send([]byte("provisioned"))
}

// recvProvision authenticates and decodes a provisioning record from the
// established service session.
func recvProvision(env *tee.Env, input []byte) (*attest.Session, ProvisionPayload, error) {
	v, ok := env.GetObject(objSession)
	if !ok {
		return nil, ProvisionPayload{}, fmt.Errorf("%w: no service session", ErrState)
	}
	session, ok := v.(*attest.Session)
	if !ok {
		return nil, ProvisionPayload{}, fmt.Errorf("%w: corrupt session state", ErrState)
	}
	plaintext, err := session.Recv(input)
	if err != nil {
		return nil, ProvisionPayload{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	payload, err := DecodeProvision(plaintext)
	if err != nil {
		return nil, ProvisionPayload{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return session, payload, nil
}

func installSigningKey(env *tee.Env, payload ProvisionPayload) error {
	signKey, err := xcrypto.ParseSigningKey(payload.SigningKey)
	if err != nil {
		return fmt.Errorf("%w: signing key: %v", ErrBadRequest, err)
	}
	return env.PutObject(objSignKey, signKey)
}

// installPredicate verifies the predicate and checks it against the
// measured policy before installation — an unverifiable or over-privileged
// predicate is refused no matter what the service says.
func installPredicate(env *tee.Env, cfg Config, payload ProvisionPayload) error {
	prog, err := predicate.Decode(payload.Predicate)
	if err != nil {
		return fmt.Errorf("%w: predicate: %v", ErrBadRequest, err)
	}
	analysis, err := predicate.Verify(prog)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPolicy, err)
	}
	if cfg.Policy.MaxDeclassSites > 0 && len(analysis.DeclassSites) > cfg.Policy.MaxDeclassSites {
		return fmt.Errorf("%w: %d declassification sites (max %d)",
			ErrPolicy, len(analysis.DeclassSites), cfg.Policy.MaxDeclassSites)
	}
	if cfg.Policy.MaxCostBound > 0 && analysis.CostBound > cfg.Policy.MaxCostBound {
		return fmt.Errorf("%w: cost bound %d (max %d)",
			ErrPolicy, analysis.CostBound, cfg.Policy.MaxCostBound)
	}
	if err := env.PutObject(objPredicate, prog); err != nil {
		return err
	}
	return env.PutObject(objAnalysis, analysis)
}

func installBlinding(env *tee.Env, cfg Config, payload ProvisionPayload) error {
	switch cfg.Mode {
	case ModeDealer:
		// Dealer mode takes masks directly from the service payload, or a
		// vouched-for dealer-enclave identity to fetch them from (§3's
		// trusted blinding service), or both.
		if len(payload.DealerMeasurement) > 0 {
			if len(payload.DealerMeasurement) != len(tee.Measurement{}) {
				return fmt.Errorf("%w: dealer measurement is %d bytes", ErrBadRequest, len(payload.DealerMeasurement))
			}
			if len(payload.AttestationRoot) == 0 {
				return fmt.Errorf("%w: dealer measurement without attestation root", ErrBadRequest)
			}
			var dm tee.Measurement
			copy(dm[:], payload.DealerMeasurement)
			if err := env.PutObject(objDealerMeasurement, dm); err != nil {
				return err
			}
			if err := env.PutObject(objDealerRoot, payload.AttestationRoot); err != nil {
				return err
			}
		} else if len(payload.Masks) == 0 {
			return fmt.Errorf("%w: dealer mode without masks or dealer identity", ErrBadRequest)
		}
		masks := make(map[uint64]fixed.Vector, len(payload.Masks))
		for round, raw := range payload.Masks {
			if len(raw) != cfg.Dim {
				return fmt.Errorf("%w: mask dim %d != %d", ErrBadRequest, len(raw), cfg.Dim)
			}
			m := make(fixed.Vector, cfg.Dim)
			for i, u := range raw {
				m[i] = fixed.Ring(u)
			}
			masks[round] = m
		}
		return env.PutObject(objMasks, masks)
	case ModePairwise:
		if len(payload.Roster) == 0 {
			return fmt.Errorf("%w: pairwise mode without roster", ErrBadRequest)
		}
		return installParty(env, int(payload.PartyIndex), payload.Roster)
	case ModeNone:
		return nil
	}
	return fmt.Errorf("%w: unknown mode %d", ErrState, cfg.Mode)
}

// validateAndBlind runs the validation and blinding stages shared by the
// signed and ticketed contribution paths: predicate over (contribution,
// private), refusal below the measured threshold, then the configured
// blinding. The caller supplies the provisioned predicate state (fetched
// once per ECALL alongside whatever else the path needs). Runtime faults
// (index range, budget) are refusals, not infrastructure errors: a
// malformed contribution is an invalid one.
func validateAndBlind(env *tee.Env, cfg Config, req ContributionRequest,
	prog *predicate.Program, analysis *predicate.Analysis) (fixed.Vector, int64, error) {
	if len(req.Contribution) != cfg.Dim {
		return nil, 0, fmt.Errorf("%w: contribution dim %d != %d", ErrBadRequest, len(req.Contribution), cfg.Dim)
	}
	contribution := make([]int64, len(req.Contribution))
	for i, u := range req.Contribution {
		contribution[i] = int64(u)
	}
	private := make([]int64, len(req.Private))
	for i, u := range req.Private {
		private[i] = int64(u)
	}
	res, err := predicate.Run(prog, contribution, private, &predicate.Options{MaxSteps: analysis.CostBound})
	if err != nil || res.Verdict < cfg.minVerdict() {
		env.CounterIncrement("rejected")
		return nil, 0, ErrRejected
	}
	vec := make(fixed.Vector, len(req.Contribution))
	for i, u := range req.Contribution {
		vec[i] = fixed.Ring(u)
	}
	blinded, err := applyBlinding(env, cfg, vec, req.Round)
	if err != nil {
		return nil, 0, err
	}
	return blinded, res.Verdict, nil
}

// ecallContribute is the paper's Figure 3 pipeline: validate, blind, sign.
func ecallContribute(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	req, err := DecodeContribution(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	prog, analysis, signKey, err := provisionedState(env)
	if err != nil {
		return nil, err
	}
	blinded, confidence, err := validateAndBlind(env, cfg, req, prog, analysis)
	if err != nil {
		return nil, err
	}

	// Signing: endorse (blinded payload, round, measurement, confidence) so
	// the service can verify validation, provenance, and — for
	// confidence-valued predicates — how strongly the Glimmer vouches.
	sc := SignedContribution{
		ServiceName: cfg.ServiceName,
		Round:       req.Round,
		Measurement: env.Measurement(),
		Blinded:     blinded,
		Confidence:  confidence,
	}
	sig, err := signKey.Sign(sc.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("glimmer: signing: %w", err)
	}
	sc.Signature = sig
	env.CounterIncrement("accepted")
	return EncodeSignedContribution(sc), nil
}

// ecallDetect is the §4.1 bot-detection flow: run the (possibly
// confidential) predicate over private behavioural signals and emit a
// signed verdict carrying exactly one bit, in the public auditable format.
func ecallDetect(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	req, err := DecodeDetect(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	prog, analysis, signKey, err := provisionedState(env)
	if err != nil {
		return nil, err
	}
	private := make([]int64, len(req.Signals))
	for i, u := range req.Signals {
		private[i] = int64(u)
	}
	res, err := predicate.Run(prog, nil, private, &predicate.Options{MaxSteps: analysis.CostBound})
	human := err == nil && res.Verdict != 0

	v := Verdict{
		ServiceName: cfg.ServiceName,
		Challenge:   req.Challenge,
		Human:       human,
	}
	sig, err := signKey.Sign(v.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("glimmer: verdict signing: %w", err)
	}
	v.Signature = sig
	return EncodeVerdict(v), nil
}

// ecallPairwisePub returns the enclave's pairwise-blinding public key,
// generating the key on first use. The coordinator gathers these into the
// roster it later provisions.
func ecallPairwisePub(env *tee.Env, _ []byte) ([]byte, error) {
	if v, ok := env.GetObject(objParty + "/key"); ok {
		return v.(*xcrypto.DHKey).PublicBytes(), nil
	}
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, fmt.Errorf("glimmer: pairwise key: %w", err)
	}
	if err := env.PutObject(objParty+"/key", dh); err != nil {
		return nil, err
	}
	return dh.PublicBytes(), nil
}

func installParty(env *tee.Env, index int, roster [][]byte) error {
	v, ok := env.GetObject(objParty + "/key")
	if !ok {
		return fmt.Errorf("%w: pairwise key not generated", ErrState)
	}
	dh := v.(*xcrypto.DHKey)
	if index < 0 || index >= len(roster) || !bytes.Equal(roster[index], dh.PublicBytes()) {
		return fmt.Errorf("%w: roster does not place this enclave at index %d", ErrBadRequest, index)
	}
	party, err := blind.NewParty(index, dh, roster)
	if err != nil {
		return err
	}
	return env.PutObject(objParty, party)
}

func provisionedState(env *tee.Env) (*predicate.Program, *predicate.Analysis, *xcrypto.SigningKey, error) {
	pv, ok := env.GetObject(objPredicate)
	if !ok {
		return nil, nil, nil, ErrNotProvisioned
	}
	av, ok := env.GetObject(objAnalysis)
	if !ok {
		return nil, nil, nil, ErrNotProvisioned
	}
	kv, ok := env.GetObject(objSignKey)
	if !ok {
		return nil, nil, nil, ErrNotProvisioned
	}
	return pv.(*predicate.Program), av.(*predicate.Analysis), kv.(*xcrypto.SigningKey), nil
}

func applyBlinding(env *tee.Env, cfg Config, vec fixed.Vector, round uint64) (fixed.Vector, error) {
	switch cfg.Mode {
	case ModeNone:
		return vec, nil
	case ModeDealer:
		mv, ok := env.GetObject(objMasks)
		if !ok {
			return nil, ErrNotProvisioned
		}
		masks := mv.(map[uint64]fixed.Vector)
		mask, ok := masks[round]
		if !ok {
			return nil, fmt.Errorf("%w: no mask for round %d", ErrNotProvisioned, round)
		}
		// One-time use: reusing a mask across rounds would let the service
		// difference two blinded contributions.
		delete(masks, round)
		out := vec.Clone()
		out.AddInPlace(mask)
		return out, nil
	case ModePairwise:
		pv, ok := env.GetObject(objParty)
		if !ok {
			return nil, ErrNotProvisioned
		}
		mask, err := pv.(*blind.Party).Mask(len(vec), round)
		if err != nil {
			return nil, err
		}
		out := vec.Clone()
		out.AddInPlace(mask)
		return out, nil
	}
	return nil, fmt.Errorf("%w: unknown mode", ErrState)
}
