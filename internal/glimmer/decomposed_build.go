package glimmer

import (
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// BuildComponentBinary constructs one component of the decomposed Glimmer.
// All three components of a deployment must be signed by the same vendor
// key — the link protocol anchors inter-component trust in that signer.
func BuildComponentBinary(cfg Config, role Role, vendor *xcrypto.VerifyKey) *tee.Binary {
	code := append([]byte(Version+"#"+role.String()+"\x00"), cfg.encode()...)
	b := tee.NewBinary("glimmer-"+role.String(), Version, code)
	b.SetSigner(vendor)
	b.OnInit(func(env *tee.Env, _ []byte) ([]byte, error) {
		if err := env.PutObject(objConfig, cfg); err != nil {
			return nil, err
		}
		if err := env.PutObject(objRole, role); err != nil {
			return nil, err
		}
		switch role {
		case RoleValidator:
			return nil, env.PutObject(objExpectDown, RoleBlinder)
		case RoleBlinder:
			if err := env.PutObject(objExpectUp, RoleValidator); err != nil {
				return nil, err
			}
			return nil, env.PutObject(objExpectDown, RoleSigner)
		case RoleSigner:
			return nil, env.PutObject(objExpectUp, RoleBlinder)
		}
		return nil, fmt.Errorf("%w: unknown role %d", ErrState, role)
	})

	// Every component attests to and is provisioned by the service
	// independently, each installing only its own material.
	b.Define("hello", ecallHello)
	b.Define("complete", ecallComplete)
	b.Define("provision", func(env *tee.Env, input []byte) ([]byte, error) {
		cfg, err := configOf(env)
		if err != nil {
			return nil, err
		}
		session, payload, err := recvProvision(env, input)
		if err != nil {
			return nil, err
		}
		switch role {
		case RoleValidator:
			err = installPredicate(env, cfg, payload)
		case RoleBlinder:
			err = installBlinding(env, cfg, payload)
		case RoleSigner:
			err = installSigningKey(env, payload)
		}
		if err != nil {
			return nil, err
		}
		return session.Send([]byte("provisioned"))
	})

	switch role {
	case RoleValidator:
		b.Define("validate", ecallValidate)
		b.Define("link-init", ecallLinkInit)
		b.Define("link-finish", ecallLinkFinish)
	case RoleBlinder:
		b.Define("blind", ecallBlind)
		b.Define("link-accept", ecallLinkAccept)
		b.Define("link-init", ecallLinkInit)
		b.Define("link-finish", ecallLinkFinish)
		b.Define("pairwise-pub", ecallPairwisePub)
	case RoleSigner:
		b.Define("sign", ecallSign)
		b.Define("link-accept", ecallLinkAccept)
	}
	return b
}

// Component is the host handle to one enclave of a decomposed Glimmer. It
// satisfies the same attestation surface as a single-enclave Device.
type Component struct {
	role    Role
	enclave *tee.Enclave
}

// Role returns the component's pipeline role.
func (c *Component) Role() Role { return c.role }

// Enclave exposes the component's enclave (stats, direct ECALLs in tests
// and experiments).
func (c *Component) Enclave() *tee.Enclave { return c.enclave }

// Measurement returns the component enclave's measurement.
func (c *Component) Measurement() tee.Measurement { return c.enclave.Measurement() }

// Hello starts the component's attested handshake with the service.
func (c *Component) Hello() ([]byte, error) { return c.enclave.Call("hello", nil) }

// Complete finishes the component's handshake.
func (c *Component) Complete(response []byte) error {
	_, err := c.enclave.Call("complete", response)
	return err
}

// Provision forwards a session-encrypted provisioning record.
func (c *Component) Provision(record []byte) ([]byte, error) {
	return c.enclave.Call("provision", record)
}

// DecomposedDevice is the host orchestrator for a three-enclave Glimmer:
// it loads the components, establishes their mutual links, and pipelines
// contributions through validate → blind → sign.
type DecomposedDevice struct {
	validator *Component
	blinder   *Component
	signer    *Component
}

// NewDecomposedDevice loads and links the three components on a platform.
func NewDecomposedDevice(p *tee.Platform, cfg Config, vendor *xcrypto.VerifyKey, opts ...tee.LoadOption) (*DecomposedDevice, error) {
	load := func(role Role) (*Component, error) {
		enclave, err := p.Load(BuildComponentBinary(cfg, role, vendor), opts...)
		if err != nil {
			return nil, fmt.Errorf("glimmer: load %s: %w", role, err)
		}
		return &Component{role: role, enclave: enclave}, nil
	}
	validator, err := load(RoleValidator)
	if err != nil {
		return nil, err
	}
	blinder, err := load(RoleBlinder)
	if err != nil {
		return nil, err
	}
	signer, err := load(RoleSigner)
	if err != nil {
		return nil, err
	}
	d := &DecomposedDevice{validator: validator, blinder: blinder, signer: signer}
	if err := d.link(validator, blinder, "link-accept"); err != nil {
		return nil, err
	}
	if err := d.link(blinder, signer, "link-accept"); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *DecomposedDevice) link(up, down *Component, acceptECall string) error {
	offer, err := up.enclave.Call("link-init", nil)
	if err != nil {
		return fmt.Errorf("glimmer: %s link-init: %w", up.role, err)
	}
	answer, err := down.enclave.Call(acceptECall, offer)
	if err != nil {
		return fmt.Errorf("glimmer: %s link-accept: %w", down.role, err)
	}
	if _, err := up.enclave.Call("link-finish", answer); err != nil {
		return fmt.Errorf("glimmer: %s link-finish: %w", up.role, err)
	}
	return nil
}

// Validator returns the validation component handle.
func (d *DecomposedDevice) Validator() *Component { return d.validator }

// Blinder returns the blinding component handle.
func (d *DecomposedDevice) Blinder() *Component { return d.blinder }

// Signer returns the signing component handle.
func (d *DecomposedDevice) Signer() *Component { return d.signer }

// PairwisePub fetches the blinder's pairwise-blinding public key.
func (d *DecomposedDevice) PairwisePub() ([]byte, error) {
	return d.blinder.enclave.Call("pairwise-pub", nil)
}

// Contribute pipelines a contribution through the three components. The
// host sees only link-encrypted records between stages.
func (d *DecomposedDevice) Contribute(round uint64, contribution fixed.Vector, private []int64) (SignedContribution, error) {
	req := ContributionRequest{
		Round:        round,
		Contribution: VectorToBits(contribution),
		Private:      Int64sToBits(private),
	}
	validated, err := d.validator.enclave.Call("validate", EncodeContribution(req))
	if err != nil {
		return SignedContribution{}, err
	}
	blinded, err := d.blinder.enclave.Call("blind", validated)
	if err != nil {
		return SignedContribution{}, err
	}
	signed, err := d.signer.enclave.Call("sign", blinded)
	if err != nil {
		return SignedContribution{}, err
	}
	return DecodeSignedContribution(signed)
}

// SignerMeasurement is the measurement contributions carry — the identity a
// service allowlists for decomposed deployments.
func (d *DecomposedDevice) SignerMeasurement() tee.Measurement {
	return d.signer.enclave.Measurement()
}

// Stats aggregates transition counters across the three enclaves.
func (d *DecomposedDevice) Stats() tee.TransitionStats {
	var total tee.TransitionStats
	for _, c := range []*Component{d.validator, d.blinder, d.signer} {
		s := c.enclave.Stats()
		total.ECalls += s.ECalls
		total.OCalls += s.OCalls
		total.BytesIn += s.BytesIn
		total.BytesOut += s.BytesOut
		total.SimulatedOverhead += s.SimulatedOverhead
	}
	return total
}

// Destroy tears down all three enclaves.
func (d *DecomposedDevice) Destroy() {
	d.validator.enclave.Destroy()
	d.blinder.enclave.Destroy()
	d.signer.enclave.Destroy()
}
