package glimmer

import (
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
)

// Device is the host-side handle to a Glimmer: untrusted client code that
// loads the enclave, shuttles protocol messages, and feeds contributions in.
// Everything a Device touches is visible to the adversary in the paper's
// threat model; the tests exercise exactly that by tampering with what
// passes through it.
type Device struct {
	enclave *tee.Enclave
}

// NewDevice loads a single-enclave Glimmer for the configuration onto the
// platform.
func NewDevice(p *tee.Platform, cfg Config, opts ...tee.LoadOption) (*Device, error) {
	enclave, err := p.Load(BuildBinary(cfg), opts...)
	if err != nil {
		return nil, fmt.Errorf("glimmer: load: %w", err)
	}
	return &Device{enclave: enclave}, nil
}

// Enclave exposes the underlying enclave (for stats and OCALL wiring).
func (d *Device) Enclave() *tee.Enclave { return d.enclave }

// Measurement returns the Glimmer's measurement, the identity a service
// allowlists.
func (d *Device) Measurement() tee.Measurement { return d.enclave.Measurement() }

// Hello starts the attested handshake; the returned bytes go to the service.
func (d *Device) Hello() ([]byte, error) {
	return d.enclave.Call("hello", nil)
}

// Complete finishes the handshake with the service's response.
func (d *Device) Complete(response []byte) error {
	_, err := d.enclave.Call("complete", response)
	return err
}

// Provision forwards a session-encrypted provisioning record into the
// enclave and returns the session-encrypted acknowledgement.
func (d *Device) Provision(record []byte) ([]byte, error) {
	return d.enclave.Call("provision", record)
}

// PairwisePub fetches the enclave's pairwise-blinding public key.
func (d *Device) PairwisePub() ([]byte, error) {
	return d.enclave.Call("pairwise-pub", nil)
}

// Contribute runs the validate→blind→sign pipeline for one contribution.
func (d *Device) Contribute(round uint64, contribution fixed.Vector, private []int64) (SignedContribution, error) {
	req := ContributionRequest{
		Round:        round,
		Contribution: VectorToBits(contribution),
		Private:      Int64sToBits(private),
	}
	out, err := d.enclave.Call("contribute", EncodeContribution(req))
	if err != nil {
		return SignedContribution{}, err
	}
	return DecodeSignedContribution(out)
}

// TicketRequest builds the session's signed ticket request for the given
// round window — the one asymmetric operation of the ticketed fast path.
// The returned bytes go to the service (directly, or through a gaas host's
// ticket-grant command).
func (d *Device) TicketRequest(roundFirst, roundLast uint64) ([]byte, error) {
	return d.enclave.Call("ticket-request", EncodeTicketWindow(roundFirst, roundLast))
}

// InstallTicket completes the ticket exchange with the service's grant;
// subsequent ContributeTicketed calls MAC under the derived session key.
func (d *Device) InstallTicket(grant []byte) error {
	_, err := d.enclave.Call("ticket-install", grant)
	return err
}

// ContributeTicketed runs the validate→blind pipeline and seals the result
// with the session MAC instead of an ECDSA signature.
func (d *Device) ContributeTicketed(round uint64, contribution fixed.Vector, private []int64) (TicketedContribution, error) {
	req := ContributionRequest{
		Round:        round,
		Contribution: VectorToBits(contribution),
		Private:      Int64sToBits(private),
	}
	out, err := d.enclave.Call("contribute-ticketed", EncodeContribution(req))
	if err != nil {
		return TicketedContribution{}, err
	}
	return DecodeTicketedContribution(out)
}

// Detect runs the §4.1 bot-detection flow over private signals.
func (d *Device) Detect(challenge []byte, signals []int64) (Verdict, error) {
	req := DetectRequest{Challenge: challenge, Signals: Int64sToBits(signals)}
	out, err := d.enclave.Call("detect", EncodeDetect(req))
	if err != nil {
		return Verdict{}, err
	}
	return DecodeVerdict(out)
}

// UserHello starts the user-facing attested handshake (§4.2).
func (d *Device) UserHello() ([]byte, error) {
	return d.enclave.Call("user-hello", nil)
}

// UserComplete finishes the user-facing handshake.
func (d *Device) UserComplete(response []byte) error {
	_, err := d.enclave.Call("user-complete", response)
	return err
}

// UserContribute forwards a user-session-encrypted contribution record and
// returns the encrypted reply.
func (d *Device) UserContribute(record []byte) ([]byte, error) {
	return d.enclave.Call("user-contribute", record)
}

// Stats returns the enclave's transition counters.
func (d *Device) Stats() tee.TransitionStats { return d.enclave.Stats() }

// Destroy tears down the enclave.
func (d *Device) Destroy() { d.enclave.Destroy() }
