package glimmer_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/tee"
)

func TestProvisionPayloadRoundTrip(t *testing.T) {
	p := glimmer.ProvisionPayload{
		SigningKey: []byte("key-der"),
		Predicate:  []byte("predicate-bytes"),
		Masks: map[uint64][]uint64{
			3: {1, 2, 3},
			1: {7, 8, 9},
		},
		PartyIndex:        2,
		Roster:            [][]byte{[]byte("pk0"), []byte("pk1"), []byte("pk2")},
		DealerMeasurement: bytes.Repeat([]byte{0xAB}, 32),
		AttestationRoot:   []byte("root-der"),
	}
	back, err := glimmer.DecodeProvision(glimmer.EncodeProvision(p))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.SigningKey, p.SigningKey) || !bytes.Equal(back.Predicate, p.Predicate) {
		t.Fatal("key/predicate corrupted")
	}
	if len(back.Masks) != 2 || back.Masks[3][2] != 3 || back.Masks[1][0] != 7 {
		t.Fatalf("masks corrupted: %v", back.Masks)
	}
	if back.PartyIndex != 2 || len(back.Roster) != 3 || !bytes.Equal(back.Roster[1], []byte("pk1")) {
		t.Fatal("roster corrupted")
	}
	if !bytes.Equal(back.DealerMeasurement, p.DealerMeasurement) || !bytes.Equal(back.AttestationRoot, p.AttestationRoot) {
		t.Fatal("dealer fields corrupted")
	}
}

func TestProvisionPayloadEncodingDeterministic(t *testing.T) {
	// Map iteration order must not leak into the encoding (it feeds MACs).
	p := glimmer.ProvisionPayload{
		SigningKey: []byte("k"),
		Predicate:  []byte("p"),
		Masks:      map[uint64][]uint64{5: {5}, 1: {1}, 9: {9}, 3: {3}},
	}
	first := glimmer.EncodeProvision(p)
	for i := 0; i < 20; i++ {
		if !bytes.Equal(glimmer.EncodeProvision(p), first) {
			t.Fatal("provision encoding is non-deterministic")
		}
	}
}

func TestDecodeProvisionRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for _, c := range cases {
		if _, err := glimmer.DecodeProvision(c); err == nil {
			t.Errorf("garbage %v decoded", c)
		}
	}
}

func TestSignedContributionCodecTruncation(t *testing.T) {
	sc := glimmer.SignedContribution{
		ServiceName: "svc",
		Round:       1,
		Measurement: tee.Measurement{1},
		Blinded:     fixed.Vector{1, 2, 3},
		Confidence:  1,
		Signature:   []byte("sig"),
	}
	raw := glimmer.EncodeSignedContribution(sc)
	for _, cut := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if _, err := glimmer.DecodeSignedContribution(raw[:cut]); err == nil {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
	if _, err := glimmer.DecodeSignedContribution(append(raw, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// The decode fast path must return byte-for-byte what SignedBytes would
// re-encode — that equality is what lets the aggregation pipeline verify
// signatures without rebuilding each message.
func TestDecodeSignedContributionBytesMatchesSignedBytes(t *testing.T) {
	sc := glimmer.SignedContribution{
		ServiceName: "svc",
		Round:       42,
		Measurement: tee.Measurement{7, 8, 9},
		Blinded:     fixed.Vector{1, 2, 3, 1 << 60},
		Confidence:  77,
		Signature:   []byte("sig"),
	}
	raw := glimmer.EncodeSignedContribution(sc)
	back, signed, err := glimmer.DecodeSignedContributionBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(signed, back.SignedBytes()) {
		t.Fatal("fast-path signed bytes differ from SignedBytes re-encoding")
	}
	if back.ServiceName != sc.ServiceName || back.Round != sc.Round || back.Confidence != sc.Confidence {
		t.Fatalf("decode mismatch: %+v", back)
	}
	round, err := glimmer.PeekContributionRound(raw)
	if err != nil || round != sc.Round {
		t.Fatalf("PeekContributionRound = (%d, %v), want %d", round, err, sc.Round)
	}
	if _, err := glimmer.PeekContributionRound([]byte("xx")); err == nil {
		t.Fatal("peek of garbage succeeded")
	}
}

func TestVerdictCodecRejectsBadHeader(t *testing.T) {
	v := glimmer.Verdict{ServiceName: "svc", Challenge: []byte("c"), Human: true, Signature: []byte("s")}
	raw := glimmer.EncodeVerdict(v)
	back, err := glimmer.DecodeVerdict(raw)
	if err != nil || back.ServiceName != "svc" || !back.Human {
		t.Fatalf("round trip = (%+v, %v)", back, err)
	}
	// Corrupt the header length prefix region.
	bad := append([]byte(nil), raw...)
	bad[4] ^= 1
	if _, err := glimmer.DecodeVerdict(bad); err == nil {
		t.Fatal("bad header accepted")
	}
}

// Property: contribution requests round trip for arbitrary contents.
func TestQuickContributionRequestRoundTrip(t *testing.T) {
	f := func(round uint64, contribution, private []uint64) bool {
		req := glimmer.ContributionRequest{Round: round, Contribution: contribution, Private: private}
		back, err := glimmer.DecodeContribution(glimmer.EncodeContribution(req))
		if err != nil || back.Round != round ||
			len(back.Contribution) != len(contribution) || len(back.Private) != len(private) {
			return false
		}
		for i := range contribution {
			if back.Contribution[i] != contribution[i] {
				return false
			}
		}
		for i := range private {
			if back.Private[i] != private[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
