package glimmer

import (
	"encoding/binary"
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// TicketedView is the zero-copy decode of a ticketed contribution: every
// byte field is a view into the input frame, and the vector stays in its
// wire form (contiguous big-endian lanes) so the batch ingest path can MAC
// and accumulate straight from the frame without materializing a
// fixed.Vector per item. A view is valid only while the frame it was
// decoded from is; retaining callers must copy.
type TicketedView struct {
	ServiceName []byte // view into the frame
	Round       uint64
	TicketID    uint64
	LaneBytes   []byte // view: big-endian uint64 lanes, 8 bytes each
	Confidence  int64
	MAC         []byte // view into the frame
	fields      []byte // view: everything the MAC covers after the domain header
}

// Lanes returns the vector dimension.
func (v *TicketedView) Lanes() int { return len(v.LaneBytes) / 8 }

// PreimageParts returns the MAC preimage as the two segments
// xcrypto.MACState.VerifyKeyed consumes: the constant domain header and the
// frame's field bytes. Gluing them would cost a ~2 KB copy per message —
// the single largest allocation the per-item path paid.
func (v *TicketedView) PreimageParts() (head, tail []byte) {
	return ticketedHeader, v.fields
}

// Decode decodes data into v without copying. It accepts and rejects
// exactly the inputs TicketScratch.Decode does, with identical error
// strings — the scratch decoder is built on top of this one, so the two
// cannot drift.
func (v *TicketedView) Decode(data []byte) error {
	var r wire.Reader
	r.Reset(data)
	v.ServiceName = r.BytesView()
	v.Round = r.Uint64()
	hdr := r.BytesView()
	if len(hdr) != ticketHeaderLen || string(hdr[:len(ticketedMagic)]) != ticketedMagic {
		if r.Err() == nil {
			return fmt.Errorf("glimmer: ticketed contribution: bad ticket header (%d bytes)", len(hdr))
		}
	} else {
		v.TicketID = binary.BigEndian.Uint64(hdr[len(ticketedMagic):])
	}
	v.LaneBytes = r.Uint64sView()
	v.Confidence = int64(r.Uint64())
	fieldsEnd := len(data) - r.Remaining()
	v.MAC = r.BytesView()
	if err := r.Done(); err != nil {
		return fmt.Errorf("glimmer: ticketed contribution: %w", err)
	}
	if len(v.MAC) != xcrypto.MACSize {
		return fmt.Errorf("glimmer: ticketed contribution: MAC is %d bytes", len(v.MAC))
	}
	v.fields = data[:fieldsEnd]
	return nil
}

// Clear drops every view so a pooled TicketedView does not pin the frame it
// last decoded.
func (v *TicketedView) Clear() {
	*v = TicketedView{}
}

// materialize fills tc from the view, reusing tc's existing buffers: the
// bridge the per-item scratch decoder uses. The name string is reused when
// unchanged, the vector decoded in place.
func (v *TicketedView) materialize(tc *TicketedContribution, blinded fixed.Vector) {
	if string(v.ServiceName) != tc.ServiceName {
		tc.ServiceName = string(v.ServiceName)
	}
	tc.Round = v.Round
	tc.TicketID = v.TicketID
	n := v.Lanes()
	if cap(blinded) < n {
		blinded = make(fixed.Vector, n)
	} else {
		blinded = blinded[:n]
	}
	for i := 0; i < n; i++ {
		blinded[i] = fixed.Ring(binary.BigEndian.Uint64(v.LaneBytes[i*8:]))
	}
	tc.Blinded = blinded
	tc.Confidence = v.Confidence
	tc.MAC = v.MAC
}
