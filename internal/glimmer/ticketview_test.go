package glimmer

import (
	"bytes"
	"sync"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/race"
	"glimmers/internal/xcrypto"
)

// TestTicketedViewMatchesScratch locks the zero-copy decoder to the
// materializing one: same accepted fields, same lane values, and a MAC
// preimage (as two parts) identical to the scratch's joined buffer.
func TestTicketedViewMatchesScratch(t *testing.T) {
	key := xcrypto.SessionKey{9, 9, 9}
	var s TicketScratch
	var v TicketedView
	var mac xcrypto.MACState
	for i := 0; i < 8; i++ {
		tc := goldenTicketed()
		tc.Round = uint64(i)
		tc.TicketID = uint64(2000 + i)
		raw := SealTicketedContribution(tc, &key)
		preimage, err := s.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Decode(raw); err != nil {
			t.Fatal(err)
		}
		if string(v.ServiceName) != s.TC.ServiceName || v.Round != s.TC.Round ||
			v.TicketID != s.TC.TicketID || v.Confidence != s.TC.Confidence {
			t.Fatalf("view header diverges from scratch: %+v vs %+v", v, s.TC)
		}
		if !bytes.Equal(v.MAC, s.TC.MAC) {
			t.Fatal("view MAC diverges")
		}
		if v.Lanes() != len(s.TC.Blinded) {
			t.Fatalf("view has %d lanes, scratch %d", v.Lanes(), len(s.TC.Blinded))
		}
		sum := fixed.NewVector(v.Lanes())
		fixed.AccumulateWireInto(sum, v.LaneBytes)
		for j := range sum {
			if sum[j] != s.TC.Blinded[j] {
				t.Fatalf("lane %d: wire accumulate %#x, scratch decode %#x", j, uint64(sum[j]), uint64(s.TC.Blinded[j]))
			}
		}
		head, tail := v.PreimageParts()
		joined := append(append([]byte(nil), head...), tail...)
		if !bytes.Equal(joined, preimage) {
			t.Fatal("preimage parts do not join to the scratch preimage")
		}
		mac.SetKey(&key)
		if !mac.VerifyKeyed(head, tail, v.MAC) {
			t.Fatal("sealed MAC does not verify over the view's preimage parts")
		}
	}
}

// TestTicketedViewRejectsMalformed holds the view decoder to the exact
// refusal surface (and error strings) of the scratch decoder.
func TestTicketedViewRejectsMalformed(t *testing.T) {
	good := EncodeTicketedContribution(goldenTicketed())
	badMagic := append([]byte(nil), good...)
	hdrOff := 4 + len("golden.example") + 8 + 4
	copy(badMagic[hdrOff:], "NOPE")
	shortMAC := goldenTicketed()
	shortMAC.MAC = shortMAC.MAC[:16]
	var s TicketScratch
	var v TicketedView
	for name, raw := range map[string][]byte{
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0x00),
		"garbage":   {0xff, 0xff, 0xff, 0xff},
		"bad-magic": badMagic,
		"short-mac": EncodeTicketedContribution(shortMAC),
	} {
		_, scratchErr := s.Decode(raw)
		viewErr := v.Decode(raw)
		if viewErr == nil {
			t.Errorf("%s: view accepted malformed input", name)
			continue
		}
		if scratchErr == nil {
			t.Errorf("%s: scratch accepted what the view refused", name)
			continue
		}
		if viewErr.Error() != scratchErr.Error() {
			t.Errorf("%s: view error %q != scratch error %q", name, viewErr, scratchErr)
		}
	}
	if err := v.Decode(good); err != nil {
		t.Fatalf("view did not recover after failures: %v", err)
	}
	v.Clear()
	if v.MAC != nil || v.LaneBytes != nil || v.ServiceName != nil {
		t.Fatal("Clear left views behind")
	}
}

// TestTicketedViewDecodeAllocFree pins the whole point of the view: decode
// without a single heap allocation, cold or steady.
func TestTicketedViewDecodeAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	raw := EncodeTicketedContribution(goldenTicketed())
	var v TicketedView
	if got := testing.AllocsPerRun(500, func() {
		if err := v.Decode(raw); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("TicketedView.Decode: %.1f allocs/op, want 0", got)
	}
}

// TestDecodeSignedBytesPooledScratch guards the pooled copying decoder: the
// returned struct must be an independent copy (mutating the input must not
// reach it), errors must return a zero struct, and concurrent use of the
// shared pool must stay exact. Run under -race this doubles as the aliasing
// guard for codecScratchPool.
func TestDecodeSignedBytesPooledScratch(t *testing.T) {
	raw := allocContribution(5)
	sc, signed, err := DecodeSignedContributionBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), raw...)
	for i := range mutated {
		mutated[i] ^= 0xFF
	}
	sc2, signed2, err := DecodeSignedContributionBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sc.Signature, sc2.Signature) || !bytes.Equal(signed, signed2) {
		t.Fatal("pooled decode not deterministic")
	}
	if _, _, err := DecodeSignedContributionBytes(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated input accepted")
	}
	if bad, _, _ := DecodeSignedContributionBytes(raw[:len(raw)-2]); bad.ServiceName != "" || bad.Signature != nil {
		t.Fatal("error return is not the zero struct")
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := allocContribution(100 + w)
			want, _, err := DecodeSignedContributionBytes(mine)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 200; i++ {
				got, _, err := DecodeSignedContributionBytes(mine)
				if err != nil {
					t.Error(err)
					return
				}
				if got.Round != want.Round || !bytes.Equal(got.Signature, want.Signature) {
					t.Errorf("worker %d: pooled decode bled across goroutines", w)
					return
				}
				for j := range got.Blinded {
					if got.Blinded[j] != want.Blinded[j] {
						t.Errorf("worker %d: vector lane %d corrupted", w, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
