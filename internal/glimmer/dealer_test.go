package glimmer_test

import (
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/service"
	"glimmers/internal/tee"
	"glimmers/internal/xcrypto"
)

// dealerWorld provisions a cohort of n glimmers wired to an enclave-hosted
// dealer, all on one platform (the dealer "on one of the clients", §3).
func dealerWorld(t *testing.T, n int) (*tee.AttestationService, *service.Service, *glimmer.DealerHost, []*glimmer.Device) {
	t.Helper()
	as, platform, svc := newWorld(t)
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	glimmerMeasurement := glimmer.BuildBinary(cfg).Measurement()
	rootDER, err := as.Root().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dealer, err := glimmer.NewDealerHost(platform, glimmer.DealerConfig{
		ServiceName:     svc.Name(),
		AttestationRoot: rootDER,
		AllowedClient:   glimmerMeasurement,
	})
	if err != nil {
		t.Fatal(err)
	}

	devices := make([]*glimmer.Device, n)
	base, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	dm := dealer.Measurement()
	for i := range devices {
		dev, err := glimmer.NewDevice(platform, cfg)
		if err != nil {
			t.Fatal(err)
		}
		svc.Vet(dev.Measurement())
		payload := base
		payload.DealerMeasurement = dm[:]
		payload.AttestationRoot = rootDER
		if err := svc.Provision(dev, payload); err != nil {
			t.Fatal(err)
		}
		devices[i] = dev
	}
	return as, svc, dealer, devices
}

func enrollCohort(t *testing.T, dealer *glimmer.DealerHost, devices []*glimmer.Device) {
	t.Helper()
	for i, dev := range devices {
		hello, err := dev.DealerHello()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := dealer.Enroll(uint32(i), hello)
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.DealerComplete(resp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDealerEnclaveEndToEnd(t *testing.T) {
	const n = 4
	const round = uint64(9)
	_, svc, dealer, devices := dealerWorld(t, n)
	enrollCohort(t, dealer, devices)

	records, err := dealer.Distribute(dim, round)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != n {
		t.Fatalf("records = %d, want %d", len(records), n)
	}
	for i, dev := range devices {
		if err := dev.InstallMask(records[uint32(i)]); err != nil {
			t.Fatalf("device %d install mask: %v", i, err)
		}
	}

	// The cohort contributes; the dealt masks cancel exactly.
	agg := serialPipeline(svc, dim, round)
	trueSum := fixed.NewVector(dim)
	prg := xcrypto.NewPRG([]byte("dealer-cohort"))
	for _, dev := range devices {
		agg.Vet(dev.Measurement())
		c := fixed.NewVector(dim)
		for d := range c {
			c[d] = fixed.FromFloat(prg.Float64())
		}
		trueSum.AddInPlace(c)
		sc, err := dev.Contribute(round, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Blinded output must differ from the raw contribution.
		same := true
		for d := range c {
			if sc.Blinded[d] != c[d] {
				same = false
			}
		}
		if same {
			t.Fatal("dealer-dealt mask did not blind the contribution")
		}
		if err := agg.Add(glimmer.EncodeSignedContribution(sc)); err != nil {
			t.Fatal(err)
		}
	}
	got := agg.Sum()
	for d := range trueSum {
		if got[d] != trueSum[d] {
			t.Fatalf("dealt-mask aggregate mismatch at dim %d", d)
		}
	}
}

func TestDealerRefusesUnvettedClient(t *testing.T) {
	// A non-Glimmer enclave (different measurement) cannot enroll.
	as, platform, svc := newWorld(t)
	rootDER, err := as.Root().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dealer, err := glimmer.NewDealerHost(platform, glimmer.DealerConfig{
		ServiceName:     svc.Name(),
		AttestationRoot: rootDER,
		AllowedClient:   tee.Measurement{0xAA}, // not the imposter's measurement
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(dim, glimmer.ModeDealer, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	imposter, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hello, err := imposter.DealerHello()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dealer.Enroll(0, hello); err == nil {
		t.Fatal("dealer enrolled an unvetted enclave")
	}
}

func TestGlimmerRefusesImposterDealer(t *testing.T) {
	// The glimmer only completes with the dealer measurement the service
	// vouched for: an imposter dealer with the same service name (hence
	// same handshake context) but a different cohort label measures
	// differently and is refused at DealerComplete.
	as, svc, _, devices := dealerWorld(t, 1)
	dev := devices[0]
	platform2, err := tee.NewPlatform(as)
	if err != nil {
		t.Fatal(err)
	}
	rootDER, err := as.Root().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	imposter, err := glimmer.NewDealerHost(platform2, glimmer.DealerConfig{
		ServiceName:     svc.Name(),
		Cohort:          "rogue-cohort",
		AttestationRoot: rootDER,
		AllowedClient:   dev.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hello, err := dev.DealerHello()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := imposter.Enroll(0, hello)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.DealerComplete(resp); err == nil {
		t.Fatal("glimmer completed with a dealer the service never vouched for")
	}
}

func TestInstallMaskRejectsTamperedRecord(t *testing.T) {
	_, _, dealer, devices := dealerWorld(t, 2)
	enrollCohort(t, dealer, devices)
	records, err := dealer.Distribute(dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), records[0]...)
	bad[len(bad)-1] ^= 1
	if err := devices[0].InstallMask(bad); err == nil {
		t.Fatal("tampered mask record installed")
	}
	// The host cannot cross-deliver records either (sessions differ).
	if err := devices[0].InstallMask(records[1]); err == nil {
		t.Fatal("record for another client installed")
	}
}

func TestDealerRejectsDuplicateIndex(t *testing.T) {
	_, _, dealer, devices := dealerWorld(t, 2)
	hello0, err := devices[0].DealerHello()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dealer.Enroll(0, hello0); err != nil {
		t.Fatal(err)
	}
	hello1, err := devices[1].DealerHello()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dealer.Enroll(0, hello1); err == nil {
		t.Fatal("duplicate cohort index accepted")
	}
}

func TestDistributeRequiresContiguousCohort(t *testing.T) {
	_, _, dealer, devices := dealerWorld(t, 2)
	hello, err := devices[0].DealerHello()
	if err != nil {
		t.Fatal(err)
	}
	// Enroll only index 1: distribution must refuse the gap at 0.
	if _, err := dealer.Enroll(1, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := dealer.Distribute(dim, 1); err == nil {
		t.Fatal("distribution with a cohort gap succeeded")
	}
}
