package glimmer_test

import (
	"errors"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/glimmer"
	"glimmers/internal/predicate"
)

// confidencePredicate returns a verifiable predicate whose verdict is a
// 0–100 confidence: 100 minus the (clamped) distance of contribution[0]
// from the private expectation, scaled.
func confidencePredicate() *predicate.Program {
	b := predicate.NewBuilder("confidence", 0)
	b.LoadC(0).LoadP(0).Sub().Abs() // |claimed - observed|
	b.Push(100).Swap().Sub()        // 100 - diff
	b.Push(0).Max()                 // clamp at 0
	b.Declass().Verdict()
	return b.MustBuild()
}

func TestConfidenceVerdicts(t *testing.T) {
	_, platform, svc := newWorld(t)
	if err := svc.SetPredicate(confidencePredicate()); err != nil {
		t.Fatal(err)
	}
	cfg, err := svc.GlimmerConfig(1, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinVerdict = 60 // demand >= 60% confidence
	dev, err := glimmer.NewDevice(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Vet(dev.Measurement())
	payload, err := svc.BasePayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Provision(dev, payload); err != nil {
		t.Fatal(err)
	}

	// Claim 50, observed 45: confidence 95 — endorsed, with the confidence
	// carried in the signed message.
	sc, err := dev.Contribute(1, fixed.Vector{50}, []int64{45})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Confidence != 95 {
		t.Fatalf("Confidence = %d, want 95", sc.Confidence)
	}
	if !svc.ContributionVerifyKey().Verify(sc.SignedBytes(), sc.Signature) {
		t.Fatal("confidence contribution signature invalid")
	}
	// The confidence is signature-covered: tampering breaks verification.
	forged := sc
	forged.Confidence = 100
	if svc.ContributionVerifyKey().Verify(forged.SignedBytes(), forged.Signature) {
		t.Fatal("confidence not covered by the signature")
	}

	// Claim 50, observed 0: confidence 50 < 60 — refused.
	if _, err := dev.Contribute(2, fixed.Vector{50}, []int64{0}); !errors.Is(err, glimmer.ErrRejected) {
		t.Fatalf("low-confidence contribution: err = %v, want ErrRejected", err)
	}
}

func TestConfidenceThresholdIsMeasured(t *testing.T) {
	// Two configs differing only in MinVerdict must measure differently —
	// a host cannot silently lower the bar.
	_, _, svc := newWorld(t)
	strict, err := svc.GlimmerConfig(1, glimmer.ModeNone, glimmer.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	strict.MinVerdict = 90
	lax := strict
	lax.MinVerdict = 10
	if glimmer.BuildBinary(strict).Measurement() == glimmer.BuildBinary(lax).Measurement() {
		t.Fatal("MinVerdict not folded into the measurement")
	}
}

func TestConfidenceRoundTripsThroughCodec(t *testing.T) {
	sc := glimmer.SignedContribution{
		ServiceName: "svc",
		Round:       7,
		Blinded:     fixed.Vector{1, 2, 3},
		Confidence:  83,
		Signature:   []byte("sig"),
	}
	back, err := glimmer.DecodeSignedContribution(glimmer.EncodeSignedContribution(sc))
	if err != nil {
		t.Fatal(err)
	}
	if back.Confidence != 83 {
		t.Fatalf("Confidence = %d, want 83", back.Confidence)
	}
}
