package glimmer

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
)

// Golden vectors for the signed-contribution encoding — the one message
// that crosses the client/service boundary, whose format §4.1 requires to
// be public and auditable. The fixtures freeze both the transport encoding
// (EncodeSignedContribution) and the signature preimage (SignedBytes): a
// refactor that changes either breaks verification between versions, so it
// must fail here first.

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	data, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return data
}

// goldenContribution is the frozen message: every field populated with
// distinctive values, including a ring element with the top bit set.
func goldenContribution() SignedContribution {
	var m tee.Measurement
	for i := range m {
		m[i] = byte(i)
	}
	sig := make([]byte, 64)
	for i := range sig {
		sig[i] = byte(0xA0 ^ i)
	}
	return SignedContribution{
		ServiceName: "golden.example",
		Round:       7,
		Measurement: m,
		Blinded: fixed.Vector{
			0,
			1,
			fixed.FromFloat(0.5),
			fixed.Ring(1 << 63),
			fixed.Ring(0xFFFFFFFFFFFFFFFF),
		},
		Confidence: 100,
		Signature:  sig,
	}
}

func TestGoldenSignedContribution(t *testing.T) {
	want := readGolden(t, "signed_contribution.hex")
	sc := goldenContribution()
	if got := EncodeSignedContribution(sc); !bytes.Equal(got, want) {
		t.Fatalf("encoding changed:\n got: %x\nwant: %x", got, want)
	}
	dec, signed, err := DecodeSignedContributionBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ServiceName != sc.ServiceName || dec.Round != sc.Round ||
		dec.Measurement != sc.Measurement || dec.Confidence != sc.Confidence {
		t.Fatalf("decoded fields differ: %+v", dec)
	}
	if len(dec.Blinded) != len(sc.Blinded) {
		t.Fatalf("decoded %d elements, want %d", len(dec.Blinded), len(sc.Blinded))
	}
	for i := range sc.Blinded {
		if dec.Blinded[i] != sc.Blinded[i] {
			t.Errorf("blinded[%d] = %v, want %v", i, dec.Blinded[i], sc.Blinded[i])
		}
	}
	if !bytes.Equal(dec.Signature, sc.Signature) {
		t.Errorf("signature differs")
	}
	wantSigned := readGolden(t, "signed_contribution_preimage.hex")
	if !bytes.Equal(signed, wantSigned) {
		t.Fatalf("recovered signature preimage changed:\n got: %x\nwant: %x", signed, wantSigned)
	}
}

func TestGoldenSignedBytesPreimage(t *testing.T) {
	want := readGolden(t, "signed_contribution_preimage.hex")
	if got := goldenContribution().SignedBytes(); !bytes.Equal(got, want) {
		t.Fatalf("signature preimage changed:\n got: %x\nwant: %x", got, want)
	}
}

func TestGoldenRoundPeek(t *testing.T) {
	round, err := PeekContributionRound(readGolden(t, "signed_contribution.hex"))
	if err != nil {
		t.Fatal(err)
	}
	if round != 7 {
		t.Fatalf("peeked round %d, want 7", round)
	}
}
