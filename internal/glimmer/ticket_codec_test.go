package glimmer

import (
	"bytes"
	"testing"

	"glimmers/internal/fixed"
	"glimmers/internal/race"
	"glimmers/internal/xcrypto"
)

// goldenTicketed is the frozen MAC'd-contribution fixture: every field
// populated with distinctive values, same spirit as goldenContribution.
func goldenTicketed() TicketedContribution {
	mac := make([]byte, xcrypto.MACSize)
	for i := range mac {
		mac[i] = byte(0xC0 ^ i)
	}
	return TicketedContribution{
		ServiceName: "golden.example",
		Round:       7,
		TicketID:    0x1122334455667788,
		Blinded: fixed.Vector{
			0,
			1,
			fixed.FromFloat(0.5),
			fixed.Ring(1 << 63),
			fixed.Ring(0xFFFFFFFFFFFFFFFF),
		},
		Confidence: 100,
		MAC:        mac,
	}
}

func TestGoldenTicketedContribution(t *testing.T) {
	want := readGolden(t, "ticketed_contribution.hex")
	tc := goldenTicketed()
	if got := EncodeTicketedContribution(tc); !bytes.Equal(got, want) {
		t.Fatalf("encoding changed:\n got: %x\nwant: %x", got, want)
	}
	dec, err := DecodeTicketedContribution(want)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ServiceName != tc.ServiceName || dec.Round != tc.Round ||
		dec.TicketID != tc.TicketID || dec.Confidence != tc.Confidence {
		t.Fatalf("decoded fields differ: %+v", dec)
	}
	if !bytes.Equal(dec.MAC, tc.MAC) {
		t.Error("MAC differs")
	}
	wantPre := readGolden(t, "ticketed_contribution_preimage.hex")
	if got := tc.MACBytes(); !bytes.Equal(got, wantPre) {
		t.Fatalf("MAC preimage changed:\n got: %x\nwant: %x", got, wantPre)
	}
}

// TestTicketedPeeksUnchanged pins the routing contract: the ticketed
// variant leads with the same (service, round) fields, so the existing
// header peeks route both variants identically, and the variant peek
// distinguishes them.
func TestTicketedPeeksUnchanged(t *testing.T) {
	ticketed := EncodeTicketedContribution(goldenTicketed())
	signed := readGolden(t, "signed_contribution.hex")

	name, err := PeekContributionService(ticketed)
	if err != nil || string(name) != "golden.example" {
		t.Fatalf("service peek on ticketed = (%q, %v)", name, err)
	}
	round, err := PeekContributionRound(ticketed)
	if err != nil || round != 7 {
		t.Fatalf("round peek on ticketed = (%d, %v)", round, err)
	}
	if !PeekContributionTicketed(ticketed) {
		t.Fatal("variant peek missed a ticketed contribution")
	}
	if PeekContributionTicketed(signed) {
		t.Fatal("variant peek misclassified a signed contribution")
	}
	for _, bad := range [][]byte{nil, {0x00}, {0xff, 0xff, 0xff, 0xff}} {
		if PeekContributionTicketed(bad) {
			t.Fatalf("variant peek accepted garbage %x", bad)
		}
	}
}

// TestTicketScratchMatchesCopyingDecode locks the scratch decoder to the
// copying decoder, including the MAC preimage verification consumes.
func TestTicketScratchMatchesCopyingDecode(t *testing.T) {
	var s TicketScratch
	key := xcrypto.SessionKey{1, 2, 3}
	for i := 0; i < 8; i++ {
		tc := goldenTicketed()
		tc.Round = uint64(i)
		tc.TicketID = uint64(1000 + i)
		raw := SealTicketedContribution(tc, &key)
		want, err := DecodeTicketedContribution(raw)
		if err != nil {
			t.Fatal(err)
		}
		preimage, err := s.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if s.TC.ServiceName != want.ServiceName || s.TC.Round != want.Round ||
			s.TC.TicketID != want.TicketID || s.TC.Confidence != want.Confidence {
			t.Fatalf("decoded header diverges: %+v vs %+v", s.TC, want)
		}
		if len(s.TC.Blinded) != len(want.Blinded) {
			t.Fatal("vector length diverges")
		}
		for j := range want.Blinded {
			if s.TC.Blinded[j] != want.Blinded[j] {
				t.Fatalf("vector[%d] diverges", j)
			}
		}
		if !bytes.Equal(s.TC.MAC, want.MAC) {
			t.Fatal("MAC diverges")
		}
		if !bytes.Equal(preimage, want.MACBytes()) {
			t.Fatal("preimage diverges from MACBytes")
		}
		if !xcrypto.VerifySessionMAC(&key, preimage, s.TC.MAC) {
			t.Fatal("sealed MAC does not verify over the recovered preimage")
		}
	}
}

// TestTicketScratchRejectsMalformed mirrors the signed scratch's refusal
// surface, plus the variant-confusion cases.
func TestTicketScratchRejectsMalformed(t *testing.T) {
	var s TicketScratch
	good := EncodeTicketedContribution(goldenTicketed())
	badMagic := append([]byte(nil), good...)
	// The ticket header's magic starts right after the name field's length
	// prefix + content and the 8-byte round and the 4-byte header length.
	hdrOff := 4 + len("golden.example") + 8 + 4
	copy(badMagic[hdrOff:], "NOPE")
	shortMAC := goldenTicketed()
	shortMAC.MAC = shortMAC.MAC[:16]
	signed := readGolden(t, "signed_contribution.hex")
	for name, raw := range map[string][]byte{
		"truncated":      good[:len(good)-3],
		"trailing":       append(append([]byte(nil), good...), 0x00),
		"garbage":        {0xff, 0xff, 0xff, 0xff},
		"bad-magic":      badMagic,
		"short-mac":      EncodeTicketedContribution(shortMAC),
		"signed-variant": signed,
	} {
		if _, err := s.Decode(raw); err == nil {
			t.Errorf("%s: ticket scratch accepted malformed input", name)
		}
		if _, err := DecodeTicketedContribution(raw); err == nil {
			t.Errorf("%s: copying decode accepted malformed input", name)
		}
	}
	// A ticketed message fed to the signed decoder must be refused too.
	var sc ContributionScratch
	if _, err := sc.Decode(good); err == nil {
		t.Error("signed scratch accepted a ticketed contribution")
	}
	// The scratch recovers after failures.
	if _, err := s.Decode(good); err != nil {
		t.Fatalf("scratch did not recover: %v", err)
	}
}

// TestTicketScratchDecodeAllocFree pins the fast-path contract: steady-state
// ticketed decode into a reused scratch performs zero heap allocations.
func TestTicketScratchDecodeAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	raws := make([][]byte, 64)
	for i := range raws {
		tc := TicketedContribution{
			ServiceName: "alloc.example",
			Round:       42,
			TicketID:    uint64(i),
			Blinded:     make(fixed.Vector, 64),
			Confidence:  1,
			MAC:         bytes.Repeat([]byte{0x5A}, xcrypto.MACSize),
		}
		for j := range tc.Blinded {
			tc.Blinded[j] = fixed.Ring(uint64(i)*1000003 + uint64(j))
		}
		raws[i] = EncodeTicketedContribution(tc)
	}
	var s TicketScratch
	if _, err := s.Decode(raws[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	if got := testing.AllocsPerRun(500, func() {
		i++
		preimage, err := s.Decode(raws[i%len(raws)])
		if err != nil {
			t.Fatal(err)
		}
		if len(preimage) == 0 || s.TC.Round != 42 {
			t.Fatal("bad decode")
		}
	}); got > 0 {
		t.Errorf("ticket scratch decode: %.1f allocs/op, want 0", got)
	}
}

// TestPeekContributionTicketedAllocFree guards the dispatch peek.
func TestPeekContributionTicketedAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	ticketed := EncodeTicketedContribution(goldenTicketed())
	signed := allocContribution(3)
	if got := testing.AllocsPerRun(500, func() {
		if !PeekContributionTicketed(ticketed) || PeekContributionTicketed(signed) {
			t.Fatal("peek misclassified")
		}
	}); got > 0 {
		t.Errorf("PeekContributionTicketed: %.1f allocs/op, want 0", got)
	}
}

// TestEncodeSignedContributionSingleAlloc pins the pooled-writer encoder:
// one exact-size allocation per message at steady state.
func TestEncodeSignedContributionSingleAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	sc, _, err := DecodeSignedContributionBytes(allocContribution(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(500, func() {
		if len(EncodeSignedContribution(sc)) == 0 {
			t.Fatal("empty encoding")
		}
	}); got > 1 {
		t.Errorf("EncodeSignedContribution: %.1f allocs/op, want 1", got)
	}
}
