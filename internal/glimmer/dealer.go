package glimmer

import (
	"fmt"

	"glimmers/internal/attest"
	"glimmers/internal/blind"
	"glimmers/internal/fixed"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// The enclave-hosted blinding dealer of §3: "Assume the existence of a
// trusted blinding service — which could, itself, be implemented as a
// separate enclave on one of the clients — that computes N random blinding
// values pᵢ such that Σpᵢ = 0. It then seals each pᵢ value to the Glimmer
// code, and encrypts one of the sealed values to each of N clients' public
// keys."
//
// Realization: each client Glimmer opens a mutually attested channel to the
// dealer enclave (the Glimmer proves it is vetted Glimmer code; the dealer
// proves it is the vetted dealer). The dealer draws the zero-sum masks from
// hardware randomness inside its enclave and ships mask i to client i over
// session i. The host that shuttles the records sees only ciphertext, and
// only genuine Glimmer enclaves can receive masks — the modern equivalent
// of "sealed to the Glimmer code".

// DealerVersion is the dealer enclave's code identity version.
const DealerVersion = "glimmer-dealer/1.0"

// DealerContext is the attested-channel context between Glimmers and the
// dealer.
func DealerContext(serviceName string) string {
	return "glimmers/dealer/v1/" + serviceName
}

// DealerConfig fixes a dealer enclave's identity; it is folded into the
// dealer's measurement.
type DealerConfig struct {
	// ServiceName scopes the dealer to one service's cohorts.
	ServiceName string
	// Cohort labels the deployment (e.g. an epoch or region); it is part
	// of the measurement, so a service vouches for one specific cohort's
	// dealer.
	Cohort string
	// AttestationRoot is the PKIX DER of the attestation-service root the
	// dealer uses to verify client quotes.
	AttestationRoot []byte
	// AllowedClient is the vetted Glimmer measurement masks may go to.
	AllowedClient tee.Measurement
}

func (c DealerConfig) encode() []byte {
	return wire.NewWriter().
		String(c.ServiceName).
		String(c.Cohort).
		Bytes(c.AttestationRoot).
		Bytes(c.AllowedClient[:]).
		Finish()
}

// Dealer enclave object-store keys.
const (
	objDealerConfig   = "dealer-config"
	objDealerSessions = "dealer-sessions"
)

// BuildDealerBinary constructs the dealer enclave.
func BuildDealerBinary(cfg DealerConfig) *tee.Binary {
	code := append([]byte(DealerVersion+"\x00"), cfg.encode()...)
	b := tee.NewBinary("glimmer-dealer", DealerVersion, code)
	b.OnInit(func(env *tee.Env, _ []byte) ([]byte, error) {
		if err := env.PutObject(objDealerConfig, cfg); err != nil {
			return nil, err
		}
		return nil, env.PutObject(objDealerSessions, map[uint32]*attest.Session{})
	})
	b.Define("enroll", ecallDealerEnroll)
	b.Define("distribute", ecallDealerDistribute)
	return b
}

// ecallDealerEnroll admits one client Glimmer into the cohort: input is
// {index, client hello}; the dealer verifies the client's quote against the
// vetted Glimmer measurement and answers with its own attested response.
func ecallDealerEnroll(env *tee.Env, input []byte) ([]byte, error) {
	cfgV, ok := env.GetObject(objDealerConfig)
	if !ok {
		return nil, fmt.Errorf("%w: dealer config missing", ErrState)
	}
	cfg := cfgV.(DealerConfig)
	r := wire.NewReader(input)
	index := r.Uint32()
	helloBytes := r.Bytes()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	hello, err := attest.DecodeHello(helloBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	root, err := xcrypto.ParseVerifyKey(cfg.AttestationRoot)
	if err != nil {
		return nil, fmt.Errorf("%w: dealer root key: %v", ErrState, err)
	}
	verifier := &tee.QuoteVerifier{Root: root, Allowed: []tee.Measurement{cfg.AllowedClient}}
	session, resp, err := attest.RespondFromEnclave(env, hello, verifier, DealerContext(cfg.ServiceName))
	if err != nil {
		return nil, err
	}
	sessionsV, _ := env.GetObject(objDealerSessions)
	sessions := sessionsV.(map[uint32]*attest.Session)
	if _, dup := sessions[index]; dup {
		return nil, fmt.Errorf("%w: cohort index %d already enrolled", ErrBadRequest, index)
	}
	sessions[index] = session
	return attest.EncodeHello(resp), nil
}

// ecallDealerDistribute draws zero-sum masks for the enrolled cohort and
// returns one encrypted record per client, in index order. Input:
// {dim, round}.
func ecallDealerDistribute(env *tee.Env, input []byte) ([]byte, error) {
	r := wire.NewReader(input)
	dim := r.Uint32()
	round := r.Uint64()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sessionsV, _ := env.GetObject(objDealerSessions)
	sessions := sessionsV.(map[uint32]*attest.Session)
	n := len(sessions)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty cohort", ErrState)
	}
	// Hardware randomness for the dealing seed: the host never sees it.
	seed := make([]byte, 32)
	if err := env.Rand(seed); err != nil {
		return nil, err
	}
	masks, err := blind.ZeroSumMasks(seed, n, int(dim))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	out := wire.NewWriter()
	out.Uint32(uint32(n))
	for i := 0; i < n; i++ {
		session, ok := sessions[uint32(i)]
		if !ok {
			return nil, fmt.Errorf("%w: cohort indices not contiguous (missing %d)", ErrState, i)
		}
		record, err := session.Send(wire.NewWriter().
			Uint64(round).
			Uint64s(VectorToBits(masks[i])).
			Finish())
		if err != nil {
			return nil, err
		}
		out.Uint32(uint32(i))
		out.Bytes(record)
	}
	return out.Finish(), nil
}

// Client-side (Glimmer) dealer ECALLs, defined on the standard binary.

const objDealerHS = "dealer-hs"

// ecallDealerHello opens the Glimmer's attested channel to the dealer.
func ecallDealerHello(env *tee.Env, _ []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	key, hello, err := attest.NewEnclaveHello(env, DealerContext(cfg.ServiceName))
	if err != nil {
		return nil, err
	}
	if err := env.PutObject(objDealerHS, key); err != nil {
		return nil, err
	}
	return attest.EncodeHello(hello), nil
}

// ecallDealerComplete finishes the dealer handshake. Input: {dealer
// measurement (32 bytes, as provisioned by the service), dealer response}.
// The Glimmer only accepts dealers whose measurement the service vouched
// for — provisioned over the already-authenticated service session.
func ecallDealerComplete(env *tee.Env, input []byte) ([]byte, error) {
	r := wire.NewReader(input)
	respBytes := r.Bytes()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	hsV, ok := env.GetObject(objDealerHS)
	if !ok {
		return nil, fmt.Errorf("%w: no dealer handshake in progress", ErrState)
	}
	key := hsV.(*attest.EnclaveKey)
	dmV, ok := env.GetObject(objDealerMeasurement)
	if !ok {
		return nil, fmt.Errorf("%w: no dealer measurement provisioned", ErrNotProvisioned)
	}
	rootV, ok := env.GetObject(objDealerRoot)
	if !ok {
		return nil, fmt.Errorf("%w: no attestation root provisioned", ErrNotProvisioned)
	}
	root, err := xcrypto.ParseVerifyKey(rootV.([]byte))
	if err != nil {
		return nil, fmt.Errorf("%w: provisioned root: %v", ErrState, err)
	}
	resp, err := attest.DecodeHello(respBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	verifier := &tee.QuoteVerifier{Root: root, Allowed: []tee.Measurement{dmV.(tee.Measurement)}}
	session, err := key.CompleteAttested(resp, verifier)
	if err != nil {
		return nil, err
	}
	env.DeleteObject(objDealerHS)
	return nil, env.PutObject(objDealerSession, session)
}

const (
	objDealerSession     = "dealer-session"
	objDealerMeasurement = "dealer-measurement"
	objDealerRoot        = "dealer-root"
)

// ecallInstallMask decrypts a dealer mask record and stores the mask for
// its round.
func ecallInstallMask(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	sessV, ok := env.GetObject(objDealerSession)
	if !ok {
		return nil, fmt.Errorf("%w: no dealer session", ErrState)
	}
	plaintext, err := sessV.(*attest.Session).Recv(input)
	if err != nil {
		return nil, fmt.Errorf("%w: dealer record: %v", ErrBadRequest, err)
	}
	r := wire.NewReader(plaintext)
	round := r.Uint64()
	bits := r.Uint64s()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if len(bits) != cfg.Dim {
		return nil, fmt.Errorf("%w: mask dim %d != %d", ErrBadRequest, len(bits), cfg.Dim)
	}
	mask := make(fixed.Vector, len(bits))
	for i, b := range bits {
		mask[i] = fixed.Ring(b)
	}
	var masks map[uint64]fixed.Vector
	if mv, ok := env.GetObject(objMasks); ok {
		masks = mv.(map[uint64]fixed.Vector)
	} else {
		masks = make(map[uint64]fixed.Vector)
	}
	masks[round] = mask
	return nil, env.PutObject(objMasks, masks)
}

// Host-side orchestration.

// DealerHost is the host handle to a dealer enclave.
type DealerHost struct {
	enclave *tee.Enclave
}

// NewDealerHost loads a dealer enclave on a platform.
func NewDealerHost(p *tee.Platform, cfg DealerConfig, opts ...tee.LoadOption) (*DealerHost, error) {
	enclave, err := p.Load(BuildDealerBinary(cfg), opts...)
	if err != nil {
		return nil, fmt.Errorf("glimmer: load dealer: %w", err)
	}
	return &DealerHost{enclave: enclave}, nil
}

// Measurement returns the dealer's measurement (what services vouch for).
func (d *DealerHost) Measurement() tee.Measurement { return d.enclave.Measurement() }

// Enroll admits a client's dealer-hello at the given cohort index and
// returns the dealer's attested response.
func (d *DealerHost) Enroll(index uint32, clientHello []byte) ([]byte, error) {
	return d.enclave.Call("enroll", wire.NewWriter().Uint32(index).Bytes(clientHello).Finish())
}

// Distribute deals zero-sum masks of the given dimension for a round,
// returning one opaque record per enrolled client, keyed by cohort index.
func (d *DealerHost) Distribute(dim int, round uint64) (map[uint32][]byte, error) {
	out, err := d.enclave.Call("distribute", wire.NewWriter().Uint32(uint32(dim)).Uint64(round).Finish())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(out)
	n := r.Uint32()
	records := make(map[uint32][]byte, n)
	for i := uint32(0); i < n; i++ {
		idx := r.Uint32()
		records[idx] = r.Bytes()
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("glimmer: dealer output: %w", err)
	}
	return records, nil
}

// Device-side wrappers.

// DealerHello opens the device Glimmer's channel to a dealer.
func (d *Device) DealerHello() ([]byte, error) {
	return d.enclave.Call("dealer-hello", nil)
}

// DealerComplete finishes the dealer handshake with the dealer's response.
func (d *Device) DealerComplete(response []byte) error {
	_, err := d.enclave.Call("dealer-complete", wire.NewWriter().Bytes(response).Finish())
	return err
}

// InstallMask feeds one dealer mask record into the Glimmer.
func (d *Device) InstallMask(record []byte) error {
	_, err := d.enclave.Call("install-mask", record)
	return err
}
