package glimmer

import (
	"encoding/binary"
	"errors"
	"fmt"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
	"glimmers/internal/xcrypto"
)

// Attested session tickets: the amortized-authentication fast path. The
// enclave signs one ticket request (a single ECDSA operation, rooted in the
// same provisioned key that signs contributions), the service answers with
// a grant completing an X25519 exchange, and both sides derive a short-lived
// HMAC session key bound to (service, ticket, round window, expiry). Every
// contribution that follows carries a constant-time MAC instead of an
// ASN.1 ECDSA signature — the ~100× cheaper check the ingest hot path
// verifies on pooled scratches. The trust story is unchanged: the session
// key lives only inside the enclave (and the service's ticket table), so a
// MAC still proves the contribution passed validate→blind inside a vetted
// Glimmer; what moved is *when* the asymmetric work happens — once per
// session, as the paper's "attest once, endorse what follows" model
// licenses.

// ErrNoTicket is returned by the ticketed-contribution ECALL before a
// grant has been installed.
var ErrNoTicket = errors.New("glimmer: no session ticket installed")

// Enclave object-store keys for the ticket state.
const (
	objTicketDH = "ticket-dh"
	objTicket   = "ticket"
)

// ticketedMagic marks the third field of the ticketed wire variant; its
// length differs from a measurement's, so the two contribution encodings
// can never be confused for one another.
const ticketedMagic = "GTK1"

// ticketHeaderLen is the ticketed variant's third field: magic plus the
// 8-byte ticket ID.
const ticketHeaderLen = len(ticketedMagic) + 8

// TicketedContribution is the MAC'd sibling of SignedContribution: the same
// leading fields (service name, round — so PeekContributionService and
// PeekContributionRound route both variants identically), a ticket header
// in place of the measurement (provenance was checked once, at grant time),
// and an HMAC-SHA256 tag in place of the ECDSA signature.
type TicketedContribution struct {
	ServiceName string
	Round       uint64
	TicketID    uint64
	Blinded     fixed.Vector
	Confidence  int64
	MAC         []byte
}

// appendTicketedFields writes everything the MAC covers (after the domain
// header), which is also everything the transport encoding carries before
// the MAC field — the same preimage-recovery trick the signed variant uses.
func appendTicketedFields(w *wire.Writer, tc *TicketedContribution) {
	w.String(tc.ServiceName)
	w.Uint64(tc.Round)
	var hdr [ticketHeaderLen]byte
	copy(hdr[:], ticketedMagic)
	binary.BigEndian.PutUint64(hdr[len(ticketedMagic):], tc.TicketID)
	w.Bytes(hdr[:])
	appendVector(w, tc.Blinded)
	w.Uint64(uint64(tc.Confidence))
}

// ticketedDomain separates the ticketed MAC preimage from every other
// signed/MAC'd byte string in the system; ticketedHeader is its encoded
// form, which TicketScratch.Decode prepends when recovering the preimage.
const ticketedDomain = "glimmers/ticketed/v1"

var ticketedHeader = wire.NewWriter().String(ticketedDomain).Finish()

// MACBytes returns the byte string the MAC covers.
func (tc TicketedContribution) MACBytes() []byte {
	w := getWriter()
	w.String(ticketedDomain)
	appendTicketedFields(w, &tc)
	return finishPooled(w)
}

// EncodeTicketedContribution serializes the full message.
func EncodeTicketedContribution(tc TicketedContribution) []byte {
	w := getWriter()
	appendTicketedFields(w, &tc)
	w.Bytes(tc.MAC)
	return finishPooled(w)
}

// SealTicketedContribution MACs the contribution under the session key and
// returns the encoded message — the enclave's (and tests') one-stop seal.
func SealTicketedContribution(tc TicketedContribution, key *xcrypto.SessionKey) []byte {
	mac := xcrypto.SessionMAC(key, tc.MACBytes())
	tc.MAC = mac[:]
	return EncodeTicketedContribution(tc)
}

// DecodeTicketedContribution reverses EncodeTicketedContribution into an
// independent copy. Hot paths use TicketScratch instead.
func DecodeTicketedContribution(data []byte) (TicketedContribution, error) {
	var s TicketScratch
	if _, err := s.Decode(data); err != nil {
		return TicketedContribution{}, err
	}
	tc := s.TC
	tc.Blinded = append(fixed.Vector(nil), tc.Blinded...)
	tc.MAC = append([]byte(nil), tc.MAC...)
	return tc, nil
}

// TicketScratch is the reusable decode state for the ticketed ingest hot
// path — the MAC-variant sibling of ContributionScratch, with the same
// aliasing rules: after a successful Decode, TC.MAC aliases the input and
// TC.Blinded aliases the scratch, both valid only until the next Decode.
type TicketScratch struct {
	// TC is the most recently decoded contribution. After a failed Decode
	// its contents are unspecified.
	TC TicketedContribution

	view TicketedView
	macd []byte
}

// Decode decodes data into s.TC and returns the exact byte string the MAC
// covers (header || fields), which aliases the scratch. Steady state it
// performs zero heap allocations: the preimage is recovered by copying the
// input prefix into a reused buffer instead of re-encoding the struct.
// Decode is the materializing wrapper over TicketedView.Decode; the batch
// ingest path uses the view directly and never builds the vector at all.
func (s *TicketScratch) Decode(data []byte) ([]byte, error) {
	if err := s.view.Decode(data); err != nil {
		return nil, err
	}
	s.view.materialize(&s.TC, s.TC.Blinded)
	head, tail := s.view.PreimageParts()
	s.macd = append(s.macd[:0], head...)
	s.macd = append(s.macd, tail...)
	return s.macd, nil
}

// PeekContributionTicketed reports whether raw encodes the ticketed
// (MAC'd) contribution variant rather than the ECDSA-signed one, without
// allocating. Routers and pipelines dispatch on it; any malformation is
// left for the full decode of whichever path is chosen.
func PeekContributionTicketed(data []byte) bool {
	var r wire.Reader
	r.Reset(data)
	r.SkipBytes() // service name
	r.Uint64()    // round
	hdr := r.BytesView()
	return r.Err() == nil && len(hdr) == ticketHeaderLen &&
		string(hdr[:len(ticketedMagic)]) == ticketedMagic
}

// sessionTicket is the enclave-held half of a granted ticket.
type sessionTicket struct {
	id                    uint64
	key                   xcrypto.SessionKey
	roundFirst, roundLast uint64
	expiresUnix           uint64
}

// EncodeTicketWindow encodes the host's input to the "ticket-request"
// ECALL: the round window the session wants.
func EncodeTicketWindow(first, last uint64) []byte {
	return wire.NewWriter().Uint64(first).Uint64(last).Finish()
}

func decodeTicketWindow(data []byte) (first, last uint64, err error) {
	r := wire.NewReader(data)
	first, last = r.Uint64(), r.Uint64()
	if err := r.Done(); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return first, last, nil
}

// ecallTicketRequest builds the session's signed ticket request: a fresh
// X25519 value, the enclave's own measurement, and the requested round
// window, signed with the provisioned contribution key — the one asymmetric
// operation the whole session pays.
func ecallTicketRequest(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	first, last, err := decodeTicketWindow(input)
	if err != nil {
		return nil, err
	}
	if last < first {
		return nil, fmt.Errorf("%w: round window [%d, %d]", ErrBadRequest, first, last)
	}
	_, _, signKey, err := provisionedState(env)
	if err != nil {
		return nil, err
	}
	dh, err := xcrypto.NewDHKey()
	if err != nil {
		return nil, fmt.Errorf("glimmer: ticket DH key: %w", err)
	}
	meas := env.Measurement()
	req := wire.TicketRequest{
		Service:     cfg.ServiceName,
		DevicePub:   dh.PublicBytes(),
		Measurement: meas[:],
		RoundFirst:  first,
		RoundLast:   last,
	}
	sig, err := signKey.Sign(req.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("glimmer: ticket request signing: %w", err)
	}
	req.Signature = sig
	if err := env.PutObject(objTicketDH, dh); err != nil {
		return nil, err
	}
	return wire.EncodeTicketRequest(req), nil
}

// ecallTicketInstall completes the exchange: derive the session key from
// the grant's server value and the pending device key, and make the ticket
// the session's active one. A tampered grant (wrong ServerPub, respelled
// identity) merely derives a key whose MACs the service will never accept.
func ecallTicketInstall(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	grant, err := wire.DecodeTicketGrant(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if grant.Service != cfg.ServiceName {
		return nil, fmt.Errorf("%w: grant for service %q", ErrBadRequest, grant.Service)
	}
	v, ok := env.GetObject(objTicketDH)
	if !ok {
		return nil, fmt.Errorf("%w: no ticket request in flight", ErrState)
	}
	dh := v.(*xcrypto.DHKey)
	shared, err := dh.Shared(grant.ServerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	env.DeleteObject(objTicketDH)
	t := sessionTicket{
		id:          grant.ID,
		key:         xcrypto.DeriveTicketKey(shared, cfg.ServiceName, grant.ID),
		roundFirst:  grant.RoundFirst,
		roundLast:   grant.RoundLast,
		expiresUnix: grant.ExpiresUnix,
	}
	return nil, env.PutObject(objTicket, t)
}

// ecallContributeTicketed is the fast-path sibling of ecallContribute: the
// same validate→blind pipeline, sealed with the session MAC instead of an
// ECDSA signature. The enclave MACs whatever round the host names — round
// acceptance is the service's call (window, expiry, lifecycle), exactly as
// it is for signed contributions.
func ecallContributeTicketed(env *tee.Env, input []byte) ([]byte, error) {
	cfg, err := configOf(env)
	if err != nil {
		return nil, err
	}
	v, ok := env.GetObject(objTicket)
	if !ok {
		return nil, ErrNoTicket
	}
	ticket := v.(sessionTicket)
	req, err := DecodeContribution(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// The signing key goes unused here, but requiring full provisioning
	// keeps the ticketed path's lifecycle identical to the signed one's.
	prog, analysis, _, err := provisionedState(env)
	if err != nil {
		return nil, err
	}
	blinded, confidence, err := validateAndBlind(env, cfg, req, prog, analysis)
	if err != nil {
		return nil, err
	}
	tc := TicketedContribution{
		ServiceName: cfg.ServiceName,
		Round:       req.Round,
		TicketID:    ticket.id,
		Blinded:     blinded,
		Confidence:  confidence,
	}
	env.CounterIncrement("accepted")
	return SealTicketedContribution(tc, &ticket.key), nil
}
