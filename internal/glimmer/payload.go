package glimmer

import (
	"fmt"
	"sync"

	"glimmers/internal/fixed"
	"glimmers/internal/tee"
	"glimmers/internal/wire"
)

// writerPool recycles encode buffers across the contribution encoders:
// every enclave seal, simulator device, and bench iteration encodes into a
// warm buffer and copies out an exact-size result, instead of growing a
// fresh writer through ~a dozen appends per message.
var writerPool = sync.Pool{New: func() any { return wire.NewWriter() }}

// maxPooledEncode caps what goes back into writerPool, so one giant
// message cannot pin its buffer for the life of the process.
const maxPooledEncode = 1 << 20

func getWriter() *wire.Writer {
	return writerPool.Get().(*wire.Writer)
}

// finishPooled copies the writer's encoding into an exact-size result and
// recycles the writer. The copy is what lets the pool exist: Finish aliases
// the pooled buffer, and callers own what these encoders return.
func finishPooled(w *wire.Writer) []byte {
	buf := w.Finish()
	out := make([]byte, len(buf))
	copy(out, buf)
	w.Reset()
	if len(buf) <= maxPooledEncode {
		writerPool.Put(w)
	}
	return out
}

// appendVector writes a vector as a counted uint64 sequence without the
// intermediate []uint64 copy VectorToBits would allocate.
func appendVector(w *wire.Writer, v fixed.Vector) {
	w.Uint32(uint32(len(v)))
	for _, r := range v {
		w.Uint64(uint64(r))
	}
}

// ProvisionPayload is what a service installs into a Glimmer over the
// attested session: signing key, predicate, and blinding material.
type ProvisionPayload struct {
	// SigningKey is the PKCS#8 DER of the contribution-signing key.
	SigningKey []byte
	// Predicate is the encoded validation program (predicate.Encode). It
	// travels inside the encrypted session, so a confidential predicate
	// (§4.1) is never visible to the host.
	Predicate []byte
	// Masks maps round numbers to dealer masks (ModeDealer only).
	Masks map[uint64][]uint64
	// PartyIndex and Roster configure pairwise blinding (ModePairwise).
	PartyIndex uint32
	Roster     [][]byte
	// DealerMeasurement, when set (32 bytes), names a dealer enclave the
	// service vouches for: the Glimmer will fetch masks from it over a
	// mutually attested channel instead of (or in addition to) taking
	// masks from this payload. AttestationRoot (PKIX DER) is the root the
	// Glimmer verifies the dealer's quote against.
	DealerMeasurement []byte
	AttestationRoot   []byte
}

// EncodeProvision serializes the payload.
func EncodeProvision(p ProvisionPayload) []byte {
	w := wire.NewWriter()
	w.Bytes(p.SigningKey)
	w.Bytes(p.Predicate)
	w.Uint32(uint32(len(p.Masks)))
	// Deterministic order: rounds ascending.
	rounds := make([]uint64, 0, len(p.Masks))
	for r := range p.Masks {
		rounds = append(rounds, r)
	}
	for i := 0; i < len(rounds); i++ {
		for j := i + 1; j < len(rounds); j++ {
			if rounds[j] < rounds[i] {
				rounds[i], rounds[j] = rounds[j], rounds[i]
			}
		}
	}
	for _, r := range rounds {
		w.Uint64(r)
		w.Uint64s(p.Masks[r])
	}
	w.Uint32(p.PartyIndex)
	w.Uint32(uint32(len(p.Roster)))
	for _, pub := range p.Roster {
		w.Bytes(pub)
	}
	w.Bytes(p.DealerMeasurement)
	w.Bytes(p.AttestationRoot)
	return w.Finish()
}

// DecodeProvision reverses EncodeProvision.
func DecodeProvision(data []byte) (ProvisionPayload, error) {
	r := wire.NewReader(data)
	p := ProvisionPayload{
		SigningKey: r.Bytes(),
		Predicate:  r.Bytes(),
	}
	nMasks := r.Uint32()
	if nMasks > 0 {
		if nMasks > 1<<16 {
			return p, fmt.Errorf("glimmer: absurd mask count %d", nMasks)
		}
		p.Masks = make(map[uint64][]uint64, nMasks)
		for i := uint32(0); i < nMasks; i++ {
			round := r.Uint64()
			p.Masks[round] = r.Uint64s()
		}
	}
	p.PartyIndex = r.Uint32()
	nRoster := r.Uint32()
	if nRoster > 1<<16 {
		return p, fmt.Errorf("glimmer: absurd roster size %d", nRoster)
	}
	for i := uint32(0); i < nRoster; i++ {
		p.Roster = append(p.Roster, r.Bytes())
	}
	p.DealerMeasurement = r.Bytes()
	p.AttestationRoot = r.Bytes()
	if err := r.Done(); err != nil {
		return p, fmt.Errorf("glimmer: provision payload: %w", err)
	}
	return p, nil
}

// ContributionRequest is the host's input to the "contribute" ECALL.
type ContributionRequest struct {
	// Round is the aggregation round the contribution belongs to.
	Round uint64
	// Contribution is the proposed contribution, as raw ring bits.
	Contribution []uint64
	// Private is the private validation bank the predicate may inspect.
	Private []uint64
}

// EncodeContribution serializes a request.
func EncodeContribution(req ContributionRequest) []byte {
	return wire.NewWriter().
		Uint64(req.Round).
		Uint64s(req.Contribution).
		Uint64s(req.Private).
		Finish()
}

// DecodeContribution reverses EncodeContribution.
func DecodeContribution(data []byte) (ContributionRequest, error) {
	r := wire.NewReader(data)
	req := ContributionRequest{
		Round:        r.Uint64(),
		Contribution: r.Uint64s(),
		Private:      r.Uint64s(),
	}
	if err := r.Done(); err != nil {
		return req, fmt.Errorf("glimmer: contribution request: %w", err)
	}
	return req, nil
}

// VectorToBits converts a fixed-point vector into the raw bits a request
// carries.
func VectorToBits(v fixed.Vector) []uint64 {
	out := make([]uint64, len(v))
	for i, r := range v {
		out[i] = uint64(r)
	}
	return out
}

// Int64sToBits reinterprets an int64 feature bank (e.g. corroboration
// weights) as request bits.
func Int64sToBits(vs []int64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = uint64(v)
	}
	return out
}

// SignedContribution is the Glimmer's output: the blinded contribution
// endorsed by the provisioned signing key. This message is the only thing
// that crosses from the client to the service, and its format is public so
// a runtime auditor can bound what it reveals.
type SignedContribution struct {
	ServiceName string
	Round       uint64
	Measurement tee.Measurement
	Blinded     fixed.Vector
	// Confidence is the validation verdict (1 for boolean predicates; up
	// to the predicate's scale, e.g. 0–100, for confidence-valued ones —
	// §3's "boolean 'valid'/'invalid', or a confidence value").
	Confidence int64
	Signature  []byte
}

// appendSignedFields writes everything the signature covers (after the
// domain header) — which is also everything the transport encoding carries
// before the signature field.
func appendSignedFields(w *wire.Writer, sc *SignedContribution) {
	w.String(sc.ServiceName)
	w.Uint64(sc.Round)
	w.Bytes(sc.Measurement[:])
	appendVector(w, sc.Blinded)
	w.Uint64(uint64(sc.Confidence))
}

// SignedBytes returns the byte string the signature covers.
func (sc SignedContribution) SignedBytes() []byte {
	w := getWriter()
	w.String(signedContributionDomain)
	appendSignedFields(w, &sc)
	return finishPooled(w)
}

// EncodeSignedContribution serializes the full message, through a pooled
// writer: one exact-size allocation per message instead of the ~11 growth
// appends the bulk encoders used to pay.
func EncodeSignedContribution(sc SignedContribution) []byte {
	w := getWriter()
	appendSignedFields(w, &sc)
	w.Bytes(sc.Signature)
	return finishPooled(w)
}

// DecodeSignedContribution reverses EncodeSignedContribution.
func DecodeSignedContribution(data []byte) (SignedContribution, error) {
	sc, _, err := DecodeSignedContributionBytes(data)
	return sc, err
}

// signedContributionDomain separates the contribution signature preimage
// from every other signed byte string; signedContributionHeader is its
// encoded form, which ContributionScratch.Decode prepends when recovering
// the preimage.
const signedContributionDomain = "glimmers/contribution/v1"

var signedContributionHeader = wire.NewWriter().String(signedContributionDomain).Finish()

// ContributionScratch is the reusable decode state for the per-contribution
// ingest hot path. One scratch decodes a stream of contributions without
// heap allocation at steady state: the vector, the signed-bytes buffer, and
// the service-name string are all reused across calls (the name allocates
// only when it actually changes, which on a single service's ingest path is
// never). Pipelines pool scratches; a scratch must not be shared between
// goroutines concurrently.
type ContributionScratch struct {
	// SC is the most recently decoded contribution. After a successful
	// Decode, SC.Signature aliases the decode input and SC.Blinded aliases
	// the scratch: both are valid only until the next Decode and only while
	// the input buffer lives. Callers that retain fields must copy them.
	// After a failed Decode the contents of SC are unspecified.
	SC SignedContribution

	bits   []uint64
	signed []byte
}

// Decode decodes data into s.SC and returns the exact byte string the
// signature covers (header || fields), which aliases the scratch. The
// encoded message and the signed string share every field up to the
// signature, so the signed bytes are recovered by copying the input slice
// into a reused buffer instead of re-encoding the decoded struct — the
// aggregation hot path verifies thousands of contributions per second and
// must not rebuild (or re-allocate) each one.
func (s *ContributionScratch) Decode(data []byte) ([]byte, error) {
	var r wire.Reader
	r.Reset(data)
	sc := &s.SC
	if name := r.BytesView(); string(name) != sc.ServiceName {
		sc.ServiceName = string(name)
	}
	sc.Round = r.Uint64()
	m := r.BytesView()
	if len(m) == len(sc.Measurement) {
		copy(sc.Measurement[:], m)
	} else if r.Err() == nil {
		return nil, fmt.Errorf("glimmer: measurement field is %d bytes", len(m))
	}
	s.bits = r.Uint64sInto(s.bits)
	if cap(sc.Blinded) < len(s.bits) {
		sc.Blinded = make(fixed.Vector, len(s.bits))
	} else {
		sc.Blinded = sc.Blinded[:len(s.bits)]
	}
	for i, b := range s.bits {
		sc.Blinded[i] = fixed.Ring(b)
	}
	sc.Confidence = int64(r.Uint64())
	// Everything decoded so far is exactly what the signature covers, after
	// the domain-separation header.
	fieldsEnd := len(data) - r.Remaining()
	sc.Signature = r.BytesView()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("glimmer: signed contribution: %w", err)
	}
	s.signed = append(s.signed[:0], signedContributionHeader...)
	s.signed = append(s.signed, data[:fieldsEnd]...)
	return s.signed, nil
}

// codecScratchPool recycles ContributionScratch values across the copying
// decoders, so DecodeSignedContribution[Bytes] pays only for the copies it
// hands out (vector, signature, signed bytes) instead of rebuilding the
// decode state — bits buffer, name string, preimage buffer — per call.
var codecScratchPool = sync.Pool{New: func() any { return new(ContributionScratch) }}

// DecodeSignedContributionBytes decodes data and additionally returns the
// exact byte string the signature covers. Unlike ContributionScratch.Decode
// (which it wraps), the returned struct and signed bytes are independent
// copies that outlive the input. On error the returned struct is zero.
func DecodeSignedContributionBytes(data []byte) (SignedContribution, []byte, error) {
	s := codecScratchPool.Get().(*ContributionScratch)
	signed, err := s.Decode(data)
	if err != nil {
		s.SC.Signature = nil // never pool a view of the caller's input
		codecScratchPool.Put(s)
		return SignedContribution{}, nil, err
	}
	sc := s.SC
	sc.Blinded = append(fixed.Vector(nil), sc.Blinded...)
	sc.Signature = append([]byte(nil), sc.Signature...)
	out := append([]byte(nil), signed...)
	s.SC.Signature = nil
	codecScratchPool.Put(s)
	return sc, out, nil
}

// PeekContributionRound reads only the round number from an encoded
// SignedContribution, without materializing the vector (and without
// allocating). Round routers use it to pick a pipeline before paying for
// the full decode.
func PeekContributionRound(data []byte) (uint64, error) {
	var r wire.Reader
	r.Reset(data)
	r.SkipBytes() // service name, validated by the pipeline after routing
	round := r.Uint64()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("glimmer: signed contribution: %w", err)
	}
	return round, nil
}

// PeekContributionService reads only the service name from an encoded
// SignedContribution, as a view into data, without materializing anything
// else (and without allocating). Multi-tenant routers use it to pick a
// tenant before paying for the full decode; the tenant's pipeline then
// re-validates the name against its own identity, so a router acting on
// the peek alone can never credit a contribution to the wrong tenant.
func PeekContributionService(data []byte) ([]byte, error) {
	var r wire.Reader
	r.Reset(data)
	name := r.BytesView()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("glimmer: signed contribution: %w", err)
	}
	return name, nil
}

// DetectRequest is the host's input to the "detect" ECALL (§4.1).
type DetectRequest struct {
	// Challenge is the service-issued nonce the verdict must echo.
	Challenge []byte
	// Signals is the private behavioural feature bank.
	Signals []uint64
}

// EncodeDetect serializes a detect request.
func EncodeDetect(req DetectRequest) []byte {
	return wire.NewWriter().Bytes(req.Challenge).Uint64s(req.Signals).Finish()
}

// DecodeDetect reverses EncodeDetect.
func DecodeDetect(data []byte) (DetectRequest, error) {
	r := wire.NewReader(data)
	req := DetectRequest{Challenge: r.Bytes(), Signals: r.Uint64s()}
	if err := r.Done(); err != nil {
		return req, fmt.Errorf("glimmer: detect request: %w", err)
	}
	return req, nil
}

// Verdict is the §4.1 output message: exactly one bit of information plus
// the challenge echo and signature the paper's auditor expects.
type Verdict struct {
	ServiceName string
	Challenge   []byte
	Human       bool
	Signature   []byte
}

// SignedBytes returns the byte string the signature covers.
func (v Verdict) SignedBytes() []byte {
	return wire.NewWriter().
		String("glimmers/verdict/v1").
		String(v.ServiceName).
		Bytes(v.Challenge).
		Bool(v.Human).
		Finish()
}

// EncodeVerdict serializes the verdict message in the public format.
func EncodeVerdict(v Verdict) []byte {
	return wire.NewWriter().
		String("glimmers/verdict/v1").
		String(v.ServiceName).
		Bytes(v.Challenge).
		Bool(v.Human).
		Bytes(v.Signature).
		Finish()
}

// DecodeVerdict reverses EncodeVerdict, rejecting malformed headers.
func DecodeVerdict(data []byte) (Verdict, error) {
	r := wire.NewReader(data)
	if header := r.String(); header != "glimmers/verdict/v1" && r.Err() == nil {
		return Verdict{}, fmt.Errorf("glimmer: bad verdict header %q", header)
	}
	v := Verdict{
		ServiceName: r.String(),
		Challenge:   r.Bytes(),
		Human:       r.Bool(),
		Signature:   r.Bytes(),
	}
	if err := r.Done(); err != nil {
		return v, fmt.Errorf("glimmer: verdict: %w", err)
	}
	return v, nil
}
